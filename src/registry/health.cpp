#include "registry/health.h"

namespace dlte::registry {

std::vector<obs::SloRule> churn_slo_rules(const std::string& prefix,
                                          const std::string& scope,
                                          double max_failure_rate,
                                          double min_heartbeat_rate,
                                          double max_stale_rate) {
  std::vector<obs::SloRule> rules;
  {
    obs::SloRule r;
    r.name = "registry_churn_outage";
    r.scope = scope;
    r.metric = prefix + "registry.heartbeats_failed";
    r.predicate = obs::SloPredicate::kRateBelow;
    r.threshold = max_failure_rate;
    r.window = Duration::seconds(5.0);
    r.fire_after = 2;
    r.resolve_after = 2;
    rules.push_back(r);
  }
  {
    obs::SloRule r;
    r.name = "registry_grant_failures";
    r.scope = scope;
    r.metric = prefix + "registry.grant_failures";
    r.predicate = obs::SloPredicate::kRateBelow;
    r.threshold = max_failure_rate;
    r.window = Duration::seconds(5.0);
    r.fire_after = 1;  // A failure burst is already a storm symptom.
    r.resolve_after = 2;
    rules.push_back(r);
  }
  {
    obs::SloRule r;
    r.name = "registry_heartbeat_liveness";
    r.scope = scope;
    r.metric = prefix + "registry.heartbeats_ok";
    r.predicate = obs::SloPredicate::kRateAtLeast;
    r.threshold = min_heartbeat_rate;
    r.window = Duration::seconds(5.0);
    // Startup grace: blocks take a few intervals to begin heartbeating.
    r.fire_after = 4;
    r.resolve_after = 1;
    rules.push_back(r);
  }
  {
    obs::SloRule r;
    r.name = "registry_cache_staleness";
    r.scope = scope;
    r.metric = prefix + "registry.cache.stale_serves";
    r.predicate = obs::SloPredicate::kRateBelow;
    r.threshold = max_stale_rate;
    r.window = Duration::seconds(5.0);
    r.fire_after = 2;
    r.resolve_after = 2;
    rules.push_back(r);
  }
  return rules;
}

}  // namespace dlte::registry
