// Zone-bucketed spatial index for planet-scale grant lookup (DESIGN.md
// §16).
//
// spectrum::Registry's flat vector makes every region query an O(n)
// scan — fine for a town, hopeless for the millions of leases ROADMAP
// item 4 asks for. This index partitions the plane into kZoneSizeM-sized
// grid zones (the same coarse grid the federated registry uses as its
// failure domain) and, inside each zone, buckets entries per band
// (center frequency). A query then touches only the zones within the
// largest interference reach of any indexed entry, and a contention
// query additionally skips buckets whose band cannot overlap.
//
// Determinism: zones are visited in a fixed (zx ascending, zy ascending)
// order and bucket/entry order is insertion order, so a visit sequence
// is a pure function of the insert/erase history. Callers that need a
// canonical result order sort by id — the index itself promises only
// "every matching entry exactly once".
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/geo.h"

namespace dlte::registry {

// Packed (zx, zy) grid coordinate of `location` on a `zone_size_m` grid.
// Unlike spectrum::Registry::zone_of's hash interleave this is exact
// (32 bits per axis), so distinct zones never collide — cache and index
// keys must not merge unrelated zones.
[[nodiscard]] std::int64_t zone_key(Position location, double zone_size_m);
[[nodiscard]] std::int64_t zone_key_of(std::int32_t zx, std::int32_t zy);

// What the index knows about a grant: identity, placement, precomputed
// interference reach, and band extent. The owner (spectrum::Registry)
// maps ids back to full grants; keeping the entry POD-small means a
// zone scan stays cache-friendly at millions of leases.
struct SiteEntry {
  std::uint64_t id{0};
  Position location;
  double range_m{0.0};    // Interference reach (precomputed, metres).
  double center_hz{0.0};  // Band center.
  double half_bw_hz{0.0};  // Half the occupied bandwidth.
};

class SpatialIndex {
 public:
  explicit SpatialIndex(double zone_size_m = 50'000.0);

  void insert(const SiteEntry& entry);
  // Erase by id; `location` routes the lookup to the owning zone.
  // Returns false when no such entry is indexed there.
  bool erase(std::uint64_t id, Position location);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] double zone_size_m() const { return zone_size_m_; }
  // Largest reach ever indexed — the scan radius bound. Monotone (never
  // shrinks on erase): a conservative bound keeps the visited-zone set a
  // deterministic function of insert history alone.
  [[nodiscard]] double max_range_m() const { return max_range_m_; }

  using Visitor = std::function<void(const SiteEntry&)>;

  // Every entry whose own reach covers `location` (the grants_near
  // predicate): distance(entry, location) <= entry.range_m.
  void for_each_reaching(Position location, const Visitor& visit) const;

  // Every entry (except `skip_id`) whose band overlaps
  // [center_hz ± half_bw_hz] and whose distance to `location` is within
  // max(own_range_m, entry.range_m) — the contention-domain predicate.
  void for_each_contending(Position location, double center_hz,
                           double half_bw_hz, double own_range_m,
                           std::uint64_t skip_id, const Visitor& visit) const;

  // Every entry whose reach touches the axis-aligned square of `zone`
  // (a packed zone_key) — the membership snapshot the hierarchical
  // cache serves for that zone.
  void for_each_touching_zone(std::int64_t zone, const Visitor& visit) const;

 private:
  // Entries of one band within one zone. A bucket caches the largest
  // reach and half-bandwidth of its members so a whole band can be
  // skipped without touching its entries.
  struct Bucket {
    double center_hz{0.0};
    double max_half_bw_hz{0.0};
    double max_range_m{0.0};
    std::vector<SiteEntry> entries;
  };
  struct Zone {
    double max_range_m{0.0};
    std::vector<Bucket> buckets;
  };

  // Visit all zones whose square could hold an entry matching within
  // `radius_m` of `location`, in fixed (zx, zy) ascending order. A zone
  // is skipped only when its gap to `location` exceeds both the zone's
  // own longest reach and `floor_range_m` — the querier-side reach that
  // the contending predicate (max(own, entry) ranges) contributes.
  // Reaching queries pass a zero floor.
  void for_each_zone_near(Position location, double radius_m,
                          double floor_range_m,
                          const std::function<void(const Zone&)>& visit) const;

  double zone_size_m_;
  double max_range_m_{0.0};
  std::size_t size_{0};
  std::unordered_map<std::int64_t, Zone> zones_;
};

}  // namespace dlte::registry
