// SLO rule set for the registry-scale plane (DESIGN.md §16).
//
// Extends spectrum::default_registry_slo_rules with the symptoms that
// only show up under churn-storm load: grant-request failure bursts
// (blocks re-applying into a dead zone), heartbeat liveness (the
// registry must keep renewing *someone*), and cache health (stale
// serves and root sheds climbing when the hierarchy falls behind).
#pragma once

#include <string>
#include <vector>

#include "obs/slo.h"

namespace dlte::registry {

// Rules over `<prefix>registry.*` metrics (Registry::set_metrics +
// LeaseCache::set_metrics), grouped under health scope `scope`:
//   * registry_churn_outage   — heartbeat-failure rate stays under
//     `max_failure_rate`/s (fires while a zone is dark, resolves after
//     recovery drains the window).
//   * registry_grant_failures — grant-failure rate stays under the same
//     bound (fires during the re-apply storm into an offline zone).
//   * registry_heartbeat_liveness — heartbeats_ok rate stays at least
//     `min_heartbeat_rate`/s (a total-outage watchdog: zone storms leave
//     the other zones renewing, so this only fires when the whole
//     registry stops serving).
//   * registry_cache_staleness — stale-serve rate stays under
//     `max_stale_rate`/s (fires when membership churns faster than the
//     cache TTLs track it).
std::vector<obs::SloRule> churn_slo_rules(const std::string& prefix = "",
                                          const std::string& scope =
                                              "registry",
                                          double max_failure_rate = 0.5,
                                          double min_heartbeat_rate = 0.1,
                                          double max_stale_rate = 50.0);

}  // namespace dlte::registry
