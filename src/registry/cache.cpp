#include "registry/cache.h"

namespace dlte::registry {

const char* cache_tier_name(CacheTier tier) {
  switch (tier) {
    case CacheTier::kLocal:
      return "local";
    case CacheTier::kZone:
      return "zone";
    case CacheTier::kRoot:
      return "root";
    case CacheTier::kAuthoritative:
      return "authoritative";
    case CacheTier::kShed:
      return "shed";
  }
  return "?";
}

LeaseCache::LeaseCache(CacheConfig config) : config_(config) {}

Duration LeaseCache::tier_latency(CacheTier tier) const {
  switch (tier) {
    case CacheTier::kLocal:
      return config_.local_latency;
    case CacheTier::kZone:
      return config_.zone_latency;
    case CacheTier::kRoot:
      return config_.root_latency;
    default:
      return {};
  }
}

CacheLookup LeaseCache::serve(CacheTier tier, const Entry& entry,
                              std::uint64_t version, TimePoint now) {
  CacheLookup out;
  out.tier = tier;
  out.stale = entry.version != version;
  out.age_ms = (now - entry.filled_at).to_millis();
  out.snapshot = entry.snapshot;
  switch (tier) {
    case CacheTier::kLocal:
      ++hits_local_;
      obs::inc(m_hits_local_);
      break;
    case CacheTier::kZone:
      ++hits_zone_;
      obs::inc(m_hits_zone_);
      break;
    default:
      ++hits_root_;
      obs::inc(m_hits_root_);
      break;
  }
  if (out.stale) {
    ++stale_serves_;
    obs::inc(m_stale_serves_);
  }
  obs::observe(m_staleness_ms_, out.age_ms);
  return out;
}

bool LeaseCache::root_over_capacity(TimePoint now) {
  // The window grid is anchored at t=0 (like the par runtime's barrier
  // windows), so admission is a pure function of simulated time — not of
  // when the first lookup of a window happened.
  const std::int64_t window_ns = config_.capacity_window.ns();
  if (window_ns > 0) {
    const std::int64_t start = (now.ns() / window_ns) * window_ns;
    if (start != window_start_.ns()) {
      window_start_ = TimePoint::from_ns(start);
      window_lookups_ = 0;
    }
  }
  ++window_lookups_;
  return window_lookups_ > config_.root_capacity;
}

CacheLookup LeaseCache::lookup(std::uint64_t requester, std::int64_t zone,
                               std::uint64_t version, TimePoint now) {
  const auto lit = local_.find({requester, zone});
  if (lit != local_.end() && fresh(lit->second, config_.local_ttl, now)) {
    return serve(CacheTier::kLocal, lit->second, version, now);
  }
  const auto zit = zone_.find(zone);
  if (zit != zone_.end() && fresh(zit->second, config_.zone_ttl, now)) {
    // Refill the local tier with the zone's snapshot (original fill time
    // kept: propagation must not launder staleness).
    local_[{requester, zone}] = zit->second;
    return serve(CacheTier::kZone, zit->second, version, now);
  }
  // Reaching the root consumes capacity whether or not the entry is
  // fresh — the lookup itself is the load being shed.
  if (root_over_capacity(now)) {
    ++root_sheds_;
    obs::inc(m_root_sheds_);
    CacheLookup out;
    out.tier = CacheTier::kShed;
    return out;
  }
  const auto rit = root_.find(zone);
  if (rit != root_.end() && fresh(rit->second, config_.root_ttl, now)) {
    zone_[zone] = rit->second;
    local_[{requester, zone}] = rit->second;
    return serve(CacheTier::kRoot, rit->second, version, now);
  }
  ++misses_;
  obs::inc(m_misses_);
  return CacheLookup{};
}

void LeaseCache::fill(std::uint64_t requester, std::int64_t zone,
                      std::uint64_t version, ZoneSnapshot snapshot,
                      TimePoint now) {
  const Entry entry{version, now, std::move(snapshot)};
  root_[zone] = entry;
  zone_[zone] = entry;
  local_[{requester, zone}] = entry;
}

void LeaseCache::invalidate(std::int64_t zone) {
  root_.erase(zone);
  zone_.erase(zone);
  for (auto it = local_.begin(); it != local_.end();) {
    it = it->first.second == zone ? local_.erase(it) : std::next(it);
  }
}

void LeaseCache::set_metrics(obs::MetricsRegistry* metrics,
                             const std::string& prefix) {
  if (metrics == nullptr) {
    m_hits_local_ = nullptr;
    m_hits_zone_ = nullptr;
    m_hits_root_ = nullptr;
    m_misses_ = nullptr;
    m_stale_serves_ = nullptr;
    m_root_sheds_ = nullptr;
    m_staleness_ms_ = nullptr;
    return;
  }
  m_hits_local_ = &metrics->counter(prefix + "registry.cache.hits_local");
  m_hits_zone_ = &metrics->counter(prefix + "registry.cache.hits_zone");
  m_hits_root_ = &metrics->counter(prefix + "registry.cache.hits_root");
  m_misses_ = &metrics->counter(prefix + "registry.cache.misses");
  m_stale_serves_ = &metrics->counter(prefix + "registry.cache.stale_serves");
  m_root_sheds_ = &metrics->counter(prefix + "registry.cache.root_sheds");
  m_staleness_ms_ = &metrics->histogram(prefix + "registry.cache.staleness_ms");
}

}  // namespace dlte::registry
