// Hierarchical TTL cache for the federated registry design (DESIGN.md
// §16).
//
// The paper's federated registry is "DNS-like", and this is the part of
// DNS that makes it planet-scale: a resolver hierarchy. A zone's
// membership snapshot (the grant ids whose reach touches the zone) is
// cached at three tiers — per-requester local, per-zone, and one root —
// each with its own TTL. A lookup walks local → zone → root and falls
// through to the authoritative registry on a full miss; the snapshot
// fetched there refills every tier on the way back.
//
// Staleness is accounted deterministically: the authoritative side bumps
// a per-zone version on every membership change, and a cache serve whose
// stored version differs is a *stale serve* (counted, with the snapshot
// age recorded in a histogram) — cached answers are still served inside
// their TTL, exactly like DNS, but the simulation can measure how stale
// the network's view of the spectrum actually is.
//
// The root tier has finite capacity: at most `root_capacity` lookups may
// reach it per `capacity_window` of simulated time; beyond that the root
// *sheds* and the lookup falls back to the slower authoritative path.
// Shedding is the SLO symptom of an under-provisioned registry.
//
// The cache is clock-free (every method takes `now`) and spectrum-free
// (snapshots are bare grant ids) so it unit-tests without a simulator
// and the registry resolves ids to live grants at serve time.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/time.h"
#include "obs/metrics.h"

namespace dlte::registry {

struct CacheConfig {
  Duration local_ttl{Duration::seconds(2.0)};
  Duration zone_ttl{Duration::seconds(10.0)};
  Duration root_ttl{Duration::seconds(60.0)};
  // Lookups admitted to the root tier per capacity window; the lookup
  // exactly at capacity is still served, the next one sheds.
  std::uint32_t root_capacity{256};
  Duration capacity_window{Duration::seconds(1.0)};
  // Serve latencies by tier, used by the registry's async facade (the
  // cache itself is synchronous). Authoritative/shed lookups pay the
  // registry's own query latency instead.
  Duration local_latency{Duration::millis(5)};
  Duration zone_latency{Duration::millis(40)};
  Duration root_latency{Duration::millis(80)};
};

enum class CacheTier : std::uint8_t {
  kLocal = 0,
  kZone = 1,
  kRoot = 2,
  kAuthoritative = 3,  // Full miss: nothing fresh anywhere.
  kShed = 4,           // Root over capacity: authoritative fallback.
};

[[nodiscard]] const char* cache_tier_name(CacheTier tier);

// Immutable shared snapshot of one zone's membership. Shared_ptr because
// the same snapshot is referenced from all three tiers and from every
// requester's local entry — at millions of leases, copying id vectors
// per tier would dominate memory.
using ZoneSnapshot = std::shared_ptr<const std::vector<std::uint64_t>>;

struct CacheLookup {
  CacheTier tier{CacheTier::kAuthoritative};
  bool stale{false};    // Served snapshot's version != authoritative.
  double age_ms{0.0};   // Snapshot age at serve time.
  ZoneSnapshot snapshot;  // Null on kAuthoritative / kShed.
};

class LeaseCache {
 public:
  explicit LeaseCache(CacheConfig config = {});

  [[nodiscard]] const CacheConfig& config() const { return config_; }

  // Walk the hierarchy for `(requester, zone)`. `version` is the current
  // authoritative version of the zone (for staleness accounting only —
  // a stale entry inside its TTL is still served). Serving from a higher
  // tier refills the tiers below with the same snapshot, keeping its
  // original fill time so staleness keeps aging.
  [[nodiscard]] CacheLookup lookup(std::uint64_t requester, std::int64_t zone,
                                   std::uint64_t version, TimePoint now);

  // Install an authoritative snapshot at every tier (the refill after a
  // kAuthoritative miss).
  void fill(std::uint64_t requester, std::int64_t zone, std::uint64_t version,
            ZoneSnapshot snapshot, TimePoint now);

  // Drop every tier's entries for `zone` (e.g. when its registrar goes
  // offline: a recovering zone must not serve pre-outage state).
  void invalidate(std::int64_t zone);

  [[nodiscard]] Duration tier_latency(CacheTier tier) const;

  // Deterministic tallies (mirrored into metrics when attached):
  // counters `<prefix>registry.cache.hits_local` / `.hits_zone` /
  // `.hits_root`, `.misses`, `.stale_serves`, `.root_sheds`; histogram
  // `.staleness_ms` (age of every cache-served snapshot). Null-safe.
  void set_metrics(obs::MetricsRegistry* metrics,
                   const std::string& prefix = "");
  [[nodiscard]] std::uint64_t hits() const {
    return hits_local_ + hits_zone_ + hits_root_;
  }
  [[nodiscard]] std::uint64_t hits_local() const { return hits_local_; }
  [[nodiscard]] std::uint64_t hits_zone() const { return hits_zone_; }
  [[nodiscard]] std::uint64_t hits_root() const { return hits_root_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t stale_serves() const { return stale_serves_; }
  [[nodiscard]] std::uint64_t root_sheds() const { return root_sheds_; }

 private:
  struct Entry {
    std::uint64_t version{0};
    TimePoint filled_at{};
    ZoneSnapshot snapshot;
  };

  [[nodiscard]] static bool fresh(const Entry& entry, Duration ttl,
                                  TimePoint now) {
    return entry.snapshot != nullptr && now - entry.filled_at <= ttl;
  }
  CacheLookup serve(CacheTier tier, const Entry& entry, std::uint64_t version,
                    TimePoint now);
  // One root admission per call; true when over capacity (shed).
  bool root_over_capacity(TimePoint now);

  CacheConfig config_;
  // std::map (not unordered) so any future iteration is ordered; lookups
  // are keyed by exact ids either way.
  std::map<std::pair<std::uint64_t, std::int64_t>, Entry> local_;
  std::map<std::int64_t, Entry> zone_;
  std::map<std::int64_t, Entry> root_;

  TimePoint window_start_{};
  std::uint32_t window_lookups_{0};

  std::uint64_t hits_local_{0};
  std::uint64_t hits_zone_{0};
  std::uint64_t hits_root_{0};
  std::uint64_t misses_{0};
  std::uint64_t stale_serves_{0};
  std::uint64_t root_sheds_{0};

  obs::Counter* m_hits_local_{nullptr};
  obs::Counter* m_hits_zone_{nullptr};
  obs::Counter* m_hits_root_{nullptr};
  obs::Counter* m_misses_{nullptr};
  obs::Counter* m_stale_serves_{nullptr};
  obs::Counter* m_root_sheds_{nullptr};
  obs::Histogram* m_staleness_ms_{nullptr};
};

}  // namespace dlte::registry
