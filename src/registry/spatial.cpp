#include "registry/spatial.h"

#include <algorithm>
#include <cmath>

namespace dlte::registry {
namespace {

std::int32_t axis_zone(double v, double zone_size_m) {
  return static_cast<std::int32_t>(std::floor(v / zone_size_m));
}

// Distance from a point to the closed axis-aligned square
// [x0, x0+s] × [y0, y0+s]; zero when the point is inside.
double point_to_square_m(Position p, double x0, double y0, double s) {
  const double dx = std::max({x0 - p.x_m, 0.0, p.x_m - (x0 + s)});
  const double dy = std::max({y0 - p.y_m, 0.0, p.y_m - (y0 + s)});
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

std::int64_t zone_key_of(std::int32_t zx, std::int32_t zy) {
  return static_cast<std::int64_t>(
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(zx)) << 32) |
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(zy)));
}

std::int64_t zone_key(Position location, double zone_size_m) {
  return zone_key_of(axis_zone(location.x_m, zone_size_m),
                     axis_zone(location.y_m, zone_size_m));
}

SpatialIndex::SpatialIndex(double zone_size_m) : zone_size_m_(zone_size_m) {}

void SpatialIndex::insert(const SiteEntry& entry) {
  Zone& zone = zones_[zone_key(entry.location, zone_size_m_)];
  Bucket* bucket = nullptr;
  for (auto& b : zone.buckets) {
    if (b.center_hz == entry.center_hz) {
      bucket = &b;
      break;
    }
  }
  if (bucket == nullptr) {
    zone.buckets.push_back(Bucket{entry.center_hz, 0.0, 0.0, {}});
    bucket = &zone.buckets.back();
  }
  bucket->entries.push_back(entry);
  bucket->max_half_bw_hz = std::max(bucket->max_half_bw_hz, entry.half_bw_hz);
  bucket->max_range_m = std::max(bucket->max_range_m, entry.range_m);
  zone.max_range_m = std::max(zone.max_range_m, entry.range_m);
  max_range_m_ = std::max(max_range_m_, entry.range_m);
  ++size_;
}

bool SpatialIndex::erase(std::uint64_t id, Position location) {
  const auto zit = zones_.find(zone_key(location, zone_size_m_));
  if (zit == zones_.end()) return false;
  Zone& zone = zit->second;
  for (std::size_t bi = 0; bi < zone.buckets.size(); ++bi) {
    Bucket& bucket = zone.buckets[bi];
    for (std::size_t ei = 0; ei < bucket.entries.size(); ++ei) {
      if (bucket.entries[ei].id != id) continue;
      // Order inside a bucket carries no meaning (callers sort by id),
      // so swap-pop keeps erase O(1). Bucket/zone max bounds stay
      // conservative — like max_range_m_ they never shrink.
      bucket.entries[ei] = bucket.entries.back();
      bucket.entries.pop_back();
      if (bucket.entries.empty()) {
        zone.buckets[bi] = zone.buckets.back();
        zone.buckets.pop_back();
        if (zone.buckets.empty()) zones_.erase(zit);
      }
      --size_;
      return true;
    }
  }
  return false;
}

void SpatialIndex::for_each_zone_near(
    Position location, double radius_m, double floor_range_m,
    const std::function<void(const Zone&)>& visit) const {
  if (zones_.empty()) return;
  const std::int32_t zx0 = axis_zone(location.x_m - radius_m, zone_size_m_);
  const std::int32_t zx1 = axis_zone(location.x_m + radius_m, zone_size_m_);
  const std::int32_t zy0 = axis_zone(location.y_m - radius_m, zone_size_m_);
  const std::int32_t zy1 = axis_zone(location.y_m + radius_m, zone_size_m_);
  for (std::int32_t zx = zx0; zx <= zx1; ++zx) {
    for (std::int32_t zy = zy0; zy <= zy1; ++zy) {
      const auto it = zones_.find(zone_key_of(zx, zy));
      if (it == zones_.end()) continue;
      // Zone-level reject: skip when neither the zone's longest reach
      // nor the querier-side floor can bridge the gap to the query
      // point. The floor matters for the contending predicate, where a
      // short-reach entry still contends if it sits inside the
      // querier's own range.
      const double gap =
          point_to_square_m(location, zx * zone_size_m_, zy * zone_size_m_,
                            zone_size_m_);
      if (gap > std::max(it->second.max_range_m, floor_range_m)) continue;
      visit(it->second);
    }
  }
}

void SpatialIndex::for_each_reaching(Position location,
                                     const Visitor& visit) const {
  for_each_zone_near(location, max_range_m_, /*floor_range_m=*/0.0,
                     [&](const Zone& zone) {
    for (const Bucket& bucket : zone.buckets) {
      for (const SiteEntry& entry : bucket.entries) {
        if (distance_m(entry.location, location) <= entry.range_m) {
          visit(entry);
        }
      }
    }
  });
}

void SpatialIndex::for_each_contending(Position location, double center_hz,
                                       double half_bw_hz, double own_range_m,
                                       std::uint64_t skip_id,
                                       const Visitor& visit) const {
  // Reach in a contention pair is the max of the two sides, so the scan
  // radius must cover the larger of own_range and any indexed reach.
  const double radius = std::max(own_range_m, max_range_m_);
  for_each_zone_near(location, radius, own_range_m, [&](const Zone& zone) {
    for (const Bucket& bucket : zone.buckets) {
      // Band-level reject: overlap requires |Δcenter| < half_a + half_b.
      if (std::abs(bucket.center_hz - center_hz) >=
          half_bw_hz + bucket.max_half_bw_hz) {
        continue;
      }
      for (const SiteEntry& entry : bucket.entries) {
        if (entry.id == skip_id) continue;
        if (std::abs(entry.center_hz - center_hz) >=
            half_bw_hz + entry.half_bw_hz) {
          continue;
        }
        const double reach = std::max(own_range_m, entry.range_m);
        if (distance_m(entry.location, location) <= reach) visit(entry);
      }
    }
  });
}

void SpatialIndex::for_each_touching_zone(std::int64_t zone,
                                          const Visitor& visit) const {
  const auto zx = static_cast<std::int32_t>(
      static_cast<std::uint64_t>(zone) >> 32);
  const auto zy = static_cast<std::int32_t>(
      static_cast<std::uint64_t>(zone) & 0xffffffffULL);
  const double x0 = zx * zone_size_m_;
  const double y0 = zy * zone_size_m_;
  // An entry reaching into [x0,x0+s]² lies within max_range_m_ of it, so
  // scan the zones overlapping the square inflated by that bound.
  const std::int32_t ix0 = axis_zone(x0 - max_range_m_, zone_size_m_);
  const std::int32_t ix1 = axis_zone(x0 + zone_size_m_ + max_range_m_,
                                     zone_size_m_);
  const std::int32_t iy0 = axis_zone(y0 - max_range_m_, zone_size_m_);
  const std::int32_t iy1 = axis_zone(y0 + zone_size_m_ + max_range_m_,
                                     zone_size_m_);
  for (std::int32_t ix = ix0; ix <= ix1; ++ix) {
    for (std::int32_t iy = iy0; iy <= iy1; ++iy) {
      const auto it = zones_.find(zone_key_of(ix, iy));
      if (it == zones_.end()) continue;
      for (const Bucket& bucket : it->second.buckets) {
        for (const SiteEntry& entry : bucket.entries) {
          if (point_to_square_m(entry.location, x0, y0, zone_size_m_) <=
              entry.range_m) {
            visit(entry);
          }
        }
      }
    }
  }
}

}  // namespace dlte::registry
