// SharedChannel: one unlicensed channel, two waveforms (DESIGN.md §12).
//
// The paper builds "a more WiFi-like cellular network"; this subsystem
// asks what that network looks like as a spectrum *neighbour*. A
// SharedChannel is a slot-stepped medium that WiFi DCF stations and dLTE
// transmitters register with. Unlike mac::DcfSimulator, whose sensing and
// interference relations are configured booleans, everything here derives
// from received energy through the phy::propagation path-loss models:
//
//   * carrier sense — a listener's CCA reports busy when any active
//     transmitter's power at the listener exceeds its energy-detect
//     threshold (802.11-class -82 dBm for WiFi; the LAA energy-detect
//     -72 dBm default for LTE LBT), so hidden terminals are geometry,
//     not configuration;
//   * collisions — a frame survives a slot of overlap only if the wanted
//     signal beats the strongest co-channel interferer at its receiver
//     by a capture margin.
//
// dLTE transmitters choose one of three access behaviours (the C11 sweep):
//
//   * kOblivious — the scheduled waveform transmits whenever it has
//     traffic, exactly as a licensed-band eNodeB would. On a shared
//     channel this is the LTE-U horror story the coexistence literature
//     opens with: WiFi defers to it and starves.
//   * kLbt      — LAA-style listen-before-talk: energy-detect CCA, defer
//     while busy, then the DCF contention discipline (mac::DcfBackoff —
//     the very same class the 802.11 stations run) before a bounded TXOP
//     burst. Backoff draws come from a stream derived per transmitter
//     via sim::RngStream::derive, so runs are deterministic and adding a
//     transmitter never perturbs another's draws.
//   * kDutyCycle — CSAT-style fixed on/off airtime split, blind to
//     instantaneous channel state; optionally adaptive, shrinking its
//     next on-window by the WiFi occupancy it measured while off.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/geo.h"
#include "common/stats.h"
#include "common/time.h"
#include "common/units.h"
#include "mac/dcf_backoff.h"
#include "mac/lte_cell_mac.h"
#include "obs/metrics.h"
#include "phy/link_budget.h"
#include "phy/propagation.h"
#include "sim/random.h"

namespace dlte::coex {

enum class Waveform { kWifi, kDlte };
enum class LteCoexPolicy { kOblivious, kLbt, kDutyCycle };

[[nodiscard]] const char* to_string(LteCoexPolicy policy);

// Where a transmitter and its designated receiver sit, and with what
// radios. Both the sensing and the interference relations fall out of
// this geometry through the channel's path-loss model.
struct TransmitterSite {
  Position tx_pos;
  Position rx_pos;
  phy::RadioProfile tx_profile;
  phy::RadioProfile rx_profile;
};

struct SharedChannelConfig {
  Hertz frequency{Hertz::ghz(2.4)};
  // Log-distance clutter exponent (2.6 = the C6 town profile). The same
  // model governs AP-AP sensing and AP-client interference, which is
  // what makes hidden-terminal asymmetry real.
  double path_loss_exponent{2.6};
  // WiFi CCA energy-detect threshold (dBm at the listener).
  double wifi_cca_dbm{-82.0};
  // Capture margin: a frame survives overlap if its wanted power beats
  // the strongest interferer at the receiver by at least this much.
  double capture_margin_db{10.0};
  std::uint64_t seed{1};
};

struct WifiStationConfig {
  TransmitterSite site;
  bool saturated{true};
  double arrival_fps{0.0};  // Poisson frame arrivals when not saturated.
  int frame_bytes{1500};
  int rate_index{4};        // Index into the phy::wifi_rate ladder.
  int retry_limit{7};
};

struct LteTransmitterConfig {
  TransmitterSite site;
  LteCoexPolicy policy{LteCoexPolicy::kLbt};
  bool saturated{true};
  double arrival_fps{0.0};
  int frame_bytes{1500};
  // Spectral throughput while holding the channel (a 20 MHz dLTE carrier
  // at mid SNR). Frames of frame_bytes are drained at this rate.
  DataRate phy_rate{DataRate::mbps(75.0)};

  // --- kLbt knobs ------------------------------------------------------
  double cca_dbm{-72.0};  // 3GPP LAA energy-detect default.
  mac::BackoffConfig backoff{15, 1023, 7};
  Duration txop{Duration::millis(8)};  // Max burst once the channel is won.

  // --- kDutyCycle knobs ------------------------------------------------
  Duration on_period{Duration::millis(20)};
  Duration off_period{Duration::millis(20)};
  // Adaptive CSAT: after each off-window, the next on-fraction becomes
  // (1 - measured WiFi occupancy), clamped to [min_on, max_on] of the
  // cycle. Blind CSAT keeps the configured split forever.
  bool adaptive{false};
  double min_on_fraction{0.1};
  double max_on_fraction{0.8};
};

struct CoexStats {
  std::int64_t tx_slots{0};          // Airtime occupied, in 9 us slots.
  std::int64_t attempts{0};          // Frames put on the air.
  std::int64_t delivered_frames{0};
  std::int64_t collisions{0};        // Frames corrupted by overlap.
  std::int64_t dropped_frames{0};    // Retry limit exceeded (DCF/LBT).
  std::int64_t defer_slots{0};       // Slots a pending frame sat out CCA.
  double delivered_bits{0.0};
  // Channel-access latency: head-of-line ready -> frame delivered, in ms.
  Quantiles access_latency_ms;

  [[nodiscard]] DataRate goodput(Duration elapsed) const {
    return DataRate{delivered_bits / elapsed.to_seconds()};
  }
};

class SharedChannel {
 public:
  explicit SharedChannel(SharedChannelConfig config);

  // Registration. Returned index identifies the transmitter across both
  // waveforms (registration order).
  int add_wifi_station(const WifiStationConfig& config);
  int add_lte_transmitter(const LteTransmitterConfig& config);

  // Couple a registered dLTE transmitter to a cell MAC: after each run()
  // the cell's PRB share is set to the airtime fraction the policy
  // actually won, so per-UE scheduling downstream sees the coexistence
  // cost. (On a shared band the X2 share rounds are off — this is the
  // path that replaces them.)
  void attach_cell(int lte_index, mac::LteCellMac* cell);

  void run(Duration duration);

  [[nodiscard]] int transmitter_count() const {
    return static_cast<int>(entries_.size());
  }
  [[nodiscard]] Waveform waveform(int index) const;
  [[nodiscard]] const CoexStats& stats(int index) const;
  [[nodiscard]] Duration elapsed() const { return elapsed_; }

  // Fraction of elapsed slots a waveform held the channel (sums over its
  // transmitters; > 1 is possible if spatial reuse lets them overlap).
  [[nodiscard]] double airtime_share(Waveform waveform) const;
  // Per-transmitter airtime fractions, registration order — the input to
  // jain_fairness in the C11 summary.
  [[nodiscard]] std::vector<double> airtime_fractions() const;

  // --- Medium introspection (tests, benches) ---------------------------
  // Received power of `tx`'s transmitter at an arbitrary point.
  [[nodiscard]] PowerDbm power_at(int tx, Position where) const;
  // Would `listener`'s CCA flag `tx` alone as busy? (Energy at the
  // listener's transmitter position vs. the listener's own threshold.)
  [[nodiscard]] bool senses(int listener, int tx) const;
  // Current adaptive duty-cycle on-fraction of a dLTE transmitter.
  [[nodiscard]] double duty_on_fraction(int lte_index) const;

  // Observability: per-waveform counters `<prefix>coex.{wifi,dlte}.*`
  // (attempts, delivered, collisions, drops, defer_slots), access-latency
  // histograms `<prefix>coex.{wifi,dlte}.access_ms`, and end-of-run
  // gauges `<prefix>coex.airtime.{wifi,dlte}` and `<prefix>coex.fairness`
  // (Jain over per-transmitter airtime). Null-safe.
  void set_metrics(obs::MetricsRegistry* registry,
                   const std::string& prefix = "");

 private:
  struct Entry {
    Waveform waveform{Waveform::kWifi};
    TransmitterSite site;
    double cca_dbm{-82.0};
    sim::RngStream rng;

    // Traffic state.
    bool saturated{true};
    double arrival_fps{0.0};
    int queue{0};
    double next_arrival_s{0.0};
    std::int64_t hol_since_slot{-1};  // When the current HOL frame became
                                      // ready; -1 = no frame.

    // Shared MAC state.
    bool transmitting{false};
    int tx_slots_remaining{0};
    bool frame_corrupted{false};
    int frame_slots{1};
    double frame_bits{12000.0};
    int backoff_slots{0};
    mac::DcfBackoff backoff;

    // WiFi-only.
    int rate_index{4};

    // dLTE-only.
    LteCoexPolicy policy{LteCoexPolicy::kLbt};
    Duration txop{};
    std::int64_t txop_slots_remaining{0};
    bool burst_leader_pending{false};
    bool burst_leader_failed{false};
    std::int64_t on_slots{0};
    std::int64_t off_slots{0};
    std::int64_t cycle_pos{0};      // Slot position inside the on/off cycle.
    bool adaptive{false};
    double min_on_fraction{0.1};
    double max_on_fraction{0.8};
    std::int64_t off_busy_slots{0};  // Medium-busy samples this off-window.
    mac::LteCellMac* cell{nullptr};

    CoexStats stats;
  };

  void step_slot();
  [[nodiscard]] bool medium_busy_for(const Entry& e) const;
  void start_frame(Entry& e);
  void finish_frame(Entry& e);
  void step_wifi(Entry& e);
  void step_lte(Entry& e);
  void note_arrivals(Entry& e, double now_s);
  [[nodiscard]] bool has_frame(const Entry& e) const {
    return e.saturated || e.queue > 0;
  }
  void mark_hol_ready(Entry& e);
  // Pairwise energy tables, rebuilt when the population changes.
  void rebuild_energy_tables();
  void flush_run_gauges();

  SharedChannelConfig config_;
  phy::LogDistanceModel model_;
  std::vector<Entry> entries_;
  // at_listener_[i][j]: power of i's transmitter at j's transmitter
  // (carrier sense); at_receiver_[i][j]: at j's designated receiver
  // (interference).
  std::vector<std::vector<double>> at_listener_;
  std::vector<std::vector<double>> at_receiver_;
  bool tables_dirty_{true};
  std::int64_t slot_index_{0};
  Duration elapsed_{};

  obs::MetricsRegistry* registry_{nullptr};
  std::string prefix_;
  obs::Counter* m_attempts_[2] = {nullptr, nullptr};
  obs::Counter* m_delivered_[2] = {nullptr, nullptr};
  obs::Counter* m_collisions_[2] = {nullptr, nullptr};
  obs::Counter* m_drops_[2] = {nullptr, nullptr};
  obs::Counter* m_defer_slots_[2] = {nullptr, nullptr};
  obs::Histogram* m_access_ms_[2] = {nullptr, nullptr};
};

}  // namespace dlte::coex
