#include "coex/shared_channel.h"

#include <algorithm>
#include <cmath>

#include "phy/wifi_phy.h"

namespace dlte::coex {

namespace {
// Post-frame inter-frame space, charged as extra backoff slots (matches
// mac::DcfSimulator so the two DCF implementations pace identically).
constexpr int kDifsSlots = 4;

int wifi_frame_slots(int rate_index, int frame_bytes) {
  const Duration airtime = phy::wifi_frame_airtime(rate_index, frame_bytes);
  return static_cast<int>((airtime.ns() + phy::kSlot.ns() - 1) /
                          phy::kSlot.ns());
}

int lte_frame_slots(int frame_bytes, DataRate rate) {
  const double seconds = frame_bytes * 8.0 / rate.bps();
  const auto ns = static_cast<std::int64_t>(seconds * 1e9);
  return std::max<std::int64_t>(
      1, (ns + phy::kSlot.ns() - 1) / phy::kSlot.ns());
}

std::int64_t to_slots(Duration d) {
  return std::max<std::int64_t>(1, d.ns() / phy::kSlot.ns());
}
}  // namespace

const char* to_string(LteCoexPolicy policy) {
  switch (policy) {
    case LteCoexPolicy::kOblivious:
      return "oblivious";
    case LteCoexPolicy::kLbt:
      return "lbt";
    case LteCoexPolicy::kDutyCycle:
      return "duty-cycle";
  }
  return "?";
}

SharedChannel::SharedChannel(SharedChannelConfig config)
    : config_(config), model_(config.path_loss_exponent) {}

int SharedChannel::add_wifi_station(const WifiStationConfig& config) {
  const int index = static_cast<int>(entries_.size());
  Entry e;
  e.waveform = Waveform::kWifi;
  e.site = config.site;
  e.cca_dbm = config_.wifi_cca_dbm;
  e.rng = sim::RngStream::derive(config_.seed, "coex-wifi",
                                 static_cast<std::uint64_t>(index));
  e.saturated = config.saturated;
  e.arrival_fps = config.arrival_fps;
  e.rate_index = config.rate_index;
  e.frame_slots = wifi_frame_slots(config.rate_index, config.frame_bytes);
  e.frame_bits = config.frame_bytes * 8.0;
  e.backoff = mac::DcfBackoff{
      mac::BackoffConfig{phy::kCwMin, phy::kCwMax, config.retry_limit}};
  e.backoff_slots = e.backoff.draw(e.rng);
  if (config.saturated) {
    e.hol_since_slot = 0;
  } else if (config.arrival_fps > 0.0) {
    e.next_arrival_s = e.rng.exponential(1.0 / config.arrival_fps);
  }
  entries_.push_back(std::move(e));
  tables_dirty_ = true;
  return index;
}

int SharedChannel::add_lte_transmitter(const LteTransmitterConfig& config) {
  const int index = static_cast<int>(entries_.size());
  Entry e;
  e.waveform = Waveform::kDlte;
  e.site = config.site;
  e.cca_dbm = config.cca_dbm;
  e.rng = sim::RngStream::derive(config_.seed, "coex-lte",
                                 static_cast<std::uint64_t>(index));
  e.saturated = config.saturated;
  e.arrival_fps = config.arrival_fps;
  e.frame_slots = lte_frame_slots(config.frame_bytes, config.phy_rate);
  e.frame_bits = config.frame_bytes * 8.0;
  e.policy = config.policy;
  e.backoff = mac::DcfBackoff{config.backoff};
  e.backoff_slots = e.backoff.draw(e.rng);
  e.txop = config.txop;
  e.on_slots = to_slots(config.on_period);
  e.off_slots = to_slots(config.off_period);
  e.adaptive = config.adaptive;
  e.min_on_fraction = config.min_on_fraction;
  e.max_on_fraction = config.max_on_fraction;
  if (config.saturated) {
    e.hol_since_slot = 0;
  } else if (config.arrival_fps > 0.0) {
    e.next_arrival_s = e.rng.exponential(1.0 / config.arrival_fps);
  }
  entries_.push_back(std::move(e));
  tables_dirty_ = true;
  return index;
}

void SharedChannel::attach_cell(int lte_index, mac::LteCellMac* cell) {
  entries_[static_cast<std::size_t>(lte_index)].cell = cell;
}

Waveform SharedChannel::waveform(int index) const {
  return entries_[static_cast<std::size_t>(index)].waveform;
}

const CoexStats& SharedChannel::stats(int index) const {
  return entries_[static_cast<std::size_t>(index)].stats;
}

PowerDbm SharedChannel::power_at(int tx, Position where) const {
  const Entry& e = entries_[static_cast<std::size_t>(tx)];
  const double distance =
      std::max(1.0, distance_m(e.site.tx_pos, where));
  // A bare probe receiver: isotropic, no gain.
  return phy::received_power(e.site.tx_profile, phy::RadioProfile{}, model_,
                             config_.frequency, distance);
}

bool SharedChannel::senses(int listener, int tx) const {
  if (listener == tx) return false;
  const Entry& l = entries_[static_cast<std::size_t>(listener)];
  const Entry& t = entries_[static_cast<std::size_t>(tx)];
  const double distance =
      std::max(1.0, distance_m(t.site.tx_pos, l.site.tx_pos));
  const PowerDbm power =
      phy::received_power(t.site.tx_profile, l.site.tx_profile, model_,
                          config_.frequency, distance);
  return power.value() > l.cca_dbm;
}

double SharedChannel::duty_on_fraction(int lte_index) const {
  const Entry& e = entries_[static_cast<std::size_t>(lte_index)];
  const double cycle = static_cast<double>(e.on_slots + e.off_slots);
  return cycle > 0.0 ? static_cast<double>(e.on_slots) / cycle : 0.0;
}

void SharedChannel::rebuild_energy_tables() {
  const std::size_t n = entries_.size();
  at_listener_.assign(n, std::vector<double>(n, -300.0));
  at_receiver_.assign(n, std::vector<double>(n, -300.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const Entry& tx = entries_[i];
      // Energy of i's transmitter heard by j's transmitter (CCA) and by
      // j's designated receiver (interference).
      if (i != j) {
        const double d_listen = std::max(
            1.0, distance_m(tx.site.tx_pos, entries_[j].site.tx_pos));
        at_listener_[i][j] =
            phy::received_power(tx.site.tx_profile,
                                entries_[j].site.tx_profile, model_,
                                config_.frequency, d_listen)
                .value();
      }
      const double d_rx =
          std::max(1.0, distance_m(tx.site.tx_pos, entries_[j].site.rx_pos));
      at_receiver_[i][j] =
          phy::received_power(tx.site.tx_profile, entries_[j].site.rx_profile,
                              model_, config_.frequency, d_rx)
              .value();
    }
  }
  tables_dirty_ = false;
}

bool SharedChannel::medium_busy_for(const Entry& e) const {
  const auto self = static_cast<std::size_t>(&e - entries_.data());
  for (std::size_t j = 0; j < entries_.size(); ++j) {
    if (j == self || !entries_[j].transmitting) continue;
    if (at_listener_[j][self] > e.cca_dbm) return true;
  }
  return false;
}

void SharedChannel::mark_hol_ready(Entry& e) {
  if (e.hol_since_slot < 0 && has_frame(e)) e.hol_since_slot = slot_index_;
}

void SharedChannel::note_arrivals(Entry& e, double now_s) {
  if (e.saturated || e.arrival_fps <= 0.0) return;
  while (e.next_arrival_s <= now_s) {
    ++e.queue;
    e.next_arrival_s += e.rng.exponential(1.0 / e.arrival_fps);
  }
  mark_hol_ready(e);
}

void SharedChannel::start_frame(Entry& e) {
  e.transmitting = true;
  e.tx_slots_remaining = e.frame_slots;
  e.frame_corrupted = false;
  ++e.stats.attempts;
  const int w = e.waveform == Waveform::kWifi ? 0 : 1;
  obs::inc(m_attempts_[w]);
}

void SharedChannel::finish_frame(Entry& e) {
  const int w = e.waveform == Waveform::kWifi ? 0 : 1;
  bool consume = true;
  if (!e.frame_corrupted) {
    ++e.stats.delivered_frames;
    e.stats.delivered_bits += e.frame_bits;
    obs::inc(m_delivered_[w]);
    if (e.hol_since_slot >= 0) {
      const double ms = static_cast<double>(slot_index_ + 1 -
                                            e.hol_since_slot) *
                        phy::kSlot.to_millis();
      e.stats.access_latency_ms.add(ms);
      obs::observe(m_access_ms_[w], ms);
    }
    if (e.waveform == Waveform::kWifi) e.backoff.note_success();
  } else {
    ++e.stats.collisions;
    obs::inc(m_collisions_[w]);
    if (e.waveform == Waveform::kWifi) {
      // 802.11 retries the frame until the limit; the scheduled waveform
      // moves on (HARQ below the model recovers or abandons the block).
      consume = e.backoff.note_failure();
      if (consume) {
        ++e.stats.dropped_frames;
        obs::inc(m_drops_[w]);
      }
    }
  }
  if (consume) {
    if (!e.saturated) e.queue = std::max(0, e.queue - 1);
    e.hol_since_slot = -1;
    mark_hol_ready(e);  // The next frame (if any) becomes HOL now.
  }
  e.frame_corrupted = false;
}

void SharedChannel::step_wifi(Entry& e) {
  if (e.transmitting || !has_frame(e)) return;
  if (medium_busy_for(e)) {
    ++e.stats.defer_slots;
    const int w = 0;
    obs::inc(m_defer_slots_[w]);
    return;
  }
  if (e.backoff_slots > 0) --e.backoff_slots;
  if (e.backoff_slots == 0) start_frame(e);
}

void SharedChannel::step_lte(Entry& e) {
  if (e.policy == LteCoexPolicy::kDutyCycle) {
    // The on/off clock runs regardless of traffic or channel state.
    const std::int64_t cycle = e.on_slots + e.off_slots;
    const bool in_on = e.cycle_pos < e.on_slots;
    if (!in_on && e.adaptive && !e.transmitting && medium_busy_for(e)) {
      ++e.off_busy_slots;
    }
    if (!e.transmitting && in_on && has_frame(e)) {
      const std::int64_t window_left = e.on_slots - e.cycle_pos;
      // Start only if the frame fits the window (or could never fit —
      // then take the window head rather than starve forever).
      if (e.frame_slots <= window_left ||
          (e.cycle_pos == 0 && e.frame_slots > e.on_slots)) {
        start_frame(e);
      }
    }
    ++e.cycle_pos;
    if (e.cycle_pos >= cycle) {
      e.cycle_pos = 0;
      if (e.adaptive && e.off_slots > 0) {
        // CSAT adaptation: yield the share of airtime WiFi demonstrably
        // used while we were off.
        const double occupancy = static_cast<double>(e.off_busy_slots) /
                                 static_cast<double>(e.off_slots);
        const double fraction =
            std::clamp(1.0 - occupancy, e.min_on_fraction,
                       e.max_on_fraction);
        e.on_slots = std::max<std::int64_t>(
            1, static_cast<std::int64_t>(
                   std::llround(fraction * static_cast<double>(cycle))));
        e.off_slots = std::max<std::int64_t>(1, cycle - e.on_slots);
      }
      e.off_busy_slots = 0;
    }
    return;
  }

  if (e.transmitting || !has_frame(e)) return;
  if (e.policy == LteCoexPolicy::kOblivious) {
    // Scheduled waveform: transmit whenever there is traffic.
    start_frame(e);
    return;
  }
  // kLbt: energy-detect defer + DCF backoff, then a bounded TXOP burst.
  if (medium_busy_for(e)) {
    ++e.stats.defer_slots;
    obs::inc(m_defer_slots_[1]);
    return;
  }
  if (e.backoff_slots > 0) --e.backoff_slots;
  if (e.backoff_slots == 0) {
    e.txop_slots_remaining = to_slots(e.txop);
    e.burst_leader_pending = true;
    e.burst_leader_failed = false;
    start_frame(e);
  }
}

void SharedChannel::step_slot() {
  const double now_s =
      static_cast<double>(slot_index_) * phy::kSlot.to_seconds();
  for (auto& e : entries_) note_arrivals(e, now_s);

  // Phase 1: access decisions against the slot-start medium state, in
  // registration order — contenders whose backoff expires in the same
  // slot start together and collide, as in DCF.
  std::vector<std::size_t> starting;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    Entry& e = entries_[i];
    const bool was = e.transmitting;
    if (e.waveform == Waveform::kWifi) {
      step_wifi(e);
    } else {
      step_lte(e);
    }
    if (!was && e.transmitting) {
      // Defer actually going on air until every decision saw the
      // slot-start state.
      e.transmitting = false;
      starting.push_back(i);
    }
  }
  for (std::size_t i : starting) entries_[i].transmitting = true;

  // Phase 2: capture test — an active frame survives the slot only if
  // its wanted signal beats the strongest concurrent interferer at its
  // receiver by the capture margin.
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (!entries_[i].transmitting) continue;
    double strongest = -300.0;
    for (std::size_t j = 0; j < entries_.size(); ++j) {
      if (j == i || !entries_[j].transmitting) continue;
      strongest = std::max(strongest, at_receiver_[j][i]);
    }
    if (strongest > -300.0 &&
        at_receiver_[i][i] - strongest < config_.capture_margin_db) {
      entries_[i].frame_corrupted = true;
    }
  }

  // Phase 3: advance transmissions; frame/burst boundaries.
  for (auto& e : entries_) {
    if (!e.transmitting) continue;
    ++e.stats.tx_slots;
    if (e.waveform == Waveform::kDlte &&
        e.policy == LteCoexPolicy::kLbt) {
      --e.txop_slots_remaining;
    }
    if (--e.tx_slots_remaining > 0) continue;

    // LAA widens/resets the contention window on the outcome of the
    // burst's leading frame — latch it before finish_frame resets state.
    if (e.waveform == Waveform::kDlte && e.policy == LteCoexPolicy::kLbt &&
        e.burst_leader_pending) {
      e.burst_leader_failed = e.frame_corrupted;
      e.burst_leader_pending = false;
    }
    finish_frame(e);
    bool continue_burst = false;
    if (e.waveform == Waveform::kDlte && has_frame(e)) {
      switch (e.policy) {
        case LteCoexPolicy::kOblivious:
          continue_burst = true;
          break;
        case LteCoexPolicy::kDutyCycle:
          // step_lte's window check gates the next frame; stop here.
          continue_burst =
              e.cycle_pos < e.on_slots &&
              e.frame_slots <= e.on_slots - e.cycle_pos;
          break;
        case LteCoexPolicy::kLbt:
          continue_burst = e.txop_slots_remaining >= e.frame_slots;
          break;
      }
    }
    if (continue_burst) {
      start_frame(e);
      continue;
    }
    e.transmitting = false;
    if (e.waveform == Waveform::kWifi) {
      e.backoff_slots = e.backoff.draw(e.rng) + kDifsSlots;
    } else if (e.policy == LteCoexPolicy::kLbt) {
      if (e.burst_leader_failed) {
        (void)e.backoff.note_failure();
      } else {
        e.backoff.note_success();
      }
      e.backoff_slots = e.backoff.draw(e.rng) + kDifsSlots;
    }
  }

  ++slot_index_;
}

void SharedChannel::run(Duration duration) {
  if (tables_dirty_) rebuild_energy_tables();
  const auto slots =
      static_cast<std::int64_t>(duration.ns() / phy::kSlot.ns());
  for (std::int64_t i = 0; i < slots; ++i) step_slot();
  elapsed_ += Duration::nanos(slots * phy::kSlot.ns());

  // Couple measured airtime back into attached cell MACs and publish the
  // end-of-run gauges.
  for (auto& e : entries_) {
    if (e.cell != nullptr && slot_index_ > 0) {
      e.cell->set_prb_share(std::clamp(
          static_cast<double>(e.stats.tx_slots) /
              static_cast<double>(slot_index_),
          0.0, 1.0));
    }
  }
  flush_run_gauges();
}

double SharedChannel::airtime_share(Waveform waveform) const {
  if (slot_index_ == 0) return 0.0;
  std::int64_t slots = 0;
  for (const auto& e : entries_) {
    if (e.waveform == waveform) slots += e.stats.tx_slots;
  }
  return static_cast<double>(slots) / static_cast<double>(slot_index_);
}

std::vector<double> SharedChannel::airtime_fractions() const {
  std::vector<double> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) {
    out.push_back(slot_index_ > 0
                      ? static_cast<double>(e.stats.tx_slots) /
                            static_cast<double>(slot_index_)
                      : 0.0);
  }
  return out;
}

void SharedChannel::flush_run_gauges() {
  if (registry_ == nullptr) return;
  registry_->gauge(prefix_ + "coex.airtime.wifi")
      .set(airtime_share(Waveform::kWifi));
  registry_->gauge(prefix_ + "coex.airtime.dlte")
      .set(airtime_share(Waveform::kDlte));
  const auto fractions = airtime_fractions();
  registry_->gauge(prefix_ + "coex.fairness").set(jain_fairness(fractions));
}

void SharedChannel::set_metrics(obs::MetricsRegistry* registry,
                                const std::string& prefix) {
  registry_ = registry;
  prefix_ = prefix;
  if (registry == nullptr) {
    for (int w = 0; w < 2; ++w) {
      m_attempts_[w] = nullptr;
      m_delivered_[w] = nullptr;
      m_collisions_[w] = nullptr;
      m_drops_[w] = nullptr;
      m_defer_slots_[w] = nullptr;
      m_access_ms_[w] = nullptr;
    }
    return;
  }
  const char* names[2] = {"wifi", "dlte"};
  for (int w = 0; w < 2; ++w) {
    const std::string base = prefix + "coex." + names[w] + ".";
    m_attempts_[w] = &registry->counter(base + "attempts");
    m_delivered_[w] = &registry->counter(base + "delivered");
    m_collisions_[w] = &registry->counter(base + "collisions");
    m_drops_[w] = &registry->counter(base + "drops");
    m_defer_slots_[w] = &registry->counter(base + "defer_slots");
    m_access_ms_[w] = &registry->histogram(base + "access_ms");
  }
}

}  // namespace dlte::coex
