#include "phy/wifi_phy.h"

#include <array>
#include <cassert>
#include <cmath>

namespace dlte::phy {

namespace {
// Index 0 is legacy 1 Mb/s DSSS (the robustness floor); 1..8 are HT MCS0-7,
// 20 MHz, 800 ns GI, one spatial stream.
constexpr std::array<WifiRate, kWifiRateCount> kRates{{
    {DataRate::mbps(1.0), 2.0},
    {DataRate::mbps(6.5), 5.0},
    {DataRate::mbps(13.0), 8.0},
    {DataRate::mbps(19.5), 11.0},
    {DataRate::mbps(26.0), 14.0},
    {DataRate::mbps(39.0), 18.0},
    {DataRate::mbps(52.0), 22.0},
    {DataRate::mbps(58.5), 26.0},
    {DataRate::mbps(65.0), 28.0},
}};
}  // namespace

const WifiRate& wifi_rate(int index) {
  assert(index >= 0 && index < kWifiRateCount);
  return kRates[static_cast<std::size_t>(index)];
}

int select_wifi_rate(Decibels snr) {
  int best = -1;
  for (int i = 0; i < kWifiRateCount; ++i) {
    if (snr.value() >= kRates[static_cast<std::size_t>(i)].snr_threshold_db) {
      best = i;
    }
  }
  return best;
}

Duration wifi_frame_airtime(int rate, int payload_bytes) {
  const double bits = payload_bytes * 8.0 + 288.0;  // MAC header + FCS.
  const double tx_s = bits / wifi_rate(rate).phy_rate.bps();
  return kPhyPreamble + Duration::seconds(tx_s) + kSifs + kAckDuration;
}

double wifi_frame_error_rate(int rate, Decibels snr) {
  const double thr = wifi_rate(rate).snr_threshold_db;
  const double x = 2.0 * (snr.value() - thr) + std::log(9.0);
  return 1.0 / (1.0 + std::exp(x));
}

bool beyond_ack_range(double distance_m) {
  return distance_m > kWifiAckRangeM;
}

}  // namespace dlte::phy
