#include "phy/lte_amc.h"

#include <array>
#include <cassert>
#include <cmath>

namespace dlte::phy {

namespace {
// TS 36.213 Table 7.2.3-1 efficiencies with link-level SINR operating
// points (10% BLER, AWGN-ish).
constexpr std::array<CqiEntry, 16> kCqiTable{{
    {0, 0.0, 1e9},        // Out of range.
    {1, 0.1523, -6.7},
    {2, 0.2344, -4.7},
    {3, 0.3770, -2.3},
    {4, 0.6016, 0.2},
    {5, 0.8770, 2.4},
    {6, 1.1758, 4.3},
    {7, 1.4766, 5.9},
    {8, 1.9141, 8.1},
    {9, 2.4063, 10.3},
    {10, 2.7305, 11.7},
    {11, 3.3223, 14.1},
    {12, 3.9023, 16.3},
    {13, 4.5234, 18.7},
    {14, 5.1152, 21.0},
    {15, 5.5547, 22.7},
}};
}  // namespace

int prbs_for_bandwidth(Hertz bandwidth) {
  const double mhz = bandwidth.to_mhz();
  if (mhz <= 1.4) return 6;
  if (mhz <= 3.0) return 15;
  if (mhz <= 5.0) return 25;
  if (mhz <= 10.0) return 50;
  if (mhz <= 15.0) return 75;
  return 100;
}

int select_cqi(Decibels sinr) {
  int best = 0;
  for (int c = 1; c <= 15; ++c) {
    if (sinr.value() >= kCqiTable[static_cast<std::size_t>(c)].snr_threshold_db) {
      best = c;
    }
  }
  return best;
}

const CqiEntry& cqi_entry(int cqi) {
  assert(cqi >= 0 && cqi <= 15);
  return kCqiTable[static_cast<std::size_t>(cqi)];
}

int transport_block_bits(int cqi, int n_prbs) {
  if (cqi <= 0 || n_prbs <= 0) return 0;
  const double re_per_prb =
      kSubcarriersPerPrb * kSymbolsPerSubframe * kDataReFraction;
  return static_cast<int>(cqi_entry(cqi).efficiency * re_per_prb * n_prbs);
}

double bler(int cqi, Decibels sinr) {
  if (cqi <= 0) return 1.0;
  const double thr = cqi_entry(cqi).snr_threshold_db;
  // Logistic anchored at BLER = 0.1 when sinr == thr; slope ~2 per dB.
  const double x = 2.0 * (sinr.value() - thr) + std::log(9.0);
  return 1.0 / (1.0 + std::exp(x));
}

DataRate peak_rate(Decibels sinr, Hertz bandwidth) {
  const int cqi = select_cqi(sinr);
  const int bits_per_ms = transport_block_bits(cqi, prbs_for_bandwidth(bandwidth));
  return DataRate{bits_per_ms * 1000.0};
}

bool within_timing_advance(double distance_m) {
  return distance_m <= kMaxCellRangeM;
}

}  // namespace dlte::phy
