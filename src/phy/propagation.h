// Radio propagation models.
//
// The paper's §3.2 argument — that LTE's sub-GHz bands cover rural areas
// far better than WiFi's 2.4/5 GHz ISM bands — is a propagation argument,
// so these models carry the load for experiments C1/C2/F2. Implemented:
//
//  * Free-space (Friis) — reference/best case.
//  * Log-distance — tunable exponent, used for ISM-band outdoor links.
//  * Okumura-Hata — the classic empirical macro-cell model, valid
//    150–1500 MHz (covers LTE bands 5/31 and TV whitespace).
//  * COST-231-Hata — the 1500–2000 MHz extension (covers midband LTE;
//    we extrapolate mildly to 2.6 GHz as is common practice).
//
// All models return a positive path loss in dB.
#pragma once

#include <memory>

#include "common/units.h"
#include "sim/random.h"

namespace dlte::phy {

enum class Environment { kOpenRural, kSuburban, kUrban };

// Geometry and antenna heights for one link.
struct LinkGeometry {
  double distance_m{1.0};
  double base_height_m{30.0};    // Transmitter / basestation height.
  double mobile_height_m{1.5};   // Receiver / handset height.
};

class PropagationModel {
 public:
  virtual ~PropagationModel() = default;
  [[nodiscard]] virtual Decibels path_loss(Hertz frequency,
                                           const LinkGeometry& geo) const = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

class FreeSpaceModel final : public PropagationModel {
 public:
  [[nodiscard]] Decibels path_loss(Hertz frequency,
                                   const LinkGeometry& geo) const override;
  [[nodiscard]] const char* name() const override { return "free-space"; }
};

class LogDistanceModel final : public PropagationModel {
 public:
  // Free-space loss up to `reference_m`, then 10*n*log10(d/ref) beyond.
  explicit LogDistanceModel(double exponent, double reference_m = 1.0)
      : exponent_(exponent), reference_m_(reference_m) {}

  [[nodiscard]] Decibels path_loss(Hertz frequency,
                                   const LinkGeometry& geo) const override;
  [[nodiscard]] const char* name() const override { return "log-distance"; }

 private:
  double exponent_;
  double reference_m_;
};

class OkumuraHataModel final : public PropagationModel {
 public:
  explicit OkumuraHataModel(Environment env) : env_(env) {}

  [[nodiscard]] Decibels path_loss(Hertz frequency,
                                   const LinkGeometry& geo) const override;
  [[nodiscard]] const char* name() const override { return "okumura-hata"; }

 private:
  Environment env_;
};

class Cost231HataModel final : public PropagationModel {
 public:
  explicit Cost231HataModel(Environment env) : env_(env) {}

  [[nodiscard]] Decibels path_loss(Hertz frequency,
                                   const LinkGeometry& geo) const override;
  [[nodiscard]] const char* name() const override { return "cost231-hata"; }

 private:
  Environment env_;
};

// Picks the customary model for a carrier frequency in a rural/open
// deployment: Okumura-Hata below 1.5 GHz, COST-231-Hata to 2.6 GHz,
// log-distance (n = 3.0) above — covering 5 GHz ISM.
[[nodiscard]] std::unique_ptr<PropagationModel> make_rural_model(
    Hertz frequency);

// Lognormal shadowing: a zero-mean normal draw in dB, correlated per link
// (each link object should hold one ShadowingProcess).
class ShadowingProcess {
 public:
  ShadowingProcess(double stddev_db, sim::RngStream rng)
      : stddev_db_(stddev_db), rng_(std::move(rng)) {}

  // Redraw (e.g. when the mobile moves beyond the decorrelation distance).
  void redraw() { current_db_ = rng_.normal(0.0, stddev_db_); }
  [[nodiscard]] Decibels current() const { return Decibels{current_db_}; }

 private:
  double stddev_db_;
  sim::RngStream rng_;
  double current_db_{0.0};
};

}  // namespace dlte::phy
