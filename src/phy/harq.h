// Hybrid-ARQ process with Chase combining.
//
// §3.2: "hybrid ARQ increases throughput under weak signal conditions."
// Each failed transmission's soft energy is retained; with Chase combining
// the effective SINR of the n-th attempt is the linear sum of the per-
// attempt SINRs, so blocks that would be lost outright on a weak link are
// recovered within a few retransmissions. Experiment C3 sweeps this
// against a no-HARQ ARQ baseline and a WiFi-style retransmit-from-scratch.
#pragma once

#include "common/units.h"
#include "sim/random.h"

namespace dlte::phy {

struct HarqConfig {
  int max_transmissions{4};      // 1 = HARQ disabled (single shot).
  bool chase_combining{true};    // false = each attempt decoded alone.
};

struct HarqOutcome {
  bool delivered{false};
  int transmissions{0};          // Attempts actually used.
  double effective_sinr_db{0.0}; // SINR of the final (combined) decode.
};

// Simulates delivery of one transport block at the given CQI/SINR.
// Stateless aside from the RNG: the caller owns scheduling/timing.
class HarqProcess {
 public:
  HarqProcess(HarqConfig config, sim::RngStream rng)
      : config_(config), rng_(std::move(rng)) {}

  [[nodiscard]] HarqOutcome transmit_block(int cqi, Decibels per_tx_sinr);

  [[nodiscard]] const HarqConfig& config() const { return config_; }

 private:
  HarqConfig config_;
  sim::RngStream rng_;
};

}  // namespace dlte::phy
