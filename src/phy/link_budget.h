// Link-budget computation: transmit chain + propagation + noise → SNR/SINR.
//
// Device profiles encode the asymmetry the paper leans on in §3.2: an LTE
// basestation is an advantaged transmitter (high power, high-gain sector
// antenna, on a silo roof), the handset is power-limited but gains uplink
// headroom from SC-FDMA's low PAPR; WiFi devices are bounded by ISM EIRP
// rules and omni antennas.
#pragma once

#include <vector>

#include "common/units.h"
#include "phy/propagation.h"

namespace dlte::phy {

struct RadioProfile {
  PowerDbm tx_power{PowerDbm{20.0}};
  Decibels tx_antenna_gain{Decibels{0.0}};
  Decibels rx_antenna_gain{Decibels{0.0}};
  Decibels noise_figure{Decibels{7.0}};
  Hertz bandwidth{Hertz::mhz(10.0)};
  double antenna_height_m{1.5};
};

// Canonical profiles used throughout the experiments. Values are typical
// of the equipment class the paper describes (a commercial rural eNodeB
// with 15 dBi sector antennas, an off-the-shelf handset, outdoor WiFi
// within FCC ISM EIRP limits).
struct DeviceProfiles {
  // LTE rural basestation: ~5 W PA per sector + 15 dBi antenna (paper §5).
  [[nodiscard]] static RadioProfile lte_enb_rural();
  // LTE handset: 23 dBm class-3 UE. SC-FDMA's single-carrier uplink keeps
  // PAPR low, so the full 23 dBm is usable (modelled as zero backoff).
  [[nodiscard]] static RadioProfile lte_ue();
  // Outdoor WiFi AP at the 2.4 GHz FCC point-to-multipoint EIRP cap
  // (36 dBm EIRP = 30 dBm conducted + 6 dBi).
  [[nodiscard]] static RadioProfile wifi_ap_outdoor();
  // WiFi client: 18 dBm conducted, OFDM PAPR backoff of 3 dB applied
  // (the §3.2 uplink-asymmetry counterpart of SC-FDMA headroom).
  [[nodiscard]] static RadioProfile wifi_client();
};

// Received power over one link.
[[nodiscard]] PowerDbm received_power(const RadioProfile& tx,
                                      const RadioProfile& rx,
                                      const PropagationModel& model,
                                      Hertz frequency, double distance_m,
                                      Decibels shadowing = Decibels{0.0});

// Signal-to-noise ratio at the receiver (no interference).
[[nodiscard]] Decibels link_snr(const RadioProfile& tx,
                                const RadioProfile& rx,
                                const PropagationModel& model,
                                Hertz frequency, double distance_m,
                                Decibels shadowing = Decibels{0.0});

// SINR given a desired received power and a set of co-channel interferer
// powers; powers are summed in linear milliwatts.
[[nodiscard]] Decibels sinr(PowerDbm desired,
                            const std::vector<PowerDbm>& interferers,
                            PowerDbm noise_floor);

}  // namespace dlte::phy
