#include "phy/link_budget.h"

#include <algorithm>

namespace dlte::phy {

RadioProfile DeviceProfiles::lte_enb_rural() {
  return RadioProfile{
      .tx_power = PowerDbm{37.0},
      .tx_antenna_gain = Decibels{15.0},
      .rx_antenna_gain = Decibels{15.0},
      .noise_figure = Decibels{5.0},
      .bandwidth = Hertz::mhz(10.0),
      .antenna_height_m = 30.0,
  };
}

RadioProfile DeviceProfiles::lte_ue() {
  return RadioProfile{
      .tx_power = PowerDbm{23.0},
      .tx_antenna_gain = Decibels{0.0},
      .rx_antenna_gain = Decibels{0.0},
      .noise_figure = Decibels{7.0},
      .bandwidth = Hertz::mhz(10.0),
      .antenna_height_m = 1.5,
  };
}

RadioProfile DeviceProfiles::wifi_ap_outdoor() {
  return RadioProfile{
      .tx_power = PowerDbm{30.0},
      .tx_antenna_gain = Decibels{6.0},
      .rx_antenna_gain = Decibels{6.0},
      .noise_figure = Decibels{6.0},
      .bandwidth = Hertz::mhz(20.0),
      .antenna_height_m = 30.0,
  };
}

RadioProfile DeviceProfiles::wifi_client() {
  return RadioProfile{
      // 18 dBm conducted minus 3 dB OFDM PAPR backoff.
      .tx_power = PowerDbm{15.0},
      .tx_antenna_gain = Decibels{0.0},
      .rx_antenna_gain = Decibels{0.0},
      .noise_figure = Decibels{7.0},
      .bandwidth = Hertz::mhz(20.0),
      .antenna_height_m = 1.5,
  };
}

PowerDbm received_power(const RadioProfile& tx, const RadioProfile& rx,
                        const PropagationModel& model, Hertz frequency,
                        double distance_m, Decibels shadowing) {
  // Propagation is reciprocal: the Hata "base" height is whichever end is
  // elevated, regardless of link direction (uplink or downlink).
  const LinkGeometry geo{
      .distance_m = distance_m,
      .base_height_m = std::max(tx.antenna_height_m, rx.antenna_height_m),
      .mobile_height_m = std::min(tx.antenna_height_m, rx.antenna_height_m),
  };
  const Decibels loss = model.path_loss(frequency, geo);
  return tx.tx_power + tx.tx_antenna_gain + rx.rx_antenna_gain - loss -
         shadowing;
}

Decibels link_snr(const RadioProfile& tx, const RadioProfile& rx,
                  const PropagationModel& model, Hertz frequency,
                  double distance_m, Decibels shadowing) {
  const PowerDbm prx =
      received_power(tx, rx, model, frequency, distance_m, shadowing);
  const PowerDbm noise = thermal_noise(rx.bandwidth, rx.noise_figure);
  return prx - noise;
}

Decibels sinr(PowerDbm desired, const std::vector<PowerDbm>& interferers,
              PowerDbm noise_floor) {
  double denom_mw = noise_floor.milliwatts();
  for (PowerDbm p : interferers) denom_mw += p.milliwatts();
  return Decibels::from_linear(desired.milliwatts() / denom_mw);
}

}  // namespace dlte::phy
