// WiFi (802.11n-class) PHY abstraction: the comparison waveform.
//
// Models the rate ladder, per-rate SNR requirements, per-frame airtime
// (preamble + payload + SIFS + ACK), and the MAC-level range ceiling: the
// ACK timeout. Unlike LTE, whose scheduler grants timing advance for up to
// 100 km (lte_amc.h), a stock 802.11 station abandons a frame if the ACK
// has not arrived within a fixed slot budget, which caps usable range at a
// couple of kilometres and collapses efficiency just below the cap.
#pragma once

#include "common/time.h"
#include "common/units.h"

namespace dlte::phy {

struct WifiRate {
  DataRate phy_rate;
  double snr_threshold_db;
};

// Number of entries in the rate ladder (1 legacy DSSS + 8 HT MCS).
inline constexpr int kWifiRateCount = 9;

[[nodiscard]] const WifiRate& wifi_rate(int index);

// Highest rate index decodable at `snr`, or -1 if below the lowest rate.
[[nodiscard]] int select_wifi_rate(Decibels snr);

// 802.11 timing constants (OFDM, 20 MHz).
inline constexpr Duration kSifs = Duration::micros(16);
inline constexpr Duration kDifs = Duration::micros(34);
inline constexpr Duration kSlot = Duration::micros(9);
inline constexpr Duration kPhyPreamble = Duration::micros(20);
inline constexpr Duration kAckDuration = Duration::micros(44);
inline constexpr int kCwMin = 15;
inline constexpr int kCwMax = 1023;

// Default ACK-timeout range ceiling for stock equipment (~2 km round trip
// slack). Long-distance WiFi requires nonstandard timeout tuning, which
// trades away MAC efficiency; we model the stock behaviour.
inline constexpr double kWifiAckRangeM = 2000.0;

// Airtime to send one MPDU of `payload_bytes` at rate index `rate` and be
// ACKed (excludes DIFS/backoff, which belong to the MAC).
[[nodiscard]] Duration wifi_frame_airtime(int rate, int payload_bytes);

// Frame-success probability at `snr` for the chosen rate: a logistic
// around the rate threshold (mirrors the LTE BLER model so the comparison
// is apples-to-apples).
[[nodiscard]] double wifi_frame_error_rate(int rate, Decibels snr);

// True if the link distance exceeds the ACK-timeout ceiling, in which case
// the MAC cannot complete exchanges regardless of SNR.
[[nodiscard]] bool beyond_ack_range(double distance_m);

}  // namespace dlte::phy
