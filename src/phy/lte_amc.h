// LTE adaptive modulation & coding abstraction.
//
// Maps SINR → CQI → spectral efficiency → transport-block bits per PRB,
// with a smooth BLER curve around each CQI's 10%-BLER operating point.
// Table values follow 3GPP TS 36.213 Table 7.2.3-1 (CQI efficiencies) and
// customary link-level SINR thresholds.
#pragma once

#include <cstdint>

#include "common/time.h"
#include "common/units.h"

namespace dlte::phy {

// LTE numerology constants used across MAC and PHY.
inline constexpr int kSubcarriersPerPrb = 12;
inline constexpr int kSymbolsPerSubframe = 14;
// Fraction of resource elements left for data after control/reference
// overhead (PDCCH, CRS, PSS/SSS, PBCH).
inline constexpr double kDataReFraction = 0.75;
inline constexpr Duration kSubframe = Duration::millis(1);

// Number of PRBs for a standard LTE channel bandwidth.
[[nodiscard]] int prbs_for_bandwidth(Hertz bandwidth);

struct CqiEntry {
  int cqi;                    // 1..15.
  double efficiency;          // Information bits per resource element.
  double snr_threshold_db;    // SINR at ~10% BLER.
};

// Highest CQI whose threshold is at or below `sinr` (0 = out of range).
[[nodiscard]] int select_cqi(Decibels sinr);

[[nodiscard]] const CqiEntry& cqi_entry(int cqi);

// Transport-block bits carried by `n_prbs` PRBs in one subframe at `cqi`.
[[nodiscard]] int transport_block_bits(int cqi, int n_prbs);

// Block error rate for a transmission at `cqi` observed at `sinr`.
// Calibrated so BLER = 10% when sinr equals the CQI threshold, falling
// steeply (~2 dB/decade) above it.
[[nodiscard]] double bler(int cqi, Decibels sinr);

// Peak PHY rate at a given SINR and bandwidth (used for scenario sizing).
[[nodiscard]] DataRate peak_rate(Decibels sinr, Hertz bandwidth);

// LTE timing advance: the scheduler compensates propagation delay up to
// TA_max (≈0.67 ms → 100 km). Links beyond this cannot be served at all;
// links within it suffer no MAC-efficiency penalty from distance —
// contrast WiFi's ACK-timeout collapse (wifi_phy.h).
inline constexpr double kMaxCellRangeM = 100'000.0;
[[nodiscard]] bool within_timing_advance(double distance_m);

}  // namespace dlte::phy
