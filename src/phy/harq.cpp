#include "phy/harq.h"

#include "phy/lte_amc.h"

namespace dlte::phy {

HarqOutcome HarqProcess::transmit_block(int cqi, Decibels per_tx_sinr) {
  HarqOutcome out;
  double combined_linear = 0.0;
  for (int attempt = 1; attempt <= config_.max_transmissions; ++attempt) {
    out.transmissions = attempt;
    Decibels decode_sinr = per_tx_sinr;
    if (config_.chase_combining) {
      combined_linear += per_tx_sinr.linear();
      decode_sinr = Decibels::from_linear(combined_linear);
    }
    out.effective_sinr_db = decode_sinr.value();
    const double p_fail = bler(cqi, decode_sinr);
    if (!rng_.bernoulli(p_fail)) {
      out.delivered = true;
      return out;
    }
  }
  return out;
}

}  // namespace dlte::phy
