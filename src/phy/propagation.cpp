#include "phy/propagation.h"

#include <algorithm>
#include <cmath>

namespace dlte::phy {

namespace {
// Mobile antenna height correction a(hm) for a small/medium city
// (Okumura-Hata), in dB. The formula is only valid for 1–10 m mobiles;
// clamping keeps basestation-to-basestation links (both ends elevated)
// from producing absurd negative losses.
double mobile_correction(double f_mhz, double hm) {
  hm = std::clamp(hm, 1.0, 10.0);
  return (1.1 * std::log10(f_mhz) - 0.7) * hm -
         (1.56 * std::log10(f_mhz) - 0.8);
}

// Hata base formula shared by Okumura-Hata and COST-231-Hata.
double hata_core(double f_mhz, const LinkGeometry& geo, double c0,
                 double cf) {
  const double d_km = std::max(geo.distance_m, 20.0) / 1000.0;
  const double hb = std::max(geo.base_height_m, 1.0);
  return c0 + cf * std::log10(f_mhz) - 13.82 * std::log10(hb) -
         mobile_correction(f_mhz, geo.mobile_height_m) +
         (44.9 - 6.55 * std::log10(hb)) * std::log10(d_km);
}
}  // namespace

Decibels FreeSpaceModel::path_loss(Hertz frequency,
                                   const LinkGeometry& geo) const {
  const double d = std::max(geo.distance_m, 1.0);
  const double f = frequency.hz();
  // FSPL = 20 log10(4 pi d f / c).
  return Decibels{20.0 * std::log10(4.0 * M_PI * d * f / 299792458.0)};
}

Decibels LogDistanceModel::path_loss(Hertz frequency,
                                     const LinkGeometry& geo) const {
  const double d = std::max(geo.distance_m, reference_m_);
  const double ref_loss =
      FreeSpaceModel{}
          .path_loss(frequency, LinkGeometry{reference_m_, geo.base_height_m,
                                             geo.mobile_height_m})
          .value();
  return Decibels{ref_loss + 10.0 * exponent_ * std::log10(d / reference_m_)};
}

Decibels OkumuraHataModel::path_loss(Hertz frequency,
                                     const LinkGeometry& geo) const {
  const double f = std::clamp(frequency.to_mhz(), 150.0, 1500.0);
  double loss = hata_core(f, geo, 69.55, 26.16);
  switch (env_) {
    case Environment::kUrban:
      break;
    case Environment::kSuburban:
      loss -= 2.0 * std::pow(std::log10(f / 28.0), 2.0) + 5.4;
      break;
    case Environment::kOpenRural:
      loss -= 4.78 * std::pow(std::log10(f), 2.0) - 18.33 * std::log10(f) +
              40.94;
      break;
  }
  return Decibels{loss};
}

Decibels Cost231HataModel::path_loss(Hertz frequency,
                                     const LinkGeometry& geo) const {
  const double f = std::clamp(frequency.to_mhz(), 1500.0, 2600.0);
  double loss = hata_core(f, geo, 46.3, 33.9);
  switch (env_) {
    case Environment::kUrban:
      loss += 3.0;
      break;
    case Environment::kSuburban:
      break;
    case Environment::kOpenRural:
      // COST-231 has no open-area term; apply the Okumura open-area
      // correction, a customary extension for rural planning.
      loss -= 4.78 * std::pow(std::log10(f), 2.0) - 18.33 * std::log10(f) +
              40.94;
      break;
  }
  return Decibels{loss};
}

std::unique_ptr<PropagationModel> make_rural_model(Hertz frequency) {
  if (frequency.to_mhz() <= 1500.0) {
    return std::make_unique<OkumuraHataModel>(Environment::kOpenRural);
  }
  if (frequency.to_mhz() <= 2600.0) {
    return std::make_unique<Cost231HataModel>(Environment::kOpenRural);
  }
  return std::make_unique<LogDistanceModel>(3.0);
}

}  // namespace dlte::phy
