#include "core/enodeb.h"

namespace dlte::core {

EnodeB::EnodeB(sim::Simulator& sim, S1Fabric& fabric, EnbConfig config)
    : sim_(sim), fabric_(fabric), config_(config) {
  ev_label_ = sim_.label("ran.enodeb");
}

void EnodeB::set_tracer(obs::SpanTracer* tracer, const std::string& prefix) {
  tracer_ = tracer;
  span_cat_ = prefix + "ran";
}

void EnodeB::close_attach_span(EnbUeId id, PendingUe& ue,
                               const char* result) {
  obs::span_annotate(tracer_, ue.span, "result", result);
  obs::span_end(tracer_, ue.span);
  if (tracer_ != nullptr) {
    tracer_->take(
        obs::span_key("attach", config_.cell.value(), id.value()));
  }
  ue.span = obs::kNoSpan;
}

void EnodeB::attach_ue(ue::NasClient& client,
                       std::function<void(AttachOutcome)> on_done) {
  const EnbUeId id{next_enb_ue_id_++};
  PendingUe ue;
  ue.client = &client;
  ue.on_done = std::move(on_done);
  ue.started_at = sim_.now();
  ue.span = obs::span_begin(tracer_, "attach", span_cat_);
  obs::span_annotate(tracer_, ue.span, "cell",
                     std::to_string(config_.cell.value()));
  if (tracer_ != nullptr) {
    // Handoff to the core: the MME parents its dialogue phases here.
    tracer_->stash(
        obs::span_key("attach", config_.cell.value(), id.value()), ue.span);
  }
  pending_.emplace(id.value(), std::move(ue));
  ++started_;

  // RRC connection establishment, then the initial NAS message.
  sim_.schedule(
      config_.rrc_setup + config_.radio_one_way,
      [this, id] {
        auto it = pending_.find(id.value());
        if (it == pending_.end()) return;
        lte::InitialUeMessage init;
        init.enb_ue_id = id;
        init.cell = config_.cell;
        init.nas_pdu = lte::encode_nas(it->second.client->start_attach());
        fabric_.enb_send(config_.cell, lte::S1apMessage{init});
      },
      ev_label_);
  // Guard timer: bounded state when the core never answers.
  sim_.schedule(
      config_.attach_guard,
      [this, id] {
        auto it = pending_.find(id.value());
        if (it == pending_.end() || it->second.done) return;
        ++failed_;
        close_attach_span(id, it->second, "guard_expired");
        AttachOutcome out;
        out.success = false;
        out.elapsed = sim_.now() - it->second.started_at;
        auto cb = std::move(it->second.on_done);
        pending_.erase(it);
        if (cb) cb(out);
      },
      ev_label_);
}

void EnodeB::detach_ue(ue::NasClient& client) {
  const auto it = camped_.find(client.tmsi().value());
  if (it == camped_.end()) return;
  lte::UplinkNasTransport up;
  up.enb_ue_id = it->second.enb_ue_id;
  up.mme_ue_id = it->second.mme_ue_id;
  up.nas_pdu = lte::encode_nas(lte::NasMessage{lte::DetachRequest{}});
  camped_.erase(it);
  sim_.schedule(
      config_.radio_one_way,
      [this, up = std::move(up)] {
        fabric_.enb_send(config_.cell, lte::S1apMessage{up});
      },
      ev_label_);
}

void EnodeB::on_s1ap(const lte::S1apMessage& message) {
  if (const auto* down = std::get_if<lte::DownlinkNasTransport>(&message)) {
    auto it = pending_.find(down->enb_ue_id.value());
    if (it == pending_.end()) return;
    // Radio latency down to the UE; reply (if any) pays it back up.
    const EnbUeId enb_id = down->enb_ue_id;
    const MmeUeId mme_id = down->mme_ue_id;
    it->second.mme_ue_id = mme_id;
    const auto pdu = down->nas_pdu;
    sim_.schedule(config_.radio_one_way, [this, enb_id, mme_id, pdu] {
      auto it2 = pending_.find(enb_id.value());
      if (it2 == pending_.end()) return;
      PendingUe& ue = it2->second;
      auto nas = lte::decode_nas(pdu);
      if (!nas) return;
      auto reply = ue.client->handle(*nas);
      if (reply) {
        sim_.schedule(
            config_.radio_one_way,
            [this, enb_id, mme_id, r = *reply] {
              send_nas_to_mme(enb_id, mme_id, r);
            },
            ev_label_);
      }
      check_completion(enb_id, ue);
    },
        ev_label_);
    return;
  }
  if (const auto* paging = std::get_if<lte::Paging>(&message)) {
    ++pages_received_;
    const auto it = camped_.find(paging->tmsi.value());
    if (it == camped_.end()) return;  // Not camped here.
    // Paging occasion + RRC re-establishment, then the service request
    // rides an InitialUeMessage (as in ECM-idle → connected).
    const Tmsi tmsi = paging->tmsi;
    sim_.schedule(
        config_.rrc_setup + config_.radio_one_way,
        [this, tmsi] {
      ++pages_answered_;
      lte::InitialUeMessage init;
      init.enb_ue_id = EnbUeId{next_enb_ue_id_++};
      init.cell = config_.cell;
      init.nas_pdu =
          lte::encode_nas(lte::NasMessage{lte::ServiceRequest{tmsi}});
      fabric_.enb_send(config_.cell, lte::S1apMessage{init});
        },
        ev_label_);
    return;
  }
  if (const auto* ctx =
          std::get_if<lte::InitialContextSetupRequest>(&message)) {
    auto it = pending_.find(ctx->enb_ue_id.value());
    if (it == pending_.end()) return;
    it->second.context_setup = true;
    lte::InitialContextSetupResponse resp;
    resp.enb_ue_id = ctx->enb_ue_id;
    resp.mme_ue_id = ctx->mme_ue_id;
    resp.enb_downlink_teid =
        Teid{config_.downlink_teid_base.value() + ctx->enb_ue_id.value()};
    fabric_.enb_send(config_.cell, lte::S1apMessage{resp});
    check_completion(ctx->enb_ue_id, it->second);
    return;
  }
}

void EnodeB::send_nas_to_mme(EnbUeId enb_id, MmeUeId mme_id,
                             const lte::NasMessage& nas) {
  lte::UplinkNasTransport up;
  up.enb_ue_id = enb_id;
  up.mme_ue_id = mme_id;
  up.nas_pdu = lte::encode_nas(nas);
  fabric_.enb_send(config_.cell, lte::S1apMessage{up});
}

void EnodeB::check_completion(EnbUeId id, PendingUe& ue) {
  if (ue.done) return;
  if (ue.client->state() == ue::NasClientState::kRejected) {
    ue.done = true;
    ++failed_;
    close_attach_span(id, ue, "rejected");
    AttachOutcome out;
    out.success = false;
    out.elapsed = sim_.now() - ue.started_at;
    if (ue.on_done) ue.on_done(out);
    pending_.erase(id.value());
    return;
  }
  if (ue.client->registered() && ue.context_setup) {
    ue.done = true;
    ++succeeded_;
    obs::span_annotate(tracer_, ue.span, "ue_ip",
                       std::to_string(ue.client->ue_ip()));
    close_attach_span(id, ue, "registered");
    AttachOutcome out;
    out.success = true;
    out.elapsed = sim_.now() - ue.started_at;
    out.ue_ip = ue.client->ue_ip();
    // Pageable / detachable from now on.
    camped_[ue.client->tmsi().value()] =
        CampedUe{ue.client, id, ue.mme_ue_id};
    if (ue.on_done) ue.on_done(out);
    pending_.erase(id.value());
  }
}

}  // namespace dlte::core
