#include "core/ue_device.h"

namespace dlte::core {

UeDevice::UeDevice(ue::SimProfile profile,
                   std::unique_ptr<ue::MobilityModel> mobility)
    : primary_imsi_(profile.imsi), mobility_(std::move(mobility)) {
  esim_.add_profile(std::move(profile));
}

ue::NasClient& UeDevice::begin_attachment(
    const std::string& serving_network_id) {
  const ue::SimProfile* profile = esim_.find_open();
  if (profile == nullptr) profile = esim_.find_by_imsi(primary_imsi_);
  nas_.emplace(ue::Usim{*profile}, serving_network_id);
  return *nas_;
}

}  // namespace dlte::core
