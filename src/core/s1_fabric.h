// S1Fabric: the control-plane wiring between eNodeBs and an MME.
//
// The same MME code serves both architectures; what differs is the pipe:
//   * a dLTE local core stub sits on the AP itself — S1 is an in-process
//     call with microseconds of latency;
//   * a centralized core is across the backhaul — S1 rides real packets
//     through the Network substrate, paying serialization + propagation
//     and sharing links with user traffic.
// The fabric installs itself as the MME's sender and routes downlink
// S1AP by cell to the registered eNodeB handler.
#pragma once

#include <functional>
#include <unordered_map>

#include "common/ids.h"
#include "epc/mme.h"
#include "lte/s1ap.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace dlte::core {

// Network protocol tag for S1AP packets.
inline constexpr std::uint16_t kS1apProtocol = 0x5331;  // "S1".

class S1Fabric {
 public:
  using EnbHandler = std::function<void(const lte::S1apMessage&)>;

  S1Fabric(sim::Simulator& sim, epc::Mme& mme);

  // In-process stub attachment (dLTE local core): one-way `latency`.
  void register_enb_direct(CellId cell, Duration latency,
                           EnbHandler handler);

  // Backhaul attachment (centralized core): S1AP rides `net` between the
  // eNodeB's node and the core site's node.
  void register_enb_networked(net::Network& net, CellId cell,
                              NodeId enb_node, NodeId core_node,
                              EnbHandler handler);

  // eNodeB → MME direction.
  void enb_send(CellId cell, lte::S1apMessage message);

  [[nodiscard]] std::uint64_t uplink_messages() const { return up_count_; }
  [[nodiscard]] std::uint64_t downlink_messages() const { return down_count_; }

 private:
  struct Endpoint {
    bool networked{false};
    Duration latency{};
    net::Network* net{nullptr};
    NodeId enb_node;
    NodeId core_node;
    EnbHandler handler;
  };

  void mme_send(CellId cell, lte::S1apMessage message);
  void install_core_handler(net::Network& net, NodeId core_node);

  sim::Simulator& sim_;
  std::uint32_t ev_label_{0};
  epc::Mme& mme_;
  std::unordered_map<CellId, Endpoint> endpoints_;
  bool core_handler_installed_{false};
  std::uint64_t up_count_{0};
  std::uint64_t down_count_{0};
};

}  // namespace dlte::core
