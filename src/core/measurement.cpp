#include "core/measurement.h"

namespace dlte::core {

MeasurementEngine::MeasurementEngine(sim::Simulator& sim,
                                     RadioEnvironment& radio,
                                     lte::RrcMeasurementConfig config)
    : sim_(sim), radio_(radio), config_(config) {}

void MeasurementEngine::start(UeDevice& ue, CellId serving,
                              ReportCallback on_report) {
  ue_ = &ue;
  serving_ = serving;
  on_report_ = std::move(on_report);
  armed_ = true;
  above_for_ = Duration{};
  candidate_.reset();
  if (!running_) {
    running_ = true;
    ticker_ = sim_.every_cancellable(
        Duration::millis(config_.sample_period_ms), [this] {
          if (running_) sample();
        });
  }
}

void MeasurementEngine::stop() {
  running_ = false;
  ticker_.cancel();
}

void MeasurementEngine::set_serving(CellId serving) {
  serving_ = serving;
  armed_ = true;
  above_for_ = Duration{};
  candidate_.reset();
}

void MeasurementEngine::sample() {
  if (ue_ == nullptr || !armed_) return;
  const Position pos = ue_->position();
  const double serving_rsrp = radio_.rsrp(serving_, pos).value();

  // Strongest neighbour.
  std::optional<CellId> best;
  double best_rsrp = -1e9;
  for (CellId cell : radio_.cell_ids()) {
    if (cell == serving_) continue;
    const double p = radio_.rsrp(cell, pos).value();
    if (p > best_rsrp) {
      best_rsrp = p;
      best = cell;
    }
  }
  if (!best) return;

  const bool entering = best_rsrp > serving_rsrp + config_.a3_offset_db;
  if (!entering || (candidate_ && *candidate_ != *best)) {
    // Condition broken or candidate changed: restart the TTT clock.
    above_for_ = Duration{};
    candidate_ = entering ? best : std::nullopt;
    return;
  }
  candidate_ = best;
  above_for_ += Duration::millis(config_.sample_period_ms);
  if (above_for_.to_millis() + 1e-9 <
      static_cast<double>(config_.time_to_trigger_ms)) {
    return;
  }
  // A3 event: fire once, disarm until the serving cell changes.
  armed_ = false;
  ++reports_;
  if (on_report_) {
    on_report_(lte::RrcMeasurementReport{serving_, serving_rsrp, *best,
                                         best_rsrp});
  }
}

}  // namespace dlte::core
