// EnodeB: the radio-side control agent of one cell.
//
// Relays NAS between UEs and whichever MME the S1Fabric wires in (local
// stub or centralized), paying radio-interface latency per round trip
// (RRC scheduling, SR/grant cycles). Tracks per-attach timing so the
// architecture experiments can compare attach latency under both
// deployments with identical protocol work.
#pragma once

#include <functional>
#include <unordered_map>

#include "core/s1_fabric.h"
#include "lte/nas.h"
#include "obs/span.h"
#include "ue/nas_client.h"

namespace dlte::core {

struct EnbConfig {
  CellId cell;
  // One-way radio latency for a NAS message (HARQ + scheduling).
  Duration radio_one_way{Duration::millis(10)};
  // RRC connection establishment before the first NAS message flies.
  Duration rrc_setup{Duration::millis(50)};
  Teid downlink_teid_base{1000};
  // Guard timer: an attach that has not completed by then fails (T3410-
  // style). Keeps eNodeB state bounded when the core is unreachable.
  Duration attach_guard{Duration::seconds(15.0)};
};

struct AttachOutcome {
  bool success{false};
  Duration elapsed{};
  std::uint32_t ue_ip{0};
};

class EnodeB {
 public:
  EnodeB(sim::Simulator& sim, S1Fabric& fabric, EnbConfig config);

  // Run the full attach for `client` (RRC setup + NAS dialogue + context
  // setup). The callback fires exactly once — on success, NAS-level
  // rejection, or guard-timer expiry.
  void attach_ue(ue::NasClient& client,
                 std::function<void(AttachOutcome)> on_done);

  // UE-initiated detach: tears the session down at the core and removes
  // the UE from the camped set. Requires a previously completed attach.
  void detach_ue(ue::NasClient& client);

  // Handler to register with the S1Fabric for this cell.
  void on_s1ap(const lte::S1apMessage& message);

  [[nodiscard]] CellId cell() const { return config_.cell; }
  [[nodiscard]] int attaches_started() const { return started_; }
  [[nodiscard]] int attaches_succeeded() const { return succeeded_; }
  [[nodiscard]] int attaches_failed() const { return failed_; }
  [[nodiscard]] int pages_received() const { return pages_received_; }
  [[nodiscard]] int pages_answered() const { return pages_answered_; }

  // Causal tracing: each attach_ue() opens an "attach" root span in
  // category `<prefix>ran`, covering RRC setup through completion/guard
  // expiry, and stashes it under span_key("attach", cell, enb_ue_id) so
  // the MME parents its dialogue phases beneath it. Null-safe.
  void set_tracer(obs::SpanTracer* tracer, const std::string& prefix = "");

 private:
  struct PendingUe {
    ue::NasClient* client{nullptr};
    std::function<void(AttachOutcome)> on_done;
    TimePoint started_at{};
    MmeUeId mme_ue_id{};
    bool context_setup{false};
    bool done{false};
    obs::SpanId span{obs::kNoSpan};
  };
  struct CampedUe {
    ue::NasClient* client{nullptr};
    EnbUeId enb_ue_id{};
    MmeUeId mme_ue_id{};
  };

  void deliver_nas_to_ue(EnbUeId id, const std::vector<std::uint8_t>& pdu);
  void send_nas_to_mme(EnbUeId enb_id, MmeUeId mme_id,
                       const lte::NasMessage& nas);
  void check_completion(EnbUeId id, PendingUe& ue);
  // Annotates the outcome, closes the attach span, and drops the stash.
  void close_attach_span(EnbUeId id, PendingUe& ue, const char* result);

  sim::Simulator& sim_;
  std::uint32_t ev_label_{0};
  S1Fabric& fabric_;
  EnbConfig config_;
  std::unordered_map<std::uint32_t, PendingUe> pending_;
  // UEs camped on this cell after attach (by TMSI): these can answer a
  // page with a ServiceRequest or originate a detach.
  std::unordered_map<std::uint32_t, CampedUe> camped_;
  std::uint32_t next_enb_ue_id_{1};
  obs::SpanTracer* tracer_{nullptr};
  std::string span_cat_{"ran"};
  int started_{0};
  int succeeded_{0};
  int failed_{0};
  int pages_received_{0};
  int pages_answered_{0};
};

}  // namespace dlte::core
