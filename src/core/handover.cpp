#include "core/handover.h"

namespace dlte::core {

HandoverManager::HandoverManager(sim::Simulator& sim, DlteAccessPoint& ap)
    : sim_(sim), ap_(ap) {
  ap_.coordinator().set_handover_sink(
      [this](const lte::X2Message& m, NodeId from) { on_x2(m, from); });
}

void HandoverManager::set_tracer(obs::SpanTracer* tracer,
                                 const std::string& prefix) {
  tracer_ = tracer;
  span_cat_ = prefix + "handover";
}

void HandoverManager::initiate(UeDevice& ue, ApId target_ap,
                               mac::UeTrafficConfig traffic,
                               std::function<void(HandoverOutcome)> on_done) {
  const Imsi imsi = ue.imsi();
  HandoverOutcome fail_out;
  const auto trace_refusal = [&](const std::string& why) {
    // A zero-duration marker span: the refusal is still a procedure the
    // trace should show, it just never left this AP.
    const obs::SpanId s =
        obs::span_begin(tracer_, "handover_refused", span_cat_);
    obs::span_annotate(tracer_, s, "imsi", std::to_string(imsi.value()));
    obs::span_annotate(tracer_, s, "reason", why);
    obs::span_end(tracer_, s);
  };
  if (ap_.coordinator().mode() != lte::DlteMode::kCooperative) {
    fail_out.failure_reason = "source AP not in cooperative mode";
    trace_refusal(fail_out.failure_reason);
    if (on_done) on_done(fail_out);
    return;
  }
  if (!ap_.core().mme().is_registered(imsi)) {
    fail_out.failure_reason = "UE not registered at source";
    trace_refusal(fail_out.failure_reason);
    if (on_done) on_done(fail_out);
    return;
  }
  if (!ap_.coordinator().peer_node(target_ap)) {
    fail_out.failure_reason = "target AP is not a known peer";
    trace_refusal(fail_out.failure_reason);
    if (on_done) on_done(fail_out);
    return;
  }
  ++initiated_;
  Pending p;
  p.ue = &ue;
  p.traffic = traffic;
  p.on_done = std::move(on_done);
  p.started_at = sim_.now();
  p.target = target_ap;
  p.span = obs::span_begin(tracer_, "handover", span_cat_);
  obs::span_annotate(tracer_, p.span, "imsi", std::to_string(imsi.value()));
  obs::span_annotate(tracer_, p.span, "target_ap",
                     std::to_string(target_ap.value()));
  if (tracer_ != nullptr) {
    // The target AP's manager parents its admission span here.
    tracer_->stash(obs::span_key("handover", imsi.value()), p.span);
  }
  pending_[imsi.value()] = std::move(p);

  // Forward the UE context (K_eNB* stands in for the derived chain).
  lte::X2HandoverRequest req;
  req.source_cell = ap_.cell_id();
  req.target_cell = CellId{target_ap.value()};
  req.imsi = imsi;
  req.tmsi = ue.nas() != nullptr ? ue.nas()->tmsi() : Tmsi{0};
  req.security_context.assign(32, 0x5a);
  if (ue.nas() != nullptr) {
    const auto& kasme = ue.nas()->kasme();
    req.security_context.assign(kasme.begin(), kasme.end());
  }
  ap_.coordinator().send_to_peer(target_ap, lte::X2Message{req});

  // Admission timeout: a non-cooperative or unreachable target never
  // answers; the source falls back (the caller decides how — typically a
  // plain re-attach).
  sim_.schedule(Duration::millis(300), [this, imsi] {
    const auto it = pending_.find(imsi.value());
    if (it == pending_.end()) return;  // Completed in time.
    HandoverOutcome out;
    out.failure_reason = "handover admission timed out";
    obs::span_annotate(tracer_, it->second.span, "result",
                       "admission_timeout");
    obs::span_end(tracer_, it->second.span);
    if (tracer_ != nullptr) {
      tracer_->take(obs::span_key("handover", imsi.value()));
    }
    auto cb = std::move(it->second.on_done);
    pending_.erase(it);
    if (cb) cb(out);
  });
}

void HandoverManager::on_x2(const lte::X2Message& message, NodeId from) {
  if (const auto* req = std::get_if<lte::X2HandoverRequest>(&message)) {
    handle_request(*req, from);
    return;
  }
  if (const auto* ack = std::get_if<lte::X2HandoverRequestAck>(&message)) {
    handle_ack(*ack);
    return;
  }
  if (const auto* rel = std::get_if<lte::X2UeContextRelease>(&message)) {
    // Source confirms it released the UE; nothing further to do — the
    // target admitted the context at request time.
    (void)rel;
    return;
  }
}

void HandoverManager::handle_request(const lte::X2HandoverRequest& request,
                                     NodeId from) {
  // The admission happens on the target AP, but parents under the
  // source's stashed "handover" span (one tracer spans the peer group).
  const obs::SpanId parent =
      tracer_ != nullptr
          ? tracer_->stashed(obs::span_key("handover", request.imsi.value()))
          : obs::kNoSpan;
  const obs::SpanId admit =
      obs::span_begin(tracer_, "handover_admit", span_cat_, parent);
  obs::ScopedActivation act{tracer_, admit};
  // Cooperation is consensual: refuse silently unless we opted in.
  if (ap_.coordinator().mode() != lte::DlteMode::kCooperative) {
    ++refused_;
    obs::span_annotate(tracer_, admit, "result", "refused: not cooperative");
    obs::span_end(tracer_, admit);
    return;
  }
  auto bearer = ap_.core().mme().admit_handover(
      request.imsi, ap_.cell_id(), request.security_context);
  if (!bearer) {
    ++refused_;
    obs::span_annotate(tracer_, admit, "result",
                       "refused: " + bearer.error());
    obs::span_end(tracer_, admit);
    return;
  }
  ++admitted_;
  obs::span_annotate(tracer_, admit, "result", "admitted");
  obs::span_annotate(tracer_, admit, "new_ue_ip", bearer->ue_ip.to_string());
  obs::span_end(tracer_, admit);
  lte::X2HandoverRequestAck ack;
  ack.target_cell = ap_.cell_id();
  ack.imsi = request.imsi;
  ack.forwarding_teid = bearer->uplink_teid;
  ack.new_ue_ip = bearer->ue_ip.addr;
  ap_.coordinator().send_to_node(from, lte::X2Message{ack});
}

void HandoverManager::handle_ack(const lte::X2HandoverRequestAck& ack) {
  const auto it = pending_.find(ack.imsi.value());
  if (it == pending_.end()) return;  // Timed out already.
  Pending pending = std::move(it->second);
  pending_.erase(it);

  // Release our side and command the UE over RRC: the radio interruption
  // is one reconfiguration, not a fresh attach.
  obs::ScopedActivation act{tracer_, pending.span};
  ap_.core().mme().release_ue(ack.imsi);
  if (pending.ue != nullptr) ap_.drop_ue(*pending.ue);
  ap_.coordinator().send_to_peer(
      pending.target,
      lte::X2Message{lte::X2UeContextRelease{ap_.cell_id(), ack.imsi}});

  const obs::SpanId rrc =
      obs::span_begin(tracer_, "rrc_reconfiguration", span_cat_, pending.span);
  sim_.schedule(kRrcReconfiguration, [this, pending = std::move(pending),
                                      ack, rrc]() mutable {
    obs::span_end(tracer_, rrc);
    obs::span_annotate(tracer_, pending.span, "result", "success");
    obs::span_annotate(tracer_, pending.span, "new_ue_ip",
                       std::to_string(ack.new_ue_ip));
    obs::span_end(tracer_, pending.span);
    if (tracer_ != nullptr) {
      tracer_->take(obs::span_key("handover", ack.imsi.value()));
    }
    HandoverOutcome out;
    out.success = true;
    out.interruption = kRrcReconfiguration;
    out.total = sim_.now() - pending.started_at;
    out.new_ue_ip = ack.new_ue_ip;
    if (pending.on_done) pending.on_done(out);
  });
}

}  // namespace dlte::core
