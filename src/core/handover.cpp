#include "core/handover.h"

namespace dlte::core {

HandoverManager::HandoverManager(sim::Simulator& sim, DlteAccessPoint& ap)
    : sim_(sim), ap_(ap) {
  ap_.coordinator().set_handover_sink(
      [this](const lte::X2Message& m, NodeId from) { on_x2(m, from); });
}

void HandoverManager::initiate(UeDevice& ue, ApId target_ap,
                               mac::UeTrafficConfig traffic,
                               std::function<void(HandoverOutcome)> on_done) {
  const Imsi imsi = ue.imsi();
  HandoverOutcome fail_out;
  if (ap_.coordinator().mode() != lte::DlteMode::kCooperative) {
    fail_out.failure_reason = "source AP not in cooperative mode";
    if (on_done) on_done(fail_out);
    return;
  }
  if (!ap_.core().mme().is_registered(imsi)) {
    fail_out.failure_reason = "UE not registered at source";
    if (on_done) on_done(fail_out);
    return;
  }
  if (!ap_.coordinator().peer_node(target_ap)) {
    fail_out.failure_reason = "target AP is not a known peer";
    if (on_done) on_done(fail_out);
    return;
  }
  ++initiated_;
  Pending p;
  p.ue = &ue;
  p.traffic = traffic;
  p.on_done = std::move(on_done);
  p.started_at = sim_.now();
  p.target = target_ap;
  pending_[imsi.value()] = std::move(p);

  // Forward the UE context (K_eNB* stands in for the derived chain).
  lte::X2HandoverRequest req;
  req.source_cell = ap_.cell_id();
  req.target_cell = CellId{target_ap.value()};
  req.imsi = imsi;
  req.tmsi = ue.nas() != nullptr ? ue.nas()->tmsi() : Tmsi{0};
  req.security_context.assign(32, 0x5a);
  if (ue.nas() != nullptr) {
    const auto& kasme = ue.nas()->kasme();
    req.security_context.assign(kasme.begin(), kasme.end());
  }
  ap_.coordinator().send_to_peer(target_ap, lte::X2Message{req});

  // Admission timeout: a non-cooperative or unreachable target never
  // answers; the source falls back (the caller decides how — typically a
  // plain re-attach).
  sim_.schedule(Duration::millis(300), [this, imsi] {
    const auto it = pending_.find(imsi.value());
    if (it == pending_.end()) return;  // Completed in time.
    HandoverOutcome out;
    out.failure_reason = "handover admission timed out";
    auto cb = std::move(it->second.on_done);
    pending_.erase(it);
    if (cb) cb(out);
  });
}

void HandoverManager::on_x2(const lte::X2Message& message, NodeId from) {
  if (const auto* req = std::get_if<lte::X2HandoverRequest>(&message)) {
    handle_request(*req, from);
    return;
  }
  if (const auto* ack = std::get_if<lte::X2HandoverRequestAck>(&message)) {
    handle_ack(*ack);
    return;
  }
  if (const auto* rel = std::get_if<lte::X2UeContextRelease>(&message)) {
    // Source confirms it released the UE; nothing further to do — the
    // target admitted the context at request time.
    (void)rel;
    return;
  }
}

void HandoverManager::handle_request(const lte::X2HandoverRequest& request,
                                     NodeId from) {
  // Cooperation is consensual: refuse silently unless we opted in.
  if (ap_.coordinator().mode() != lte::DlteMode::kCooperative) {
    ++refused_;
    return;
  }
  auto bearer = ap_.core().mme().admit_handover(
      request.imsi, ap_.cell_id(), request.security_context);
  if (!bearer) {
    ++refused_;
    return;
  }
  ++admitted_;
  lte::X2HandoverRequestAck ack;
  ack.target_cell = ap_.cell_id();
  ack.imsi = request.imsi;
  ack.forwarding_teid = bearer->uplink_teid;
  ack.new_ue_ip = bearer->ue_ip.addr;
  ap_.coordinator().send_to_node(from, lte::X2Message{ack});
}

void HandoverManager::handle_ack(const lte::X2HandoverRequestAck& ack) {
  const auto it = pending_.find(ack.imsi.value());
  if (it == pending_.end()) return;  // Timed out already.
  Pending pending = std::move(it->second);
  pending_.erase(it);

  // Release our side and command the UE over RRC: the radio interruption
  // is one reconfiguration, not a fresh attach.
  ap_.core().mme().release_ue(ack.imsi);
  if (pending.ue != nullptr) ap_.drop_ue(*pending.ue);
  ap_.coordinator().send_to_peer(
      pending.target,
      lte::X2Message{lte::X2UeContextRelease{ap_.cell_id(), ack.imsi}});

  sim_.schedule(kRrcReconfiguration, [this, pending = std::move(pending),
                                      ack]() mutable {
    HandoverOutcome out;
    out.success = true;
    out.interruption = kRrcReconfiguration;
    out.total = sim_.now() - pending.started_at;
    out.new_ue_ip = ack.new_ue_ip;
    if (pending.on_done) pending.on_done(out);
  });
}

}  // namespace dlte::core
