// RadioEnvironment: the shared RF world of one geographic area.
//
// Holds every cell site (dLTE AP, telecom macro, or WiFi AP repurposed as
// an LTE comparison point), computes RSRP / SINR for arbitrary UE
// positions, and encodes the coordination semantics of §4.3: cells that
// belong to a coordination domain hold *orthogonal* time-frequency shares
// (no co-channel interference between them — that is the point of the
// agreement), while uncoordinated co-channel cells interfere in
// proportion to their transmit duty cycle.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/geo.h"
#include "common/ids.h"
#include "common/units.h"
#include "phy/link_budget.h"
#include "phy/propagation.h"

namespace dlte::core {

struct CellSiteConfig {
  CellId id;
  Position position;
  phy::RadioProfile profile{phy::DeviceProfiles::lte_enb_rural()};
  Hertz frequency{Hertz::mhz(850.0)};
};

class RadioEnvironment {
 public:
  explicit RadioEnvironment(
      phy::Environment terrain = phy::Environment::kOpenRural);

  void add_cell(const CellSiteConfig& config);
  [[nodiscard]] bool has_cell(CellId id) const { return cells_.contains(id); }
  [[nodiscard]] std::vector<CellId> cell_ids() const;

  // Coordination state (driven by the PeerCoordinator / scenario).
  void set_coordinated(CellId id, bool coordinated);
  void set_activity(CellId id, double duty_cycle);  // 0..1.

  // Failure state (driven by fault injection): an inactive cell is off the
  // air — it neither serves (RSRP at the noise floor) nor interferes.
  void set_cell_active(CellId id, bool active);
  [[nodiscard]] bool cell_active(CellId id) const;

  // Transmit-power backoff in dB (≥ 0). Used by the registry-lease
  // degraded mode: an AP that cannot renew its grant keeps serving at
  // conservative power instead of going dark.
  void set_power_backoff_db(CellId id, double backoff_db);

  // UE receiver profile used for downlink computations.
  void set_ue_profile(const phy::RadioProfile& profile) {
    ue_profile_ = profile;
  }

  [[nodiscard]] PowerDbm rsrp(CellId cell, Position ue) const;
  [[nodiscard]] Decibels downlink_sinr(CellId serving, Position ue) const;
  // Uplink is scheduled (orthogonal within a cell); interference-free
  // SINR at the basestation.
  [[nodiscard]] Decibels uplink_sinr(CellId serving, Position ue) const;

  // Strongest cell by RSRP, if any is above the detection floor.
  [[nodiscard]] std::optional<CellId> best_cell(Position ue) const;
  [[nodiscard]] const CellSiteConfig& cell(CellId id) const;
  [[nodiscard]] double cell_distance_m(CellId id, Position ue) const;

 private:
  struct Site {
    CellSiteConfig config;
    std::unique_ptr<phy::PropagationModel> model;
    bool coordinated{false};
    double activity{1.0};
    bool active{true};
    double power_backoff_db{0.0};
  };

  [[nodiscard]] bool co_channel(const Site& a, const Site& b) const;
  [[nodiscard]] PowerDbm rx_power(const Site& site, Position ue) const;

  phy::Environment terrain_;
  std::unordered_map<CellId, Site> cells_;
  phy::RadioProfile ue_profile_{phy::DeviceProfiles::lte_ue()};

  static constexpr double kDetectionFloorDbm = -110.0;
};

}  // namespace dlte::core
