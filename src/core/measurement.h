// MeasurementEngine: UE-side A3 measurement events.
//
// The UE periodically samples RSRP of the serving cell and the strongest
// neighbour in the shared radio environment. When the neighbour stays
// `a3_offset_db` better than serving for the full time-to-trigger, one
// RrcMeasurementReport fires — the input that drives handover decisions
// (core/handover.h) in cooperative mode, or tells the scenario it is
// time to re-attach in plain dLTE. Hysteresis + TTT is what suppresses
// ping-pong at cell borders.
#pragma once

#include <functional>
#include <optional>

#include "core/radio_env.h"
#include "core/ue_device.h"
#include "lte/rrc.h"
#include "sim/simulator.h"

namespace dlte::core {

class MeasurementEngine {
 public:
  using ReportCallback = std::function<void(const lte::RrcMeasurementReport&)>;

  MeasurementEngine(sim::Simulator& sim, RadioEnvironment& radio,
                    lte::RrcMeasurementConfig config);

  // Begin sampling for `ue`, served by `serving`. Each qualifying A3
  // event produces exactly one report; the engine re-arms after
  // set_serving() (i.e. once the handover happened).
  void start(UeDevice& ue, CellId serving, ReportCallback on_report);
  void stop();
  void set_serving(CellId serving);

  [[nodiscard]] int reports_fired() const { return reports_; }
  [[nodiscard]] CellId serving() const { return serving_; }

 private:
  void sample();

  sim::Simulator& sim_;
  RadioEnvironment& radio_;
  lte::RrcMeasurementConfig config_;
  sim::Simulator::PeriodicHandle ticker_;
  UeDevice* ue_{nullptr};
  CellId serving_{};
  ReportCallback on_report_;
  bool running_{false};
  bool armed_{true};        // One report per event.
  Duration above_for_{};    // Accumulated time-above-threshold (TTT).
  std::optional<CellId> candidate_;
  int reports_{0};
};

}  // namespace dlte::core
