// UeDevice: a complete simulated handset.
//
// Bundles the eSIM store, position/mobility, and (per attachment) a NAS
// client. In dLTE a UE that moves to a new AP simply runs a fresh attach
// there with its open identity (§4.2) — there is no cross-AP context, so
// the device object is deliberately re-attachable.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "ue/mobility.h"
#include "ue/nas_client.h"
#include "ue/usim.h"

namespace dlte::core {

class UeDevice {
 public:
  UeDevice(ue::SimProfile profile,
           std::unique_ptr<ue::MobilityModel> mobility);

  [[nodiscard]] Imsi imsi() const { return esim_.find_open() != nullptr
                                        ? esim_.find_open()->imsi
                                        : primary_imsi_; }
  [[nodiscard]] ue::EsimStore& esim() { return esim_; }

  [[nodiscard]] Position position() const { return mobility_->position(); }
  Position advance(Duration dt) { return mobility_->advance(dt); }

  // Begin an attachment to a network: creates a fresh NAS client bound to
  // that network's serving id. Any previous attachment state is dropped
  // (dLTE semantics — no network-side context follows the UE).
  ue::NasClient& begin_attachment(const std::string& serving_network_id);
  [[nodiscard]] ue::NasClient* nas() { return nas_ ? &*nas_ : nullptr; }
  [[nodiscard]] bool attached() const {
    return nas_.has_value() && nas_->registered();
  }
  [[nodiscard]] std::uint32_t current_ip() const {
    return nas_ ? nas_->ue_ip() : 0;
  }

 private:
  ue::EsimStore esim_;
  Imsi primary_imsi_;
  std::unique_ptr<ue::MobilityModel> mobility_;
  std::optional<ue::NasClient> nas_;
};

}  // namespace dlte::core
