#include "core/radio_env.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dlte::core {

RadioEnvironment::RadioEnvironment(phy::Environment terrain)
    : terrain_(terrain) {}

void RadioEnvironment::add_cell(const CellSiteConfig& config) {
  Site site;
  site.config = config;
  // Rural deployments use the band-appropriate empirical model; other
  // terrains use the same family with the terrain variant.
  if (terrain_ == phy::Environment::kOpenRural) {
    site.model = phy::make_rural_model(config.frequency);
  } else if (config.frequency.to_mhz() <= 1500.0) {
    site.model = std::make_unique<phy::OkumuraHataModel>(terrain_);
  } else if (config.frequency.to_mhz() <= 2600.0) {
    site.model = std::make_unique<phy::Cost231HataModel>(terrain_);
  } else {
    site.model = std::make_unique<phy::LogDistanceModel>(3.2);
  }
  cells_.emplace(config.id, std::move(site));
}

std::vector<CellId> RadioEnvironment::cell_ids() const {
  std::vector<CellId> out;
  out.reserve(cells_.size());
  for (const auto& [id, site] : cells_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

void RadioEnvironment::set_coordinated(CellId id, bool coordinated) {
  cells_.at(id).coordinated = coordinated;
}

void RadioEnvironment::set_activity(CellId id, double duty_cycle) {
  cells_.at(id).activity = std::clamp(duty_cycle, 0.0, 1.0);
}

void RadioEnvironment::set_cell_active(CellId id, bool active) {
  cells_.at(id).active = active;
}

bool RadioEnvironment::cell_active(CellId id) const {
  return cells_.at(id).active;
}

void RadioEnvironment::set_power_backoff_db(CellId id, double backoff_db) {
  cells_.at(id).power_backoff_db = std::max(backoff_db, 0.0);
}

bool RadioEnvironment::co_channel(const Site& a, const Site& b) const {
  const double half = (a.config.profile.bandwidth.hz() +
                       b.config.profile.bandwidth.hz()) /
                      2.0;
  return std::abs(a.config.frequency.hz() - b.config.frequency.hz()) < half;
}

PowerDbm RadioEnvironment::rx_power(const Site& site, Position ue) const {
  // An off-air cell radiates nothing: far below any detection floor, and
  // numerically ~0 mW in interference sums.
  if (!site.active) return PowerDbm{-300.0};
  const double d = distance_m(site.config.position, ue);
  const PowerDbm p = phy::received_power(site.config.profile, ue_profile_,
                                         *site.model, site.config.frequency,
                                         d);
  return PowerDbm{p.value() - site.power_backoff_db};
}

PowerDbm RadioEnvironment::rsrp(CellId cell, Position ue) const {
  return rx_power(cells_.at(cell), ue);
}

Decibels RadioEnvironment::downlink_sinr(CellId serving, Position ue) const {
  const Site& s = cells_.at(serving);
  const PowerDbm desired = rx_power(s, ue);
  const PowerDbm noise =
      thermal_noise(ue_profile_.bandwidth, ue_profile_.noise_figure);

  double denom_mw = noise.milliwatts();
  for (const auto& [id, other] : cells_) {
    if (id == serving) continue;
    if (!co_channel(s, other)) continue;
    // Coordinated cells hold orthogonal shares: no mutual interference.
    if (s.coordinated && other.coordinated) continue;
    denom_mw += rx_power(other, ue).milliwatts() * other.activity;
  }
  return Decibels::from_linear(desired.milliwatts() / denom_mw);
}

Decibels RadioEnvironment::uplink_sinr(CellId serving, Position ue) const {
  const Site& s = cells_.at(serving);
  if (!s.active) return Decibels{-300.0};
  const double d = distance_m(s.config.position, ue);
  return phy::link_snr(ue_profile_, s.config.profile, *s.model,
                       s.config.frequency, d);
}

std::optional<CellId> RadioEnvironment::best_cell(Position ue) const {
  std::optional<CellId> best;
  double best_dbm = kDetectionFloorDbm;
  for (const auto& [id, site] : cells_) {
    const double p = rx_power(site, ue).value();
    if (p > best_dbm) {
      best_dbm = p;
      best = id;
    }
  }
  return best;
}

const CellSiteConfig& RadioEnvironment::cell(CellId id) const {
  return cells_.at(id).config;
}

double RadioEnvironment::cell_distance_m(CellId id, Position ue) const {
  return distance_m(cells_.at(id).config.position, ue);
}

}  // namespace dlte::core
