#include "core/backhaul_mesh.h"

#include "phy/link_budget.h"
#include "phy/propagation.h"

namespace dlte::core {

BackhaulMesh::BackhaulMesh(sim::Simulator& sim, net::Network& net,
                           RadioEnvironment& radio, NodeId internet)
    : sim_(sim), net_(net), radio_(radio), internet_(internet) {}

DataRate BackhaulMesh::relay_rate(double distance_m) {
  // Tower-to-tower link at the deployment band: both ends elevated with
  // sector antennas, so the budget is far better than an AP↔handset link.
  const auto profile = phy::DeviceProfiles::lte_enb_rural();
  const auto model = phy::make_rural_model(Hertz::mhz(850.0));
  const Decibels snr = phy::link_snr(profile, profile, *model,
                                     Hertz::mhz(850.0), distance_m);
  return phy::peak_rate(snr, profile.bandwidth);
}

void BackhaulMesh::add_member(DlteAccessPoint& ap) {
  MeshMemberInfo info{ap.id(), ap.node(), ap.cell_id(),
                      radio_.cell(ap.cell_id()).position};
  const std::size_t index = members_.size();
  // Provision standby relays to every member in usable radio range: the
  // link budget must support useful backhaul AND the hop must stay within
  // mesh planning range (one LTE cell radius).
  constexpr double kMaxRelayRangeM = 30'000.0;
  for (std::size_t other = 0; other < members_.size(); ++other) {
    const double d = distance_m(info.position, members_[other].position);
    const DataRate rate = relay_rate(d);
    if (d > kMaxRelayRangeM || rate.to_mbps() < 1.0) continue;
    // Relay latency: one LTE scheduling hop.
    net_.add_link(info.node, members_[other].node,
                  net::LinkConfig{rate, Duration::millis(8), 256 * 1024});
    net_.set_link_enabled(info.node, members_[other].node, false);
    relays_.push_back(Relay{index, other, false});
    ++stats_.relays_provisioned;
  }
  members_.push_back(info);
}

void BackhaulMesh::enable(Duration check_period) {
  if (enabled_) return;
  enabled_ = true;
  watchdog_ = sim_.every_cancellable(check_period,
                                     [this] { check_health(); });
}

bool BackhaulMesh::backhaul_alive(std::size_t member) const {
  return net_.has_route(members_[member].node, internet_);
}

void BackhaulMesh::check_health() {
  // Probe own-backhaul health with every relay down, so an active relay
  // doesn't mask a still-broken uplink.
  std::vector<bool> was_active(relays_.size());
  for (std::size_t i = 0; i < relays_.size(); ++i) {
    was_active[i] = relays_[i].active;
    if (relays_[i].active) {
      net_.set_link_enabled(members_[relays_[i].a].node,
                            members_[relays_[i].b].node, false);
      relays_[i].active = false;
    }
  }

  std::vector<bool> alive(members_.size());
  bool any_dead = false;
  for (std::size_t m = 0; m < members_.size(); ++m) {
    alive[m] = backhaul_alive(m);
    any_dead |= !alive[m];
  }

  if (any_dead) {
    // Bring up every relay touching a dead member: the routing plane then
    // finds a path — possibly multi-hop through other dead members — to
    // one whose backhaul still works (§7's emergency redundancy).
    for (std::size_t i = 0; i < relays_.size(); ++i) {
      Relay& r = relays_[i];
      if (!alive[r.a] || !alive[r.b]) {
        net_.set_link_enabled(members_[r.a].node, members_[r.b].node, true);
        r.active = true;
        if (!was_active[i]) ++stats_.activations;
      }
    }
  }
  for (std::size_t i = 0; i < relays_.size(); ++i) {
    if (was_active[i] && !relays_[i].active) ++stats_.deactivations;
  }
}

int BackhaulMesh::active_relays() const {
  int n = 0;
  for (const auto& r : relays_) n += r.active ? 1 : 0;
  return n;
}

}  // namespace dlte::core
