#include "core/s1_fabric.h"

#include <optional>

#include "common/bytes.h"

namespace dlte::core {

namespace {
// S1AP packets carry a cell-id prefix so one core node can serve many
// eNodeBs and one eNodeB node can host several cells.
std::vector<std::uint8_t> frame(CellId cell, const lte::S1apMessage& m) {
  ByteWriter w;
  w.u32(cell.value());
  const auto body = lte::encode_s1ap(m);
  w.bytes(body);
  return w.take();
}

struct Deframed {
  CellId cell;
  lte::S1apMessage message;
};

std::optional<Deframed> deframe(std::span<const std::uint8_t> bytes) {
  ByteReader r{bytes};
  auto cell = r.u32();
  if (!cell) return std::nullopt;
  auto rest = r.bytes(r.remaining());
  if (!rest) return std::nullopt;
  auto msg = lte::decode_s1ap(*rest);
  if (!msg) return std::nullopt;
  return Deframed{CellId{*cell}, std::move(*msg)};
}
}  // namespace

S1Fabric::S1Fabric(sim::Simulator& sim, epc::Mme& mme)
    : sim_(sim), mme_(mme) {
  ev_label_ = sim_.label("core.s1");
  mme_.set_sender([this](CellId cell, lte::S1apMessage m) {
    mme_send(cell, std::move(m));
  });
}

void S1Fabric::register_enb_direct(CellId cell, Duration latency,
                                   EnbHandler handler) {
  Endpoint ep;
  ep.networked = false;
  ep.latency = latency;
  ep.handler = std::move(handler);
  endpoints_[cell] = std::move(ep);
}

void S1Fabric::register_enb_networked(net::Network& net, CellId cell,
                                      NodeId enb_node, NodeId core_node,
                                      EnbHandler handler) {
  Endpoint ep;
  ep.networked = true;
  ep.net = &net;
  ep.enb_node = enb_node;
  ep.core_node = core_node;
  ep.handler = std::move(handler);

  // eNodeB-side dispatch for downlink S1AP arriving at its node.
  net.set_protocol_handler(enb_node, kS1apProtocol,
                           [this](net::Packet&& p) {
                             auto d = deframe(p.payload);
                             if (!d) return;
                             const auto it = endpoints_.find(d->cell);
                             if (it == endpoints_.end()) return;
                             ++down_count_;
                             it->second.handler(d->message);
                           });
  install_core_handler(net, core_node);
  endpoints_[cell] = std::move(ep);
}

void S1Fabric::install_core_handler(net::Network& net, NodeId core_node) {
  if (core_handler_installed_) return;
  core_handler_installed_ = true;
  net.set_protocol_handler(core_node, kS1apProtocol,
                           [this](net::Packet&& p) {
                             auto d = deframe(p.payload);
                             if (!d) return;
                             ++up_count_;
                             mme_.handle_s1ap(d->cell, std::move(d->message));
                           });
}

void S1Fabric::enb_send(CellId cell, lte::S1apMessage message) {
  const auto it = endpoints_.find(cell);
  if (it == endpoints_.end()) return;
  const Endpoint& ep = it->second;
  if (!ep.networked) {
    ++up_count_;
    sim_.schedule(
        ep.latency,
        [this, cell, m = std::move(message)] { mme_.handle_s1ap(cell, m); },
        ev_label_);
    return;
  }
  auto payload = frame(cell, message);
  const int size = static_cast<int>(payload.size()) + 56;  // SCTP/IP.
  ep.net->send(net::Packet{ep.enb_node, ep.core_node, size, kS1apProtocol,
                           std::move(payload)});
}

void S1Fabric::mme_send(CellId cell, lte::S1apMessage message) {
  const auto it = endpoints_.find(cell);
  if (it == endpoints_.end()) return;
  const Endpoint& ep = it->second;
  if (!ep.networked) {
    ++down_count_;
    sim_.schedule(
        ep.latency,
        [handler = ep.handler, m = std::move(message)] { handler(m); },
        ev_label_);
    return;
  }
  auto payload = frame(cell, message);
  const int size = static_cast<int>(payload.size()) + 56;
  ep.net->send(net::Packet{ep.core_node, ep.enb_node, size, kS1apProtocol,
                           std::move(payload)});
}

}  // namespace dlte::core
