// HandoverManager: cooperative-mode client handoff between dLTE peers.
//
// §4.3: "Cooperation allows for client handoff across the APs"; §6: "LTE
// … supports efficient client handover that does not require any packet
// duplication. APs do not have to do additional work to hide the
// handover or let clients keep their IP addresses, allowing fast
// re-authentication technologies to handle the address change."
//
// Sequence (standard X2 handover adapted across administrative domains):
//   source: X2 HandoverRequest {imsi, tmsi, K_eNB*} ──Internet──▶ target
//   target: admits (no fresh EPS-AKA — context forwarded), allocates the
//           UE's new address, replies HandoverRequestAck
//   source: RRC reconfiguration to the UE (one radio interruption, tens
//           of ms instead of a full re-attach), then UeContextRelease
// The UE's IP still changes (dLTE never hides that); the win over plain
// re-attach is skipping RRC idle→connected and the AKA dialogue.
//
// Both APs must be in cooperative mode; fair-share/isolated peers refuse
// (coordination is consensual).
#pragma once

#include <functional>
#include <unordered_map>

#include "core/access_point.h"
#include "obs/span.h"

namespace dlte::core {

struct HandoverOutcome {
  bool success{false};
  Duration interruption{};     // UE-visible radio gap.
  Duration total{};            // Request → UE active on target.
  std::uint32_t new_ue_ip{0};
  std::string failure_reason;
};

class HandoverManager {
 public:
  // One manager per AP; registers itself as the coordinator's handover
  // sink.
  HandoverManager(sim::Simulator& sim, DlteAccessPoint& ap);

  // Source-side: move `ue` (currently served by our AP) to `target_ap`.
  // `traffic` re-registers the UE's bearer with the target's cell MAC.
  void initiate(UeDevice& ue, ApId target_ap, mac::UeTrafficConfig traffic,
                std::function<void(HandoverOutcome)> on_done);

  [[nodiscard]] int handovers_initiated() const { return initiated_; }
  [[nodiscard]] int handovers_admitted() const { return admitted_; }
  [[nodiscard]] int handovers_refused() const { return refused_; }

  // Causal tracing: initiate() opens a "handover" root span (category
  // `<prefix>handover`) stashed under span_key("handover", imsi); the
  // target's admission becomes a "handover_admit" child (via the shared
  // tracer's stash) and the source's RRC reconfiguration an
  // "rrc_reconfiguration" child. Null-safe.
  void set_tracer(obs::SpanTracer* tracer, const std::string& prefix = "");

 private:
  struct Pending {
    UeDevice* ue{nullptr};
    mac::UeTrafficConfig traffic;
    std::function<void(HandoverOutcome)> on_done;
    TimePoint started_at{};
    ApId target;
    obs::SpanId span{obs::kNoSpan};
  };

  void on_x2(const lte::X2Message& message, NodeId from);
  void handle_request(const lte::X2HandoverRequest& request, NodeId from);
  void handle_ack(const lte::X2HandoverRequestAck& ack);

  sim::Simulator& sim_;
  DlteAccessPoint& ap_;
  std::unordered_map<std::uint64_t, Pending> pending_;  // By IMSI.
  // Target-side record of admitted-but-not-yet-arrived UEs.
  std::unordered_map<std::uint64_t, mac::UeTrafficConfig> expected_;
  int initiated_{0};
  int admitted_{0};
  int refused_{0};
  obs::SpanTracer* tracer_{nullptr};
  std::string span_cat_{"handover"};

  // Radio interruption of an RRC-reconfiguration-based handover (no RRC
  // idle→connected, no AKA).
  static constexpr Duration kRrcReconfiguration = Duration::millis(35);
};

}  // namespace dlte::core
