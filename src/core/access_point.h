// DlteAccessPoint: the paper's unit of deployment (§4).
//
// One box on a silo roof: eNodeB + collapsed local core (MME/HSS/S-GW/
// P-GW stub) + registry client + X2 peer coordinator + local Internet
// breakout. Bringing one up is the paper's "organic expansion" story:
//   1. apply for a grant at the open registry,
//   2. query the registry for the local contention domain,
//   3. say hello to the peers and start coordinated sharing,
//   4. serve any client whose keys are published (or locally provisioned).
// No human coordination, no carrier, no shared core.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/enodeb.h"
#include "core/radio_env.h"
#include "core/s1_fabric.h"
#include "core/ue_device.h"
#include "epc/epc.h"
#include "mac/lte_cell_mac.h"
#include "sim/trace.h"
#include "spectrum/coordinator.h"
#include "spectrum/registry.h"

namespace dlte::core {

struct ApConfig {
  ApId id;
  CellId cell;
  Position position;
  Hertz frequency{Hertz::mhz(850.0)};
  phy::RadioProfile radio{phy::DeviceProfiles::lte_enb_rural()};
  lte::DlteMode mode{lte::DlteMode::kFairShare};
  std::string operator_contact{"ops@example.net"};
  Duration coordination_period{Duration::seconds(1.0)};
  // One-way S1 latency to the on-box core stub (loopback-scale).
  Duration stub_s1_latency{Duration::micros(50)};
  mac::CellMacConfig mac{};
  EnbConfig enb{};
  std::uint64_t seed{1};
  // Registry-outage survival: how long the AP keeps transmitting after
  // lease renewals start failing before it treats the grant as lost. While
  // inside this window the AP runs degraded — it backs its transmit power
  // off by `degraded_power_backoff_db` (conservative operation per the
  // grant's published terms) instead of going dark.
  Duration lease_grace{Duration::seconds(30.0)};
  double degraded_power_backoff_db{10.0};
};

class DlteAccessPoint {
 public:
  DlteAccessPoint(sim::Simulator& sim, net::Network& net,
                  NodeId backhaul_node, RadioEnvironment& radio_env,
                  ApConfig config);
  ~DlteAccessPoint();
  DlteAccessPoint(const DlteAccessPoint&) = delete;
  DlteAccessPoint& operator=(const DlteAccessPoint&) = delete;

  // Async bring-up against the registry (grant → discovery → hello →
  // coordination). Callback fires with success once the grant is held.
  void bring_up(spectrum::Registry& registry,
                std::function<void(bool)> on_done = nullptr);

  // Pull every published open identity from the registry into the local
  // HSS (§4.2: published keys let any AP authenticate the subscriber).
  std::size_t import_published_subscribers(
      const spectrum::Registry& registry);

  // Directly provision a subscriber on this AP's local HSS.
  void provision_subscriber(Imsi imsi, const crypto::Key128& k,
                            const crypto::Block128& opc);

  // Radio-level attach of a UE camping on this cell. Also registers the
  // UE's traffic with the cell MAC using the radio environment's SINR.
  void attach(UeDevice& ue, mac::UeTrafficConfig traffic,
              std::function<void(AttachOutcome)> on_done = nullptr);

  // Attach with the UE-side retry schedule: on failure (guard expiry,
  // NAS reject, AP down) the attach is retried after an exponential
  // backoff with jitter, up to the policy's attempt budget. The callback
  // fires exactly once, with the outcome of the last attempt.
  void attach_with_retry(UeDevice& ue, mac::UeTrafficConfig traffic,
                         ue::AttachRetryPolicy policy,
                         std::function<void(AttachOutcome)> on_done = nullptr);

  // --- Fault surface (src/fault) ---------------------------------------
  // Crash the box: the local core loses all volatile state (EMM contexts,
  // bearers), every radio bearer dies, the cell leaves the air, the X2
  // endpoint goes dark, and lease heartbeats stop. UEs must re-attach —
  // at a neighbour, or here after recover().
  void fail();
  // Restart the box. With a registry, re-runs bring-up (fresh grant, peer
  // rediscovery); without one, just re-lights the cell and X2.
  void recover(spectrum::Registry* registry = nullptr);
  [[nodiscard]] bool failed() const { return failed_; }
  // Lease renewals are failing but within ApConfig::lease_grace: the AP
  // is transmitting at conservative power waiting for the registry.
  [[nodiscard]] bool lease_degraded() const {
    return degraded_since_.has_value();
  }

  // Cooperative-handover radio plumbing: register an admitted UE's bearer
  // with this cell's MAC without an attach dialogue (the core context was
  // created by Mme::admit_handover), and drop a departed UE's bearer.
  void adopt_ue(UeDevice& ue, mac::UeTrafficConfig traffic);
  void drop_ue(UeDevice& ue);

  // Optional structured event tracing (grant, attach, share decisions).
  void set_trace(sim::TraceLog* trace);

  // Causal span tracing: wires one SpanTracer through this AP's eNodeB
  // (attach root spans), MME (NAS/AKA phase spans) and X2 coordinator
  // (share-round spans). All APs in a scenario share the tracer so
  // cross-AP procedures (handover, X2 rounds) parent correctly; `prefix`
  // lands in the span categories, not the names. Null-safe.
  void set_span_tracer(obs::SpanTracer* tracer,
                       const std::string& prefix = "");

  // Per-AP health source (DESIGN.md §10): gauges `<prefix>ap<id>.up`
  // (0 while crashed) and `<prefix>ap<id>.lease_degraded`, plus counter
  // `<prefix>ap<id>.lease_renewal_failures`. The AP appends its own
  // `ap<id>.` segment so a scenario wires every AP with one prefix and
  // gets distinct per-box series. Null-safe.
  void set_metrics(obs::MetricsRegistry* registry,
                   const std::string& prefix = "");

  [[nodiscard]] ApId id() const { return config_.id; }
  [[nodiscard]] CellId cell_id() const { return config_.cell; }
  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] const std::string& network_id() const { return network_id_; }
  [[nodiscard]] bool has_grant() const { return grant_.has_value(); }
  [[nodiscard]] const spectrum::SpectrumGrant& grant() const {
    return *grant_;
  }

  [[nodiscard]] epc::EpcCore& core() { return *core_; }
  [[nodiscard]] EnodeB& enodeb() { return *enodeb_; }
  [[nodiscard]] mac::LteCellMac& cell_mac() { return cell_mac_; }
  [[nodiscard]] spectrum::PeerCoordinator& coordinator() {
    return *coordinator_;
  }
  [[nodiscard]] RadioEnvironment& radio_env() { return radio_env_; }

 private:
  sim::Simulator& sim_;
  net::Network& net_;
  NodeId node_;
  RadioEnvironment& radio_env_;
  ApConfig config_;
  std::string network_id_;

  std::unique_ptr<epc::EpcCore> core_;
  std::unique_ptr<S1Fabric> fabric_;
  std::unique_ptr<EnodeB> enodeb_;
  mac::LteCellMac cell_mac_;
  std::unique_ptr<spectrum::PeerCoordinator> coordinator_;
  std::optional<spectrum::SpectrumGrant> grant_;
  std::uint32_t next_ue_{1};
  std::unordered_map<Imsi, UeId> mac_ue_ids_;
  sim::TraceLog* trace_{nullptr};
  obs::Gauge* m_up_{nullptr};
  obs::Gauge* m_lease_degraded_{nullptr};
  obs::Counter* m_renewal_failures_{nullptr};
  sim::Simulator::PeriodicHandle lease_heartbeat_;
  bool failed_{false};
  // Set while lease renewals fail; cleared on renewal or final lapse.
  std::optional<TimePoint> degraded_since_;
  // Guards `this`-capturing async callbacks (registry grant/query) that
  // may still be in flight when the AP is torn down.
  std::shared_ptr<bool> alive_{std::make_shared<bool>(true)};

  void start_lease_heartbeat(spectrum::Registry& registry);
  void try_attach(UeDevice* ue, mac::UeTrafficConfig traffic,
                  ue::AttachRetryPolicy policy,
                  std::shared_ptr<sim::RngStream> rng, int attempt,
                  std::function<void(AttachOutcome)> on_done);
  void trace(sim::TraceCategory category, std::string message);
};

}  // namespace dlte::core
