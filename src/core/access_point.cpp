#include "core/access_point.h"

namespace dlte::core {

DlteAccessPoint::DlteAccessPoint(sim::Simulator& sim, net::Network& net,
                                 NodeId backhaul_node,
                                 RadioEnvironment& radio_env, ApConfig config)
    : sim_(sim),
      net_(net),
      node_(backhaul_node),
      radio_env_(radio_env),
      config_(config),
      network_id_("dlte-ap-" + std::to_string(config.id.value())),
      cell_mac_([&] {
        mac::CellMacConfig mc = config.mac;
        mc.bandwidth = config.radio.bandwidth;
        mc.seed = config.seed ^ 0x9e37;
        return mc;
      }()) {
  // Local core stub (§4.1): every EPC function the client needs, on-box.
  epc::EpcConfig ec;
  ec.deployment = epc::CoreDeployment::kLocalStub;
  ec.network_id = network_id_;
  // Each AP hands out addresses from its own block: dLTE addresses are
  // scoped to the serving AP (§4.2 — a move means a new address).
  ec.ip_pool_base = 0x0A2D0000u + (config_.id.value() << 8);
  core_ = std::make_unique<epc::EpcCore>(
      sim_, ec, sim::RngStream::derive(config_.seed, "hss"));

  fabric_ = std::make_unique<S1Fabric>(sim_, core_->mme());
  EnbConfig enb_cfg = config_.enb;
  enb_cfg.cell = config_.cell;
  enodeb_ = std::make_unique<EnodeB>(sim_, *fabric_, enb_cfg);
  fabric_->register_enb_direct(
      config_.cell, config_.stub_s1_latency,
      [this](const lte::S1apMessage& m) { enodeb_->on_s1ap(m); });

  coordinator_ = std::make_unique<spectrum::PeerCoordinator>(
      sim_, net_, node_,
      spectrum::CoordinatorConfig{config_.id, config_.mode,
                                  config_.coordination_period});
  coordinator_->attach_cell(&cell_mac_);

  // Put the cell on the air (in the shared radio environment).
  radio_env_.add_cell(CellSiteConfig{config_.cell, config_.position,
                                     config_.radio, config_.frequency});
}

DlteAccessPoint::~DlteAccessPoint() { *alive_ = false; }

void DlteAccessPoint::set_trace(sim::TraceLog* trace) {
  trace_ = trace;
  coordinator_->set_share_observer([this](double share) {
    this->trace(sim::TraceCategory::kCoordination,
                "applied spectrum share " + std::to_string(share));
  });
}

void DlteAccessPoint::set_span_tracer(obs::SpanTracer* tracer,
                                      const std::string& prefix) {
  enodeb_->set_tracer(tracer, prefix);
  core_->set_tracer(tracer, prefix);
  coordinator_->set_tracer(tracer, prefix);
}

void DlteAccessPoint::set_metrics(obs::MetricsRegistry* registry,
                                  const std::string& prefix) {
  if (registry == nullptr) {
    m_up_ = nullptr;
    m_lease_degraded_ = nullptr;
    m_renewal_failures_ = nullptr;
    return;
  }
  const std::string base =
      prefix + "ap" + std::to_string(config_.id.value()) + ".";
  m_up_ = &registry->gauge(base + "up");
  m_lease_degraded_ = &registry->gauge(base + "lease_degraded");
  m_renewal_failures_ = &registry->counter(base + "lease_renewal_failures");
  m_up_->set(failed_ ? 0.0 : 1.0);
  m_lease_degraded_->set(degraded_since_ ? 1.0 : 0.0);
}

void DlteAccessPoint::trace(sim::TraceCategory category,
                            std::string message) {
  if (trace_ != nullptr) {
    trace_->record(category, network_id_, std::move(message));
  }
}

void DlteAccessPoint::bring_up(spectrum::Registry& registry,
                               std::function<void(bool)> on_done) {
  spectrum::GrantRequest req;
  req.ap = config_.id;
  req.location = config_.position;
  req.center_frequency = config_.frequency;
  req.bandwidth = config_.radio.bandwidth;
  req.max_eirp = config_.radio.tx_power + config_.radio.tx_antenna_gain;
  req.operator_contact = config_.operator_contact;
  req.coordination_node = node_;

  registry.request_grant(
      std::move(req),
      [this, &registry, alive = alive_, on_done = std::move(on_done)](
          Result<spectrum::SpectrumGrant> grant) {
        if (!*alive) return;  // AP torn down while the grant was pending.
        if (!grant) {
          trace(sim::TraceCategory::kRegistry,
                "grant refused: " + grant.error());
          if (on_done) on_done(false);
          return;
        }
        grant_ = *grant;
        trace(sim::TraceCategory::kRegistry,
              "grant acquired at " +
                  std::to_string(grant_->center_frequency.to_mhz()) +
                  " MHz");
        // Leased grants must be kept alive (a dead AP's grant lapses and
        // frees its neighbours' spectrum).
        start_lease_heartbeat(registry);
        // Discover the contention domain and peer up.
        registry.query_region(
            config_.position,
            [this, alive,
             on_done](std::vector<spectrum::SpectrumGrant> grants) {
              if (!*alive) return;
              int peers = 0;
              for (const auto& g : grants) {
                if (g.ap == config_.id) continue;
                coordinator_->add_peer(g.ap, g.coordination_node);
                ++peers;
              }
              trace(sim::TraceCategory::kCoordination,
                    "discovered " + std::to_string(peers) +
                        " peer(s) in contention domain");
              coordinator_->send_hello(config_.operator_contact);
              if (config_.mode != lte::DlteMode::kIsolated) {
                radio_env_.set_coordinated(config_.cell, true);
              }
              coordinator_->start();
              if (on_done) on_done(true);
            });
      });
}

void DlteAccessPoint::start_lease_heartbeat(spectrum::Registry& registry) {
  if (registry.grant_lifetime().is_zero()) return;
  lease_heartbeat_ = sim_.every_cancellable(
      registry.grant_lifetime() / 3, [this, &registry] {
        if (!grant_) return;
        if (registry.heartbeat(grant_->id).ok()) {
          if (degraded_since_) {
            // Registry is back; resume full power.
            degraded_since_.reset();
            radio_env_.set_power_backoff_db(config_.cell, 0.0);
            obs::set(m_lease_degraded_, 0.0);
            trace(sim::TraceCategory::kRegistry,
                  "lease renewed; leaving degraded mode");
          }
          return;
        }
        obs::inc(m_renewal_failures_);
        // Renewal failed (registry outage, partition, or a lapsed lease).
        // Don't vanish from the air on the first miss: degrade to
        // conservative power and keep trying for the grace window — a
        // registry outage shorter than the grace costs capacity, not
        // service.
        if (!degraded_since_) {
          degraded_since_ = sim_.now();
          obs::set(m_lease_degraded_, 1.0);
          radio_env_.set_power_backoff_db(config_.cell,
                                          config_.degraded_power_backoff_db);
          trace(sim::TraceCategory::kFault,
                "lease renewal failing; degraded to conservative power (-" +
                    std::to_string(config_.degraded_power_backoff_db) +
                    " dB)");
        } else if (sim_.now() - *degraded_since_ >= config_.lease_grace) {
          trace(sim::TraceCategory::kRegistry,
                "grace exhausted; grant lapsed, lost the lease");
          grant_.reset();
          degraded_since_.reset();
          obs::set(m_lease_degraded_, 0.0);
          lease_heartbeat_.cancel();
        }
      });
}

std::size_t DlteAccessPoint::import_published_subscribers(
    const spectrum::Registry& registry) {
  std::size_t imported = 0;
  for (const auto& keys : registry.published_subscribers()) {
    if (!core_->hss().has_subscriber(keys.imsi)) {
      core_->hss().provision_with_opc(keys.imsi, keys.k, keys.opc);
      ++imported;
    }
  }
  return imported;
}

void DlteAccessPoint::provision_subscriber(Imsi imsi, const crypto::Key128& k,
                                           const crypto::Block128& opc) {
  core_->hss().provision_with_opc(imsi, k, opc);
}

void DlteAccessPoint::attach(UeDevice& ue, mac::UeTrafficConfig traffic,
                             std::function<void(AttachOutcome)> on_done) {
  if (failed_) {
    // A crashed AP does not answer RACH: the UE's attach dies quickly at
    // the radio layer rather than running the full NAS guard timer.
    if (on_done) {
      sim_.schedule(config_.enb.rrc_setup, [on_done = std::move(on_done)] {
        on_done(AttachOutcome{});
      });
    }
    return;
  }
  auto& client = ue.begin_attachment(network_id_);
  UeDevice* ue_ptr = &ue;
  enodeb_->attach_ue(
      client, [this, ue_ptr, traffic,
               on_done = std::move(on_done)](AttachOutcome outcome) {
        trace(sim::TraceCategory::kAttach,
              "attach of IMSI " + std::to_string(ue_ptr->imsi().value()) +
                  (outcome.success ? " completed in " +
                                         std::to_string(
                                             outcome.elapsed.to_millis()) +
                                         " ms"
                                   : " failed"));
        if (outcome.success) adopt_ue(*ue_ptr, traffic);
        if (on_done) on_done(outcome);
      });
}

void DlteAccessPoint::attach_with_retry(
    UeDevice& ue, mac::UeTrafficConfig traffic, ue::AttachRetryPolicy policy,
    std::function<void(AttachOutcome)> on_done) {
  // Per-UE backoff stream: every UE jitters independently of the others
  // (de-synchronizing a re-attach storm) but identically across runs.
  auto rng = std::make_shared<sim::RngStream>(sim::RngStream::derive(
      config_.seed ^ ue.imsi().value(), "attach-retry"));
  try_attach(&ue, traffic, policy, std::move(rng), 1, std::move(on_done));
}

void DlteAccessPoint::try_attach(UeDevice* ue, mac::UeTrafficConfig traffic,
                                 ue::AttachRetryPolicy policy,
                                 std::shared_ptr<sim::RngStream> rng,
                                 int attempt,
                                 std::function<void(AttachOutcome)> on_done) {
  attach(*ue, traffic,
         [this, ue, traffic, policy, rng = std::move(rng), attempt,
          alive = alive_,
          on_done = std::move(on_done)](AttachOutcome outcome) mutable {
           if (outcome.success || attempt >= policy.max_attempts) {
             if (on_done) on_done(outcome);
             return;
           }
           const Duration wait = policy.backoff(attempt, *rng);
           trace(sim::TraceCategory::kAttach,
                 "attach attempt " + std::to_string(attempt) + " of IMSI " +
                     std::to_string(ue->imsi().value()) +
                     " failed; retrying in " +
                     std::to_string(wait.to_millis()) + " ms");
           sim_.schedule(wait, [this, ue, traffic, policy,
                                rng = std::move(rng), attempt,
                                alive = std::move(alive),
                                on_done = std::move(on_done)]() mutable {
             if (!*alive) return;
             try_attach(ue, traffic, policy, std::move(rng), attempt + 1,
                        std::move(on_done));
           });
         });
}

void DlteAccessPoint::fail() {
  if (failed_) return;
  failed_ = true;
  obs::set(m_up_, 0.0);
  trace(sim::TraceCategory::kFault,
        "AP crashed: volatile core state lost, cell off air");
  // The core process dies: EMM contexts and bearers are volatile. The
  // HSS's flash-backed subscriber DB survives the reboot.
  core_->crash();
  // Every radio bearer dies with the box.
  for (auto& [imsi, mac_ue] : mac_ue_ids_) {
    if (cell_mac_.has_ue(mac_ue)) cell_mac_.remove_ue(mac_ue);
  }
  mac_ue_ids_.clear();
  // Off the air: UEs stop seeing this cell; neighbours stop seeing its
  // interference.
  radio_env_.set_cell_active(config_.cell, false);
  // The X2 endpoint goes dark — peers will expire us from their share
  // rounds after their liveness timeout.
  coordinator_->set_offline(true);
  // No heartbeats from a dead box: the grant degrades and then lapses at
  // the registry, freeing the spectrum if we never come back.
  lease_heartbeat_.cancel();
}

void DlteAccessPoint::recover(spectrum::Registry* registry) {
  if (!failed_) return;
  failed_ = false;
  obs::set(m_up_, 1.0);
  obs::set(m_lease_degraded_, 0.0);
  radio_env_.set_cell_active(config_.cell, true);
  radio_env_.set_power_backoff_db(config_.cell, 0.0);
  degraded_since_.reset();
  coordinator_->set_offline(false);
  trace(sim::TraceCategory::kFault, "AP restarted: cell back on air");
  if (registry != nullptr) {
    // Rejoin from scratch: fresh grant (the old one lapsed or will), peer
    // rediscovery, hello. Exactly the organic bring-up path — a reboot is
    // not special.
    if (grant_) {
      registry->revoke(grant_->id);
      grant_.reset();
    }
    bring_up(*registry);
  } else {
    // No registry in this deployment: just re-announce to the peers.
    coordinator_->send_hello(config_.operator_contact);
  }
}

void DlteAccessPoint::adopt_ue(UeDevice& ue, mac::UeTrafficConfig traffic) {
  // Register the UE's bearer with the cell MAC; its SINR follows its
  // position in the shared radio environment.
  const UeId mac_ue{next_ue_++};
  mac_ue_ids_[ue.imsi()] = mac_ue;
  const CellId cell = config_.cell;
  RadioEnvironment* env = &radio_env_;
  UeDevice* ue_ptr = &ue;
  cell_mac_.add_ue(
      mac_ue,
      [env, cell, ue_ptr] {
        return env->downlink_sinr(cell, ue_ptr->position());
      },
      traffic);
}

void DlteAccessPoint::drop_ue(UeDevice& ue) {
  const auto it = mac_ue_ids_.find(ue.imsi());
  if (it == mac_ue_ids_.end()) return;
  if (cell_mac_.has_ue(it->second)) cell_mac_.remove_ue(it->second);
  mac_ue_ids_.erase(it);
}

}  // namespace dlte::core
