// BackhaulMesh: §7's multi-hop backhaul sharing between neighboring APs.
//
// "Such networks could provide redundancy for users in emergencies when
// the backhaul link goes down, and bring LTE's scheduling primitives and
// beamforming to bear on mesh designs."
//
// Cooperative peers within radio range of each other provision standby
// inter-AP relay links (capacity from the AP↔AP link budget at their
// band). A watchdog probes each member's route to the Internet; when a
// member's own backhaul dies, its best standby relay is activated and the
// routing plane carries its users' traffic out through the neighbor.
// When the backhaul heals, the relay is torn down so member APs don't
// become permanent transit.
#pragma once

#include <functional>
#include <vector>

#include "core/access_point.h"
#include "phy/lte_amc.h"

namespace dlte::core {

struct MeshMemberInfo {
  ApId ap;
  NodeId node;
  CellId cell;
  Position position;
};

struct MeshStats {
  int relays_provisioned{0};
  int activations{0};
  int deactivations{0};
};

class BackhaulMesh {
 public:
  // `internet` is the probe target: a member is "up" iff it can route
  // there on its own (relays are excluded from the health probe by
  // checking before activation and after deactivation).
  BackhaulMesh(sim::Simulator& sim, net::Network& net,
               RadioEnvironment& radio, NodeId internet);

  // Membership: provisions standby relay links to every earlier member in
  // radio range (relay rate from the inter-AP link budget).
  void add_member(DlteAccessPoint& ap);

  // Start the watchdog.
  void enable(Duration check_period = Duration::seconds(1.0));

  [[nodiscard]] const MeshStats& stats() const { return stats_; }
  [[nodiscard]] int active_relays() const;
  [[nodiscard]] std::size_t member_count() const { return members_.size(); }

  // Achievable relay rate between two member positions at the mesh band
  // (exposed for dimensioning and tests).
  [[nodiscard]] static DataRate relay_rate(double distance_m);

 private:
  struct Relay {
    std::size_t a;  // Member indices.
    std::size_t b;
    bool active{false};
  };

  void check_health();
  [[nodiscard]] bool backhaul_alive(std::size_t member) const;

  sim::Simulator& sim_;
  net::Network& net_;
  RadioEnvironment& radio_;
  NodeId internet_;
  std::vector<MeshMemberInfo> members_;
  std::vector<Relay> relays_;
  sim::Simulator::PeriodicHandle watchdog_;
  MeshStats stats_;
  bool enabled_{false};
};

}  // namespace dlte::core
