// Endpoint transports: a TCP-like and a QUIC-like reliable stream.
//
// §4.2 of the paper rests on modern transports to make dLTE's
// "new IP address at every AP" mobility model workable:
//   * TCP-like: 2-RTT setup (SYN + TLS), loss recovery by dup-ack /
//     RTO with NewReno-style congestion control, and — crucially — the
//     connection is bound to the 4-tuple: an address change kills it and
//     the application must reconnect and resume at the application layer.
//   * QUIC-like: 1-RTT fresh setup, 0-RTT resumption to a known server,
//     and connection IDs that survive address migration: after a rebind
//     the client continues sending from the new address immediately.
//
// Data content is not materialized; the stream is an offset space and the
// receiver acknowledges cumulative bytes, which is all the experiments
// measure.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace dlte::transport {

// Network::Packet protocol tag for transport segments.
inline constexpr std::uint16_t kTransportProtocol = 0x5452;  // "TR"

enum class TransportKind { kTcpLike, kQuicLike };

struct TransportConfig {
  TransportKind kind{TransportKind::kQuicLike};
  // QUIC-only: client holds a resumption ticket for the server, enabling
  // 0-RTT data on (re)connect.
  bool zero_rtt_resumption{true};
  int mss_bytes{1200};
  int initial_cwnd_packets{10};
  Duration min_rto{Duration::millis(200)};
};

struct ConnectionStats {
  double bytes_acked{0.0};
  double bytes_sent{0.0};
  int retransmissions{0};
  int timeouts{0};
  int handshake_rtts{0};       // RTTs spent before first data could fly.
  TimePoint established_at{};
  TimePoint last_ack_at{};
};

class TransportHost;

// Client-side reliable stream connection.
class Connection {
 public:
  using EstablishedCallback = std::function<void()>;

  // Queue application data (bytes are synthetic; only counts matter).
  void send(double bytes);
  // Rebind to a new local node (the UE moved to a new AP and got a new
  // address). QUIC-like migrates in place; TCP-like becomes dead and
  // reports broken() — the app must open a new connection.
  void rebind(TransportHost& new_host);

  [[nodiscard]] bool established() const { return state_ == State::kEstablished; }
  [[nodiscard]] bool broken() const { return state_ == State::kBroken; }
  [[nodiscard]] const ConnectionStats& stats() const { return stats_; }
  [[nodiscard]] ConnectionId id() const { return id_; }
  [[nodiscard]] double unacked_bytes() const {
    return app_offset_ - acked_offset_;
  }

 private:
  friend class TransportHost;
  enum class State { kConnecting, kEstablished, kBroken };

  Connection(TransportHost& host, NodeId remote, TransportConfig config,
             ConnectionId id, bool resumed, EstablishedCallback on_ready);

  void on_segment(const net::Packet& packet);
  void try_send();
  void send_segment(std::uint8_t type, double offset, int length);
  void arm_rto();
  void on_rto();
  void handle_ack(double ack_offset, double hint);
  [[nodiscard]] Duration rto() const;

  TransportHost* host_;
  NodeId remote_;
  TransportConfig config_;
  ConnectionId id_;
  State state_{State::kConnecting};
  EstablishedCallback on_ready_;
  int hs_rounds_done_{0};  // Completed handshake round trips.

  // Stream state (byte offsets; contiguous synthetic stream).
  double app_offset_{0.0};     // Total bytes the app has queued.
  double sent_offset_{0.0};    // Next offset to transmit.
  double max_sent_offset_{0.0};  // High-water mark (detects retransmits).
  double acked_offset_{0.0};   // Cumulative acked.

  // Go back to the cumulative ack point (RTO / migration recovery); the
  // selective-repeat receiver absorbs any duplicates cheaply.
  void rewind_to_acked();
  // Resend exactly one MSS at the cumulative ack point (fast retransmit /
  // NewReno partial-ack hole fill).
  void retransmit_one_at_ack();

  // Congestion control (packet units of mss).
  double cwnd_{10.0};
  double ssthresh_{1e9};
  // NewReno recovery: after a loss signal, retransmit one hole per
  // partial ack and take no second rate cut until the cumulative ack
  // passes the high-water mark recorded at the first loss signal.
  double recover_point_{0.0};
  bool in_recovery_{false};

  // RTT estimation.
  double srtt_s_{0.0};
  double rttvar_s_{0.0};
  bool rtt_valid_{false};
  int rto_backoff_{1};
  std::uint64_t rto_epoch_{0};
  std::map<double, TimePoint> send_times_;  // Offset → send time (for RTT).

  ConnectionStats stats_;
};

// Server-side connection state: buffers out-of-order ranges and
// acknowledges the cumulative contiguous prefix (selective-repeat
// receiver), so one hole retransmission releases everything behind it.
struct ServerConnection {
  ConnectionId id;
  NodeId client_node;     // Updated on migration (QUIC) — where acks go.
  double received_offset{0.0};
  std::map<double, double> ooo_ranges;  // start → end, disjoint, sorted.
  TimePoint last_data_at{};
  std::function<void(double /*new_offset*/)> on_data;

  // Merge [start, end) into the received state; advances received_offset
  // past any now-contiguous buffered ranges.
  void accept(double start, double end);
  // Highest byte held, including out-of-order buffered data (ACK hint).
  [[nodiscard]] double highest_received() const {
    return ooo_ranges.empty() ? received_offset
                              : std::prev(ooo_ranges.end())->second;
  }
};

// Per-node transport stack. Registers itself as the node's handler for
// kTransportProtocol packets and dispatches to connections by id.
class TransportHost {
 public:
  TransportHost(sim::Simulator& sim, net::Network& net, NodeId node);

  // Client: open a connection to `remote`. `resumed` applies QUIC 0-RTT
  // when the config allows it (models a cached resumption ticket).
  Connection& connect(NodeId remote, TransportConfig config,
                      Connection::EstablishedCallback on_ready = nullptr,
                      bool resumed = false);

  // Server: accept incoming connections; optional data callback factory.
  void listen(std::function<void(ServerConnection&)> on_accept = nullptr);

  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] net::Network& network() { return net_; }

  [[nodiscard]] const ServerConnection* server_connection(
      ConnectionId id) const;

 private:
  friend class Connection;

  void dispatch(net::Packet&& packet);
  void handle_server_segment(const net::Packet& packet);
  void adopt(Connection* conn);    // Rebind target.
  void abandon(Connection* conn);  // Rebind source.

  sim::Simulator& sim_;
  net::Network& net_;
  NodeId node_;
  bool listening_{false};
  std::function<void(ServerConnection&)> on_accept_;
  std::map<ConnectionId, std::unique_ptr<Connection>> clients_;
  std::map<ConnectionId, ServerConnection> servers_;
  std::uint64_t next_conn_id_{1};
};

// Transport wire format helpers (shared by tests).
struct SegmentHeader {
  std::uint64_t connection_id{0};
  std::uint8_t type{0};
  double offset{0.0};
  std::uint32_t length{0};
  // ACK only: highest byte offset held by the receiver including
  // out-of-order buffered ranges (a one-value SACK). offset == hint means
  // "no holes"; hint > offset means data above a hole is buffered.
  double hint{0.0};
};

inline constexpr std::uint8_t kSegSyn = 1;
inline constexpr std::uint8_t kSegSynAck = 2;
inline constexpr std::uint8_t kSegHandshakeFin = 3;
inline constexpr std::uint8_t kSegData = 4;
inline constexpr std::uint8_t kSegAck = 5;
inline constexpr std::uint8_t kSegZeroRttData = 6;

[[nodiscard]] std::vector<std::uint8_t> encode_segment(const SegmentHeader& h);
[[nodiscard]] std::optional<SegmentHeader> decode_segment(
    std::span<const std::uint8_t> bytes);

}  // namespace dlte::transport
