#include "transport/flow_train.h"

#include <algorithm>

namespace dlte::transport {

FlowTrain::FlowTrain(sim::Simulator& sim, FlowTrainConfig config,
                     DeliveredCallback on_delivered,
                     CompleteCallback on_complete)
    : sim_(sim),
      config_(config),
      on_delivered_(std::move(on_delivered)),
      on_complete_(std::move(on_complete)),
      remaining_bytes_(config.total_bytes) {
  ev_label_ = sim_.label("transport.flow_train");
  if (config_.mss_bytes < 1) config_.mss_bytes = 1;
  if (config_.rtt.ns() < 1) config_.rtt = Duration::nanos(1);
  const double bytes_per_rtt =
      config_.bottleneck.bps() / 8.0 * config_.rtt.to_seconds();
  cap_packets_ = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(bytes_per_rtt /
                                   static_cast<double>(config_.mss_bytes)));
  cwnd_packets_ = std::clamp<std::int64_t>(config_.initial_cwnd_packets, 1,
                                           cap_packets_);
}

void FlowTrain::deliver(std::uint64_t bytes) {
  stats_.bytes_delivered += bytes;
  if (on_delivered_) on_delivered_(bytes);
}

void FlowTrain::start() {
  if (remaining_bytes_ == 0) {
    stats_.completed = true;
    stats_.completed_at = sim_.now();
    if (on_complete_) on_complete_(stats_.completed_at);
    return;
  }
  run_epoch();
}

void FlowTrain::run_epoch() {
  const std::uint64_t mss = static_cast<std::uint64_t>(config_.mss_bytes);
  const std::uint64_t window_bytes = std::min(
      static_cast<std::uint64_t>(cwnd_packets_) * mss, remaining_bytes_);
  const bool final_epoch = window_bytes == remaining_bytes_;
  const std::int64_t rtt_ns = config_.rtt.ns();

  if (!config_.per_packet && cwnd_packets_ == cap_packets_ && !final_epoch) {
    // Saturated: the rate never changes again, so the rest of the flow is
    // one event at the analytically known completion time — this is where
    // O(packets) becomes O(rate changes).
    const std::uint64_t per_epoch =
        static_cast<std::uint64_t>(cap_packets_) * mss;
    const std::uint64_t epochs =
        (remaining_bytes_ + per_epoch - 1) / per_epoch;
    const std::uint64_t bytes = remaining_bytes_;
    remaining_bytes_ = 0;
    ++stats_.events_scheduled;
    sim_.schedule(
        Duration::nanos(static_cast<std::int64_t>(epochs) * rtt_ns),
        [this, bytes] {
          deliver(bytes);
          stats_.completed = true;
          stats_.completed_at = sim_.now();
          if (on_complete_) on_complete_(stats_.completed_at);
        },
        ev_label_);
    return;
  }

  remaining_bytes_ -= window_bytes;
  const auto continue_flow = [this, final_epoch] {
    if (final_epoch) {
      stats_.completed = true;
      stats_.completed_at = sim_.now();
      if (on_complete_) on_complete_(stats_.completed_at);
      return;
    }
    if (cwnd_packets_ < cap_packets_) {
      cwnd_packets_ = std::min(cwnd_packets_ * 2, cap_packets_);
      ++stats_.rate_changes;
    }
    run_epoch();
  };

  if (!config_.per_packet) {
    // One train: the whole window lands at the end of the epoch.
    ++stats_.events_scheduled;
    sim_.schedule(
        Duration::nanos(rtt_ns),
        [this, window_bytes, continue_flow] {
          deliver(window_bytes);
          continue_flow();
        },
        ev_label_);
    return;
  }

  // Per-packet reference: identical epochs, one MSS at a time, the last
  // packet of the epoch landing exactly at the epoch boundary.
  const std::uint64_t packets = (window_bytes + mss - 1) / mss;
  for (std::uint64_t j = 0; j < packets; ++j) {
    const std::uint64_t bytes = std::min(mss, window_bytes - j * mss);
    const std::int64_t at_ns =
        static_cast<std::int64_t>((j + 1)) * rtt_ns /
        static_cast<std::int64_t>(packets);
    const bool last = j + 1 == packets;
    ++stats_.events_scheduled;
    sim_.schedule(
        Duration::nanos(at_ns),
        [this, bytes, last, continue_flow] {
          deliver(bytes);
          if (last) continue_flow();
        },
        ev_label_);
  }
}

}  // namespace dlte::transport
