// Flow-level packet trains: bulk transfer in O(rate changes) events.
//
// The full transport::Connection simulates a bulk flow packet by packet —
// faithful, but a 25 MB transfer is ~20k events, and a metro scenario
// carries a million such flows. The FlowTrain collapses the same
// congestion-controlled shape to its rate changes: slow-start doubles the
// window once per RTT (one "train" event per epoch, each delivering the
// whole window), and once the window saturates the bottleneck the rest of
// the transfer is a single completion event at the analytically known
// finish time. A per-packet reference mode walks the identical epochs one
// MSS at a time; tests/transport/flow_train_test.cpp holds the
// delivered-byte totals and completion times of the two modes equal.
//
// The model is deliberately loss-free (the aggregate cohorts it serves
// model capacity, not queues); loss-driven dynamics stay with
// transport::Connection.
#pragma once

#include <cstdint>
#include <functional>

#include "common/time.h"
#include "common/units.h"
#include "sim/simulator.h"

namespace dlte::transport {

struct FlowTrainConfig {
  int mss_bytes{1200};
  int initial_cwnd_packets{10};
  Duration rtt{Duration::millis(20)};
  // Path capacity the window saturates at (caps cwnd at the
  // bandwidth-delay product).
  DataRate bottleneck{DataRate::mbps(50.0)};
  std::uint64_t total_bytes{0};
  // Reference mode: walk the same epochs per-MSS instead of per-train.
  // O(packets) events — only for equivalence tests and calibration.
  bool per_packet{false};
};

struct FlowTrainStats {
  std::uint64_t bytes_delivered{0};
  std::uint64_t events_scheduled{0};  // Trains or packets, per mode.
  std::uint64_t rate_changes{0};      // cwnd adjustments (slow-start steps).
  bool completed{false};
  TimePoint completed_at{};
};

class FlowTrain {
 public:
  // `on_delivered(bytes)` fires once per delivery event (train or
  // packet); `on_complete` once, when the last byte lands. Either may be
  // null. The FlowTrain must outlive the simulation run.
  using DeliveredCallback = std::function<void(std::uint64_t)>;
  using CompleteCallback = std::function<void(TimePoint)>;

  FlowTrain(sim::Simulator& sim, FlowTrainConfig config,
            DeliveredCallback on_delivered = nullptr,
            CompleteCallback on_complete = nullptr);

  // Begin the transfer now. A zero-byte flow completes immediately
  // without scheduling anything.
  void start();

  [[nodiscard]] const FlowTrainStats& stats() const { return stats_; }
  // cwnd cap in packets implied by bottleneck × RTT (≥ 1).
  [[nodiscard]] std::int64_t cap_packets() const { return cap_packets_; }

 private:
  void run_epoch();
  void deliver(std::uint64_t bytes);

  sim::Simulator& sim_;
  std::uint32_t ev_label_{0};
  FlowTrainConfig config_;
  DeliveredCallback on_delivered_;
  CompleteCallback on_complete_;
  std::int64_t cap_packets_{1};
  std::int64_t cwnd_packets_{1};
  std::uint64_t remaining_bytes_{0};
  FlowTrainStats stats_;
};

}  // namespace dlte::transport
