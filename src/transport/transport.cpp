#include "transport/transport.h"

#include <algorithm>
#include <cassert>
#ifdef DLTE_TRANSPORT_TRACE
#include <cstdio>
#endif

#include "common/bytes.h"

namespace dlte::transport {

namespace {
constexpr int kHeaderBytes = 40;   // Synthetic header+framing cost.
constexpr int kAckBytes = 60;
constexpr double kGranule = 1e-6;  // Offset comparison slack.
}  // namespace

std::vector<std::uint8_t> encode_segment(const SegmentHeader& h) {
  ByteWriter w;
  w.u64(h.connection_id);
  w.u8(h.type);
  w.f64(h.offset);
  w.u32(h.length);
  w.f64(h.hint);
  return w.take();
}

std::optional<SegmentHeader> decode_segment(
    std::span<const std::uint8_t> bytes) {
  ByteReader r{bytes};
  SegmentHeader h;
  auto cid = r.u64();
  if (!cid) return std::nullopt;
  h.connection_id = *cid;
  auto type = r.u8();
  if (!type) return std::nullopt;
  h.type = *type;
  auto off = r.f64();
  if (!off) return std::nullopt;
  h.offset = *off;
  auto len = r.u32();
  if (!len) return std::nullopt;
  h.length = *len;
  auto hint = r.f64();
  if (!hint) return std::nullopt;
  h.hint = *hint;
  return h;
}

// ---------------------------------------------------------------- Host --

TransportHost::TransportHost(sim::Simulator& sim, net::Network& net,
                             NodeId node)
    : sim_(sim), net_(net), node_(node) {
  net_.set_protocol_handler(node_, kTransportProtocol,
                            [this](net::Packet&& p) {
                              dispatch(std::move(p));
                            });
}

Connection& TransportHost::connect(NodeId remote, TransportConfig config,
                                   Connection::EstablishedCallback on_ready,
                                   bool resumed) {
  const ConnectionId id{(static_cast<std::uint64_t>(node_.value()) << 32) |
                        next_conn_id_++};
  auto conn = std::unique_ptr<Connection>(new Connection(
      *this, remote, config, id, resumed, std::move(on_ready)));
  Connection& ref = *conn;
  clients_.emplace(id, std::move(conn));
  return ref;
}

void TransportHost::listen(std::function<void(ServerConnection&)> on_accept) {
  listening_ = true;
  on_accept_ = std::move(on_accept);
}

const ServerConnection* TransportHost::server_connection(
    ConnectionId id) const {
  const auto it = servers_.find(id);
  return it == servers_.end() ? nullptr : &it->second;
}

void TransportHost::dispatch(net::Packet&& packet) {
  if (packet.protocol != kTransportProtocol) return;
  const auto header = decode_segment(packet.payload);
  if (!header) return;
  const ConnectionId id{header->connection_id};

  if (const auto it = clients_.find(id); it != clients_.end()) {
    it->second->on_segment(packet);
    return;
  }
  if (listening_) handle_server_segment(packet);
  // Otherwise: segment for a connection we no longer own (e.g. arrived at
  // an old address after migration) — dropped, as in a real network.
}

void TransportHost::handle_server_segment(const net::Packet& packet) {
  const auto h = *decode_segment(packet.payload);
  const ConnectionId id{h.connection_id};
  auto [it, inserted] = servers_.try_emplace(id);
  ServerConnection& sc = it->second;
  if (inserted) {
    sc.id = id;
    sc.client_node = packet.src;
    if (on_accept_) on_accept_(sc);
  }
  // The client's current address is wherever its packets come from —
  // this is how a QUIC-like server follows a migrating client.
  sc.client_node = packet.src;

  switch (h.type) {
    case kSegSyn: {
      net::Packet reply{node_, sc.client_node, kAckBytes, kTransportProtocol,
                        encode_segment(SegmentHeader{h.connection_id,
                                                     kSegSynAck, 0.0, 0})};
      net_.send(std::move(reply));
      break;
    }
    case kSegData:
    case kSegZeroRttData: {
      sc.accept(h.offset, h.offset + h.length);
      sc.last_data_at = sim_.now();
      if (sc.on_data) sc.on_data(sc.received_offset);
      net::Packet ack{node_, sc.client_node, kAckBytes, kTransportProtocol,
                      encode_segment(SegmentHeader{
                          h.connection_id, kSegAck, sc.received_offset, 0,
                          sc.highest_received()})};
      net_.send(std::move(ack));
      break;
    }
    default:
      break;
  }
}

void TransportHost::adopt(Connection* conn) {
  clients_.emplace(conn->id(), std::unique_ptr<Connection>(conn));
}

void TransportHost::abandon(Connection* conn) {
  const auto it = clients_.find(conn->id());
  assert(it != clients_.end());
  // Release ownership without destroying; the new host adopts it.
  it->second.release();
  clients_.erase(it);
}

void ServerConnection::accept(double start, double end) {
  if (end <= received_offset + kGranule) return;  // Pure duplicate.
  if (start <= received_offset + kGranule) {
    received_offset = std::max(received_offset, end);
  } else {
    // Buffer the out-of-order range, merging overlaps.
    auto it = ooo_ranges.lower_bound(start);
    if (it != ooo_ranges.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= start - kGranule) {
        start = prev->first;
        end = std::max(end, prev->second);
        it = ooo_ranges.erase(prev);
      }
    }
    while (it != ooo_ranges.end() && it->first <= end + kGranule) {
      end = std::max(end, it->second);
      it = ooo_ranges.erase(it);
    }
    ooo_ranges[start] = end;
  }
  // Release any buffered ranges made contiguous.
  auto it = ooo_ranges.begin();
  while (it != ooo_ranges.end() &&
         it->first <= received_offset + kGranule) {
    received_offset = std::max(received_offset, it->second);
    it = ooo_ranges.erase(it);
  }
}

// ---------------------------------------------------------- Connection --

Connection::Connection(TransportHost& host, NodeId remote,
                       TransportConfig config, ConnectionId id, bool resumed,
                       EstablishedCallback on_ready)
    : host_(&host),
      remote_(remote),
      config_(config),
      id_(id),
      on_ready_(std::move(on_ready)) {
  cwnd_ = config_.initial_cwnd_packets;
  const bool zero_rtt = config_.kind == TransportKind::kQuicLike &&
                        config_.zero_rtt_resumption && resumed;
  if (zero_rtt) {
    stats_.handshake_rtts = 0;
    state_ = State::kEstablished;
    stats_.established_at = host_->simulator().now();
    if (on_ready_) on_ready_();
  } else {
    stats_.handshake_rtts =
        config_.kind == TransportKind::kQuicLike ? 1 : 2;
    send_segment(kSegSyn, 0.0, 0);
    arm_rto();
  }
}

void Connection::send(double bytes) {
  app_offset_ += bytes;
  if (state_ == State::kEstablished) try_send();
}

void Connection::rebind(TransportHost& new_host) {
  if (config_.kind == TransportKind::kTcpLike) {
    // The 4-tuple changed: the connection is unusable. The application
    // must reconnect (and replay unacked data) itself.
    state_ = State::kBroken;
    return;
  }
  // QUIC-like migration: same connection id, new path. In-flight packets
  // to/from the old address are lost; sending resumes immediately and the
  // server learns the new address from the first arriving packet.
  host_->abandon(this);
  new_host.adopt(this);
  host_ = &new_host;
  rtt_valid_ = false;  // RTT samples from the old path are stale.
  if (state_ == State::kEstablished) {
    // Re-offer everything unacked on the new path right away rather than
    // waiting out an RTO armed for the old path.
    rewind_to_acked();
    try_send();
    arm_rto();
  }
}

void Connection::on_segment(const net::Packet& packet) {
  const auto h = *decode_segment(packet.payload);
  switch (h.type) {
    case kSegSynAck: {
      if (state_ != State::kConnecting) break;
      if (stats_.handshake_rtts > 1 && hs_rounds_done_ + 1 <
                                           stats_.handshake_rtts) {
        ++hs_rounds_done_;
        send_segment(kSegSyn, 0.0, 0);
        arm_rto();
        break;
      }
      state_ = State::kEstablished;
      stats_.established_at = host_->simulator().now();
      if (on_ready_) on_ready_();
      try_send();
      break;
    }
    case kSegAck:
      handle_ack(h.offset, h.hint);
      break;
    default:
      break;
  }
}

void Connection::handle_ack(double ack_offset, double hint) {
#ifdef DLTE_TRANSPORT_TRACE
  std::printf(
      "[%0.3f] ack=%.0f hint=%.0f acked=%.0f sent=%.0f max=%.0f cwnd=%.1f\n",
      host_->simulator().now().to_seconds(), ack_offset, hint, acked_offset_,
      sent_offset_, max_sent_offset_, cwnd_);
#endif
  stats_.last_ack_at = host_->simulator().now();
  if (ack_offset > acked_offset_ + kGranule) {
    const double newly = ack_offset - acked_offset_;
    acked_offset_ = ack_offset;
    stats_.bytes_acked = acked_offset_;
    rto_backoff_ = 1;
    // A cumulative ack can land ahead of our send cursor (e.g. the
    // receiver had buffered data whose acks were lost across a
    // migration); never send below the ack point.
    if (sent_offset_ < acked_offset_) sent_offset_ = acked_offset_;
    max_sent_offset_ = std::max(max_sent_offset_, sent_offset_);

    // RTT sample: the segment whose end offset matches this ack.
    const auto it = send_times_.find(ack_offset);
    if (it != send_times_.end()) {
      const double sample =
          (host_->simulator().now() - it->second).to_seconds();
      if (!rtt_valid_) {
        srtt_s_ = sample;
        rttvar_s_ = sample / 2.0;
        rtt_valid_ = true;
      } else {
        rttvar_s_ = 0.75 * rttvar_s_ + 0.25 * std::abs(srtt_s_ - sample);
        srtt_s_ = 0.875 * srtt_s_ + 0.125 * sample;
      }
    }
    send_times_.erase(send_times_.begin(),
                      send_times_.upper_bound(ack_offset));

    if (in_recovery_ && acked_offset_ >= recover_point_ - kGranule) {
      in_recovery_ = false;  // Recovery complete.
    }
    // Window growth applies during recovery as well (the restream must be
    // able to accelerate); what recovery suppresses is *further cuts*.
    const double acked_packets = newly / config_.mss_bytes;
    if (cwnd_ < ssthresh_) {
      cwnd_ += acked_packets;  // Slow start.
    } else {
      cwnd_ += acked_packets / cwnd_;  // Congestion avoidance.
    }
    if (max_sent_offset_ > acked_offset_ + kGranule) arm_rto();
    try_send();
  } else if (hint > acked_offset_ + kGranule && !in_recovery_) {
    // Duplicate cumulative ack but the receiver holds data above a hole:
    // genuine loss. One rate cut, then go back to the ack point and
    // restream — the selective receiver absorbs duplicates, so burst
    // losses heal in a few RTTs instead of NewReno's one hole per RTT.
    // Duplicate acks with hint == ack (echoes of our own duplicate
    // retransmissions) are ignored — no spurious cuts.
    ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
    cwnd_ = ssthresh_;
    in_recovery_ = true;
    recover_point_ = max_sent_offset_;
    rewind_to_acked();
    try_send();
    arm_rto();
  }
}

void Connection::try_send() {
  if (state_ != State::kEstablished) return;
  const double window_bytes = cwnd_ * config_.mss_bytes;
  bool sent_any = false;
  while (sent_offset_ < app_offset_ - kGranule &&
         sent_offset_ - acked_offset_ < window_bytes - kGranule) {
    // Fractional application byte counts are padded up to whole bytes so
    // the final fragment of a burst can never be zero-length.
    const int len = static_cast<int>(std::ceil(std::min<double>(
        config_.mss_bytes, app_offset_ - sent_offset_)));
    if (len <= 0) break;
    send_segment(stats_.handshake_rtts == 0 ? kSegZeroRttData : kSegData,
                 sent_offset_, len);
    send_times_[sent_offset_ + len] = host_->simulator().now();
    if (sent_offset_ < max_sent_offset_ - kGranule) {
      ++stats_.retransmissions;
    }
    sent_offset_ += len;
    max_sent_offset_ = std::max(max_sent_offset_, sent_offset_);
    stats_.bytes_sent += len;
    sent_any = true;
  }
  if (sent_any) arm_rto();
}

void Connection::send_segment(std::uint8_t type, double offset, int length) {
  net::Packet p{host_->node(), remote_, length + kHeaderBytes,
                kTransportProtocol,
                encode_segment(SegmentHeader{id_.value(), type, offset,
                                             static_cast<std::uint32_t>(
                                                 length)})};
  host_->network().send(std::move(p));
}

Duration Connection::rto() const {
  double base_s = rtt_valid_ ? srtt_s_ + 4.0 * rttvar_s_
                             : config_.min_rto.to_seconds();
  base_s = std::max(base_s, config_.min_rto.to_seconds());
  return Duration::seconds(base_s * rto_backoff_);
}

void Connection::arm_rto() {
  const std::uint64_t epoch = ++rto_epoch_;
  host_->simulator().schedule(rto(), [this, epoch] {
    if (epoch == rto_epoch_) on_rto();
  });
}

void Connection::on_rto() {
  if (state_ == State::kBroken) return;
  if (state_ == State::kConnecting) {
    ++stats_.timeouts;
    rto_backoff_ = std::min(rto_backoff_ * 2, 64);
    send_segment(kSegSyn, 0.0, 0);
    arm_rto();
    return;
  }
  if (max_sent_offset_ <= acked_offset_ + kGranule) return;  // All acked.
  ++stats_.timeouts;
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
  cwnd_ = 1.0;
  rto_backoff_ = std::min(rto_backoff_ * 2, 64);
  recover_point_ = max_sent_offset_;
  rewind_to_acked();
  try_send();
  arm_rto();
}

void Connection::rewind_to_acked() {
  sent_offset_ = acked_offset_;
  send_times_.clear();
}

void Connection::retransmit_one_at_ack() {
  const int len = static_cast<int>(std::min<double>(
      config_.mss_bytes, max_sent_offset_ - acked_offset_));
  if (len <= 0) return;
  send_segment(kSegData, acked_offset_, len);
  ++stats_.retransmissions;
}

}  // namespace dlte::transport
