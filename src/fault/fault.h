// Deterministic fault injection (the resilience half of §7's "ecosystem
// health" story).
//
// A FaultPlan is a seeded, fully-reproducible schedule of failures — AP
// crashes, backhaul partitions and degradations, registry outages, X2
// message corruption. The FaultInjector arms the plan against live
// components on the simulator clock: every fault and its heal is an
// ordinary event, so two runs with the same seed see byte-identical
// failure timelines. That is what makes the C8 resilience experiment an
// A/B comparison instead of an anecdote.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "core/access_point.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "spectrum/registry.h"

namespace dlte::fault {

enum class FaultKind {
  kApCrash,         // AP loses volatile core state and leaves the air.
  kLinkPartition,   // Backhaul link hard-down.
  kLinkDegrade,     // Backhaul link turns lossy / slow.
  kRegistryOutage,  // Registry service (or one federated zone) fails.
  kX2Impairment,    // An AP's X2 agent drops / duplicates messages.
};

[[nodiscard]] const char* fault_kind_name(FaultKind kind);

// One scheduled failure. Only the fields for `kind` are meaningful.
struct FaultSpec {
  FaultKind kind{FaultKind::kApCrash};
  TimePoint at{};
  // Zero = permanent: the fault never heals within the run.
  Duration duration{};

  ApId ap{};                   // kApCrash, kX2Impairment.
  NodeId link_a{}, link_b{};   // kLinkPartition, kLinkDegrade.
  double loss{0.0};            // kLinkDegrade loss / kX2Impairment drop.
  Duration extra_latency{};    // kLinkDegrade added one-way delay.
  double duplicate{0.0};       // kX2Impairment duplication probability.
  spectrum::RegistryOutage outage{spectrum::RegistryOutage::kNone};
  int zone{-1};                // kRegistryOutage: federated zone, -1 = all.

  [[nodiscard]] std::string describe() const;
};

// Knobs for FaultPlan::random().
struct RandomFaultProfile {
  int ap_crashes{2};
  int link_partitions{2};
  int link_degrades{2};
  int registry_outages{1};
  Duration horizon{Duration::seconds(120.0)};
  Duration min_duration{Duration::seconds(5.0)};
  Duration max_duration{Duration::seconds(20.0)};
};

class FaultPlan {
 public:
  FaultPlan& add(FaultSpec spec);
  [[nodiscard]] const std::vector<FaultSpec>& specs() const {
    return specs_;
  }
  [[nodiscard]] std::size_t size() const { return specs_.size(); }

  // One line per fault in schedule order. Byte-stable for a given plan —
  // the determinism check in tests/bench compares these strings.
  [[nodiscard]] std::string summary() const;

  // Seeded random plan over the given APs and links. Same seed + same
  // inputs = identical plan; the draws depend only on the seed, never on
  // wall-clock or address ordering.
  [[nodiscard]] static FaultPlan random(
      std::uint64_t seed, const std::vector<ApId>& aps,
      const std::vector<std::pair<NodeId, NodeId>>& links,
      const RandomFaultProfile& profile = {});

 private:
  std::vector<FaultSpec> specs_;
};

struct FaultInjectorStats {
  std::uint64_t injected{0};
  std::uint64_t healed{0};
};

// Arms a FaultPlan against live components. Register the targets first,
// then arm(); injection and healing run as simulator events.
class FaultInjector {
 public:
  explicit FaultInjector(sim::Simulator& sim) : sim_(sim) {}

  void register_ap(core::DlteAccessPoint* ap);
  void set_network(net::Network* net) { net_ = net; }
  void set_registry(spectrum::Registry* registry) { registry_ = registry; }
  void set_trace(sim::TraceLog* trace) { trace_ = trace; }

  // Schedule every fault (and, for finite durations, its heal).
  void arm(const FaultPlan& plan);

  [[nodiscard]] const FaultInjectorStats& stats() const { return stats_; }

  // Export fault counters under `<prefix>fault.*`, plus a repair-time
  // histogram (`fault.repair_time_s`) fed at each heal — the per-fault
  // injected repair duration, the ground truth MTTR input — and a
  // `fault.active` gauge (currently-unhealed faults; a health-timeline
  // overlay for the §10 series plane).
  void set_metrics(obs::MetricsRegistry* registry,
                   const std::string& prefix = "");

  // Causal tracing: every inject/heal emits a zero-duration
  // "fault_inject"/"fault_heal" marker span (category `<prefix>fault`)
  // and, when a procedure span is currently active, annotates it — so a
  // trace shows which attach/handover a fault landed in the middle of.
  void set_tracer(obs::SpanTracer* tracer, const std::string& prefix = "");

 private:
  void inject(const FaultSpec& spec);
  void heal(const FaultSpec& spec);
  void trace_event(const FaultSpec& spec, const char* phase);
  [[nodiscard]] core::DlteAccessPoint* find_ap(ApId id) const;
  [[nodiscard]] static std::pair<std::uint64_t, std::uint64_t> link_key(
      const FaultSpec& spec);

  sim::Simulator& sim_;
  std::vector<core::DlteAccessPoint*> aps_;
  net::Network* net_{nullptr};
  spectrum::Registry* registry_{nullptr};
  sim::TraceLog* trace_{nullptr};
  obs::SpanTracer* tracer_{nullptr};
  std::string span_cat_{"fault"};
  FaultInjectorStats stats_;
  obs::Counter* m_injected_{nullptr};
  obs::Counter* m_healed_{nullptr};
  obs::Histogram* m_repair_time_s_{nullptr};
  obs::Gauge* m_active_{nullptr};
  // Overlapping partition windows on one link refcount: the link comes
  // back only when the *last* window closes. [10,40] ∪ [20,30] heals the
  // link once, at t=40.
  std::map<std::pair<std::uint64_t, std::uint64_t>, int> partition_depth_;
};

}  // namespace dlte::fault
