// Service-level resilience accounting for fault experiments.
//
// The C8 experiment's claim is about *clients*, not boxes: when an AP
// dies, how long until its UEs are in service again somewhere, and how
// much UE-time was lost? The tracker watches each UE's in-service
// intervals and attach outcomes and folds them into a ResilienceReport
// whose to_string() is byte-stable — two runs with the same seed must
// produce identical reports, which the determinism test checks literally.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace dlte::fault {

struct ResilienceReport {
  double horizon_s{0.0};
  std::size_t ues{0};
  std::uint64_t attach_attempts{0};
  std::uint64_t attach_successes{0};
  std::uint64_t service_losses{0};
  std::uint64_t service_recoveries{0};
  // Fraction of total UE-time spent in service.
  double availability{0.0};
  // Fraction of UEs attached (in service) at the horizon.
  double eventual_attach_rate{0.0};
  // Loss → recovery time: mean (MTTR) and p95, over recovered losses.
  double mttr_s{0.0};
  double reattach_p95_s{0.0};
  std::uint64_t fault_events{0};

  // Fixed-format, byte-stable rendering (the determinism check compares
  // these strings between same-seed runs).
  [[nodiscard]] std::string to_string() const;
};

class ResilienceTracker {
 public:
  explicit ResilienceTracker(sim::Simulator& sim) : sim_(sim) {}

  // Register a UE. It starts out of service; on_attached() begins its
  // first in-service interval.
  void track(Imsi imsi);

  void on_attach_attempt() { ++attach_attempts_; }
  // Attach completed: the UE is in service. If it was previously lost,
  // this closes a loss interval and records the repair time.
  void on_attached(Imsi imsi);
  // Service lost (AP crash, lease lapse): opens a loss interval.
  void on_service_lost(Imsi imsi);
  void on_fault_event() { ++fault_events_; }

  [[nodiscard]] std::size_t tracked() const { return ues_.size(); }
  [[nodiscard]] bool in_service(Imsi imsi) const;

  // Fold everything into a report at `horizon` (open in-service intervals
  // are credited up to the horizon). Const: callable repeatedly.
  [[nodiscard]] ResilienceReport report(TimePoint horizon) const;

  // Health source (DESIGN.md §10): gauge
  // `<prefix>resilience.ues_in_service`, counters
  // `.service_losses`/`.service_recoveries`, and a `.repair_time_s`
  // histogram of observed loss→recovery times (the client-side MTTR,
  // vs fault.repair_time_s which is the injected ground truth).
  // Null-safe.
  void set_metrics(obs::MetricsRegistry* registry,
                   const std::string& prefix = "");

 private:
  struct UeState {
    bool in_service{false};
    bool ever_lost{false};
    TimePoint interval_start{};  // Start of the current interval.
    TimePoint lost_at{};
    Duration in_service_time{};
  };

  sim::Simulator& sim_;
  std::unordered_map<Imsi, UeState> ues_;
  std::vector<double> repair_times_s_;
  std::uint64_t attach_attempts_{0};
  std::uint64_t attach_successes_{0};
  std::uint64_t service_losses_{0};
  std::uint64_t service_recoveries_{0};
  std::uint64_t fault_events_{0};

  [[nodiscard]] std::size_t in_service_count() const;

  obs::Gauge* m_in_service_{nullptr};
  obs::Counter* m_losses_{nullptr};
  obs::Counter* m_recoveries_{nullptr};
  obs::Histogram* m_repair_time_s_{nullptr};
};

}  // namespace dlte::fault
