// UE-side failover: what a standard handset's connection manager does
// when its serving cell disappears.
//
// dLTE's answer to AP failure is architectural (§4.2): there is no
// network-side context to migrate, so a UE that loses its AP simply
// re-attaches at the best neighbour it can hear — same flow as switching
// WiFi SSIDs. The agent models exactly that: a periodic radio-level
// watchdog notices the serving cell has gone dark, picks the strongest
// live cell, and runs attach-with-backoff against it. A centralized
// deployment has no such option — when the one core is down, every cell
// in the region is dark and the watchdog finds nothing to fail over to.
#pragma once

#include <deque>
#include <vector>

#include "core/access_point.h"
#include "core/ue_device.h"
#include "fault/resilience.h"
#include "mac/lte_cell_mac.h"
#include "sim/simulator.h"
#include "ue/nas_client.h"

namespace dlte::fault {

struct FailoverStats {
  std::uint64_t failovers_started{0};  // Re-attach after a detected loss.
  std::uint64_t reattach_successes{0};
  std::uint64_t reattach_failures{0};  // Retry budget exhausted this round.
};

class UeFailoverAgent {
 public:
  UeFailoverAgent(sim::Simulator& sim, core::RadioEnvironment& env,
                  ResilienceTracker* tracker = nullptr)
      : sim_(sim), env_(env), tracker_(tracker) {}

  // Candidate APs, in preference-tie-break order (earlier wins a tie).
  void add_ap(core::DlteAccessPoint* ap);

  // Manage a UE: the agent performs its initial attach on start() and
  // re-attaches it whenever its serving AP fails.
  void manage(core::UeDevice& ue, mac::UeTrafficConfig traffic,
              ue::AttachRetryPolicy policy = {});

  // Start the watchdog (and kick off initial attaches).
  void start(Duration check_period = Duration::millis(500));

  [[nodiscard]] const FailoverStats& stats() const { return stats_; }

 private:
  struct ManagedUe {
    core::UeDevice* ue{nullptr};
    mac::UeTrafficConfig traffic{};
    ue::AttachRetryPolicy policy{};
    core::DlteAccessPoint* serving{nullptr};
    bool attaching{false};
  };

  void check();
  void start_attach(ManagedUe& m, bool is_failover);
  [[nodiscard]] core::DlteAccessPoint* best_ap_for(
      const core::UeDevice& ue) const;

  sim::Simulator& sim_;
  core::RadioEnvironment& env_;
  ResilienceTracker* tracker_{nullptr};
  std::vector<core::DlteAccessPoint*> aps_;
  // Deque-stable storage: ManagedUe addresses must survive push_back, so
  // the attach callbacks can hold a pointer. deque never relocates.
  std::deque<ManagedUe> ues_;
  FailoverStats stats_;
  sim::Simulator::PeriodicHandle watchdog_;
  bool started_{false};
};

}  // namespace dlte::fault
