// Default SLO rule set for fault experiments (DESIGN.md §10).
//
// The C8 claim is about clients: alerting keys off how many UEs are in
// service (ResilienceTracker::set_metrics), not off which boxes are up.
#pragma once

#include <string>
#include <vector>

#include "obs/slo.h"

namespace dlte::fault {

// Rules over `<prefix>resilience.*` metrics under health scope `scope`:
//   * service_degraded — gauge resilience.ues_in_service must stay at
//     least `min_ues_in_service` (fires while a crash strands UEs,
//     resolves when failover re-attaches them elsewhere).
std::vector<obs::SloRule> default_resilience_slo_rules(
    double min_ues_in_service, const std::string& prefix = "",
    const std::string& scope = "service");

}  // namespace dlte::fault
