#include "fault/health.h"

namespace dlte::fault {

std::vector<obs::SloRule> default_resilience_slo_rules(
    double min_ues_in_service, const std::string& prefix,
    const std::string& scope) {
  std::vector<obs::SloRule> rules;
  obs::SloRule r;
  r.name = "service_degraded";
  r.scope = scope;
  r.metric = prefix + "resilience.ues_in_service";
  r.predicate = obs::SloPredicate::kGaugeAtLeast;
  r.threshold = min_ues_in_service;
  r.fire_after = 2;  // Let failover race one evaluation before paging.
  r.resolve_after = 1;
  rules.push_back(r);
  return rules;
}

}  // namespace dlte::fault
