#include "fault/failover.h"

namespace dlte::fault {

void UeFailoverAgent::add_ap(core::DlteAccessPoint* ap) {
  if (ap != nullptr) aps_.push_back(ap);
}

void UeFailoverAgent::manage(core::UeDevice& ue, mac::UeTrafficConfig traffic,
                             ue::AttachRetryPolicy policy) {
  ManagedUe m;
  m.ue = &ue;
  m.traffic = traffic;
  m.policy = policy;
  ues_.push_back(m);
  if (tracker_ != nullptr) tracker_->track(ue.imsi());
}

void UeFailoverAgent::start(Duration check_period) {
  if (started_) return;
  started_ = true;
  // Kick initial attaches on the first tick; then watch.
  watchdog_ = sim_.every_cancellable(check_period, [this] { check(); });
}

core::DlteAccessPoint* UeFailoverAgent::best_ap_for(
    const core::UeDevice& ue) const {
  // Strongest live cell wins; ties break toward earlier registration.
  // A failed AP's cell is inactive in the radio environment, so a UE
  // "hearing nothing" from it is modelled, not assumed.
  core::DlteAccessPoint* best = nullptr;
  double best_rsrp = -1e300;
  for (auto* ap : aps_) {
    if (ap->failed() || !env_.cell_active(ap->cell_id())) continue;
    const double rsrp = env_.rsrp(ap->cell_id(), ue.position()).value();
    if (rsrp > best_rsrp) {
      best_rsrp = rsrp;
      best = ap;
    }
  }
  return best;
}

void UeFailoverAgent::start_attach(ManagedUe& m, bool is_failover) {
  core::DlteAccessPoint* target = best_ap_for(*m.ue);
  if (target == nullptr) return;  // Nothing on the air: try next tick.
  m.attaching = true;
  if (is_failover) ++stats_.failovers_started;
  if (tracker_ != nullptr) tracker_->on_attach_attempt();
  ManagedUe* mp = &m;
  target->attach_with_retry(
      *m.ue, m.traffic, m.policy,
      [this, mp, target](core::AttachOutcome outcome) {
        mp->attaching = false;
        if (outcome.success) {
          mp->serving = target;
          ++stats_.reattach_successes;
          if (tracker_ != nullptr) tracker_->on_attached(mp->ue->imsi());
        } else {
          // Retry budget exhausted; the watchdog starts a fresh round
          // (possibly at a different AP) on its next tick.
          ++stats_.reattach_failures;
        }
      });
}

void UeFailoverAgent::check() {
  for (auto& m : ues_) {
    if (m.attaching) continue;
    const bool serving_ok = m.serving != nullptr && !m.serving->failed() &&
                            m.ue->attached();
    if (serving_ok) continue;
    const bool had_service = m.serving != nullptr;
    if (had_service) {
      // Radio-level loss detection: the serving cell stopped answering.
      if (tracker_ != nullptr) tracker_->on_service_lost(m.ue->imsi());
      m.serving = nullptr;
    }
    start_attach(m, had_service);
  }
}

}  // namespace dlte::fault
