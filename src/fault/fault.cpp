#include "fault/fault.h"

#include <algorithm>
#include <cstdio>

namespace dlte::fault {
namespace {

// Fixed-precision formatting so plan summaries are byte-stable across
// runs and platforms (std::to_string's precision is fine, but spell the
// intent out).
std::string fmt3(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kApCrash:
      return "ap-crash";
    case FaultKind::kLinkPartition:
      return "link-partition";
    case FaultKind::kLinkDegrade:
      return "link-degrade";
    case FaultKind::kRegistryOutage:
      return "registry-outage";
    case FaultKind::kX2Impairment:
      return "x2-impair";
  }
  return "unknown";
}

std::string FaultSpec::describe() const {
  std::string s = fault_kind_name(kind);
  switch (kind) {
    case FaultKind::kApCrash:
      s += " ap=" + std::to_string(ap.value());
      break;
    case FaultKind::kLinkPartition:
      s += " link=" + std::to_string(link_a.value()) + "<->" +
           std::to_string(link_b.value());
      break;
    case FaultKind::kLinkDegrade:
      s += " link=" + std::to_string(link_a.value()) + "<->" +
           std::to_string(link_b.value()) + " loss=" + fmt3(loss) +
           " extra=" + fmt3(extra_latency.to_millis()) + "ms";
      break;
    case FaultKind::kRegistryOutage:
      s += outage == spectrum::RegistryOutage::kCommitStall
               ? " mode=commit-stall"
               : " mode=offline";
      s += zone >= 0 ? " zone=" + std::to_string(zone) : " zone=all";
      break;
    case FaultKind::kX2Impairment:
      s += " ap=" + std::to_string(ap.value()) + " drop=" + fmt3(loss) +
           " dup=" + fmt3(duplicate);
      break;
  }
  return s;
}

FaultPlan& FaultPlan::add(FaultSpec spec) {
  specs_.push_back(spec);
  return *this;
}

std::string FaultPlan::summary() const {
  std::string out;
  for (const auto& spec : specs_) {
    out += "t=" + fmt3(spec.at.to_seconds()) + "s " + spec.describe();
    out += spec.duration.is_zero()
               ? " dur=permanent"
               : " dur=" + fmt3(spec.duration.to_seconds()) + "s";
    out += "\n";
  }
  return out;
}

FaultPlan FaultPlan::random(std::uint64_t seed, const std::vector<ApId>& aps,
                            const std::vector<std::pair<NodeId, NodeId>>& links,
                            const RandomFaultProfile& profile) {
  FaultPlan plan;
  auto rng = sim::RngStream::derive(seed, "fault-plan");
  // Faults start inside the first 70% of the horizon so finite ones get a
  // chance to heal (and their aftermath to be observed) before the end.
  const double start_span = profile.horizon.to_seconds() * 0.7;
  const auto draw_at = [&] {
    return TimePoint{} + Duration::seconds(rng.uniform(1.0, start_span));
  };
  const auto draw_dur = [&] {
    return Duration::seconds(rng.uniform(profile.min_duration.to_seconds(),
                                         profile.max_duration.to_seconds()));
  };

  if (!aps.empty()) {
    for (int i = 0; i < profile.ap_crashes; ++i) {
      FaultSpec s;
      s.kind = FaultKind::kApCrash;
      s.at = draw_at();
      s.duration = draw_dur();
      s.ap = aps[rng.uniform_int(0, aps.size() - 1)];
      plan.add(s);
    }
  }
  if (!links.empty()) {
    for (int i = 0; i < profile.link_partitions; ++i) {
      FaultSpec s;
      s.kind = FaultKind::kLinkPartition;
      s.at = draw_at();
      s.duration = draw_dur();
      const auto& link = links[rng.uniform_int(0, links.size() - 1)];
      s.link_a = link.first;
      s.link_b = link.second;
      plan.add(s);
    }
    for (int i = 0; i < profile.link_degrades; ++i) {
      FaultSpec s;
      s.kind = FaultKind::kLinkDegrade;
      s.at = draw_at();
      s.duration = draw_dur();
      const auto& link = links[rng.uniform_int(0, links.size() - 1)];
      s.link_a = link.first;
      s.link_b = link.second;
      s.loss = rng.uniform(0.05, 0.3);
      s.extra_latency = Duration::millis(
          static_cast<std::int64_t>(rng.uniform_int(20, 200)));
      plan.add(s);
    }
  }
  for (int i = 0; i < profile.registry_outages; ++i) {
    FaultSpec s;
    s.kind = FaultKind::kRegistryOutage;
    s.at = draw_at();
    s.duration = draw_dur();
    s.outage = rng.uniform_int(0, 1) == 0
                   ? spectrum::RegistryOutage::kOffline
                   : spectrum::RegistryOutage::kCommitStall;
    plan.add(s);
  }

  std::stable_sort(plan.specs_.begin(), plan.specs_.end(),
                   [](const FaultSpec& a, const FaultSpec& b) {
                     return a.at < b.at;
                   });
  return plan;
}

void FaultInjector::register_ap(core::DlteAccessPoint* ap) {
  if (ap != nullptr) aps_.push_back(ap);
}

core::DlteAccessPoint* FaultInjector::find_ap(ApId id) const {
  for (auto* ap : aps_) {
    if (ap->id() == id) return ap;
  }
  return nullptr;
}

std::pair<std::uint64_t, std::uint64_t> FaultInjector::link_key(
    const FaultSpec& spec) {
  const std::uint64_t a = spec.link_a.value();
  const std::uint64_t b = spec.link_b.value();
  return {std::min(a, b), std::max(a, b)};
}

void FaultInjector::arm(const FaultPlan& plan) {
  for (const auto& spec : plan.specs()) {
    sim_.schedule_at(spec.at, [this, spec] { inject(spec); });
    if (!spec.duration.is_zero()) {
      sim_.schedule_at(spec.at + spec.duration, [this, spec] { heal(spec); });
    }
  }
}

void FaultInjector::trace_event(const FaultSpec& spec, const char* phase) {
  if (trace_ != nullptr) {
    trace_->record(sim::TraceCategory::kFault, "fault-injector",
                   std::string(phase) + " " + spec.describe());
  }
  if (tracer_ != nullptr) {
    // Pin the fault onto whatever procedure is mid-flight (if any), then
    // drop a zero-duration marker so the timeline shows the event even
    // when nothing was active.
    if (tracer_->current() != obs::kNoSpan) {
      tracer_->annotate_current("fault", std::string(phase) + " " +
                                             spec.describe());
    }
    const obs::SpanId s = obs::span_begin(
        tracer_, std::string("fault_") + phase, span_cat_);
    obs::span_annotate(tracer_, s, "spec", spec.describe());
    obs::span_end(tracer_, s);
  }
}

void FaultInjector::set_tracer(obs::SpanTracer* tracer,
                               const std::string& prefix) {
  tracer_ = tracer;
  span_cat_ = prefix + "fault";
}

void FaultInjector::set_metrics(obs::MetricsRegistry* registry,
                                const std::string& prefix) {
  if (registry == nullptr) {
    m_injected_ = nullptr;
    m_healed_ = nullptr;
    m_repair_time_s_ = nullptr;
    m_active_ = nullptr;
    return;
  }
  m_injected_ = &registry->counter(prefix + "fault.injected");
  m_healed_ = &registry->counter(prefix + "fault.healed");
  m_repair_time_s_ = &registry->histogram(prefix + "fault.repair_time_s");
  m_active_ = &registry->gauge(prefix + "fault.active");
  m_active_->set(static_cast<double>(stats_.injected - stats_.healed));
}

void FaultInjector::inject(const FaultSpec& spec) {
  ++stats_.injected;
  obs::inc(m_injected_);
  obs::set(m_active_, static_cast<double>(stats_.injected - stats_.healed));
  trace_event(spec, "inject");
  switch (spec.kind) {
    case FaultKind::kApCrash:
      if (auto* ap = find_ap(spec.ap)) ap->fail();
      break;
    case FaultKind::kLinkPartition:
      if (net_ != nullptr && partition_depth_[link_key(spec)]++ == 0) {
        net_->set_link_enabled(spec.link_a, spec.link_b, false);
      }
      break;
    case FaultKind::kLinkDegrade:
      if (net_ != nullptr) {
        net_->set_link_impairment(
            spec.link_a, spec.link_b,
            net::LinkImpairment{spec.loss, spec.extra_latency});
      }
      break;
    case FaultKind::kRegistryOutage:
      if (registry_ != nullptr) {
        if (spec.zone >= 0) {
          registry_->set_zone_offline(spec.zone, true);
        } else {
          registry_->set_outage(spec.outage ==
                                        spectrum::RegistryOutage::kNone
                                    ? spectrum::RegistryOutage::kOffline
                                    : spec.outage);
        }
      }
      break;
    case FaultKind::kX2Impairment:
      if (auto* ap = find_ap(spec.ap)) {
        ap->coordinator().set_impairment(
            spectrum::X2Impairment{spec.loss, spec.duplicate});
      }
      break;
  }
}

void FaultInjector::heal(const FaultSpec& spec) {
  ++stats_.healed;
  obs::inc(m_healed_);
  obs::set(m_active_, static_cast<double>(stats_.injected - stats_.healed));
  obs::observe(m_repair_time_s_, spec.duration.to_seconds());
  trace_event(spec, "heal");
  switch (spec.kind) {
    case FaultKind::kApCrash:
      if (auto* ap = find_ap(spec.ap)) ap->recover(registry_);
      break;
    case FaultKind::kLinkPartition:
      // Refcounted: with overlapping windows, only the close of the last
      // one re-enables the link.
      if (net_ != nullptr && --partition_depth_[link_key(spec)] == 0) {
        net_->set_link_enabled(spec.link_a, spec.link_b, true);
      }
      break;
    case FaultKind::kLinkDegrade:
      if (net_ != nullptr) {
        net_->set_link_impairment(spec.link_a, spec.link_b,
                                  net::LinkImpairment{});
      }
      break;
    case FaultKind::kRegistryOutage:
      if (registry_ != nullptr) {
        if (spec.zone >= 0) {
          registry_->set_zone_offline(spec.zone, false);
        } else {
          registry_->set_outage(spectrum::RegistryOutage::kNone);
        }
      }
      break;
    case FaultKind::kX2Impairment:
      if (auto* ap = find_ap(spec.ap)) {
        ap->coordinator().set_impairment(spectrum::X2Impairment{});
      }
      break;
  }
}

}  // namespace dlte::fault
