#include "fault/resilience.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace dlte::fault {
namespace {

std::string fmt3(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

void ResilienceTracker::track(Imsi imsi) {
  ues_.try_emplace(imsi);
}

bool ResilienceTracker::in_service(Imsi imsi) const {
  const auto it = ues_.find(imsi);
  return it != ues_.end() && it->second.in_service;
}

void ResilienceTracker::on_attached(Imsi imsi) {
  ++attach_successes_;
  auto it = ues_.find(imsi);
  if (it == ues_.end()) return;
  UeState& ue = it->second;
  if (ue.in_service) return;  // Duplicate notification.
  if (ue.ever_lost) {
    ++service_recoveries_;
    obs::inc(m_recoveries_);
    const double repair_s = (sim_.now() - ue.lost_at).to_seconds();
    repair_times_s_.push_back(repair_s);
    obs::observe(m_repair_time_s_, repair_s);
    ue.ever_lost = false;
  }
  ue.in_service = true;
  ue.interval_start = sim_.now();
  obs::set(m_in_service_, static_cast<double>(in_service_count()));
}

void ResilienceTracker::on_service_lost(Imsi imsi) {
  auto it = ues_.find(imsi);
  if (it == ues_.end()) return;
  UeState& ue = it->second;
  if (!ue.in_service) return;
  ue.in_service = false;
  ue.ever_lost = true;
  ue.lost_at = sim_.now();
  ue.in_service_time += sim_.now() - ue.interval_start;
  ++service_losses_;
  obs::inc(m_losses_);
  obs::set(m_in_service_, static_cast<double>(in_service_count()));
}

std::size_t ResilienceTracker::in_service_count() const {
  std::size_t n = 0;
  for (const auto& [imsi, ue] : ues_) {
    if (ue.in_service) ++n;
  }
  return n;
}

void ResilienceTracker::set_metrics(obs::MetricsRegistry* registry,
                                    const std::string& prefix) {
  if (registry == nullptr) {
    m_in_service_ = nullptr;
    m_losses_ = nullptr;
    m_recoveries_ = nullptr;
    m_repair_time_s_ = nullptr;
    return;
  }
  m_in_service_ = &registry->gauge(prefix + "resilience.ues_in_service");
  m_losses_ = &registry->counter(prefix + "resilience.service_losses");
  m_recoveries_ = &registry->counter(prefix + "resilience.service_recoveries");
  m_repair_time_s_ =
      &registry->histogram(prefix + "resilience.repair_time_s");
  m_in_service_->set(static_cast<double>(in_service_count()));
}

ResilienceReport ResilienceTracker::report(TimePoint horizon) const {
  ResilienceReport r;
  r.horizon_s = horizon.to_seconds();
  r.ues = ues_.size();
  r.attach_attempts = attach_attempts_;
  r.attach_successes = attach_successes_;
  r.service_losses = service_losses_;
  r.service_recoveries = service_recoveries_;
  r.fault_events = fault_events_;

  Duration in_service_total{};
  std::size_t attached_at_horizon = 0;
  for (const auto& [imsi, ue] : ues_) {
    in_service_total += ue.in_service_time;
    if (ue.in_service) {
      in_service_total += horizon - ue.interval_start;
      ++attached_at_horizon;
    }
  }
  const double ue_time_s =
      static_cast<double>(ues_.size()) * horizon.to_seconds();
  r.availability = ue_time_s > 0.0
                       ? in_service_total.to_seconds() / ue_time_s
                       : 0.0;
  r.eventual_attach_rate =
      ues_.empty() ? 0.0
                   : static_cast<double>(attached_at_horizon) /
                         static_cast<double>(ues_.size());

  if (!repair_times_s_.empty()) {
    auto sorted = repair_times_s_;
    std::sort(sorted.begin(), sorted.end());
    double sum = 0.0;
    for (const double t : sorted) sum += t;
    r.mttr_s = sum / static_cast<double>(sorted.size());
    const auto idx = static_cast<std::size_t>(
        std::max(0.0, std::ceil(0.95 * static_cast<double>(sorted.size())) -
                          1.0));
    r.reattach_p95_s = sorted[std::min(idx, sorted.size() - 1)];
  }
  return r;
}

std::string ResilienceReport::to_string() const {
  std::string out;
  out += "horizon_s=" + fmt3(horizon_s) + "\n";
  out += "ues=" + std::to_string(ues) + "\n";
  out += "attach_attempts=" + std::to_string(attach_attempts) + "\n";
  out += "attach_successes=" + std::to_string(attach_successes) + "\n";
  out += "service_losses=" + std::to_string(service_losses) + "\n";
  out += "service_recoveries=" + std::to_string(service_recoveries) + "\n";
  out += "availability=" + fmt3(availability) + "\n";
  out += "eventual_attach_rate=" + fmt3(eventual_attach_rate) + "\n";
  out += "mttr_s=" + fmt3(mttr_s) + "\n";
  out += "reattach_p95_s=" + fmt3(reattach_p95_s) + "\n";
  out += "fault_events=" + std::to_string(fault_events) + "\n";
  return out;
}

}  // namespace dlte::fault
