// Client-side NAS state machine: what a standard handset's modem runs.
//
// The dLTE compatibility requirement (§4.1) is that this machine — which
// we do not get to modify on real phones — completes successfully against
// the local core stub. It therefore implements the strict EPS-AKA
// dialogue with no dLTE-specific shortcuts.
#pragma once

#include <algorithm>
#include <optional>
#include <string>

#include "common/time.h"
#include "lte/nas.h"
#include "sim/random.h"
#include "ue/usim.h"

namespace dlte::ue {

// Retry schedule for a failed or timed-out attach. Real basebands do not
// hammer the network when an attach dies — they back off exponentially
// with jitter so that a mass re-attach (every UE of a crashed AP arriving
// at the neighbor at once) spreads out instead of synchronizing into a
// thundering herd the admission throttle would have to reject anyway.
struct AttachRetryPolicy {
  Duration initial_backoff{Duration::millis(500)};
  double multiplier{2.0};
  Duration max_backoff{Duration::seconds(8.0)};
  // Each wait is scaled by a uniform draw from [1-jitter, 1+jitter].
  double jitter{0.2};
  int max_attempts{8};

  // Wait before retry number `attempt` (1 = first retry). Deterministic
  // given the stream — UEs derive their own substreams, so the fleet
  // de-synchronizes while any single run stays reproducible.
  [[nodiscard]] Duration backoff(int attempt, sim::RngStream& rng) const {
    double wait_s = initial_backoff.to_seconds();
    for (int i = 1; i < attempt; ++i) wait_s *= multiplier;
    wait_s = std::min(wait_s, max_backoff.to_seconds());
    if (jitter > 0.0) wait_s *= rng.uniform(1.0 - jitter, 1.0 + jitter);
    return Duration::seconds(wait_s);
  }
};

enum class NasClientState {
  kIdle,
  kAwaitingAuth,
  kAwaitingSecurityMode,
  kAwaitingAccept,
  kRegistered,
  kRejected,
};

class NasClient {
 public:
  // `serving_network_id` comes from the cell broadcast of the network the
  // UE is camping on — it keys the session to this network.
  NasClient(Usim usim, std::string serving_network_id);

  // Begin attach: returns the AttachRequest to send up.
  [[nodiscard]] lte::NasMessage start_attach();

  // Feed a downlink NAS message; returns the uplink reply, if any.
  [[nodiscard]] std::optional<lte::NasMessage> handle(
      const lte::NasMessage& message);

  // Reset to idle (e.g. after moving to a new AP: in dLTE the UE simply
  // re-attaches at the new cell).
  void reset(std::string new_serving_network_id);

  [[nodiscard]] NasClientState state() const { return state_; }
  [[nodiscard]] bool registered() const {
    return state_ == NasClientState::kRegistered;
  }
  [[nodiscard]] std::uint32_t ue_ip() const { return ue_ip_; }
  [[nodiscard]] Tmsi tmsi() const { return tmsi_; }
  [[nodiscard]] const crypto::Kasme& kasme() const { return kasme_; }
  [[nodiscard]] const Usim& usim() const { return usim_; }

 private:
  Usim usim_;
  std::string serving_network_id_;
  NasClientState state_{NasClientState::kIdle};
  crypto::Kasme kasme_{};
  std::uint32_t ue_ip_{0};
  Tmsi tmsi_{0};
};

}  // namespace dlte::ue
