// Client-side NAS state machine: what a standard handset's modem runs.
//
// The dLTE compatibility requirement (§4.1) is that this machine — which
// we do not get to modify on real phones — completes successfully against
// the local core stub. It therefore implements the strict EPS-AKA
// dialogue with no dLTE-specific shortcuts.
#pragma once

#include <optional>
#include <string>

#include "lte/nas.h"
#include "ue/usim.h"

namespace dlte::ue {

enum class NasClientState {
  kIdle,
  kAwaitingAuth,
  kAwaitingSecurityMode,
  kAwaitingAccept,
  kRegistered,
  kRejected,
};

class NasClient {
 public:
  // `serving_network_id` comes from the cell broadcast of the network the
  // UE is camping on — it keys the session to this network.
  NasClient(Usim usim, std::string serving_network_id);

  // Begin attach: returns the AttachRequest to send up.
  [[nodiscard]] lte::NasMessage start_attach();

  // Feed a downlink NAS message; returns the uplink reply, if any.
  [[nodiscard]] std::optional<lte::NasMessage> handle(
      const lte::NasMessage& message);

  // Reset to idle (e.g. after moving to a new AP: in dLTE the UE simply
  // re-attaches at the new cell).
  void reset(std::string new_serving_network_id);

  [[nodiscard]] NasClientState state() const { return state_; }
  [[nodiscard]] bool registered() const {
    return state_ == NasClientState::kRegistered;
  }
  [[nodiscard]] std::uint32_t ue_ip() const { return ue_ip_; }
  [[nodiscard]] Tmsi tmsi() const { return tmsi_; }
  [[nodiscard]] const crypto::Kasme& kasme() const { return kasme_; }
  [[nodiscard]] const Usim& usim() const { return usim_; }

 private:
  Usim usim_;
  std::string serving_network_id_;
  NasClientState state_{NasClientState::kIdle};
  crypto::Kasme kasme_{};
  std::uint32_t ue_ip_{0};
  Tmsi tmsi_{0};
};

}  // namespace dlte::ue
