#include "ue/mobility.h"

namespace dlte::ue {

RandomWaypointMobility::RandomWaypointMobility(Position origin, double width_m,
                                               double height_m,
                                               double speed_mps,
                                               sim::RngStream rng)
    : origin_(origin),
      width_(width_m),
      height_(height_m),
      speed_(speed_mps),
      rng_(std::move(rng)) {
  pos_ = Position{origin_.x_m + rng_.uniform(0.0, width_),
                  origin_.y_m + rng_.uniform(0.0, height_)};
  pick_waypoint();
}

void RandomWaypointMobility::pick_waypoint() {
  waypoint_ = Position{origin_.x_m + rng_.uniform(0.0, width_),
                       origin_.y_m + rng_.uniform(0.0, height_)};
}

Position RandomWaypointMobility::advance(Duration dt) {
  double budget = speed_ * dt.to_seconds();
  while (budget > 0.0) {
    const double dist = distance_m(pos_, waypoint_);
    if (dist <= budget) {
      pos_ = waypoint_;
      budget -= dist;
      pick_waypoint();
    } else {
      pos_ = lerp(pos_, waypoint_, budget / dist);
      budget = 0.0;
    }
  }
  return pos_;
}

}  // namespace dlte::ue
