// UE mobility models.
//
// The C5 experiment sweeps a UE down a road through a string of APs at
// increasing speed until its dwell time per AP approaches the RTT to the
// OTT service — the breakdown regime the paper itself predicts for dLTE
// (§4.2). RandomWaypoint provides gentler ambient movement for the
// campus/roaming scenarios.
#pragma once

#include <memory>

#include "common/geo.h"
#include "common/time.h"
#include "sim/random.h"

namespace dlte::ue {

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;
  // Advance the model by dt and return the new position.
  virtual Position advance(Duration dt) = 0;
  [[nodiscard]] virtual Position position() const = 0;
};

class StaticMobility final : public MobilityModel {
 public:
  explicit StaticMobility(Position p) : pos_(p) {}
  Position advance(Duration) override { return pos_; }
  [[nodiscard]] Position position() const override { return pos_; }

 private:
  Position pos_;
};

// Constant-velocity straight-line motion (vehicle on a road).
class LinearMobility final : public MobilityModel {
 public:
  LinearMobility(Position start, double vx_mps, double vy_mps)
      : pos_(start), vx_(vx_mps), vy_(vy_mps) {}

  Position advance(Duration dt) override {
    pos_.x_m += vx_ * dt.to_seconds();
    pos_.y_m += vy_ * dt.to_seconds();
    return pos_;
  }
  [[nodiscard]] Position position() const override { return pos_; }
  [[nodiscard]] double speed_mps() const {
    return std::sqrt(vx_ * vx_ + vy_ * vy_);
  }

 private:
  Position pos_;
  double vx_;
  double vy_;
};

// Random waypoint inside a rectangle: pick a point, walk to it at the
// configured speed, repeat.
class RandomWaypointMobility final : public MobilityModel {
 public:
  RandomWaypointMobility(Position origin, double width_m, double height_m,
                         double speed_mps, sim::RngStream rng);

  Position advance(Duration dt) override;
  [[nodiscard]] Position position() const override { return pos_; }

 private:
  void pick_waypoint();

  Position origin_;
  double width_;
  double height_;
  double speed_;
  sim::RngStream rng_;
  Position pos_;
  Position waypoint_;
};

}  // namespace dlte::ue
