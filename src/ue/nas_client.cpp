#include "ue/nas_client.h"

namespace dlte::ue {

NasClient::NasClient(Usim usim, std::string serving_network_id)
    : usim_(std::move(usim)),
      serving_network_id_(std::move(serving_network_id)) {}

lte::NasMessage NasClient::start_attach() {
  state_ = NasClientState::kAwaitingAuth;
  return lte::AttachRequest{usim_.profile().imsi, Tmsi{0}};
}

std::optional<lte::NasMessage> NasClient::handle(
    const lte::NasMessage& message) {
  switch (state_) {
    case NasClientState::kAwaitingAuth: {
      if (const auto* auth =
              std::get_if<lte::AuthenticationRequest>(&message)) {
        auto aka = usim_.run_aka(auth->rand, auth->autn,
                                 serving_network_id_);
        if (!aka) {
          // Network failed mutual authentication; abort.
          state_ = NasClientState::kRejected;
          return std::nullopt;
        }
        kasme_ = aka->kasme;
        state_ = NasClientState::kAwaitingSecurityMode;
        return lte::NasMessage{lte::AuthenticationResponse{aka->res}};
      }
      if (std::holds_alternative<lte::AttachReject>(message)) {
        state_ = NasClientState::kRejected;
      }
      return std::nullopt;
    }
    case NasClientState::kAwaitingSecurityMode: {
      if (std::holds_alternative<lte::SecurityModeCommand>(message)) {
        state_ = NasClientState::kAwaitingAccept;
        return lte::NasMessage{lte::SecurityModeComplete{}};
      }
      if (const auto* auth =
              std::get_if<lte::AuthenticationRequest>(&message)) {
        // Duplicate challenge: our response was lost — answer again.
        auto aka = usim_.run_aka(auth->rand, auth->autn,
                                 serving_network_id_);
        if (!aka) return std::nullopt;
        kasme_ = aka->kasme;
        return lte::NasMessage{lte::AuthenticationResponse{aka->res}};
      }
      if (std::holds_alternative<lte::AuthenticationReject>(message)) {
        state_ = NasClientState::kRejected;
      }
      return std::nullopt;
    }
    case NasClientState::kAwaitingAccept: {
      if (const auto* accept = std::get_if<lte::AttachAccept>(&message)) {
        tmsi_ = accept->tmsi;
        ue_ip_ = accept->ue_ip;
        state_ = NasClientState::kRegistered;
        return lte::NasMessage{lte::AttachComplete{}};
      }
      if (std::holds_alternative<lte::SecurityModeCommand>(message)) {
        // Duplicate: re-acknowledge.
        return lte::NasMessage{lte::SecurityModeComplete{}};
      }
      return std::nullopt;
    }
    case NasClientState::kRegistered: {
      if (const auto* accept = std::get_if<lte::AttachAccept>(&message)) {
        // Duplicate accept: our AttachComplete was lost.
        tmsi_ = accept->tmsi;
        ue_ip_ = accept->ue_ip;
        return lte::NasMessage{lte::AttachComplete{}};
      }
      return std::nullopt;
    }
    case NasClientState::kIdle:
    case NasClientState::kRejected:
      return std::nullopt;
  }
  return std::nullopt;
}

void NasClient::reset(std::string new_serving_network_id) {
  serving_network_id_ = std::move(new_serving_network_id);
  state_ = NasClientState::kIdle;
  ue_ip_ = 0;
  tmsi_ = Tmsi{0};
}

}  // namespace dlte::ue
