#include "ue/usim.h"

namespace dlte::ue {

Result<AkaResult> Usim::run_aka(const crypto::Rand128& rand,
                                const lte::Autn& autn,
                                const std::string& serving_network_id) const {
  const crypto::Milenage m{profile_.k, profile_.opc};

  // Recover SQN: AK from f5, SQN = (SQN⊕AK) ⊕ AK.
  const auto f25 = m.f2_f5(rand);
  crypto::Sqn48 sqn{};
  for (std::size_t i = 0; i < 6; ++i) {
    sqn[i] = static_cast<std::uint8_t>(autn.sqn_xor_ak[i] ^ f25.ak[i]);
  }

  // Verify the network's MAC-A.
  const auto f1 = m.f1(rand, sqn, autn.amf);
  if (f1.mac_a != autn.mac_a) {
    return fail("AUTN MAC mismatch: network failed authentication");
  }

  AkaResult out;
  out.res = f25.res;
  const auto ck = m.f3(rand);
  const auto ik = m.f4(rand);
  out.kasme =
      crypto::derive_kasme(ck, ik, serving_network_id, autn.sqn_xor_ak);
  return out;
}

void EsimStore::add_profile(SimProfile profile) {
  profiles_.push_back(std::move(profile));
}

const SimProfile* EsimStore::find_open() const {
  for (const auto& p : profiles_) {
    if (p.open_identity) return &p;
  }
  return nullptr;
}

const SimProfile* EsimStore::find_by_imsi(Imsi imsi) const {
  for (const auto& p : profiles_) {
    if (p.imsi == imsi) return &p;
  }
  return nullptr;
}

const SimProfile* EsimStore::find_by_label(const std::string& l) const {
  for (const auto& p : profiles_) {
    if (p.label == l) return &p;
  }
  return nullptr;
}

}  // namespace dlte::ue
