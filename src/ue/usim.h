// USIM / eSIM: subscriber identity and the client side of EPS-AKA.
//
// §4.2: e-SIMs "allow for holding multiple identities on different
// networks simultaneously … end users could simultaneously maintain an
// open dLTE SIM alongside other secured SIMs." EsimStore models exactly
// that: several profiles, one selected per network. The USIM verifies the
// network's AUTN (detecting impostors that lack K) and answers the
// challenge — identical cryptography whether the keys are operator-secret
// or registry-published.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "crypto/key_derivation.h"
#include "crypto/milenage.h"
#include "lte/nas.h"

namespace dlte::ue {

struct SimProfile {
  Imsi imsi;
  crypto::Key128 k{};
  crypto::Block128 opc{};
  // Open (dLTE) profiles have their keys published in the registry; a
  // handset may carry both open and operator-locked profiles.
  bool open_identity{false};
  std::string label;
};

struct AkaResult {
  crypto::Res64 res{};
  crypto::Kasme kasme{};
};

class Usim {
 public:
  explicit Usim(SimProfile profile) : profile_(std::move(profile)) {}

  [[nodiscard]] const SimProfile& profile() const { return profile_; }

  // Verify AUTN and compute the response + session root key. Fails when
  // MAC-A does not match (network is not in possession of K) — mutual
  // authentication, the part dLTE keeps even with open keys.
  [[nodiscard]] Result<AkaResult> run_aka(
      const crypto::Rand128& rand, const lte::Autn& autn,
      const std::string& serving_network_id) const;

 private:
  SimProfile profile_;
};

// A remotely-provisionable multi-profile store.
class EsimStore {
 public:
  void add_profile(SimProfile profile);
  [[nodiscard]] std::size_t profile_count() const { return profiles_.size(); }

  // Select by predicate: the open profile for dLTE networks, the matching
  // operator profile otherwise.
  [[nodiscard]] const SimProfile* find_open() const;
  [[nodiscard]] const SimProfile* find_by_imsi(Imsi imsi) const;
  [[nodiscard]] const SimProfile* find_by_label(const std::string& l) const;

 private:
  std::vector<SimProfile> profiles_;
};

}  // namespace dlte::ue
