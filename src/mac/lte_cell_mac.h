// Subframe-level simulation of one LTE cell's MAC.
//
// Drives the scheduler once per 1 ms subframe, models per-UE transport
// blocks through the HARQ/BLER chain (retransmissions occupy real future
// grants, with Chase combining across attempts), and accounts offered vs
// delivered traffic per UE.
//
// The `prb_share` knob is the hook for dLTE's fair-sharing mode: a peer
// coordination agreement (spectrum/coordination.h) restricts this cell to
// a fraction of the band, which the MAC honours by shrinking the grantable
// PRB pool. Per-UE SINR is supplied by a callback so experiments can
// inject mobility and inter-cell interference.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "mac/lte_scheduler.h"
#include "phy/harq.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace dlte::mac {

// Per-subframe channel oracle for one UE (already includes interference).
using SinrProvider = std::function<Decibels()>;

struct CellMacConfig {
  Hertz bandwidth{Hertz::mhz(10.0)};
  SchedulerPolicy policy{SchedulerPolicy::kProportionalFair};
  phy::HarqConfig harq{};
  double prb_share{1.0};  // Fraction of PRBs this cell may grant.
  std::uint64_t seed{1};
};

struct UeTrafficConfig {
  bool full_buffer{false};
  DataRate offered{DataRate::kbps(0.0)};  // Ignored when full_buffer.
};

struct UeMacStats {
  double offered_bits{0.0};
  double delivered_bits{0.0};
  double dropped_bits{0.0};       // HARQ exhaustion.
  int scheduled_subframes{0};
  int harq_retransmissions{0};
  double backlog_bits{0.0};       // Residual queue at end of run.

  [[nodiscard]] DataRate goodput(Duration elapsed) const {
    return DataRate{delivered_bits / elapsed.to_seconds()};
  }
};

class LteCellMac {
 public:
  explicit LteCellMac(CellMacConfig config);

  void add_ue(UeId id, SinrProvider sinr, UeTrafficConfig traffic);
  void remove_ue(UeId id);
  [[nodiscard]] bool has_ue(UeId id) const { return ues_.contains(id); }

  // Adjust the coordinated spectrum share mid-run (fair-share updates).
  void set_prb_share(double share);
  [[nodiscard]] double prb_share() const { return config_.prb_share; }

  // Advance the cell by `duration` of subframes.
  void run(Duration duration);

  [[nodiscard]] const UeMacStats& stats(UeId id) const;
  [[nodiscard]] std::vector<UeId> ue_ids() const;
  [[nodiscard]] Duration elapsed() const { return elapsed_; }
  [[nodiscard]] int total_prbs() const { return total_prbs_; }

 private:
  struct UeState {
    SinrProvider sinr;
    UeTrafficConfig traffic;
    double backlog_bits{0.0};
    double avg_rate_bps{1.0};
    // In-flight HARQ block (retransmitted on subsequent grants).
    bool has_pending{false};
    double pending_bits{0.0};
    int pending_cqi{0};
    double pending_linear_sinr{0.0};
    int pending_attempts{0};
    UeMacStats stats;
  };

  void run_subframe();

  CellMacConfig config_;
  int total_prbs_;
  std::unique_ptr<Scheduler> scheduler_;
  sim::RngStream rng_;
  std::unordered_map<UeId, UeState> ues_;
  std::vector<UeId> order_;  // Stable iteration order.
  Duration elapsed_{};
};

}  // namespace dlte::mac
