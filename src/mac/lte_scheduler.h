// LTE downlink/uplink PRB schedulers.
//
// The scheduler is the LTE-side contrast to WiFi's contention MAC: capacity
// is granted, not fought over, so under load the cell stays efficient and
// fairness is a policy choice. Three textbook policies are provided; the
// cooperative dLTE mode (spectrum/coordination.h) composes them across
// cells.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/ids.h"

namespace dlte::mac {

// Scheduler's per-UE view for one subframe.
struct SchedUe {
  UeId id;
  int cqi{0};                // Current channel quality (0 = unreachable).
  double backlog_bits{0.0};  // Queued data.
  double avg_rate_bps{1.0};  // EWMA served rate, for PF metric.
};

struct PrbAllocation {
  UeId ue;
  int prbs{0};
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  // Distribute `total_prbs` among `ues` for one subframe. Implementations
  // must not allocate to UEs with cqi == 0 or zero backlog, and must not
  // exceed total_prbs in sum.
  [[nodiscard]] virtual std::vector<PrbAllocation> schedule(
      std::span<const SchedUe> ues, int total_prbs) = 0;

  [[nodiscard]] virtual const char* name() const = 0;
};

// Cycles through backlogged UEs, granting each an equal PRB share per
// subframe (remainder to the earliest in cycle order).
class RoundRobinScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::vector<PrbAllocation> schedule(
      std::span<const SchedUe> ues, int total_prbs) override;
  [[nodiscard]] const char* name() const override { return "round-robin"; }

 private:
  std::size_t next_{0};
};

// Classic proportional fair: rank by achievable-rate / average-rate and
// serve the best UE(s) first. Maximizes sum log-throughput over time.
class ProportionalFairScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::vector<PrbAllocation> schedule(
      std::span<const SchedUe> ues, int total_prbs) override;
  [[nodiscard]] const char* name() const override {
    return "proportional-fair";
  }
};

// Max C/I: throughput-optimal, starves cell-edge UEs. Kept as the
// fairness foil.
class MaxCiScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::vector<PrbAllocation> schedule(
      std::span<const SchedUe> ues, int total_prbs) override;
  [[nodiscard]] const char* name() const override { return "max-ci"; }
};

enum class SchedulerPolicy { kRoundRobin, kProportionalFair, kMaxCi };

[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(
    SchedulerPolicy policy);

}  // namespace dlte::mac
