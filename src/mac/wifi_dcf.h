// Slot-level simulation of the 802.11 DCF (CSMA/CA) MAC.
//
// This is the "legacy WiFi" baseline of Table 1 and the §4.3 comparison:
// independent transmitters contending with binary exponential backoff.
// Carrier sensing and interference are separate relations, so hidden
// terminals — the failure mode the paper's registry-based coordination
// eliminates — are modelled directly: two stations that cannot sense each
// other but whose transmissions collide at a common victim.
//
// The model is abstract on purpose: a "station" here is any transmitter
// with a designated receiver (an AP serving its downlink, or a client's
// uplink), which is the granularity the architecture experiments need.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.h"
#include "common/units.h"
#include "mac/dcf_backoff.h"
#include "sim/random.h"

namespace dlte::mac {

struct DcfStationConfig {
  bool saturated{true};
  double arrival_fps{0.0};   // Poisson frame arrivals when not saturated.
  int frame_bytes{1500};
  int rate_index{4};         // Index into the phy::wifi_rate ladder.
  double channel_fer{0.0};   // SNR-induced loss, independent of collisions.
  int retry_limit{7};
};

struct DcfStationStats {
  std::int64_t attempts{0};
  std::int64_t delivered_frames{0};
  std::int64_t collisions{0};       // Corrupted transmissions.
  std::int64_t channel_losses{0};   // Lost to channel error, not collision.
  std::int64_t dropped_frames{0};   // Retry limit exceeded.
  double delivered_bits{0.0};

  [[nodiscard]] DataRate goodput(Duration elapsed) const {
    return DataRate{delivered_bits / elapsed.to_seconds()};
  }
};

class DcfSimulator {
 public:
  explicit DcfSimulator(std::uint64_t seed);

  // Returns the station index. Stations default to sensing and interfering
  // with every other station (single collision domain).
  int add_station(const DcfStationConfig& config);

  // Carrier-sense relation (symmetric): can a defer to b's transmissions?
  void set_sensing(int a, int b, bool senses);
  // Interference relation (directed): does a transmission by `tx` corrupt
  // a concurrent frame from `victim_tx` at its receiver?
  void set_interference(int tx, int victim_tx, bool interferes);

  void run(Duration duration);

  [[nodiscard]] const DcfStationStats& stats(int station) const;
  [[nodiscard]] Duration elapsed() const { return elapsed_; }
  [[nodiscard]] int station_count() const {
    return static_cast<int>(stations_.size());
  }

  // CCA as this station sees it: is any station it senses transmitting
  // right now? Public so tests can pin the carrier-sense relation the
  // coexistence subsystem leans on.
  [[nodiscard]] bool medium_busy_for(int station) const;
  [[nodiscard]] bool transmitting(int station) const {
    return stations_[static_cast<std::size_t>(station)].transmitting;
  }

 private:
  struct Station {
    DcfStationConfig config;
    // MAC state.
    int queue{0};               // Pending frames (saturated: always ≥1).
    int backoff_slots{0};
    DcfBackoff backoff;
    bool transmitting{false};
    int tx_slots_remaining{0};
    bool frame_corrupted{false};
    double next_arrival_s{0.0};
    DcfStationStats stats;
  };

  void step_slot();
  void begin_transmission(Station& st);
  void finish_transmission(int index);

  std::vector<Station> stations_;
  std::vector<std::vector<bool>> senses_;
  std::vector<std::vector<bool>> interferes_;
  sim::RngStream rng_;
  Duration elapsed_{};
  std::int64_t slot_index_{0};
};

}  // namespace dlte::mac
