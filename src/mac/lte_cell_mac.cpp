#include "mac/lte_cell_mac.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "phy/lte_amc.h"

namespace dlte::mac {

namespace {
constexpr double kEwmaAlpha = 0.02;  // PF average-rate smoothing.
}

LteCellMac::LteCellMac(CellMacConfig config)
    : config_(config),
      total_prbs_(phy::prbs_for_bandwidth(config.bandwidth)),
      scheduler_(make_scheduler(config.policy)),
      rng_(config.seed) {}

void LteCellMac::add_ue(UeId id, SinrProvider sinr, UeTrafficConfig traffic) {
  assert(!ues_.contains(id));
  UeState st;
  st.sinr = std::move(sinr);
  st.traffic = traffic;
  ues_.emplace(id, std::move(st));
  order_.push_back(id);
}

void LteCellMac::remove_ue(UeId id) {
  ues_.erase(id);
  order_.erase(std::remove(order_.begin(), order_.end(), id), order_.end());
}

void LteCellMac::set_prb_share(double share) {
  config_.prb_share = std::clamp(share, 0.0, 1.0);
}

void LteCellMac::run(Duration duration) {
  const auto subframes = static_cast<std::int64_t>(
      duration.ns() / phy::kSubframe.ns());
  for (std::int64_t i = 0; i < subframes; ++i) run_subframe();
  elapsed_ += Duration::nanos(subframes * phy::kSubframe.ns());
}

void LteCellMac::run_subframe() {
  // 1. Traffic arrival.
  for (UeId id : order_) {
    auto& ue = ues_.at(id);
    if (ue.traffic.full_buffer) {
      ue.backlog_bits = 1e12;
    } else {
      const double arriving =
          ue.traffic.offered.bps() * phy::kSubframe.to_seconds();
      ue.backlog_bits += arriving;
      ue.stats.offered_bits += arriving;
    }
  }

  // 2. Channel measurement and scheduling input.
  std::vector<SchedUe> sched_in;
  std::unordered_map<UeId, Decibels> sinr_now;
  for (UeId id : order_) {
    auto& ue = ues_.at(id);
    const Decibels s = ue.sinr();
    sinr_now.emplace(id, s);
    // A UE with a pending HARQ block stays schedulable even if its queue
    // is otherwise empty: the retransmission needs a grant.
    const double effective_backlog =
        ue.has_pending ? std::max(ue.backlog_bits, ue.pending_bits)
                       : ue.backlog_bits;
    sched_in.push_back(SchedUe{
        .id = id,
        .cqi = phy::select_cqi(s),
        .backlog_bits = effective_backlog,
        .avg_rate_bps = ue.avg_rate_bps,
    });
  }

  const int usable_prbs = static_cast<int>(
      std::floor(total_prbs_ * config_.prb_share));
  const auto grants = scheduler_->schedule(sched_in, usable_prbs);

  // 3. Transmission, HARQ accounting, average-rate update.
  std::unordered_map<UeId, double> served_bits;
  for (const auto& grant : grants) {
    auto& ue = ues_.at(grant.ue);
    const Decibels s = sinr_now.at(grant.ue);
    const int cqi = phy::select_cqi(s);
    if (cqi == 0) continue;
    ++ue.stats.scheduled_subframes;

    if (!ue.has_pending) {
      // New transport block, sized to the grant and the backlog.
      const double tbs = phy::transport_block_bits(cqi, grant.prbs);
      ue.pending_bits = std::min(ue.backlog_bits, tbs);
      if (ue.pending_bits <= 0.0) continue;
      ue.pending_cqi = cqi;
      ue.pending_linear_sinr = 0.0;
      ue.pending_attempts = 0;
      ue.has_pending = true;
    } else {
      ++ue.stats.harq_retransmissions;
    }

    ++ue.pending_attempts;
    Decibels decode_sinr = s;
    if (config_.harq.chase_combining) {
      ue.pending_linear_sinr += s.linear();
      decode_sinr = Decibels::from_linear(ue.pending_linear_sinr);
    }
    const double p_fail = phy::bler(ue.pending_cqi, decode_sinr);
    if (!rng_.bernoulli(p_fail)) {
      ue.stats.delivered_bits += ue.pending_bits;
      ue.backlog_bits = std::max(0.0, ue.backlog_bits - ue.pending_bits);
      served_bits[grant.ue] = ue.pending_bits;
      ue.has_pending = false;
    } else if (ue.pending_attempts >= config_.harq.max_transmissions) {
      ue.stats.dropped_bits += ue.pending_bits;
      ue.backlog_bits = std::max(0.0, ue.backlog_bits - ue.pending_bits);
      ue.has_pending = false;
    }
  }

  for (UeId id : order_) {
    auto& ue = ues_.at(id);
    const double inst = served_bits.contains(id)
                            ? served_bits.at(id) / phy::kSubframe.to_seconds()
                            : 0.0;
    ue.avg_rate_bps = (1.0 - kEwmaAlpha) * ue.avg_rate_bps + kEwmaAlpha * inst;
    ue.stats.backlog_bits = ue.backlog_bits;
  }
}

const UeMacStats& LteCellMac::stats(UeId id) const { return ues_.at(id).stats; }

std::vector<UeId> LteCellMac::ue_ids() const { return order_; }

}  // namespace dlte::mac
