#include "mac/wifi_dcf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "phy/wifi_phy.h"

namespace dlte::mac {

namespace {
// DIFS expressed in slots (ceil(34us / 9us) = 4); charged after each busy
// period before backoff countdown resumes.
constexpr int kDifsSlots = 4;

int frame_slots(const DcfStationConfig& c) {
  const Duration airtime =
      phy::wifi_frame_airtime(c.rate_index, c.frame_bytes);
  return static_cast<int>(
      (airtime.ns() + phy::kSlot.ns() - 1) / phy::kSlot.ns());
}
}  // namespace

DcfSimulator::DcfSimulator(std::uint64_t seed) : rng_(seed) {}

int DcfSimulator::add_station(const DcfStationConfig& config) {
  const int index = static_cast<int>(stations_.size());
  Station st;
  st.config = config;
  st.backoff = DcfBackoff{
      BackoffConfig{phy::kCwMin, phy::kCwMax, config.retry_limit}};
  st.backoff_slots = st.backoff.draw(rng_);
  if (config.saturated) {
    st.queue = 1;
  } else if (config.arrival_fps > 0.0) {
    st.next_arrival_s = rng_.exponential(1.0 / config.arrival_fps);
  }
  stations_.push_back(std::move(st));
  // Extend the relation matrices; default full sensing + interference.
  for (auto& row : senses_) row.push_back(true);
  for (auto& row : interferes_) row.push_back(true);
  senses_.emplace_back(stations_.size(), true);
  interferes_.emplace_back(stations_.size(), true);
  return index;
}

void DcfSimulator::set_sensing(int a, int b, bool senses) {
  senses_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = senses;
  senses_[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)] = senses;
}

void DcfSimulator::set_interference(int tx, int victim_tx, bool interferes) {
  interferes_[static_cast<std::size_t>(tx)][static_cast<std::size_t>(
      victim_tx)] = interferes;
}

bool DcfSimulator::medium_busy_for(int station) const {
  for (std::size_t j = 0; j < stations_.size(); ++j) {
    if (static_cast<int>(j) == station) continue;
    if (stations_[j].transmitting &&
        senses_[static_cast<std::size_t>(station)][j]) {
      return true;
    }
  }
  return false;
}

void DcfSimulator::begin_transmission(Station& st) {
  st.transmitting = true;
  st.tx_slots_remaining = frame_slots(st.config);
  st.frame_corrupted = false;
  ++st.stats.attempts;
}

void DcfSimulator::finish_transmission(int index) {
  Station& st = stations_[static_cast<std::size_t>(index)];
  st.transmitting = false;
  bool failed = st.frame_corrupted;
  if (failed) {
    ++st.stats.collisions;
  } else if (st.config.channel_fer > 0.0 &&
             rng_.bernoulli(st.config.channel_fer)) {
    ++st.stats.channel_losses;
    failed = true;
  }
  if (!failed) {
    ++st.stats.delivered_frames;
    st.stats.delivered_bits += st.config.frame_bytes * 8.0;
    st.backoff.note_success();
    if (!st.config.saturated) st.queue = std::max(0, st.queue - 1);
  } else if (st.backoff.note_failure()) {
    ++st.stats.dropped_frames;
    if (!st.config.saturated) st.queue = std::max(0, st.queue - 1);
  }
  st.backoff_slots = st.backoff.draw(rng_);
}

void DcfSimulator::step_slot() {
  const double now_s =
      static_cast<double>(slot_index_) * phy::kSlot.to_seconds();

  // Unsaturated arrivals.
  for (auto& st : stations_) {
    if (!st.config.saturated && st.config.arrival_fps > 0.0) {
      while (st.next_arrival_s <= now_s) {
        ++st.queue;
        st.next_arrival_s += rng_.exponential(1.0 / st.config.arrival_fps);
      }
    }
  }

  // Phase 1: countdown / transmit decisions based on the *current* medium
  // state, so stations starting in the same slot collide (as in DCF).
  std::vector<int> starting;
  for (std::size_t i = 0; i < stations_.size(); ++i) {
    Station& st = stations_[i];
    if (st.transmitting) continue;
    const bool has_frame = st.config.saturated || st.queue > 0;
    if (!has_frame) continue;
    if (medium_busy_for(static_cast<int>(i))) continue;
    if (st.backoff_slots > 0) {
      --st.backoff_slots;
    }
    if (st.backoff_slots == 0) {
      starting.push_back(static_cast<int>(i));
    }
  }
  for (int i : starting) {
    begin_transmission(stations_[static_cast<std::size_t>(i)]);
  }

  // Phase 2: interference marking — any concurrent transmission pair with
  // an interference edge corrupts the victim's frame.
  for (std::size_t a = 0; a < stations_.size(); ++a) {
    if (!stations_[a].transmitting) continue;
    for (std::size_t v = 0; v < stations_.size(); ++v) {
      if (a == v || !stations_[v].transmitting) continue;
      if (interferes_[a][v]) stations_[v].frame_corrupted = true;
    }
  }

  // Phase 3: advance transmissions.
  for (std::size_t i = 0; i < stations_.size(); ++i) {
    Station& st = stations_[i];
    if (!st.transmitting) continue;
    if (--st.tx_slots_remaining <= 0) {
      finish_transmission(static_cast<int>(i));
      // Post-frame DIFS charged as extra backoff slots.
      st.backoff_slots += kDifsSlots;
    }
  }

  ++slot_index_;
}

void DcfSimulator::run(Duration duration) {
  const auto slots =
      static_cast<std::int64_t>(duration.ns() / phy::kSlot.ns());
  for (std::int64_t i = 0; i < slots; ++i) step_slot();
  elapsed_ += Duration::nanos(slots * phy::kSlot.ns());
}

const DcfStationStats& DcfSimulator::stats(int station) const {
  return stations_[static_cast<std::size_t>(station)].stats;
}

}  // namespace dlte::mac
