#include "mac/lte_scheduler.h"

#include <algorithm>
#include <cmath>

#include "phy/lte_amc.h"

namespace dlte::mac {

namespace {

// UEs eligible for a grant this subframe.
std::vector<SchedUe> eligible(std::span<const SchedUe> ues) {
  std::vector<SchedUe> out;
  for (const auto& u : ues) {
    if (u.cqi > 0 && u.backlog_bits > 0.0) out.push_back(u);
  }
  return out;
}

// PRBs needed to drain a UE's backlog at its CQI, saturated well above any
// real grid size so huge full-buffer backlogs cannot overflow the cast.
int prbs_needed(const SchedUe& u) {
  const int per_prb = phy::transport_block_bits(u.cqi, 1);
  if (per_prb <= 0) return 0;
  const double want =
      std::ceil(u.backlog_bits / static_cast<double>(per_prb));
  return static_cast<int>(std::min(want, 1e6));
}

// Greedy fill in priority order: each UE takes what it needs, capped by
// what remains.
std::vector<PrbAllocation> greedy_fill(const std::vector<SchedUe>& ordered,
                                       int total_prbs) {
  std::vector<PrbAllocation> out;
  int remaining = total_prbs;
  for (const auto& u : ordered) {
    if (remaining <= 0) break;
    const int want = prbs_needed(u);
    const int got = std::min(want, remaining);
    if (got > 0) {
      out.push_back(PrbAllocation{u.id, got});
      remaining -= got;
    }
  }
  return out;
}

}  // namespace

std::vector<PrbAllocation> RoundRobinScheduler::schedule(
    std::span<const SchedUe> ues, int total_prbs) {
  auto el = eligible(ues);
  if (el.empty() || total_prbs <= 0) return {};
  // Rotate the eligible list so service starts after the last-served UE.
  std::rotate(el.begin(),
              el.begin() + static_cast<std::ptrdiff_t>(next_ % el.size()),
              el.end());
  ++next_;
  // Equal split among eligible UEs, capped by need; leftover PRBs go to
  // the head of the rotated order.
  const int base = total_prbs / static_cast<int>(el.size());
  std::vector<PrbAllocation> out;
  int remaining = total_prbs;
  for (const auto& u : el) {
    const int got = std::min({prbs_needed(u), std::max(base, 1), remaining});
    if (got > 0) {
      out.push_back(PrbAllocation{u.id, got});
      remaining -= got;
    }
  }
  // Second pass: hand unused PRBs to still-hungry UEs in order.
  for (auto& alloc : out) {
    if (remaining <= 0) break;
    const auto it = std::find_if(el.begin(), el.end(), [&](const SchedUe& u) {
      return u.id == alloc.ue;
    });
    const int want = prbs_needed(*it) - alloc.prbs;
    const int extra = std::min(want, remaining);
    if (extra > 0) {
      alloc.prbs += extra;
      remaining -= extra;
    }
  }
  return out;
}

std::vector<PrbAllocation> ProportionalFairScheduler::schedule(
    std::span<const SchedUe> ues, int total_prbs) {
  auto el = eligible(ues);
  if (el.empty() || total_prbs <= 0) return {};
  std::sort(el.begin(), el.end(), [](const SchedUe& a, const SchedUe& b) {
    const double rate_a = phy::transport_block_bits(a.cqi, 1) * 1000.0;
    const double rate_b = phy::transport_block_bits(b.cqi, 1) * 1000.0;
    return rate_a / std::max(a.avg_rate_bps, 1.0) >
           rate_b / std::max(b.avg_rate_bps, 1.0);
  });
  return greedy_fill(el, total_prbs);
}

std::vector<PrbAllocation> MaxCiScheduler::schedule(
    std::span<const SchedUe> ues, int total_prbs) {
  auto el = eligible(ues);
  if (el.empty() || total_prbs <= 0) return {};
  std::sort(el.begin(), el.end(), [](const SchedUe& a, const SchedUe& b) {
    return a.cqi > b.cqi;
  });
  return greedy_fill(el, total_prbs);
}

std::unique_ptr<Scheduler> make_scheduler(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kRoundRobin:
      return std::make_unique<RoundRobinScheduler>();
    case SchedulerPolicy::kProportionalFair:
      return std::make_unique<ProportionalFairScheduler>();
    case SchedulerPolicy::kMaxCi:
      return std::make_unique<MaxCiScheduler>();
  }
  return nullptr;
}

}  // namespace dlte::mac
