// The DCF contention discipline, factored out of the 802.11 slot loop.
//
// Binary exponential backoff with a retry limit is the arbitration rule
// both of our listen-before-talk waveforms share: the 802.11 DCF
// (wifi_dcf.h) and the LAA-style LBT access policy a dLTE AP runs on an
// unlicensed channel (coex/shared_channel.h). Keeping the window/retry
// state machine in one class guarantees the two contend by identical
// rules, and taking the RngStream by reference keeps every draw on the
// caller's deterministic stream — coexistence runs derive one stream per
// transmitter via RngStream::derive(seed, component, index), so adding a
// station never perturbs another station's draws.
#pragma once

#include "sim/random.h"

namespace dlte::mac {

struct BackoffConfig {
  int cw_min{15};      // phy::kCwMin for 802.11; LAA uses the same ladder.
  int cw_max{1023};
  int retry_limit{7};  // Failures beyond this drop the frame.
};

class DcfBackoff {
 public:
  DcfBackoff() = default;
  explicit DcfBackoff(BackoffConfig config)
      : config_(config), contention_window_(config.cw_min) {}

  // Uniform draw in [0, cw] on the caller's stream.
  [[nodiscard]] int draw(sim::RngStream& rng) const {
    return static_cast<int>(rng.uniform_int(
        0, static_cast<std::uint64_t>(contention_window_)));
  }

  // Successful exchange: window and retry count reset.
  void note_success() {
    contention_window_ = config_.cw_min;
    retries_ = 0;
  }

  // Failed exchange (collision or channel loss). Returns true when the
  // retry limit is exceeded — the frame must be dropped, and the window
  // resets for the next one; otherwise the window doubles.
  [[nodiscard]] bool note_failure() {
    ++retries_;
    if (retries_ > config_.retry_limit) {
      note_success();  // Same reset, applied to the successor frame.
      return true;
    }
    contention_window_ =
        contention_window_ * 2 + 1 <= config_.cw_max
            ? contention_window_ * 2 + 1
            : config_.cw_max;
    return false;
  }

  [[nodiscard]] int contention_window() const { return contention_window_; }
  [[nodiscard]] int retries() const { return retries_; }

 private:
  BackoffConfig config_{};
  int contention_window_{15};
  int retries_{0};
};

}  // namespace dlte::mac
