// SHA-256 and HMAC-SHA-256 (FIPS-180-4 / RFC 2104).
//
// Used by the key-derivation function (3GPP TS 33.401 Annex A style) that
// turns CK/IK from Milenage into the session key hierarchy, and by the
// blockchain-like registry's block hashing.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace dlte::crypto {

using Digest256 = std::array<std::uint8_t, 32>;

[[nodiscard]] Digest256 sha256(std::span<const std::uint8_t> data);

[[nodiscard]] Digest256 hmac_sha256(std::span<const std::uint8_t> key,
                                    std::span<const std::uint8_t> message);

}  // namespace dlte::crypto
