#include "crypto/key_derivation.h"

#include <vector>

namespace dlte::crypto {

namespace {
void append_param(std::vector<std::uint8_t>& s,
                  std::span<const std::uint8_t> p) {
  s.insert(s.end(), p.begin(), p.end());
  s.push_back(static_cast<std::uint8_t>(p.size() >> 8));
  s.push_back(static_cast<std::uint8_t>(p.size()));
}
}  // namespace

Kasme derive_kasme(const Ck128& ck, const Ik128& ik,
                   std::string_view serving_network_id,
                   const Sqn48& sqn_xor_ak) {
  std::vector<std::uint8_t> key;
  key.insert(key.end(), ck.begin(), ck.end());
  key.insert(key.end(), ik.begin(), ik.end());

  std::vector<std::uint8_t> s;
  s.push_back(0x10);  // FC for KASME derivation.
  append_param(s, std::span{reinterpret_cast<const std::uint8_t*>(
                                serving_network_id.data()),
                            serving_network_id.size()});
  append_param(s, std::span{sqn_xor_ak.data(), sqn_xor_ak.size()});
  return hmac_sha256(key, s);
}

Digest256 derive_kenb(const Kasme& kasme, std::uint32_t nas_uplink_count) {
  std::vector<std::uint8_t> s;
  s.push_back(0x11);  // FC for K_eNB derivation.
  const std::uint8_t count[4] = {
      static_cast<std::uint8_t>(nas_uplink_count >> 24),
      static_cast<std::uint8_t>(nas_uplink_count >> 16),
      static_cast<std::uint8_t>(nas_uplink_count >> 8),
      static_cast<std::uint8_t>(nas_uplink_count)};
  append_param(s, std::span{count, 4});
  return hmac_sha256(kasme, s);
}

Digest256 derive_nas_key(const Kasme& kasme, std::uint8_t algorithm_type,
                         std::uint8_t algorithm_id) {
  std::vector<std::uint8_t> s;
  s.push_back(0x15);  // FC for algorithm key derivation.
  append_param(s, std::span{&algorithm_type, 1});
  append_param(s, std::span{&algorithm_id, 1});
  return hmac_sha256(kasme, s);
}

}  // namespace dlte::crypto
