#include "crypto/milenage.h"

#include <cstring>

namespace dlte::crypto {

namespace {
// Left-rotate a 128-bit block by a multiple of 8 bits (the standard's
// r-constants are all byte-aligned: r1=64, r2=0, r3=32, r4=64, r5=96).
Block128 rotate_left(const Block128& in, int bits) {
  const int bytes = bits / 8;
  Block128 out;
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>(i)] =
        in[static_cast<std::size_t>((i + bytes) % 16)];
  }
  return out;
}
}  // namespace

Block128 derive_opc(const Key128& k, const Block128& op) {
  return xor_blocks(Aes128{k}.encrypt(op), op);
}

Milenage::Milenage(const Key128& k, const Block128& opc)
    : cipher_(k), opc_(opc) {}

Milenage::F1Output Milenage::f1(const Rand128& rand, const Sqn48& sqn,
                                const Amf16& amf) const {
  const Block128 temp = cipher_.encrypt(xor_blocks(rand, opc_));

  // IN1 = SQN || AMF || SQN || AMF.
  Block128 in1;
  std::memcpy(in1.data(), sqn.data(), 6);
  std::memcpy(in1.data() + 6, amf.data(), 2);
  std::memcpy(in1.data() + 8, sqn.data(), 6);
  std::memcpy(in1.data() + 14, amf.data(), 2);

  // OUT1 = E_K(TEMP xor rot(IN1 xor OPc, r1) xor c1) xor OPc, with r1 = 64
  // bits and c1 = 0.
  Block128 t = rotate_left(xor_blocks(in1, opc_), 64);
  t = xor_blocks(t, temp);
  const Block128 out1 = xor_blocks(cipher_.encrypt(t), opc_);

  F1Output out;
  std::memcpy(out.mac_a.data(), out1.data(), 8);
  std::memcpy(out.mac_s.data(), out1.data() + 8, 8);
  return out;
}

Block128 Milenage::out_block(const Rand128& rand, int rotate_bits,
                             std::uint8_t c_last_byte) const {
  const Block128 temp = cipher_.encrypt(xor_blocks(rand, opc_));
  Block128 t = rotate_left(xor_blocks(temp, opc_), rotate_bits);
  t[15] = static_cast<std::uint8_t>(t[15] ^ c_last_byte);
  return xor_blocks(cipher_.encrypt(t), opc_);
}

Milenage::F2F5Output Milenage::f2_f5(const Rand128& rand) const {
  // r2 = 0, c2 = ...0001.
  const Block128 out2 = out_block(rand, 0, 0x01);
  F2F5Output out;
  std::memcpy(out.res.data(), out2.data() + 8, 8);
  std::memcpy(out.ak.data(), out2.data(), 6);
  return out;
}

Ck128 Milenage::f3(const Rand128& rand) const {
  // r3 = 32, c3 = ...0010.
  return out_block(rand, 32, 0x02);
}

Ik128 Milenage::f4(const Rand128& rand) const {
  // r4 = 64, c4 = ...0100.
  return out_block(rand, 64, 0x04);
}

Ak48 Milenage::f5_star(const Rand128& rand) const {
  // r5 = 96, c5 = ...1000.
  const Block128 out5 = out_block(rand, 96, 0x08);
  Ak48 ak;
  std::memcpy(ak.data(), out5.data(), 6);
  return ak;
}

}  // namespace dlte::crypto
