// AES-128 block cipher (FIPS-197), encryption direction only.
//
// Milenage (the 3GPP authentication-and-key-agreement kernel) is defined
// purely in terms of AES-128 encryption, so decryption is intentionally
// not implemented. This is a straightforward table-based implementation;
// side-channel hardening is out of scope for a simulator.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace dlte::crypto {

using Block128 = std::array<std::uint8_t, 16>;
using Key128 = std::array<std::uint8_t, 16>;

class Aes128 {
 public:
  explicit Aes128(const Key128& key);

  // Encrypt one 16-byte block (ECB, single block).
  [[nodiscard]] Block128 encrypt(const Block128& plaintext) const;

 private:
  // 11 round keys of 16 bytes each.
  std::array<std::uint8_t, 176> round_keys_{};
};

// XOR of two 128-bit blocks; used pervasively by Milenage.
[[nodiscard]] Block128 xor_blocks(const Block128& a, const Block128& b);

}  // namespace dlte::crypto
