// Milenage authentication-and-key-agreement kernel (3GPP TS 35.205/35.206).
//
// The HSS uses f1–f5 to build authentication vectors; the USIM uses the
// same functions to verify the network and answer the challenge. dLTE's
// "open key" mode (paper §4.2) publishes K/OPc in the registry so any AP's
// local core can run this same procedure — the cryptography is unchanged,
// only the key distribution differs.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/aes128.h"

namespace dlte::crypto {

using Rand128 = Block128;
using Sqn48 = std::array<std::uint8_t, 6>;
using Amf16 = std::array<std::uint8_t, 2>;
using Mac64 = std::array<std::uint8_t, 8>;
using Res64 = std::array<std::uint8_t, 8>;
using Ak48 = std::array<std::uint8_t, 6>;
using Ck128 = Block128;
using Ik128 = Block128;

// Derive OPc from the operator variant constant OP and subscriber key K:
//   OPc = OP xor E_K(OP).
[[nodiscard]] Block128 derive_opc(const Key128& k, const Block128& op);

class Milenage {
 public:
  // K is the subscriber secret key; opc the precomputed operator constant.
  Milenage(const Key128& k, const Block128& opc);

  struct F1Output {
    Mac64 mac_a;  // Network authentication code (f1).
    Mac64 mac_s;  // Resynchronisation code (f1*).
  };
  [[nodiscard]] F1Output f1(const Rand128& rand, const Sqn48& sqn,
                            const Amf16& amf) const;

  struct F2F5Output {
    Res64 res;  // Expected user response (f2).
    Ak48 ak;    // Anonymity key (f5).
  };
  [[nodiscard]] F2F5Output f2_f5(const Rand128& rand) const;

  [[nodiscard]] Ck128 f3(const Rand128& rand) const;  // Cipher key.
  [[nodiscard]] Ik128 f4(const Rand128& rand) const;  // Integrity key.
  [[nodiscard]] Ak48 f5_star(const Rand128& rand) const;  // Resync AK.

 private:
  [[nodiscard]] Block128 out_block(const Rand128& rand, int rotate_bits,
                                   std::uint8_t c_last_byte) const;

  Aes128 cipher_;
  Block128 opc_;
};

}  // namespace dlte::crypto
