// EPS key hierarchy derivation (3GPP TS 33.401 Annex A style).
//
// KASME is derived from CK/IK and the serving network identity with the
// standard FC-prefixed HMAC-SHA-256 KDF; eNodeB and NAS keys descend from
// it. In dLTE each AP's local core is its own "serving network", so the
// serving-network binding is what scopes a session key to one AP.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "crypto/milenage.h"
#include "crypto/sha256.h"

namespace dlte::crypto {

using Kasme = Digest256;  // 256-bit root session key.

// KDF input framing per TS 33.401: FC byte, then (parameter, 2-byte length)
// pairs, keyed by CK || IK.
[[nodiscard]] Kasme derive_kasme(const Ck128& ck, const Ik128& ik,
                                 std::string_view serving_network_id,
                                 const Sqn48& sqn_xor_ak);

// K_eNB derived from KASME and the NAS uplink count.
[[nodiscard]] Digest256 derive_kenb(const Kasme& kasme,
                                    std::uint32_t nas_uplink_count);

// NAS integrity/cipher keys (truncated to 128 bits by callers as needed).
[[nodiscard]] Digest256 derive_nas_key(const Kasme& kasme,
                                       std::uint8_t algorithm_type,
                                       std::uint8_t algorithm_id);

}  // namespace dlte::crypto
