#include "crypto/sha256.h"

#include <cstring>

namespace dlte::crypto {

namespace {

constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

std::uint32_t rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

struct Sha256State {
  std::uint32_t h[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                        0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

  void process_block(const std::uint8_t* p) {
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<std::uint32_t>(p[i * 4]) << 24) |
             (static_cast<std::uint32_t>(p[i * 4 + 1]) << 16) |
             (static_cast<std::uint32_t>(p[i * 4 + 2]) << 8) |
             static_cast<std::uint32_t>(p[i * 4 + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      const std::uint32_t s0 =
          rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const std::uint32_t s1 =
          rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    std::uint32_t a = h[0], b = h[1], c = h[2], d = h[3];
    std::uint32_t e = h[4], f = h[5], g = h[6], hh = h[7];
    for (int i = 0; i < 64; ++i) {
      const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
      const std::uint32_t ch = (e & f) ^ (~e & g);
      const std::uint32_t t1 = hh + s1 + ch + kK[i] + w[i];
      const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
      const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const std::uint32_t t2 = s0 + maj;
      hh = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
    h[5] += f;
    h[6] += g;
    h[7] += hh;
  }
};

}  // namespace

Digest256 sha256(std::span<const std::uint8_t> data) {
  Sha256State st;
  std::size_t i = 0;
  for (; i + 64 <= data.size(); i += 64) {
    st.process_block(data.data() + i);
  }
  // Final padded block(s).
  std::uint8_t tail[128] = {};
  const std::size_t rem = data.size() - i;
  std::memcpy(tail, data.data() + i, rem);
  tail[rem] = 0x80;
  const std::size_t tail_len = rem + 9 <= 64 ? 64 : 128;
  const std::uint64_t bit_len = static_cast<std::uint64_t>(data.size()) * 8;
  for (int b = 0; b < 8; ++b) {
    tail[tail_len - 1 - static_cast<std::size_t>(b)] =
        static_cast<std::uint8_t>(bit_len >> (8 * b));
  }
  st.process_block(tail);
  if (tail_len == 128) st.process_block(tail + 64);

  Digest256 out;
  for (int w = 0; w < 8; ++w) {
    out[static_cast<std::size_t>(w * 4 + 0)] =
        static_cast<std::uint8_t>(st.h[w] >> 24);
    out[static_cast<std::size_t>(w * 4 + 1)] =
        static_cast<std::uint8_t>(st.h[w] >> 16);
    out[static_cast<std::size_t>(w * 4 + 2)] =
        static_cast<std::uint8_t>(st.h[w] >> 8);
    out[static_cast<std::size_t>(w * 4 + 3)] =
        static_cast<std::uint8_t>(st.h[w]);
  }
  return out;
}

Digest256 hmac_sha256(std::span<const std::uint8_t> key,
                      std::span<const std::uint8_t> message) {
  std::array<std::uint8_t, 64> k_block{};
  if (key.size() > 64) {
    const Digest256 kh = sha256(key);
    std::memcpy(k_block.data(), kh.data(), kh.size());
  } else {
    std::memcpy(k_block.data(), key.data(), key.size());
  }
  std::vector<std::uint8_t> inner;
  inner.reserve(64 + message.size());
  for (std::uint8_t b : k_block) inner.push_back(b ^ 0x36);
  inner.insert(inner.end(), message.begin(), message.end());
  const Digest256 inner_hash = sha256(inner);

  std::vector<std::uint8_t> outer;
  outer.reserve(64 + 32);
  for (std::uint8_t b : k_block) outer.push_back(b ^ 0x5c);
  outer.insert(outer.end(), inner_hash.begin(), inner_hash.end());
  return sha256(outer);
}

}  // namespace dlte::crypto
