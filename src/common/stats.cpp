#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace dlte {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Quantiles::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (q <= 0.0) return samples_.front();
  if (q >= 1.0) return samples_.back();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

double Quantiles::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double jain_fairness(std::span<const double> allocations) {
  if (allocations.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : allocations) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(allocations.size()) * sum_sq);
}

}  // namespace dlte
