#include "common/bytes.h"

#include <bit>
#include <cstring>

namespace dlte {

void ByteWriter::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ByteWriter::str(const std::string& s) {
  u16(static_cast<std::uint16_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

Result<std::uint8_t> ByteReader::u8() {
  if (remaining() < 1) return fail("short buffer reading u8");
  return data_[pos_++];
}

Result<std::uint16_t> ByteReader::u16() {
  if (remaining() < 2) return fail("short buffer reading u16");
  std::uint16_t v = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

Result<std::uint32_t> ByteReader::u24() {
  if (remaining() < 3) return fail("short buffer reading u24");
  std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 16) |
                    (static_cast<std::uint32_t>(data_[pos_ + 1]) << 8) |
                    data_[pos_ + 2];
  pos_ += 3;
  return v;
}

Result<std::uint32_t> ByteReader::u32() {
  if (remaining() < 4) return fail("short buffer reading u32");
  std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                    (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                    (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                    data_[pos_ + 3];
  pos_ += 4;
  return v;
}

Result<std::uint64_t> ByteReader::u64() {
  auto hi = u32();
  if (!hi) return Err{hi.error()};
  auto lo = u32();
  if (!lo) return Err{lo.error()};
  return (static_cast<std::uint64_t>(*hi) << 32) | *lo;
}

Result<double> ByteReader::f64() {
  auto bits = u64();
  if (!bits) return Err{bits.error()};
  double v;
  std::memcpy(&v, &*bits, sizeof(v));
  return v;
}

Result<std::vector<std::uint8_t>> ByteReader::bytes(std::size_t n) {
  if (remaining() < n) return fail("short buffer reading bytes");
  std::vector<std::uint8_t> out(data_.begin() + pos_, data_.begin() + pos_ + n);
  pos_ += n;
  return out;
}

Result<std::string> ByteReader::str() {
  auto len = u16();
  if (!len) return Err{len.error()};
  if (remaining() < *len) return fail("short buffer reading string");
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), *len);
  pos_ += *len;
  return out;
}

}  // namespace dlte
