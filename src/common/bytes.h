// Big-endian byte buffer codec used by all protocol encoders/decoders
// (NAS, S1AP, X2AP, GTP, registry wire format).
//
// ByteWriter appends network-order fields to an owned vector; ByteReader
// consumes a span and reports truncation through Result rather than by
// throwing, since short or garbled buffers arrive from peers.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"

namespace dlte {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u24(std::uint32_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 16));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  // IEEE-754 doubles are carried for simulator-level fields (e.g. dLTE
  // X2 extension load reports); bit pattern is serialized big-endian.
  void f64(double v);
  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }
  // Length-prefixed (u16) UTF-8 string.
  void str(const std::string& s);

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] Result<std::uint8_t> u8();
  [[nodiscard]] Result<std::uint16_t> u16();
  [[nodiscard]] Result<std::uint32_t> u24();
  [[nodiscard]] Result<std::uint32_t> u32();
  [[nodiscard]] Result<std::uint64_t> u64();
  [[nodiscard]] Result<double> f64();
  [[nodiscard]] Result<std::vector<std::uint8_t>> bytes(std::size_t n);
  [[nodiscard]] Result<std::string> str();

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool exhausted() const { return remaining() == 0; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_{0};
};

}  // namespace dlte
