// A minimal expected/Result type for recoverable failures.
//
// Protocol decode paths, registry lookups, and state-machine guards return
// Result<T, E> instead of throwing: malformed input from a peer is an
// expected event in a network, not a programming error. (C++20 predates
// std::expected; this is the small subset dLTE needs.)
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace dlte {

// Error marker: disambiguates value from error even when T and E are the
// same type (e.g. Result<std::string, std::string>).
template <typename E>
struct Err {
  E value;
  explicit Err(E v) : value(std::move(v)) {}
};
inline Err<std::string> fail(std::string message) {
  return Err<std::string>{std::move(message)};
}

template <typename T, typename E = std::string>
class [[nodiscard]] Result {
 public:
  // Implicit from a value or a wrapped error keeps call sites terse:
  //   return AttachAccept{...};
  //   return fail("short buffer");
  Result(T value) : storage_(std::in_place_index<0>, std::move(value)) {}
  Result(Err<E> error)
      : storage_(std::in_place_index<1>, std::move(error.value)) {}

  [[nodiscard]] bool ok() const { return storage_.index() == 0; }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<0>(storage_);
  }
  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<0>(storage_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<0>(std::move(storage_));
  }

  [[nodiscard]] const E& error() const& {
    assert(!ok());
    return std::get<1>(storage_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<0>(storage_) : std::move(fallback);
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

 private:
  std::variant<T, E> storage_;
};

// Result for operations with no payload.
template <typename E = std::string>
class [[nodiscard]] Status {
 public:
  Status() = default;  // Success.
  Status(Err<E> error) : error_(std::move(error.value)), failed_(true) {}

  [[nodiscard]] bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }
  [[nodiscard]] const E& error() const {
    assert(failed_);
    return error_;
  }

 private:
  E error_{};
  bool failed_{false};
};

}  // namespace dlte
