// Chunked object pool: arena allocation for per-event records.
//
// A metro-scale run schedules millions of short-lived records — one per
// packet hop, one per cross-shard message delivery. Allocating each on
// the general heap costs a malloc/free round trip per event and, worse,
// pushes the capturing lambda past std::function's small-buffer limit so
// the event queue pays a second allocation. The pool fixes both: records
// live in stable chunked arenas and recycle through a free list, and an
// event only needs to capture the record pointer (8 bytes — comfortably
// inside the small-buffer optimization).
//
// Not thread-safe. The single-owner pattern the runtime uses — a pool
// touched by one shard's worker during a window and by the coordinator
// only at barriers — is safe because those phases never overlap.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace dlte {

template <typename T>
class ObjectPool {
 public:
  // `chunk` objects are default-constructed per arena growth step.
  explicit ObjectPool(std::size_t chunk = 64)
      : chunk_(chunk == 0 ? 1 : chunk) {}

  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;

  // A pointer with stable address, valid until release() or pool
  // destruction. Recycled objects keep whatever state they were released
  // with — the caller overwrites the fields it uses.
  [[nodiscard]] T* acquire() {
    if (free_.empty()) grow();
    T* object = free_.back();
    free_.pop_back();
    return object;
  }

  // Return an object obtained from acquire(). No destructor runs; the
  // object waits, as-is, for the next acquire().
  void release(T* object) { free_.push_back(object); }

  // Recycle every object at once, keeping the arenas: after reset() the
  // whole allocation is available again without a single free/malloc.
  // Only legal when the caller abandons all outstanding pointers (they
  // become free slots, not dangling memory — the arenas live on).
  void reset() {
    free_.clear();
    free_.reserve(allocated());
    // Same order grow() produces: first acquire() after a reset gets the
    // first chunk's first slot.
    for (std::size_t c = chunks_.size(); c > 0; --c) {
      T* base = chunks_[c - 1].get();
      for (std::size_t i = chunk_; i > 0; --i) {
        free_.push_back(base + (i - 1));
      }
    }
  }

  [[nodiscard]] std::size_t allocated() const {
    return chunks_.size() * chunk_;
  }
  [[nodiscard]] std::size_t available() const { return free_.size(); }
  [[nodiscard]] std::size_t in_use() const {
    return allocated() - available();
  }

 private:
  void grow() {
    chunks_.push_back(std::make_unique<T[]>(chunk_));
    T* base = chunks_.back().get();
    free_.reserve(free_.size() + chunk_);
    // Reverse order so the first acquire() gets the chunk's first slot.
    for (std::size_t i = chunk_; i > 0; --i) {
      free_.push_back(base + (i - 1));
    }
  }

  std::size_t chunk_;
  std::vector<std::unique_ptr<T[]>> chunks_;
  std::vector<T*> free_;
};

}  // namespace dlte
