// Statistics accumulators used by the metrics plumbing and benches.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dlte {

// Streaming mean/variance/min/max (Welford). O(1) memory.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
  double sum_{0.0};
};

// Stores samples for exact quantiles. Used where sample counts are modest
// (latency distributions over a simulation run).
class Quantiles {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  // Pool another distribution's samples (e.g. per-waveform rollups over
  // several transmitters in the C11 coexistence summary).
  void merge(const Quantiles& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
  }
  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  // q in [0,1]; linear interpolation between order statistics.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double p95() const { return quantile(0.95); }
  [[nodiscard]] double p99() const { return quantile(0.99); }
  [[nodiscard]] double mean() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_{false};
};

// Jain's fairness index over per-flow allocations:
//   J = (sum x)^2 / (n * sum x^2),  1/n <= J <= 1.
// J = 1 means perfectly equal allocations. Used by the spectrum-sharing
// experiments (paper §4.3: "similar fairness characteristics to what WiFi
// achieves today").
[[nodiscard]] double jain_fairness(std::span<const double> allocations);

}  // namespace dlte
