// Planar geometry for site placement and mobility.
//
// dLTE deployments are modelled on a local tangent plane in meters; at the
// scales involved (a rural town to a few tens of km) earth curvature is
// irrelevant to propagation modelling.
#pragma once

#include <cmath>

namespace dlte {

struct Position {
  double x_m{0.0};
  double y_m{0.0};

  friend constexpr bool operator==(Position, Position) = default;
};

[[nodiscard]] inline double distance_m(Position a, Position b) {
  const double dx = a.x_m - b.x_m;
  const double dy = a.y_m - b.y_m;
  return std::sqrt(dx * dx + dy * dy);
}

// Linear interpolation between two positions, t in [0,1].
[[nodiscard]] inline Position lerp(Position a, Position b, double t) {
  return Position{a.x_m + (b.x_m - a.x_m) * t, a.y_m + (b.y_m - a.y_m) * t};
}

}  // namespace dlte
