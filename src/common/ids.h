// Strong identifier types used across the dLTE stack.
//
// Every protocol-visible identifier gets its own distinct C++ type so that
// an IMSI can never be passed where a TEID is expected. The wrapper is a
// trivially copyable value type with ordering and hashing, suitable as a
// map key.
#pragma once

#include <cstdint>
#include <functional>

namespace dlte {

// Generic strong typedef over an integral representation. `Tag` is a unique
// empty struct per identifier family.
template <typename Tag, typename Rep = std::uint64_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }

  friend constexpr bool operator==(StrongId a, StrongId b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(StrongId a, StrongId b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(StrongId a, StrongId b) {
    return a.value_ < b.value_;
  }
  friend constexpr bool operator>(StrongId a, StrongId b) {
    return a.value_ > b.value_;
  }
  friend constexpr bool operator<=(StrongId a, StrongId b) {
    return a.value_ <= b.value_;
  }
  friend constexpr bool operator>=(StrongId a, StrongId b) {
    return a.value_ >= b.value_;
  }

 private:
  Rep value_{0};
};

// International Mobile Subscriber Identity (15 decimal digits, stored as an
// integer; MCC/MNC/MSIN split is handled by the HSS subscriber database).
using Imsi = StrongId<struct ImsiTag>;

// E-UTRAN Cell Global Identifier (simplified to a flat 64-bit id).
using CellId = StrongId<struct CellIdTag, std::uint32_t>;

// Simulator-local UE handle (not a protocol identifier).
using UeId = StrongId<struct UeIdTag, std::uint32_t>;

// GTP Tunnel Endpoint Identifier.
using Teid = StrongId<struct TeidTag, std::uint32_t>;

// EPS bearer identity (4 bits on the wire; 5..15 valid for dedicated).
using BearerId = StrongId<struct BearerIdTag, std::uint8_t>;

// Access point identity in the dLTE registry (one per site).
using ApId = StrongId<struct ApIdTag, std::uint32_t>;

// Spectrum grant handle issued by a registry.
using GrantId = StrongId<struct GrantIdTag>;

// Node in the IP substrate (router, host, AP backhaul port, EPC site).
using NodeId = StrongId<struct NodeIdTag, std::uint32_t>;

// Transport-level connection identifier (QUIC-like CID).
using ConnectionId = StrongId<struct ConnectionIdTag>;

// Temporary identity assigned at attach (GUTI/M-TMSI analogue).
using Tmsi = StrongId<struct TmsiTag, std::uint32_t>;

// MME UE S1AP ID / eNB UE S1AP ID analogues.
using MmeUeId = StrongId<struct MmeUeIdTag, std::uint32_t>;
using EnbUeId = StrongId<struct EnbUeIdTag, std::uint32_t>;

}  // namespace dlte

namespace std {
template <typename Tag, typename Rep>
struct hash<dlte::StrongId<Tag, Rep>> {
  size_t operator()(dlte::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
}  // namespace std
