// Physical-layer units and conversions.
//
// Radio arithmetic in dLTE is done in explicit unit types: transmit powers
// and received signal strengths in dBm, gains and losses in dB, linear
// power in milliwatts only at the point where powers must be summed
// (interference aggregation). Frequencies are hertz, rates are bits per
// second.
#pragma once

#include <cmath>
#include <cstdint>

namespace dlte {

// A power ratio in decibels (gains, losses, SINR).
class Decibels {
 public:
  constexpr Decibels() = default;
  constexpr explicit Decibels(double db) : db_(db) {}

  [[nodiscard]] constexpr double value() const { return db_; }
  [[nodiscard]] double linear() const { return std::pow(10.0, db_ / 10.0); }
  [[nodiscard]] static Decibels from_linear(double ratio) {
    return Decibels{10.0 * std::log10(ratio)};
  }

  friend constexpr Decibels operator+(Decibels a, Decibels b) {
    return Decibels{a.db_ + b.db_};
  }
  friend constexpr Decibels operator-(Decibels a, Decibels b) {
    return Decibels{a.db_ - b.db_};
  }
  friend constexpr Decibels operator-(Decibels a) { return Decibels{-a.db_}; }
  friend constexpr auto operator<=>(Decibels, Decibels) = default;

 private:
  double db_{0.0};
};

// Absolute power referenced to one milliwatt.
class PowerDbm {
 public:
  constexpr PowerDbm() = default;
  constexpr explicit PowerDbm(double dbm) : dbm_(dbm) {}

  [[nodiscard]] constexpr double value() const { return dbm_; }
  [[nodiscard]] double milliwatts() const {
    return std::pow(10.0, dbm_ / 10.0);
  }
  [[nodiscard]] static PowerDbm from_milliwatts(double mw) {
    return PowerDbm{10.0 * std::log10(mw)};
  }

  // Power plus a gain (antenna, amplifier) or minus a loss (path, cable).
  friend constexpr PowerDbm operator+(PowerDbm p, Decibels g) {
    return PowerDbm{p.dbm_ + g.value()};
  }
  friend constexpr PowerDbm operator-(PowerDbm p, Decibels l) {
    return PowerDbm{p.dbm_ - l.value()};
  }
  // The ratio of two absolute powers is a relative quantity.
  friend constexpr Decibels operator-(PowerDbm a, PowerDbm b) {
    return Decibels{a.dbm_ - b.dbm_};
  }
  friend constexpr auto operator<=>(PowerDbm, PowerDbm) = default;

 private:
  double dbm_{-300.0};  // Effectively zero power.
};

// Carrier frequency / bandwidth in hertz.
class Hertz {
 public:
  constexpr Hertz() = default;
  constexpr explicit Hertz(double hz) : hz_(hz) {}

  [[nodiscard]] static constexpr Hertz mhz(double m) {
    return Hertz{m * 1e6};
  }
  [[nodiscard]] static constexpr Hertz ghz(double g) {
    return Hertz{g * 1e9};
  }
  [[nodiscard]] constexpr double hz() const { return hz_; }
  [[nodiscard]] constexpr double to_mhz() const { return hz_ / 1e6; }
  [[nodiscard]] constexpr double to_ghz() const { return hz_ / 1e9; }

  friend constexpr auto operator<=>(Hertz, Hertz) = default;
  friend constexpr Hertz operator+(Hertz a, Hertz b) {
    return Hertz{a.hz_ + b.hz_};
  }
  friend constexpr Hertz operator-(Hertz a, Hertz b) {
    return Hertz{a.hz_ - b.hz_};
  }

 private:
  double hz_{0.0};
};

// Data rate in bits per second.
class DataRate {
 public:
  constexpr DataRate() = default;
  constexpr explicit DataRate(double bps) : bps_(bps) {}

  [[nodiscard]] static constexpr DataRate kbps(double k) {
    return DataRate{k * 1e3};
  }
  [[nodiscard]] static constexpr DataRate mbps(double m) {
    return DataRate{m * 1e6};
  }
  [[nodiscard]] constexpr double bps() const { return bps_; }
  [[nodiscard]] constexpr double to_kbps() const { return bps_ / 1e3; }
  [[nodiscard]] constexpr double to_mbps() const { return bps_ / 1e6; }

  friend constexpr auto operator<=>(DataRate, DataRate) = default;
  friend constexpr DataRate operator+(DataRate a, DataRate b) {
    return DataRate{a.bps_ + b.bps_};
  }

 private:
  double bps_{0.0};
};

// Thermal noise floor: kT = -174 dBm/Hz at 290 K.
[[nodiscard]] inline PowerDbm thermal_noise(Hertz bandwidth,
                                            Decibels noise_figure) {
  return PowerDbm{-174.0 + 10.0 * std::log10(bandwidth.hz()) +
                  noise_figure.value()};
}

}  // namespace dlte
