// Simulated-time types.
//
// All of dLTE runs on simulated time: a signed 64-bit nanosecond count from
// the start of the simulation. Using a dedicated type (rather than
// std::chrono) keeps the event queue trivially comparable and makes
// accidental mixing with wall-clock time impossible.
#pragma once

#include <cstdint>

namespace dlte {

// A span of simulated time, nanosecond resolution.
class Duration {
 public:
  constexpr Duration() = default;

  [[nodiscard]] static constexpr Duration nanos(std::int64_t n) {
    return Duration{n};
  }
  [[nodiscard]] static constexpr Duration micros(std::int64_t u) {
    return Duration{u * 1000};
  }
  [[nodiscard]] static constexpr Duration millis(std::int64_t m) {
    return Duration{m * 1'000'000};
  }
  [[nodiscard]] static constexpr Duration seconds(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e9)};
  }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double to_micros() const { return ns_ / 1e3; }
  [[nodiscard]] constexpr double to_millis() const { return ns_ / 1e6; }
  [[nodiscard]] constexpr double to_seconds() const { return ns_ / 1e9; }

  [[nodiscard]] constexpr bool is_zero() const { return ns_ == 0; }
  [[nodiscard]] constexpr bool is_negative() const { return ns_ < 0; }

  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration{a.ns_ + b.ns_};
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration{a.ns_ - b.ns_};
  }
  friend constexpr Duration operator*(Duration a, double k) {
    return Duration{static_cast<std::int64_t>(static_cast<double>(a.ns_) * k)};
  }
  friend constexpr Duration operator*(double k, Duration a) { return a * k; }
  friend constexpr double operator/(Duration a, Duration b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }
  friend constexpr Duration operator/(Duration a, std::int64_t k) {
    return Duration{a.ns_ / k};
  }
  constexpr Duration& operator+=(Duration other) {
    ns_ += other.ns_;
    return *this;
  }
  constexpr Duration& operator-=(Duration other) {
    ns_ -= other.ns_;
    return *this;
  }
  friend constexpr auto operator<=>(Duration, Duration) = default;

 private:
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_{0};
};

// An absolute point on the simulated timeline.
class TimePoint {
 public:
  constexpr TimePoint() = default;

  [[nodiscard]] static constexpr TimePoint from_ns(std::int64_t n) {
    return TimePoint{n};
  }
  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const { return ns_ / 1e9; }
  [[nodiscard]] constexpr double to_millis() const { return ns_ / 1e6; }

  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    return TimePoint{t.ns_ + d.ns()};
  }
  friend constexpr TimePoint operator+(Duration d, TimePoint t) {
    return t + d;
  }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) {
    return TimePoint{t.ns_ - d.ns()};
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration::nanos(a.ns_ - b.ns_);
  }
  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;

 private:
  constexpr explicit TimePoint(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_{0};
};

}  // namespace dlte
