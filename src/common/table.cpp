#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>

namespace dlte {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

TextTable& TextTable::row() {
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::add(std::string cell) {
  rows_.back().push_back(std::move(cell));
  return *this;
}

TextTable& TextTable::num(double value, int precision, std::string unit) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  std::string cell{buf};
  if (!unit.empty()) {
    cell += ' ';
    cell += unit;
  }
  return add(std::move(cell));
}

TextTable& TextTable::integer(long long value) {
  return add(std::to_string(value));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t i = 0; i < r.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], r[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      os << "| " << std::left << std::setw(static_cast<int>(widths[i])) << c
         << ' ';
    }
    os << "|\n";
  };
  auto print_rule = [&] {
    for (std::size_t w : widths) {
      os << '+' << std::string(w + 2, '-');
    }
    os << "+\n";
  };
  print_rule();
  print_row(headers_);
  print_rule();
  for (const auto& r : rows_) print_row(r);
  print_rule();
}

void print_bench_header(std::ostream& os, const std::string& experiment_id,
                        const std::string& paper_anchor,
                        const std::string& claim) {
  os << "================================================================\n";
  os << "Experiment " << experiment_id << "  [" << paper_anchor << "]\n";
  os << "Claim: " << claim << "\n";
  os << "================================================================\n";
}

}  // namespace dlte
