// Aligned text-table printer for the benchmark harnesses.
//
// Each bench binary reproduces one table/figure from the paper (or one of
// its quantitative claims) and prints its rows through this formatter so
// output across benches is uniform and diffable.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace dlte {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  // Begin a new row. Subsequent add()/num() calls fill its cells.
  TextTable& row();
  TextTable& add(std::string cell);
  // Formats with the given precision; trailing unit is appended verbatim.
  TextTable& num(double value, int precision = 2, std::string unit = "");
  TextTable& integer(long long value);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints the standard bench banner: experiment id, paper anchor, and the
// claim under test.
void print_bench_header(std::ostream& os, const std::string& experiment_id,
                        const std::string& paper_anchor,
                        const std::string& claim);

}  // namespace dlte
