// Cross-shard message: the only way state crosses a shard boundary in
// the parallel runtime (DESIGN.md §11).
//
// Everything a shard wants another shard to see — an X2 PDU, a packet
// leaving through an egress portal, a control notification — is frozen
// into one of these, parked in the posting shard's outbox, and injected
// into the destination shard's event queue at the next barrier. The
// merge key (deliver_at, src, seq) is deliberately free of any shard
// identity: src is a stable endpoint id and seq counts that endpoint's
// posts, so the globally sorted injection order is the same at every
// shard count — the heart of the byte-identical-replay guarantee.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.h"

namespace dlte::par {

// Stable scenario-assigned identity of a message source/sink (an AP, a
// regional service). Endpoint ids never depend on the partition.
using EndpointId = std::uint32_t;

struct Message {
  EndpointId src{0};
  EndpointId dst{0};
  TimePoint deliver_at{};
  // Per-SOURCE monotone sequence number (ties on deliver_at between two
  // posts by the same endpoint keep their post order).
  std::uint64_t seq{0};
  // Scenario-defined payload tag (protocol number, message class).
  std::uint16_t kind{0};
  std::vector<std::uint8_t> payload;
};

// Deterministic global injection order: earliest delivery first, then by
// source endpoint, then by that source's posting order. Strict weak
// ordering over distinct messages (an endpoint never reuses a seq).
inline bool message_order(const Message& a, const Message& b) {
  if (a.deliver_at != b.deliver_at) return a.deliver_at < b.deliver_at;
  if (a.src != b.src) return a.src < b.src;
  return a.seq < b.seq;
}

}  // namespace dlte::par
