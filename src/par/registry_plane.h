// RegistryPlaneScenario: the planet-scale registry experiment on the
// parallel runtime (DESIGN.md §16).
//
// Shard 0 hosts the authoritative spectrum::Registry (federated design,
// zone-bucketed spatial index, hierarchical lease cache) plus the fault
// injector and the SLO monitor; every other endpoint is a
// workload::LeaseChurnStorm block — a neighbourhood of APs keeping ~1k
// leases alive in bulk. Blocks are block-partitioned across shards, so
// all registry traffic (grant batches, heartbeat batches, occupancy
// queries, and their replies) crosses the runtime's barrier exchange:
// this is the first scenario where the message plane is load-bearing
// rather than decorative.
//
// Mid-run, one zone's registrar goes dark for longer than the heartbeat
// grace: its blocks' heartbeats fail, their leases lapse, and their
// re-applications bounce until the heal — at which point every affected
// block re-applies at once (the churn storm). The SLO monitor on shard 0
// watches the registry's own symptom counters, so the alert timeline
// rides inside the merged series document and is byte-identical at any
// shard count.
//
// Determinism contract (same as ShardedTown/Metro): registry state and
// its metrics live only on shard 0, and NO metric name spans shards —
// the audit plane digests each shard's registry per window, so a name
// incremented from two shards would diverge across partitions even
// though its merged total agrees. Client-side tallies are plain
// LeaseChurnStorm members summed after the run. All cross-endpoint
// interaction goes through post(). Merged metrics, series (with
// alerts), openmetrics, and audit artifacts byte-match across 1/2/4
// shards — bench_c12_registry_scale's gate.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/time.h"
#include "obs/slo.h"
#include "par/sharded_sim.h"
#include "registry/cache.h"

namespace dlte::par {

struct RegistryPlaneConfig {
  int blocks{64};            // LeaseChurnStorm actors.
  int leases_per_block{256};  // blocks × leases_per_block total leases.
  int zones_x{4};            // Zone grid (kZoneSizeM squares).
  int zones_y{4};
  std::size_t shards{1};
  std::size_t threads{0};  // 0 → one worker per shard.
  std::uint64_t seed{42};
  Duration horizon{Duration::seconds(75.0)};
  // Lease terms: lifetime + grace bound how long a zone outage can last
  // before its leases lapse.
  Duration lease_lifetime{Duration::seconds(15.0)};
  Duration heartbeat_grace{Duration::seconds(10.0)};
  Duration heartbeat_interval{Duration::seconds(10.0)};
  Duration query_interval{Duration::seconds(2.0)};
  Duration regrant_backoff{Duration::seconds(4.0)};
  // One-way block↔registrar latency — the runtime lookahead.
  Duration registry_delay{Duration::millis(5)};
  // The storm: this zone's registrar goes offline at `outage_at` for
  // `outage_duration` (> lifetime + grace ⇒ mass lapse + re-grant).
  int storm_zone{0};
  Duration outage_at{Duration::seconds(20.0)};
  Duration outage_duration{Duration::seconds(30.0)};
  registry::CacheConfig cache;
  Duration sample_interval{Duration::millis(500)};
  Duration slo_interval{Duration::millis(500)};
  bool audit{false};
  Duration audit_window{Duration::millis(500)};
  bool profile{false};
};

struct RegistryPlaneResult {
  std::uint64_t grants_issued{0};
  std::uint64_t grant_failures{0};
  std::uint64_t heartbeats_ok{0};
  std::uint64_t heartbeats_failed{0};
  std::uint64_t grants_lapsed{0};
  std::uint64_t regrant_batches{0};
  std::uint64_t queries_answered{0};
  std::uint64_t cache_hits{0};
  std::uint64_t cache_misses{0};
  std::uint64_t cache_stale_serves{0};
  std::uint64_t cache_root_sheds{0};
  std::uint64_t leases_held{0};  // Across all blocks at the horizon.
  std::uint64_t windows{0};
  std::uint64_t messages{0};
  std::uint64_t events_executed{0};
  double sim_seconds{0.0};
  bool outage_alert_fired{0};
  bool outage_alert_resolved{0};
};

class RegistryPlaneScenario {
 public:
  explicit RegistryPlaneScenario(RegistryPlaneConfig config);
  RegistryPlaneScenario(const RegistryPlaneScenario&) = delete;
  RegistryPlaneScenario& operator=(const RegistryPlaneScenario&) = delete;
  ~RegistryPlaneScenario();

  // Build (first call) and run to the configured horizon.
  RegistryPlaneResult run();

  [[nodiscard]] ShardedSimulator& runtime() { return runtime_; }
  [[nodiscard]] const RegistryPlaneConfig& config() const { return config_; }
  [[nodiscard]] const obs::SloMonitor* monitor() const {
    return monitor_.get();
  }

  // Shard-count-invariant merged artifacts (valid after run()).
  [[nodiscard]] std::string metrics_json() const;
  // Includes the shard-0 monitor's rules/alerts/health sections.
  [[nodiscard]] std::string series_json(const std::string& source) const;
  [[nodiscard]] std::string openmetrics_text() const;

  // Zone index (0 .. zones_x*zones_y-1) of a block — pure function of
  // the config, like MetroScenario::district_of.
  [[nodiscard]] int zone_of_block(int block) const;

 private:
  struct Block;
  struct RegistryNode;
  void build();
  void handle_registry_message(const Message& m);

  RegistryPlaneConfig config_;
  ShardedSimulator runtime_;
  std::unique_ptr<RegistryNode> registry_;
  std::vector<std::unique_ptr<Block>> blocks_;
  std::unique_ptr<obs::SloMonitor> monitor_;
  bool built_{false};
};

}  // namespace dlte::par
