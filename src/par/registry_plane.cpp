#include "par/registry_plane.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/bytes.h"
#include "fault/fault.h"
#include "obs/merge.h"
#include "obs/openmetrics.h"
#include "obs/snapshot.h"
#include "par/partition.h"
#include "registry/health.h"
#include "sim/telemetry.h"
#include "spectrum/registry.h"
#include "workload/lease_churn.h"

namespace dlte::par {
namespace {

// Registry service endpoint id; block i lives at 1 + i.
constexpr EndpointId kRegistryEndpoint = 0;

// In-flight grant batch: per-lease request_grant callbacks complete at
// the same commit latency, so the last one posts the combined reply.
struct GrantBatch {
  std::uint32_t block{0};
  std::uint32_t expected{0};
  std::uint32_t done{0};
  std::vector<std::uint64_t> ids;
};

}  // namespace

struct RegistryPlaneScenario::Block {
  int index{0};
  int zone{0};
  std::size_t shard{0};
  sim::Simulator* sim{nullptr};
  std::unique_ptr<workload::LeaseChurnStorm> storm;
};

struct RegistryPlaneScenario::RegistryNode {
  sim::Simulator* sim{nullptr};
  std::unique_ptr<registry::LeaseCache> cache;
  std::unique_ptr<spectrum::Registry> registry;
  std::unique_ptr<fault::FaultInjector> injector;
  std::unique_ptr<sim::TelemetryDriver> telemetry;
};

RegistryPlaneScenario::RegistryPlaneScenario(RegistryPlaneConfig config)
    : config_([&config] {
        config.blocks = std::max(config.blocks, 1);
        config.leases_per_block = std::max(config.leases_per_block, 1);
        config.zones_x = std::max(config.zones_x, 1);
        config.zones_y = std::max(config.zones_y, 1);
        if (config.shards == 0) config.shards = 1;
        config.shards = std::min(
            config.shards, static_cast<std::size_t>(config.blocks));
        const int zones = config.zones_x * config.zones_y;
        config.storm_zone = std::clamp(config.storm_zone, 0, zones - 1);
        return config;
      }()),
      runtime_([this] {
        ShardedConfig rc;
        rc.shards = config_.shards;
        rc.threads = config_.threads;
        rc.lookahead = config_.registry_delay;
        rc.sample_interval = config_.sample_interval;
        rc.profile = config_.profile;
        rc.audit = config_.audit;
        rc.audit_window = config_.audit_window;
        return rc;
      }()) {}

RegistryPlaneScenario::~RegistryPlaneScenario() = default;

int RegistryPlaneScenario::zone_of_block(int block) const {
  // Round-robin: every zone hosts blocks from across the index range,
  // so the storm zone's clients straddle shards at any partition.
  return block % (config_.zones_x * config_.zones_y);
}

void RegistryPlaneScenario::build() {
  const double zs = spectrum::Registry::kZoneSizeM;

  // --- Shard 0: the authoritative registry + injector + monitor -------
  registry_ = std::make_unique<RegistryNode>();
  RegistryNode* reg = registry_.get();
  reg->sim = &runtime_.shard_sim(0);
  obs::MetricsRegistry& reg_domain = runtime_.shard_registry(0);
  reg->cache = std::make_unique<registry::LeaseCache>(config_.cache);
  reg->cache->set_metrics(&reg_domain, "reg.");
  reg->registry = std::make_unique<spectrum::Registry>(
      *reg->sim, spectrum::RegistryKind::kFederated);
  reg->registry->set_grant_lifetime(config_.lease_lifetime);
  reg->registry->set_heartbeat_grace(config_.heartbeat_grace);
  reg->registry->set_metrics(&reg_domain, "reg.");
  reg->registry->attach_cache(reg->cache.get());

  // The storm: one zone's registrar goes dark, heals after
  // outage_duration. Driven through the fault plane so the timeline
  // appears in fault.* metrics like every other injected failure.
  reg->injector = std::make_unique<fault::FaultInjector>(*reg->sim);
  reg->injector->set_registry(reg->registry.get());
  reg->injector->set_metrics(&reg_domain, "reg.");
  const int storm_zx = config_.storm_zone % config_.zones_x;
  const int storm_zy = config_.storm_zone / config_.zones_x;
  const Position storm_center{(storm_zx + 0.5) * zs, (storm_zy + 0.5) * zs};
  fault::FaultPlan plan;
  fault::FaultSpec outage;
  outage.kind = fault::FaultKind::kRegistryOutage;
  outage.at = TimePoint{} + config_.outage_at;
  outage.duration = config_.outage_duration;
  outage.outage = spectrum::RegistryOutage::kOffline;
  outage.zone = spectrum::Registry::zone_of(storm_center);
  plan.add(outage);
  reg->injector->arm(plan);

  monitor_ = std::make_unique<obs::SloMonitor>(reg_domain);
  monitor_->add_rules(registry::churn_slo_rules("reg."));
  monitor_->set_metrics(&reg_domain, "reg.");
  reg->telemetry =
      std::make_unique<sim::TelemetryDriver>(*reg->sim, nullptr,
                                             monitor_.get());
  reg->telemetry->start(config_.slo_interval);

  runtime_.register_endpoint(kRegistryEndpoint, 0,
                             [this](const Message& m) {
                               handle_registry_message(m);
                             });

  // --- Every shard: churn-storm blocks --------------------------------
  const int zones = config_.zones_x * config_.zones_y;
  blocks_.reserve(static_cast<std::size_t>(config_.blocks));
  for (int i = 0; i < config_.blocks; ++i) {
    auto block = std::make_unique<Block>();
    Block* b = block.get();
    b->index = i;
    b->zone = zone_of_block(i);
    b->shard = shard_of_block(static_cast<std::size_t>(i),
                              static_cast<std::size_t>(config_.blocks),
                              config_.shards);
    b->sim = &runtime_.shard_sim(b->shard);

    // No per-block metric hooks: the audit plane digests each shard's
    // registry per window, so a zone tally incremented from blocks on
    // different shards would make the digests partition-variant even
    // though the merged totals agree. Client tallies are plain storm
    // members, summed deterministically after the run.
    workload::ChurnConfig cc;
    cc.block = static_cast<std::uint32_t>(i);
    cc.leases = static_cast<std::uint32_t>(config_.leases_per_block);
    const int zx = b->zone % config_.zones_x;
    const int zy = b->zone / config_.zones_x;
    const int j = i / zones;  // Index within the zone.
    // Deterministic in-zone placement, clear of the zone edges so a
    // block's grants land squarely in its registrar's zone.
    cc.location = Position{zx * zs + 0.1 * zs + (j % 8) * 0.1 * zs,
                           zy * zs + 0.1 * zs + ((j / 8) % 8) * 0.1 * zs};
    // Spread blocks of a zone over CBRS-style 10 MHz channels so
    // contention stays per-neighbourhood, not per-zone.
    cc.center_frequency = Hertz::mhz(3550.0 + 10.0 * (j % 15));
    cc.bandwidth = Hertz::mhz(10.0);
    cc.heartbeat_interval = config_.heartbeat_interval;
    cc.heartbeat_phase = Duration::millis(50 * (i % 20));
    cc.query_interval = config_.query_interval;
    cc.query_phase = Duration::millis(25 * (i % 40) + 7);
    cc.regrant_backoff = config_.regrant_backoff;

    const EndpointId self = static_cast<EndpointId>(1 + i);
    b->storm = std::make_unique<workload::LeaseChurnStorm>(
        *b->sim, cc,
        [this, self](std::uint16_t kind, std::vector<std::uint8_t> payload) {
          runtime_.post(self, kRegistryEndpoint, config_.registry_delay,
                        kind, std::move(payload));
        },
        workload::LeaseChurnStorm::Hooks{});
    runtime_.register_endpoint(self, b->shard, [b](const Message& m) {
      b->storm->on_message(m.kind, m.payload);
    });
    // After registration: start() posts the initial grant batch.
    b->storm->start();
    blocks_.push_back(std::move(block));
  }
  built_ = true;
}

void RegistryPlaneScenario::handle_registry_message(const Message& m) {
  spectrum::Registry& reg = *registry_->registry;
  ByteReader r{m.payload};
  switch (m.kind) {
    case workload::kLeaseGrantBatch: {
      const auto block = r.u32();
      const auto count = r.u32();
      const auto x = r.f64();
      const auto y = r.f64();
      const auto center = r.f64();
      const auto bw = r.f64();
      if (!block || !count || !x || !y || !center || !bw) return;
      auto batch = std::make_shared<GrantBatch>();
      batch->block = *block;
      batch->expected = *count;
      spectrum::GrantRequest req;
      req.ap = ApId{*block};
      req.location = Position{*x, *y};
      req.center_frequency = Hertz{*center};
      req.bandwidth = Hertz{*bw};
      req.operator_contact = "block-" + std::to_string(*block) + "@dlte";
      for (std::uint32_t i = 0; i < *count; ++i) {
        reg.request_grant(
            req, [this, batch](Result<spectrum::SpectrumGrant> result) {
              if (result) batch->ids.push_back(result->id.value());
              if (++batch->done < batch->expected) return;
              ByteWriter w;
              w.u32(batch->block);
              w.u8(batch->ids.empty() ? 0 : 1);
              w.u32(static_cast<std::uint32_t>(batch->ids.size()));
              for (const std::uint64_t id : batch->ids) w.u64(id);
              runtime_.post(kRegistryEndpoint,
                            static_cast<EndpointId>(1 + batch->block),
                            config_.registry_delay,
                            workload::kLeaseGrantReply, w.take());
            });
      }
      return;
    }
    case workload::kLeaseHeartbeatBatch: {
      const auto block = r.u32();
      const auto count = r.u32();
      if (!block || !count) return;
      std::uint32_t ok = 0;
      std::uint32_t unreachable = 0;
      std::vector<std::uint64_t> lapsed;
      for (std::uint32_t i = 0; i < *count; ++i) {
        const auto id = r.u64();
        if (!id) break;
        switch (reg.heartbeat_outcome(GrantId{*id})) {
          case spectrum::HeartbeatOutcome::kRenewed:
            ++ok;
            break;
          case spectrum::HeartbeatOutcome::kUnreachable:
            ++unreachable;
            break;
          case spectrum::HeartbeatOutcome::kLapsed:
            lapsed.push_back(*id);
            break;
        }
      }
      ByteWriter w;
      w.u32(*block);
      w.u32(ok);
      w.u32(unreachable);
      w.u32(static_cast<std::uint32_t>(lapsed.size()));
      for (const std::uint64_t id : lapsed) w.u64(id);
      runtime_.post(kRegistryEndpoint, static_cast<EndpointId>(1 + *block),
                    config_.registry_delay, workload::kLeaseHeartbeatReply,
                    w.take());
      return;
    }
    case workload::kLeaseQuery: {
      const auto block = r.u32();
      const auto x = r.f64();
      const auto y = r.f64();
      if (!block || !x || !y) return;
      const auto occ = reg.zone_occupancy(*block, Position{*x, *y});
      // A cache serve replies at its tier's latency; authoritative and
      // shed lookups pay the federated design's full query latency.
      Duration delay = registry_->cache->tier_latency(occ.tier);
      if (delay.is_zero()) {
        delay = spectrum::registry_latency(spectrum::RegistryKind::kFederated)
                    .query;
      }
      ByteWriter w;
      w.u32(*block);
      w.u8(static_cast<std::uint8_t>(occ.tier));
      w.u8(occ.stale ? 1 : 0);
      w.u64(static_cast<std::uint64_t>(occ.grants));
      runtime_.post(kRegistryEndpoint, static_cast<EndpointId>(1 + *block),
                    delay, workload::kLeaseQueryReply, w.take());
      return;
    }
    default:
      return;
  }
}

RegistryPlaneResult RegistryPlaneScenario::run() {
  if (!built_) build();
  runtime_.run_until(TimePoint{} + config_.horizon);

  obs::MetricsRegistry merged;
  runtime_.merged_metrics_into(merged);
  RegistryPlaneResult result;
  result.grants_issued = merged.counter("reg.registry.grants_issued").value();
  result.grant_failures =
      merged.counter("reg.registry.grant_failures").value();
  result.heartbeats_ok = merged.counter("reg.registry.heartbeats_ok").value();
  result.heartbeats_failed =
      merged.counter("reg.registry.heartbeats_failed").value();
  result.grants_lapsed = merged.counter("reg.registry.grants_lapsed").value();
  result.cache_hits =
      merged.counter("reg.registry.cache.hits_local").value() +
      merged.counter("reg.registry.cache.hits_zone").value() +
      merged.counter("reg.registry.cache.hits_root").value();
  result.cache_misses = merged.counter("reg.registry.cache.misses").value();
  result.cache_stale_serves =
      merged.counter("reg.registry.cache.stale_serves").value();
  result.cache_root_sheds =
      merged.counter("reg.registry.cache.root_sheds").value();
  for (const auto& block : blocks_) {
    result.regrant_batches += block->storm->regrant_batches();
    result.queries_answered += block->storm->queries_answered();
    result.leases_held += block->storm->leases_held();
  }
  result.windows = runtime_.windows_run();
  result.messages = runtime_.messages_exchanged();
  result.events_executed = runtime_.events_executed();
  result.sim_seconds = config_.horizon.to_seconds();
  result.outage_alert_fired = monitor_->ever_fired("registry_churn_outage");
  result.outage_alert_resolved =
      result.outage_alert_fired &&
      !monitor_->alert_active("registry_churn_outage");
  return result;
}

std::string RegistryPlaneScenario::metrics_json() const {
  obs::MetricsRegistry merged;
  runtime_.merged_metrics_into(merged);
  return obs::MetricsSnapshot{merged}.to_json();
}

std::string RegistryPlaneScenario::series_json(
    const std::string& source) const {
  return runtime_.merged_series_json(source, monitor_.get());
}

std::string RegistryPlaneScenario::openmetrics_text() const {
  obs::MetricsRegistry merged;
  runtime_.merged_metrics_into(merged);
  return obs::OpenMetricsExporter::render(merged);
}

}  // namespace dlte::par
