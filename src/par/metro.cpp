#include "par/metro.h"

#include <algorithm>
#include <cstring>

#include "obs/merge.h"
#include "obs/snapshot.h"
#include "par/partition.h"
#include "workload/cohort.h"

namespace dlte::par {

namespace {
constexpr std::uint16_t kLoadReportKind = 1;

std::vector<std::uint8_t> encode_load(std::uint32_t attached) {
  std::vector<std::uint8_t> payload(4);
  payload[0] = static_cast<std::uint8_t>(attached & 0xff);
  payload[1] = static_cast<std::uint8_t>((attached >> 8) & 0xff);
  payload[2] = static_cast<std::uint8_t>((attached >> 16) & 0xff);
  payload[3] = static_cast<std::uint8_t>((attached >> 24) & 0xff);
  return payload;
}
}  // namespace

// District metric block: lives wholly in one shard's registry (the
// partition distributes districts, never splits them), which is what
// keeps the histogram merge bit-exact at any shard count.
struct MetroScenario::District {
  std::size_t shard{0};
  workload::UeCohort::Hooks hooks;
  obs::Counter* reports_rx{nullptr};
};

// One AP: its cohort plus the ring-report periodic. All cross-AP
// interaction is a posted Message, so the event structure is a pure
// function of the config, not the partition.
struct MetroScenario::Cell {
  int index{0};
  District* district{nullptr};
  sim::Simulator* sim{nullptr};
  std::unique_ptr<workload::UeCohort> cohort;
  std::uint32_t last_report{0};
};

MetroScenario::MetroScenario(MetroConfig config) : config_([&config] {
      config.aps = std::max(config.aps, 1);
      config.districts = std::clamp(config.districts, 1, config.aps);
      if (config.shards == 0) config.shards = 1;
      config.shards =
          std::min(config.shards, static_cast<std::size_t>(config.districts));
      return config;
    }()),
      runtime_([this] {
        ShardedConfig rc;
        rc.shards = config_.shards;
        rc.threads = config_.threads;
        rc.lookahead = config_.backbone_delay;
        rc.sample_interval = config_.sample_interval;
        rc.profile = config_.profile;
        rc.audit = config_.audit;
        rc.audit_window = config_.audit_window;
        rc.engine_sample_interval = config_.engine_sample_interval;
        return rc;
      }()) {}

MetroScenario::~MetroScenario() = default;

std::size_t MetroScenario::district_of(std::size_t ap) const {
  return shard_of_block(ap, static_cast<std::size_t>(config_.aps),
                        static_cast<std::size_t>(config_.districts));
}

void MetroScenario::build() {
  const int n = config_.aps;
  districts_.reserve(static_cast<std::size_t>(config_.districts));
  for (int d = 0; d < config_.districts; ++d) {
    auto district = std::make_unique<District>();
    district->shard =
        shard_of_block(static_cast<std::size_t>(d),
                       static_cast<std::size_t>(config_.districts),
                       config_.shards);
    obs::MetricsRegistry& domain = runtime_.shard_registry(district->shard);
    const std::string prefix = "d" + std::to_string(d) + ".";
    district->hooks.attached = &domain.counter(prefix + "attached");
    district->hooks.bytes_delivered =
        &domain.counter(prefix + "bytes_delivered");
    district->hooks.flows_completed =
        &domain.counter(prefix + "flows_completed");
    district->hooks.attach_ms = &domain.histogram(prefix + "attach.ms");
    district->reports_rx = &domain.counter(prefix + "reports.rx");
    districts_.push_back(std::move(district));
  }

  cells_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto cell = std::make_unique<Cell>();
    Cell* c = cell.get();
    c->index = i;
    c->district = districts_[district_of(static_cast<std::size_t>(i))].get();
    c->sim = &runtime_.shard_sim(c->district->shard);

    workload::CohortConfig cohort;
    cohort.ues = config_.ues_per_ap;
    cohort.attach_batches = config_.attach_batches;
    cohort.attach_window = config_.attach_window;
    cohort.flow_bytes_per_ue = config_.flow_bytes_per_ue;
    cohort.flow.rtt = config_.flow_rtt;
    cohort.flow.bottleneck = config_.per_ue_rate;
    // Per-AP stream from the SCENARIO seed and AP index — never the
    // shard — so every sequence survives any repartition.
    c->cohort = std::make_unique<workload::UeCohort>(
        *c->sim, cohort,
        sim::RngStream::derive(config_.seed, "metro.cohort",
                               static_cast<std::uint64_t>(i)),
        c->district->hooks);
    c->cohort->start();

    runtime_.register_endpoint(
        static_cast<EndpointId>(i), c->district->shard,
        [c](const Message& m) {
          c->district->reports_rx->inc();
          if (m.payload.size() >= 4) {
            c->last_report = static_cast<std::uint32_t>(m.payload[0]) |
                             static_cast<std::uint32_t>(m.payload[1]) << 8 |
                             static_cast<std::uint32_t>(m.payload[2]) << 16 |
                             static_cast<std::uint32_t>(m.payload[3]) << 24;
          }
        });

    // Ring load report to the right neighbour: the deliberate cross-shard
    // traffic that keeps the exchange path honest at metro scale.
    if (n > 1) {
      const EndpointId peer = static_cast<EndpointId>((i + 1) % n);
      c->sim->every(
          config_.report_interval,
          [this, c, peer] {
            runtime_.post(static_cast<EndpointId>(c->index), peer,
                          config_.backbone_delay, kLoadReportKind,
                          encode_load(static_cast<std::uint32_t>(
                              c->cohort->ues_attached())));
          },
          c->sim->label("metro.report"));
    }

    cells_.push_back(std::move(cell));
  }
  built_ = true;
}

MetroResult MetroScenario::run() {
  if (!built_) build();
  runtime_.run_until(TimePoint{} + config_.horizon);
  MetroResult result;
  for (const auto& district : districts_) {
    result.ues_attached += district->hooks.attached->value();
    result.bytes_delivered += district->hooks.bytes_delivered->value();
    result.flows_completed += district->hooks.flows_completed->value();
    result.reports_rx += district->reports_rx->value();
  }
  result.windows = runtime_.windows_run();
  result.messages = runtime_.messages_exchanged();
  result.events_executed = runtime_.events_executed();
  result.sim_seconds = config_.horizon.to_seconds();
  return result;
}

std::string MetroScenario::metrics_json() const {
  obs::MetricsRegistry merged;
  runtime_.merged_metrics_into(merged);
  return obs::MetricsSnapshot{merged}.to_json();
}

std::string MetroScenario::series_json(const std::string& source) const {
  return runtime_.merged_series_json(source);
}

}  // namespace dlte::par
