#include "par/sharded_sim.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <limits>
#include <utility>

#include "obs/merge.h"

namespace dlte::par {

namespace {
constexpr std::int64_t kNever = std::numeric_limits<std::int64_t>::max();

double wall_seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}
}  // namespace

ShardedSimulator::ShardedSimulator(ShardedConfig config)
    : config_(config) {
  if (config_.shards == 0) config_.shards = 1;
  if (config_.threads == 0) config_.threads = config_.shards;
  config_.threads = std::min(config_.threads, config_.shards);
  assert(config_.lookahead.ns() > 0 && "lookahead must be positive");
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    if (config_.sample_interval.ns() > 0) {
      shard->sampler = std::make_unique<obs::TimeSeriesSampler>(
          shard->domain, obs::SamplerConfig{config_.sample_interval});
    }
    if (config_.profile) {
      shard->profiler = std::make_unique<obs::EventProfiler>();
      shard->sim.set_profiler(shard->profiler.get());
    }
    if (config_.audit) {
      // Auditor attaches before any label is interned so label() can
      // register every name hash with it.
      shard->auditor =
          std::make_unique<obs::DigestTimeline>(config_.audit_window.ns());
      shard->sim.set_auditor(shard->auditor.get());
    }
    if (config_.profile) {
      shard->delivery_label = shard->sim.label("par.delivery");
    }
    shards_.push_back(std::move(shard));
  }
  if (config_.profile) {
    matrix_messages_.assign(config_.shards * config_.shards, 0);
    matrix_bytes_.assign(config_.shards * config_.shards, 0);
  }
  if (config_.audit) {
    ledger_ = std::make_unique<obs::MessageLedger>(config_.audit_window.ns());
    next_audit_boundary_ = TimePoint{} + config_.audit_window;
  }
  if (config_.sample_interval.ns() > 0) {
    next_sample_ = TimePoint{} + config_.sample_interval;
  }
  engine_interval_ = config_.engine_sample_interval.ns() > 0
                         ? config_.engine_sample_interval
                         : config_.sample_interval;
  if (engine_interval_.ns() > 0) {
    engine_queue_depth_ = &engine_domain_.gauge("sim.queue_depth");
    engine_sampler_ = std::make_unique<obs::TimeSeriesSampler>(
        engine_domain_, obs::SamplerConfig{engine_interval_});
    next_engine_sample_ = TimePoint{} + engine_interval_;
  }
  if (config_.threads > 1) {
    workers_.reserve(config_.threads);
    for (std::size_t i = 0; i < config_.threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }
}

ShardedSimulator::~ShardedSimulator() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_work_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }
}

sim::Simulator& ShardedSimulator::shard_sim(std::size_t shard) {
  return shards_[shard]->sim;
}

obs::MetricsRegistry& ShardedSimulator::shard_registry(std::size_t shard) {
  return shards_[shard]->domain;
}

void ShardedSimulator::register_endpoint(EndpointId ep, std::size_t shard,
                                         Handler handler) {
  assert(shard < shards_.size());
  endpoints_[ep] = Endpoint{shard, std::move(handler)};
}

std::size_t ShardedSimulator::owner_of(EndpointId ep) const {
  const auto it = endpoints_.find(ep);
  assert(it != endpoints_.end() && "unregistered endpoint");
  return it->second.shard;
}

void ShardedSimulator::post(EndpointId src, EndpointId dst, Duration delay,
                            std::uint16_t kind,
                            std::vector<std::uint8_t> payload) {
  Shard& shard = *shards_[owner_of(src)];
  if (delay < config_.lookahead) {
    delay = config_.lookahead;
    ++shard.posts_clamped;
  }
  Message msg;
  msg.src = src;
  msg.dst = dst;
  msg.deliver_at = shard.sim.now() + delay;
  msg.seq = shard.next_seq[src]++;
  msg.kind = kind;
  msg.payload = std::move(payload);
  shard.outbox.push_back(std::move(msg));
}

void ShardedSimulator::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    TimePoint end;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [this, seen_generation] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      end = window_end_;
    }
    for (;;) {
      const std::size_t i = next_shard_.fetch_add(1);
      if (i >= shards_.size()) break;
      if (config_.profile) {
        const auto start = std::chrono::steady_clock::now();
        shards_[i]->sim.run_until(end);
        // Only this worker touches shard i inside the window; the
        // coordinator reads window_run_s after the barrier.
        shards_[i]->window_run_s = wall_seconds_since(start);
      } else {
        shards_[i]->sim.run_until(end);
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (++done_count_ == workers_.size()) cv_done_.notify_one();
    }
  }
}

void ShardedSimulator::run_window(TimePoint end) {
  if (workers_.empty()) {
    for (auto& shard : shards_) {
      if (config_.profile) {
        const auto start = std::chrono::steady_clock::now();
        shard->sim.run_until(end);
        shard->window_run_s = wall_seconds_since(start);
      } else {
        shard->sim.run_until(end);
      }
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    window_end_ = end;
    done_count_ = 0;
    next_shard_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  cv_work_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return done_count_ == workers_.size(); });
}

void ShardedSimulator::exchange() {
  // Single-threaded (all workers parked at the barrier): gather every
  // shard's outbox, order globally, inject. The injection order fixes
  // the tie-break sequence numbers in the destination simulators, so it
  // must be — and is — independent of the partition.
  std::vector<Message> batch;
  for (auto& shard : shards_) {
    if (shard->outbox.empty()) continue;
    batch.insert(batch.end(),
                 std::make_move_iterator(shard->outbox.begin()),
                 std::make_move_iterator(shard->outbox.end()));
    shard->outbox.clear();
  }
  if (inject_held_ != nullptr) {
    // Deliberate divergence (test hook), step 2: the message captured at
    // the previous barrier rejoins the stream one exchange late.
    batch.push_back(std::move(*inject_held_));
    inject_held_.reset();
  }
  if (batch.empty()) return;
  std::sort(batch.begin(), batch.end(), message_order);
  if (inject_armed_) {
    // Deliberate divergence (test hook), step 1: pull the first message
    // for the target shard past the trigger time out of its barrier —
    // exactly the missed-window bug a broken lookahead or an unseeded
    // reorder in a future partitioner would introduce.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (endpoints_.at(batch[i].dst).shard != inject_dst_) continue;
      if (batch[i].deliver_at < inject_after_) continue;
      inject_held_ = std::make_unique<Message>(std::move(batch[i]));
      batch.erase(batch.begin() + static_cast<std::ptrdiff_t>(i));
      inject_armed_ = false;
      break;
    }
    if (batch.empty()) return;
  }
  messages_ += batch.size();
  max_exchange_ = std::max(max_exchange_, batch.size());
  for (Message& msg : batch) {
    // Node-stable map: the Endpoint address outlives the run.
    const Endpoint* endpoint = &endpoints_.at(msg.dst);
    Shard& shard = *shards_[endpoint->shard];
    if (ledger_ != nullptr) {
      ledger_->on_message(
          msg.deliver_at.ns(), msg.src, msg.seq, msg.kind,
          msg.payload.data(), msg.payload.size(),
          static_cast<std::uint32_t>(owner_of(msg.src)),
          static_cast<std::uint32_t>(endpoint->shard));
    }
    if (config_.profile) {
      const std::size_t cell =
          owner_of(msg.src) * shards_.size() + endpoint->shard;
      ++matrix_messages_[cell];
      matrix_bytes_[cell] += msg.payload.size();
    }
    Delivery* delivery = shard.deliveries.acquire();
    delivery->msg = std::move(msg);
    delivery->endpoint = endpoint;
    delivery->home = &shard;
    shard.sim.schedule_at(
        delivery->msg.deliver_at,
        [delivery] {
          delivery->endpoint->handler(delivery->msg);
          delivery->home->deliveries.release(delivery);
        },
        shard.delivery_label);
  }
}

void ShardedSimulator::emit_samples(TimePoint up_to) {
  if (config_.sample_interval.ns() > 0) {
    while (next_sample_ <= up_to) {
      for (auto& shard : shards_) shard->sampler->sample(next_sample_);
      next_sample_ = next_sample_ + config_.sample_interval;
    }
  }
  if (engine_sampler_ != nullptr) {
    while (next_engine_sample_ <= up_to) {
      // Global pending count: the partition decides which shard holds a
      // future event, never whether it exists, so the sum at a barrier
      // is invariant — safe inside the compared merged series.
      std::uint64_t pending = 0;
      for (const auto& shard : shards_) pending += shard->sim.pending_events();
      engine_queue_depth_->set(static_cast<double>(pending));
      engine_sampler_->sample(next_engine_sample_);
      next_engine_sample_ = next_engine_sample_ + engine_interval_;
    }
  }
}

void ShardedSimulator::audit_tick(TimePoint end) {
  if (!config_.audit) return;
  while (next_audit_boundary_ <= end) {
    obs::AuditDoc::MetricWindow window;
    window.index = next_audit_boundary_.ns() / config_.audit_window.ns() - 1;
    window.t_ns = end.ns();
    for (const auto& shard : shards_) {
      window.digest.merge(obs::digest_registry(shard->domain));
    }
    metric_windows_.push_back(window);
    next_audit_boundary_ = next_audit_boundary_ + config_.audit_window;
  }
}

void ShardedSimulator::run_until(TimePoint horizon) {
  const std::int64_t window_ns = config_.lookahead.ns();
  // Drain setup-time posts so messages due inside the first window are
  // already in place before it runs.
  exchange();
  while (now_ < horizon) {
    std::int64_t earliest = kNever;
    for (const auto& shard : shards_) {
      earliest = std::min(earliest, shard->sim.next_event_time().ns());
    }
    TimePoint end;
    if (earliest > horizon.ns()) {
      // Nothing due before the horizon: one final (possibly empty)
      // window advances every shard clock to it.
      end = horizon;
    } else {
      // Idle fast-forward onto the fixed grid: jump straight to the
      // window (start, start+L] containing the earliest pending event.
      // `earliest` is a global property of the barrier state, so the
      // resulting window sequence is identical at every shard count.
      const std::int64_t start = ((earliest - 1) / window_ns) * window_ns;
      std::int64_t end_ns = start + window_ns;
      if (end_ns <= now_.ns()) end_ns = now_.ns() + window_ns;
      end = TimePoint::from_ns(std::min(horizon.ns(), end_ns));
    }
    if (config_.profile) {
      const auto start = std::chrono::steady_clock::now();
      run_window(end);
      record_profile_window(end, wall_seconds_since(start));
    } else {
      run_window(end);
    }
    exchange();
    emit_samples(end);
    audit_tick(end);
    now_ = end;
    ++windows_;
  }
  flush_metrics();
}

void ShardedSimulator::record_profile_window(TimePoint end,
                                             double window_wall_s) {
  // Coordinator-only, between barriers. A shard's barrier wait is the
  // slack between its own run time and the whole window's wall time
  // (the slowest lane sets the pace; everyone else waited).
  for (auto& shard : shards_) {
    shard->run_s += shard->window_run_s;
    const double wait = window_wall_s - shard->window_run_s;
    if (wait > 0) shard->barrier_wait_s += wait;
    shard->window_run_s = 0.0;
  }
  if (windows_ % sample_stride_ != 0) return;
  obs::ShardWindowSample sample;
  sample.t_s = end.to_seconds();
  sample.shard_events.reserve(shards_.size());
  for (const auto& shard : shards_) {
    sample.shard_events.push_back(shard->sim.events_executed());
  }
  sample.messages = messages_;
  for (const auto& shard : shards_) {
    sample.queue_depth += shard->sim.pending_events();
    sample.queue_resizes += shard->sim.queue_resizes();
  }
  prof_samples_.push_back(std::move(sample));
  if (prof_samples_.size() >= kMaxProfileSamples) {
    // Keep every other sample and double the stride: the buffer stays
    // bounded while coverage stays end-to-end.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < prof_samples_.size(); i += 2) {
      prof_samples_[kept++] = std::move(prof_samples_[i]);
    }
    prof_samples_.resize(kept);
    sample_stride_ *= 2;
  }
}

obs::AuditDoc ShardedSimulator::audit_doc() const {
  if (!config_.audit) return obs::AuditDoc{};
  std::vector<const obs::DigestTimeline*> timelines;
  timelines.reserve(shards_.size());
  for (const auto& shard : shards_) timelines.push_back(shard->auditor.get());
  return obs::build_audit_doc(timelines, ledger_.get(), metric_windows_);
}

void ShardedSimulator::inject_exchange_reorder(TimePoint after,
                                               std::size_t dst_shard) {
  inject_armed_ = true;
  inject_after_ = after;
  inject_dst_ = dst_shard;
}

void ShardedSimulator::merged_profiler_into(obs::EventProfiler& dst) const {
  for (const auto& shard : shards_) {
    if (shard->profiler != nullptr) dst.merge_from(*shard->profiler);
  }
}

obs::ShardProfile ShardedSimulator::profile() const {
  obs::ShardProfile out;
  if (!config_.profile) return out;
  out.shards = shards_.size();
  out.threads = config_.threads;
  out.windows = windows_;
  out.messages = messages_;
  out.lookahead_s = config_.lookahead.to_seconds();
  out.lanes.reserve(shards_.size());
  for (const auto& shard : shards_) {
    obs::ShardLane lane;
    lane.events = shard->sim.events_executed();
    lane.run_s = shard->run_s;
    lane.barrier_wait_s = shard->barrier_wait_s;
    out.lanes.push_back(lane);
  }
  for (std::size_t src = 0; src < shards_.size(); ++src) {
    for (std::size_t dst = 0; dst < shards_.size(); ++dst) {
      const std::size_t cell = src * shards_.size() + dst;
      if (matrix_messages_[cell] == 0 && matrix_bytes_[cell] == 0) continue;
      out.matrix.push_back(obs::ShardMatrixCell{
          static_cast<std::uint32_t>(src), static_cast<std::uint32_t>(dst),
          matrix_messages_[cell], matrix_bytes_[cell]});
    }
  }
  out.samples = prof_samples_;
  return out;
}

void ShardedSimulator::merged_metrics_into(obs::MetricsRegistry& dst) const {
  for (const auto& shard : shards_) {
    obs::merge_registry(dst, shard->domain);
  }
}

std::string ShardedSimulator::merged_series_json(
    const std::string& source, const obs::SloMonitor* monitor) const {
  std::vector<const obs::TimeSeriesSampler*> samplers;
  for (const auto& shard : shards_) {
    if (shard->sampler != nullptr) samplers.push_back(shard->sampler.get());
  }
  // Engine series last: shard series keep priority on a (never
  // expected) duplicate name. sim.queue_depth is partition-invariant at
  // the sample grid, so it belongs in the compared merged document.
  if (engine_sampler_ != nullptr) samplers.push_back(engine_sampler_.get());
  return obs::merged_series_json(samplers, source, monitor);
}

const obs::TimeSeriesSampler* ShardedSimulator::shard_sampler(
    std::size_t shard) const {
  return shards_[shard]->sampler.get();
}

std::uint64_t ShardedSimulator::posts_clamped() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->posts_clamped;
  return total;
}

std::uint64_t ShardedSimulator::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->sim.events_executed();
  return total;
}

std::uint64_t ShardedSimulator::queue_resizes() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->sim.queue_resizes();
  return total;
}

void ShardedSimulator::set_metrics(obs::MetricsRegistry* registry,
                                   const std::string& prefix) {
  if (registry == nullptr) {
    m_windows_ = nullptr;
    m_messages_ = nullptr;
    m_posts_clamped_ = nullptr;
    m_events_executed_ = nullptr;
    m_queue_resizes_ = nullptr;
    m_shards_ = nullptr;
    m_threads_ = nullptr;
    m_max_exchange_ = nullptr;
    return;
  }
  m_windows_ = &registry->counter(prefix + "par.windows");
  m_messages_ = &registry->counter(prefix + "par.messages");
  m_posts_clamped_ = &registry->counter(prefix + "par.posts_clamped");
  m_events_executed_ = &registry->counter(prefix + "par.events_executed");
  m_queue_resizes_ = &registry->counter(prefix + "par.queue_resizes");
  m_shards_ = &registry->gauge(prefix + "par.shards");
  m_threads_ = &registry->gauge(prefix + "par.threads");
  m_max_exchange_ = &registry->gauge(prefix + "par.max_exchange");
  windows_flushed_ = windows_;
  messages_flushed_ = messages_;
  clamped_flushed_ = posts_clamped();
  events_flushed_ = events_executed();
  resizes_flushed_ = queue_resizes();
}

void ShardedSimulator::flush_metrics() {
  if (m_windows_ != nullptr) {
    m_windows_->inc(windows_ - windows_flushed_);
    windows_flushed_ = windows_;
  }
  if (m_messages_ != nullptr) {
    m_messages_->inc(messages_ - messages_flushed_);
    messages_flushed_ = messages_;
  }
  if (m_posts_clamped_ != nullptr) {
    const std::uint64_t clamped = posts_clamped();
    m_posts_clamped_->inc(clamped - clamped_flushed_);
    clamped_flushed_ = clamped;
  }
  if (m_events_executed_ != nullptr) {
    const std::uint64_t events = events_executed();
    m_events_executed_->inc(events - events_flushed_);
    events_flushed_ = events;
  }
  if (m_queue_resizes_ != nullptr) {
    const std::uint64_t resizes = queue_resizes();
    m_queue_resizes_->inc(resizes - resizes_flushed_);
    resizes_flushed_ = resizes;
  }
  if (m_shards_ != nullptr) {
    m_shards_->set(static_cast<double>(shards_.size()));
  }
  if (m_threads_ != nullptr) {
    m_threads_->set(static_cast<double>(config_.threads));
  }
  if (m_max_exchange_ != nullptr) {
    m_max_exchange_->set_max(static_cast<double>(max_exchange_));
  }
}

}  // namespace dlte::par
