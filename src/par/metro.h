// MetroScenario: the city-scale workload for the parallel runtime.
//
// Where ShardedTown models a street of full protocol islands (real EPC
// stubs, S1/X2 codecs, per-packet networks), MetroScenario asks the
// opposite question: how many dLTE APs can the engine carry? It scales
// the paper's deployment to a metro — ~10k APs, ~1M UEs — by spending
// events only where the answer needs them: every AP's UE population is
// one workload::UeCohort (attach waves in batches, bulk traffic as
// transport::FlowTrain aggregates), and the inter-AP coordination plane
// is one periodic load report to the ring neighbour through post().
//
// Observability is district-granular: APs group into contiguous
// districts, and all metrics live under "d<k>." prefixes. Districts —
// not APs — are the unit the block partition distributes over shards, so
// a district's registry (histograms included) always lives in exactly
// one shard and the obs::merge_registry bit-exactness contract holds at
// any shard count. The merged snapshot is therefore byte-identical for
// 1, 2, or 4 shards — the property bench_c10_metro double-runs and the
// perf CI compares.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/time.h"
#include "common/units.h"
#include "par/sharded_sim.h"

namespace dlte::par {

struct MetroConfig {
  int aps{10000};
  int ues_per_ap{100};
  // Metric granularity: contiguous AP blocks, "d<k>." prefixes. Also the
  // unit of partitioning (districts are block-partitioned over shards).
  int districts{100};
  std::size_t shards{1};
  std::size_t threads{0};  // 0 → one worker per shard.
  std::uint64_t seed{42};
  Duration horizon{Duration::seconds(8.0)};
  // UEs attach in stratified batches across this window.
  Duration attach_window{Duration::seconds(4.0)};
  int attach_batches{10};
  // Bulk volume each UE pulls once attached (0 disables traffic).
  std::uint64_t flow_bytes_per_ue{200 * 1024};
  // Per-UE share of the cell bottleneck for the aggregate flows.
  DataRate per_ue_rate{DataRate::mbps(25.0)};
  Duration flow_rtt{Duration::millis(20)};
  // Ring load-report cadence per AP (the cross-shard traffic).
  Duration report_interval{Duration::millis(500)};
  // One-way AP↔AP backbone latency — the runtime lookahead.
  Duration backbone_delay{Duration::millis(5)};
  // Telemetry cadence for the merged series; zero (default) disables —
  // at 10k APs the snapshot, not the series, is the compared artifact.
  Duration sample_interval{};
  // Enable the runtime self-profiling plane (DESIGN.md §14).
  bool profile{false};
  // Enable the determinism audit plane (DESIGN.md §15).
  bool audit{false};
  Duration audit_window{Duration::millis(250)};
  // Engine-sampler cadence (sim.queue_depth in the merged series); zero
  // falls back to sample_interval — set this alone to get the engine
  // series without paying for 10k-AP domain sampling.
  Duration engine_sample_interval{};
};

struct MetroResult {
  std::uint64_t ues_attached{0};
  std::uint64_t bytes_delivered{0};
  std::uint64_t flows_completed{0};
  std::uint64_t reports_rx{0};
  std::uint64_t windows{0};
  std::uint64_t messages{0};
  std::uint64_t events_executed{0};
  double sim_seconds{0.0};
};

class MetroScenario {
 public:
  explicit MetroScenario(MetroConfig config);
  MetroScenario(const MetroScenario&) = delete;
  MetroScenario& operator=(const MetroScenario&) = delete;
  ~MetroScenario();

  // Build (first call) and run to the configured horizon.
  MetroResult run();

  [[nodiscard]] ShardedSimulator& runtime() { return runtime_; }
  [[nodiscard]] const MetroConfig& config() const { return config_; }

  // Shard-count-invariant merged snapshot (valid after run()).
  [[nodiscard]] std::string metrics_json() const;
  [[nodiscard]] std::string series_json(const std::string& source) const;

  // District of an AP: contiguous blocks, pure function of the config.
  [[nodiscard]] std::size_t district_of(std::size_t ap) const;

 private:
  struct District;
  struct Cell;
  void build();

  MetroConfig config_;
  ShardedSimulator runtime_;
  std::vector<std::unique_ptr<District>> districts_;
  std::vector<std::unique_ptr<Cell>> cells_;
  bool built_{false};
};

}  // namespace dlte::par
