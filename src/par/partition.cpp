#include "par/partition.h"

#include <algorithm>
#include <numeric>

namespace dlte::par {

std::size_t shard_of_block(std::size_t item, std::size_t n_items,
                           std::size_t n_shards) {
  if (n_items == 0 || n_shards == 0) return 0;
  if (item >= n_items) item = n_items - 1;
  if (n_shards > n_items) n_shards = n_items;
  // item*S/N is monotone in item and yields block sizes within one of
  // each other (the classic balanced block formula).
  return item * n_shards / n_items;
}

std::size_t block_size(std::size_t shard, std::size_t n_items,
                       std::size_t n_shards) {
  if (n_items == 0 || n_shards == 0) return 0;
  if (n_shards > n_items) n_shards = n_items;
  if (shard >= n_shards) return 0;
  // First item of shard k is ceil(k*N/S).
  const std::size_t begin = (shard * n_items + n_shards - 1) / n_shards;
  const std::size_t end = ((shard + 1) * n_items + n_shards - 1) / n_shards;
  return end - begin;
}

std::vector<std::size_t> partition_by_position(const std::vector<double>& x,
                                               std::size_t n_shards) {
  const std::size_t n = x.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&x](std::size_t a, std::size_t b) { return x[a] < x[b]; });
  std::vector<std::size_t> shard(n, 0);
  for (std::size_t rank = 0; rank < n; ++rank) {
    shard[order[rank]] = shard_of_block(rank, n, n_shards);
  }
  return shard;
}

}  // namespace dlte::par
