// Topology partitioner: which shard owns which AP.
//
// The only property the determinism machinery needs from a partition is
// that it is a pure function of (item count, shard count) — never of
// thread timing. The block partition is additionally MONOTONE (shard
// index is non-decreasing in item index), which makes the ISSUE's
// (timestamp, source_shard, sequence) exchange ordering coincide with
// the shard-count-invariant (timestamp, source_endpoint, sequence) order
// actually used for injection. The position-aware variant keeps
// geographic neighbours (who exchange the most X2 traffic) on the same
// shard, minimising cross-shard messages.
#pragma once

#include <cstddef>
#include <vector>

namespace dlte::par {

// Contiguous block partition of items 0..n_items-1 over n_shards shards:
// balanced (shard sizes differ by at most one) and monotone.
[[nodiscard]] std::size_t shard_of_block(std::size_t item,
                                         std::size_t n_items,
                                         std::size_t n_shards);

// Number of items shard_of_block assigns to `shard`.
[[nodiscard]] std::size_t block_size(std::size_t shard, std::size_t n_items,
                                     std::size_t n_shards);

// Partition by 1-D position (APs along the paper's street deployment):
// rank items by (x, index) and block-partition the ranks, so each shard
// owns a contiguous stretch of geography. Returns shard per original
// index. Deterministic for identical inputs.
[[nodiscard]] std::vector<std::size_t> partition_by_position(
    const std::vector<double>& x, std::size_t n_shards);

}  // namespace dlte::par
