#include "par/town.h"

#include <algorithm>
#include <utility>

#include "core/enodeb.h"
#include "core/s1_fabric.h"
#include "epc/epc.h"
#include "lte/x2ap.h"
#include "net/network.h"
#include "obs/openmetrics.h"
#include "obs/snapshot.h"
#include "par/partition.h"
#include "ue/nas_client.h"

namespace dlte::par {

namespace {
// Protocol tag X2 PDUs carry on an island's own network. On the uplink
// leg (AP → egress portal) the protocol field instead carries the
// DESTINATION AP id — the portal is a remote node, so no protocol
// dispatch happens there and the field is free to address the peer.
constexpr std::uint16_t kX2Protocol = 0x00f2;
constexpr std::uint16_t kX2Kind = 1;

crypto::Key128 key_for(std::uint64_t imsi) {
  crypto::Key128 k{};
  for (std::size_t i = 0; i < 16; ++i) {
    k[i] = static_cast<std::uint8_t>(imsi * 3 + i);
  }
  return k;
}

const crypto::Block128 kOp = [] {
  crypto::Block128 op{};
  op[0] = 0xcd;
  return op;
}();
}  // namespace

// One AP and everything that lives with it: local core stub, S1 fabric,
// eNodeB, packet network with an egress portal, UEs. An island never
// touches another island's state — all inter-AP traffic is a par
// Message — which is what makes the partition a pure ownership split.
struct ShardedTown::Island {
  int index{0};
  std::size_t shard{0};
  std::string prefix;
  sim::Simulator* sim{nullptr};
  std::unique_ptr<net::Network> network;
  NodeId ap_node;
  NodeId xg_node;
  NodeId ig_node;
  std::unique_ptr<epc::EpcCore> core;
  std::unique_ptr<core::S1Fabric> fabric;
  std::unique_ptr<core::EnodeB> enb;
  std::vector<std::unique_ptr<ue::NasClient>> clients;
  std::vector<int> neighbors;

  obs::Counter* attach_completed{nullptr};
  obs::Counter* attach_failed{nullptr};
  obs::Histogram* attach_ms{nullptr};
  obs::Counter* x2_tx{nullptr};
  obs::Counter* x2_rx{nullptr};
  obs::Histogram* x2_rx_prb{nullptr};

  std::uint32_t attached{0};
};

ShardedTown::ShardedTown(TownConfig config)
    : config_(config), runtime_([&config] {
        ShardedConfig rc;
        rc.shards = config.shards;
        rc.threads = config.threads;
        rc.lookahead = config.backbone_delay;
        rc.sample_interval = config.sample_interval;
        rc.profile = config.profile;
        rc.audit = config.audit;
        rc.audit_window = config.audit_window;
        rc.engine_sample_interval = config.engine_sample_interval;
        return rc;
      }()) {}

ShardedTown::~ShardedTown() = default;

void ShardedTown::build() {
  const int n = config_.aps;
  std::uint64_t imsi = 9000;
  for (int i = 0; i < n; ++i) {
    auto island = std::make_unique<Island>();
    Island* isl = island.get();
    isl->index = i;
    isl->shard = shard_of_block(static_cast<std::size_t>(i),
                                static_cast<std::size_t>(n), config_.shards);
    isl->prefix = "ap" + std::to_string(i) + ".";
    isl->sim = &runtime_.shard_sim(isl->shard);
    obs::MetricsRegistry& domain = runtime_.shard_registry(isl->shard);

    // Scenario metrics: shard-unique names via the per-AP prefix (the
    // obs::merge_registry contract).
    isl->attach_completed = &domain.counter(isl->prefix + "attach.completed");
    isl->attach_failed = &domain.counter(isl->prefix + "attach.failed");
    isl->attach_ms = &domain.histogram(isl->prefix + "attach.ms");
    isl->x2_tx = &domain.counter(isl->prefix + "x2.tx");
    isl->x2_rx = &domain.counter(isl->prefix + "x2.rx");
    isl->x2_rx_prb = &domain.histogram(isl->prefix + "x2.rx_prb");

    // The island's own packet network: AP node, egress portal (remote),
    // ingress node for traffic arriving from peers.
    isl->network = std::make_unique<net::Network>(*isl->sim);
    isl->network->set_metrics(&domain, isl->prefix);
    isl->ap_node = isl->network->add_node("ap" + std::to_string(i));
    isl->xg_node = isl->network->add_remote_node(
        "xg" + std::to_string(i), [this, isl](net::Packet&& p) {
          // Uplink leg done: hand to the runtime. The protocol field
          // carries the destination AP id (see kX2Protocol note).
          runtime_.post(static_cast<EndpointId>(isl->index),
                        static_cast<EndpointId>(p.protocol),
                        config_.backbone_delay, kX2Kind,
                        std::move(p.payload));
        });
    isl->ig_node = isl->network->add_node("ig" + std::to_string(i));
    const net::LinkConfig local_link{DataRate::mbps(1000.0),
                                     Duration::micros(200)};
    isl->network->add_link(isl->ap_node, isl->xg_node, local_link);
    isl->network->add_link(isl->ig_node, isl->ap_node, local_link);
    isl->network->set_protocol_handler(
        isl->ap_node, kX2Protocol, [isl](net::Packet&& p) {
          isl->x2_rx->inc();
          const auto decoded = lte::decode_x2(p.payload);
          if (decoded.ok()) {
            if (const auto* load =
                    std::get_if<lte::X2LoadInformation>(&decoded.value())) {
              isl->x2_rx_prb->record(load->prb_utilization);
            }
          }
        });

    // Local EPC stub + eNodeB (the c4 per-site island pattern). RNG
    // derives from the SCENARIO seed and the AP index — never the shard —
    // so per-AP sequences survive any repartition.
    isl->core = std::make_unique<epc::EpcCore>(
        *isl->sim,
        epc::EpcConfig{.deployment = epc::CoreDeployment::kLocalStub,
                       .network_id = "dlte-ap-" + std::to_string(i)},
        sim::RngStream::derive(config_.seed, "town.core",
                               static_cast<std::uint64_t>(i)));
    isl->core->set_metrics(&domain, isl->prefix);
    isl->fabric = std::make_unique<core::S1Fabric>(*isl->sim,
                                                   isl->core->mme());
    const CellId cell{static_cast<std::uint32_t>(i + 1)};
    isl->enb = std::make_unique<core::EnodeB>(*isl->sim, *isl->fabric,
                                              core::EnbConfig{.cell = cell});
    core::EnodeB* enb = isl->enb.get();
    isl->fabric->register_enb_direct(
        cell, Duration::micros(50),
        [enb](const lte::S1apMessage& m) { enb->on_s1ap(m); });

    // Ring neighbours (deduplicated for tiny towns).
    if (n > 1) {
      const int left = (i + n - 1) % n;
      const int right = (i + 1) % n;
      isl->neighbors.push_back(left);
      if (right != left) isl->neighbors.push_back(right);
    }

    // Cross-shard delivery: replay the payload through the island's
    // ingress path so it pays local link latency like any other packet.
    runtime_.register_endpoint(
        static_cast<EndpointId>(i), isl->shard, [isl](const Message& m) {
          net::Packet p;
          p.src = isl->ig_node;
          p.dst = isl->ap_node;
          p.size_bytes = static_cast<int>(m.payload.size());
          p.protocol = kX2Protocol;
          p.payload = m.payload;
          isl->network->send(std::move(p));
        });

    const std::uint32_t attach_label = isl->sim->label("town.attach");
    const std::uint32_t report_label = isl->sim->label("town.x2_report");

    // Staggered attaches from the per-AP stream, drawn in UE order.
    sim::RngStream attach_rng = sim::RngStream::derive(
        config_.seed, "town.attach", static_cast<std::uint64_t>(i));
    const double window_s = config_.horizon.to_seconds() * 0.6;
    for (int u = 0; u < config_.ues_per_ap; ++u) {
      ++imsi;
      isl->core->hss().provision(Imsi{imsi}, key_for(imsi), kOp);
      ue::SimProfile profile{Imsi{imsi}, key_for(imsi),
                             crypto::derive_opc(key_for(imsi), kOp), true,
                             "t"};
      isl->clients.push_back(std::make_unique<ue::NasClient>(
          ue::Usim{profile}, "dlte-ap-" + std::to_string(i)));
      ue::NasClient* client = isl->clients.back().get();
      isl->sim->schedule(
          Duration::seconds(attach_rng.uniform(0.0, window_s)),
          [isl, client] {
            isl->enb->attach_ue(*client, [isl](core::AttachOutcome o) {
              if (o.success) {
                isl->attach_completed->inc();
                isl->attach_ms->record(o.elapsed.to_millis());
                ++isl->attached;
              } else {
                isl->attach_failed->inc();
              }
            });
          },
          attach_label);
    }

    // Periodic X2 load reports to the ring neighbours.
    if (!isl->neighbors.empty()) {
      const double capacity = std::max(1, config_.ues_per_ap);
      isl->sim->every(
          config_.report_interval,
          [isl, capacity] {
        const lte::X2Message report = lte::X2LoadInformation{
            isl->enb->cell(),
            std::min(1.0, static_cast<double>(isl->attached) / capacity),
            isl->attached};
        const std::vector<std::uint8_t> bytes = lte::encode_x2(report);
        const int wire = lte::x2_wire_size(report);
        for (const int neighbor : isl->neighbors) {
          net::Packet p;
          p.src = isl->ap_node;
          p.dst = isl->xg_node;
          p.size_bytes = wire;
          p.protocol = static_cast<std::uint16_t>(neighbor);
          p.payload = bytes;
          isl->network->send(std::move(p));
          isl->x2_tx->inc();
        }
          },
          report_label);
    }

    islands_.push_back(std::move(island));
  }
  built_ = true;
}

TownResult ShardedTown::run() {
  if (!built_) build();
  runtime_.run_until(TimePoint{} + config_.horizon);
  TownResult result;
  for (const auto& island : islands_) {
    result.attaches_completed += island->attach_completed->value();
    result.attaches_failed += island->attach_failed->value();
    result.x2_reports_rx += island->x2_rx->value();
  }
  result.windows = runtime_.windows_run();
  result.messages = runtime_.messages_exchanged();
  result.sim_seconds = config_.horizon.to_seconds();
  return result;
}

std::string ShardedTown::metrics_json() const {
  obs::MetricsRegistry merged;
  runtime_.merged_metrics_into(merged);
  return obs::MetricsSnapshot{merged}.to_json();
}

std::string ShardedTown::series_json(const std::string& source) const {
  return runtime_.merged_series_json(source);
}

std::string ShardedTown::openmetrics_text() const {
  obs::MetricsRegistry merged;
  runtime_.merged_metrics_into(merged);
  return obs::OpenMetricsExporter::render(merged);
}

}  // namespace dlte::par
