// ShardedTown: the reference scenario for the parallel runtime.
//
// A street of N dLTE APs (the paper's neighborhood deployment), each a
// self-contained island — local EPC stub, S1 fabric, eNodeB, its own
// packet network with an egress portal — partitioned over shards by
// geography. UEs attach at seeded staggered times; every AP periodically
// ships an X2 LoadInformation report to its ring neighbours through the
// egress portal, so the X2-over-Internet coordination plane (§4.3) is
// exactly the cross-shard traffic. All scenario metrics live in the
// shard domain registries under per-AP prefixes ("ap3.attach.ms"), which
// is what makes the merged artifacts byte-identical at any shard count —
// the property bench_c9 and the CI par-determinism gate verify.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/time.h"
#include "par/sharded_sim.h"

namespace dlte::par {

struct TownConfig {
  int aps{8};
  int ues_per_ap{10};
  std::size_t shards{1};
  std::size_t threads{0};  // 0 → one worker per shard.
  std::uint64_t seed{42};
  Duration horizon{Duration::seconds(5.0)};
  // X2 load-report cadence per AP.
  Duration report_interval{Duration::millis(100)};
  // One-way AP↔AP Internet latency — also the runtime lookahead, so it
  // bounds the window width.
  Duration backbone_delay{Duration::millis(5)};
  // Telemetry cadence for the merged series document; zero disables.
  Duration sample_interval{Duration::millis(500)};
  // Enable the runtime self-profiling plane (DESIGN.md §14).
  bool profile{false};
  // Enable the determinism audit plane (DESIGN.md §15).
  bool audit{false};
  Duration audit_window{Duration::millis(250)};
  // Engine-sampler cadence (sim.queue_depth in the merged series); zero
  // falls back to sample_interval.
  Duration engine_sample_interval{};
};

struct TownResult {
  std::uint64_t attaches_completed{0};
  std::uint64_t attaches_failed{0};
  std::uint64_t x2_reports_rx{0};
  std::uint64_t windows{0};
  std::uint64_t messages{0};
  double sim_seconds{0.0};
};

class ShardedTown {
 public:
  explicit ShardedTown(TownConfig config);
  ShardedTown(const ShardedTown&) = delete;
  ShardedTown& operator=(const ShardedTown&) = delete;
  ~ShardedTown();

  // Build (first call) and run to the configured horizon.
  TownResult run();

  [[nodiscard]] ShardedSimulator& runtime() { return runtime_; }

  // Shard-count-invariant artifacts (valid after run()):
  [[nodiscard]] std::string metrics_json() const;
  [[nodiscard]] std::string series_json(const std::string& source) const;
  [[nodiscard]] std::string openmetrics_text() const;

 private:
  struct Island;
  void build();

  TownConfig config_;
  ShardedSimulator runtime_;
  std::vector<std::unique_ptr<Island>> islands_;
  bool built_{false};
};

}  // namespace dlte::par
