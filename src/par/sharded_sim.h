// Sharded parallel simulation runtime (DESIGN.md §11).
//
// A ShardedSimulator owns N independent sim::Simulator instances
// ("shards") and advances them together in conservative bounded-lookahead
// windows: every shard runs [t, t+L] in parallel, then all shards stop at
// a barrier where cross-shard messages are exchanged, then the next
// window starts. The window width L is the minimum latency of any
// cross-shard interaction (post() refuses shorter delays), so no message
// posted during a window can be due inside it — each shard can run its
// window without hearing from the others, the classic conservative-PDES
// lookahead argument.
//
// Determinism is stronger than "same seed, same thread count": a run is
// byte-identical at ANY shard count and ANY worker-thread count, because
//   1. every cross-endpoint interaction goes through post()/Message even
//      when both endpoints share a shard, so the event structure does
//      not depend on the partition;
//   2. the window grid is fixed multiples of L from t=0 — never derived
//      from the partition;
//   3. messages collected at a barrier are injected in the global
//      (deliver_at, src endpoint, per-source seq) order, which no shard
//      or thread identity can perturb;
//   4. per-shard observability (domain registries, series samplers) uses
//      shard-unique metric names (per-AP prefixes) and merges by name.
//
// Threading model (ThreadSanitizer-clean by construction): one worker
// pool; within a window each shard is claimed by exactly one worker via
// an atomic counter and touched by no one else; the coordinator only
// inspects shard state between windows, with the barrier mutex ordering
// every hand-off. post() appends only to the posting shard's own outbox.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/pool.h"
#include "common/time.h"
#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/series.h"
#include "obs/slo.h"
#include "par/message.h"
#include "sim/simulator.h"

namespace dlte::par {

struct ShardedConfig {
  std::size_t shards{1};
  // Worker threads; 0 → one per shard. 1 runs shards serially on the
  // caller's thread (no pool), useful under sanitizers and as the
  // determinism reference.
  std::size_t threads{0};
  // Conservative lookahead L: the window width, and the minimum delay
  // post() accepts. Must be ≤ the scenario's minimum cross-endpoint
  // latency (net::Network::min_remote_link_delay() is the query).
  Duration lookahead{Duration::millis(1)};
  // Simulated-time cadence for the coordinator-driven series samplers;
  // zero disables sampling.
  Duration sample_interval{};
  // Enable the self-profiling plane (DESIGN.md §14): per-shard event
  // attribution (deterministic) plus wall-clock lane timing, per-window
  // samples, and the shard-pair message matrix (not deterministic).
  bool profile{false};
  // Enable the determinism audit plane (DESIGN.md §15): per-shard
  // DigestTimelines on the engine execute hook, the cross-shard message
  // ledger at every barrier exchange, and per-window metric-state
  // digests. audit_window is the digest window width on the t=0 grid.
  bool audit{false};
  Duration audit_window{Duration::millis(250)};
  // Simulated-time cadence for the coordinator's ENGINE sampler (the
  // sim.queue_depth series in the merged document); zero falls back to
  // sample_interval, so scenarios that sample domain metrics get the
  // engine series for free and metro-scale runs can enable it alone.
  Duration engine_sample_interval{};
};

class ShardedSimulator {
 public:
  // Invoked inside the OWNING shard's simulator at msg.deliver_at.
  using Handler = std::function<void(const Message&)>;

  explicit ShardedSimulator(ShardedConfig config);
  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;
  ~ShardedSimulator();

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] Duration lookahead() const { return config_.lookahead; }

  // The shard's engine and its domain metrics registry (scenario metrics
  // live here under shard-unique names; see merged_metrics_into).
  [[nodiscard]] sim::Simulator& shard_sim(std::size_t shard);
  [[nodiscard]] obs::MetricsRegistry& shard_registry(std::size_t shard);

  // Declare that endpoint `ep` lives on `shard`; cross-shard messages
  // addressed to it run `handler` there. Call before run_until().
  void register_endpoint(EndpointId ep, std::size_t shard, Handler handler);
  [[nodiscard]] std::size_t owner_of(EndpointId ep) const;

  // Post a message from `src` (must be called from the owning shard's
  // event context, or before the run starts). Delivery is at
  // now + max(delay, lookahead); a shorter delay is clamped up and
  // counted under par.posts_clamped.
  void post(EndpointId src, EndpointId dst, Duration delay,
            std::uint16_t kind, std::vector<std::uint8_t> payload);

  // Advance every shard to `horizon` through the barrier-window loop.
  // Callable repeatedly; the window grid stays anchored at t=0.
  void run_until(TimePoint horizon);

  [[nodiscard]] TimePoint now() const { return now_; }

  // --- Merged, shard-count-invariant observability -------------------
  // Fold every shard's domain registry into `dst` (obs::merge_registry
  // naming contract applies).
  void merged_metrics_into(obs::MetricsRegistry& dst) const;
  // One dlte-series-v1 document over all shards' samplers (empty
  // samplers when sampling is disabled). An optional SloMonitor embeds
  // its rules/alerts/health sections — it must watch a single shard's
  // domain registry so the alert timeline is partition-invariant.
  [[nodiscard]] std::string merged_series_json(
      const std::string& source,
      const obs::SloMonitor* monitor = nullptr) const;
  [[nodiscard]] const obs::TimeSeriesSampler* shard_sampler(
      std::size_t shard) const;

  // --- Parallel-runtime metrics (NOT shard-count invariant) ----------
  // par.windows, par.messages, par.posts_clamped counters plus
  // par.shards / par.threads / par.max_exchange gauges, flushed at the
  // end of each run_until. These describe the runtime itself, so they
  // belong in a bench's harness registry, never in the compared
  // artifacts.
  void set_metrics(obs::MetricsRegistry* registry,
                   const std::string& prefix = "");

  // --- Determinism audit plane (config_.audit) -----------------------
  [[nodiscard]] bool auditing() const { return config_.audit; }
  // Assemble the dlte-audit-v1 document: the partition-invariant merged
  // section (windowed event/message multiset digests + metric-state
  // digests) plus the per-shard chains and the shard-pair ledger.
  // Zeroed doc when auditing is off.
  [[nodiscard]] obs::AuditDoc audit_doc() const;
  // TEST HOOK for the divergence-localization self-test: hold the first
  // message destined for `dst_shard` with deliver_at >= `after` out of
  // its barrier exchange and inject it one barrier late — the classic
  // conservative-PDES bug of a message missing its window. Delivery
  // still lands at deliver_at, so the scenario's metrics, series, and
  // OpenMetrics artifacts stay byte-identical — the classic
  // observability plane is blind to it. The audit plane is not: the
  // destination engine assigns the delivery's tie-break seq late,
  // shifting every subsequent seq in that shard (the order-sensitive
  // chains and per-label digests split from the delivery's window on),
  // and the re-bound execution order of same-timestamp work cascades
  // into downstream event times (the merged event digests corroborate
  // the window). One-shot: disarms after capturing. The trigger needs
  // at least one barrier between `after` + lookahead and the horizon or
  // the held message is silently dropped (loudly visible in metrics).
  void inject_exchange_reorder(TimePoint after, std::size_t dst_shard);

  // --- Self-profiling plane (config_.profile) ------------------------
  [[nodiscard]] bool profiling() const { return config_.profile; }
  // Fold every shard's event-attribution profiler into `dst` by label
  // name. The merged result is shard-count invariant (the determinism
  // contract above makes the event structure partition-invariant), so
  // CI byte-compares its JSON across shard counts. No-op when profiling
  // is off.
  void merged_profiler_into(obs::EventProfiler& dst) const;
  // The wall-clock side: lanes, load matrix, window samples. Values vary
  // run to run — never byte-compare this. Zeroed struct when profiling
  // is off.
  [[nodiscard]] obs::ShardProfile profile() const;

  [[nodiscard]] std::uint64_t windows_run() const { return windows_; }
  [[nodiscard]] std::uint64_t messages_exchanged() const { return messages_; }
  [[nodiscard]] std::uint64_t posts_clamped() const;
  // Total events dispatched across every shard engine. The event
  // structure is partition-invariant (every cross-endpoint interaction is
  // a posted Message), so this total is too — benches divide it by wall
  // time for the events/sec the perf CI gates. Flushed to
  // `par.events_executed` when metrics are attached.
  [[nodiscard]] std::uint64_t events_executed() const;
  // Calendar-queue recalibrations summed over shard engines. Resize
  // points depend on per-shard queue sizes, so this is deterministic
  // for a FIXED configuration but NOT partition-invariant — it flushes
  // to `par.queue_resizes` in the runtime metrics, never into the
  // cross-shard-count compared artifacts.
  [[nodiscard]] std::uint64_t queue_resizes() const;

 private:
  struct Endpoint {
    std::size_t shard{0};
    Handler handler;
  };
  struct Shard;
  // One injected cross-shard delivery, pooled per destination shard: the
  // metro scenario injects hundreds of thousands of these per run, and a
  // pooled record (lambda captures one pointer) costs no heap traffic
  // where the previous shared_ptr cost two allocations per message. The
  // pool is touched by the coordinator at barriers and by the owning
  // shard's worker inside windows — phases that never overlap.
  struct Delivery {
    Message msg;
    const Endpoint* endpoint{nullptr};
    Shard* home{nullptr};
  };
  struct Shard {
    sim::Simulator sim;
    obs::MetricsRegistry domain;
    std::unique_ptr<obs::TimeSeriesSampler> sampler;
    std::vector<Message> outbox;
    // Per-source post counters (sources owned by this shard only).
    std::unordered_map<EndpointId, std::uint64_t> next_seq;
    std::uint64_t posts_clamped{0};
    ObjectPool<Delivery> deliveries{256};
    // Profiling state (null/zero unless config_.profile). window_run_s
    // is written by the worker that owns the shard inside the window and
    // read by the coordinator after the barrier — never concurrently.
    std::unique_ptr<obs::EventProfiler> profiler;
    // Audit timeline (null unless config_.audit); fed by the owning
    // worker inside windows, read by the coordinator after the run.
    std::unique_ptr<obs::DigestTimeline> auditor;
    std::uint32_t delivery_label{0};
    double window_run_s{0.0};
    double run_s{0.0};
    double barrier_wait_s{0.0};
  };

  void run_window(TimePoint end);
  void worker_loop();
  // Roll the finished window's wall time into lanes and samples.
  void record_profile_window(TimePoint end, double window_wall_s);
  // Collect all outboxes, sort by message_order, inject at the barrier.
  void exchange();
  void emit_samples(TimePoint up_to);
  // Seal audit windows whose close time the barrier at `end` crossed:
  // the per-window metric-state digest is taken at the first barrier at
  // or after the close — a partition-invariant point of the run.
  void audit_tick(TimePoint end);
  void flush_metrics();

  ShardedConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unordered_map<EndpointId, Endpoint> endpoints_;
  TimePoint now_{};
  TimePoint next_sample_{};
  std::uint64_t windows_{0};
  std::uint64_t messages_{0};
  std::uint64_t max_exchange_{0};

  // Audit plane (null/empty unless config_.audit).
  std::unique_ptr<obs::MessageLedger> ledger_;
  std::vector<obs::AuditDoc::MetricWindow> metric_windows_;
  TimePoint next_audit_boundary_{};
  bool inject_armed_{false};
  TimePoint inject_after_{};
  std::size_t inject_dst_{0};
  std::unique_ptr<Message> inject_held_;

  // Coordinator-owned engine registry + sampler: the global
  // sim.queue_depth gauge (sum of pending events at the sample grid —
  // partition-invariant at barriers) sampled into the merged series.
  obs::MetricsRegistry engine_domain_;
  std::unique_ptr<obs::TimeSeriesSampler> engine_sampler_;
  obs::Gauge* engine_queue_depth_{nullptr};
  Duration engine_interval_{};
  TimePoint next_engine_sample_{};

  // Shard-pair load matrix (messages/bytes), dense S×S, profiling only.
  std::vector<std::uint64_t> matrix_messages_;
  std::vector<std::uint64_t> matrix_bytes_;
  // Per-window samples, kept bounded: when the buffer hits the cap every
  // other sample is dropped and the stride doubles — deterministic in
  // which windows are sampled, wall-clock only in what they contain.
  static constexpr std::size_t kMaxProfileSamples = 512;
  std::vector<obs::ShardWindowSample> prof_samples_;
  std::uint64_t sample_stride_{1};

  // Worker pool (empty when config_.threads == 1).
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t generation_{0};
  std::size_t done_count_{0};
  TimePoint window_end_{};
  bool shutdown_{false};
  std::atomic<std::size_t> next_shard_{0};

  obs::Counter* m_windows_{nullptr};
  obs::Counter* m_messages_{nullptr};
  obs::Counter* m_posts_clamped_{nullptr};
  obs::Counter* m_events_executed_{nullptr};
  obs::Counter* m_queue_resizes_{nullptr};
  obs::Gauge* m_shards_{nullptr};
  obs::Gauge* m_threads_{nullptr};
  obs::Gauge* m_max_exchange_{nullptr};
  std::uint64_t windows_flushed_{0};
  std::uint64_t messages_flushed_{0};
  std::uint64_t clamped_flushed_{0};
  std::uint64_t events_flushed_{0};
  std::uint64_t resizes_flushed_{0};
};

}  // namespace dlte::par
