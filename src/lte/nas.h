// NAS (Non-Access Stratum) messages: the UE ↔ core control dialogue.
//
// This is the protocol a standard handset speaks regardless of who runs
// the core — which is exactly the compatibility constraint dLTE's local
// core stub must honour (§4.1: "the AP must perform all functions the
// client expects from a standard EPC"). The subset implemented covers
// attach, EPS-AKA mutual authentication, security mode, session setup and
// detach. Wire format is a simplified but fully round-trippable encoding.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "crypto/milenage.h"

namespace dlte::lte {

// AUTN = SQN⊕AK (6) || AMF (2) || MAC-A (8), per TS 33.401.
struct Autn {
  std::array<std::uint8_t, 6> sqn_xor_ak{};
  crypto::Amf16 amf{};
  crypto::Mac64 mac_a{};
};

struct AttachRequest {
  Imsi imsi;  // Cleartext IMSI attach (GUTI attach via tmsi when nonzero).
  Tmsi tmsi{0};
};

struct AuthenticationRequest {
  crypto::Rand128 rand{};
  Autn autn{};
};

struct AuthenticationResponse {
  crypto::Res64 res{};
};

struct AuthenticationReject {};

struct SecurityModeCommand {
  std::uint8_t integrity_algorithm{1};  // EIA1-like.
  std::uint8_t ciphering_algorithm{1};  // EEA1-like.
};

struct SecurityModeComplete {};

struct AttachAccept {
  Tmsi tmsi;
  std::uint32_t ue_ip{0};     // Assigned IPv4 (PDN address).
  BearerId default_bearer{5};
};

struct AttachComplete {};

struct DetachRequest {};

struct AttachReject {
  std::uint8_t cause{0};
};

// ECM-idle → connected transition in response to paging (or uplink data).
struct ServiceRequest {
  Tmsi tmsi;
};

using NasMessage =
    std::variant<AttachRequest, AuthenticationRequest, AuthenticationResponse,
                 AuthenticationReject, SecurityModeCommand,
                 SecurityModeComplete, AttachAccept, AttachComplete,
                 DetachRequest, AttachReject, ServiceRequest>;

[[nodiscard]] std::vector<std::uint8_t> encode_nas(const NasMessage& message);
[[nodiscard]] Result<NasMessage> decode_nas(
    std::span<const std::uint8_t> bytes);

// Human-readable message name, for traces and tests.
[[nodiscard]] const char* nas_message_name(const NasMessage& message);

// One-line description with the salient fields (IMSI, cause, UE IP, …)
// — what span annotations record so a trace shows *which* NAS exchange
// happened, not just that one did.
[[nodiscard]] std::string nas_brief(const NasMessage& message);

}  // namespace dlte::lte
