// GTP: the tunneling protocol between radio and core.
//
// GTP-U carries user IP packets through the access network; GTP-C (here a
// minimal Create/Delete Session pair) sets the tunnels up. In telecom LTE
// every user packet is GTP-encapsulated all the way to the remote P-GW —
// the "trombone" of Fig. 1; in dLTE the tunnel terminates a few
// centimetres away in the AP's local core stub, and the encapsulation
// overhead + detour this module models is exactly what experiment F1
// quantifies.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/result.h"

namespace dlte::lte {

// GTP-U v1 header (simplified: no extension headers).
struct GtpUHeader {
  Teid teid;
  std::uint16_t length{0};      // Payload bytes.
  std::uint16_t sequence{0};
};

inline constexpr int kGtpUHeaderBytes = 12;
// Full per-packet tunnel overhead on the wire: outer IP + UDP + GTP-U.
inline constexpr int kGtpTunnelOverheadBytes = 20 + 8 + kGtpUHeaderBytes;

[[nodiscard]] std::vector<std::uint8_t> encode_gtpu(const GtpUHeader& h);
[[nodiscard]] Result<GtpUHeader> decode_gtpu(
    std::span<const std::uint8_t> bytes);

// One-line "teid=<t> seq=<s> len=<l>" description for span annotations.
[[nodiscard]] std::string gtpu_brief(const GtpUHeader& h);

// GTP-C session management (S11/S5 collapsed).
struct CreateSessionRequest {
  Imsi imsi;
  BearerId bearer{5};
  Teid uplink_teid;    // Where the S-GW wants uplink traffic.
};

struct CreateSessionResponse {
  Teid downlink_teid;  // Where the eNodeB should send... (mirror).
  std::uint32_t ue_ip{0};
};

struct DeleteSessionRequest {
  Teid teid;
};

[[nodiscard]] std::vector<std::uint8_t> encode_gtpc_create_req(
    const CreateSessionRequest& m);
[[nodiscard]] Result<CreateSessionRequest> decode_gtpc_create_req(
    std::span<const std::uint8_t> bytes);
[[nodiscard]] std::vector<std::uint8_t> encode_gtpc_create_resp(
    const CreateSessionResponse& m);
[[nodiscard]] Result<CreateSessionResponse> decode_gtpc_create_resp(
    std::span<const std::uint8_t> bytes);

}  // namespace dlte::lte
