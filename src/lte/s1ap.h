// S1AP: the eNodeB ↔ MME control interface.
//
// In telecom LTE these messages cross the backhaul to a distant core; in
// dLTE the same dialogue happens in-process between the eNodeB and the
// AP's local core stub (§4.1). Using one codec for both deployments keeps
// the architectural comparison honest: the *protocol work* is identical,
// only the distance differs.
#pragma once

#include <cstdint>
#include <span>
#include <variant>
#include <vector>

#include "common/ids.h"
#include "common/result.h"

namespace dlte::lte {

// Carries a NAS PDU from the eNodeB toward the MME (initial attach).
struct InitialUeMessage {
  EnbUeId enb_ue_id;
  CellId cell;
  std::vector<std::uint8_t> nas_pdu;
};

struct UplinkNasTransport {
  EnbUeId enb_ue_id;
  MmeUeId mme_ue_id;
  std::vector<std::uint8_t> nas_pdu;
};

struct DownlinkNasTransport {
  EnbUeId enb_ue_id;
  MmeUeId mme_ue_id;
  std::vector<std::uint8_t> nas_pdu;
};

// MME → eNodeB: establish the radio-side context and the S1-U tunnel.
struct InitialContextSetupRequest {
  EnbUeId enb_ue_id;
  MmeUeId mme_ue_id;
  Teid sgw_uplink_teid;  // Where the eNodeB sends uplink GTP-U.
  std::vector<std::uint8_t> security_key;  // K_eNB.
};

struct InitialContextSetupResponse {
  EnbUeId enb_ue_id;
  MmeUeId mme_ue_id;
  Teid enb_downlink_teid;  // Where the S-GW sends downlink GTP-U.
};

struct UeContextReleaseCommand {
  EnbUeId enb_ue_id;
  MmeUeId mme_ue_id;
  std::uint8_t cause{0};
};

// MME → eNodeB: wake an ECM-idle UE for pending downlink traffic.
struct Paging {
  Tmsi tmsi;
};

using S1apMessage =
    std::variant<InitialUeMessage, UplinkNasTransport, DownlinkNasTransport,
                 InitialContextSetupRequest, InitialContextSetupResponse,
                 UeContextReleaseCommand, Paging>;

[[nodiscard]] std::vector<std::uint8_t> encode_s1ap(const S1apMessage& m);
[[nodiscard]] Result<S1apMessage> decode_s1ap(
    std::span<const std::uint8_t> bytes);

}  // namespace dlte::lte
