// PDCP: sequence numbering, integrity protection, duplicate discard.
//
// Sits above RLC in the LTE user/control plane. Each PDU carries a
// sequence number and a MAC-I computed with HMAC-SHA-256 (truncated to
// 32 bits, EIA-style) under a key from the EPS hierarchy
// (crypto/key_derivation.h). In dLTE the integrity key is scoped to one
// AP's session — a PDU forged or replayed by a third party fails
// verification even though the subscriber's long-term key is published
// (§4.2: openness costs confidentiality against the AP, not integrity
// against everyone else).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/result.h"
#include "crypto/sha256.h"

namespace dlte::lte {

using PdcpKey = std::array<std::uint8_t, 16>;
using MacI = std::array<std::uint8_t, 4>;

struct PdcpPdu {
  std::uint32_t sn{0};
  std::vector<std::uint8_t> payload;
  MacI mac_i{};
};

[[nodiscard]] std::vector<std::uint8_t> encode_pdcp_pdu(const PdcpPdu& pdu);
[[nodiscard]] Result<PdcpPdu> decode_pdcp_pdu(
    std::span<const std::uint8_t> bytes);

// MAC-I over (sn ‖ payload) with the session integrity key.
[[nodiscard]] MacI compute_mac_i(const PdcpKey& key, std::uint32_t sn,
                                 std::span<const std::uint8_t> payload);

class PdcpTransmitter {
 public:
  explicit PdcpTransmitter(PdcpKey key) : key_(key) {}

  [[nodiscard]] PdcpPdu protect(std::vector<std::uint8_t> sdu);
  [[nodiscard]] std::uint32_t next_sn() const { return next_sn_; }

 private:
  PdcpKey key_;
  std::uint32_t next_sn_{0};
};

class PdcpReceiver {
 public:
  explicit PdcpReceiver(PdcpKey key) : key_(key) {}

  // Verifies integrity and discards duplicates/replays. Returns the SDU
  // for fresh, authentic PDUs.
  [[nodiscard]] Result<std::vector<std::uint8_t>> receive(const PdcpPdu& pdu);

  [[nodiscard]] std::uint64_t integrity_failures() const {
    return integrity_failures_;
  }
  [[nodiscard]] std::uint64_t replays_discarded() const {
    return replays_;
  }

 private:
  PdcpKey key_;
  std::uint32_t highest_delivered_{0};
  bool anything_delivered_{false};
  std::vector<bool> seen_;  // Indexed by SN (widened space).
  std::uint64_t integrity_failures_{0};
  std::uint64_t replays_{0};
};

}  // namespace dlte::lte
