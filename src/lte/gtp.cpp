#include "lte/gtp.h"

#include "common/bytes.h"

namespace dlte::lte {

std::vector<std::uint8_t> encode_gtpu(const GtpUHeader& h) {
  ByteWriter w;
  w.u8(0x32);  // Version 1, PT=1, S=1.
  w.u8(0xff);  // Message type: G-PDU.
  w.u16(h.length);
  w.u32(h.teid.value());
  w.u16(h.sequence);
  w.u16(0);  // N-PDU + next extension (unused).
  return w.take();
}

Result<GtpUHeader> decode_gtpu(std::span<const std::uint8_t> bytes) {
  ByteReader r{bytes};
  auto flags = r.u8();
  if (!flags) return Err{flags.error()};
  if ((*flags >> 5) != 1) return fail("unsupported GTP version");
  auto type = r.u8();
  if (!type) return Err{type.error()};
  if (*type != 0xff) return fail("not a G-PDU");
  GtpUHeader h;
  auto len = r.u16();
  if (!len) return Err{len.error()};
  h.length = *len;
  auto teid = r.u32();
  if (!teid) return Err{teid.error()};
  h.teid = Teid{*teid};
  auto seq = r.u16();
  if (!seq) return Err{seq.error()};
  h.sequence = *seq;
  return h;
}

std::vector<std::uint8_t> encode_gtpc_create_req(
    const CreateSessionRequest& m) {
  ByteWriter w;
  w.u8(0x20);  // Create Session Request.
  w.u64(m.imsi.value());
  w.u8(m.bearer.value());
  w.u32(m.uplink_teid.value());
  return w.take();
}

Result<CreateSessionRequest> decode_gtpc_create_req(
    std::span<const std::uint8_t> bytes) {
  ByteReader r{bytes};
  auto type = r.u8();
  if (!type) return Err{type.error()};
  if (*type != 0x20) return fail("not a Create Session Request");
  auto imsi = r.u64();
  if (!imsi) return Err{imsi.error()};
  auto bearer = r.u8();
  if (!bearer) return Err{bearer.error()};
  auto teid = r.u32();
  if (!teid) return Err{teid.error()};
  return CreateSessionRequest{Imsi{*imsi}, BearerId{*bearer}, Teid{*teid}};
}

std::vector<std::uint8_t> encode_gtpc_create_resp(
    const CreateSessionResponse& m) {
  ByteWriter w;
  w.u8(0x21);  // Create Session Response.
  w.u32(m.downlink_teid.value());
  w.u32(m.ue_ip);
  return w.take();
}

Result<CreateSessionResponse> decode_gtpc_create_resp(
    std::span<const std::uint8_t> bytes) {
  ByteReader r{bytes};
  auto type = r.u8();
  if (!type) return Err{type.error()};
  if (*type != 0x21) return fail("not a Create Session Response");
  auto teid = r.u32();
  if (!teid) return Err{teid.error()};
  auto ip = r.u32();
  if (!ip) return Err{ip.error()};
  return CreateSessionResponse{Teid{*teid}, *ip};
}

std::string gtpu_brief(const GtpUHeader& h) {
  return "teid=" + std::to_string(h.teid.value()) +
         " seq=" + std::to_string(h.sequence) +
         " len=" + std::to_string(h.length);
}

}  // namespace dlte::lte
