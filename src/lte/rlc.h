// RLC Acknowledged Mode: segmentation, reassembly, and ARQ.
//
// The layer between PDCP and MAC in the LTE user plane. The transmitter
// segments SDUs into link-sized PDUs and keeps them until acknowledged;
// the receiver reassembles in order and reports cumulative ACK + NACK
// lists in STATUS PDUs. This is the machinery under the §3.2 reliability
// story: HARQ catches most losses in milliseconds, RLC-AM catches the
// residue.
//
// Simplifications vs TS 36.322: sequence numbers are a widened 32-bit
// space (no modulus window management), and polling is caller-driven
// (ask for a status whenever the MAC gives an opportunity).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "common/result.h"

namespace dlte::lte {

struct RlcPdu {
  std::uint32_t sn{0};
  bool last_of_sdu{false};  // Marks an SDU boundary for reassembly.
  std::vector<std::uint8_t> payload;
};

struct RlcStatus {
  std::uint32_t ack_sn{0};  // All SNs below this are received.
  std::vector<std::uint32_t> nacks;  // Missing SNs below some seen SN.
};

[[nodiscard]] std::vector<std::uint8_t> encode_rlc_pdu(const RlcPdu& pdu);
[[nodiscard]] Result<RlcPdu> decode_rlc_pdu(
    std::span<const std::uint8_t> bytes);
[[nodiscard]] std::vector<std::uint8_t> encode_rlc_status(
    const RlcStatus& status);
[[nodiscard]] Result<RlcStatus> decode_rlc_status(
    std::span<const std::uint8_t> bytes);

class RlcTransmitter {
 public:
  explicit RlcTransmitter(std::size_t pdu_payload_bytes)
      : pdu_payload_(pdu_payload_bytes) {}

  void queue_sdu(std::vector<std::uint8_t> sdu);

  // Next PDU for the MAC: retransmissions first, then new data.
  [[nodiscard]] std::optional<RlcPdu> next_pdu();
  void handle_status(const RlcStatus& status);

  [[nodiscard]] bool idle() const {
    return queue_.empty() && in_flight_.empty() && retx_.empty();
  }
  [[nodiscard]] std::uint64_t pdus_sent() const { return pdus_sent_; }
  [[nodiscard]] std::uint64_t retransmissions() const { return retx_count_; }
  [[nodiscard]] std::size_t unacked() const { return in_flight_.size(); }

 private:
  std::size_t pdu_payload_;
  std::deque<std::vector<std::uint8_t>> queue_;  // Pending SDUs.
  std::size_t offset_{0};                        // Into queue_.front().
  std::uint32_t next_sn_{0};
  std::map<std::uint32_t, RlcPdu> in_flight_;    // Sent, unacked.
  std::deque<std::uint32_t> retx_;               // NACKed SNs to resend.
  std::uint64_t pdus_sent_{0};
  std::uint64_t retx_count_{0};
};

class RlcReceiver {
 public:
  void handle_pdu(RlcPdu pdu);

  // In-order reassembled SDUs, as they complete.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> next_sdu();

  // Status for the peer: cumulative ack + holes below the highest seen.
  [[nodiscard]] RlcStatus make_status() const;

  [[nodiscard]] std::uint64_t duplicates_discarded() const {
    return duplicates_;
  }

 private:
  void reassemble();

  std::map<std::uint32_t, RlcPdu> buffer_;   // Received, not yet consumed.
  std::uint32_t next_expected_{0};           // Reassembly cursor.
  std::uint32_t highest_seen_{0};
  bool anything_seen_{false};
  std::vector<std::uint8_t> partial_;        // SDU under reassembly.
  std::deque<std::vector<std::uint8_t>> ready_;
  std::uint64_t duplicates_{0};
};

}  // namespace dlte::lte
