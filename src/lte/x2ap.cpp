#include "lte/x2ap.h"

#include "common/bytes.h"

namespace dlte::lte {

namespace {

enum class X2Type : std::uint8_t {
  kHandoverRequest = 1,
  kHandoverRequestAck = 2,
  kUeContextRelease = 3,
  kLoadInformation = 4,
  kDlteHello = 0x80,  // Extension range.
  kDltePeerStatus = 0x81,
  kDlteShareProposal = 0x82,
  kDlteShareAccept = 0x83,
};

struct Encoder {
  ByteWriter& w;
  void operator()(const X2HandoverRequest& m) {
    w.u8(static_cast<std::uint8_t>(X2Type::kHandoverRequest));
    w.u32(m.source_cell.value());
    w.u32(m.target_cell.value());
    w.u64(m.imsi.value());
    w.u32(m.tmsi.value());
    w.u16(static_cast<std::uint16_t>(m.security_context.size()));
    w.bytes(m.security_context);
  }
  void operator()(const X2HandoverRequestAck& m) {
    w.u8(static_cast<std::uint8_t>(X2Type::kHandoverRequestAck));
    w.u32(m.target_cell.value());
    w.u64(m.imsi.value());
    w.u32(m.forwarding_teid.value());
    w.u32(m.new_ue_ip);
  }
  void operator()(const X2UeContextRelease& m) {
    w.u8(static_cast<std::uint8_t>(X2Type::kUeContextRelease));
    w.u32(m.source_cell.value());
    w.u64(m.imsi.value());
  }
  void operator()(const X2LoadInformation& m) {
    w.u8(static_cast<std::uint8_t>(X2Type::kLoadInformation));
    w.u32(m.cell.value());
    w.f64(m.prb_utilization);
    w.u32(m.active_ues);
  }
  void operator()(const DlteHello& m) {
    w.u8(static_cast<std::uint8_t>(X2Type::kDlteHello));
    w.u32(m.ap.value());
    w.u8(static_cast<std::uint8_t>(m.mode));
    w.str(m.operator_contact);
  }
  void operator()(const DltePeerStatus& m) {
    w.u8(static_cast<std::uint8_t>(X2Type::kDltePeerStatus));
    w.u32(m.ap.value());
    w.u8(static_cast<std::uint8_t>(m.mode));
    w.f64(m.offered_load);
    w.f64(m.prb_utilization);
    w.u32(m.active_ues);
  }
  void operator()(const DlteShareProposal& m) {
    w.u8(static_cast<std::uint8_t>(X2Type::kDlteShareProposal));
    w.u32(m.round);
    w.u16(static_cast<std::uint16_t>(m.ap_ids.size()));
    for (std::uint32_t id : m.ap_ids) w.u32(id);
    for (double s : m.shares) w.f64(s);
  }
  void operator()(const DlteShareAccept& m) {
    w.u8(static_cast<std::uint8_t>(X2Type::kDlteShareAccept));
    w.u32(m.round);
    w.u32(m.ap.value());
  }
};

}  // namespace

std::vector<std::uint8_t> encode_x2(const X2Message& m) {
  ByteWriter w;
  std::visit(Encoder{w}, m);
  return w.take();
}

Result<X2Message> decode_x2(std::span<const std::uint8_t> bytes) {
  ByteReader r{bytes};
  auto type = r.u8();
  if (!type) return Err{type.error()};
  switch (static_cast<X2Type>(*type)) {
    case X2Type::kHandoverRequest: {
      auto src = r.u32();
      if (!src) return Err{src.error()};
      auto dst = r.u32();
      if (!dst) return Err{dst.error()};
      auto imsi = r.u64();
      if (!imsi) return Err{imsi.error()};
      auto tmsi = r.u32();
      if (!tmsi) return Err{tmsi.error()};
      auto klen = r.u16();
      if (!klen) return Err{klen.error()};
      auto key = r.bytes(*klen);
      if (!key) return Err{key.error()};
      return X2Message{X2HandoverRequest{CellId{*src}, CellId{*dst},
                                         Imsi{*imsi}, Tmsi{*tmsi},
                                         std::move(*key)}};
    }
    case X2Type::kHandoverRequestAck: {
      auto cell = r.u32();
      if (!cell) return Err{cell.error()};
      auto imsi = r.u64();
      if (!imsi) return Err{imsi.error()};
      auto teid = r.u32();
      if (!teid) return Err{teid.error()};
      auto ip = r.u32();
      if (!ip) return Err{ip.error()};
      return X2Message{X2HandoverRequestAck{CellId{*cell}, Imsi{*imsi},
                                            Teid{*teid}, *ip}};
    }
    case X2Type::kUeContextRelease: {
      auto cell = r.u32();
      if (!cell) return Err{cell.error()};
      auto imsi = r.u64();
      if (!imsi) return Err{imsi.error()};
      return X2Message{X2UeContextRelease{CellId{*cell}, Imsi{*imsi}}};
    }
    case X2Type::kLoadInformation: {
      auto cell = r.u32();
      if (!cell) return Err{cell.error()};
      auto prb = r.f64();
      if (!prb) return Err{prb.error()};
      auto ues = r.u32();
      if (!ues) return Err{ues.error()};
      return X2Message{X2LoadInformation{CellId{*cell}, *prb, *ues}};
    }
    case X2Type::kDlteHello: {
      auto ap = r.u32();
      if (!ap) return Err{ap.error()};
      auto mode = r.u8();
      if (!mode) return Err{mode.error()};
      if (*mode > 4) return fail("invalid dLTE mode");
      auto contact = r.str();
      if (!contact) return Err{contact.error()};
      return X2Message{DlteHello{ApId{*ap}, static_cast<DlteMode>(*mode),
                                 std::move(*contact)}};
    }
    case X2Type::kDltePeerStatus: {
      auto ap = r.u32();
      if (!ap) return Err{ap.error()};
      auto mode = r.u8();
      if (!mode) return Err{mode.error()};
      if (*mode > 4) return fail("invalid dLTE mode");
      auto load = r.f64();
      if (!load) return Err{load.error()};
      auto prb = r.f64();
      if (!prb) return Err{prb.error()};
      auto ues = r.u32();
      if (!ues) return Err{ues.error()};
      return X2Message{DltePeerStatus{ApId{*ap}, static_cast<DlteMode>(*mode),
                                      *load, *prb, *ues}};
    }
    case X2Type::kDlteShareProposal: {
      auto round = r.u32();
      if (!round) return Err{round.error()};
      auto n = r.u16();
      if (!n) return Err{n.error()};
      DlteShareProposal m;
      m.round = *round;
      for (int i = 0; i < *n; ++i) {
        auto id = r.u32();
        if (!id) return Err{id.error()};
        m.ap_ids.push_back(*id);
      }
      for (int i = 0; i < *n; ++i) {
        auto s = r.f64();
        if (!s) return Err{s.error()};
        m.shares.push_back(*s);
      }
      return X2Message{std::move(m)};
    }
    case X2Type::kDlteShareAccept: {
      auto round = r.u32();
      if (!round) return Err{round.error()};
      auto ap = r.u32();
      if (!ap) return Err{ap.error()};
      return X2Message{DlteShareAccept{*round, ApId{*ap}}};
    }
  }
  return fail("unknown X2 message type");
}

int x2_wire_size(const X2Message& m) {
  // Encoded payload plus SCTP/IP framing as it would ride the backhaul.
  constexpr int kFraming = 48;
  return static_cast<int>(encode_x2(m).size()) + kFraming;
}

}  // namespace dlte::lte
