#include "lte/s1ap.h"

#include "common/bytes.h"

namespace dlte::lte {

namespace {

enum class S1apType : std::uint8_t {
  kInitialUeMessage = 1,
  kUplinkNasTransport = 2,
  kDownlinkNasTransport = 3,
  kInitialContextSetupRequest = 4,
  kInitialContextSetupResponse = 5,
  kUeContextReleaseCommand = 6,
  kPaging = 7,
};

void put_pdu(ByteWriter& w, const std::vector<std::uint8_t>& pdu) {
  w.u16(static_cast<std::uint16_t>(pdu.size()));
  w.bytes(pdu);
}

Result<std::vector<std::uint8_t>> get_pdu(ByteReader& r) {
  auto len = r.u16();
  if (!len) return Err{len.error()};
  return r.bytes(*len);
}

struct Encoder {
  ByteWriter& w;
  void operator()(const InitialUeMessage& m) {
    w.u8(static_cast<std::uint8_t>(S1apType::kInitialUeMessage));
    w.u32(m.enb_ue_id.value());
    w.u32(m.cell.value());
    put_pdu(w, m.nas_pdu);
  }
  void operator()(const UplinkNasTransport& m) {
    w.u8(static_cast<std::uint8_t>(S1apType::kUplinkNasTransport));
    w.u32(m.enb_ue_id.value());
    w.u32(m.mme_ue_id.value());
    put_pdu(w, m.nas_pdu);
  }
  void operator()(const DownlinkNasTransport& m) {
    w.u8(static_cast<std::uint8_t>(S1apType::kDownlinkNasTransport));
    w.u32(m.enb_ue_id.value());
    w.u32(m.mme_ue_id.value());
    put_pdu(w, m.nas_pdu);
  }
  void operator()(const InitialContextSetupRequest& m) {
    w.u8(static_cast<std::uint8_t>(S1apType::kInitialContextSetupRequest));
    w.u32(m.enb_ue_id.value());
    w.u32(m.mme_ue_id.value());
    w.u32(m.sgw_uplink_teid.value());
    put_pdu(w, m.security_key);
  }
  void operator()(const InitialContextSetupResponse& m) {
    w.u8(static_cast<std::uint8_t>(S1apType::kInitialContextSetupResponse));
    w.u32(m.enb_ue_id.value());
    w.u32(m.mme_ue_id.value());
    w.u32(m.enb_downlink_teid.value());
  }
  void operator()(const UeContextReleaseCommand& m) {
    w.u8(static_cast<std::uint8_t>(S1apType::kUeContextReleaseCommand));
    w.u32(m.enb_ue_id.value());
    w.u32(m.mme_ue_id.value());
    w.u8(m.cause);
  }
  void operator()(const Paging& m) {
    w.u8(static_cast<std::uint8_t>(S1apType::kPaging));
    w.u32(m.tmsi.value());
  }
};

}  // namespace

std::vector<std::uint8_t> encode_s1ap(const S1apMessage& m) {
  ByteWriter w;
  std::visit(Encoder{w}, m);
  return w.take();
}

Result<S1apMessage> decode_s1ap(std::span<const std::uint8_t> bytes) {
  ByteReader r{bytes};
  auto type = r.u8();
  if (!type) return Err{type.error()};
  auto u32 = [&r]() { return r.u32(); };
  switch (static_cast<S1apType>(*type)) {
    case S1apType::kInitialUeMessage: {
      auto enb = u32();
      if (!enb) return Err{enb.error()};
      auto cell = u32();
      if (!cell) return Err{cell.error()};
      auto pdu = get_pdu(r);
      if (!pdu) return Err{pdu.error()};
      return S1apMessage{
          InitialUeMessage{EnbUeId{*enb}, CellId{*cell}, std::move(*pdu)}};
    }
    case S1apType::kUplinkNasTransport: {
      auto enb = u32();
      if (!enb) return Err{enb.error()};
      auto mme = u32();
      if (!mme) return Err{mme.error()};
      auto pdu = get_pdu(r);
      if (!pdu) return Err{pdu.error()};
      return S1apMessage{UplinkNasTransport{EnbUeId{*enb}, MmeUeId{*mme},
                                            std::move(*pdu)}};
    }
    case S1apType::kDownlinkNasTransport: {
      auto enb = u32();
      if (!enb) return Err{enb.error()};
      auto mme = u32();
      if (!mme) return Err{mme.error()};
      auto pdu = get_pdu(r);
      if (!pdu) return Err{pdu.error()};
      return S1apMessage{DownlinkNasTransport{EnbUeId{*enb}, MmeUeId{*mme},
                                              std::move(*pdu)}};
    }
    case S1apType::kInitialContextSetupRequest: {
      auto enb = u32();
      if (!enb) return Err{enb.error()};
      auto mme = u32();
      if (!mme) return Err{mme.error()};
      auto teid = u32();
      if (!teid) return Err{teid.error()};
      auto key = get_pdu(r);
      if (!key) return Err{key.error()};
      return S1apMessage{InitialContextSetupRequest{
          EnbUeId{*enb}, MmeUeId{*mme}, Teid{*teid}, std::move(*key)}};
    }
    case S1apType::kInitialContextSetupResponse: {
      auto enb = u32();
      if (!enb) return Err{enb.error()};
      auto mme = u32();
      if (!mme) return Err{mme.error()};
      auto teid = u32();
      if (!teid) return Err{teid.error()};
      return S1apMessage{InitialContextSetupResponse{
          EnbUeId{*enb}, MmeUeId{*mme}, Teid{*teid}}};
    }
    case S1apType::kUeContextReleaseCommand: {
      auto enb = u32();
      if (!enb) return Err{enb.error()};
      auto mme = u32();
      if (!mme) return Err{mme.error()};
      auto cause = r.u8();
      if (!cause) return Err{cause.error()};
      return S1apMessage{
          UeContextReleaseCommand{EnbUeId{*enb}, MmeUeId{*mme}, *cause}};
    }
    case S1apType::kPaging: {
      auto tmsi = u32();
      if (!tmsi) return Err{tmsi.error()};
      return S1apMessage{Paging{Tmsi{*tmsi}}};
    }
  }
  return fail("unknown S1AP message type");
}

}  // namespace dlte::lte
