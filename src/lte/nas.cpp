#include "lte/nas.h"

#include "common/bytes.h"

namespace dlte::lte {

namespace {

enum class NasType : std::uint8_t {
  kAttachRequest = 0x41,
  kAuthenticationRequest = 0x52,
  kAuthenticationResponse = 0x53,
  kAuthenticationReject = 0x54,
  kSecurityModeCommand = 0x5d,
  kSecurityModeComplete = 0x5e,
  kAttachAccept = 0x42,
  kAttachComplete = 0x43,
  kDetachRequest = 0x45,
  kAttachReject = 0x44,
  kServiceRequest = 0x4d,
};

void put_bytes(ByteWriter& w, std::span<const std::uint8_t> b) {
  w.bytes(b);
}

template <std::size_t N>
Result<std::array<std::uint8_t, N>> get_array(ByteReader& r) {
  auto v = r.bytes(N);
  if (!v) return Err{v.error()};
  std::array<std::uint8_t, N> out{};
  std::copy(v->begin(), v->end(), out.begin());
  return out;
}

struct Encoder {
  ByteWriter& w;

  void operator()(const AttachRequest& m) {
    w.u8(static_cast<std::uint8_t>(NasType::kAttachRequest));
    w.u64(m.imsi.value());
    w.u32(m.tmsi.value());
  }
  void operator()(const AuthenticationRequest& m) {
    w.u8(static_cast<std::uint8_t>(NasType::kAuthenticationRequest));
    put_bytes(w, m.rand);
    put_bytes(w, m.autn.sqn_xor_ak);
    put_bytes(w, m.autn.amf);
    put_bytes(w, m.autn.mac_a);
  }
  void operator()(const AuthenticationResponse& m) {
    w.u8(static_cast<std::uint8_t>(NasType::kAuthenticationResponse));
    put_bytes(w, m.res);
  }
  void operator()(const AuthenticationReject&) {
    w.u8(static_cast<std::uint8_t>(NasType::kAuthenticationReject));
  }
  void operator()(const SecurityModeCommand& m) {
    w.u8(static_cast<std::uint8_t>(NasType::kSecurityModeCommand));
    w.u8(m.integrity_algorithm);
    w.u8(m.ciphering_algorithm);
  }
  void operator()(const SecurityModeComplete&) {
    w.u8(static_cast<std::uint8_t>(NasType::kSecurityModeComplete));
  }
  void operator()(const AttachAccept& m) {
    w.u8(static_cast<std::uint8_t>(NasType::kAttachAccept));
    w.u32(m.tmsi.value());
    w.u32(m.ue_ip);
    w.u8(m.default_bearer.value());
  }
  void operator()(const AttachComplete&) {
    w.u8(static_cast<std::uint8_t>(NasType::kAttachComplete));
  }
  void operator()(const DetachRequest&) {
    w.u8(static_cast<std::uint8_t>(NasType::kDetachRequest));
  }
  void operator()(const AttachReject& m) {
    w.u8(static_cast<std::uint8_t>(NasType::kAttachReject));
    w.u8(m.cause);
  }
  void operator()(const ServiceRequest& m) {
    w.u8(static_cast<std::uint8_t>(NasType::kServiceRequest));
    w.u32(m.tmsi.value());
  }
};

}  // namespace

std::vector<std::uint8_t> encode_nas(const NasMessage& message) {
  ByteWriter w;
  std::visit(Encoder{w}, message);
  return w.take();
}

Result<NasMessage> decode_nas(std::span<const std::uint8_t> bytes) {
  ByteReader r{bytes};
  auto type = r.u8();
  if (!type) return Err{type.error()};
  switch (static_cast<NasType>(*type)) {
    case NasType::kAttachRequest: {
      auto imsi = r.u64();
      if (!imsi) return Err{imsi.error()};
      auto tmsi = r.u32();
      if (!tmsi) return Err{tmsi.error()};
      return NasMessage{AttachRequest{Imsi{*imsi}, Tmsi{*tmsi}}};
    }
    case NasType::kAuthenticationRequest: {
      AuthenticationRequest m;
      auto rand = get_array<16>(r);
      if (!rand) return Err{rand.error()};
      m.rand = *rand;
      auto sqn = get_array<6>(r);
      if (!sqn) return Err{sqn.error()};
      m.autn.sqn_xor_ak = *sqn;
      auto amf = get_array<2>(r);
      if (!amf) return Err{amf.error()};
      m.autn.amf = *amf;
      auto mac = get_array<8>(r);
      if (!mac) return Err{mac.error()};
      m.autn.mac_a = *mac;
      return NasMessage{m};
    }
    case NasType::kAuthenticationResponse: {
      auto res = get_array<8>(r);
      if (!res) return Err{res.error()};
      return NasMessage{AuthenticationResponse{*res}};
    }
    case NasType::kAuthenticationReject:
      return NasMessage{AuthenticationReject{}};
    case NasType::kSecurityModeCommand: {
      auto ia = r.u8();
      if (!ia) return Err{ia.error()};
      auto ea = r.u8();
      if (!ea) return Err{ea.error()};
      return NasMessage{SecurityModeCommand{*ia, *ea}};
    }
    case NasType::kSecurityModeComplete:
      return NasMessage{SecurityModeComplete{}};
    case NasType::kAttachAccept: {
      auto tmsi = r.u32();
      if (!tmsi) return Err{tmsi.error()};
      auto ip = r.u32();
      if (!ip) return Err{ip.error()};
      auto bearer = r.u8();
      if (!bearer) return Err{bearer.error()};
      return NasMessage{AttachAccept{Tmsi{*tmsi}, *ip, BearerId{*bearer}}};
    }
    case NasType::kAttachComplete:
      return NasMessage{AttachComplete{}};
    case NasType::kDetachRequest:
      return NasMessage{DetachRequest{}};
    case NasType::kAttachReject: {
      auto cause = r.u8();
      if (!cause) return Err{cause.error()};
      return NasMessage{AttachReject{*cause}};
    }
    case NasType::kServiceRequest: {
      auto tmsi = r.u32();
      if (!tmsi) return Err{tmsi.error()};
      return NasMessage{ServiceRequest{Tmsi{*tmsi}}};
    }
  }
  return fail("unknown NAS message type");
}

const char* nas_message_name(const NasMessage& message) {
  struct Namer {
    const char* operator()(const AttachRequest&) { return "AttachRequest"; }
    const char* operator()(const AuthenticationRequest&) {
      return "AuthenticationRequest";
    }
    const char* operator()(const AuthenticationResponse&) {
      return "AuthenticationResponse";
    }
    const char* operator()(const AuthenticationReject&) {
      return "AuthenticationReject";
    }
    const char* operator()(const SecurityModeCommand&) {
      return "SecurityModeCommand";
    }
    const char* operator()(const SecurityModeComplete&) {
      return "SecurityModeComplete";
    }
    const char* operator()(const AttachAccept&) { return "AttachAccept"; }
    const char* operator()(const AttachComplete&) { return "AttachComplete"; }
    const char* operator()(const DetachRequest&) { return "DetachRequest"; }
    const char* operator()(const AttachReject&) { return "AttachReject"; }
    const char* operator()(const ServiceRequest&) { return "ServiceRequest"; }
  };
  return std::visit(Namer{}, message);
}

std::string nas_brief(const NasMessage& message) {
  std::string out = nas_message_name(message);
  out += std::visit(
      [](const auto& m) -> std::string {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, AttachRequest>) {
          return m.tmsi.value() != 0
                     ? " tmsi=" + std::to_string(m.tmsi.value())
                     : " imsi=" + std::to_string(m.imsi.value());
        } else if constexpr (std::is_same_v<T, AttachAccept>) {
          return " tmsi=" + std::to_string(m.tmsi.value()) +
                 " ue_ip=" + std::to_string(m.ue_ip);
        } else if constexpr (std::is_same_v<T, AttachReject>) {
          return " cause=" + std::to_string(m.cause);
        } else if constexpr (std::is_same_v<T, ServiceRequest>) {
          return " tmsi=" + std::to_string(m.tmsi.value());
        } else {
          return "";
        }
      },
      message);
  return out;
}

}  // namespace dlte::lte
