#include "lte/rrc.h"

#include "common/bytes.h"

namespace dlte::lte {

namespace {
enum class RrcType : std::uint8_t {
  kConnectionRequest = 1,
  kConnectionSetup = 2,
  kConnectionSetupComplete = 3,
  kMeasurementConfig = 4,
  kMeasurementReport = 5,
  kConnectionReconfiguration = 6,
  kConnectionReconfigurationComplete = 7,
  kConnectionRelease = 8,
};

struct Encoder {
  ByteWriter& w;
  void operator()(const RrcConnectionRequest& m) {
    w.u8(static_cast<std::uint8_t>(RrcType::kConnectionRequest));
    w.u32(m.tmsi.value());
    w.u8(m.establishment_cause);
  }
  void operator()(const RrcConnectionSetup& m) {
    w.u8(static_cast<std::uint8_t>(RrcType::kConnectionSetup));
    w.u8(m.srb_identity);
  }
  void operator()(const RrcConnectionSetupComplete& m) {
    w.u8(static_cast<std::uint8_t>(RrcType::kConnectionSetupComplete));
    w.u16(static_cast<std::uint16_t>(m.nas_pdu.size()));
    w.bytes(m.nas_pdu);
  }
  void operator()(const RrcMeasurementConfig& m) {
    w.u8(static_cast<std::uint8_t>(RrcType::kMeasurementConfig));
    w.f64(m.a3_offset_db);
    w.u32(m.time_to_trigger_ms);
    w.u32(m.sample_period_ms);
  }
  void operator()(const RrcMeasurementReport& m) {
    w.u8(static_cast<std::uint8_t>(RrcType::kMeasurementReport));
    w.u32(m.serving.value());
    w.f64(m.serving_rsrp_dbm);
    w.u32(m.neighbor.value());
    w.f64(m.neighbor_rsrp_dbm);
  }
  void operator()(const RrcConnectionReconfiguration& m) {
    w.u8(static_cast<std::uint8_t>(RrcType::kConnectionReconfiguration));
    w.u8(m.mobility_control ? 1 : 0);
    w.u32(m.target_cell.value());
  }
  void operator()(const RrcConnectionReconfigurationComplete& m) {
    w.u8(static_cast<std::uint8_t>(
        RrcType::kConnectionReconfigurationComplete));
    w.u32(m.cell.value());
  }
  void operator()(const RrcConnectionRelease&) {
    w.u8(static_cast<std::uint8_t>(RrcType::kConnectionRelease));
  }
};
}  // namespace

std::vector<std::uint8_t> encode_rrc(const RrcMessage& m) {
  ByteWriter w;
  std::visit(Encoder{w}, m);
  return w.take();
}

Result<RrcMessage> decode_rrc(std::span<const std::uint8_t> bytes) {
  ByteReader r{bytes};
  auto type = r.u8();
  if (!type) return Err{type.error()};
  switch (static_cast<RrcType>(*type)) {
    case RrcType::kConnectionRequest: {
      auto tmsi = r.u32();
      if (!tmsi) return Err{tmsi.error()};
      auto cause = r.u8();
      if (!cause) return Err{cause.error()};
      return RrcMessage{RrcConnectionRequest{Tmsi{*tmsi}, *cause}};
    }
    case RrcType::kConnectionSetup: {
      auto srb = r.u8();
      if (!srb) return Err{srb.error()};
      return RrcMessage{RrcConnectionSetup{*srb}};
    }
    case RrcType::kConnectionSetupComplete: {
      auto len = r.u16();
      if (!len) return Err{len.error()};
      auto pdu = r.bytes(*len);
      if (!pdu) return Err{pdu.error()};
      return RrcMessage{RrcConnectionSetupComplete{std::move(*pdu)}};
    }
    case RrcType::kMeasurementConfig: {
      auto offset = r.f64();
      if (!offset) return Err{offset.error()};
      auto ttt = r.u32();
      if (!ttt) return Err{ttt.error()};
      auto period = r.u32();
      if (!period) return Err{period.error()};
      return RrcMessage{RrcMeasurementConfig{*offset, *ttt, *period}};
    }
    case RrcType::kMeasurementReport: {
      auto serving = r.u32();
      if (!serving) return Err{serving.error()};
      auto s_rsrp = r.f64();
      if (!s_rsrp) return Err{s_rsrp.error()};
      auto neighbor = r.u32();
      if (!neighbor) return Err{neighbor.error()};
      auto n_rsrp = r.f64();
      if (!n_rsrp) return Err{n_rsrp.error()};
      return RrcMessage{RrcMeasurementReport{CellId{*serving}, *s_rsrp,
                                             CellId{*neighbor}, *n_rsrp}};
    }
    case RrcType::kConnectionReconfiguration: {
      auto mob = r.u8();
      if (!mob) return Err{mob.error()};
      if (*mob > 1) return fail("invalid mobility flag");
      auto cell = r.u32();
      if (!cell) return Err{cell.error()};
      return RrcMessage{
          RrcConnectionReconfiguration{*mob == 1, CellId{*cell}}};
    }
    case RrcType::kConnectionReconfigurationComplete: {
      auto cell = r.u32();
      if (!cell) return Err{cell.error()};
      return RrcMessage{RrcConnectionReconfigurationComplete{CellId{*cell}}};
    }
    case RrcType::kConnectionRelease:
      return RrcMessage{RrcConnectionRelease{}};
  }
  return fail("unknown RRC message type");
}

}  // namespace dlte::lte
