#include "lte/rlc.h"

#include <algorithm>

#include "common/bytes.h"

namespace dlte::lte {

std::vector<std::uint8_t> encode_rlc_pdu(const RlcPdu& pdu) {
  ByteWriter w;
  w.u32(pdu.sn);
  w.u8(pdu.last_of_sdu ? 1 : 0);
  w.u16(static_cast<std::uint16_t>(pdu.payload.size()));
  w.bytes(pdu.payload);
  return w.take();
}

Result<RlcPdu> decode_rlc_pdu(std::span<const std::uint8_t> bytes) {
  ByteReader r{bytes};
  RlcPdu pdu;
  auto sn = r.u32();
  if (!sn) return Err{sn.error()};
  pdu.sn = *sn;
  auto last = r.u8();
  if (!last) return Err{last.error()};
  if (*last > 1) return fail("invalid RLC framing flag");
  pdu.last_of_sdu = *last == 1;
  auto len = r.u16();
  if (!len) return Err{len.error()};
  auto payload = r.bytes(*len);
  if (!payload) return Err{payload.error()};
  pdu.payload = std::move(*payload);
  return pdu;
}

std::vector<std::uint8_t> encode_rlc_status(const RlcStatus& status) {
  ByteWriter w;
  w.u32(status.ack_sn);
  w.u16(static_cast<std::uint16_t>(status.nacks.size()));
  for (std::uint32_t sn : status.nacks) w.u32(sn);
  return w.take();
}

Result<RlcStatus> decode_rlc_status(std::span<const std::uint8_t> bytes) {
  ByteReader r{bytes};
  RlcStatus s;
  auto ack = r.u32();
  if (!ack) return Err{ack.error()};
  s.ack_sn = *ack;
  auto n = r.u16();
  if (!n) return Err{n.error()};
  for (int i = 0; i < *n; ++i) {
    auto sn = r.u32();
    if (!sn) return Err{sn.error()};
    s.nacks.push_back(*sn);
  }
  return s;
}

// ----------------------------------------------------------- Transmit --

void RlcTransmitter::queue_sdu(std::vector<std::uint8_t> sdu) {
  queue_.push_back(std::move(sdu));
}

std::optional<RlcPdu> RlcTransmitter::next_pdu() {
  // Retransmissions take priority (they hold back the peer's reassembly).
  while (!retx_.empty()) {
    const std::uint32_t sn = retx_.front();
    retx_.pop_front();
    const auto it = in_flight_.find(sn);
    if (it == in_flight_.end()) continue;  // Acked since the NACK.
    ++retx_count_;
    ++pdus_sent_;
    return it->second;
  }
  if (queue_.empty()) return std::nullopt;

  const auto& sdu = queue_.front();
  const std::size_t remaining = sdu.size() - offset_;
  const std::size_t take = std::min(pdu_payload_, remaining);
  RlcPdu pdu;
  pdu.sn = next_sn_++;
  pdu.last_of_sdu = take == remaining;
  pdu.payload.assign(sdu.begin() + static_cast<std::ptrdiff_t>(offset_),
                     sdu.begin() + static_cast<std::ptrdiff_t>(offset_ + take));
  offset_ += take;
  if (offset_ >= sdu.size()) {
    queue_.pop_front();
    offset_ = 0;
  }
  in_flight_.emplace(pdu.sn, pdu);
  ++pdus_sent_;
  return pdu;
}

void RlcTransmitter::handle_status(const RlcStatus& status) {
  // Cumulative ack releases everything below ack_sn...
  for (auto it = in_flight_.begin(); it != in_flight_.end();) {
    if (it->first < status.ack_sn &&
        std::find(status.nacks.begin(), status.nacks.end(), it->first) ==
            status.nacks.end()) {
      it = in_flight_.erase(it);
    } else {
      ++it;
    }
  }
  // ...and the NACK list schedules retransmissions (deduplicated).
  for (std::uint32_t sn : status.nacks) {
    if (in_flight_.contains(sn) &&
        std::find(retx_.begin(), retx_.end(), sn) == retx_.end()) {
      retx_.push_back(sn);
    }
  }
  // Tail-loss recovery (t-PollRetransmit semantics): a status is solicited
  // by a poll, so any PDU the receiver shows no evidence of — at or above
  // its ACK_SN — must have been lost in flight and is retransmitted too.
  for (const auto& [sn, pdu] : in_flight_) {
    if (sn >= status.ack_sn &&
        std::find(retx_.begin(), retx_.end(), sn) == retx_.end()) {
      retx_.push_back(sn);
    }
  }
}

// ------------------------------------------------------------ Receive --

void RlcReceiver::handle_pdu(RlcPdu pdu) {
  if (pdu.sn < next_expected_ || buffer_.contains(pdu.sn)) {
    ++duplicates_;
    return;
  }
  highest_seen_ = anything_seen_ ? std::max(highest_seen_, pdu.sn) : pdu.sn;
  anything_seen_ = true;
  buffer_.emplace(pdu.sn, std::move(pdu));
  reassemble();
}

void RlcReceiver::reassemble() {
  auto it = buffer_.find(next_expected_);
  while (it != buffer_.end()) {
    partial_.insert(partial_.end(), it->second.payload.begin(),
                    it->second.payload.end());
    if (it->second.last_of_sdu) {
      ready_.push_back(std::move(partial_));
      partial_.clear();
    }
    buffer_.erase(it);
    ++next_expected_;
    it = buffer_.find(next_expected_);
  }
}

std::optional<std::vector<std::uint8_t>> RlcReceiver::next_sdu() {
  if (ready_.empty()) return std::nullopt;
  auto sdu = std::move(ready_.front());
  ready_.pop_front();
  return sdu;
}

RlcStatus RlcReceiver::make_status() const {
  RlcStatus s;
  if (!anything_seen_) return s;
  s.ack_sn = highest_seen_ + 1;
  for (std::uint32_t sn = next_expected_; sn <= highest_seen_; ++sn) {
    if (!buffer_.contains(sn)) s.nacks.push_back(sn);
  }
  return s;
}

}  // namespace dlte::lte
