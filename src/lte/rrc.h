// RRC: the radio resource control dialogue between UE and eNodeB.
//
// Connection establishment (request/setup/complete with piggybacked NAS),
// measurement configuration and A3 event reports (the trigger feed for
// handover decisions), mobility reconfiguration (the handover command),
// and release (to ECM-idle). The eNodeB timing model in core/enodeb.h
// charges the latency of these exchanges; the codecs here are the wire
// form, used directly by the measurement/handover machinery.
#pragma once

#include <cstdint>
#include <span>
#include <variant>
#include <vector>

#include "common/ids.h"
#include "common/result.h"

namespace dlte::lte {

struct RrcConnectionRequest {
  Tmsi tmsi;                          // 0 for IMSI-based initial attach.
  std::uint8_t establishment_cause{0};  // mo-Data, mt-Access, …
};

struct RrcConnectionSetup {
  std::uint8_t srb_identity{1};
};

struct RrcConnectionSetupComplete {
  std::vector<std::uint8_t> nas_pdu;  // Piggybacked initial NAS message.
};

// Measurement configuration: report when a neighbour becomes
// `a3_offset_db` better than serving for `time_to_trigger_ms`.
struct RrcMeasurementConfig {
  double a3_offset_db{3.0};
  std::uint32_t time_to_trigger_ms{320};
  std::uint32_t sample_period_ms{40};
};

struct RrcMeasurementReport {
  CellId serving;
  double serving_rsrp_dbm{0.0};
  CellId neighbor;
  double neighbor_rsrp_dbm{0.0};
};

// Handover command (mobilityControlInfo present).
struct RrcConnectionReconfiguration {
  bool mobility_control{false};
  CellId target_cell;
};

struct RrcConnectionReconfigurationComplete {
  CellId cell;  // Where the UE completed (the target, on handover).
};

struct RrcConnectionRelease {};

using RrcMessage =
    std::variant<RrcConnectionRequest, RrcConnectionSetup,
                 RrcConnectionSetupComplete, RrcMeasurementConfig,
                 RrcMeasurementReport, RrcConnectionReconfiguration,
                 RrcConnectionReconfigurationComplete, RrcConnectionRelease>;

[[nodiscard]] std::vector<std::uint8_t> encode_rrc(const RrcMessage& m);
[[nodiscard]] Result<RrcMessage> decode_rrc(
    std::span<const std::uint8_t> bytes);

}  // namespace dlte::lte
