#include "lte/pdcp.h"

#include "common/bytes.h"

namespace dlte::lte {

std::vector<std::uint8_t> encode_pdcp_pdu(const PdcpPdu& pdu) {
  ByteWriter w;
  w.u32(pdu.sn);
  w.u16(static_cast<std::uint16_t>(pdu.payload.size()));
  w.bytes(pdu.payload);
  w.bytes(pdu.mac_i);
  return w.take();
}

Result<PdcpPdu> decode_pdcp_pdu(std::span<const std::uint8_t> bytes) {
  ByteReader r{bytes};
  PdcpPdu pdu;
  auto sn = r.u32();
  if (!sn) return Err{sn.error()};
  pdu.sn = *sn;
  auto len = r.u16();
  if (!len) return Err{len.error()};
  auto payload = r.bytes(*len);
  if (!payload) return Err{payload.error()};
  pdu.payload = std::move(*payload);
  auto mac = r.bytes(4);
  if (!mac) return Err{mac.error()};
  std::copy(mac->begin(), mac->end(), pdu.mac_i.begin());
  return pdu;
}

MacI compute_mac_i(const PdcpKey& key, std::uint32_t sn,
                   std::span<const std::uint8_t> payload) {
  ByteWriter w;
  w.u32(sn);
  w.bytes(payload);
  const auto digest = crypto::hmac_sha256(key, w.data());
  MacI mac;
  std::copy(digest.begin(), digest.begin() + 4, mac.begin());
  return mac;
}

PdcpPdu PdcpTransmitter::protect(std::vector<std::uint8_t> sdu) {
  PdcpPdu pdu;
  pdu.sn = next_sn_++;
  pdu.mac_i = compute_mac_i(key_, pdu.sn, sdu);
  pdu.payload = std::move(sdu);
  return pdu;
}

Result<std::vector<std::uint8_t>> PdcpReceiver::receive(const PdcpPdu& pdu) {
  if (compute_mac_i(key_, pdu.sn, pdu.payload) != pdu.mac_i) {
    ++integrity_failures_;
    return fail("PDCP integrity check failed");
  }
  if (pdu.sn < seen_.size() && seen_[pdu.sn]) {
    ++replays_;
    return fail("PDCP duplicate/replay discarded");
  }
  if (pdu.sn >= seen_.size()) seen_.resize(pdu.sn + 1, false);
  seen_[pdu.sn] = true;
  if (!anything_delivered_ || pdu.sn > highest_delivered_) {
    highest_delivered_ = pdu.sn;
  }
  anything_delivered_ = true;
  return pdu.payload;
}

}  // namespace dlte::lte
