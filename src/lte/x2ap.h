// X2AP: the peer-to-peer eNodeB ↔ eNodeB interface, plus dLTE extensions.
//
// Standard X2 already lets eNodeBs exchange handover context and load /
// interference information peer-to-peer [19]. The paper's §4.3 proposes
// running "a version of X2 extended with information about the dLTE
// operating mode and dLTE peer status" between *administratively
// independent* APs over the Internet. The extension IEs here are exactly
// that: hello/mode negotiation, periodic peer status, and the
// time-frequency share agreements of fair-sharing mode.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "common/ids.h"
#include "common/result.h"

namespace dlte::lte {

// ------------------------------------------------------- Standard X2 --

struct X2HandoverRequest {
  CellId source_cell;
  CellId target_cell;
  Imsi imsi;
  Tmsi tmsi;
  // Forwarded security context (K_eNB*), opaque here.
  std::vector<std::uint8_t> security_context;
};

struct X2HandoverRequestAck {
  CellId target_cell;
  Imsi imsi;
  Teid forwarding_teid;  // For downlink data forwarding during HO.
  // dLTE extension: the target AP's address assignment for the UE. dLTE
  // never hides the address change (§4.2); signalling it in the ack lets
  // the endpoint transport rebind without waiting for DHCP-style setup.
  std::uint32_t new_ue_ip{0};
};

struct X2UeContextRelease {
  CellId source_cell;
  Imsi imsi;
};

// Periodic load report (standard X2 Load Information / Resource Status).
struct X2LoadInformation {
  CellId cell;
  double prb_utilization{0.0};   // 0..1.
  std::uint32_t active_ues{0};
};

// ------------------------------------------------------ dLTE extension --

// Coordination posture of an AP (§4.3): fair sharing achieves a WiFi-like
// equilibrium with minimal exchange; cooperative mode fuses resources.
// The coexistence modes (DESIGN.md §12) apply when the granted band is
// unlicensed spectrum shared with WiFi BSSs the registry knows about:
// arbitration then happens on the air (coex/shared_channel.h), not in X2
// share rounds, so coordinators in these modes stop leading rounds.
enum class DlteMode : std::uint8_t {
  kIsolated = 0,     // No peering (legacy-WiFi-like independence).
  kFairShare = 1,
  kCooperative = 2,
  kLbt = 3,          // LAA-style listen-before-talk on a shared band.
  kDutyCycle = 4,    // CSAT-style on/off airtime sharing.
};

// True for the modes that arbitrate a WiFi-shared channel on the air.
[[nodiscard]] constexpr bool is_coexistence_mode(DlteMode mode) {
  return mode == DlteMode::kLbt || mode == DlteMode::kDutyCycle;
}

struct DlteHello {
  ApId ap;
  DlteMode mode{DlteMode::kFairShare};
  std::string operator_contact;  // The license registry's recourse channel.
};

struct DltePeerStatus {
  ApId ap;
  DlteMode mode{DlteMode::kFairShare};
  double offered_load{0.0};      // Demand estimate (0..1 of a full cell).
  double prb_utilization{0.0};
  std::uint32_t active_ues{0};
};

// Proposed time-frequency split for one contention domain: share[i] is
// the PRB fraction for member ap_ids[i]. Sums to ≤ 1.
struct DlteShareProposal {
  std::uint32_t round{0};
  std::vector<std::uint32_t> ap_ids;
  std::vector<double> shares;
};

struct DlteShareAccept {
  std::uint32_t round{0};
  ApId ap;
};

using X2Message =
    std::variant<X2HandoverRequest, X2HandoverRequestAck, X2UeContextRelease,
                 X2LoadInformation, DlteHello, DltePeerStatus,
                 DlteShareProposal, DlteShareAccept>;

[[nodiscard]] std::vector<std::uint8_t> encode_x2(const X2Message& m);
[[nodiscard]] Result<X2Message> decode_x2(std::span<const std::uint8_t> bytes);

// Wire size of a message (bytes): used by the C7 X2-bandwidth experiment.
[[nodiscard]] int x2_wire_size(const X2Message& m);

}  // namespace dlte::lte
