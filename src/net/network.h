// Packet-level IP substrate: nodes, links, static shortest-path routing.
//
// This models everything between radio access and application endpoints —
// AP backhaul links, the Internet core, the path to a centralized EPC site,
// and the peer-to-peer paths dLTE APs use for X2-over-Internet
// coordination (Fig. 1 of the paper). Links have a serialization rate,
// propagation delay, and a drop-tail queue bound; routing is Dijkstra on
// propagation delay, recomputed on demand.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/pool.h"
#include "common/time.h"
#include "common/units.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace dlte::net {

// Simplified IPv4 address; the P-GW / local core hands these to UEs.
struct Ipv4 {
  std::uint32_t addr{0};

  [[nodiscard]] std::string to_string() const;
  friend constexpr auto operator<=>(Ipv4, Ipv4) = default;
};

struct Packet {
  NodeId src;
  NodeId dst;
  int size_bytes{0};
  // Protocol tag for the receiving stack's dispatcher (values defined by
  // each protocol module).
  std::uint16_t protocol{0};
  std::vector<std::uint8_t> payload;
  // Delivery span (obs::SpanId) carried with the packet so the hop that
  // finally delivers or drops it can close the span. kNoSpan (0) when
  // tracing is off.
  std::uint64_t trace_span{0};
};

struct LinkConfig {
  DataRate rate{DataRate::mbps(100.0)};
  Duration delay{Duration::millis(1)};
  std::size_t queue_bytes{256 * 1024};
};

struct LinkStats {
  std::uint64_t packets_sent{0};
  std::uint64_t packets_dropped{0};
  std::uint64_t bytes_sent{0};
  std::uint64_t packets_lost_impaired{0};  // Dropped by injected loss.
};

// Runtime degradation of a link (fault injection / weather / congestion
// modelling): random loss and added one-way latency on top of the link's
// configured delay. Draws come from the network's deterministic RNG
// stream, so runs stay seed-reproducible.
struct LinkImpairment {
  double loss{0.0};          // Per-packet drop probability, 0..1.
  Duration extra_delay{};    // Added to propagation delay.

  [[nodiscard]] bool impaired() const {
    return loss > 0.0 || !extra_delay.is_zero();
  }
};

class Network {
 public:
  explicit Network(sim::Simulator& sim)
      : sim_(sim), hop_label_(sim_.label("net.hop")) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  using Handler = std::function<void(Packet&&)>;

  NodeId add_node(std::string name);
  // A node whose traffic leaves this Network instance: packets addressed
  // to it are handed to `egress` at their local delivery time instead of
  // a local handler. This is the cross-shard routing seam — the parallel
  // runtime registers one remote node per egress portal and forwards the
  // packet to the owning shard through its inbox queues. Counted under
  // `net.remote_forwards`.
  NodeId add_remote_node(std::string name, Handler egress);
  [[nodiscard]] bool is_remote(NodeId node) const {
    return nodes_[node.value()].remote;
  }
  // Bidirectional link (two independent directed queues).
  void add_link(NodeId a, NodeId b, LinkConfig config);
  // Catch-all handler for packets addressed to `node` (any protocol not
  // claimed by a protocol handler).
  void set_handler(NodeId node, Handler handler);
  // Protocol-specific handler; several stacks (transport, X2, GTP) can
  // share one node.
  void set_protocol_handler(NodeId node, std::uint16_t protocol,
                            Handler handler);

  // Route and deliver; silently drops if no route or a queue overflows
  // (drop statistics are recorded on the link).
  void send(Packet packet);

  // One-way latency along the current best path for a packet of the given
  // size, assuming empty queues (used for experiment reporting).
  [[nodiscard]] Duration path_latency(NodeId from, NodeId to,
                                      int size_bytes) const;

  // Minimum propagation delay over all enabled links — the conservative
  // lookahead bound a windowed parallel runtime may advance without
  // hearing from this network. Duration::nanos(INT64_MAX) when empty.
  [[nodiscard]] Duration min_link_delay() const;
  // Same, restricted to links that touch a remote node: the tightest
  // latency at which traffic can leave this shard (the inter-shard
  // component of the window size).
  [[nodiscard]] Duration min_remote_link_delay() const;
  [[nodiscard]] int hop_count(NodeId from, NodeId to) const;
  [[nodiscard]] bool has_route(NodeId from, NodeId to) const;

  [[nodiscard]] const LinkStats& link_stats(NodeId a, NodeId b) const;
  [[nodiscard]] const std::string& node_name(NodeId node) const;
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  // Enable/disable a bidirectional link at runtime (radio attachment
  // changes during mobility). Disabled links are excluded from routing;
  // packets with no remaining route are dropped.
  void set_link_enabled(NodeId a, NodeId b, bool enabled);

  // Degrade a bidirectional link in place (both directions). Routing is
  // unchanged — an impaired link still carries traffic, it just loses or
  // delays it. Reset with a default-constructed LinkImpairment.
  void set_link_impairment(NodeId a, NodeId b, LinkImpairment impairment);
  // Seed for the loss draws (defaults to a fixed constant; set it before
  // traffic flows to tie impairment draws to a scenario seed).
  void set_impairment_seed(std::uint64_t seed) {
    impairment_rng_ = sim::RngStream{seed};
  }

  // Recompute routing tables (called lazily after topology changes).
  void recompute_routes();

  // Export network-wide aggregates under `<prefix>net.*`: packets/bytes
  // sent, queue and impairment drops, unroutable drops, and cumulative
  // link-partition seconds (accrued when a disabled link re-enables).
  void set_metrics(obs::MetricsRegistry* registry,
                   const std::string& prefix = "");

  // Causal tracing: each send() opens a "net_delivery" span (child of
  // the active span) in category `<prefix>net`, closed at delivery or
  // annotated with the drop reason. Null tracer disables tracing.
  void set_tracer(obs::SpanTracer* tracer, const std::string& prefix = "");

 private:
  struct DirectedLink {
    NodeId to;
    LinkConfig config;
    TimePoint busy_until{};
    LinkStats stats;
    bool enabled{true};
    LinkImpairment impairment{};
    TimePoint down_since{};
  };
  struct Node {
    std::string name;
    std::vector<std::size_t> links;  // Indices into links_.
    Handler handler;
    std::unordered_map<std::uint16_t, Handler> protocol_handlers;
    bool remote{false};  // Delivery goes to `handler` as cross-shard egress.
  };

  void forward(Packet&& packet, NodeId at);
  [[nodiscard]] const DirectedLink* next_hop(NodeId from, NodeId to) const;

  // One in-flight hop: pooled so a hop event costs no heap traffic and
  // its lambda (one pointer) stays inside std::function's small buffer.
  struct HopEvent {
    Network* net{nullptr};
    NodeId next;
    Packet packet;
  };
  ObjectPool<HopEvent> hop_pool_{256};

  sim::Simulator& sim_;
  // Event-attribution label for hop arrivals (obs::EventProfiler).
  const std::uint32_t hop_label_;
  std::vector<Node> nodes_;
  std::vector<DirectedLink> links_;
  std::vector<NodeId> link_sources_;
  // next_hop_[from][to] = link index, or npos.
  std::vector<std::vector<std::size_t>> next_hop_;
  bool routes_dirty_{true};
  sim::RngStream impairment_rng_{0xfa171u};

  obs::SpanTracer* tracer_{nullptr};
  std::string span_cat_{"net"};

  obs::Counter* m_packets_sent_{nullptr};
  obs::Counter* m_bytes_sent_{nullptr};
  obs::Counter* m_queue_drops_{nullptr};
  obs::Counter* m_impaired_drops_{nullptr};
  obs::Counter* m_unroutable_drops_{nullptr};
  obs::Counter* m_remote_forwards_{nullptr};
  obs::Gauge* m_partition_seconds_{nullptr};

  static constexpr std::size_t kNoRoute = static_cast<std::size_t>(-1);
};

}  // namespace dlte::net
