#include "net/network.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>

namespace dlte::net {

std::string Ipv4::to_string() const {
  return std::to_string((addr >> 24) & 0xff) + "." +
         std::to_string((addr >> 16) & 0xff) + "." +
         std::to_string((addr >> 8) & 0xff) + "." +
         std::to_string(addr & 0xff);
}

NodeId Network::add_node(std::string name) {
  const NodeId id{static_cast<std::uint32_t>(nodes_.size())};
  Node node;
  node.name = std::move(name);
  nodes_.push_back(std::move(node));
  routes_dirty_ = true;
  return id;
}

NodeId Network::add_remote_node(std::string name, Handler egress) {
  const NodeId id = add_node(std::move(name));
  Node& node = nodes_[id.value()];
  node.remote = true;
  node.handler = std::move(egress);
  return id;
}

void Network::add_link(NodeId a, NodeId b, LinkConfig config) {
  const auto add_directed = [&](NodeId from, NodeId to) {
    const std::size_t index = links_.size();
    links_.push_back(DirectedLink{to, config, {}, {}});
    link_sources_.push_back(from);
    nodes_[from.value()].links.push_back(index);
  };
  add_directed(a, b);
  add_directed(b, a);
  routes_dirty_ = true;
}

void Network::set_handler(NodeId node, Handler handler) {
  nodes_[node.value()].handler = std::move(handler);
}

void Network::set_protocol_handler(NodeId node, std::uint16_t protocol,
                                   Handler handler) {
  if (handler == nullptr) {
    nodes_[node.value()].protocol_handlers.erase(protocol);
    return;
  }
  nodes_[node.value()].protocol_handlers[protocol] = std::move(handler);
}

void Network::recompute_routes() {
  const std::size_t n = nodes_.size();
  next_hop_.assign(n, std::vector<std::size_t>(n, kNoRoute));
  // Dijkstra from every source over propagation delay.
  for (std::size_t src = 0; src < n; ++src) {
    std::vector<std::int64_t> dist(n, std::numeric_limits<std::int64_t>::max());
    std::vector<std::size_t> first_link(n, kNoRoute);
    using Entry = std::pair<std::int64_t, std::size_t>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
    dist[src] = 0;
    pq.emplace(0, src);
    while (!pq.empty()) {
      const auto [d, u] = pq.top();
      pq.pop();
      if (d > dist[u]) continue;
      for (std::size_t li : nodes_[u].links) {
        const auto& link = links_[li];
        if (!link.enabled) continue;
        const std::size_t v = link.to.value();
        const std::int64_t nd = d + link.config.delay.ns();
        if (nd < dist[v]) {
          dist[v] = nd;
          first_link[v] = (u == src) ? li : first_link[u];
          pq.emplace(nd, v);
        }
      }
    }
    for (std::size_t dst = 0; dst < n; ++dst) {
      next_hop_[src][dst] = first_link[dst];
    }
  }
  routes_dirty_ = false;
}

const Network::DirectedLink* Network::next_hop(NodeId from, NodeId to) const {
  if (routes_dirty_) {
    // Routing state is logically part of topology; safe to refresh here.
    const_cast<Network*>(this)->recompute_routes();
  }
  const std::size_t li = next_hop_[from.value()][to.value()];
  if (li == kNoRoute) return nullptr;
  return &links_[li];
}

void Network::send(Packet packet) {
  const NodeId origin = packet.src;
  if (tracer_ != nullptr) {
    packet.trace_span = tracer_->begin("net_delivery", span_cat_);
    obs::span_annotate(tracer_, packet.trace_span, "route",
                       node_name(packet.src) + "->" + node_name(packet.dst));
    obs::span_annotate(tracer_, packet.trace_span, "bytes",
                       std::to_string(packet.size_bytes));
  }
  forward(std::move(packet), origin);
}

void Network::set_tracer(obs::SpanTracer* tracer, const std::string& prefix) {
  tracer_ = tracer;
  span_cat_ = prefix + "net";
}

void Network::set_metrics(obs::MetricsRegistry* registry,
                          const std::string& prefix) {
  if (registry == nullptr) {
    m_packets_sent_ = nullptr;
    m_bytes_sent_ = nullptr;
    m_queue_drops_ = nullptr;
    m_impaired_drops_ = nullptr;
    m_unroutable_drops_ = nullptr;
    m_remote_forwards_ = nullptr;
    m_partition_seconds_ = nullptr;
    return;
  }
  m_packets_sent_ = &registry->counter(prefix + "net.packets_sent");
  m_bytes_sent_ = &registry->counter(prefix + "net.bytes_sent");
  m_queue_drops_ = &registry->counter(prefix + "net.queue_drops");
  m_impaired_drops_ = &registry->counter(prefix + "net.impaired_drops");
  m_unroutable_drops_ = &registry->counter(prefix + "net.unroutable_drops");
  m_remote_forwards_ = &registry->counter(prefix + "net.remote_forwards");
  m_partition_seconds_ = &registry->gauge(prefix + "net.partition_seconds");
}

void Network::forward(Packet&& packet, NodeId at) {
  if (at == packet.dst) {
    obs::span_end(tracer_, packet.trace_span);
    Node& node = nodes_[at.value()];
    if (node.remote) {
      // Egress portal: this shard's view of the packet ends here; the
      // registered egress hands it to the parallel runtime.
      obs::inc(m_remote_forwards_);
      if (node.handler) node.handler(std::move(packet));
      return;
    }
    if (const auto it = node.protocol_handlers.find(packet.protocol);
        it != node.protocol_handlers.end()) {
      it->second(std::move(packet));
    } else if (node.handler) {
      node.handler(std::move(packet));
    }
    return;
  }
  if (routes_dirty_) recompute_routes();
  const std::size_t li = next_hop_[at.value()][packet.dst.value()];
  if (li == kNoRoute) {
    obs::inc(m_unroutable_drops_);
    obs::span_annotate(tracer_, packet.trace_span, "drop", "unroutable");
    obs::span_end(tracer_, packet.trace_span);
    return;  // Unroutable: dropped.
  }
  DirectedLink& link = links_[li];

  if (link.impairment.loss > 0.0 &&
      impairment_rng_.bernoulli(link.impairment.loss)) {
    ++link.stats.packets_dropped;
    ++link.stats.packets_lost_impaired;
    obs::inc(m_impaired_drops_);
    obs::span_annotate(tracer_, packet.trace_span, "drop", "impaired_loss");
    obs::span_end(tracer_, packet.trace_span);
    return;
  }

  const TimePoint now = sim_.now();
  const TimePoint start = std::max(now, link.busy_until);
  // Drop-tail bound: bytes already committed but not yet serialized.
  const double backlog_bytes =
      (start - now).to_seconds() * link.config.rate.bps() / 8.0;
  if (backlog_bytes > static_cast<double>(link.config.queue_bytes)) {
    ++link.stats.packets_dropped;
    obs::inc(m_queue_drops_);
    obs::span_annotate(tracer_, packet.trace_span, "drop", "queue_overflow");
    obs::span_end(tracer_, packet.trace_span);
    return;
  }
  const Duration tx = Duration::seconds(
      packet.size_bytes * 8.0 / link.config.rate.bps());
  link.busy_until = start + tx;
  ++link.stats.packets_sent;
  link.stats.bytes_sent += static_cast<std::uint64_t>(packet.size_bytes);
  obs::inc(m_packets_sent_);
  obs::inc(m_bytes_sent_, static_cast<std::uint64_t>(packet.size_bytes));

  const TimePoint arrival =
      start + tx + link.config.delay + link.impairment.extra_delay;
  HopEvent* hop = hop_pool_.acquire();
  hop->net = this;
  hop->next = link.to;
  hop->packet = std::move(packet);
  sim_.schedule_at(
      arrival,
      [hop] {
        Network* net = hop->net;
        const NodeId next = hop->next;
        Packet p = std::move(hop->packet);
        // Release before recursing: the next hop reuses this very record.
        net->hop_pool_.release(hop);
        net->forward(std::move(p), next);
      },
      hop_label_);
}

Duration Network::path_latency(NodeId from, NodeId to, int size_bytes) const {
  Duration total{};
  NodeId at = from;
  int guard = 0;
  while (at != to) {
    const DirectedLink* link = next_hop(at, to);
    if (link == nullptr) return Duration::seconds(-1.0);
    total += link->config.delay + link->impairment.extra_delay +
             Duration::seconds(size_bytes * 8.0 / link->config.rate.bps());
    at = link->to;
    if (++guard > static_cast<int>(nodes_.size())) break;
  }
  return total;
}

Duration Network::min_link_delay() const {
  std::int64_t min_ns = std::numeric_limits<std::int64_t>::max();
  for (const DirectedLink& link : links_) {
    if (!link.enabled) continue;
    min_ns = std::min(min_ns, link.config.delay.ns());
  }
  return Duration::nanos(min_ns);
}

Duration Network::min_remote_link_delay() const {
  std::int64_t min_ns = std::numeric_limits<std::int64_t>::max();
  for (std::size_t li = 0; li < links_.size(); ++li) {
    const DirectedLink& link = links_[li];
    if (!link.enabled) continue;
    if (!nodes_[link.to.value()].remote &&
        !nodes_[link_sources_[li].value()].remote) {
      continue;
    }
    min_ns = std::min(min_ns, link.config.delay.ns());
  }
  return Duration::nanos(min_ns);
}

int Network::hop_count(NodeId from, NodeId to) const {
  int hops = 0;
  NodeId at = from;
  while (at != to) {
    const DirectedLink* link = next_hop(at, to);
    if (link == nullptr) return -1;
    at = link->to;
    if (++hops > static_cast<int>(nodes_.size())) return -1;
  }
  return hops;
}

bool Network::has_route(NodeId from, NodeId to) const {
  return from == to || next_hop(from, to) != nullptr;
}

const LinkStats& Network::link_stats(NodeId a, NodeId b) const {
  for (std::size_t li : nodes_[a.value()].links) {
    if (links_[li].to == b) return links_[li].stats;
  }
  assert(false && "no such link");
  static LinkStats empty;
  return empty;
}

void Network::set_link_impairment(NodeId a, NodeId b,
                                  LinkImpairment impairment) {
  for (std::size_t li : nodes_[a.value()].links) {
    if (links_[li].to == b) links_[li].impairment = impairment;
  }
  for (std::size_t li : nodes_[b.value()].links) {
    if (links_[li].to == a) links_[li].impairment = impairment;
  }
}

void Network::set_link_enabled(NodeId a, NodeId b, bool enabled) {
  for (std::size_t li : nodes_[a.value()].links) {
    if (links_[li].to != b) continue;
    DirectedLink& link = links_[li];
    // Partition accounting on the a→b direction only (both directions
    // flip together, counting one avoids doubling the outage).
    if (link.enabled && !enabled) {
      link.down_since = sim_.now();
    } else if (!link.enabled && enabled && m_partition_seconds_ != nullptr) {
      m_partition_seconds_->add((sim_.now() - link.down_since).to_seconds());
    }
    link.enabled = enabled;
  }
  for (std::size_t li : nodes_[b.value()].links) {
    if (links_[li].to == a) links_[li].enabled = enabled;
  }
  routes_dirty_ = true;
}

const std::string& Network::node_name(NodeId node) const {
  return nodes_[node.value()].name;
}

}  // namespace dlte::net
