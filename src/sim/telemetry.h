// TelemetryDriver: the sim-side pump for the obs telemetry plane
// (DESIGN.md §10).
//
// obs::TimeSeriesSampler and obs::SloMonitor are deliberately
// clock-free — they act only when handed a TimePoint. This driver owns
// the recurring simulator event that hands it to them: each tick first
// evaluates the SLO rules (so alerts are judged against the metrics as
// they stood during the interval), then samples the registry (so the
// sampler picks up the health gauges the monitor just refreshed).
//
// Ticks are ordinary events on the shared queue. They shift global
// sequence-number allocation but never the relative order of any two
// *other* same-timestamp events, so enabling telemetry does not perturb
// a seeded run — the determinism tests double-run with it on.
//
// Optionally bridges SLO fire/resolve transitions into a TraceLog under
// TraceCategory::kHealth, putting alerts on the same operator timeline
// as grants, attaches, and injected faults.
#pragma once

#include <cstddef>

#include "obs/series.h"
#include "obs/slo.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace dlte::sim {

class TelemetryDriver {
 public:
  // Either pointer may be null: a null sampler gives alert-only
  // monitoring, a null monitor gives plain sampling.
  TelemetryDriver(Simulator& sim, obs::TimeSeriesSampler* sampler,
                  obs::SloMonitor* monitor)
      : sim_(sim), sampler_(sampler), monitor_(monitor) {}
  TelemetryDriver(const TelemetryDriver&) = delete;
  TelemetryDriver& operator=(const TelemetryDriver&) = delete;

  // Begin ticking every `interval` (default: the sampler's configured
  // interval, or 500 ms with no sampler). First tick one interval from
  // now. start() on a running driver restarts it at the new cadence.
  void start(Duration interval = Duration::seconds(0.0));
  // Stop at the next tick. Destruction also stops (RAII handle).
  void stop() { handle_.cancel(); }

  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }

  // Mirror SLO alert transitions into `trace` as kHealth events
  // (component = rule scope, message = SloAlertEvent::describe()).
  // Null-safe; call before start() to catch every transition.
  void set_trace(TraceLog* trace) { trace_ = trace; }

 private:
  void tick();

  Simulator& sim_;
  obs::TimeSeriesSampler* sampler_;
  obs::SloMonitor* monitor_;
  TraceLog* trace_{nullptr};
  Simulator::PeriodicHandle handle_;
  std::uint64_t ticks_{0};
  // Alert events already bridged into the trace log.
  std::size_t bridged_events_{0};
};

}  // namespace dlte::sim
