#include "sim/event_queue.h"

#include <algorithm>
#include <bit>
#include <limits>

namespace dlte::sim {

namespace {
[[nodiscard]] std::size_t pow2_at_least(std::size_t n, std::size_t floor) {
  return std::bit_ceil(std::max(n, floor));
}
}  // namespace

CalendarQueue::CalendarQueue() {
  // ~1 ms buckets until the first recalibration measures the real
  // inter-event spacing.
  rebuild(kMinBuckets, 20);
}

CalendarQueue::Bucket& CalendarQueue::direct_search_min() {
  ++direct_searches_;
  const Key* min_key = nullptr;
  std::size_t min_bucket = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const Bucket& bucket = buckets_[i];
    if (bucket.drained()) continue;
    if (min_key == nullptr || key_before(bucket.front(), *min_key)) {
      min_key = &bucket.front();
      min_bucket = i;
    }
  }
  seek_to(min_key->when_ns);
  return buckets_[min_bucket];
}

void CalendarQueue::maybe_resize() {
  // Scan once for the live span; the new width targets a handful of
  // events per bucket (Brown's heuristic, power-of-two rounded).
  std::int64_t min_ns = std::numeric_limits<std::int64_t>::max();
  std::int64_t max_ns = std::numeric_limits<std::int64_t>::min();
  for (const Bucket& bucket : buckets_) {
    for (std::size_t i = bucket.head; i < bucket.keys.size(); ++i) {
      const std::int64_t ns = bucket.keys[i].when_ns;
      min_ns = std::min(min_ns, ns);
      max_ns = std::max(max_ns, ns);
    }
  }
  int shift = shift_;
  if (size_ >= 2 && max_ns > min_ns) {
    const std::int64_t gap =
        (max_ns - min_ns) / static_cast<std::int64_t>(size_);
    // Width in [gap, 2*gap): ~1 live event per bucket at recalibration
    // time, so sorted inserts stay short even after the queue doubles.
    shift = gap > 0 ? std::bit_width(static_cast<std::uint64_t>(gap))
                    : kMinShift;
    shift = std::clamp(shift, kMinShift, kMaxShift);
  }
  rebuild(std::min(pow2_at_least(size_, kMinBuckets), kMaxBuckets), shift);
}

void CalendarQueue::rebuild(std::size_t nbuckets, int shift) {
  std::vector<Key> live;
  live.reserve(size_);
  for (Bucket& bucket : buckets_) {
    for (std::size_t i = bucket.head; i < bucket.keys.size(); ++i) {
      live.push_back(bucket.keys[i]);
    }
  }
  // Globally sorted, every insert below is an O(1) append. Keys only —
  // the action slab is untouched by recalibration.
  std::sort(live.begin(), live.end(), key_before);
  buckets_.assign(nbuckets, Bucket{});
  mask_ = nbuckets - 1;
  shift_ = shift;
  if (!buckets_.empty() && !live.empty()) {
    seek_to(live.front().when_ns);
  } else {
    cur_bucket_ = 0;
    cur_window_start_ = 0;
  }
  for (const Key& key : live) {
    buckets_[bucket_of(key.when_ns)].keys.push_back(key);
  }
  if (size_ != 0 || !live.empty()) ++resizes_;
}

}  // namespace dlte::sim
