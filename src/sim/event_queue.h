// Event queues for the discrete-event engine (DESIGN.md §13).
//
// Two implementations of one pending-event set, both totally ordered by
// (when, seq) so equal-timestamp events pop in scheduling order:
//
//   * BinaryHeapQueue — std::priority_queue, O(log n) push/pop. The
//     original engine queue, kept as the parity reference for tests and
//     as the comparison baseline in bench_microbench.
//   * CalendarQueue — Brown's calendar queue: a ring of time buckets of
//     power-of-two width, O(1) amortized push/pop under the hold model
//     (the steady state of a big simulation: queue size roughly constant,
//     pops mostly near the clock). This is what sim::Simulator runs on.
//
// The byte-identical contract: for any push sequence, both queues pop
// the exact same (when, seq, action) sequence. Equal-time events share a
// bucket (the bucket index is a pure function of `when`), where they are
// kept in (when, seq) sorted order, so the FIFO tie-break survives the
// change of data structure. tests/sim/event_queue_test.cpp drives both
// with randomized schedules and compares the full pop order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/time.h"

namespace dlte::sim {

struct QueuedEvent {
  TimePoint when;
  std::uint64_t seq{0};
  std::function<void()> action;
  // Interned attribution label (obs::EventProfiler id); 0 = unlabeled.
  // Never participates in ordering — it rides along for the profiler.
  std::uint32_t label{0};
};

// Strict weak order: earliest first, then scheduling order.
[[nodiscard]] inline bool event_before(const QueuedEvent& a,
                                       const QueuedEvent& b) {
  if (a.when != b.when) return a.when < b.when;
  return a.seq < b.seq;
}

// Reference implementation: binary min-heap on (when, seq).
class BinaryHeapQueue {
 public:
  void push(QueuedEvent event) { queue_.push(std::move(event)); }

  // Pop the minimum. Precondition: !empty().
  QueuedEvent pop() {
    // priority_queue::top is const; moving out before pop is the
    // standard escape hatch (the popped element is never read again).
    QueuedEvent event = std::move(const_cast<QueuedEvent&>(queue_.top()));
    queue_.pop();
    return event;
  }

  // Minimum element, or nullptr when empty.
  [[nodiscard]] const QueuedEvent* peek() const {
    return queue_.empty() ? nullptr : &queue_.top();
  }

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t size() const { return queue_.size(); }

 private:
  struct After {
    bool operator()(const QueuedEvent& a, const QueuedEvent& b) const {
      return event_before(b, a);
    }
  };
  std::priority_queue<QueuedEvent, std::vector<QueuedEvent>, After> queue_;
};

// Calendar queue. Bucket b of the ring covers every time window
// [t, t + width) with (t / width) % nbuckets == b; width is a power of
// two (a shift), nbuckets is a power of two (a mask), so the bucket of a
// timestamp is two ALU ops. Buckets hold trivially-copyable sort keys
// (when, seq, slot) kept (when, seq)-ascending behind a drained-head
// index; the std::function payloads live in a slot slab off to the side
// and move exactly twice — into the slab on push, out on pop — so the
// sorted inserts and the recalibration rebuilds shuffle 24-byte PODs
// (memmove), never callables. The common push (append at the bucket
// back) and the common pop (head of the current bucket) are O(1); a
// full lap without an in-window event falls back to a direct min
// search, and the bucket count / width recalibrate as the queue grows
// and shrinks. Timestamps must be non-negative — the engine clamps
// past/negative targets before pushing.
class CalendarQueue {
 public:
  CalendarQueue();

  void push(QueuedEvent event) {
    const std::int64_t when_ns = event.when.ns();
    if (size_ == 0 || when_ns < cur_window_start_) {
      // The new event precedes the scan cursor (or the ring is idle):
      // rewind so the next pop cannot miss it.
      seek_to(when_ns);
    }
    insert_key(buckets_[bucket_of(when_ns)],
               Key{when_ns, event.seq,
                   store_action(std::move(event.action), event.label)});
    ++size_;
    // mask_ + 1 == buckets_.size(); comparing against the cached mask
    // keeps the common no-resize path free of vector-size loads.
    if (size_ > 2 * mask_ + 2 && mask_ + 1 < kMaxBuckets) {
      maybe_resize();
    }
  }

  // Pop the global minimum by (when, seq). Precondition: !empty().
  QueuedEvent pop() {
    Bucket& bucket = find_min_bucket();
    const Key key = bucket.keys[bucket.head];
    ++bucket.head;
    --size_;
    bucket.compact_if_drained();
    if (size_ * 4 <= mask_ && mask_ + 1 > kMinBuckets) {
      maybe_resize();
    }
    const std::uint32_t label = labels_[key.slot];
    return QueuedEvent{TimePoint::from_ns(key.when_ns), key.seq,
                       take_action(key.slot), label};
  }

  // Minimum element, or nullptr when empty. Advances the internal scan
  // cursor (cached for the following pop) but never reorders anything.
  // Only `when` and `seq` are populated — the action stays queued until
  // pop() (no caller inspects an action it has not yet popped).
  [[nodiscard]] const QueuedEvent* peek() {
    if (size_ == 0) return nullptr;
    const Key& key = find_min_bucket().front();
    peek_event_.when = TimePoint::from_ns(key.when_ns);
    peek_event_.seq = key.seq;
    return &peek_event_;
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  // Introspection for tests and the microbench.
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }
  [[nodiscard]] std::uint64_t resizes() const { return resizes_; }
  [[nodiscard]] std::uint64_t direct_searches() const {
    return direct_searches_;
  }

 private:
  // Bucket-count bounds: never fewer than 16 (tiny queues stay cheap to
  // lap-scan), never more than 1<<22 (a hard cap on ring memory).
  static constexpr std::size_t kMinBuckets = 16;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 22;
  // Width bounds as shifts: 1 ns .. ~9.3 simulated hours per bucket.
  static constexpr int kMinShift = 0;
  static constexpr int kMaxShift = 45;

  // Sort key: everything the ordering needs, trivially copyable so the
  // bucket vectors shift with memmove. `slot` indexes the action slab.
  struct Key {
    std::int64_t when_ns;
    std::uint64_t seq;
    std::size_t slot;
  };
  [[nodiscard]] static bool key_before(const Key& a, const Key& b) {
    if (a.when_ns != b.when_ns) return a.when_ns < b.when_ns;
    return a.seq < b.seq;
  }

  struct Bucket {
    // keys[head..] are live, (when, seq)-ascending.
    std::vector<Key> keys;
    std::size_t head{0};

    [[nodiscard]] bool drained() const { return head >= keys.size(); }
    [[nodiscard]] const Key& front() const { return keys[head]; }
    void compact_if_drained() {
      if (drained() && !keys.empty()) {
        keys.clear();  // Keeps capacity: bucket storage is the arena.
        head = 0;
      }
    }
  };

  [[nodiscard]] std::size_t bucket_of(std::int64_t when_ns) const {
    return static_cast<std::size_t>(when_ns >> shift_) & mask_;
  }
  [[nodiscard]] std::int64_t window_start_of(std::int64_t when_ns) const {
    return (when_ns >> shift_) << shift_;
  }
  // Point the scan cursor at the window containing `when_ns`.
  void seek_to(std::int64_t when_ns) {
    cur_bucket_ = bucket_of(when_ns);
    cur_window_start_ = window_start_of(when_ns);
  }

  // Park the action (and its attribution label) in a recycled or fresh
  // slab slot; the key carries the slot index through the sorted bucket.
  // The label lives in a parallel vector, not in Key — the sort keys
  // stay 24-byte PODs and the memmove-heavy paths never widen.
  [[nodiscard]] std::size_t store_action(std::function<void()>&& action,
                                         std::uint32_t label) {
    if (free_slots_.empty()) {
      actions_.push_back(std::move(action));
      labels_.push_back(label);
      return actions_.size() - 1;
    }
    const std::size_t slot = free_slots_.back();
    free_slots_.pop_back();
    actions_[slot] = std::move(action);
    labels_[slot] = label;
    return slot;
  }
  [[nodiscard]] std::function<void()> take_action(std::size_t slot) {
    free_slots_.push_back(slot);
    return std::move(actions_[slot]);
  }

  void insert_key(Bucket& bucket, Key key) {
    // pop() compacts the bucket it drains, so `bucket` is never
    // drained-but-nonempty here; keys[head..] is the live sorted run.
    if (bucket.keys.empty() || !key_before(key, bucket.keys.back())) {
      bucket.keys.push_back(key);
      return;
    }
    // Buckets hold a handful of keys by construction (the resize policy
    // targets a few per bucket), so a backward linear scan beats a
    // branchy binary search.
    auto pos = bucket.keys.end() - 1;
    const auto live_begin =
        bucket.keys.begin() + static_cast<std::ptrdiff_t>(bucket.head);
    while (pos != live_begin && key_before(key, *(pos - 1))) --pos;
    bucket.keys.insert(pos, key);
  }

  // Locate the bucket holding the global minimum; positions the cursor
  // on it. Precondition: !empty().
  Bucket& find_min_bucket() {
    const std::int64_t width = std::int64_t{1} << shift_;
    std::size_t scanned = 0;
    for (;;) {
      Bucket& bucket = buckets_[cur_bucket_];
      if (!bucket.drained() &&
          bucket.front().when_ns < cur_window_start_ + width) {
        // In-window head: nothing earlier can live in any other bucket —
        // equal timestamps always share a bucket, and every earlier
        // window was scanned empty (or rewound to on push).
        return bucket;
      }
      cur_bucket_ = (cur_bucket_ + 1) & mask_;
      cur_window_start_ += width;
      if (++scanned > mask_) {
        // A full lap without an in-window event: the pending set is
        // sparse relative to the ring span. Cold path, out of line.
        return direct_search_min();
      }
    }
  }

  Bucket& direct_search_min();
  void maybe_resize();
  void rebuild(std::size_t nbuckets, int shift);

  std::vector<Bucket> buckets_;
  std::size_t mask_{0};
  int shift_{0};
  std::size_t size_{0};
  // Scan cursor: no live event exists before cur_window_start_.
  std::size_t cur_bucket_{0};
  std::int64_t cur_window_start_{0};
  // Action slab + free list; keys index it via Key::slot. labels_ is
  // the slot-parallel attribution-label slab.
  std::vector<std::function<void()>> actions_;
  std::vector<std::uint32_t> labels_;
  std::vector<std::size_t> free_slots_;
  QueuedEvent peek_event_;
  std::uint64_t resizes_{0};
  std::uint64_t direct_searches_{0};
};

}  // namespace dlte::sim
