// Deterministic random-number streams.
//
// Each component (one UE's mobility, one link's shadowing, one traffic
// source) derives its own independent stream from the master seed plus a
// stable name, so adding a component never perturbs the draws seen by
// existing ones — a prerequisite for meaningful A/B experiments between
// architectures.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace dlte::sim {

class RngStream {
 public:
  RngStream() : engine_(0xd17e) {}
  explicit RngStream(std::uint64_t seed) : engine_(seed) {}

  // Derive a substream from a master seed and a stable component name.
  [[nodiscard]] static RngStream derive(std::uint64_t master_seed,
                                        std::string_view component);

  [[nodiscard]] double uniform(double lo = 0.0, double hi = 1.0);
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);
  [[nodiscard]] double exponential(double mean);
  [[nodiscard]] double normal(double mean, double stddev);
  [[nodiscard]] bool bernoulli(double p);

 private:
  std::mt19937_64 engine_;
};

}  // namespace dlte::sim
