// Deterministic random-number streams.
//
// Each component (one UE's mobility, one link's shadowing, one traffic
// source) derives its own independent stream from the master seed plus a
// stable name, so adding a component never perturbs the draws seen by
// existing ones — a prerequisite for meaningful A/B experiments between
// architectures.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace dlte::sim {

class RngStream {
 public:
  RngStream() : engine_(0xd17e) {}
  explicit RngStream(std::uint64_t seed) : engine_(seed) {}

  // Derive a substream from a master seed and a stable component name.
  [[nodiscard]] static RngStream derive(std::uint64_t master_seed,
                                        std::string_view component);

  // Indexed variant: the stream for the `index`-th instance of a
  // component family (AP 7's mobility, shard 3's arrivals). Equivalent to
  // hashing "<component>/<index>" but cheaper and explicit about intent.
  [[nodiscard]] static RngStream derive(std::uint64_t master_seed,
                                        std::string_view component,
                                        std::uint64_t index);

  // Deterministic child seed for handing a whole seed (not a stream) to a
  // subcomponent: the sharded runtime derives one child seed per shard
  // from the scenario seed, and each shard derives its per-AP streams
  // from the SCENARIO seed — never the shard seed — so changing the shard
  // count never changes any per-AP random sequence.
  [[nodiscard]] static std::uint64_t child_seed(std::uint64_t master_seed,
                                                std::string_view component,
                                                std::uint64_t index = 0);

  [[nodiscard]] double uniform(double lo = 0.0, double hi = 1.0);
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);
  [[nodiscard]] double exponential(double mean);
  [[nodiscard]] double normal(double mean, double stddev);
  [[nodiscard]] bool bernoulli(double p);

 private:
  std::mt19937_64 engine_;
};

}  // namespace dlte::sim
