// Discrete-event simulation engine.
//
// Everything in dLTE — radio frames, queue drains, protocol timers, UE
// movement — is driven from one Simulator instance. Events at equal
// timestamps execute in scheduling order (a monotone sequence number breaks
// ties), which keeps runs bit-for-bit reproducible for a given seed.
//
// The pending set is a calendar queue (sim/event_queue.h): O(1) amortized
// schedule/pop where the old binary heap paid O(log n), with an event
// order guaranteed byte-identical to the heap's — the parity suite in
// tests/sim/event_queue_test.cpp holds that line.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/time.h"
#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "sim/event_queue.h"

namespace dlte::sim {

class Simulator {
 public:
  using Action = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] TimePoint now() const { return now_; }

  // Schedule `action` to run `delay` after the current time. Negative
  // delays are clamped to "immediately after the current event". The
  // `label` overloads carry an attribution id from label() — when a
  // profiler is attached, the event's schedule/clamp/residency/execute
  // counts land under that label instead of "sim.unlabeled".
  void schedule(Duration delay, Action action);
  void schedule(Duration delay, Action action, std::uint32_t label);
  // Schedule at an absolute time. A `when` earlier than now() is clamped
  // to "immediately after the current event" and counted (accessor below,
  // metric `sim.schedule_past_events`) instead of silently reordering —
  // the sharded runtime injects cross-shard events at window boundaries
  // and relies on a past-targeted injection being loud, not lost.
  void schedule_at(TimePoint when, Action action);
  void schedule_at(TimePoint when, Action action, std::uint32_t label);

  // Cancellation token for a periodic process. Move-only RAII: letting it
  // die (or calling cancel()) stops the process at its next tick —
  // components that schedule `this`-capturing periodics MUST hold one so
  // destruction cannot leave a dangling callback in the queue.
  class PeriodicHandle {
   public:
    PeriodicHandle() = default;
    explicit PeriodicHandle(std::shared_ptr<bool> alive)
        : alive_(std::move(alive)) {}
    PeriodicHandle(const PeriodicHandle&) = delete;
    PeriodicHandle& operator=(const PeriodicHandle&) = delete;
    PeriodicHandle(PeriodicHandle&&) = default;
    PeriodicHandle& operator=(PeriodicHandle&& other) noexcept {
      cancel();
      alive_ = std::move(other.alive_);
      return *this;
    }
    ~PeriodicHandle() { cancel(); }
    void cancel() {
      if (alive_) *alive_ = false;
      alive_.reset();
    }

   private:
    std::shared_ptr<bool> alive_;
  };

  // Schedule `action` every `period`, starting one period from now, for
  // the lifetime of the simulation (for actors that outlive it).
  void every(Duration period, Action action);
  void every(Duration period, Action action, std::uint32_t label);
  // As above, but stops when the returned handle is cancelled/destroyed.
  [[nodiscard]] PeriodicHandle every_cancellable(Duration period,
                                                 Action action);
  [[nodiscard]] PeriodicHandle every_cancellable(Duration period, Action action,
                                                 std::uint32_t label);

  // Run until the event queue drains or `deadline` passes (whichever is
  // first). Events scheduled exactly at the deadline still run.
  void run_until(TimePoint deadline);
  // Run until the event queue drains entirely.
  void run_all();

  // Stop after the current event; run_until/run_all return early.
  void stop() { stopped_ = true; }

  [[nodiscard]] std::uint64_t events_executed() const {
    return events_executed_;
  }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::size_t max_queue_depth() const {
    return max_queue_depth_;
  }
  // Count of schedule_at() targets that were in the past and got clamped.
  [[nodiscard]] std::uint64_t schedule_past_events() const {
    return schedule_past_events_;
  }
  // Calendar-queue recalibration count (also metric `sim.queue_resizes`).
  [[nodiscard]] std::uint64_t queue_resizes() const {
    return queue_.resizes();
  }
  // Timestamp of the earliest pending event, or TimePoint::from_ns(
  // INT64_MAX) when the queue is empty. The sharded runtime peeks this to
  // fast-forward over windows in which every shard is idle.
  [[nodiscard]] TimePoint next_event_time() const;

  // Attach a metrics registry: events dispatched flow into
  // `<prefix>sim.events_executed` at the end of each run, and the high
  // watermark of the event queue into `<prefix>sim.max_queue_depth`.
  void set_metrics(obs::MetricsRegistry* registry,
                   const std::string& prefix = "");

  // Attach an event-attribution profiler (null-safe, the set_metrics
  // idiom). Labels interned before attachment resolve to "sim.unlabeled".
  void set_profiler(obs::EventProfiler* profiler) { profiler_ = profiler; }
  [[nodiscard]] obs::EventProfiler* profiler() const { return profiler_; }
  // Attach a determinism-audit timeline (DESIGN.md §15): every executed
  // event's (when, seq, label) folds into its windowed digests, right
  // next to the profiler hook. Null-safe; attach BEFORE interning labels
  // so label() can register their name hashes with the auditor too.
  void set_auditor(obs::DigestTimeline* auditor) { auditor_ = auditor; }
  [[nodiscard]] obs::DigestTimeline* auditor() const { return auditor_; }
  // Intern an attribution label for the schedule_* label overloads.
  // Without a profiler every name maps to the unlabeled id, so callsites
  // can intern once at construction regardless of profiling state.
  [[nodiscard]] std::uint32_t label(const std::string& name) {
    if (profiler_ == nullptr) return obs::kUnlabeledEvent;
    const std::uint32_t id = profiler_->intern(name);
    if (auditor_ != nullptr) auditor_->register_label(id, name);
    return id;
  }

 private:
  void flush_metrics();

  // mutable: peek caches a scan cursor; logically const.
  mutable CalendarQueue queue_;
  TimePoint now_{};
  std::uint64_t next_seq_{0};
  std::uint64_t events_executed_{0};
  std::uint64_t schedule_past_events_{0};
  std::size_t max_queue_depth_{0};
  bool stopped_{false};

  obs::EventProfiler* profiler_{nullptr};
  obs::DigestTimeline* auditor_{nullptr};

  obs::Counter* past_counter_{nullptr};
  obs::Counter* events_counter_{nullptr};
  obs::Counter* queue_resizes_counter_{nullptr};
  obs::Gauge* queue_depth_gauge_{nullptr};
  obs::Gauge* queue_pending_gauge_{nullptr};
  obs::Gauge* sim_seconds_gauge_{nullptr};
  std::uint64_t events_flushed_{0};
  std::uint64_t past_flushed_{0};
  std::uint64_t resizes_flushed_{0};
};

}  // namespace dlte::sim
