#include "sim/trace.h"

#include <iomanip>

namespace dlte::sim {

const char* trace_category_name(TraceCategory category) {
  switch (category) {
    case TraceCategory::kRegistry:
      return "registry";
    case TraceCategory::kAttach:
      return "attach";
    case TraceCategory::kCoordination:
      return "coord";
    case TraceCategory::kHandover:
      return "handover";
    case TraceCategory::kData:
      return "data";
    case TraceCategory::kMobility:
      return "mobility";
    case TraceCategory::kFault:
      return "fault";
    case TraceCategory::kHealth:
      return "health";
  }
  return "?";
}

void TraceLog::record(TraceCategory category, std::string component,
                      std::string message) {
  if (events_.size() >= capacity_) {
    events_.pop_front();
    ++dropped_;
    ++total_dropped_;
    obs::inc(dropped_counter_);
  }
  ++total_recorded_;
  obs::inc(recorded_counter_);
  const auto cat = static_cast<std::size_t>(category);
  if (cat < category_counters_.size()) {
    obs::inc(category_counters_[cat]);
  }
  if (tracer_ != nullptr && tracer_->current() != obs::kNoSpan) {
    tracer_->annotate_current(trace_category_name(category),
                              component + ": " + message);
  }
  events_.push_back(TraceEvent{sim_.now(), category, std::move(component),
                               std::move(message)});
}

void TraceLog::set_metrics(obs::MetricsRegistry* registry,
                           const std::string& prefix) {
  category_counters_.clear();
  if (registry == nullptr) {
    recorded_counter_ = nullptr;
    dropped_counter_ = nullptr;
    return;
  }
  recorded_counter_ = &registry->counter(prefix + "trace.recorded");
  dropped_counter_ = &registry->counter(prefix + "trace.dropped");
  constexpr TraceCategory kAll[] = {
      TraceCategory::kRegistry,  TraceCategory::kAttach,
      TraceCategory::kCoordination, TraceCategory::kHandover,
      TraceCategory::kData,      TraceCategory::kMobility,
      TraceCategory::kFault,     TraceCategory::kHealth,
  };
  for (const TraceCategory c : kAll) {
    category_counters_.push_back(&registry->counter(
        prefix + "trace.recorded." + trace_category_name(c)));
  }
}

std::vector<const TraceEvent*> TraceLog::by_category(
    TraceCategory category) const {
  std::vector<const TraceEvent*> out;
  for (const auto& e : events_) {
    if (e.category == category) out.push_back(&e);
  }
  return out;
}

std::size_t TraceLog::count(TraceCategory category) const {
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.category == category) ++n;
  }
  return n;
}

void TraceLog::print(std::ostream& os) const {
  for (const auto& e : events_) {
    os << '[' << std::fixed << std::setprecision(3) << std::right
       << std::setw(9) << e.when.to_seconds() << "s] " << std::left
       << std::setw(9)
       << trace_category_name(e.category) << ' ' << e.component << ": "
       << e.message << '\n';
  }
  if (dropped_ > 0) {
    os << "(" << dropped_ << " older events dropped)\n";
  }
}

}  // namespace dlte::sim
