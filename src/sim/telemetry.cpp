#include "sim/telemetry.h"

namespace dlte::sim {

void TelemetryDriver::start(Duration interval) {
  if (interval.to_seconds() <= 0.0) {
    interval = sampler_ != nullptr ? sampler_->interval()
                                   : Duration::millis(500);
  }
  handle_ = sim_.every_cancellable(interval, [this] { tick(); });
}

void TelemetryDriver::tick() {
  ++ticks_;
  const TimePoint now = sim_.now();
  if (monitor_ != nullptr) {
    monitor_->evaluate(now);
    if (trace_ != nullptr) {
      const auto& events = monitor_->events();
      for (; bridged_events_ < events.size(); ++bridged_events_) {
        const auto& event = events[bridged_events_];
        trace_->record(TraceCategory::kHealth, event.scope, event.describe());
      }
    }
  }
  if (sampler_ != nullptr) sampler_->sample(now);
}

}  // namespace dlte::sim
