#include "sim/random.h"

namespace dlte::sim {

namespace {
// FNV-1a over the component name, mixed with the master seed. Stable across
// platforms (unlike std::hash).
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

RngStream RngStream::derive(std::uint64_t master_seed,
                            std::string_view component) {
  return RngStream{splitmix64(master_seed ^ fnv1a(component))};
}

RngStream RngStream::derive(std::uint64_t master_seed,
                            std::string_view component, std::uint64_t index) {
  return RngStream{child_seed(master_seed, component, index)};
}

std::uint64_t RngStream::child_seed(std::uint64_t master_seed,
                                    std::string_view component,
                                    std::uint64_t index) {
  // Two splitmix rounds so (seed ^ name-hash) and the index mix through
  // independent avalanches — adjacent indices land far apart.
  return splitmix64(splitmix64(master_seed ^ fnv1a(component)) + index);
}

double RngStream::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  return d(engine_);
}

std::uint64_t RngStream::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  std::uniform_int_distribution<std::uint64_t> d(lo, hi);
  return d(engine_);
}

double RngStream::exponential(double mean) {
  std::exponential_distribution<double> d(1.0 / mean);
  return d(engine_);
}

double RngStream::normal(double mean, double stddev) {
  std::normal_distribution<double> d(mean, stddev);
  return d(engine_);
}

bool RngStream::bernoulli(double p) {
  std::bernoulli_distribution d(p);
  return d(engine_);
}

}  // namespace dlte::sim
