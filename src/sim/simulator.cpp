#include "sim/simulator.h"

#include <limits>
#include <memory>
#include <utility>

namespace dlte::sim {

void Simulator::schedule(Duration delay, Action action) {
  if (delay.is_negative()) delay = Duration::nanos(0);
  schedule_at(now_ + delay, std::move(action));
}

void Simulator::schedule_at(TimePoint when, Action action) {
  if (when < now_) {
    when = now_;
    ++schedule_past_events_;
  }
  queue_.push(QueuedEvent{when, next_seq_++, std::move(action)});
  if (queue_.size() > max_queue_depth_) max_queue_depth_ = queue_.size();
}

TimePoint Simulator::next_event_time() const {
  const QueuedEvent* next = queue_.peek();
  if (next == nullptr) {
    return TimePoint::from_ns(std::numeric_limits<std::int64_t>::max());
  }
  return next->when;
}

void Simulator::set_metrics(obs::MetricsRegistry* registry,
                            const std::string& prefix) {
  if (registry == nullptr) {
    events_counter_ = nullptr;
    past_counter_ = nullptr;
    queue_depth_gauge_ = nullptr;
    sim_seconds_gauge_ = nullptr;
    return;
  }
  events_counter_ = &registry->counter(prefix + "sim.events_executed");
  past_counter_ = &registry->counter(prefix + "sim.schedule_past_events");
  queue_depth_gauge_ = &registry->gauge(prefix + "sim.max_queue_depth");
  sim_seconds_gauge_ = &registry->gauge(prefix + "sim.seconds");
  events_flushed_ = events_executed_;
  past_flushed_ = schedule_past_events_;
}

void Simulator::flush_metrics() {
  if (events_counter_ != nullptr) {
    events_counter_->inc(events_executed_ - events_flushed_);
    events_flushed_ = events_executed_;
  }
  if (past_counter_ != nullptr) {
    past_counter_->inc(schedule_past_events_ - past_flushed_);
    past_flushed_ = schedule_past_events_;
  }
  if (queue_depth_gauge_ != nullptr) {
    queue_depth_gauge_->set_max(static_cast<double>(max_queue_depth_));
  }
  if (sim_seconds_gauge_ != nullptr) {
    sim_seconds_gauge_->set_max(now_.to_seconds());
  }
}

void Simulator::every(Duration period, Action action) {
  // The lambda reschedules itself; capturing `this` is safe because events
  // cannot outlive the simulator that owns the queue.
  auto wrapper = std::make_shared<Action>();
  *wrapper = [this, period, action = std::move(action), wrapper]() {
    action();
    schedule(period, *wrapper);
  };
  schedule(period, *wrapper);
}

Simulator::PeriodicHandle Simulator::every_cancellable(Duration period,
                                                       Action action) {
  auto alive = std::make_shared<bool>(true);
  auto wrapper = std::make_shared<Action>();
  *wrapper = [this, period, alive, action = std::move(action), wrapper]() {
    if (!*alive) return;  // Cancelled: stop rescheduling, never call back.
    action();
    if (*alive) schedule(period, *wrapper);
  };
  schedule(period, *wrapper);
  return PeriodicHandle{std::move(alive)};
}

void Simulator::run_until(TimePoint deadline) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    if (queue_.peek()->when > deadline) break;
    QueuedEvent ev = queue_.pop();
    now_ = ev.when;
    ++events_executed_;
    ev.action();
  }
  if (now_ < deadline) now_ = deadline;
  flush_metrics();
}

void Simulator::run_all() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    QueuedEvent ev = queue_.pop();
    now_ = ev.when;
    ++events_executed_;
    ev.action();
  }
  flush_metrics();
}

}  // namespace dlte::sim
