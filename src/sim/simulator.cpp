#include "sim/simulator.h"

#include <limits>
#include <memory>
#include <utility>

namespace dlte::sim {

void Simulator::schedule(Duration delay, Action action) {
  schedule(delay, std::move(action), obs::kUnlabeledEvent);
}

void Simulator::schedule(Duration delay, Action action, std::uint32_t label) {
  if (delay.is_negative()) delay = Duration::nanos(0);
  schedule_at(now_ + delay, std::move(action), label);
}

void Simulator::schedule_at(TimePoint when, Action action) {
  schedule_at(when, std::move(action), obs::kUnlabeledEvent);
}

void Simulator::schedule_at(TimePoint when, Action action,
                            std::uint32_t label) {
  if (when < now_) {
    when = now_;
    ++schedule_past_events_;
    if (profiler_ != nullptr) profiler_->on_past_clamp(label);
  }
  if (profiler_ != nullptr) {
    // Residency is simulated time queued: (when - now). Deterministic,
    // unlike a pop-side wall measurement would be.
    profiler_->on_schedule(label, (when - now_).ns());
  }
  queue_.push(QueuedEvent{when, next_seq_++, std::move(action), label});
  if (queue_.size() > max_queue_depth_) max_queue_depth_ = queue_.size();
}

TimePoint Simulator::next_event_time() const {
  const QueuedEvent* next = queue_.peek();
  if (next == nullptr) {
    return TimePoint::from_ns(std::numeric_limits<std::int64_t>::max());
  }
  return next->when;
}

void Simulator::set_metrics(obs::MetricsRegistry* registry,
                            const std::string& prefix) {
  if (registry == nullptr) {
    events_counter_ = nullptr;
    past_counter_ = nullptr;
    queue_resizes_counter_ = nullptr;
    queue_depth_gauge_ = nullptr;
    queue_pending_gauge_ = nullptr;
    sim_seconds_gauge_ = nullptr;
    return;
  }
  events_counter_ = &registry->counter(prefix + "sim.events_executed");
  past_counter_ = &registry->counter(prefix + "sim.schedule_past_events");
  queue_resizes_counter_ = &registry->counter(prefix + "sim.queue_resizes");
  queue_depth_gauge_ = &registry->gauge(prefix + "sim.max_queue_depth");
  queue_pending_gauge_ = &registry->gauge(prefix + "sim.queue_depth");
  sim_seconds_gauge_ = &registry->gauge(prefix + "sim.seconds");
  events_flushed_ = events_executed_;
  past_flushed_ = schedule_past_events_;
  resizes_flushed_ = queue_.resizes();
}

void Simulator::flush_metrics() {
  if (events_counter_ != nullptr) {
    events_counter_->inc(events_executed_ - events_flushed_);
    events_flushed_ = events_executed_;
  }
  if (past_counter_ != nullptr) {
    past_counter_->inc(schedule_past_events_ - past_flushed_);
    past_flushed_ = schedule_past_events_;
  }
  if (queue_resizes_counter_ != nullptr) {
    queue_resizes_counter_->inc(queue_.resizes() - resizes_flushed_);
    resizes_flushed_ = queue_.resizes();
  }
  if (queue_depth_gauge_ != nullptr) {
    queue_depth_gauge_->set_max(static_cast<double>(max_queue_depth_));
  }
  if (queue_pending_gauge_ != nullptr) {
    // Current pending count at flush time (run end/window barrier) —
    // the live companion to the max_queue_depth high watermark.
    queue_pending_gauge_->set(static_cast<double>(queue_.size()));
  }
  if (sim_seconds_gauge_ != nullptr) {
    sim_seconds_gauge_->set_max(now_.to_seconds());
  }
}

void Simulator::every(Duration period, Action action) {
  every(period, std::move(action), obs::kUnlabeledEvent);
}

void Simulator::every(Duration period, Action action, std::uint32_t label) {
  // The lambda reschedules itself; capturing `this` is safe because events
  // cannot outlive the simulator that owns the queue.
  auto wrapper = std::make_shared<Action>();
  *wrapper = [this, period, label, action = std::move(action), wrapper]() {
    action();
    schedule(period, *wrapper, label);
  };
  schedule(period, *wrapper, label);
}

Simulator::PeriodicHandle Simulator::every_cancellable(Duration period,
                                                       Action action) {
  return every_cancellable(period, std::move(action), obs::kUnlabeledEvent);
}

Simulator::PeriodicHandle Simulator::every_cancellable(Duration period,
                                                       Action action,
                                                       std::uint32_t label) {
  auto alive = std::make_shared<bool>(true);
  auto wrapper = std::make_shared<Action>();
  *wrapper = [this, period, label, alive, action = std::move(action),
              wrapper]() {
    if (!*alive) return;  // Cancelled: stop rescheduling, never call back.
    action();
    if (*alive) schedule(period, *wrapper, label);
  };
  schedule(period, *wrapper, label);
  return PeriodicHandle{std::move(alive)};
}

void Simulator::run_until(TimePoint deadline) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    if (queue_.peek()->when > deadline) break;
    QueuedEvent ev = queue_.pop();
    now_ = ev.when;
    ++events_executed_;
    if (profiler_ != nullptr) profiler_->on_execute(ev.label);
    if (auditor_ != nullptr) {
      auditor_->on_execute(ev.when.ns(), ev.seq, ev.label);
    }
    ev.action();
  }
  if (now_ < deadline) now_ = deadline;
  flush_metrics();
}

void Simulator::run_all() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    QueuedEvent ev = queue_.pop();
    now_ = ev.when;
    ++events_executed_;
    if (profiler_ != nullptr) profiler_->on_execute(ev.label);
    if (auditor_ != nullptr) {
      auditor_->on_execute(ev.when.ns(), ev.seq, ev.label);
    }
    ev.action();
  }
  flush_metrics();
}

}  // namespace dlte::sim
