// TraceLog: structured event tracing for simulations.
//
// Operators of a real dLTE AP need to see what the box decided and when
// (grants, attaches, share changes, handovers); experiment debugging
// needs the same. Components record categorized one-line events against
// the simulated clock into a bounded ring; scenarios filter and print.
#pragma once

#include <deque>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "common/time.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "sim/simulator.h"

namespace dlte::sim {

enum class TraceCategory {
  kRegistry,
  kAttach,
  kCoordination,
  kHandover,
  kData,
  kMobility,
  kFault,   // Injected failures and recoveries (src/fault).
  kHealth,  // SLO alert fire/resolve transitions (src/obs/slo.h).
};

[[nodiscard]] const char* trace_category_name(TraceCategory category);

struct TraceEvent {
  TimePoint when;
  TraceCategory category;
  std::string component;
  std::string message;
};

class TraceLog {
 public:
  // `capacity` bounds memory: oldest events are dropped first.
  explicit TraceLog(const Simulator& sim, std::size_t capacity = 4096)
      : sim_(sim), capacity_(capacity) {}

  void record(TraceCategory category, std::string component,
              std::string message);

  [[nodiscard]] const std::deque<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::vector<const TraceEvent*> by_category(
      TraceCategory category) const;
  [[nodiscard]] std::size_t count(TraceCategory category) const;
  // Events evicted from the current window (resets with clear()).
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  // Lifetime totals. Unlike dropped(), these survive clear(): a scenario
  // that clears the ring between phases previously lost all evidence
  // that earlier phases overflowed, so silent trace loss was invisible.
  [[nodiscard]] std::uint64_t total_dropped() const { return total_dropped_; }
  [[nodiscard]] std::uint64_t total_recorded() const {
    return total_recorded_;
  }

  void print(std::ostream& os) const;
  // Empties the window. Window-scoped dropped() resets; lifetime totals
  // and attached metrics counters do not.
  void clear() {
    events_.clear();
    dropped_ = 0;
  }

  // Route recorded/dropped totals into `registry`:
  // `<prefix>trace.recorded`, `<prefix>trace.dropped`, and per-category
  // `<prefix>trace.recorded.<category>`. Counters accumulate from the
  // moment of attachment and are unaffected by clear().
  void set_metrics(obs::MetricsRegistry* registry,
                   const std::string& prefix = "");

  // Bridge into causal tracing: every record() also annotates the span
  // currently active on `tracer` (key = category name, value =
  // "component: message"), so legacy one-line events appear inside the
  // causal tree instead of a parallel stream. Null-safe.
  void set_tracer(obs::SpanTracer* tracer) { tracer_ = tracer; }

 private:
  const Simulator& sim_;
  std::size_t capacity_;
  std::deque<TraceEvent> events_;
  std::uint64_t dropped_{0};
  std::uint64_t total_dropped_{0};
  std::uint64_t total_recorded_{0};

  obs::SpanTracer* tracer_{nullptr};
  obs::Counter* recorded_counter_{nullptr};
  obs::Counter* dropped_counter_{nullptr};
  std::vector<obs::Counter*> category_counters_;
};

}  // namespace dlte::sim
