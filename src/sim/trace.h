// TraceLog: structured event tracing for simulations.
//
// Operators of a real dLTE AP need to see what the box decided and when
// (grants, attaches, share changes, handovers); experiment debugging
// needs the same. Components record categorized one-line events against
// the simulated clock into a bounded ring; scenarios filter and print.
#pragma once

#include <deque>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "common/time.h"
#include "sim/simulator.h"

namespace dlte::sim {

enum class TraceCategory {
  kRegistry,
  kAttach,
  kCoordination,
  kHandover,
  kData,
  kMobility,
  kFault,  // Injected failures and recoveries (src/fault).
};

[[nodiscard]] const char* trace_category_name(TraceCategory category);

struct TraceEvent {
  TimePoint when;
  TraceCategory category;
  std::string component;
  std::string message;
};

class TraceLog {
 public:
  // `capacity` bounds memory: oldest events are dropped first.
  explicit TraceLog(const Simulator& sim, std::size_t capacity = 4096)
      : sim_(sim), capacity_(capacity) {}

  void record(TraceCategory category, std::string component,
              std::string message);

  [[nodiscard]] const std::deque<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::vector<const TraceEvent*> by_category(
      TraceCategory category) const;
  [[nodiscard]] std::size_t count(TraceCategory category) const;
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  void print(std::ostream& os) const;
  void clear() {
    events_.clear();
    dropped_ = 0;
  }

 private:
  const Simulator& sim_;
  std::size_t capacity_;
  std::deque<TraceEvent> events_;
  std::uint64_t dropped_{0};
};

}  // namespace dlte::sim
