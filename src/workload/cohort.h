// Aggregate UE cohorts: a 100-UE cell as one scheduling entity.
//
// The metro scenario (src/par/metro.h) serves ~1M UEs; simulating each
// UE's attach and bulk flow individually is O(UEs) events before a single
// byte moves. A UeCohort represents all UEs of one AP as a handful of
// batch events: UEs attach in stratified batches across the attach
// window, and each batch's traffic is one aggregate transport::FlowTrain
// sized for the whole batch (total bytes, bottleneck, and initial window
// all scale with the batch size, so the aggregate finishes when the
// per-UE flows would). Per-UE detail that matters for metrics — attach
// latency samples, attach counts, delivered bytes — is still recorded per
// UE; only the event count stops scaling with the cohort size.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/time.h"
#include "obs/metrics.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "transport/flow_train.h"

namespace dlte::workload {

struct CohortConfig {
  int ues{100};
  // Batches the attach wave is split into (each batch = one event).
  int attach_batches{10};
  // UEs attach at stratified-uniform times inside [0, attach_window).
  Duration attach_window{Duration::seconds(1.0)};
  // Per-UE attach latency sample: base + uniform(0, jitter) ms.
  double attach_ms_base{40.0};
  double attach_ms_jitter{25.0};
  // Bulk volume each UE pulls once attached; 0 disables flows.
  std::uint64_t flow_bytes_per_ue{0};
  // Template for the per-batch aggregate flow. total_bytes and
  // bottleneck are overridden per batch (scaled by the batch size);
  // mss/rtt/initial_cwnd are taken as per-UE values.
  transport::FlowTrainConfig flow;
};

class UeCohort {
 public:
  // Observability sinks; any pointer may be null. Shared across cohorts
  // of a district so the aggregate is partition-invariant.
  struct Hooks {
    obs::Counter* attached{nullptr};
    obs::Counter* bytes_delivered{nullptr};
    obs::Counter* flows_completed{nullptr};
    obs::Histogram* attach_ms{nullptr};
  };

  UeCohort(sim::Simulator& sim, CohortConfig config, sim::RngStream rng,
           Hooks hooks);
  UeCohort(sim::Simulator& sim, CohortConfig config, sim::RngStream rng)
      : UeCohort(sim, config, rng, Hooks{}) {}

  // Schedule the attach batches. Call once, before or during the run.
  void start();

  [[nodiscard]] int ues_attached() const { return ues_attached_; }
  [[nodiscard]] std::uint64_t bytes_delivered() const {
    return bytes_delivered_;
  }
  [[nodiscard]] int flows_completed() const { return flows_completed_; }
  [[nodiscard]] bool all_complete() const {
    return ues_attached_ == config_.ues &&
           (config_.flow_bytes_per_ue == 0 ||
            flows_completed_ == batches_started_);
  }

 private:
  void attach_batch(int batch, int batch_ues);

  sim::Simulator& sim_;
  std::uint32_t attach_label_{0};
  CohortConfig config_;
  sim::RngStream rng_;
  Hooks hooks_;
  // Aggregate flows must outlive the run; one per batch.
  std::vector<std::unique_ptr<transport::FlowTrain>> flows_;
  int ues_attached_{0};
  int batches_started_{0};
  int flows_completed_{0};
  std::uint64_t bytes_delivered_{0};
};

}  // namespace dlte::workload
