#include "workload/ott_service.h"

#include <limits>

namespace dlte::workload {

OttService::OttService(sim::Simulator& sim, net::Network& net, NodeId node)
    : sim_(sim), host_(sim, net, node) {
  host_.listen([this](transport::ServerConnection& sc) {
    const ConnectionId id = sc.id;
    sc.on_data = [this, id](double offset) {
      progress_[id].push_back(ProgressSample{sim_.now(), offset});
    };
  });
}

const std::vector<ProgressSample>& OttService::progress(
    ConnectionId id) const {
  static const std::vector<ProgressSample> empty;
  const auto it = progress_.find(id);
  return it == progress_.end() ? empty : it->second;
}

double OttService::delivered_bytes(ConnectionId id) const {
  const auto& p = progress(id);
  return p.empty() ? 0.0 : p.back().bytes;
}

Duration OttService::longest_stall(ConnectionId id, TimePoint from,
                                   TimePoint to) const {
  const auto& samples = progress(id);
  Duration longest{};
  TimePoint last = from;
  for (const auto& s : samples) {
    if (s.when < from) {
      continue;
    }
    if (s.when > to) break;
    if (s.when - last > longest) longest = s.when - last;
    last = s.when;
  }
  if (to - last > longest) longest = to - last;
  return longest;
}

TimePoint OttService::first_progress_after(ConnectionId id,
                                           TimePoint t) const {
  for (const auto& s : progress(id)) {
    if (s.when >= t) return s.when;
  }
  return TimePoint::from_ns(std::numeric_limits<std::int64_t>::max());
}

}  // namespace dlte::workload
