#include "workload/cohort.h"

#include <algorithm>
#include <utility>

namespace dlte::workload {

UeCohort::UeCohort(sim::Simulator& sim, CohortConfig config,
                   sim::RngStream rng, Hooks hooks)
    : sim_(sim), config_(config), rng_(rng), hooks_(hooks) {
  attach_label_ = sim_.label("workload.attach");
  if (config_.ues < 0) config_.ues = 0;
  config_.attach_batches =
      std::clamp(config_.attach_batches, 1, std::max(1, config_.ues));
}

void UeCohort::start() {
  const int batches = config_.attach_batches;
  const int base = config_.ues / batches;
  const int extra = config_.ues % batches;
  const double window_s = std::max(0.0, config_.attach_window.to_seconds());
  for (int k = 0; k < batches; ++k) {
    // Stratified: batch k lands uniformly inside its own slice of the
    // window, so the wave stays spread without per-UE draws.
    const double frac =
        rng_.uniform(static_cast<double>(k), static_cast<double>(k + 1)) /
        static_cast<double>(batches);
    const int batch_ues = base + (k < extra ? 1 : 0);
    if (batch_ues == 0) continue;
    sim_.schedule(
        Duration::seconds(frac * window_s),
        [this, k, batch_ues] { attach_batch(k, batch_ues); },
        attach_label_);
  }
}

void UeCohort::attach_batch(int /*batch*/, int batch_ues) {
  ues_attached_ += batch_ues;
  obs::inc(hooks_.attached, static_cast<std::uint64_t>(batch_ues));
  for (int i = 0; i < batch_ues; ++i) {
    const double ms =
        config_.attach_ms_base + rng_.uniform(0.0, config_.attach_ms_jitter);
    obs::observe(hooks_.attach_ms, ms);
  }
  if (config_.flow_bytes_per_ue == 0) return;

  ++batches_started_;
  transport::FlowTrainConfig flow = config_.flow;
  flow.total_bytes =
      config_.flow_bytes_per_ue * static_cast<std::uint64_t>(batch_ues);
  // The batch shares the cell: aggregate capacity and initial window
  // scale with its size, so the aggregate completes when the individual
  // flows would have.
  flow.bottleneck =
      DataRate(config_.flow.bottleneck.bps() * static_cast<double>(batch_ues));
  flow.initial_cwnd_packets = config_.flow.initial_cwnd_packets * batch_ues;
  auto train = std::make_unique<transport::FlowTrain>(
      sim_, flow,
      [this](std::uint64_t bytes) {
        bytes_delivered_ += bytes;
        obs::inc(hooks_.bytes_delivered, bytes);
      },
      [this](TimePoint) {
        ++flows_completed_;
        obs::inc(hooks_.flows_completed);
      });
  train->start();
  flows_.push_back(std::move(train));
}

}  // namespace dlte::workload
