#include "workload/sources.h"

namespace dlte::workload {

CbrSource::CbrSource(sim::Simulator& sim, transport::Connection& conn,
                     DataRate rate, Duration interval)
    : sim_(sim),
      conn_(conn),
      bytes_per_tick_(rate.bps() / 8.0 * interval.to_seconds()),
      interval_(interval) {}

void CbrSource::start() {
  if (running_) return;
  running_ = true;
  tick();
}

void CbrSource::tick() {
  if (!running_) return;
  conn_.send(bytes_per_tick_);
  offered_ += bytes_per_tick_;
  sim_.schedule(interval_, [this] { tick(); });
}

WebSource::WebSource(sim::Simulator& sim, transport::Connection& conn,
                     double requests_per_s, double mean_object_bytes,
                     sim::RngStream rng)
    : sim_(sim),
      conn_(conn),
      rate_(requests_per_s),
      mean_bytes_(mean_object_bytes),
      rng_(std::move(rng)) {}

void WebSource::start() {
  if (running_) return;
  running_ = true;
  schedule_next();
}

void WebSource::schedule_next() {
  if (!running_) return;
  const Duration think = Duration::seconds(rng_.exponential(1.0 / rate_));
  sim_.schedule(think, [this] {
    if (!running_) return;
    const double object = rng_.exponential(mean_bytes_);
    conn_.send(object);
    offered_ += object;
    ++requests_;
    schedule_next();
  });
}

}  // namespace dlte::workload
