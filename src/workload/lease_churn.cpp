#include "workload/lease_churn.h"

#include <algorithm>

#include "common/bytes.h"

namespace dlte::workload {

LeaseChurnStorm::LeaseChurnStorm(sim::Simulator& sim, ChurnConfig config,
                                 Send send, Hooks hooks)
    : sim_(sim),
      config_(config),
      send_(std::move(send)),
      hooks_(hooks) {}

void LeaseChurnStorm::start() {
  apply_for_missing();
  sim_.schedule(config_.heartbeat_phase, [this] {
    heartbeat_tick();
    sim_.every(config_.heartbeat_interval, [this] { heartbeat_tick(); });
  });
  sim_.schedule(config_.query_phase, [this] {
    query_tick();
    sim_.every(config_.query_interval, [this] { query_tick(); });
  });
}

void LeaseChurnStorm::apply_for_missing() {
  const std::uint32_t missing =
      config_.leases - static_cast<std::uint32_t>(held_.size());
  if (missing == 0 || awaiting_grant_) return;
  awaiting_grant_ = true;
  ByteWriter w;
  w.u32(config_.block);
  w.u32(missing);
  w.f64(config_.location.x_m);
  w.f64(config_.location.y_m);
  w.f64(config_.center_frequency.hz());
  w.f64(config_.bandwidth.hz());
  obs::inc(hooks_.grants_requested, missing);
  send_(kLeaseGrantBatch, w.take());
}

void LeaseChurnStorm::heartbeat_tick() {
  if (held_.empty()) return;
  ByteWriter w;
  w.u32(config_.block);
  w.u32(static_cast<std::uint32_t>(held_.size()));
  for (const std::uint64_t id : held_) w.u64(id);
  obs::inc(hooks_.heartbeats_sent, held_.size());
  send_(kLeaseHeartbeatBatch, w.take());
}

void LeaseChurnStorm::query_tick() {
  ByteWriter w;
  w.u32(config_.block);
  w.f64(config_.location.x_m);
  w.f64(config_.location.y_m);
  obs::inc(hooks_.queries_sent);
  send_(kLeaseQuery, w.take());
}

void LeaseChurnStorm::on_message(std::uint16_t kind,
                                 const std::vector<std::uint8_t>& payload) {
  switch (kind) {
    case kLeaseGrantReply:
      on_grant_reply(payload);
      break;
    case kLeaseHeartbeatReply:
      on_heartbeat_reply(payload);
      break;
    case kLeaseQueryReply:
      on_query_reply(payload);
      break;
    default:
      break;
  }
}

void LeaseChurnStorm::on_grant_reply(
    const std::vector<std::uint8_t>& payload) {
  ByteReader r{payload};
  const auto block = r.u32();
  const auto ok = r.u8();
  const auto count = r.u32();
  if (!block || !ok || !count || *block != config_.block) return;
  awaiting_grant_ = false;
  if (*ok == 0) {
    // The whole batch bounced (zone offline / registry down). Back off
    // and re-apply: during an outage this retry loop is the sustained
    // grant-failure symptom the SLO watches.
    ++grant_rejections_;
    obs::inc(hooks_.grant_rejections);
    sim_.schedule(config_.regrant_backoff, [this] { apply_for_missing(); });
    return;
  }
  grants_confirmed_ += *count;
  obs::inc(hooks_.grants_confirmed, *count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    const auto id = r.u64();
    if (!id) break;
    held_.push_back(*id);
  }
  std::sort(held_.begin(), held_.end());
  if (held_.size() < config_.leases) {
    // Partial fill: an outage or commit stall flipped mid-batch and only
    // some requests landed. Without a re-apply here the block would sit
    // under quota forever — lapse-driven re-grants only cover leases it
    // once held. Same backoff as a bounced batch.
    sim_.schedule(config_.regrant_backoff, [this] { apply_for_missing(); });
  }
}

void LeaseChurnStorm::on_heartbeat_reply(
    const std::vector<std::uint8_t>& payload) {
  ByteReader r{payload};
  const auto block = r.u32();
  const auto ok = r.u32();
  const auto unreachable = r.u32();
  const auto lapsed = r.u32();
  if (!block || !ok || !unreachable || !lapsed ||
      *block != config_.block) {
    return;
  }
  heartbeats_unreachable_ += *unreachable;
  obs::inc(hooks_.heartbeats_unreachable, *unreachable);
  if (*lapsed == 0) return;
  // The registrar no longer knows these leases: drop them and re-apply
  // for the shortfall — the re-grant storm after a zone outage.
  std::vector<std::uint64_t> gone;
  gone.reserve(*lapsed);
  for (std::uint32_t i = 0; i < *lapsed; ++i) {
    const auto id = r.u64();
    if (!id) break;
    gone.push_back(*id);
  }
  std::vector<std::uint64_t> kept;
  kept.reserve(held_.size());
  std::set_difference(held_.begin(), held_.end(), gone.begin(), gone.end(),
                      std::back_inserter(kept));
  const std::uint64_t dropped = held_.size() - kept.size();
  held_ = std::move(kept);
  lapses_seen_ += dropped;
  obs::inc(hooks_.leases_lapsed, dropped);
  ++regrant_batches_;
  obs::inc(hooks_.regrant_batches);
  apply_for_missing();
}

void LeaseChurnStorm::on_query_reply(
    const std::vector<std::uint8_t>& payload) {
  ByteReader r{payload};
  const auto block = r.u32();
  const auto tier = r.u8();
  const auto stale = r.u8();
  const auto grants = r.u64();
  if (!block || !tier || !stale || !grants || *block != config_.block) {
    return;
  }
  ++queries_answered_;
  query_grants_seen_ += *grants;
  obs::inc(hooks_.query_grants_seen, *grants);
  if (*stale != 0) {
    ++stale_views_;
    obs::inc(hooks_.stale_views);
  }
}

}  // namespace dlte::workload
