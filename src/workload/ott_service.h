// An over-the-top service endpoint with progress instrumentation.
//
// §4.2 hinges on the relationship between a client's dwell time per AP
// and the RTT to the services it uses; the OTT service here is the
// far end of that measurement. It accepts transport connections and
// records, per connection, the timeline of delivered bytes — from which
// the C5 bench extracts interruption gaps around each AP transition.
#pragma once

#include <map>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "transport/transport.h"

namespace dlte::workload {

struct ProgressSample {
  TimePoint when;
  double bytes;
};

class OttService {
 public:
  OttService(sim::Simulator& sim, net::Network& net, NodeId node);

  [[nodiscard]] NodeId node() const { return host_.node(); }
  [[nodiscard]] transport::TransportHost& host() { return host_; }

  // Progress timeline of one connection (cumulative delivered bytes).
  [[nodiscard]] const std::vector<ProgressSample>& progress(
      ConnectionId id) const;
  [[nodiscard]] double delivered_bytes(ConnectionId id) const;

  // Longest gap between consecutive progress samples inside [from, to] —
  // the application-level interruption metric.
  [[nodiscard]] Duration longest_stall(ConnectionId id, TimePoint from,
                                       TimePoint to) const;
  // First progress at or after `t` (e.g. first byte after a migration).
  [[nodiscard]] TimePoint first_progress_after(ConnectionId id,
                                               TimePoint t) const;

 private:
  sim::Simulator& sim_;
  transport::TransportHost host_;
  std::map<ConnectionId, std::vector<ProgressSample>> progress_;
};

}  // namespace dlte::workload
