// Lease-churn storm workload (DESIGN.md §16): the client half of the
// planet-scale registry experiment.
//
// A LeaseChurnStorm models one *block* of access points (≈ a metro
// neighbourhood sharing a registrar zone) that manages its spectrum
// leases in bulk: a mass grant application at start-up, periodic
// heartbeat batches to renew them, periodic zone-occupancy queries
// through the cache hierarchy, and — the storm — re-application for
// every lease the registry reports lapsed after an outage. While the
// zone is dark the re-applications fail and back off, which is exactly
// the grant-failure symptom the churn SLO rules page on; the moment the
// zone heals, thousands of blocks re-apply at once and the registry
// eats a correlated re-grant storm.
//
// The actor is registry- and transport-agnostic: it emits encoded
// request payloads through a send hook and consumes encoded replies via
// on_message, so the par scenario can carry the exchange over the
// sharded runtime's cross-shard message plane (where this traffic is
// load-bearing, not decorative). All behaviour is driven by its own
// simulator events and message deliveries — partition-invariant by
// construction.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/geo.h"
#include "common/time.h"
#include "common/units.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace dlte::workload {

// Message kinds on the registry plane (par::Message::kind values).
inline constexpr std::uint16_t kLeaseGrantBatch = 21;      // client → reg
inline constexpr std::uint16_t kLeaseGrantReply = 22;      // reg → client
inline constexpr std::uint16_t kLeaseHeartbeatBatch = 23;  // client → reg
inline constexpr std::uint16_t kLeaseHeartbeatReply = 24;  // reg → client
inline constexpr std::uint16_t kLeaseQuery = 25;           // client → reg
inline constexpr std::uint16_t kLeaseQueryReply = 26;      // reg → client

// --- Wire formats (common/bytes.h codec) ------------------------------
// GrantBatch:      u32 block, u32 count, f64 x, f64 y, f64 center_hz,
//                  f64 bw_hz
// GrantReply:      u32 block, u8 ok, u32 count, count × u64 grant id
//                  (ids only when ok)
// HeartbeatBatch:  u32 block, u32 count, count × u64 grant id
// HeartbeatReply:  u32 block, u32 ok, u32 unreachable, u32 lapsed,
//                  lapsed × u64 grant id
// Query:           u32 block, f64 x, f64 y
// QueryReply:      u32 block, u8 tier, u8 stale, u64 grants

struct ChurnConfig {
  std::uint32_t block{0};  // Stable block identity (and cache requester).
  std::uint32_t leases{1024};  // Leases this block keeps alive.
  Position location;           // Where the block's APs sit.
  Hertz center_frequency{Hertz::mhz(3550.0)};
  Hertz bandwidth{Hertz::mhz(10.0)};
  Duration heartbeat_interval{Duration::seconds(5.0)};
  Duration heartbeat_phase{};  // Stagger against other blocks.
  Duration query_interval{Duration::seconds(2.0)};
  Duration query_phase{};
  // Backoff between failed grant applications (an offline zone rejects
  // the whole batch; the block retries until it lands).
  Duration regrant_backoff{Duration::seconds(4.0)};
};

class LeaseChurnStorm {
 public:
  // Optional metric mirrors for single-sim embeddings. The par scenario
  // does NOT use these: the audit plane digests each shard's registry
  // per window, so a metric name must live on exactly one shard — zone
  // aggregates that straddle shards are instead summed from the plain
  // accessors below after the run. Null-safe.
  struct Hooks {
    obs::Counter* grants_requested{nullptr};
    obs::Counter* grants_confirmed{nullptr};
    obs::Counter* grant_rejections{nullptr};  // Whole batches bounced.
    obs::Counter* heartbeats_sent{nullptr};
    obs::Counter* heartbeats_unreachable{nullptr};
    obs::Counter* leases_lapsed{nullptr};
    obs::Counter* regrant_batches{nullptr};  // Re-applications after lapse.
    obs::Counter* queries_sent{nullptr};
    obs::Counter* query_grants_seen{nullptr};
    obs::Counter* stale_views{nullptr};  // Query answered from stale cache.
  };

  using Send =
      std::function<void(std::uint16_t kind, std::vector<std::uint8_t>)>;

  LeaseChurnStorm(sim::Simulator& sim, ChurnConfig config, Send send,
                  Hooks hooks);

  // Kick off the initial mass grant application + periodic heartbeat and
  // query drivers.
  void start();

  // Feed a reply delivered for this block. Ignores kinds it doesn't
  // understand and replies addressed to other blocks.
  void on_message(std::uint16_t kind,
                  const std::vector<std::uint8_t>& payload);

  [[nodiscard]] std::size_t leases_held() const { return held_.size(); }
  [[nodiscard]] std::uint64_t lapses_seen() const { return lapses_seen_; }
  [[nodiscard]] std::uint64_t regrant_batches() const {
    return regrant_batches_;
  }
  [[nodiscard]] std::uint64_t grant_rejections() const {
    return grant_rejections_;
  }
  [[nodiscard]] std::uint64_t queries_answered() const {
    return queries_answered_;
  }
  [[nodiscard]] std::uint64_t grants_confirmed() const {
    return grants_confirmed_;
  }
  [[nodiscard]] std::uint64_t heartbeats_unreachable() const {
    return heartbeats_unreachable_;
  }
  [[nodiscard]] std::uint64_t query_grants_seen() const {
    return query_grants_seen_;
  }
  [[nodiscard]] std::uint64_t stale_views() const { return stale_views_; }

 private:
  void apply_for_missing();  // Request (leases - held) new grants.
  void heartbeat_tick();
  void query_tick();
  void on_grant_reply(const std::vector<std::uint8_t>& payload);
  void on_heartbeat_reply(const std::vector<std::uint8_t>& payload);
  void on_query_reply(const std::vector<std::uint8_t>& payload);

  sim::Simulator& sim_;
  ChurnConfig config_;
  Send send_;
  Hooks hooks_;

  std::vector<std::uint64_t> held_;  // Sorted ascending (grant order).
  bool awaiting_grant_{false};
  std::uint64_t lapses_seen_{0};
  std::uint64_t regrant_batches_{0};
  std::uint64_t grant_rejections_{0};
  std::uint64_t queries_answered_{0};
  std::uint64_t grants_confirmed_{0};
  std::uint64_t heartbeats_unreachable_{0};
  std::uint64_t query_grants_seen_{0};
  std::uint64_t stale_views_{0};
};

}  // namespace dlte::workload
