// Application traffic sources driving transport connections.
//
// dLTE deliberately provides "nothing more than a public Internet
// connection" (§4.2), so all user-visible behaviour comes from
// over-the-top applications. These sources model the workloads the
// paper's deployment reports (§5): messaging/VoIP-like constant bitrate,
// bursty web browsing, and bulk transfer.
#pragma once

#include <functional>

#include "common/time.h"
#include "common/units.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "transport/transport.h"

namespace dlte::workload {

// Constant bitrate (VoIP / video call): fixed-size chunks at a fixed
// interval.
class CbrSource {
 public:
  CbrSource(sim::Simulator& sim, transport::Connection& conn, DataRate rate,
            Duration interval = Duration::millis(20));

  void start();
  void stop() { running_ = false; }
  [[nodiscard]] double bytes_offered() const { return offered_; }

 private:
  void tick();

  sim::Simulator& sim_;
  transport::Connection& conn_;
  double bytes_per_tick_;
  Duration interval_;
  bool running_{false};
  double offered_{0.0};
};

// Poisson on/off web-like source: exponential think times between
// requests, lognormal-ish (here: exponential) response sizes pushed as a
// burst.
class WebSource {
 public:
  WebSource(sim::Simulator& sim, transport::Connection& conn,
            double requests_per_s, double mean_object_bytes,
            sim::RngStream rng);

  void start();
  void stop() { running_ = false; }
  [[nodiscard]] int requests_issued() const { return requests_; }
  [[nodiscard]] double bytes_offered() const { return offered_; }

 private:
  void schedule_next();

  sim::Simulator& sim_;
  transport::Connection& conn_;
  double rate_;
  double mean_bytes_;
  sim::RngStream rng_;
  bool running_{false};
  int requests_{0};
  double offered_{0.0};
};

// One-shot bulk transfer of a fixed volume.
class BulkSource {
 public:
  BulkSource(transport::Connection& conn, double total_bytes)
      : conn_(conn), total_(total_bytes) {}

  void start() { conn_.send(total_); }
  [[nodiscard]] bool complete() const {
    return conn_.stats().bytes_acked >= total_;
  }
  [[nodiscard]] double total_bytes() const { return total_; }

 private:
  transport::Connection& conn_;
  double total_;
};

}  // namespace dlte::workload
