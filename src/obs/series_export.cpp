#include "obs/series_export.h"

#include <fstream>

#include "obs/json.h"

namespace dlte::obs {

std::string SeriesExporter::to_json(const TimeSeriesSampler& sampler,
                                    const SloMonitor* monitor,
                                    const std::string& source) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("dlte-series-v1");
  w.key("source").value(source);
  w.key("interval_s").value(sampler.interval().to_seconds());
  w.key("samples").value(sampler.samples());
  w.key("series").begin_object();
  for (const auto& [name, series] : sampler.series()) {
    w.key(name).begin_object();
    w.key("kind").value(series_kind_name(series.kind()));
    w.key("dropped").value(series.dropped());
    w.key("points").begin_array();
    for (const auto& point : series.points()) {
      w.begin_array();
      w.value(point.t_s);
      w.value(point.value);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.key("rules").begin_array();
  if (monitor != nullptr) {
    for (const auto& rule : monitor->rule_descriptions()) w.value(rule);
  }
  w.end_array();
  w.key("alerts").begin_array();
  if (monitor != nullptr) {
    for (const auto& event : monitor->events()) {
      w.begin_object();
      w.key("t_s").value(event.t_s);
      w.key("event").value(event.fire ? "fire" : "resolve");
      w.key("rule").value(event.rule);
      w.key("scope").value(event.scope);
      w.key("metric").value(event.metric);
      w.key("value").value(event.value);
      w.key("threshold").value(event.threshold);
      w.end_object();
    }
  }
  w.end_array();
  w.key("health").begin_object();
  if (monitor != nullptr) {
    for (const auto& scope : monitor->scopes()) {
      w.key(scope).value(monitor->health(scope));
    }
  }
  w.end_object();
  w.end_object();
  return w.str();
}

bool SeriesExporter::write_file(const TimeSeriesSampler& sampler,
                                const SloMonitor* monitor,
                                const std::string& source,
                                const std::string& path) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out << to_json(sampler, monitor, source) << "\n";
  return static_cast<bool>(out);
}

}  // namespace dlte::obs
