// ScopedTimer: measures a span of *simulated* time into a Histogram.
//
// obs sits below sim in the library graph, so the clock comes in as a
// callable rather than a Simulator reference:
//
//   obs::ScopedTimer t{reg.histogram("epc.attach_latency_ms"),
//                      [&] { return sim.now(); }};
//   ... run the attach ...
//   t.stop();   // or let the destructor record it
//
// Timers nest naturally — each instance holds its own start time.
#pragma once

#include <functional>
#include <utility>

#include "common/time.h"
#include "obs/metrics.h"

namespace dlte::obs {

class ScopedTimer {
 public:
  using NowFn = std::function<TimePoint()>;

  // `scale` converts the elapsed Duration's nanoseconds into the
  // histogram's unit; the default records milliseconds.
  ScopedTimer(Histogram& hist, NowFn now, double scale = 1e-6)
      : hist_(&hist),
        now_(std::move(now)),
        scale_(scale),
        start_(now_()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { stop(); }

  // Record now instead of at scope exit. Idempotent.
  void stop() {
    if (hist_ == nullptr) return;
    const Duration elapsed = now_() - start_;
    hist_->record(static_cast<double>(elapsed.ns()) * scale_);
    hist_ = nullptr;
  }

  // Leave the scope without recording anything.
  void cancel() { hist_ = nullptr; }

  [[nodiscard]] TimePoint start() const { return start_; }

 private:
  Histogram* hist_;
  NowFn now_;
  double scale_;
  TimePoint start_;
};

}  // namespace dlte::obs
