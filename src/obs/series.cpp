#include "obs/series.h"

namespace dlte::obs {

const char* series_kind_name(SeriesKind kind) {
  switch (kind) {
    case SeriesKind::kCounter:
      return "counter";
    case SeriesKind::kCounterRate:
      return "rate";
    case SeriesKind::kGauge:
      return "gauge";
    case SeriesKind::kHistogramCount:
      return "hist_count";
    case SeriesKind::kHistogramQuantile:
      return "hist_quantile";
  }
  return "?";
}

TimeSeriesSampler::TimeSeriesSampler(const MetricsRegistry& registry,
                                     SamplerConfig config)
    : registry_(registry), config_(config) {}

TimeSeries& TimeSeriesSampler::get(const std::string& name, SeriesKind kind) {
  const auto it = series_.find(name);
  if (it != series_.end()) return it->second;
  return series_.emplace(name, TimeSeries{kind, config_.capacity})
      .first->second;
}

void TimeSeriesSampler::sample(TimePoint now) {
  const double t_s = (now - TimePoint{}).to_seconds();
  for (const auto& [name, c] : registry_.counters()) {
    const std::uint64_t value = c.value();
    get(name, SeriesKind::kCounter).push(t_s, static_cast<double>(value));
    double rate = 0.0;
    const auto last = last_counters_.find(name);
    const double dt = t_s - last_t_s_;
    if (last != last_counters_.end() && dt > 0.0) {
      rate = static_cast<double>(value - last->second) / dt;
    }
    get(name + ".rate", SeriesKind::kCounterRate).push(t_s, rate);
    last_counters_[name] = value;
  }
  for (const auto& [name, g] : registry_.gauges()) {
    get(name, SeriesKind::kGauge).push(t_s, g.value());
  }
  for (const auto& [name, h] : registry_.histograms()) {
    get(name + ".count", SeriesKind::kHistogramCount)
        .push(t_s, static_cast<double>(h.count()));
    get(name + ".p50", SeriesKind::kHistogramQuantile).push(t_s, h.p50());
    get(name + ".p95", SeriesKind::kHistogramQuantile).push(t_s, h.p95());
    get(name + ".p99", SeriesKind::kHistogramQuantile).push(t_s, h.p99());
  }
  last_t_s_ = t_s;
  ++samples_;
}

const TimeSeries* TimeSeriesSampler::find(const std::string& name) const {
  const auto it = series_.find(name);
  return it != series_.end() ? &it->second : nullptr;
}

}  // namespace dlte::obs
