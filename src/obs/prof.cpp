#include "obs/prof.h"

#include <algorithm>

namespace dlte::obs {

EventProfiler::EventProfiler() {
  names_.emplace_back(kUnlabeledEventName);
  stats_.emplace_back();
  ids_.emplace(kUnlabeledEventName, kUnlabeledEvent);
}

std::uint32_t EventProfiler::intern(const std::string& name) {
  const auto [it, inserted] =
      ids_.emplace(name, static_cast<std::uint32_t>(names_.size()));
  if (inserted) {
    names_.push_back(name);
    stats_.emplace_back();
  }
  return it->second;
}

void EventProfiler::merge_from(const EventProfiler& other) {
  for (std::uint32_t id = 0; id < other.names_.size(); ++id) {
    stats_[intern(other.names_[id])].add(other.stats_[id]);
  }
}

std::vector<std::uint32_t> EventProfiler::sorted_ids() const {
  std::vector<std::uint32_t> ids(names_.size());
  for (std::uint32_t i = 0; i < ids.size(); ++i) ids[i] = i;
  std::sort(ids.begin(), ids.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return names_[a] < names_[b];
            });
  return ids;
}

EventProfiler::LabelStats EventProfiler::totals() const {
  LabelStats total;
  for (const LabelStats& s : stats_) total.add(s);
  return total;
}

void EventProfiler::export_metrics(MetricsRegistry& registry,
                                   const std::string& prefix) const {
  for (std::uint32_t id = 0; id < names_.size(); ++id) {
    const LabelStats& s = stats_[id];
    const std::string base = prefix + names_[id];
    registry.counter(base + ".schedules").inc(s.schedules);
    registry.counter(base + ".executed").inc(s.executed);
    registry.counter(base + ".past_clamps").inc(s.past_clamps);
    registry.counter(base + ".residency_ns").inc(s.residency_ns);
  }
}

}  // namespace dlte::obs
