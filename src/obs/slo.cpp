#include "obs/slo.h"

#include <algorithm>

#include "obs/json.h"

namespace dlte::obs {

const char* slo_predicate_name(SloPredicate predicate) {
  switch (predicate) {
    case SloPredicate::kQuantileBelow:
      return "quantile_below";
    case SloPredicate::kRateBelow:
      return "rate_below";
    case SloPredicate::kRateAtLeast:
      return "rate_at_least";
    case SloPredicate::kGaugeAtLeast:
      return "gauge_at_least";
    case SloPredicate::kGaugeAtMost:
      return "gauge_at_most";
  }
  return "?";
}

std::string SloRule::describe() const {
  std::string s = name + " [" + scope + "]: " + slo_predicate_name(predicate) +
                  "(" + metric;
  if (predicate == SloPredicate::kQuantileBelow) {
    s += " p" + JsonWriter::format_double(quantile * 100.0);
  }
  s += ")";
  switch (predicate) {
    case SloPredicate::kQuantileBelow:
    case SloPredicate::kRateBelow:
      s += " < ";
      break;
    case SloPredicate::kRateAtLeast:
    case SloPredicate::kGaugeAtLeast:
      s += " >= ";
      break;
    case SloPredicate::kGaugeAtMost:
      s += " <= ";
      break;
  }
  s += JsonWriter::format_double(threshold);
  if (predicate == SloPredicate::kQuantileBelow ||
      predicate == SloPredicate::kRateBelow ||
      predicate == SloPredicate::kRateAtLeast) {
    s += " over " + JsonWriter::format_double(window.to_seconds()) + "s";
  }
  return s;
}

std::string SloAlertEvent::describe() const {
  return "t=" + JsonWriter::format_double(t_s) + "s " +
         (fire ? "FIRE" : "RESOLVE") + " " + rule + " [" + scope + "] " +
         metric + " value=" + JsonWriter::format_double(value) +
         " threshold=" + JsonWriter::format_double(threshold);
}

void SloMonitor::add_rule(SloRule rule) {
  RuleState state;
  state.rule = std::move(rule);
  rules_.push_back(std::move(state));
  update_health_gauges();
}

void SloMonitor::add_rules(const std::vector<SloRule>& rules) {
  for (const auto& r : rules) add_rule(r);
}

std::vector<std::string> SloMonitor::rule_descriptions() const {
  std::vector<std::string> out;
  out.reserve(rules_.size());
  for (const auto& state : rules_) out.push_back(state.rule.describe());
  return out;
}

bool SloMonitor::healthy(RuleState& state, double t_s, double* value) {
  const SloRule& rule = state.rule;
  *value = 0.0;
  switch (rule.predicate) {
    case SloPredicate::kQuantileBelow: {
      const Histogram* h = registry_.find_histogram(rule.metric);
      if (h == nullptr) return true;
      auto& window = state.histogram_window;
      window.emplace_back(t_s, *h);
      const double horizon = t_s - rule.window.to_seconds();
      // Keep one snapshot at-or-before the horizon as the diff baseline.
      while (window.size() > 1 && window[1].first <= horizon) {
        window.pop_front();
      }
      const Histogram& baseline = window.front().second;
      if (h->count_since(baseline) == 0) return true;  // No traffic: vacuous.
      *value = h->quantile_since(baseline, rule.quantile);
      return *value < rule.threshold;
    }
    case SloPredicate::kRateBelow:
    case SloPredicate::kRateAtLeast: {
      const Counter* c = registry_.find_counter(rule.metric);
      if (c == nullptr) {
        // Liveness on a metric that never appeared is a violation once
        // the monitor has been watching for a full window.
        if (rule.predicate == SloPredicate::kRateAtLeast) {
          return t_s - start_t_s_ < rule.window.to_seconds();
        }
        return true;
      }
      auto& window = state.counter_window;
      window.emplace_back(t_s, c->value());
      const double horizon = t_s - rule.window.to_seconds();
      while (window.size() > 1 && window[1].first <= horizon) {
        window.pop_front();
      }
      const double dt = t_s - window.front().first;
      if (dt <= 0.0) return true;  // First evaluation: not enough data.
      const double rate =
          static_cast<double>(c->value() - window.front().second) / dt;
      *value = rate;
      if (rule.predicate == SloPredicate::kRateBelow) {
        return rate < rule.threshold;
      }
      // Liveness needs a full window before it can assert starvation.
      if (dt < rule.window.to_seconds()) return true;
      return rate >= rule.threshold;
    }
    case SloPredicate::kGaugeAtLeast:
    case SloPredicate::kGaugeAtMost: {
      const Gauge* g = registry_.find_gauge(rule.metric);
      if (g == nullptr) return true;
      *value = g->value();
      return rule.predicate == SloPredicate::kGaugeAtLeast
                 ? *value >= rule.threshold
                 : *value <= rule.threshold;
    }
  }
  return true;
}

void SloMonitor::evaluate(TimePoint now) {
  const double t_s = (now - TimePoint{}).to_seconds();
  if (!started_) {
    started_ = true;
    start_t_s_ = t_s;
  }
  for (auto& state : rules_) {
    double value = 0.0;
    if (healthy(state, t_s, &value)) {
      state.bad_streak = 0;
      if (state.active && ++state.good_streak >= state.rule.resolve_after) {
        transition(state, t_s, /*fire=*/false, value);
      }
    } else {
      state.good_streak = 0;
      if (!state.active && ++state.bad_streak >= state.rule.fire_after) {
        transition(state, t_s, /*fire=*/true, value);
      }
    }
  }
}

void SloMonitor::transition(RuleState& state, double t_s, bool fire,
                            double value) {
  state.active = fire;
  state.bad_streak = 0;
  state.good_streak = 0;
  if (fire) state.ever_fired = true;
  SloAlertEvent event;
  event.t_s = t_s;
  event.fire = fire;
  event.rule = state.rule.name;
  event.scope = state.rule.scope;
  event.metric = state.rule.metric;
  event.value = value;
  event.threshold = state.rule.threshold;
  events_.push_back(event);
  obs::inc(fire ? m_fired_ : m_resolved_);
  if (m_active_ != nullptr) {
    m_active_->set(static_cast<double>(active_alerts()));
  }
  update_health_gauges();
  if (tracer_ != nullptr) {
    const SpanId span =
        tracer_->begin(fire ? "slo_fire" : "slo_resolve", span_cat_);
    tracer_->annotate(span, "rule", state.rule.name);
    tracer_->annotate(span, "scope", state.rule.scope);
    tracer_->annotate(span, "value", JsonWriter::format_double(value));
    tracer_->end(span);
    tracer_->annotate_current(fire ? "slo_fire" : "slo_resolve",
                              state.rule.name);
  }
}

std::size_t SloMonitor::active_alerts() const {
  std::size_t n = 0;
  for (const auto& state : rules_) {
    if (state.active) ++n;
  }
  return n;
}

bool SloMonitor::alert_active(const std::string& rule) const {
  for (const auto& state : rules_) {
    if (state.rule.name == rule && state.active) return true;
  }
  return false;
}

bool SloMonitor::ever_fired(const std::string& rule) const {
  for (const auto& state : rules_) {
    if (state.rule.name == rule && state.ever_fired) return true;
  }
  return false;
}

double SloMonitor::health(const std::string& scope) const {
  std::size_t total = 0;
  std::size_t active = 0;
  for (const auto& state : rules_) {
    if (state.rule.scope != scope) continue;
    ++total;
    if (state.active) ++active;
  }
  if (total == 0) return 1.0;
  return 1.0 - static_cast<double>(active) / static_cast<double>(total);
}

std::vector<std::string> SloMonitor::scopes() const {
  std::vector<std::string> out;
  for (const auto& state : rules_) {
    if (std::find(out.begin(), out.end(), state.rule.scope) == out.end()) {
      out.push_back(state.rule.scope);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void SloMonitor::update_health_gauges() {
  if (out_ == nullptr) return;
  for (const auto& scope : scopes()) {
    out_->gauge(out_prefix_ + "health." + scope).set(health(scope));
  }
}

void SloMonitor::set_metrics(MetricsRegistry* registry,
                             const std::string& prefix) {
  out_ = registry;
  out_prefix_ = prefix;
  if (registry == nullptr) {
    m_fired_ = nullptr;
    m_resolved_ = nullptr;
    m_active_ = nullptr;
    return;
  }
  m_fired_ = &registry->counter(prefix + "slo.alerts_fired");
  m_resolved_ = &registry->counter(prefix + "slo.alerts_resolved");
  m_active_ = &registry->gauge(prefix + "slo.active_alerts");
  update_health_gauges();
}

void SloMonitor::set_tracer(SpanTracer* tracer, const std::string& prefix) {
  tracer_ = tracer;
  span_cat_ = prefix + "slo";
}

}  // namespace dlte::obs
