// Time-series telemetry: the missing time dimension of the §8 metrics
// plane (DESIGN.md §10).
//
// A MetricsSnapshot answers "where did the run end up"; a TimeSeries
// answers "when did it change". The TimeSeriesSampler walks a
// MetricsRegistry at a fixed simulated-time cadence and appends each
// instrument's state to a bounded ring-buffered series:
//
//   counter    <name>        cumulative value
//              <name>.rate   per-second delta since the previous sample
//   gauge      <name>        point-in-time value
//   histogram  <name>.count / .p50 / .p95 / .p99
//
// Like everything in obs, the sampler never touches a wall clock: it is
// driven from outside (sim::TelemetryDriver registers the recurring
// simulator event) and stamps points with the simulated time it is
// handed, so two same-seed runs produce byte-identical series JSON —
// the property the CI health gate diffs directly.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "common/time.h"
#include "obs/metrics.h"

namespace dlte::obs {

struct SeriesPoint {
  double t_s{0.0};  // Simulated seconds since the start of the run.
  double value{0.0};
};

// What a series was derived from — kept so downstream tooling can tell
// a raw counter from a derived rate without parsing the name.
enum class SeriesKind {
  kCounter,
  kCounterRate,
  kGauge,
  kHistogramCount,
  kHistogramQuantile,
};

[[nodiscard]] const char* series_kind_name(SeriesKind kind);

// Bounded ring of points: oldest points drop first, and drops are
// counted — a long run degrades to a sliding window, never to OOM.
class TimeSeries {
 public:
  explicit TimeSeries(SeriesKind kind, std::size_t capacity)
      : kind_(kind), capacity_(capacity) {}

  void push(double t_s, double value) {
    if (points_.size() == capacity_) {
      points_.pop_front();
      ++dropped_;
    }
    points_.push_back(SeriesPoint{t_s, value});
  }

  [[nodiscard]] SeriesKind kind() const { return kind_; }
  [[nodiscard]] const std::deque<SeriesPoint>& points() const {
    return points_;
  }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] double latest() const {
    return points_.empty() ? 0.0 : points_.back().value;
  }

 private:
  SeriesKind kind_;
  std::size_t capacity_;
  std::deque<SeriesPoint> points_;
  std::uint64_t dropped_{0};
};

struct SamplerConfig {
  // Simulated-time sampling period (the cadence sim::TelemetryDriver
  // registers its recurring event at).
  Duration interval{Duration::millis(500)};
  // Ring bound per series.
  std::size_t capacity{4096};
};

class TimeSeriesSampler {
 public:
  explicit TimeSeriesSampler(const MetricsRegistry& registry,
                             SamplerConfig config = {});
  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  // Append one point per instrument at simulated time `now`. Metrics
  // that appear mid-run start their series at the first sample after
  // creation; rates are 0 at each counter's first sample.
  void sample(TimePoint now);

  [[nodiscard]] Duration interval() const { return config_.interval; }
  [[nodiscard]] std::uint64_t samples() const { return samples_; }
  [[nodiscard]] const std::map<std::string, TimeSeries>& series() const {
    return series_;
  }
  [[nodiscard]] const TimeSeries* find(const std::string& name) const;

 private:
  TimeSeries& get(const std::string& name, SeriesKind kind);

  const MetricsRegistry& registry_;
  SamplerConfig config_;
  std::map<std::string, TimeSeries> series_;
  // Previous cumulative counter values, for rate derivation.
  std::map<std::string, std::uint64_t> last_counters_;
  double last_t_s_{0.0};
  std::uint64_t samples_{0};
};

}  // namespace dlte::obs
