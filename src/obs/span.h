// Causal span tracing over the simulated clock (DESIGN.md §9).
//
// A Span is a named, annotated interval of simulated time with an id and
// a parent id — the Dapper-style building block that turns flat TraceLog
// lines and aggregate counters into a causal tree: "this attach spent
// 31 ms in AKA, 9 ms in bearer setup, and retried NAS once".
//
// Layering: obs sits *below* sim, so the tracer cannot hold a
// sim::Simulator. Like obs::ScopedTimer, it takes the clock as a
// callable (NowFn). Components never require a tracer — they hold a raw
// `SpanTracer*` that stays nullptr until `set_tracer(tracer, prefix)`
// attaches one, mirroring the set_metrics idiom, and the free helpers
// below (span_begin/span_end/span_annotate) are null-safe.
//
// Determinism contract: span ids are assigned in begin() order, all
// timestamps come from the simulated clock, and annotations are stored
// in insertion order — so a same-seed run produces a byte-identical
// exported trace (trace_export.h), which CI diffs directly.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/time.h"
#include "obs/metrics.h"

namespace dlte::obs {

using SpanId = std::uint64_t;

// "No span": returned by begin() when tracing is off or the tracer is
// full; accepted (and ignored) by every tracer entry point.
inline constexpr SpanId kNoSpan = 0;

// Sentinel parent for begin(): adopt whatever span is currently active
// on the activation stack (kNoSpan if none). Pass kNoSpan explicitly to
// force a root span.
inline constexpr SpanId kCurrentSpan = ~static_cast<SpanId>(0);

// Deterministic 64-bit key for cross-component span handoff (see
// SpanTracer::stash). Both sides of a handoff — e.g. the eNodeB that
// opens an attach span and the MME that parents its AKA phase under it —
// derive the same key from protocol-visible values (cell + RNTI, TEID +
// sequence, X2 round number) without sharing any pointer.
[[nodiscard]] constexpr std::uint64_t span_key(const char* tag,
                                               std::uint64_t a,
                                               std::uint64_t b = 0) {
  // FNV-1a over the tag, then boost-style mixing of the operands.
  std::uint64_t h = 1469598103934665603ull;
  for (const char* p = tag; *p != '\0'; ++p) {
    h ^= static_cast<unsigned char>(*p);
    h *= 1099511628211ull;
  }
  h ^= a + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  h ^= b + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

struct SpanAnnotation {
  TimePoint when{};
  std::string key;
  std::string value;
};

struct Span {
  SpanId id{kNoSpan};
  SpanId parent{kNoSpan};
  std::string name;      // procedure, e.g. "attach", "x2_round"
  std::string category;  // component track, e.g. "ap1/ran"
  TimePoint start{};
  TimePoint end{};
  bool open{true};
  std::vector<SpanAnnotation> annotations;

  [[nodiscard]] Duration duration() const { return end - start; }
};

class SpanTracer {
 public:
  using NowFn = std::function<TimePoint()>;

  // `now` may be empty at construction (the bench harness creates the
  // tracer before any Simulator exists); set_clock() attaches one later.
  // Until a clock is attached, timestamps freeze at the latest seen.
  explicit SpanTracer(NowFn now = {}, std::size_t capacity = kDefaultCapacity);

  static constexpr std::size_t kDefaultCapacity = 1 << 16;
  // Per-span annotation cap: keeps a chatty bridge (TraceLog) from
  // growing one long-lived span without bound. Overflow is counted and
  // flagged by the exporter.
  static constexpr std::size_t kMaxAnnotationsPerSpan = 128;

  void set_clock(NowFn now) { now_ = std::move(now); }

  // Opens a span. `parent == kCurrentSpan` adopts the active span.
  // Returns kNoSpan (and counts a drop) once `capacity` spans exist.
  SpanId begin(std::string name, std::string category,
               SpanId parent = kCurrentSpan);

  // Closes a span: idempotent, safe out of order (a parent may close
  // before its children), and a no-op for kNoSpan/unknown ids. On first
  // close the duration is rolled up into `<prefix>span.<name>` when a
  // metrics registry is attached.
  void end(SpanId id);

  void annotate(SpanId id, std::string key, std::string value);
  // Annotates the active span, if any — how faults and legacy TraceLog
  // lines land inside the causal tree.
  void annotate_current(std::string key, std::string value);

  // Activation stack: the innermost activated-but-not-deactivated span
  // is "current" (auto-parent for begin(), target of annotate_current).
  // Discrete-event code activates around the handler that logically
  // runs inside the span; ScopedActivation below keeps it exception- and
  // early-return-safe.
  void activate(SpanId id);
  void deactivate(SpanId id);
  [[nodiscard]] SpanId current() const {
    return stack_.empty() ? kNoSpan : stack_.back();
  }

  // Cross-component handoff: the opener stashes its span id under a
  // span_key(); the continuation peeks (stashed) or claims (take) it.
  void stash(std::uint64_t key, SpanId id);
  [[nodiscard]] SpanId stashed(std::uint64_t key) const;
  SpanId take(std::uint64_t key);

  [[nodiscard]] const Span* find(SpanId id) const;
  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }
  [[nodiscard]] std::size_t open_count() const;
  [[nodiscard]] std::uint64_t dropped_spans() const { return dropped_spans_; }
  [[nodiscard]] std::uint64_t dropped_annotations() const {
    return dropped_annotations_;
  }
  // Latest timestamp observed by any tracer operation — the exporter
  // closes still-open spans at this point without needing a live clock.
  [[nodiscard]] TimePoint latest() const { return latest_; }

  // Latency rollup: on first end(), record duration (ms) into
  // `<prefix>span.<name>`; also counts `<prefix>span.total` and
  // `<prefix>span.dropped`. Null-safe like every set_metrics.
  void set_metrics(MetricsRegistry* registry, const std::string& prefix = "");

 private:
  [[nodiscard]] Span* find_mut(SpanId id);
  TimePoint tick();

  NowFn now_;
  std::size_t capacity_;
  std::vector<Span> spans_;  // id == index + 1
  std::vector<SpanId> stack_;
  std::map<std::uint64_t, SpanId> stash_;
  std::uint64_t dropped_spans_{0};
  std::uint64_t dropped_annotations_{0};
  TimePoint latest_{};

  MetricsRegistry* registry_{nullptr};
  std::string metrics_prefix_;
  Counter* m_total_{nullptr};
  Counter* m_dropped_{nullptr};
};

// ---- Null-safe helpers (the set_metrics-style calling convention) ----

inline SpanId span_begin(SpanTracer* t, std::string name, std::string category,
                         SpanId parent = kCurrentSpan) {
  if (t == nullptr) return kNoSpan;
  return t->begin(std::move(name), std::move(category), parent);
}

inline void span_end(SpanTracer* t, SpanId id) {
  if (t != nullptr && id != kNoSpan) t->end(id);
}

inline void span_annotate(SpanTracer* t, SpanId id, std::string key,
                          std::string value) {
  if (t != nullptr && id != kNoSpan) {
    t->annotate(id, std::move(key), std::move(value));
  }
}

// RAII: begin on construction, end on destruction. Does not activate.
class ScopedSpan {
 public:
  ScopedSpan(SpanTracer* tracer, std::string name, std::string category,
             SpanId parent = kCurrentSpan)
      : tracer_(tracer),
        id_(span_begin(tracer, std::move(name), std::move(category), parent)) {}
  ~ScopedSpan() { span_end(tracer_, id_); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  [[nodiscard]] SpanId id() const { return id_; }
  void annotate(std::string key, std::string value) {
    span_annotate(tracer_, id_, std::move(key), std::move(value));
  }

 private:
  SpanTracer* tracer_;
  SpanId id_;
};

// RAII activation: the span is "current" for the enclosed scope.
class ScopedActivation {
 public:
  ScopedActivation(SpanTracer* tracer, SpanId id)
      : tracer_(id != kNoSpan ? tracer : nullptr), id_(id) {
    if (tracer_ != nullptr) tracer_->activate(id_);
  }
  ~ScopedActivation() {
    if (tracer_ != nullptr) tracer_->deactivate(id_);
  }
  ScopedActivation(const ScopedActivation&) = delete;
  ScopedActivation& operator=(const ScopedActivation&) = delete;

 private:
  SpanTracer* tracer_;
  SpanId id_;
};

}  // namespace dlte::obs
