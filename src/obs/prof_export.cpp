#include "obs/prof_export.h"

#include <cmath>
#include <cstdint>
#include <fstream>
#include <map>

#include "obs/json.h"

namespace dlte::obs {

namespace {

void attribution_object(JsonWriter& w, const EventProfiler& attribution) {
  w.begin_object();
  w.key("labels");
  w.begin_object();
  for (const std::uint32_t id : attribution.sorted_ids()) {
    const EventProfiler::LabelStats& s = attribution.stats(id);
    w.key(attribution.label_name(id));
    w.begin_object();
    w.key("schedules").value(s.schedules);
    w.key("executed").value(s.executed);
    w.key("past_clamps").value(s.past_clamps);
    w.key("residency_ns").value(s.residency_ns);
    w.end_object();
  }
  w.end_object();
  const EventProfiler::LabelStats total = attribution.totals();
  w.key("totals");
  w.begin_object();
  w.key("labels").value(std::uint64_t{attribution.label_count()});
  w.key("schedules").value(total.schedules);
  w.key("executed").value(total.executed);
  w.key("past_clamps").value(total.past_clamps);
  w.key("residency_ns").value(total.residency_ns);
  w.end_object();
  w.end_object();
}

void shard_profile_object(JsonWriter& w, const ShardProfile& profile) {
  w.begin_object();
  w.key("shards").value(std::uint64_t{profile.shards});
  w.key("threads").value(std::uint64_t{profile.threads});
  w.key("windows").value(profile.windows);
  w.key("messages").value(profile.messages);
  w.key("lookahead_s").value(profile.lookahead_s);
  w.key("per_shard");
  w.begin_array();
  for (std::size_t i = 0; i < profile.lanes.size(); ++i) {
    const ShardLane& lane = profile.lanes[i];
    w.begin_object();
    w.key("shard").value(std::uint64_t{i});
    w.key("events").value(lane.events);
    w.key("run_s").value(lane.run_s);
    w.key("barrier_wait_s").value(lane.barrier_wait_s);
    w.key("events_per_window")
        .value(profile.windows > 0
                   ? static_cast<double>(lane.events) /
                         static_cast<double>(profile.windows)
                   : 0.0);
    w.end_object();
  }
  w.end_array();
  w.key("matrix");
  w.begin_array();
  for (const ShardMatrixCell& cell : profile.matrix) {
    w.begin_object();
    w.key("src").value(std::uint64_t{cell.src});
    w.key("dst").value(std::uint64_t{cell.dst});
    w.key("messages").value(cell.messages);
    w.key("bytes").value(cell.bytes);
    w.end_object();
  }
  w.end_array();
  // Columnar samples: one t_s/messages pair per barrier checkpoint plus
  // a per-shard row of cumulative event counts.
  w.key("samples");
  w.begin_object();
  w.key("t_s");
  w.begin_array();
  for (const ShardWindowSample& s : profile.samples) w.value(s.t_s);
  w.end_array();
  w.key("messages");
  w.begin_array();
  for (const ShardWindowSample& s : profile.samples) w.value(s.messages);
  w.end_array();
  w.key("shard_events");
  w.begin_array();
  for (const ShardWindowSample& s : profile.samples) {
    w.begin_array();
    for (const std::uint64_t events : s.shard_events) w.value(events);
    w.end_array();
  }
  w.end_array();
  w.key("queue_depth");
  w.begin_array();
  for (const ShardWindowSample& s : profile.samples) w.value(s.queue_depth);
  w.end_array();
  w.key("queue_resizes");
  w.begin_array();
  for (const ShardWindowSample& s : profile.samples) w.value(s.queue_resizes);
  w.end_array();
  w.end_object();
  w.end_object();
}

// Folded frame names must not carry the stack separator.
std::string fold_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == ';' || c == ' ' || c == '\n') c = '_';
  }
  return out;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out << text;
  return static_cast<bool>(out);
}

}  // namespace

std::string ProfExporter::to_json(const ProfileDoc& doc,
                                  const std::string& source) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("dlte-prof-v1");
  w.key("source").value(source);
  w.key("event_attribution");
  attribution_object(w, doc.attribution);
  w.key("shard_profile");
  shard_profile_object(w, doc.shard_profile);
  w.end_object();
  return w.str();
}

std::string ProfExporter::event_attribution_json(
    const EventProfiler& attribution) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("dlte-prof-v1");
  w.key("event_attribution");
  attribution_object(w, attribution);
  w.end_object();
  return w.str();
}

std::string ProfExporter::to_counter_trace(const ProfileDoc& doc,
                                           const std::string& source) {
  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("otherData");
  w.begin_object();
  w.key("generator").value("dlte-prof");
  w.key("source").value(source);
  w.end_object();
  w.key("traceEvents");
  w.begin_array();
  w.begin_object();
  w.key("ph").value("M");
  w.key("pid").value(1);
  w.key("tid").value(0);
  w.key("name").value("process_name");
  w.key("args");
  w.begin_object();
  w.key("name").value("dlte-prof");
  w.end_object();
  w.end_object();

  const ShardProfile& sp = doc.shard_profile;
  auto counter = [&w](const std::string& name, double ts_us,
                      const char* arg, double value) {
    w.begin_object();
    w.key("name").value(name);
    w.key("ph").value("C");
    w.key("ts").value(ts_us);
    w.key("pid").value(1);
    w.key("tid").value(0);
    w.key("args");
    w.begin_object();
    w.key(arg).value(value);
    w.end_object();
    w.end_object();
  };
  double last_ts_us = 0.0;
  for (const ShardWindowSample& s : sp.samples) {
    const double ts_us = s.t_s * 1e6;
    last_ts_us = ts_us;
    for (std::size_t i = 0; i < s.shard_events.size(); ++i) {
      counter("shard" + std::to_string(i) + ".events", ts_us, "events",
              static_cast<double>(s.shard_events[i]));
    }
    counter("par.messages", ts_us, "messages",
            static_cast<double>(s.messages));
    counter("sim.queue_depth", ts_us, "events",
            static_cast<double>(s.queue_depth));
    counter("sim.queue_resizes", ts_us, "resizes",
            static_cast<double>(s.queue_resizes));
  }
  // Per-label totals as one final counter sample each: Perfetto shows
  // them as flat tracks whose value is the label's executed-event share.
  for (const std::uint32_t id : doc.attribution.sorted_ids()) {
    counter("prof." + doc.attribution.label_name(id), last_ts_us, "executed",
            static_cast<double>(doc.attribution.stats(id).executed));
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string ProfExporter::to_collapsed(const SpanTracer& tracer) {
  const std::vector<Span>& spans = tracer.spans();
  // Span ids are begin-order (id == index + 1) and a parent always
  // begins before its children, so one forward pass can memoize paths
  // and one pass accumulates each child's duration into its parent.
  std::vector<std::int64_t> child_ns(spans.size(), 0);
  auto effective_end = [&tracer](const Span& s) {
    return s.open ? tracer.latest() : s.end;
  };
  for (const Span& s : spans) {
    if (s.parent != kNoSpan && s.parent <= spans.size()) {
      child_ns[s.parent - 1] += (effective_end(s) - s.start).ns();
    }
  }
  std::vector<std::string> paths(spans.size());
  std::map<std::string, std::uint64_t> folded;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans[i];
    const std::string frame = fold_name(s.name);
    if (s.parent != kNoSpan && s.parent <= spans.size()) {
      paths[i] = paths[s.parent - 1] + ";" + frame;
    } else {
      paths[i] = frame;
    }
    const std::int64_t self_ns =
        (effective_end(s) - s.start).ns() - child_ns[i];
    if (self_ns <= 0) continue;  // Fully covered by children.
    // Folded counts are integer microseconds of SELF time.
    folded[paths[i]] += static_cast<std::uint64_t>((self_ns + 500) / 1000);
  }
  std::string out;
  for (const auto& [path, us] : folded) {
    out += path;
    out += ' ';
    out += std::to_string(us);
    out += '\n';
  }
  return out;
}

bool ProfExporter::write_file(const ProfileDoc& doc, const std::string& source,
                              const std::string& path) {
  return write_text_file(path, to_json(doc, source) + "\n");
}

bool ProfExporter::write_counter_trace(const ProfileDoc& doc,
                                       const std::string& source,
                                       const std::string& path) {
  return write_text_file(path, to_counter_trace(doc, source) + "\n");
}

bool ProfExporter::write_collapsed(const SpanTracer& tracer,
                                   const std::string& path) {
  return write_text_file(path, to_collapsed(tracer));
}

}  // namespace dlte::obs
