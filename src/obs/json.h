// Minimal deterministic JSON writer. No dependency, no float printf:
// doubles go through std::to_chars (shortest round-trip form), so the
// same value always serializes to the same bytes on every platform the
// toolchain supports. That byte-stability is load-bearing: BENCH_*.json
// determinism checks and the CI perf gate diff this output directly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dlte::obs {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // Emits "key": — must be followed by a value or container open.
  JsonWriter& key(const std::string& k);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  [[nodiscard]] const std::string& str() const { return out_; }

  // Escapes `"` `\` and control characters per RFC 8259.
  [[nodiscard]] static std::string escape(const std::string& s);
  // Shortest round-trip decimal form; non-finite values become "null".
  [[nodiscard]] static std::string format_double(double v);

 private:
  void before_value();

  std::string out_;
  // One entry per open container: count of values emitted at that level.
  std::vector<std::uint64_t> depth_;
  bool after_key_{false};
};

}  // namespace dlte::obs
