// Runtime self-profiling plane, layer 1: deterministic event attribution
// (DESIGN.md §14).
//
// An EventProfiler answers "where do the engine's events go?" — every
// sim::Simulator::schedule_* callsite carries a cheap interned label id
// (threaded through the event queue's payload slab), and the profiler
// counts, per label: schedules issued, events executed, past-target
// clamps, and queue residency (simulated nanoseconds between scheduling
// and execution). All four derive from simulated time and seeded draws
// only, so the attribution section of a profile is byte-deterministic:
// identical across double runs AND — because per-shard profilers merge
// by label NAME, and the sharded runtime's event structure is
// partition-invariant — identical at any shard count. That is the
// contract the prof-determinism CI gate byte-compares.
//
// Layer 2 lives beside it as plain data: ShardProfile describes the
// parallel runtime's wall-clock behaviour (per-shard run/barrier-wait
// time, per-window event samples, and the shard-pair message matrix the
// topology-aware partitioner needs). Wall-clock values vary run to run,
// so ShardProfile is explicitly EXCLUDED from byte-compared artifacts —
// prof_export.h keeps the two sections separate for exactly that reason.
//
// obs sits below sim and par, so nothing here includes either; the
// engine holds an `EventProfiler*` that stays nullptr until attached
// (the set_metrics idiom), and par fills a ShardProfile by hand.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"

namespace dlte::obs {

// Label id 0 is the always-present unlabeled bucket: events scheduled
// through the unlabeled schedule_* overloads land there.
inline constexpr std::uint32_t kUnlabeledEvent = 0;
inline constexpr const char kUnlabeledEventName[] = "sim.unlabeled";

class EventProfiler {
 public:
  struct LabelStats {
    std::uint64_t schedules{0};
    std::uint64_t executed{0};
    std::uint64_t past_clamps{0};
    // Sum over schedules of (execution time - schedule time), in
    // simulated ns. Per-label mean residency = residency_ns / schedules.
    std::uint64_t residency_ns{0};

    void add(const LabelStats& other) {
      schedules += other.schedules;
      executed += other.executed;
      past_clamps += other.past_clamps;
      residency_ns += other.residency_ns;
    }
  };

  EventProfiler();

  // Get-or-create the id for `name`. Ids are dense, stable for the
  // profiler's lifetime, and per-profiler (cross-shard identity is by
  // name, never by id). Callsites intern once and cache the id.
  [[nodiscard]] std::uint32_t intern(const std::string& name);

  [[nodiscard]] const std::string& label_name(std::uint32_t id) const {
    return names_[id];
  }
  [[nodiscard]] std::size_t label_count() const { return names_.size(); }
  [[nodiscard]] const LabelStats& stats(std::uint32_t id) const {
    return stats_[id];
  }

  // Hot-path hooks (the engine calls these behind one null check).
  void on_schedule(std::uint32_t id, std::int64_t residency_ns) {
    LabelStats& s = stats_[id];
    ++s.schedules;
    s.residency_ns += static_cast<std::uint64_t>(residency_ns);
  }
  void on_past_clamp(std::uint32_t id) { ++stats_[id].past_clamps; }
  void on_execute(std::uint32_t id) { ++stats_[id].executed; }

  // Fold `other` into this profiler BY NAME: unseen labels are interned,
  // stats add. Counters are associative, so merging N per-shard
  // profilers reproduces exactly what one profiler observing the union
  // stream would hold — the shard-count-invariance the CI gate checks.
  void merge_from(const EventProfiler& other);

  // Labels in sorted-name order (the deterministic export order).
  [[nodiscard]] std::vector<std::uint32_t> sorted_ids() const;

  [[nodiscard]] LabelStats totals() const;

  // Expose every label through the metrics plane: four counters per
  // label under `<prefix><label>.{schedules,executed,past_clamps,
  // residency_ns}` — which puts prof.* on the OpenMetrics exposition
  // path for free. Adds (counter semantics), so export once per run.
  void export_metrics(MetricsRegistry& registry,
                      const std::string& prefix = "prof.") const;

 private:
  std::vector<std::string> names_;
  std::vector<LabelStats> stats_;
  std::unordered_map<std::string, std::uint32_t> ids_;
};

// ---- Layer 2: wall-clock shard profile (NOT byte-compared) -----------

// One shard's lane: how its wall time splits between running windows and
// waiting for the barrier. `events / windows` is the lookahead
// efficiency — how much work each conservative window actually carries.
struct ShardLane {
  std::uint64_t events{0};
  double run_s{0.0};
  double barrier_wait_s{0.0};
};

// One cell of the shard-pair coupling matrix: messages/bytes posted from
// `src` shard to `dst` shard. This is the load matrix ROADMAP item 1's
// min-cut partitioner consumes: heavy off-diagonal cells are shard
// boundaries that should not exist.
struct ShardMatrixCell {
  std::uint32_t src{0};
  std::uint32_t dst{0};
  std::uint64_t messages{0};
  std::uint64_t bytes{0};
};

// Per-barrier checkpoint: cumulative events per shard plus cumulative
// exchanged messages at simulated time `t_s`. Rendered as Perfetto
// counter tracks by prof_export.
struct ShardWindowSample {
  double t_s{0.0};
  std::vector<std::uint64_t> shard_events;
  std::uint64_t messages{0};
  // Engine-queue health at the barrier: total pending events across
  // shards and cumulative calendar-queue recalibrations. Both live in
  // the shard section because neither is partition-invariant.
  std::uint64_t queue_depth{0};
  std::uint64_t queue_resizes{0};
};

struct ShardProfile {
  std::size_t shards{0};
  std::size_t threads{0};
  std::uint64_t windows{0};
  std::uint64_t messages{0};
  double lookahead_s{0.0};
  std::vector<ShardLane> lanes;           // size == shards
  std::vector<ShardMatrixCell> matrix;    // nonzero cells, (src,dst) order
  std::vector<ShardWindowSample> samples;  // barrier checkpoints
};

// A full dlte-prof-v1 document: the deterministic attribution section
// plus the wall-clock shard section. Benches build one and hand it to
// the harness for export.
struct ProfileDoc {
  EventProfiler attribution;
  ShardProfile shard_profile;
};

}  // namespace dlte::obs
