#include "obs/span.h"

#include <algorithm>

namespace dlte::obs {

SpanTracer::SpanTracer(NowFn now, std::size_t capacity)
    : now_(std::move(now)), capacity_(capacity) {
  spans_.reserve(std::min<std::size_t>(capacity_, 1024));
}

TimePoint SpanTracer::tick() {
  // Clock-less tracers (harness-created before any Simulator exists)
  // freeze at the latest timestamp seen, keeping ordering monotone.
  TimePoint t = now_ ? now_() : latest_;
  if (t > latest_) latest_ = t;
  return latest_;
}

SpanId SpanTracer::begin(std::string name, std::string category,
                         SpanId parent) {
  const TimePoint now = tick();
  if (spans_.size() >= capacity_) {
    ++dropped_spans_;
    inc(m_dropped_);
    return kNoSpan;
  }
  if (parent == kCurrentSpan) parent = current();
  Span s;
  s.id = static_cast<SpanId>(spans_.size() + 1);
  s.parent = parent;
  s.name = std::move(name);
  s.category = std::move(category);
  s.start = now;
  s.end = now;
  spans_.push_back(std::move(s));
  inc(m_total_);
  return spans_.back().id;
}

void SpanTracer::end(SpanId id) {
  const TimePoint now = tick();
  Span* s = find_mut(id);
  if (s == nullptr || !s->open) return;
  s->open = false;
  s->end = now;
  // Ended spans cannot stay current: drop every stack occurrence, so an
  // out-of-order end (parent before child) leaves a consistent stack.
  stack_.erase(std::remove(stack_.begin(), stack_.end(), id), stack_.end());
  if (registry_ != nullptr) {
    registry_->histogram(metrics_prefix_ + "span." + s->name)
        .record(s->duration().to_millis());
  }
}

void SpanTracer::annotate(SpanId id, std::string key, std::string value) {
  const TimePoint now = tick();
  Span* s = find_mut(id);
  if (s == nullptr) return;
  if (s->annotations.size() >= kMaxAnnotationsPerSpan) {
    ++dropped_annotations_;
    return;
  }
  s->annotations.push_back(
      SpanAnnotation{now, std::move(key), std::move(value)});
}

void SpanTracer::annotate_current(std::string key, std::string value) {
  if (const SpanId id = current(); id != kNoSpan) {
    annotate(id, std::move(key), std::move(value));
  }
}

void SpanTracer::activate(SpanId id) {
  if (const Span* s = find(id); s != nullptr && s->open) {
    stack_.push_back(id);
  }
}

void SpanTracer::deactivate(SpanId id) {
  // Usually the top of the stack; tolerate out-of-order deactivation
  // (remove the innermost matching entry).
  auto it = std::find(stack_.rbegin(), stack_.rend(), id);
  if (it != stack_.rend()) stack_.erase(std::next(it).base());
}

void SpanTracer::stash(std::uint64_t key, SpanId id) {
  if (id == kNoSpan) return;
  stash_[key] = id;
}

SpanId SpanTracer::stashed(std::uint64_t key) const {
  auto it = stash_.find(key);
  return it == stash_.end() ? kNoSpan : it->second;
}

SpanId SpanTracer::take(std::uint64_t key) {
  auto it = stash_.find(key);
  if (it == stash_.end()) return kNoSpan;
  const SpanId id = it->second;
  stash_.erase(it);
  return id;
}

const Span* SpanTracer::find(SpanId id) const {
  if (id == kNoSpan || id > spans_.size()) return nullptr;
  return &spans_[id - 1];
}

Span* SpanTracer::find_mut(SpanId id) {
  return const_cast<Span*>(std::as_const(*this).find(id));
}

std::size_t SpanTracer::open_count() const {
  return static_cast<std::size_t>(
      std::count_if(spans_.begin(), spans_.end(),
                    [](const Span& s) { return s.open; }));
}

void SpanTracer::set_metrics(MetricsRegistry* registry,
                             const std::string& prefix) {
  registry_ = registry;
  metrics_prefix_ = prefix;
  if (registry == nullptr) {
    m_total_ = nullptr;
    m_dropped_ = nullptr;
    return;
  }
  m_total_ = &registry->counter(prefix + "span.total");
  m_dropped_ = &registry->counter(prefix + "span.dropped");
}

}  // namespace dlte::obs
