// SLO health monitoring: declarative rules over the live metrics plane
// (DESIGN.md §10).
//
// An SloRule names the *healthy* condition for one metric — "windowed
// p95 of epc.attach_latency_ms stays under 250 ms", "the rate of
// registry.heartbeats_failed stays under 0.01/s", "gauge ap1.up is at
// least 1" — plus how many consecutive evaluations must breach before
// the alert fires (and pass before it resolves), Prometheus-`for`
// style, so one noisy tick does not page.
//
// The monitor is evaluated at a fixed simulated cadence (the same
// recurring event that drives the TimeSeriesSampler — see
// sim::TelemetryDriver). Windowed predicates are computed from bucket
// subtraction of Histogram copies / counter deltas the monitor keeps
// itself, so a rule sees only the traffic inside its window.
//
// Fire/resolve transitions are recorded as structured SloAlertEvents
// (exported into the series JSON), emitted as zero-duration
// "slo_fire"/"slo_resolve" marker spans when a tracer is attached, and
// rolled into the registry as `slo.*` counters plus a per-scope
// `health.<scope>` gauge in [0,1] (1 = every rule in the scope
// healthy) — which the sampler then turns into a health time-series
// for free. Everything derives from simulated time: same-seed runs
// produce byte-identical alert timelines.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/time.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace dlte::obs {

// The healthy condition a rule asserts. Alerts fire on violation.
enum class SloPredicate {
  kQuantileBelow,  // windowed histogram quantile(q) < threshold
  kRateBelow,      // counter delta/sec over the window < threshold
  kRateAtLeast,    // counter delta/sec over the window >= threshold
                   // (liveness: "heartbeats must keep flowing")
  kGaugeAtLeast,   // gauge value >= threshold
  kGaugeAtMost,    // gauge value <= threshold
};

[[nodiscard]] const char* slo_predicate_name(SloPredicate predicate);

struct SloRule {
  std::string name;    // Alert name, e.g. "registry_outage".
  std::string scope;   // Health-score grouping, e.g. "ap1", "registry".
  std::string metric;  // Registry metric the predicate reads.
  SloPredicate predicate{SloPredicate::kGaugeAtMost};
  double threshold{0.0};
  double quantile{0.95};                    // kQuantileBelow only.
  Duration window{Duration::seconds(5.0)};  // Windowed predicates only.
  int fire_after{1};     // Consecutive breaching evaluations to fire.
  int resolve_after{1};  // Consecutive healthy evaluations to resolve.

  // One deterministic line, e.g.
  // "attach_p95 [core]: quantile_below(epc.attach_latency_ms p95) < 250".
  [[nodiscard]] std::string describe() const;
};

struct SloAlertEvent {
  double t_s{0.0};
  bool fire{true};  // false = resolve.
  std::string rule;
  std::string scope;
  std::string metric;
  double value{0.0};  // Observed value at the transition.
  double threshold{0.0};

  // "t=10.5s FIRE registry_outage [registry] ... value=0.5 threshold=0.01"
  // — byte-stable (JsonWriter double formatting), used by the TraceLog
  // bridge and the examples' printed timelines.
  [[nodiscard]] std::string describe() const;
};

class SloMonitor {
 public:
  explicit SloMonitor(const MetricsRegistry& registry)
      : registry_(registry) {}
  SloMonitor(const SloMonitor&) = delete;
  SloMonitor& operator=(const SloMonitor&) = delete;

  void add_rule(SloRule rule);
  void add_rules(const std::vector<SloRule>& rules);
  [[nodiscard]] std::size_t rule_count() const { return rules_.size(); }
  // describe() of every rule, in registration order (series JSON export).
  [[nodiscard]] std::vector<std::string> rule_descriptions() const;

  // Evaluate every rule at simulated time `now`. Rules whose metric does
  // not exist yet (or whose window has no data) count as healthy.
  void evaluate(TimePoint now);

  [[nodiscard]] const std::vector<SloAlertEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t active_alerts() const;
  [[nodiscard]] bool alert_active(const std::string& rule) const;
  [[nodiscard]] bool ever_fired(const std::string& rule) const;
  // 1 - active/total over the scope's rules; 1.0 for unknown scopes.
  [[nodiscard]] double health(const std::string& scope) const;
  [[nodiscard]] std::vector<std::string> scopes() const;

  // Roll alert state into a registry (may be the monitored one):
  // `<prefix>slo.alerts_fired` / `<prefix>slo.alerts_resolved` counters,
  // `<prefix>slo.active_alerts` gauge, and a `<prefix>health.<scope>`
  // gauge per scope (initialized to 1.0 so the series starts healthy).
  void set_metrics(MetricsRegistry* registry, const std::string& prefix = "");

  // Emit fire/resolve transitions as zero-duration marker spans
  // ("slo_fire"/"slo_resolve", category `<prefix>slo`) annotated with
  // rule/scope/value, and annotate whatever procedure span is currently
  // active — the Dapper-side view of the alert timeline. Null-safe.
  void set_tracer(SpanTracer* tracer, const std::string& prefix = "");

 private:
  struct RuleState {
    SloRule rule;
    bool active{false};
    bool ever_fired{false};
    int bad_streak{0};
    int good_streak{0};
    // Windowed state: counter samples (t_s, cumulative value) and
    // histogram copies for bucket-diff quantiles.
    std::deque<std::pair<double, std::uint64_t>> counter_window;
    std::deque<std::pair<double, Histogram>> histogram_window;
  };

  // Evaluates the predicate; writes the observed value through `value`.
  // Returns true when healthy (or when there is not yet enough data).
  [[nodiscard]] bool healthy(RuleState& state, double t_s, double* value);
  void transition(RuleState& state, double t_s, bool fire, double value);
  void update_health_gauges();

  const MetricsRegistry& registry_;
  std::vector<RuleState> rules_;
  std::vector<SloAlertEvent> events_;
  bool started_{false};
  double start_t_s_{0.0};  // First evaluation time (liveness warmup).

  MetricsRegistry* out_{nullptr};
  std::string out_prefix_;
  Counter* m_fired_{nullptr};
  Counter* m_resolved_{nullptr};
  Gauge* m_active_{nullptr};
  SpanTracer* tracer_{nullptr};
  std::string span_cat_{"slo"};
};

}  // namespace dlte::obs
