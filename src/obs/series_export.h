// Series-JSON export: the time-series counterpart of trace_export.h
// (DESIGN.md §10).
//
// Serializes a TimeSeriesSampler (and, optionally, an SloMonitor's rule
// set + alert timeline) into one deterministic JSON document:
//
//   {
//     "schema": "dlte-series-v1",
//     "source": "<bench/example name>",
//     "interval_s": 0.5,
//     "samples": 180,
//     "series": {
//       "<name>": {"kind": "counter", "dropped": 0,
//                  "points": [[t_s, value], ...]}, ...
//     },
//     "rules": ["<rule description>", ...],
//     "alerts": [{"t_s":..., "event":"fire"|"resolve", "rule":...,
//                 "scope":..., "metric":..., "value":...,
//                 "threshold":...}, ...],
//     "health": {"<scope>": <final score>, ...}
//   }
//
// Everything derives from simulated time, sorted maps, and JsonWriter
// doubles, so same-seed runs write byte-identical files —
// tools/health_report.py validates and renders them, and the CI health
// gate byte-compares a double run.
#pragma once

#include <string>

#include "obs/series.h"
#include "obs/slo.h"

namespace dlte::obs {

class SeriesExporter {
 public:
  // `monitor` may be null: the rules/alerts/health sections then render
  // empty.
  [[nodiscard]] static std::string to_json(const TimeSeriesSampler& sampler,
                                           const SloMonitor* monitor,
                                           const std::string& source);

  // Writes to_json() to `path`; false on I/O failure.
  static bool write_file(const TimeSeriesSampler& sampler,
                         const SloMonitor* monitor, const std::string& source,
                         const std::string& path);
};

}  // namespace dlte::obs
