// Exporters for the self-profiling plane (DESIGN.md §14).
//
// Three renderings of one ProfileDoc:
//
//   * to_json — the `dlte-prof-v1` document. Two top-level sections:
//     "event_attribution" (deterministic: byte-identical across double
//     runs and shard counts) and "shard_profile" (wall-clock: per-shard
//     barrier wait, window samples, the shard-pair message matrix —
//     explicitly excluded from byte comparison). CI compares only the
//     attribution section, via tools/prof_report.py --compare.
//
//   * to_counter_trace — Chrome trace-event JSON whose ph:"C" counter
//     events render as Perfetto counter tracks: cumulative events per
//     shard and exchanged messages over simulated time (one track per
//     shard from the window samples), plus one final per-label
//     executed-events counter. Loads in ui.perfetto.dev next to the
//     span traces ChromeTraceExporter emits.
//
//   * to_collapsed — flamegraph-folded text ("root;child;leaf <us>")
//     derived from SpanTracer span nesting: each span contributes its
//     SELF time (duration minus children) to its ancestry path, so the
//     output feeds flamegraph.pl / speedscope / inferno unmodified.
//
// All three are deterministic functions of their inputs; only the
// shard_profile INPUT carries wall-clock values.
#pragma once

#include <string>

#include "obs/prof.h"
#include "obs/span.h"

namespace dlte::obs {

class ProfExporter {
 public:
  // The full dlte-prof-v1 document.
  [[nodiscard]] static std::string to_json(const ProfileDoc& doc,
                                           const std::string& source);

  // The deterministic section alone, as its own JSON object — what the
  // in-process shard sweeps byte-compare.
  [[nodiscard]] static std::string event_attribution_json(
      const EventProfiler& attribution);

  // Perfetto counter tracks (Chrome trace-event JSON).
  [[nodiscard]] static std::string to_counter_trace(const ProfileDoc& doc,
                                                    const std::string& source);

  // Collapsed-stack (flamegraph-folded) text from span nesting.
  [[nodiscard]] static std::string to_collapsed(const SpanTracer& tracer);

  // write_* helpers mirror the other exporters: false on I/O failure.
  static bool write_file(const ProfileDoc& doc, const std::string& source,
                         const std::string& path);
  static bool write_counter_trace(const ProfileDoc& doc,
                                  const std::string& source,
                                  const std::string& path);
  static bool write_collapsed(const SpanTracer& tracer,
                              const std::string& path);
};

}  // namespace dlte::obs
