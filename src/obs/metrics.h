// Metrics: the zero-dependency observability substrate (DESIGN.md §8).
//
// Every layer of the stack exports its behaviour as named counters,
// gauges, and log-linear histograms held in a MetricsRegistry. The
// registry is deliberately simulation-friendly: all values derive from
// simulated time and deterministic event streams, so two runs with the
// same seed snapshot to byte-identical JSON — which is what lets the
// bench trajectory (BENCH_*.json) and the CI perf gate trust the numbers.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace dlte::obs {

// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_{0};
};

// Point-in-time value (last write wins).
class Gauge {
 public:
  void set(double v) {
    value_ = v;
    written_ = true;
  }
  void add(double d) {
    value_ += d;
    written_ = true;
  }
  // Keep the maximum seen: lets several instances (e.g. one simulator per
  // scenario variant) share one "worst observed" gauge. The first write
  // always sticks — a first negative observation must not lose to the
  // 0.0 default.
  void set_max(double v) {
    if (!written_ || v > value_) value_ = v;
    written_ = true;
  }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_{0.0};
  bool written_{false};
};

// Log-linear histogram: p50/p95/p99 without storing samples.
//
// Positive values land in 2^e ranges split into kSubBuckets linear
// sub-buckets (HdrHistogram-style), so the relative width of any bucket
// is at most 1/kSubBuckets (~3.1%) and a reported quantile — the bucket
// midpoint, clamped to the observed [min, max] — is within ~1.6% of the
// true sample quantile. Zero and negative samples share one underflow
// bucket that reports as 0. Memory is O(occupied buckets), never O(n).
class Histogram {
 public:
  static constexpr int kSubBuckets = 32;

  void record(double v);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] double min() const { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ > 0 ? max_ : 0.0; }

  // q in [0,1]. Bucket-midpoint estimate, clamped to [min(), max()].
  [[nodiscard]] double quantile(double q) const;

  // Windowed view by bucket subtraction: statistics of the samples
  // recorded into *this since `baseline` was copied from it. `baseline`
  // MUST be an earlier copy of this same histogram. The clamp range is
  // the lifetime [min(), max()] (a superset of the window's), so the
  // estimate keeps the log-linear ~1.6% bucket accuracy. This is what
  // lets the SLO monitor compute "p95 over the last 5 s" without ever
  // storing samples.
  [[nodiscard]] std::uint64_t count_since(const Histogram& baseline) const {
    return count_ - baseline.count_;
  }
  [[nodiscard]] double quantile_since(const Histogram& baseline,
                                      double q) const;

  // Absorb every sample of `other` by bucket-wise addition. Because the
  // bucket layout is fixed (not adaptive), merging per-shard histograms
  // recorded from the same sample stream yields exactly the histogram a
  // single-instance run would have produced — the property the sharded
  // runtime's determinism gate relies on.
  void merge_from(const Histogram& other);
  [[nodiscard]] double p50() const { return quantile(0.50); }
  [[nodiscard]] double p90() const { return quantile(0.90); }
  [[nodiscard]] double p95() const { return quantile(0.95); }
  [[nodiscard]] double p99() const { return quantile(0.99); }

 private:
  [[nodiscard]] static std::int32_t bucket_index(double v);
  [[nodiscard]] static double bucket_midpoint(std::int32_t index);

  std::map<std::int32_t, std::uint64_t> buckets_;
  std::uint64_t underflow_{0};  // Samples <= 0.
  std::uint64_t count_{0};
  double sum_{0.0};
  double min_{0.0};
  double max_{0.0};
};

// Named metrics, get-or-create by name. References returned are stable
// for the registry's lifetime (node-based storage), so hot paths cache
// the pointer once and skip the name lookup thereafter. Iteration order
// is the sorted name order, which is what makes snapshots deterministic.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter& counter(const std::string& name) {
    return counters_[name];
  }
  [[nodiscard]] Gauge& gauge(const std::string& name) {
    return gauges_[name];
  }
  [[nodiscard]] Histogram& histogram(const std::string& name) {
    return histograms_[name];
  }

  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(
      const std::string& name) const;

  [[nodiscard]] const std::map<std::string, Counter>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  [[nodiscard]] std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  void clear() {
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

// Null-tolerant helpers: instrumented components hold metric pointers
// that stay nullptr until someone attaches a registry, so the hot path
// is one branch when observability is off.
inline void inc(Counter* c, std::uint64_t n = 1) {
  if (c != nullptr) c->inc(n);
}
inline void observe(Histogram* h, double v) {
  if (h != nullptr) h->record(v);
}
inline void set(Gauge* g, double v) {
  if (g != nullptr) g->set(v);
}

}  // namespace dlte::obs
