// OpenMetrics / Prometheus text exposition of a MetricsRegistry
// (DESIGN.md §10).
//
// The standard scrape format, rendered deterministically: families in
// sorted name order (counters, then gauges, then histograms), metric
// names sanitized to [a-zA-Z0-9_:] (dots become underscores), doubles
// through JsonWriter's shortest-round-trip formatting, terminated by
// "# EOF". Two same-seed runs emit byte-identical text — CI cmp's it.
//
// Histograms are exposed as OpenMetrics summaries (quantile labels from
// the log-linear sketch) plus _sum/_count, with the observed extrema as
// companion _min/_max gauges. Dotted metric names are assumed not to
// collide after sanitization (the repo's naming convention — dots as
// the only separator — guarantees it).
#pragma once

#include <string>

#include "obs/metrics.h"
#include "obs/snapshot.h"

namespace dlte::obs {

class OpenMetricsExporter {
 public:
  [[nodiscard]] static std::string render(const MetricsSnapshot& snapshot);
  [[nodiscard]] static std::string render(const MetricsRegistry& registry) {
    return render(MetricsSnapshot{registry});
  }

  // Writes render() to `path`; false on I/O failure.
  static bool write_file(const MetricsRegistry& registry,
                         const std::string& path);

  // "c8.dlte.epc.attach_latency_ms" -> "c8_dlte_epc_attach_latency_ms".
  [[nodiscard]] static std::string sanitize(const std::string& name);
};

}  // namespace dlte::obs
