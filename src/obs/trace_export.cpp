#include "obs/trace_export.h"

#include <cstdint>
#include <fstream>
#include <map>
#include <string>

#include "obs/json.h"

namespace dlte::obs {

namespace {

// Reserved args keys; annotation keys colliding with them (or with an
// earlier annotation) get a "#<n>" suffix so nothing is silently lost.
bool is_reserved_key(const std::string& k) {
  return k == "id" || k == "parent" || k == "open" ||
         k == "annotations_dropped";
}

}  // namespace

std::string ChromeTraceExporter::to_json(const SpanTracer& tracer) {
  // One synthetic thread id per category, in sorted order, so tracks
  // are stable regardless of which component spanned first.
  std::map<std::string, int> tids;
  for (const Span& s : tracer.spans()) tids.emplace(s.category, 0);
  int next_tid = 1;
  for (auto& [category, tid] : tids) tid = next_tid++;

  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("otherData");
  w.begin_object();
  w.key("generator").value("dlte-span-tracer");
  w.key("span_count").value(std::uint64_t{tracer.spans().size()});
  w.key("open_spans").value(std::uint64_t{tracer.open_count()});
  w.key("dropped_spans").value(tracer.dropped_spans());
  w.key("dropped_annotations").value(tracer.dropped_annotations());
  w.end_object();
  w.key("traceEvents");
  w.begin_array();

  w.begin_object();
  w.key("ph").value("M");
  w.key("pid").value(1);
  w.key("tid").value(0);
  w.key("name").value("process_name");
  w.key("args");
  w.begin_object();
  w.key("name").value("dlte-sim");
  w.end_object();
  w.end_object();
  for (const auto& [category, tid] : tids) {
    w.begin_object();
    w.key("ph").value("M");
    w.key("pid").value(1);
    w.key("tid").value(tid);
    w.key("name").value("thread_name");
    w.key("args");
    w.begin_object();
    w.key("name").value(category);
    w.end_object();
    w.end_object();
  }

  for (const Span& s : tracer.spans()) {
    const TimePoint end = s.open ? tracer.latest() : s.end;
    w.begin_object();
    w.key("name").value(s.name);
    w.key("cat").value(s.category);
    w.key("ph").value("X");
    w.key("ts").value((s.start - TimePoint{}).to_micros());
    w.key("dur").value((end - s.start).to_micros());
    w.key("pid").value(1);
    w.key("tid").value(tids[s.category]);
    w.key("args");
    w.begin_object();
    w.key("id").value(s.id);
    w.key("parent").value(s.parent);
    if (s.open) w.key("open").value("true");
    if (s.annotations.size() >= SpanTracer::kMaxAnnotationsPerSpan) {
      w.key("annotations_dropped").value("true");
    }
    std::map<std::string, int> used;
    for (const SpanAnnotation& a : s.annotations) {
      std::string key = a.key;
      const int n = ++used[key];
      if (n > 1 || is_reserved_key(key)) {
        key += "#" + std::to_string(n);
      }
      w.key(key).value(a.value);
    }
    w.end_object();
    w.end_object();
  }

  w.end_array();
  w.end_object();
  return w.str();
}

bool ChromeTraceExporter::write_file(const SpanTracer& tracer,
                                     const std::string& path) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out << to_json(tracer) << "\n";
  return static_cast<bool>(out);
}

}  // namespace dlte::obs
