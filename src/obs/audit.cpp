#include "obs/audit.h"

#include <algorithm>
#include <cstring>

namespace dlte::obs {

namespace {

// Bit pattern of a double as a hashable word (memcpy is the portable
// bit_cast; both sides are 8 bytes).
std::uint64_t double_bits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

std::uint64_t fnv_bytes(const void* data, std::size_t len, std::uint64_t h) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h = (h ^ bytes[i]) * kFnvPrime;
  }
  return h;
}

DigestTimeline::DigestTimeline(std::int64_t window_ns)
    : window_ns_(window_ns > 0 ? window_ns : 1) {
  register_label(0, "sim.unlabeled");
}

void DigestTimeline::register_label(std::uint32_t id,
                                    const std::string& name) {
  if (id >= labels_.size()) labels_.resize(id + 1);
  if (!labels_[id].name.empty()) return;  // Re-registering is idempotent.
  labels_[id].name = name;
  labels_[id].name_hash = fnv_bytes(name.data(), name.size());
}

std::uint64_t DigestTimeline::events_total() const {
  std::uint64_t total = 0;
  for (const Window& w : windows_) total += w.events;
  return total;
}

void MessageLedger::on_message(std::int64_t deliver_at_ns,
                               std::uint64_t src_endpoint, std::uint64_t seq,
                               std::uint16_t kind, const std::uint8_t* payload,
                               std::size_t payload_len,
                               std::uint32_t src_shard,
                               std::uint32_t dst_shard) {
  const std::int64_t index = deliver_at_ns / window_ns_;
  Window& window = windows_[index];
  std::uint64_t h =
      fnv_mix(kFnvOffset, static_cast<std::uint64_t>(deliver_at_ns));
  h = fnv_mix(h, src_endpoint);
  h = fnv_mix(h, seq);
  h = fnv_mix(h, kind);
  h = fnv_bytes(payload, payload_len, h);
  ++window.messages;
  window.all.add(h);
  PairCell& cell = window.pairs[{src_shard, dst_shard}];
  cell.src_shard = src_shard;
  cell.dst_shard = dst_shard;
  ++cell.messages;
  cell.chain = fnv_mix(cell.chain, h);
}

std::uint64_t MessageLedger::messages_total() const {
  std::uint64_t total = 0;
  for (const auto& [index, window] : windows_) total += window.messages;
  return total;
}

MultisetDigest digest_registry(const MetricsRegistry& registry) {
  MultisetDigest digest;
  for (const auto& [name, counter] : registry.counters()) {
    std::uint64_t h = fnv_bytes(name.data(), name.size());
    h = fnv_mix(h, 'c');
    h = fnv_mix(h, counter.value());
    digest.add(h);
  }
  for (const auto& [name, gauge] : registry.gauges()) {
    std::uint64_t h = fnv_bytes(name.data(), name.size());
    h = fnv_mix(h, 'g');
    h = fnv_mix(h, double_bits(gauge.value()));
    digest.add(h);
  }
  for (const auto& [name, histogram] : registry.histograms()) {
    std::uint64_t h = fnv_bytes(name.data(), name.size());
    h = fnv_mix(h, 'h');
    h = fnv_mix(h, histogram.count());
    h = fnv_mix(h, double_bits(histogram.sum()));
    h = fnv_mix(h, double_bits(histogram.min()));
    h = fnv_mix(h, double_bits(histogram.max()));
    digest.add(h);
  }
  return digest;
}

AuditDoc build_audit_doc(const std::vector<const DigestTimeline*>& timelines,
                         const MessageLedger* ledger,
                         std::vector<AuditDoc::MetricWindow> metric_windows) {
  AuditDoc doc;
  doc.shards = timelines.size();
  doc.metric_windows = std::move(metric_windows);

  std::size_t window_count = 0;
  for (const DigestTimeline* timeline : timelines) {
    if (timeline == nullptr) continue;
    doc.window_ns = timeline->window_ns();
    window_count = std::max(window_count, timeline->windows().size());
  }
  if (ledger != nullptr) {
    doc.window_ns = doc.window_ns == 0 ? ledger->window_ns() : doc.window_ns;
    if (!ledger->windows().empty()) {
      const std::int64_t last = ledger->windows().rbegin()->first;
      window_count =
          std::max(window_count, static_cast<std::size_t>(last) + 1);
    }
  }

  // Merged section: commutative folds over shards per window index. An
  // empty shard contributes identity digests — folding it is a no-op.
  doc.merged.resize(window_count);
  for (std::size_t w = 0; w < window_count; ++w) {
    doc.merged[w].index = static_cast<std::int64_t>(w);
  }
  for (const DigestTimeline* timeline : timelines) {
    if (timeline == nullptr) continue;
    const auto& windows = timeline->windows();
    for (std::size_t w = 0; w < windows.size(); ++w) {
      doc.merged[w].events += windows[w].events;
      doc.merged[w].events_digest.merge(windows[w].all);
    }
    doc.events_total += timeline->events_total();
  }
  if (ledger != nullptr) {
    for (const auto& [index, window] : ledger->windows()) {
      auto& merged = doc.merged[static_cast<std::size_t>(index)];
      merged.messages += window.messages;
      merged.messages_digest.merge(window.all);
    }
    doc.messages_total = ledger->messages_total();
  }

  // Per-shard section: chains and per-label digests, labels resolved to
  // names (ids are per-shard) and sorted so the export is deterministic.
  for (std::size_t s = 0; s < timelines.size(); ++s) {
    const DigestTimeline* timeline = timelines[s];
    AuditDoc::ShardTimeline shard;
    shard.shard = static_cast<std::uint32_t>(s);
    if (timeline != nullptr) {
      const auto& windows = timeline->windows();
      shard.windows.reserve(windows.size());
      for (std::size_t w = 0; w < windows.size(); ++w) {
        AuditDoc::ShardWindow out;
        out.index = static_cast<std::int64_t>(w);
        out.events = windows[w].events;
        out.chain = windows[w].chain;
        for (std::uint32_t id = 0; id < windows[w].labels.size(); ++id) {
          const MultisetDigest& digest = windows[w].labels[id];
          if (digest.count == 0) continue;
          out.labels.push_back(
              AuditDoc::LabelDigest{timeline->label_name(id), digest});
        }
        std::sort(out.labels.begin(), out.labels.end(),
                  [](const AuditDoc::LabelDigest& a,
                     const AuditDoc::LabelDigest& b) {
                    return a.name < b.name;
                  });
        shard.windows.push_back(std::move(out));
      }
    }
    doc.shard_timelines.push_back(std::move(shard));
  }

  if (ledger != nullptr) {
    for (const auto& [index, window] : ledger->windows()) {
      AuditDoc::LedgerWindow out;
      out.index = index;
      out.pairs.reserve(window.pairs.size());
      for (const auto& [key, cell] : window.pairs) out.pairs.push_back(cell);
      doc.ledger.push_back(std::move(out));
    }
  }
  return doc;
}

}  // namespace dlte::obs
