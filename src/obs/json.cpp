#include "obs/json.h"

#include <array>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace dlte::obs {

void JsonWriter::before_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!depth_.empty()) {
    if (depth_.back() > 0) out_ += ',';
    ++depth_.back();
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  depth_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  depth_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  depth_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  depth_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  if (!depth_.empty()) {
    if (depth_.back() > 0) out_ += ',';
    ++depth_.back();
  }
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_value();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string{v});
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  out_ += format_double(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  return *this;
}

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> buf{};
          std::snprintf(buf.data(), buf.size(), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf.data();
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonWriter::format_double(double v) {
  if (!std::isfinite(v)) return "null";
  // Integral values print without a fraction so counters promoted to
  // double stay readable (`12` not `1.2e1`).
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::abs(v) < 1e15) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  std::array<char, 64> buf{};
  const auto [ptr, ec] =
      std::to_chars(buf.data(), buf.data() + buf.size(), v);
  if (ec != std::errc{}) return "null";
  return std::string(buf.data(), ptr);
}

}  // namespace dlte::obs
