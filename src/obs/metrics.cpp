#include "obs/metrics.h"

#include <cmath>

namespace dlte::obs {

std::int32_t Histogram::bucket_index(double v) {
  // frexp: v = f * 2^e with f in [0.5, 1). Map f linearly onto
  // kSubBuckets sub-buckets so consecutive buckets differ by at most a
  // factor of (1 + 1/kSubBuckets).
  int e = 0;
  const double f = std::frexp(v, &e);
  const auto sub = static_cast<std::int32_t>((f - 0.5) * 2.0 * kSubBuckets);
  return static_cast<std::int32_t>(e) * kSubBuckets +
         std::min<std::int32_t>(sub, kSubBuckets - 1);
}

double Histogram::bucket_midpoint(std::int32_t index) {
  const std::int32_t e =
      index >= 0 ? index / kSubBuckets
                 : (index - (kSubBuckets - 1)) / kSubBuckets;
  const std::int32_t sub = index - e * kSubBuckets;
  const double lo =
      std::ldexp(0.5 + 0.5 * static_cast<double>(sub) / kSubBuckets, e);
  const double hi =
      std::ldexp(0.5 + 0.5 * static_cast<double>(sub + 1) / kSubBuckets, e);
  return 0.5 * (lo + hi);
}

void Histogram::record(double v) {
  if (!std::isfinite(v)) return;
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  ++count_;
  sum_ += v;
  if (v <= 0.0) {
    ++underflow_;
  } else {
    ++buckets_[bucket_index(v)];
  }
}

void Histogram::merge_from(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
  underflow_ += other.underflow_;
  for (const auto& [index, n] : other.buckets_) buckets_[index] += n;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample (1-based, ceil) within the sorted stream.
  const auto rank = static_cast<std::uint64_t>(
      std::max<double>(1.0, std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = underflow_;
  // Underflow bucket: report the observed minimum when negative samples
  // were seen, otherwise the bucket's nominal value of zero.
  if (rank <= seen) return min_ < 0.0 ? min_ : 0.0;
  double estimate = max_;
  for (const auto& [index, n] : buckets_) {
    seen += n;
    if (seen >= rank) {
      estimate = bucket_midpoint(index);
      break;
    }
  }
  if (estimate < min_) estimate = min_;
  if (estimate > max_) estimate = max_;
  return estimate;
}

double Histogram::quantile_since(const Histogram& baseline, double q) const {
  const std::uint64_t n = count_ - baseline.count_;
  if (n == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto rank = static_cast<std::uint64_t>(
      std::max<double>(1.0, std::ceil(q * static_cast<double>(n))));
  std::uint64_t seen = underflow_ - baseline.underflow_;
  if (rank <= seen) return min_ < 0.0 ? min_ : 0.0;
  double estimate = max_;
  for (const auto& [index, count] : buckets_) {
    std::uint64_t delta = count;
    const auto it = baseline.buckets_.find(index);
    if (it != baseline.buckets_.end()) delta -= it->second;
    seen += delta;
    if (seen >= rank) {
      estimate = bucket_midpoint(index);
      break;
    }
  }
  if (estimate < min_) estimate = min_;
  if (estimate > max_) estimate = max_;
  return estimate;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it != counters_.end() ? &it->second : nullptr;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? &it->second : nullptr;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it != histograms_.end() ? &it->second : nullptr;
}

}  // namespace dlte::obs
