#include "obs/snapshot.h"

#include "obs/json.h"

namespace dlte::obs {

MetricsSnapshot::MetricsSnapshot(const MetricsRegistry& registry) {
  counters_.reserve(registry.counters().size());
  for (const auto& [name, c] : registry.counters()) {
    counters_.emplace_back(name, c.value());
  }
  gauges_.reserve(registry.gauges().size());
  for (const auto& [name, g] : registry.gauges()) {
    gauges_.emplace_back(name, g.value());
  }
  histograms_.reserve(registry.histograms().size());
  for (const auto& [name, h] : registry.histograms()) {
    HistogramSnapshot s;
    s.count = h.count();
    s.sum = h.sum();
    s.min = h.min();
    s.max = h.max();
    s.mean = h.mean();
    s.p50 = h.p50();
    s.p90 = h.p90();
    s.p95 = h.p95();
    s.p99 = h.p99();
    histograms_.emplace_back(name, s);
  }
}

std::string MetricsSnapshot::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, v] : counters_) w.key(name).value(v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, v] : gauges_) w.key(name).value(v);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name).begin_object();
    w.key("count").value(h.count);
    w.key("sum").value(h.sum);
    w.key("min").value(h.min);
    w.key("max").value(h.max);
    w.key("mean").value(h.mean);
    w.key("p50").value(h.p50);
    w.key("p90").value(h.p90);
    w.key("p95").value(h.p95);
    w.key("p99").value(h.p99);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace dlte::obs
