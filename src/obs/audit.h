// Determinism audit plane, layer 1: windowed execution digests
// (DESIGN.md §15).
//
// The whole scaling strategy rests on one invariant: a sharded run is
// byte-identical to the sequential one at any shard/thread count. The
// byte-compares that enforce it (obs_check.sh par, the par-determinism
// CI job) can only say "differs" — this plane says WHERE. A
// DigestTimeline rides next to the EventProfiler hook in the engine and
// folds every executed event's (when, seq, label) into fixed windows of
// simulated time; a MessageLedger does the same for every cross-shard
// message a barrier exchange injects. tools/audit_diff.py then compares
// two audit documents window by window and names the first divergent
// window, the shard(s) whose chains split, and the event labels whose
// digests moved — the simulation equivalent of drive-test localization
// in an operational LTE network.
//
// Digest algebra. Two kinds of fold, chosen per section:
//
//   * order-sensitive chains — FNV-1a folded in execution order,
//     seq included. These catch pure reorders (two same-timestamp
//     events swapping seq assignment leaves every metric identical;
//     only an order-sensitive digest sees it). Chains depend on
//     per-shard seq counters, so they are deterministic for a FIXED
//     configuration and compared only between equal-shard-count runs.
//
//   * order-independent multisets — MultisetDigest {count, xor, sum}
//     over per-event hashes that exclude seq and use the label NAME
//     hash (ids are per-shard). count/xor/sum are each commutative and
//     associative, so folding per-shard digests reproduces exactly what
//     one timeline observing the union stream would hold: the merged
//     section is PARTITION-INVARIANT and byte-compared across shard
//     counts, the same two-section split the prof plane uses.
//
// Everything here is POD arithmetic: the hot path hashes three or four
// words per event and never allocates (windows materialize once, when
// first entered). obs sits below sim and par, so nothing here includes
// either; the engine holds a `DigestTimeline*` that stays nullptr until
// attached (the set_metrics idiom), and par feeds the ledger by hand.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace dlte::obs {

// ---- FNV-1a core -----------------------------------------------------

inline constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

// Word-wise FNV-1a step: cheaper than byte-wise on the hot path and
// just as deterministic. All audit hashes are built from this one mix.
[[nodiscard]] inline constexpr std::uint64_t fnv_mix(std::uint64_t h,
                                                     std::uint64_t word) {
  return (h ^ word) * kFnvPrime;
}

// Byte-wise FNV-1a for variable-length inputs (label names, payloads).
[[nodiscard]] std::uint64_t fnv_bytes(const void* data, std::size_t len,
                                      std::uint64_t h = kFnvOffset);

// ---- Order-independent multiset fingerprint --------------------------

// Fingerprint of a multiset of 64-bit hashes. count/xor/sum commute, so
// add order never matters and per-shard digests merge() into exactly
// the digest of the union stream — the partition-invariance the merged
// audit section is built on. Three independent lanes make collisions by
// accident (two different multisets agreeing on all three) vanishingly
// unlikely for the multiset sizes a run produces.
struct MultisetDigest {
  std::uint64_t count{0};
  std::uint64_t xor_fold{0};
  std::uint64_t sum{0};

  void add(std::uint64_t h) {
    ++count;
    xor_fold ^= h;
    sum += h;
  }
  void merge(const MultisetDigest& other) {
    count += other.count;
    xor_fold ^= other.xor_fold;
    sum += other.sum;
  }
  [[nodiscard]] bool operator==(const MultisetDigest& other) const {
    return count == other.count && xor_fold == other.xor_fold &&
           sum == other.sum;
  }
  [[nodiscard]] bool operator!=(const MultisetDigest& other) const {
    return !(*this == other);
  }
};

// ---- Per-shard execution timeline ------------------------------------

// One engine's executed-event stream, folded into windows of
// `window_ns` simulated time on the fixed t=0 grid (window w covers
// [w*W, (w+1)*W)). Per window it keeps:
//
//   * events   — executed-event count;
//   * chain    — order-sensitive FNV-1a over (when, seq, label-name
//                hash), restarted from the offset basis each window so
//                windows compare independently;
//   * all      — multiset over H(when, label-name hash): seq-free,
//                id-free, the shard's contribution to the merged
//                section;
//   * labels   — per-label multisets over the seq-INCLUSIVE hash,
//                indexed by interned label id. This is the localization
//                layer: a pure reorder moves exactly the labels whose
//                events swapped.
class DigestTimeline {
 public:
  struct Window {
    std::uint64_t events{0};
    std::uint64_t chain{kFnvOffset};
    MultisetDigest all;
    std::vector<MultisetDigest> labels;  // indexed by label id
  };

  explicit DigestTimeline(std::int64_t window_ns);

  // Precompute the name hash for an interned label id. Ids are dense
  // (EventProfiler interning); id 0 is pre-registered as
  // "sim.unlabeled". Safe to re-register (idempotent by id).
  void register_label(std::uint32_t id, const std::string& name);

  // Hot path: called by the engine for every executed event, after the
  // clock advanced to `when_ns`. `when_ns` is non-decreasing within a
  // run, so window materialization is append-only.
  void on_execute(std::int64_t when_ns, std::uint64_t seq,
                  std::uint32_t label) {
    const std::size_t w = static_cast<std::size_t>(when_ns / window_ns_);
    if (w >= windows_.size()) windows_.resize(w + 1);
    // An id interned before the auditor attached has no name hash yet;
    // fold it as unlabeled rather than read out of bounds.
    if (label >= labels_.size()) label = 0;
    Window& window = windows_[w];
    if (label >= window.labels.size()) window.labels.resize(labels_.size());
    // h2 excludes seq and uses the label NAME hash: partition-invariant.
    // h1 layers the per-shard seq on top: order-sensitive.
    const std::uint64_t h2 =
        fnv_mix(fnv_mix(kFnvOffset, static_cast<std::uint64_t>(when_ns)),
                labels_[label].name_hash);
    const std::uint64_t h1 = fnv_mix(h2, seq);
    ++window.events;
    window.chain = fnv_mix(window.chain, h1);
    window.all.add(h2);
    window.labels[label].add(h1);
  }

  [[nodiscard]] std::int64_t window_ns() const { return window_ns_; }
  [[nodiscard]] const std::vector<Window>& windows() const {
    return windows_;
  }
  [[nodiscard]] std::size_t label_count() const { return labels_.size(); }
  [[nodiscard]] const std::string& label_name(std::uint32_t id) const {
    return labels_[id].name;
  }
  [[nodiscard]] std::uint64_t events_total() const;

 private:
  struct Label {
    std::string name;
    std::uint64_t name_hash{0};
  };

  std::int64_t window_ns_;
  std::vector<Window> windows_;
  std::vector<Label> labels_;
};

// ---- Cross-shard message ledger --------------------------------------

// Every message a barrier exchange injects, digested twice per audit
// window (windowed by deliver_at on the same t=0 grid):
//
//   * merged — multiset over H(deliver_at, src, seq, kind, payload).
//     The global message multiset is partition-invariant (src is a
//     stable endpoint id, seq counts that endpoint's posts), so this
//     joins the merged section.
//   * per shard pair — message count plus an order-sensitive chain in
//     injection order. Pairs only exist for one shard count, so this
//     lives in the per-shard section; a reordered injection shows up
//     here and nowhere in the metrics.
//
// obs knows nothing about par: the runtime passes raw shard indices.
class MessageLedger {
 public:
  struct PairCell {
    std::uint32_t src_shard{0};
    std::uint32_t dst_shard{0};
    std::uint64_t messages{0};
    std::uint64_t chain{kFnvOffset};
  };
  struct Window {
    std::uint64_t messages{0};
    MultisetDigest all;
    // Sparse, keyed (src_shard, dst_shard) — deterministic iteration.
    std::map<std::pair<std::uint32_t, std::uint32_t>, PairCell> pairs;
  };

  explicit MessageLedger(std::int64_t window_ns)
      : window_ns_(window_ns > 0 ? window_ns : 1) {}

  // Called at the barrier, in global injection order (single-threaded).
  void on_message(std::int64_t deliver_at_ns, std::uint64_t src_endpoint,
                  std::uint64_t seq, std::uint16_t kind,
                  const std::uint8_t* payload, std::size_t payload_len,
                  std::uint32_t src_shard, std::uint32_t dst_shard);

  [[nodiscard]] std::int64_t window_ns() const { return window_ns_; }
  // Keyed by window index; sparse because deliver_at jumps around.
  [[nodiscard]] const std::map<std::int64_t, Window>& windows() const {
    return windows_;
  }
  [[nodiscard]] std::uint64_t messages_total() const;

 private:
  std::int64_t window_ns_;
  std::map<std::int64_t, Window> windows_;
};

// ---- Metric-snapshot digest ------------------------------------------

// Multiset fingerprint of a registry's full state: one hash per
// instrument over (name, type tag, value words) — counters by value,
// gauges by the double's bit pattern, histograms by count/sum/min/max.
// Because the merge naming contract keeps every instrument name in
// exactly one shard, folding per-shard registry digests with merge()
// is partition-invariant, giving the merged section a cheap "was the
// observable state identical at this window?" check without
// serializing a snapshot per window.
[[nodiscard]] MultisetDigest digest_registry(const MetricsRegistry& registry);

// ---- The assembled document ------------------------------------------

// Plain data, built once after a run; audit_export.h serializes it.
// Section semantics mirror the prof plane: "merged" is
// partition-invariant and byte-compared across shard counts; "shards"
// (chains, per-label digests, ledger pairs) is deterministic for a
// fixed configuration and compared only between equal-configuration
// runs.
struct AuditDoc {
  struct MergedWindow {
    std::int64_t index{0};
    std::uint64_t events{0};
    MultisetDigest events_digest;
    std::uint64_t messages{0};
    MultisetDigest messages_digest;
  };
  struct MetricWindow {
    std::int64_t index{0};
    // Barrier time the digest was taken at (first barrier at or after
    // the window close — a partition-invariant point in the run).
    std::int64_t t_ns{0};
    MultisetDigest digest;
  };
  struct LabelDigest {
    std::string name;
    MultisetDigest digest;
  };
  struct ShardWindow {
    std::int64_t index{0};
    std::uint64_t events{0};
    std::uint64_t chain{kFnvOffset};
    std::vector<LabelDigest> labels;  // sorted by name, zero-count elided
  };
  struct ShardTimeline {
    std::uint32_t shard{0};
    std::vector<ShardWindow> windows;
  };
  struct LedgerWindow {
    std::int64_t index{0};
    std::vector<MessageLedger::PairCell> pairs;  // (src, dst) order
  };

  std::int64_t window_ns{0};
  std::size_t shards{0};
  std::uint64_t events_total{0};
  std::uint64_t messages_total{0};
  std::vector<MergedWindow> merged;
  std::vector<MetricWindow> metric_windows;
  std::vector<ShardTimeline> shard_timelines;
  std::vector<LedgerWindow> ledger;
};

// Fold per-shard timelines + the ledger + per-window metric digests
// into one AuditDoc. `timelines` may contain shards that executed
// nothing (their windows simply contribute identity digests — the
// empty-shard fold is a no-op, like EventProfiler::merge_from of an
// empty profiler). `ledger` may be null (no cross-shard plane).
[[nodiscard]] AuditDoc build_audit_doc(
    const std::vector<const DigestTimeline*>& timelines,
    const MessageLedger* ledger,
    std::vector<AuditDoc::MetricWindow> metric_windows);

}  // namespace dlte::obs
