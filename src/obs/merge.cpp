#include "obs/merge.h"

#include <map>

#include "obs/json.h"

namespace dlte::obs {

void merge_registry(MetricsRegistry& dst, const MetricsRegistry& src,
                    const std::string& prefix) {
  for (const auto& [name, counter] : src.counters()) {
    dst.counter(prefix + name).inc(counter.value());
  }
  for (const auto& [name, gauge] : src.gauges()) {
    dst.gauge(prefix + name).set_max(gauge.value());
  }
  for (const auto& [name, histogram] : src.histograms()) {
    dst.histogram(prefix + name).merge_from(histogram);
  }
}

std::string merged_series_json(
    const std::vector<const TimeSeriesSampler*>& samplers,
    const std::string& source) {
  // Union of series, sorted by name; first sampler wins on duplicates.
  std::map<std::string, const TimeSeries*> merged;
  double interval_s = 0.0;
  std::uint64_t samples = 0;
  for (const TimeSeriesSampler* sampler : samplers) {
    if (sampler == nullptr) continue;
    if (interval_s == 0.0) interval_s = sampler->interval().to_seconds();
    if (sampler->samples() > samples) samples = sampler->samples();
    for (const auto& [name, series] : sampler->series()) {
      merged.emplace(name, &series);
    }
  }

  JsonWriter w;
  w.begin_object();
  w.key("schema").value("dlte-series-v1");
  w.key("source").value(source);
  w.key("interval_s").value(interval_s);
  w.key("samples").value(samples);
  w.key("series").begin_object();
  for (const auto& [name, series] : merged) {
    w.key(name).begin_object();
    w.key("kind").value(series_kind_name(series->kind()));
    w.key("dropped").value(series->dropped());
    w.key("points").begin_array();
    for (const auto& point : series->points()) {
      w.begin_array();
      w.value(point.t_s);
      w.value(point.value);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.key("rules").begin_array();
  w.end_array();
  w.key("alerts").begin_array();
  w.end_array();
  w.key("health").begin_object();
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace dlte::obs
