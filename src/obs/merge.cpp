#include "obs/merge.h"

#include <map>

#include "obs/json.h"

namespace dlte::obs {

void merge_registry(MetricsRegistry& dst, const MetricsRegistry& src,
                    const std::string& prefix) {
  for (const auto& [name, counter] : src.counters()) {
    dst.counter(prefix + name).inc(counter.value());
  }
  for (const auto& [name, gauge] : src.gauges()) {
    dst.gauge(prefix + name).set_max(gauge.value());
  }
  for (const auto& [name, histogram] : src.histograms()) {
    dst.histogram(prefix + name).merge_from(histogram);
  }
}

std::string merged_series_json(
    const std::vector<const TimeSeriesSampler*>& samplers,
    const std::string& source, const SloMonitor* monitor) {
  // Union of series, sorted by name; first sampler wins on duplicates.
  std::map<std::string, const TimeSeries*> merged;
  double interval_s = 0.0;
  std::uint64_t samples = 0;
  for (const TimeSeriesSampler* sampler : samplers) {
    if (sampler == nullptr) continue;
    if (interval_s == 0.0) interval_s = sampler->interval().to_seconds();
    if (sampler->samples() > samples) samples = sampler->samples();
    for (const auto& [name, series] : sampler->series()) {
      merged.emplace(name, &series);
    }
  }

  JsonWriter w;
  w.begin_object();
  w.key("schema").value("dlte-series-v1");
  w.key("source").value(source);
  w.key("interval_s").value(interval_s);
  w.key("samples").value(samples);
  w.key("series").begin_object();
  for (const auto& [name, series] : merged) {
    w.key(name).begin_object();
    w.key("kind").value(series_kind_name(series->kind()));
    w.key("dropped").value(series->dropped());
    w.key("points").begin_array();
    for (const auto& point : series->points()) {
      w.begin_array();
      w.value(point.t_s);
      w.value(point.value);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  // Rules/alerts/health render exactly as SeriesExporter::to_json does
  // (byte-for-byte), empty when no monitor rides along.
  w.key("rules").begin_array();
  if (monitor != nullptr) {
    for (const auto& rule : monitor->rule_descriptions()) w.value(rule);
  }
  w.end_array();
  w.key("alerts").begin_array();
  if (monitor != nullptr) {
    for (const auto& event : monitor->events()) {
      w.begin_object();
      w.key("t_s").value(event.t_s);
      w.key("event").value(event.fire ? "fire" : "resolve");
      w.key("rule").value(event.rule);
      w.key("scope").value(event.scope);
      w.key("metric").value(event.metric);
      w.key("value").value(event.value);
      w.key("threshold").value(event.threshold);
      w.end_object();
    }
  }
  w.end_array();
  w.key("health").begin_object();
  if (monitor != nullptr) {
    for (const auto& scope : monitor->scopes()) {
      w.key(scope).value(monitor->health(scope));
    }
  }
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace dlte::obs
