#include "obs/audit_export.h"

#include <fstream>

#include "obs/json.h"

namespace dlte::obs {

namespace {

void digest_object(JsonWriter& w, const MultisetDigest& digest) {
  w.begin_object();
  w.key("count").value(digest.count);
  w.key("xor").value(digest.xor_fold);
  w.key("sum").value(digest.sum);
  w.end_object();
}

void merged_object(JsonWriter& w, const AuditDoc& doc) {
  // No shard count in here: this object's contract is byte-identity
  // across shard counts, so it may carry nothing partition-derived.
  w.begin_object();
  w.key("window_ns").value(doc.window_ns);
  w.key("events_total").value(doc.events_total);
  w.key("messages_total").value(doc.messages_total);
  w.key("windows");
  w.begin_array();
  for (const AuditDoc::MergedWindow& window : doc.merged) {
    w.begin_object();
    w.key("index").value(window.index);
    w.key("events").value(window.events);
    w.key("events_digest");
    digest_object(w, window.events_digest);
    w.key("messages").value(window.messages);
    w.key("messages_digest");
    digest_object(w, window.messages_digest);
    w.end_object();
  }
  w.end_array();
  w.key("metrics");
  w.begin_array();
  for (const AuditDoc::MetricWindow& window : doc.metric_windows) {
    w.begin_object();
    w.key("index").value(window.index);
    w.key("t_ns").value(window.t_ns);
    w.key("digest");
    digest_object(w, window.digest);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void shards_object(JsonWriter& w, const AuditDoc& doc) {
  w.begin_object();
  w.key("count").value(std::uint64_t{doc.shards});
  w.key("timelines");
  w.begin_array();
  for (const AuditDoc::ShardTimeline& shard : doc.shard_timelines) {
    w.begin_object();
    w.key("shard").value(std::uint64_t{shard.shard});
    w.key("windows");
    w.begin_array();
    for (const AuditDoc::ShardWindow& window : shard.windows) {
      w.begin_object();
      w.key("index").value(window.index);
      w.key("events").value(window.events);
      w.key("chain").value(window.chain);
      w.key("labels");
      w.begin_object();
      for (const AuditDoc::LabelDigest& label : window.labels) {
        w.key(label.name);
        digest_object(w, label.digest);
      }
      w.end_object();
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("ledger");
  w.begin_array();
  for (const AuditDoc::LedgerWindow& window : doc.ledger) {
    w.begin_object();
    w.key("index").value(window.index);
    w.key("pairs");
    w.begin_array();
    for (const MessageLedger::PairCell& cell : window.pairs) {
      w.begin_object();
      w.key("src").value(std::uint64_t{cell.src_shard});
      w.key("dst").value(std::uint64_t{cell.dst_shard});
      w.key("messages").value(cell.messages);
      w.key("chain").value(cell.chain);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

std::string AuditExporter::to_json(const AuditDoc& doc,
                                   const std::string& source) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("dlte-audit-v1");
  w.key("source").value(source);
  w.key("merged");
  merged_object(w, doc);
  w.key("shards");
  shards_object(w, doc);
  w.end_object();
  return w.str();
}

std::string AuditExporter::merged_json(const AuditDoc& doc) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("dlte-audit-v1");
  w.key("merged");
  merged_object(w, doc);
  w.end_object();
  return w.str();
}

bool AuditExporter::write_file(const AuditDoc& doc, const std::string& source,
                               const std::string& path) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out << to_json(doc, source) << "\n";
  return static_cast<bool>(out);
}

}  // namespace dlte::obs
