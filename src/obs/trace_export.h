// Chrome trace-event exporter for SpanTracer (DESIGN.md §9).
//
// Emits the JSON object form of the trace-event format — loadable in
// Perfetto (ui.perfetto.dev) and chrome://tracing. Every span becomes a
// `ph:"X"` complete event whose ts/dur are *simulated* microseconds;
// one synthetic tid per span category gives each component its own
// track, named via `ph:"M"` metadata events. Causality (span id and
// parent id) rides in `args`, alongside the span's annotations, because
// complete events have no native parent field.
//
// Determinism: events are emitted in span-id order (which is begin()
// order, monotone in ts), categories are sorted, and doubles go through
// JsonWriter::format_double — two same-seed runs export byte-identical
// files. Spans still open at export time are closed at tracer.latest()
// and flagged with `"open":"true"`.
#pragma once

#include <string>

#include "obs/span.h"

namespace dlte::obs {

class ChromeTraceExporter {
 public:
  // The full trace document: {"displayTimeUnit","otherData","traceEvents"}.
  [[nodiscard]] static std::string to_json(const SpanTracer& tracer);

  // Writes to_json() to `path`; returns false on I/O failure.
  static bool write_file(const SpanTracer& tracer, const std::string& path);
};

}  // namespace dlte::obs
