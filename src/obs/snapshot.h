// MetricsSnapshot: a frozen, sorted copy of a MetricsRegistry plus the
// deterministic JSON form the bench harness embeds in BENCH_*.json.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace dlte::obs {

struct HistogramSnapshot {
  std::uint64_t count{0};
  double sum{0.0};
  double min{0.0};
  double max{0.0};
  double mean{0.0};
  double p50{0.0};
  double p90{0.0};
  double p95{0.0};
  double p99{0.0};
};

class MetricsSnapshot {
 public:
  MetricsSnapshot() = default;
  explicit MetricsSnapshot(const MetricsRegistry& registry);

  // {"counters":{...},"gauges":{...},"histograms":{name:{count,...}}}
  // with keys in sorted order — byte-stable for identical registries.
  [[nodiscard]] std::string to_json() const;

  [[nodiscard]] const std::vector<std::pair<std::string, std::uint64_t>>&
  counters() const {
    return counters_;
  }
  [[nodiscard]] const std::vector<std::pair<std::string, double>>& gauges()
      const {
    return gauges_;
  }
  [[nodiscard]] const std::vector<std::pair<std::string, HistogramSnapshot>>&
  histograms() const {
    return histograms_;
  }

 private:
  std::vector<std::pair<std::string, std::uint64_t>> counters_;
  std::vector<std::pair<std::string, double>> gauges_;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms_;
};

}  // namespace dlte::obs
