#include "obs/openmetrics.h"

#include <fstream>

#include "obs/json.h"

namespace dlte::obs {

namespace {

void family(std::string& out, const std::string& name, const char* type) {
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

void line(std::string& out, const std::string& name, const std::string& labels,
          const std::string& value) {
  out += name;
  out += labels;
  out += ' ';
  out += value;
  out += '\n';
}

}  // namespace

std::string OpenMetricsExporter::sanitize(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "_");
  return out;
}

std::string OpenMetricsExporter::render(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters()) {
    const std::string n = sanitize(name);
    family(out, n, "counter");
    line(out, n + "_total", "", std::to_string(value));
  }
  for (const auto& [name, value] : snapshot.gauges()) {
    const std::string n = sanitize(name);
    family(out, n, "gauge");
    line(out, n, "", JsonWriter::format_double(value));
  }
  for (const auto& [name, h] : snapshot.histograms()) {
    const std::string n = sanitize(name);
    family(out, n, "summary");
    line(out, n, "{quantile=\"0.5\"}", JsonWriter::format_double(h.p50));
    line(out, n, "{quantile=\"0.9\"}", JsonWriter::format_double(h.p90));
    line(out, n, "{quantile=\"0.95\"}", JsonWriter::format_double(h.p95));
    line(out, n, "{quantile=\"0.99\"}", JsonWriter::format_double(h.p99));
    line(out, n + "_sum", "", JsonWriter::format_double(h.sum));
    line(out, n + "_count", "", std::to_string(h.count));
    family(out, n + "_min", "gauge");
    line(out, n + "_min", "", JsonWriter::format_double(h.min));
    family(out, n + "_max", "gauge");
    line(out, n + "_max", "", JsonWriter::format_double(h.max));
  }
  out += "# EOF\n";
  return out;
}

bool OpenMetricsExporter::write_file(const MetricsRegistry& registry,
                                     const std::string& path) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out << render(registry);
  return static_cast<bool>(out);
}

}  // namespace dlte::obs
