// Deterministic merge of per-shard observability state (DESIGN.md §11).
//
// The sharded runtime gives every shard its own domain MetricsRegistry
// and TimeSeriesSampler so workers never share a metrics pointer. At the
// end of a run the coordinator folds them into one registry / one series
// document that must be byte-identical to what a 1-shard run produces.
// The merge relies on a naming contract rather than cleverness:
//
//   - counters add exactly (uint64 addition is associative);
//   - gauges combine with set_max (the repo's shared-gauge idiom) — a
//     gauge whose 1-shard meaning is not "max observed" must be given a
//     shard-unique (e.g. per-AP) name;
//   - histograms merge bucket-wise via Histogram::merge_from. The double
//     `sum` makes cross-shard addition order-dependent, so a histogram
//     name must live in exactly ONE shard's registry (per-AP prefixes
//     guarantee this) for bit-exact output.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/series.h"
#include "obs/slo.h"

namespace dlte::obs {

// Fold every instrument of `src` into `dst` under `prefix + name`.
void merge_registry(MetricsRegistry& dst, const MetricsRegistry& src,
                    const std::string& prefix = "");

// One dlte-series-v1 document over the union of several samplers' series
// (sorted by name, first sampler wins on a duplicate name — scenarios
// keep shard series disjoint via per-AP prefixes, so in practice there
// are none). With a single sampler this is byte-identical to
// SeriesExporter::to_json(sampler, nullptr, source), which is what makes
// the 1-shard-vs-N-shard series comparison meaningful.
//
// `monitor` (optional) embeds an SloMonitor's rules/alerts/health
// sections exactly as SeriesExporter does — a scenario that pins its
// monitor to one shard's registry (so its alert timeline is partition-
// invariant) can then ship alerts inside the merged document and the
// health-report gate reads them like any single-sim series file.
[[nodiscard]] std::string merged_series_json(
    const std::vector<const TimeSeriesSampler*>& samplers,
    const std::string& source, const SloMonitor* monitor = nullptr);

}  // namespace dlte::obs
