// Exporter for the determinism audit plane (DESIGN.md §15).
//
// One AuditDoc, two renderings:
//
//   * to_json — the full `dlte-audit-v1` document: the partition-
//     invariant "merged" section (windowed event/message multiset
//     digests + metric-state digests) plus the per-configuration
//     "shards" section (order-sensitive window chains, per-label
//     digests, the shard-pair ledger). Byte-identical across double
//     runs of one configuration; the shards section differs across
//     shard counts by construction.
//
//   * merged_json — the merged section alone, as its own document.
//     This is what the in-process shard sweeps and the CI
//     par-determinism gate byte-compare across 1/2/4 shards, exactly
//     how prof_export's event_attribution_json carves out the
//     deterministic slice of the prof plane.
//
// All digest words render as decimal uint64 JSON numbers — JsonWriter
// prints integers exactly, and tools/audit_diff.py reads them back
// exactly.
#pragma once

#include <string>

#include "obs/audit.h"

namespace dlte::obs {

class AuditExporter {
 public:
  // The full dlte-audit-v1 document (merged + shards + ledger).
  [[nodiscard]] static std::string to_json(const AuditDoc& doc,
                                           const std::string& source);

  // The partition-invariant section alone — what cross-shard-count
  // comparisons byte-compare.
  [[nodiscard]] static std::string merged_json(const AuditDoc& doc);

  // false on I/O failure, like the other exporters.
  static bool write_file(const AuditDoc& doc, const std::string& source,
                         const std::string& path);
};

}  // namespace dlte::obs
