#include "epc/health.h"

namespace dlte::epc {

std::vector<obs::SloRule> default_core_slo_rules(const std::string& prefix,
                                                 const std::string& scope,
                                                 double max_attach_p95_ms,
                                                 double max_auth_failure_rate) {
  std::vector<obs::SloRule> rules;
  {
    obs::SloRule r;
    r.name = "attach_p95";
    r.scope = scope;
    r.metric = prefix + "epc.attach_latency_ms";
    r.predicate = obs::SloPredicate::kQuantileBelow;
    r.quantile = 0.95;
    r.threshold = max_attach_p95_ms;
    r.window = Duration::seconds(5.0);
    r.fire_after = 2;
    r.resolve_after = 2;
    rules.push_back(r);
  }
  {
    obs::SloRule r;
    r.name = "auth_failures";
    r.scope = scope;
    r.metric = prefix + "epc.auth_failures";
    r.predicate = obs::SloPredicate::kRateBelow;
    r.threshold = max_auth_failure_rate;
    r.window = Duration::seconds(5.0);
    r.fire_after = 2;
    r.resolve_after = 2;
    rules.push_back(r);
  }
  return rules;
}

}  // namespace dlte::epc
