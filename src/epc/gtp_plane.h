// GTP-U data plane: real encapsulation between eNodeB and gateway.
//
// In the centralized architecture every user datagram rides a GTP-U
// tunnel across the backhaul to the S/P-GW before touching the Internet;
// in dLTE the "tunnel" is a loopback inside the AP. These endpoints make
// that concrete on the packet substrate: uplink datagrams are wrapped
// (teid + 40 B of outer headers), carried to the gateway node,
// de-capsulated, accounted against the bearer, and forwarded; downlink
// traffic addressed to a UE address is matched to its bearer and
// tunnelled back to the serving eNodeB.
#pragma once

#include <functional>
#include <unordered_map>

#include "epc/gateway.h"
#include "lte/gtp.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace dlte::epc {

// Network protocol tags.
inline constexpr std::uint16_t kGtpUProtocol = 0x4755;   // "GU".
inline constexpr std::uint16_t kUserIpProtocol = 0x0800;

// The de/encapsulated user datagram: who it belongs to and where it is
// ultimately headed (payload bytes themselves are synthetic).
struct InnerDatagram {
  net::Ipv4 ue_ip{};
  NodeId remote;        // Internet endpoint.
  int size_bytes{0};
};

[[nodiscard]] std::vector<std::uint8_t> encode_inner(const InnerDatagram& d);
[[nodiscard]] Result<InnerDatagram> decode_inner(
    std::span<const std::uint8_t> bytes);

// Gateway-side endpoint (S/P-GW user plane).
class GatewayDataPlane {
 public:
  GatewayDataPlane(net::Network& net, NodeId gw_node, Gateway& gateway);

  // Downlink tunnelling needs to know which eNodeB node serves a bearer.
  void bind_enb(Teid enb_downlink_teid, NodeId enb_node);

  [[nodiscard]] std::uint64_t uplink_decapsulated() const {
    return up_count_;
  }
  [[nodiscard]] std::uint64_t downlink_encapsulated() const {
    return down_count_;
  }
  [[nodiscard]] std::uint64_t unknown_teid_drops() const {
    return unknown_teid_;
  }
  [[nodiscard]] std::uint64_t unknown_ue_drops() const { return unknown_ue_; }

  // Export tunnel packet/drop counters under `<prefix>epc.gtp.*`.
  void set_metrics(obs::MetricsRegistry* registry,
                   const std::string& prefix = "");

  // Causal tracing: closes the eNodeB's stashed "gtp_uplink" span at
  // decapsulation and opens a "gtp_downlink" span per tunnelled downlink
  // datagram (closed by the eNodeB endpoint). Category `<prefix>gtp`.
  void set_tracer(obs::SpanTracer* tracer, const std::string& prefix = "");

 private:
  void on_gtp(const net::Packet& packet);     // Uplink from eNodeBs.
  void on_user_ip(const net::Packet& packet); // Downlink from the Internet.

  net::Network& net_;
  NodeId node_;
  Gateway& gateway_;
  std::unordered_map<Teid, NodeId> enb_nodes_;
  // Downlink GTP-U sequence numbers (uplink seqs live in EnbDataPlane):
  // they key the per-packet span handoff, so "always 0" would alias.
  std::uint16_t next_seq_{0};
  obs::SpanTracer* tracer_{nullptr};
  std::string span_cat_{"gtp"};
  std::uint64_t up_count_{0};
  std::uint64_t down_count_{0};
  std::uint64_t unknown_teid_{0};
  std::uint64_t unknown_ue_{0};

  obs::Counter* m_up_{nullptr};
  obs::Counter* m_down_{nullptr};
  obs::Counter* m_unknown_teid_{nullptr};
  obs::Counter* m_unknown_ue_{nullptr};
};

// eNodeB-side endpoint.
class EnbDataPlane {
 public:
  using DownlinkHandler =
      std::function<void(const InnerDatagram&)>;  // Toward the UE radio.

  EnbDataPlane(net::Network& net, NodeId enb_node, NodeId gw_node);

  // Per-bearer uplink tunnel (the S-GW TEID from context setup).
  void configure_bearer(net::Ipv4 ue_ip, Teid sgw_uplink_teid);
  void set_downlink_handler(DownlinkHandler handler) {
    on_downlink_ = std::move(handler);
  }

  // A UE's uplink datagram: encapsulate toward the gateway.
  void send_uplink(net::Ipv4 ue_ip, NodeId remote, int size_bytes);

  [[nodiscard]] std::uint64_t uplink_sent() const { return up_count_; }
  [[nodiscard]] std::uint64_t downlink_received() const {
    return down_count_;
  }
  [[nodiscard]] std::uint64_t unconfigured_drops() const {
    return unconfigured_;
  }

  // Export eNodeB-side tunnel counters under `<prefix>epc.gtp.enb.*`.
  void set_metrics(obs::MetricsRegistry* registry,
                   const std::string& prefix = "");

  // Causal tracing: send_uplink opens a "gtp_uplink" span stashed under
  // span_key("gtpu", teid, seq) for the gateway endpoint to close; the
  // gateway's "gtp_downlink" spans are closed here. Category
  // `<prefix>gtp`. Both planes must share one tracer.
  void set_tracer(obs::SpanTracer* tracer, const std::string& prefix = "");

 private:
  void on_gtp(const net::Packet& packet);  // Downlink tunnel traffic.

  net::Network& net_;
  NodeId node_;
  NodeId gw_node_;
  std::unordered_map<std::uint32_t, Teid> uplink_teids_;  // By UE address.
  DownlinkHandler on_downlink_;
  std::uint16_t next_seq_{0};
  obs::SpanTracer* tracer_{nullptr};
  std::string span_cat_{"gtp"};
  std::uint64_t up_count_{0};
  std::uint64_t down_count_{0};
  std::uint64_t unconfigured_{0};

  obs::Counter* m_up_{nullptr};
  obs::Counter* m_down_{nullptr};
  obs::Counter* m_unconfigured_{nullptr};
};

}  // namespace dlte::epc
