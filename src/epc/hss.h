// HSS: the subscriber database and authentication-vector factory.
//
// Standard operation keeps (K, OPc) secret inside the operator's vault —
// the paper's §2.1 argument for why symmetric-key auth cements central
// cores. dLTE's alternative (§4.2) is the *published key*: a subscriber
// marks an identity open, its keys appear in the registry, and any AP's
// local core can then run the same Milenage AKA. Both flows use the same
// vector generation below.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>

#include "common/ids.h"
#include "common/result.h"
#include "crypto/key_derivation.h"
#include "crypto/milenage.h"
#include "sim/random.h"

namespace dlte::epc {

struct AuthVector {
  crypto::Rand128 rand{};
  crypto::Res64 xres{};
  std::array<std::uint8_t, 6> sqn_xor_ak{};
  crypto::Amf16 amf{};
  crypto::Mac64 mac_a{};
  crypto::Kasme kasme{};
};

// What gets published to the registry for an open identity: enough for
// any AP to authenticate the subscriber, nothing more.
struct PublishedKeys {
  Imsi imsi;
  crypto::Key128 k{};
  crypto::Block128 opc{};
};

class Hss {
 public:
  explicit Hss(sim::RngStream rng) : rng_(std::move(rng)) {}

  // Provision a subscriber; OPc is derived from the operator constant.
  void provision(Imsi imsi, const crypto::Key128& k,
                 const crypto::Block128& op);
  void provision_with_opc(Imsi imsi, const crypto::Key128& k,
                          const crypto::Block128& opc);

  [[nodiscard]] bool has_subscriber(Imsi imsi) const {
    return subscribers_.contains(imsi);
  }
  [[nodiscard]] std::size_t subscriber_count() const {
    return subscribers_.size();
  }

  // Generate one EPS authentication vector bound to `serving_network_id`.
  // Advances the subscriber's SQN.
  [[nodiscard]] Result<AuthVector> generate_auth_vector(
      Imsi imsi, const std::string& serving_network_id);

  // dLTE open-identity flow: mark a subscriber's keys as published, and
  // fetch them (registry-side accessor).
  void publish_keys(Imsi imsi) {
    if (auto it = subscribers_.find(imsi); it != subscribers_.end()) {
      it->second.published = true;
    }
  }
  [[nodiscard]] Result<PublishedKeys> published_keys(Imsi imsi) const;

 private:
  struct Subscriber {
    crypto::Key128 k{};
    crypto::Block128 opc{};
    std::uint64_t sqn{0};
    bool published{false};
  };

  std::unordered_map<Imsi, Subscriber> subscribers_;
  sim::RngStream rng_;
};

}  // namespace dlte::epc
