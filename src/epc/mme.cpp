#include "epc/mme.h"

#include <algorithm>

#include "crypto/key_derivation.h"

namespace dlte::epc {

Mme::Mme(sim::Simulator& sim, Hss& hss, Gateway& gateway, MmeConfig config)
    : sim_(sim), hss_(hss), gateway_(gateway), config_(config) {
  ev_label_ = sim_.label("epc.mme");
}

void Mme::set_metrics(obs::MetricsRegistry* registry,
                      const std::string& prefix) {
  if (registry == nullptr) {
    m_messages_ = nullptr;
    m_attaches_ = nullptr;
    m_auth_failures_ = nullptr;
    m_detaches_ = nullptr;
    m_path_switches_ = nullptr;
    m_handovers_in_ = nullptr;
    m_handovers_out_ = nullptr;
    m_paging_ = nullptr;
    m_service_requests_ = nullptr;
    m_nas_retx_ = nullptr;
    m_throttled_ = nullptr;
    m_state_losses_ = nullptr;
    m_attach_latency_ms_ = nullptr;
    m_queueing_delay_ms_ = nullptr;
    return;
  }
  m_messages_ = &registry->counter(prefix + "epc.messages_processed");
  m_attaches_ = &registry->counter(prefix + "epc.attaches_completed");
  m_auth_failures_ = &registry->counter(prefix + "epc.auth_failures");
  m_detaches_ = &registry->counter(prefix + "epc.detaches");
  m_path_switches_ = &registry->counter(prefix + "epc.path_switches");
  m_handovers_in_ = &registry->counter(prefix + "epc.handovers_in");
  m_handovers_out_ = &registry->counter(prefix + "epc.handovers_out");
  m_paging_ = &registry->counter(prefix + "epc.paging_messages");
  m_service_requests_ = &registry->counter(prefix + "epc.service_requests");
  m_nas_retx_ = &registry->counter(prefix + "epc.nas_retransmissions");
  m_throttled_ = &registry->counter(prefix + "epc.attaches_throttled");
  m_state_losses_ = &registry->counter(prefix + "epc.state_losses");
  m_attach_latency_ms_ =
      &registry->histogram(prefix + "epc.attach_latency_ms");
  m_queueing_delay_ms_ =
      &registry->histogram(prefix + "epc.queueing_delay_ms");
}

void Mme::set_tracer(obs::SpanTracer* tracer, const std::string& prefix) {
  tracer_ = tracer;
  span_cat_ = prefix + "epc";
}

obs::SpanId Mme::ran_span(CellId cell, EnbUeId enb_ue_id) const {
  if (tracer_ == nullptr) return obs::kNoSpan;
  return tracer_->stashed(
      obs::span_key("attach", cell.value(), enb_ue_id.value()));
}

void Mme::begin_phase(UeContext& ue, const char* name) {
  end_phase(ue);
  ue.phase_span = obs::span_begin(tracer_, name, span_cat_, ue.proc_span);
}

void Mme::end_phase(UeContext& ue) {
  obs::span_end(tracer_, ue.phase_span);
  ue.phase_span = obs::kNoSpan;
}

void Mme::handle_s1ap(CellId from_cell, lte::S1apMessage message) {
  // Single-server processing queue: messages wait for MME CPU.
  const TimePoint now = sim_.now();
  const TimePoint start = std::max(now, busy_until_);
  busy_until_ = start + config_.nas_processing;
  stats_.queueing_delay_ms.add((start - now).to_millis());
  obs::observe(m_queueing_delay_ms_, (start - now).to_millis());
  sim_.schedule_at(
      busy_until_,
      [this, from_cell, m = std::move(message)] {
        ++stats_.messages_processed;
        obs::inc(m_messages_);
        process(from_cell, m);
      },
      ev_label_);
}

void Mme::process(CellId from_cell, const lte::S1apMessage& message) {
  if (const auto* init = std::get_if<lte::InitialUeMessage>(&message)) {
    auto nas = lte::decode_nas(init->nas_pdu);
    if (!nas) return;
    if (const auto* attach = std::get_if<lte::AttachRequest>(&*nas)) {
      start_attach(init->cell, init->enb_ue_id, *attach);
      return;
    }
    if (const auto* service = std::get_if<lte::ServiceRequest>(&*nas)) {
      // Paging response: an idle UE re-established RRC and asks back in.
      for (auto& [imsi, ue] : ues_) {
        if (ue.tmsi == service->tmsi &&
            ue.state == EmmState::kRegistered && ue.ecm_idle) {
          ue.ecm_idle = false;
          ue.cell = init->cell;
          ue.enb_ue_id = init->enb_ue_id;
          ++stats_.service_requests;
          obs::inc(m_service_requests_);
          if (ue.on_paged) {
            auto cb = std::move(ue.on_paged);
            ue.on_paged = nullptr;
            cb();
          }
          return;
        }
      }
    }
    return;
  }
  if (const auto* up = std::get_if<lte::UplinkNasTransport>(&message)) {
    UeContext* ue = find_by_mme_id(up->mme_ue_id);
    if (ue == nullptr) return;
    auto nas = lte::decode_nas(up->nas_pdu);
    if (!nas) return;
    handle_nas(*ue, *nas);
    return;
  }
  if (const auto* resp =
          std::get_if<lte::InitialContextSetupResponse>(&message)) {
    UeContext* ue = find_by_mme_id(resp->mme_ue_id);
    if (ue == nullptr) return;
    obs::ScopedActivation act{tracer_, ue->proc_span};
    gateway_.complete_session(ue->imsi, resp->enb_downlink_teid);
    ue->context_setup_done = true;
    obs::span_annotate(
        tracer_, ue->phase_span, "context_setup",
        "enb_downlink_teid=" + std::to_string(resp->enb_downlink_teid.value()));
    maybe_finish_attach(*ue);
    return;
  }
  (void)from_cell;
}

void Mme::start_attach(CellId cell, EnbUeId enb_ue_id,
                       const lte::AttachRequest& request) {
  if (config_.max_concurrent_attaches > 0 &&
      attaches_in_progress() >=
          static_cast<std::size_t>(config_.max_concurrent_attaches) &&
      !ues_.contains(request.imsi)) {
    // Admission throttle: a re-attach storm (every UE of a dead neighbour
    // arriving at once) is spread out rather than allowed to stall every
    // dialogue at once. Known UEs mid-dialogue are exempt — rejecting a
    // retransmitted AttachRequest would deadlock the very UE being served.
    UeContext ghost;
    ghost.enb_ue_id = enb_ue_id;
    ghost.mme_ue_id = MmeUeId{next_mme_id_++};
    ghost.cell = cell;
    obs::span_annotate(tracer_, ran_span(cell, enb_ue_id), "reject",
                       "congestion (attach storm throttle)");
    send_nas(ghost, lte::NasMessage{lte::AttachReject{/*cause=*/0x16}});
    ++stats_.attaches_throttled;
    obs::inc(m_throttled_);
    return;
  }
  auto vector =
      hss_.generate_auth_vector(request.imsi, config_.serving_network_id);
  if (!vector) {
    // Unknown subscriber: reject outright.
    UeContext ghost;
    ghost.enb_ue_id = enb_ue_id;
    ghost.mme_ue_id = MmeUeId{next_mme_id_++};
    ghost.cell = cell;
    obs::span_annotate(tracer_, ran_span(cell, enb_ue_id), "reject",
                       "unknown subscriber");
    send_nas(ghost, lte::NasMessage{lte::AttachReject{/*cause=*/0x0f}});
    ++stats_.auth_failures;
    obs::inc(m_auth_failures_);
    return;
  }

  UeContext& ue = ues_[request.imsi];
  // Latency is measured from the first AttachRequest of the dialogue: a
  // retransmitted request must not restart the clock (nor re-open spans).
  if (ue.state == EmmState::kDeregistered) {
    ue.attach_started = sim_.now();
    ue.proc_span = ran_span(cell, enb_ue_id);
    obs::span_annotate(tracer_, ue.proc_span, "imsi",
                       std::to_string(request.imsi.value()));
    begin_phase(ue, "aka");
  } else {
    obs::span_annotate(tracer_, ue.proc_span, "nas_retx",
                       "AttachRequest retransmitted");
  }
  ue.imsi = request.imsi;
  ue.enb_ue_id = enb_ue_id;
  if (ue.mme_ue_id.value() == 0) {
    ue.mme_ue_id = MmeUeId{next_mme_id_++};
    by_mme_id_[ue.mme_ue_id.value()] = ue.imsi;
  }
  ue.cell = cell;
  ue.state = EmmState::kAuthPending;
  ue.xres = vector->xres;
  ue.kasme = vector->kasme;
  ue.context_setup_done = false;
  ue.attach_complete_seen = false;

  lte::AuthenticationRequest auth;
  auth.rand = vector->rand;
  auth.autn.sqn_xor_ak = vector->sqn_xor_ak;
  auth.autn.amf = vector->amf;
  auth.autn.mac_a = vector->mac_a;
  send_nas(ue, lte::NasMessage{auth});
}

void Mme::handle_nas(UeContext& ue, const lte::NasMessage& nas) {
  // Legacy TraceLog lines and fault events recorded while this dialogue
  // is being processed annotate its RAN attach span.
  obs::ScopedActivation act{tracer_, ue.proc_span};
  switch (ue.state) {
    case EmmState::kAuthPending: {
      const auto* resp = std::get_if<lte::AuthenticationResponse>(&nas);
      if (resp == nullptr) return;
      if (resp->res != ue.xres) {
        ++stats_.auth_failures;
        obs::inc(m_auth_failures_);
        obs::span_annotate(tracer_, ue.phase_span, "result",
                           "xres mismatch — authentication rejected");
        end_phase(ue);
        ue.state = EmmState::kDeregistered;
        send_nas(ue, lte::NasMessage{lte::AuthenticationReject{}});
        return;
      }
      end_phase(ue);
      ue.state = EmmState::kSecurityPending;
      begin_phase(ue, "security_mode");
      send_nas(ue, lte::NasMessage{lte::SecurityModeCommand{}});
      return;
    }
    case EmmState::kSecurityPending: {
      if (!std::holds_alternative<lte::SecurityModeComplete>(nas)) return;
      // Session setup: allocate bearer + UE address, push the radio-side
      // context, and accept the attach.
      end_phase(ue);
      BearerContext& bearer = gateway_.create_session(ue.imsi, BearerId{5});
      ue.tmsi = Tmsi{next_tmsi_++};
      ue.state = EmmState::kAttachAccepted;
      begin_phase(ue, "bearer_setup");
      obs::span_annotate(tracer_, ue.phase_span, "uplink_teid",
                         std::to_string(bearer.uplink_teid.value()));
      obs::span_annotate(tracer_, ue.phase_span, "ue_ip",
                         bearer.ue_ip.to_string());

      const auto kenb = crypto::derive_kenb(ue.kasme, 0);
      lte::InitialContextSetupRequest ctx;
      ctx.enb_ue_id = ue.enb_ue_id;
      ctx.mme_ue_id = ue.mme_ue_id;
      ctx.sgw_uplink_teid = bearer.uplink_teid;
      ctx.security_key.assign(kenb.begin(), kenb.end());
      sender_(ue.cell, lte::S1apMessage{ctx});

      lte::AttachAccept accept;
      accept.tmsi = ue.tmsi;
      accept.ue_ip = bearer.ue_ip.addr;
      accept.default_bearer = bearer.bearer;
      send_nas(ue, lte::NasMessage{accept});
      return;
    }
    case EmmState::kAttachAccepted: {
      if (std::holds_alternative<lte::AttachComplete>(nas)) {
        ue.attach_complete_seen = true;
        maybe_finish_attach(ue);
      }
      return;
    }
    case EmmState::kRegistered: {
      if (std::holds_alternative<lte::DetachRequest>(nas)) {
        gateway_.delete_session(ue.imsi);
        by_mme_id_.erase(ue.mme_ue_id.value());
        ++stats_.detaches;
        obs::inc(m_detaches_);
        ues_.erase(ue.imsi);  // `ue` invalid beyond this point.
      }
      return;
    }
    case EmmState::kDeregistered:
      return;
  }
}

void Mme::maybe_finish_attach(UeContext& ue) {
  if (ue.state == EmmState::kAttachAccepted && ue.context_setup_done &&
      ue.attach_complete_seen) {
    ue.state = EmmState::kRegistered;
    ++stats_.attaches_completed;
    obs::inc(m_attaches_);
    obs::observe(m_attach_latency_ms_,
                 (sim_.now() - ue.attach_started).to_millis());
    end_phase(ue);
    obs::span_annotate(tracer_, ue.proc_span, "core", "registered");
  }
}

void Mme::send_nas(UeContext& ue, const lte::NasMessage& nas) {
  obs::span_annotate(tracer_, ue.proc_span, "nas_tx", lte::nas_brief(nas));
  lte::DownlinkNasTransport transport;
  transport.enb_ue_id = ue.enb_ue_id;
  transport.mme_ue_id = ue.mme_ue_id;
  transport.nas_pdu = lte::encode_nas(nas);
  // Record for retransmission until the dialogue advances.
  ue.retx_pdu = transport.nas_pdu;
  ue.retx_state = ue.state;
  ue.retx_left = config_.nas_max_retx;
  arm_nas_retx(ue);
  sender_(ue.cell, lte::S1apMessage{transport});
}

void Mme::arm_nas_retx(UeContext& ue) {
  if (config_.nas_max_retx <= 0) return;
  const std::uint64_t epoch = ++ue.retx_epoch;
  const Imsi imsi = ue.imsi;
  sim_.schedule(
      config_.nas_retx_timeout,
      [this, imsi, epoch] {
    const auto it = ues_.find(imsi);
    if (it == ues_.end()) return;  // Detached/released meanwhile.
    UeContext& u = it->second;
    if (u.retx_epoch != epoch) return;       // Newer message superseded.
    if (u.state != u.retx_state) return;     // Dialogue advanced.
    if (u.state == EmmState::kRegistered || u.retx_left <= 0) return;
    --u.retx_left;
    ++stats_.nas_retransmissions;
    obs::inc(m_nas_retx_);
    obs::span_annotate(tracer_, u.proc_span, "nas_retx",
                       "downlink NAS re-sent (" +
                           std::to_string(u.retx_left) + " left)");
    // If the radio-side context setup is also outstanding, the original
    // InitialContextSetupRequest may have been the lost message: re-issue
    // it alongside the NAS retransmission.
    if (u.state == EmmState::kAttachAccepted && !u.context_setup_done) {
      if (const auto* bearer = gateway_.find_by_imsi(imsi)) {
        const auto kenb = crypto::derive_kenb(u.kasme, 0);
        lte::InitialContextSetupRequest ctx;
        ctx.enb_ue_id = u.enb_ue_id;
        ctx.mme_ue_id = u.mme_ue_id;
        ctx.sgw_uplink_teid = bearer->uplink_teid;
        ctx.security_key.assign(kenb.begin(), kenb.end());
        sender_(u.cell, lte::S1apMessage{ctx});
      }
    }
    lte::DownlinkNasTransport transport;
    transport.enb_ue_id = u.enb_ue_id;
    transport.mme_ue_id = u.mme_ue_id;
    transport.nas_pdu = u.retx_pdu;
    arm_nas_retx(u);
    sender_(u.cell, lte::S1apMessage{transport});
      },
      ev_label_);
}

void Mme::path_switch(Imsi imsi, CellId new_cell, Teid new_enb_teid) {
  const TimePoint now = sim_.now();
  const TimePoint start = std::max(now, busy_until_);
  busy_until_ = start + config_.nas_processing;
  stats_.queueing_delay_ms.add((start - now).to_millis());
  obs::observe(m_queueing_delay_ms_, (start - now).to_millis());
  sim_.schedule_at(
      busy_until_,
      [this, imsi, new_cell, new_enb_teid] {
        ++stats_.messages_processed;
        obs::inc(m_messages_);
        auto it = ues_.find(imsi);
        if (it == ues_.end()) return;
        it->second.cell = new_cell;
        gateway_.complete_session(imsi, new_enb_teid);
        ++stats_.path_switches;
        obs::inc(m_path_switches_);
      },
      ev_label_);
}

void Mme::release_to_idle(Imsi imsi) {
  const auto it = ues_.find(imsi);
  if (it == ues_.end() || it->second.state != EmmState::kRegistered) return;
  it->second.ecm_idle = true;
}

bool Mme::is_idle(Imsi imsi) const {
  const auto it = ues_.find(imsi);
  return it != ues_.end() && it->second.ecm_idle;
}

void Mme::page(Imsi imsi, std::function<void()> on_connected) {
  const auto it = ues_.find(imsi);
  if (it == ues_.end() || !it->second.ecm_idle) {
    if (on_connected) on_connected();  // Already connected: no page needed.
    return;
  }
  UeContext& ue = it->second;
  ue.on_paged = std::move(on_connected);
  // Page the last-known cell and the configured tracking area: the stub's
  // TA is its single cell; the centralized core fans out.
  const lte::Paging message{ue.tmsi};
  sender_(ue.cell, lte::S1apMessage{message});
  ++stats_.paging_messages;
  obs::inc(m_paging_);
  for (CellId cell : config_.tracking_area) {
    if (cell == ue.cell) continue;
    sender_(cell, lte::S1apMessage{message});
    ++stats_.paging_messages;
    obs::inc(m_paging_);
  }
}

Result<BearerContext> Mme::admit_handover(
    Imsi imsi, CellId cell, std::span<const std::uint8_t> security_context) {
  if (security_context.empty()) {
    return fail("handover requires a forwarded security context");
  }
  UeContext& ue = ues_[imsi];
  ue.imsi = imsi;
  if (ue.mme_ue_id.value() == 0) {
    ue.mme_ue_id = MmeUeId{next_mme_id_++};
    by_mme_id_[ue.mme_ue_id.value()] = imsi;
  }
  ue.cell = cell;
  ue.tmsi = Tmsi{next_tmsi_++};
  ue.state = EmmState::kRegistered;
  ue.context_setup_done = true;
  ue.attach_complete_seen = true;
  ++stats_.handovers_in;
  obs::inc(m_handovers_in_);
  return gateway_.create_session(imsi, BearerId{5});
}

void Mme::release_ue(Imsi imsi) {
  const auto it = ues_.find(imsi);
  if (it == ues_.end()) return;
  gateway_.delete_session(imsi);
  by_mme_id_.erase(it->second.mme_ue_id.value());
  ues_.erase(it);
  ++stats_.handovers_out;
  obs::inc(m_handovers_out_);
}

Mme::UeContext* Mme::find_by_mme_id(MmeUeId id) {
  const auto it = by_mme_id_.find(id.value());
  if (it == by_mme_id_.end()) return nullptr;
  const auto ue_it = ues_.find(it->second);
  return ue_it == ues_.end() ? nullptr : &ue_it->second;
}

void Mme::lose_volatile_state() {
  for (auto& [imsi, ue] : ues_) {
    if (ue.phase_span != obs::kNoSpan) {
      obs::span_annotate(tracer_, ue.phase_span, "fault",
                         "mme volatile state lost mid-dialogue");
      end_phase(ue);
    }
    obs::span_annotate(tracer_, ue.proc_span, "fault",
                       "mme volatile state lost");
  }
  ues_.clear();
  by_mme_id_.clear();
  busy_until_ = sim_.now();
  ++stats_.state_losses;
  obs::inc(m_state_losses_);
}

std::size_t Mme::attaches_in_progress() const {
  std::size_t n = 0;
  for (const auto& [imsi, ue] : ues_) {
    if (ue.state == EmmState::kAuthPending ||
        ue.state == EmmState::kSecurityPending ||
        ue.state == EmmState::kAttachAccepted) {
      ++n;
    }
  }
  return n;
}

bool Mme::is_registered(Imsi imsi) const {
  const auto it = ues_.find(imsi);
  return it != ues_.end() && it->second.state == EmmState::kRegistered;
}

std::size_t Mme::registered_count() const {
  std::size_t n = 0;
  for (const auto& [imsi, ue] : ues_) {
    if (ue.state == EmmState::kRegistered) ++n;
  }
  return n;
}

}  // namespace dlte::epc
