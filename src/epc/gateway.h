// S-GW / P-GW: bearer tunnel endpoints and UE address allocation.
//
// In the centralized deployment these anchor every user packet at the
// core site (Fig. 1 left); in the dLTE local core stub they collapse into
// the AP and do nothing but hand out an address and strip/add the GTP
// header locally (§4.1: the AP "terminates all LTE tunnels … and outputs
// the client's unencapsulated IP traffic").
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/ids.h"
#include "common/result.h"
#include "net/network.h"
#include "obs/metrics.h"

namespace dlte::epc {

struct BearerContext {
  Imsi imsi;
  BearerId bearer{5};
  Teid uplink_teid;     // Core-side tunnel endpoint (eNB → gateway).
  Teid downlink_teid;   // eNB-side tunnel endpoint (gateway → eNB).
  net::Ipv4 ue_ip{};
};

class Gateway {
 public:
  // `ip_pool_base` e.g. 10.45.0.0; addresses are handed out sequentially.
  explicit Gateway(std::uint32_t ip_pool_base)
      : ip_pool_base_(ip_pool_base) {}

  // Create a session: allocates the UE address and the core-side TEID.
  // The eNodeB-side TEID arrives later via complete_session().
  [[nodiscard]] BearerContext& create_session(Imsi imsi, BearerId bearer);
  void complete_session(Imsi imsi, Teid enb_downlink_teid);
  void delete_session(Imsi imsi);
  // Crash semantics (src/fault): every bearer is volatile tunnel state and
  // dies with the process. Address/TEID counters keep advancing, so UEs
  // re-attaching after the restart get fresh addresses (dLTE §4.2 treats
  // an address change as normal).
  void clear_sessions() {
    obs::inc(m_bearers_released_, by_imsi_.size());
    by_imsi_.clear();
  }

  [[nodiscard]] const BearerContext* find_by_imsi(Imsi imsi) const;
  [[nodiscard]] const BearerContext* find_by_uplink_teid(Teid teid) const;
  [[nodiscard]] const BearerContext* find_by_ue_ip(net::Ipv4 ip) const;

  [[nodiscard]] std::size_t session_count() const { return by_imsi_.size(); }

  // Data-plane accounting (experiments read these).
  void count_uplink(int bytes) {
    uplink_packets_ += 1;
    uplink_bytes_ += static_cast<std::uint64_t>(bytes);
    obs::inc(m_uplink_bytes_, static_cast<std::uint64_t>(bytes));
  }
  void count_downlink(int bytes) {
    downlink_packets_ += 1;
    downlink_bytes_ += static_cast<std::uint64_t>(bytes);
    obs::inc(m_downlink_bytes_, static_cast<std::uint64_t>(bytes));
  }

  // Export bearer lifecycle and user-plane byte counters under
  // `<prefix>epc.gw.*`.
  void set_metrics(obs::MetricsRegistry* registry,
                   const std::string& prefix = "");
  [[nodiscard]] std::uint64_t uplink_packets() const { return uplink_packets_; }
  [[nodiscard]] std::uint64_t downlink_packets() const {
    return downlink_packets_;
  }
  [[nodiscard]] std::uint64_t uplink_bytes() const { return uplink_bytes_; }
  [[nodiscard]] std::uint64_t downlink_bytes() const {
    return downlink_bytes_;
  }

 private:
  std::uint32_t ip_pool_base_;
  std::uint32_t next_host_{1};
  std::uint32_t next_teid_{1};
  std::unordered_map<Imsi, BearerContext> by_imsi_;
  std::uint64_t uplink_packets_{0};
  std::uint64_t downlink_packets_{0};
  std::uint64_t uplink_bytes_{0};
  std::uint64_t downlink_bytes_{0};

  obs::Counter* m_bearers_created_{nullptr};
  obs::Counter* m_bearers_completed_{nullptr};
  obs::Counter* m_bearers_released_{nullptr};
  obs::Counter* m_uplink_bytes_{nullptr};
  obs::Counter* m_downlink_bytes_{nullptr};
};

}  // namespace dlte::epc
