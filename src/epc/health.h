// Default SLO rule set for a local core (DESIGN.md §10).
//
// Watches the metrics Mme::set_metrics already exports — attach latency
// and authentication failures — so attaching a monitor costs the core
// nothing beyond what §8 instrumentation already pays.
#pragma once

#include <string>
#include <vector>

#include "obs/slo.h"

namespace dlte::epc {

// Rules over `<prefix>epc.*` metrics, grouped under health scope
// `scope` (per-AP cores pass e.g. scope "ap1"):
//   * attach_p95 — windowed p95 of epc.attach_latency_ms stays under
//     `max_attach_p95_ms` over 5 s (vacuously healthy with no attach
//     traffic in the window).
//   * auth_failures — rate of epc.auth_failures stays under
//     `max_auth_failure_rate`/s over 5 s.
std::vector<obs::SloRule> default_core_slo_rules(
    const std::string& prefix = "", const std::string& scope = "core",
    double max_attach_p95_ms = 250.0, double max_auth_failure_rate = 0.5);

}  // namespace dlte::epc
