#include "epc/gateway.h"

namespace dlte::epc {

void Gateway::set_metrics(obs::MetricsRegistry* registry,
                          const std::string& prefix) {
  if (registry == nullptr) {
    m_bearers_created_ = nullptr;
    m_bearers_completed_ = nullptr;
    m_bearers_released_ = nullptr;
    m_uplink_bytes_ = nullptr;
    m_downlink_bytes_ = nullptr;
    return;
  }
  m_bearers_created_ = &registry->counter(prefix + "epc.gw.bearers_created");
  m_bearers_completed_ =
      &registry->counter(prefix + "epc.gw.bearers_completed");
  m_bearers_released_ =
      &registry->counter(prefix + "epc.gw.bearers_released");
  m_uplink_bytes_ = &registry->counter(prefix + "epc.gw.uplink_bytes");
  m_downlink_bytes_ = &registry->counter(prefix + "epc.gw.downlink_bytes");
}

BearerContext& Gateway::create_session(Imsi imsi, BearerId bearer) {
  BearerContext ctx;
  ctx.imsi = imsi;
  ctx.bearer = bearer;
  ctx.uplink_teid = Teid{next_teid_++};
  ctx.ue_ip = net::Ipv4{ip_pool_base_ + next_host_++};
  obs::inc(m_bearers_created_);
  return by_imsi_.insert_or_assign(imsi, ctx).first->second;
}

void Gateway::complete_session(Imsi imsi, Teid enb_downlink_teid) {
  if (auto it = by_imsi_.find(imsi); it != by_imsi_.end()) {
    it->second.downlink_teid = enb_downlink_teid;
    obs::inc(m_bearers_completed_);
  }
}

void Gateway::delete_session(Imsi imsi) {
  if (by_imsi_.erase(imsi) > 0) obs::inc(m_bearers_released_);
}

const BearerContext* Gateway::find_by_imsi(Imsi imsi) const {
  const auto it = by_imsi_.find(imsi);
  return it == by_imsi_.end() ? nullptr : &it->second;
}

const BearerContext* Gateway::find_by_uplink_teid(Teid teid) const {
  for (const auto& [imsi, ctx] : by_imsi_) {
    if (ctx.uplink_teid == teid) return &ctx;
  }
  return nullptr;
}

const BearerContext* Gateway::find_by_ue_ip(net::Ipv4 ip) const {
  for (const auto& [imsi, ctx] : by_imsi_) {
    if (ctx.ue_ip == ip) return &ctx;
  }
  return nullptr;
}

}  // namespace dlte::epc
