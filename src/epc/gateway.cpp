#include "epc/gateway.h"

namespace dlte::epc {

BearerContext& Gateway::create_session(Imsi imsi, BearerId bearer) {
  BearerContext ctx;
  ctx.imsi = imsi;
  ctx.bearer = bearer;
  ctx.uplink_teid = Teid{next_teid_++};
  ctx.ue_ip = net::Ipv4{ip_pool_base_ + next_host_++};
  return by_imsi_.insert_or_assign(imsi, ctx).first->second;
}

void Gateway::complete_session(Imsi imsi, Teid enb_downlink_teid) {
  if (auto it = by_imsi_.find(imsi); it != by_imsi_.end()) {
    it->second.downlink_teid = enb_downlink_teid;
  }
}

void Gateway::delete_session(Imsi imsi) { by_imsi_.erase(imsi); }

const BearerContext* Gateway::find_by_imsi(Imsi imsi) const {
  const auto it = by_imsi_.find(imsi);
  return it == by_imsi_.end() ? nullptr : &it->second;
}

const BearerContext* Gateway::find_by_uplink_teid(Teid teid) const {
  for (const auto& [imsi, ctx] : by_imsi_) {
    if (ctx.uplink_teid == teid) return &ctx;
  }
  return nullptr;
}

const BearerContext* Gateway::find_by_ue_ip(net::Ipv4 ip) const {
  for (const auto& [imsi, ctx] : by_imsi_) {
    if (ctx.ue_ip == ip) return &ctx;
  }
  return nullptr;
}

}  // namespace dlte::epc
