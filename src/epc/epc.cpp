#include "epc/epc.h"

namespace dlte::epc {

EpcCore::EpcCore(sim::Simulator& sim, EpcConfig config, sim::RngStream rng)
    : config_(std::move(config)),
      hss_(std::move(rng)),
      gateway_(config_.ip_pool_base),
      mme_(sim, hss_, gateway_,
           [this] {
             MmeConfig c = config_.mme;
             c.serving_network_id = config_.network_id;
             return c;
           }()) {}

void EpcCore::record_usage(Imsi imsi, std::uint64_t bytes) {
  if (!bills_subscribers()) return;
  cdrs_[imsi] += bytes;
}

std::uint64_t EpcCore::usage_bytes(Imsi imsi) const {
  const auto it = cdrs_.find(imsi);
  return it == cdrs_.end() ? 0 : it->second;
}

}  // namespace dlte::epc
