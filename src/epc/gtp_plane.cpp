#include "epc/gtp_plane.h"

#include "common/bytes.h"

namespace dlte::epc {

std::vector<std::uint8_t> encode_inner(const InnerDatagram& d) {
  ByteWriter w;
  w.u32(d.ue_ip.addr);
  w.u32(d.remote.value());
  w.u32(static_cast<std::uint32_t>(d.size_bytes));
  return w.take();
}

Result<InnerDatagram> decode_inner(std::span<const std::uint8_t> bytes) {
  ByteReader r{bytes};
  InnerDatagram d;
  auto ip = r.u32();
  if (!ip) return Err{ip.error()};
  d.ue_ip = net::Ipv4{*ip};
  auto remote = r.u32();
  if (!remote) return Err{remote.error()};
  d.remote = NodeId{*remote};
  auto size = r.u32();
  if (!size) return Err{size.error()};
  d.size_bytes = static_cast<int>(*size);
  return d;
}

namespace {
// GTP-U frame: the real 12-byte header followed by the inner descriptor.
std::vector<std::uint8_t> frame_gtp(Teid teid, std::uint16_t seq,
                                    const InnerDatagram& inner) {
  auto bytes = lte::encode_gtpu(lte::GtpUHeader{
      teid, static_cast<std::uint16_t>(inner.size_bytes), seq});
  const auto inner_bytes = encode_inner(inner);
  bytes.insert(bytes.end(), inner_bytes.begin(), inner_bytes.end());
  return bytes;
}

struct DeframedGtp {
  lte::GtpUHeader header;
  InnerDatagram inner;
};

Result<DeframedGtp> deframe_gtp(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < static_cast<std::size_t>(lte::kGtpUHeaderBytes)) {
    return fail("short GTP-U frame");
  }
  auto header = lte::decode_gtpu(bytes.first(
      static_cast<std::size_t>(lte::kGtpUHeaderBytes)));
  if (!header) return Err{header.error()};
  auto inner = decode_inner(bytes.subspan(
      static_cast<std::size_t>(lte::kGtpUHeaderBytes)));
  if (!inner) return Err{inner.error()};
  return DeframedGtp{*header, *inner};
}
}  // namespace

// ------------------------------------------------------------ Gateway --

GatewayDataPlane::GatewayDataPlane(net::Network& net, NodeId gw_node,
                                   Gateway& gateway)
    : net_(net), node_(gw_node), gateway_(gateway) {
  net_.set_protocol_handler(node_, kGtpUProtocol,
                            [this](net::Packet&& p) { on_gtp(p); });
  net_.set_protocol_handler(node_, kUserIpProtocol,
                            [this](net::Packet&& p) { on_user_ip(p); });
}

void GatewayDataPlane::bind_enb(Teid enb_downlink_teid, NodeId enb_node) {
  enb_nodes_[enb_downlink_teid] = enb_node;
}

void GatewayDataPlane::set_metrics(obs::MetricsRegistry* registry,
                                   const std::string& prefix) {
  if (registry == nullptr) {
    m_up_ = nullptr;
    m_down_ = nullptr;
    m_unknown_teid_ = nullptr;
    m_unknown_ue_ = nullptr;
    return;
  }
  m_up_ = &registry->counter(prefix + "epc.gtp.uplink_decapsulated");
  m_down_ = &registry->counter(prefix + "epc.gtp.downlink_encapsulated");
  m_unknown_teid_ =
      &registry->counter(prefix + "epc.gtp.unknown_teid_drops");
  m_unknown_ue_ = &registry->counter(prefix + "epc.gtp.unknown_ue_drops");
}

void GatewayDataPlane::set_tracer(obs::SpanTracer* tracer,
                                  const std::string& prefix) {
  tracer_ = tracer;
  span_cat_ = prefix + "gtp";
}

void GatewayDataPlane::on_gtp(const net::Packet& packet) {
  auto frame = deframe_gtp(packet.payload);
  if (!frame) return;
  // The eNodeB endpoint stashed the packet's "gtp_uplink" span under its
  // (teid, seq) — decapsulation here is where the tunnel leg ends.
  const obs::SpanId span =
      tracer_ != nullptr
          ? tracer_->take(obs::span_key("gtpu", frame->header.teid.value(),
                                        frame->header.sequence))
          : obs::kNoSpan;
  const auto* bearer = gateway_.find_by_uplink_teid(frame->header.teid);
  if (bearer == nullptr) {
    ++unknown_teid_;
    obs::inc(m_unknown_teid_);
    obs::span_annotate(tracer_, span, "drop", "unknown uplink teid");
    obs::span_end(tracer_, span);
    return;
  }
  gateway_.count_uplink(frame->inner.size_bytes);
  ++up_count_;
  obs::inc(m_up_);
  obs::span_annotate(tracer_, span, "decapsulated",
                     lte::gtpu_brief(frame->header));
  {
    // The decapsulated datagram's delivery is causally part of the
    // uplink: the span closes once it is on its way to the Internet.
    obs::ScopedActivation act{tracer_, span};
    net_.send(net::Packet{node_, frame->inner.remote,
                          frame->inner.size_bytes, kUserIpProtocol,
                          encode_inner(frame->inner)});
  }
  obs::span_end(tracer_, span);
}

void GatewayDataPlane::on_user_ip(const net::Packet& packet) {
  auto inner = decode_inner(packet.payload);
  if (!inner) return;
  const auto* bearer = gateway_.find_by_ue_ip(inner->ue_ip);
  if (bearer == nullptr) {
    ++unknown_ue_;
    obs::inc(m_unknown_ue_);
    return;
  }
  const auto node_it = enb_nodes_.find(bearer->downlink_teid);
  if (node_it == enb_nodes_.end()) {
    ++unknown_ue_;
    obs::inc(m_unknown_ue_);
    return;
  }
  gateway_.count_downlink(inner->size_bytes);
  ++down_count_;
  obs::inc(m_down_);
  const std::uint16_t seq = next_seq_++;
  const obs::SpanId span =
      obs::span_begin(tracer_, "gtp_downlink", span_cat_);
  obs::span_annotate(
      tracer_, span, "tunnel",
      lte::gtpu_brief(lte::GtpUHeader{
          bearer->downlink_teid,
          static_cast<std::uint16_t>(inner->size_bytes), seq}));
  if (tracer_ != nullptr && span != obs::kNoSpan) {
    tracer_->stash(
        obs::span_key("gtpd", bearer->downlink_teid.value(), seq), span);
  }
  obs::ScopedActivation act{tracer_, span};
  net_.send(net::Packet{
      node_, node_it->second,
      inner->size_bytes + lte::kGtpTunnelOverheadBytes, kGtpUProtocol,
      frame_gtp(bearer->downlink_teid, seq, *inner)});
}

// ---------------------------------------------------------------- eNB --

EnbDataPlane::EnbDataPlane(net::Network& net, NodeId enb_node,
                           NodeId gw_node)
    : net_(net), node_(enb_node), gw_node_(gw_node) {
  net_.set_protocol_handler(node_, kGtpUProtocol,
                            [this](net::Packet&& p) { on_gtp(p); });
}

void EnbDataPlane::configure_bearer(net::Ipv4 ue_ip, Teid sgw_uplink_teid) {
  uplink_teids_[ue_ip.addr] = sgw_uplink_teid;
}

void EnbDataPlane::set_metrics(obs::MetricsRegistry* registry,
                               const std::string& prefix) {
  if (registry == nullptr) {
    m_up_ = nullptr;
    m_down_ = nullptr;
    m_unconfigured_ = nullptr;
    return;
  }
  m_up_ = &registry->counter(prefix + "epc.gtp.enb.uplink_sent");
  m_down_ = &registry->counter(prefix + "epc.gtp.enb.downlink_received");
  m_unconfigured_ =
      &registry->counter(prefix + "epc.gtp.enb.unconfigured_drops");
}

void EnbDataPlane::set_tracer(obs::SpanTracer* tracer,
                              const std::string& prefix) {
  tracer_ = tracer;
  span_cat_ = prefix + "gtp";
}

void EnbDataPlane::send_uplink(net::Ipv4 ue_ip, NodeId remote,
                               int size_bytes) {
  const auto it = uplink_teids_.find(ue_ip.addr);
  if (it == uplink_teids_.end()) {
    ++unconfigured_;
    obs::inc(m_unconfigured_);
    if (tracer_ != nullptr) {
      // Zero-duration marker: the datagram died here, trace says why.
      const obs::SpanId s =
          obs::span_begin(tracer_, "gtp_uplink", span_cat_);
      obs::span_annotate(tracer_, s, "drop", "no uplink teid for ue");
      obs::span_end(tracer_, s);
    }
    return;
  }
  InnerDatagram inner{ue_ip, remote, size_bytes};
  ++up_count_;
  obs::inc(m_up_);
  const std::uint16_t seq = next_seq_++;
  const obs::SpanId span = obs::span_begin(tracer_, "gtp_uplink", span_cat_);
  obs::span_annotate(
      tracer_, span, "tunnel",
      lte::gtpu_brief(lte::GtpUHeader{
          it->second, static_cast<std::uint16_t>(size_bytes), seq}));
  if (tracer_ != nullptr && span != obs::kNoSpan) {
    // The gateway endpoint closes this span at decapsulation.
    tracer_->stash(obs::span_key("gtpu", it->second.value(), seq), span);
  }
  obs::ScopedActivation act{tracer_, span};
  net_.send(net::Packet{node_, gw_node_,
                        size_bytes + lte::kGtpTunnelOverheadBytes,
                        kGtpUProtocol, frame_gtp(it->second, seq, inner)});
}

void EnbDataPlane::on_gtp(const net::Packet& packet) {
  auto frame = deframe_gtp(packet.payload);
  if (!frame) return;
  ++down_count_;
  obs::inc(m_down_);
  if (tracer_ != nullptr) {
    // Close the gateway's stashed "gtp_downlink" span: the tunnel leg
    // ends where the datagram reaches the serving eNodeB.
    const obs::SpanId span = tracer_->take(obs::span_key(
        "gtpd", frame->header.teid.value(), frame->header.sequence));
    obs::span_annotate(tracer_, span, "delivered",
                       lte::gtpu_brief(frame->header));
    obs::span_end(tracer_, span);
  }
  if (on_downlink_) on_downlink_(frame->inner);
}

}  // namespace dlte::epc
