#include "epc/hss.h"

#include <cstring>

namespace dlte::epc {

namespace {
crypto::Sqn48 to_sqn48(std::uint64_t sqn) {
  crypto::Sqn48 out{};
  for (int i = 0; i < 6; ++i) {
    out[static_cast<std::size_t>(5 - i)] =
        static_cast<std::uint8_t>(sqn >> (8 * i));
  }
  return out;
}
}  // namespace

void Hss::provision(Imsi imsi, const crypto::Key128& k,
                    const crypto::Block128& op) {
  provision_with_opc(imsi, k, crypto::derive_opc(k, op));
}

void Hss::provision_with_opc(Imsi imsi, const crypto::Key128& k,
                             const crypto::Block128& opc) {
  subscribers_[imsi] = Subscriber{k, opc, 0, false};
}

Result<AuthVector> Hss::generate_auth_vector(
    Imsi imsi, const std::string& serving_network_id) {
  auto it = subscribers_.find(imsi);
  if (it == subscribers_.end()) return fail("unknown IMSI");
  Subscriber& sub = it->second;

  AuthVector v;
  for (auto& b : v.rand) {
    b = static_cast<std::uint8_t>(rng_.uniform_int(0, 255));
  }
  sub.sqn += 1;
  const crypto::Sqn48 sqn = to_sqn48(sub.sqn);
  v.amf = {0x80, 0x00};

  const crypto::Milenage m{sub.k, sub.opc};
  const auto f1 = m.f1(v.rand, sqn, v.amf);
  v.mac_a = f1.mac_a;
  const auto f25 = m.f2_f5(v.rand);
  v.xres = f25.res;
  for (std::size_t i = 0; i < 6; ++i) {
    v.sqn_xor_ak[i] = static_cast<std::uint8_t>(sqn[i] ^ f25.ak[i]);
  }
  const auto ck = m.f3(v.rand);
  const auto ik = m.f4(v.rand);
  v.kasme = crypto::derive_kasme(ck, ik, serving_network_id, v.sqn_xor_ak);
  return v;
}

Result<PublishedKeys> Hss::published_keys(Imsi imsi) const {
  const auto it = subscribers_.find(imsi);
  if (it == subscribers_.end()) return fail("unknown IMSI");
  if (!it->second.published) return fail("keys not published");
  return PublishedKeys{imsi, it->second.k, it->second.opc};
}

}  // namespace dlte::epc
