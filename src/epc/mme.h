// MME: mobility management entity — the EMM/ECM state machine.
//
// Drives attach, EPS-AKA, security mode, and session setup over S1AP.
// One Mme instance serves either a whole centralized network (many cells,
// one signaling queue — the §4.1 chokepoint) or a single dLTE AP (the
// local stub, one queue per site). Message processing consumes simulated
// CPU time through a single-server queue, which is what saturates in the
// C4 core-scaling experiment.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/stats.h"
#include "common/time.h"
#include "epc/gateway.h"
#include "epc/hss.h"
#include "lte/nas.h"
#include "lte/s1ap.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "sim/simulator.h"

namespace dlte::epc {

enum class EmmState {
  kDeregistered,
  kAuthPending,
  kSecurityPending,
  kAttachAccepted,   // Waiting for AttachComplete / context setup.
  kRegistered,
};

struct MmeConfig {
  std::string serving_network_id{"dlte-net"};
  // CPU cost of handling one signaling message (single-server queue).
  Duration nas_processing{Duration::micros(500)};
  // Cells paged in addition to the UE's last cell. A centralized core
  // pages a whole tracking area; a dLTE stub has exactly one cell, so
  // this stays empty and paging costs one message.
  std::vector<CellId> tracking_area{};
  // NAS retransmission (T3460/T3450-style): a downlink NAS message that
  // has not advanced the UE's state is re-sent up to `nas_max_retx`
  // times, `nas_retx_timeout` apart. Lets an attach survive transient
  // S1/backhaul loss instead of stalling until the UE gives up.
  Duration nas_retx_timeout{Duration::seconds(2.0)};
  int nas_max_retx{4};
  // Re-attach storm admission throttle (T3346-style congestion control):
  // with more than this many attach dialogues in flight, new attach
  // requests are rejected with a congestion cause so the UEs back off and
  // spread the storm, instead of every dialogue timing out together.
  // Zero = unlimited.
  int max_concurrent_attaches{0};
};

struct MmeStats {
  std::uint64_t messages_processed{0};
  std::uint64_t attaches_completed{0};
  std::uint64_t auth_failures{0};
  std::uint64_t detaches{0};
  std::uint64_t path_switches{0};
  std::uint64_t handovers_in{0};
  std::uint64_t handovers_out{0};
  std::uint64_t paging_messages{0};
  std::uint64_t service_requests{0};
  std::uint64_t nas_retransmissions{0};
  std::uint64_t attaches_throttled{0};  // Rejected by storm admission.
  std::uint64_t state_losses{0};        // Crashes wiping volatile state.
  Quantiles queueing_delay_ms;  // Time spent waiting for MME CPU.
};

class Mme {
 public:
  // Sends an S1AP message toward the eNodeB serving `cell`.
  using S1apSender = std::function<void(CellId, lte::S1apMessage)>;

  Mme(sim::Simulator& sim, Hss& hss, Gateway& gateway, MmeConfig config);

  void set_sender(S1apSender sender) { sender_ = std::move(sender); }

  // Entry point for S1AP traffic from eNodeBs. Subject to the processing
  // queue: handling happens after queueing + service time.
  void handle_s1ap(CellId from_cell, lte::S1apMessage message);

  // S1 path switch after an inter-eNodeB handover (centralized LTE
  // mobility): repoints the downlink tunnel to the new cell's eNodeB.
  void path_switch(Imsi imsi, CellId new_cell, Teid new_enb_teid);

  // dLTE cooperative handover admission (§4.3/§6): the source AP forwards
  // the UE's security context over X2, so the target core creates a
  // registered session without re-running EPS-AKA. Returns the new bearer
  // (with this AP's address for the UE). Synchronous — the caller models
  // the X2/processing latency.
  [[nodiscard]] Result<BearerContext> admit_handover(
      Imsi imsi, CellId cell, std::span<const std::uint8_t> security_context);
  // Release a UE's context (source side of a completed handover).
  void release_ue(Imsi imsi);

  // ECM state management: S1 release parks a registered UE in idle
  // (context kept, radio released); downlink data for an idle UE triggers
  // paging across the cell(s), and the UE's ServiceRequest reconnects it.
  void release_to_idle(Imsi imsi);
  [[nodiscard]] bool is_idle(Imsi imsi) const;
  // `on_connected` fires when the UE answers the page.
  void page(Imsi imsi, std::function<void()> on_connected = nullptr);

  // Crash semantics (src/fault): an MME process restart loses every EMM
  // context and in-flight dialogue — exactly what a dLTE AP reboot does to
  // its local core. The HSS subscriber DB (persistent storage) survives;
  // UEs must re-attach from scratch. Pending retransmission timers for the
  // wiped contexts find no state and die quietly.
  void lose_volatile_state();

  [[nodiscard]] bool is_registered(Imsi imsi) const;
  [[nodiscard]] std::size_t registered_count() const;
  [[nodiscard]] std::size_t attaches_in_progress() const;
  [[nodiscard]] const MmeStats& stats() const { return stats_; }

  // Export signaling counters and the attach-latency / queueing-delay
  // histograms under `<prefix>epc.*` (all simulated-time derived, so
  // values are deterministic for a given seed).
  void set_metrics(obs::MetricsRegistry* registry,
                   const std::string& prefix = "");

  // Causal tracing (DESIGN.md §9): the EMM dialogue's core-side phases
  // ("aka", "security_mode", "bearer_setup") become child spans of the
  // eNodeB's "attach" span, found via the tracer's stash under
  // span_key("attach", cell, enb_ue_id). Spans land in category
  // `<prefix>epc`. Null tracer disables tracing.
  void set_tracer(obs::SpanTracer* tracer, const std::string& prefix = "");

 private:
  struct UeContext {
    Imsi imsi;
    Tmsi tmsi;
    EnbUeId enb_ue_id;
    MmeUeId mme_ue_id;
    CellId cell;
    EmmState state{EmmState::kDeregistered};
    TimePoint attach_started{};  // First AttachRequest of this dialogue.
    crypto::Res64 xres{};
    crypto::Kasme kasme{};
    bool context_setup_done{false};
    bool attach_complete_seen{false};
    bool ecm_idle{false};
    std::function<void()> on_paged;
    // NAS retransmission state: the last downlink NAS message, re-sent
    // while the EMM state has not advanced.
    std::uint64_t retx_epoch{0};
    int retx_left{0};
    EmmState retx_state{EmmState::kDeregistered};
    std::vector<std::uint8_t> retx_pdu;
    // Causal tracing: the RAN-side "attach" span this dialogue belongs
    // to (owned and closed by the eNodeB), and the currently open
    // core-side phase child span.
    obs::SpanId proc_span{obs::kNoSpan};
    obs::SpanId phase_span{obs::kNoSpan};
  };

  void process(CellId from_cell, const lte::S1apMessage& message);
  void handle_nas(UeContext& ue, const lte::NasMessage& nas);
  void send_nas(UeContext& ue, const lte::NasMessage& nas);
  void arm_nas_retx(UeContext& ue);
  void start_attach(CellId cell, EnbUeId enb_ue_id,
                    const lte::AttachRequest& request);
  void maybe_finish_attach(UeContext& ue);
  UeContext* find_by_mme_id(MmeUeId id);
  // The RAN's stashed "attach" span for this dialogue (kNoSpan if the
  // eNodeB is untraced or the stash expired).
  [[nodiscard]] obs::SpanId ran_span(CellId cell, EnbUeId enb_ue_id) const;
  // Closes the open phase span (if any) and opens `name` under proc_span.
  void begin_phase(UeContext& ue, const char* name);
  void end_phase(UeContext& ue);

  sim::Simulator& sim_;
  std::uint32_t ev_label_{0};
  Hss& hss_;
  Gateway& gateway_;
  MmeConfig config_;
  S1apSender sender_;
  TimePoint busy_until_{};

  std::unordered_map<Imsi, UeContext> ues_;
  std::unordered_map<std::uint32_t, Imsi> by_mme_id_;
  std::uint32_t next_mme_id_{1};
  std::uint32_t next_tmsi_{0x1000};
  MmeStats stats_;

  obs::SpanTracer* tracer_{nullptr};
  std::string span_cat_{"epc"};

  obs::Counter* m_messages_{nullptr};
  obs::Counter* m_attaches_{nullptr};
  obs::Counter* m_auth_failures_{nullptr};
  obs::Counter* m_detaches_{nullptr};
  obs::Counter* m_path_switches_{nullptr};
  obs::Counter* m_handovers_in_{nullptr};
  obs::Counter* m_handovers_out_{nullptr};
  obs::Counter* m_paging_{nullptr};
  obs::Counter* m_service_requests_{nullptr};
  obs::Counter* m_nas_retx_{nullptr};
  obs::Counter* m_throttled_{nullptr};
  obs::Counter* m_state_losses_{nullptr};
  obs::Histogram* m_attach_latency_ms_{nullptr};
  obs::Histogram* m_queueing_delay_ms_{nullptr};
};

}  // namespace dlte::epc
