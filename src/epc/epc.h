// EpcCore: one deployable core — centralized or dLTE local stub.
//
// Both deployments are built from the identical HSS/MME/Gateway parts;
// the deployment flag controls only what the paper says should differ
// (§4.1): the local stub does not anchor mobility, does not bill, and is
// expected to sit on the AP itself (so its S1 latency is ~zero), while
// the centralized core anchors every tunnel and meters every subscriber
// at a remote site.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "epc/gateway.h"
#include "epc/hss.h"
#include "epc/mme.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace dlte::epc {

enum class CoreDeployment {
  kCentralized,  // Telecom LTE: one core, all traffic tromboned through it.
  kLocalStub,    // dLTE: collapsed per-AP core with local breakout.
};

struct EpcConfig {
  CoreDeployment deployment{CoreDeployment::kLocalStub};
  std::string network_id{"dlte-ap"};
  MmeConfig mme{};
  std::uint32_t ip_pool_base{0x0A2D0000};  // 10.45.0.0.
};

class EpcCore {
 public:
  EpcCore(sim::Simulator& sim, EpcConfig config, sim::RngStream rng);

  [[nodiscard]] Hss& hss() { return hss_; }
  [[nodiscard]] Mme& mme() { return mme_; }
  [[nodiscard]] Gateway& gateway() { return gateway_; }
  [[nodiscard]] const EpcConfig& config() const { return config_; }

  // Attach the whole core (MME + gateway) to a metrics registry.
  void set_metrics(obs::MetricsRegistry* registry,
                   const std::string& prefix = "") {
    mme_.set_metrics(registry, prefix);
    gateway_.set_metrics(registry, prefix);
  }

  // Attach the core to a span tracer (currently the MME's EMM dialogue
  // phases; the user-plane spans live in the data-plane objects).
  void set_tracer(obs::SpanTracer* tracer, const std::string& prefix = "") {
    mme_.set_tracer(tracer, prefix);
  }

  // Crash-and-restart of the core process (src/fault): MME contexts and
  // gateway bearers are volatile and vanish; the HSS subscriber database
  // (flash-backed) and CDRs (already shipped off-box) survive.
  void crash() {
    mme_.lose_volatile_state();
    gateway_.clear_sessions();
  }

  // Capability predicates per §4.1 / §4.4: the stub strips everything the
  // client doesn't strictly require.
  [[nodiscard]] bool anchors_mobility() const {
    return config_.deployment == CoreDeployment::kCentralized;
  }
  [[nodiscard]] bool bills_subscribers() const {
    return config_.deployment == CoreDeployment::kCentralized;
  }
  [[nodiscard]] bool tunnels_user_traffic() const {
    return config_.deployment == CoreDeployment::kCentralized;
  }

  // Usage metering (CDRs). No-op on a local stub — dLTE explicitly leaves
  // billing to OTT services.
  void record_usage(Imsi imsi, std::uint64_t bytes);
  [[nodiscard]] std::uint64_t usage_bytes(Imsi imsi) const;
  [[nodiscard]] std::size_t cdr_count() const { return cdrs_.size(); }

 private:
  EpcConfig config_;
  Hss hss_;
  Gateway gateway_;
  Mme mme_;
  std::unordered_map<Imsi, std::uint64_t> cdrs_;
};

}  // namespace dlte::epc
