#include "spectrum/health.h"

namespace dlte::spectrum {

std::vector<obs::SloRule> default_registry_slo_rules(
    const std::string& prefix, const std::string& scope,
    double max_heartbeat_failure_rate) {
  std::vector<obs::SloRule> rules;
  {
    obs::SloRule r;
    r.name = "registry_outage";
    r.scope = scope;
    r.metric = prefix + "registry.heartbeats_failed";
    r.predicate = obs::SloPredicate::kRateBelow;
    r.threshold = max_heartbeat_failure_rate;
    r.window = Duration::seconds(5.0);
    r.fire_after = 2;  // One stray failure must not page.
    r.resolve_after = 2;
    rules.push_back(r);
  }
  {
    obs::SloRule r;
    r.name = "registry_grants_lapsing";
    r.scope = scope;
    r.metric = prefix + "registry.grants_lapsed";
    r.predicate = obs::SloPredicate::kRateBelow;
    r.threshold = max_heartbeat_failure_rate;
    r.window = Duration::seconds(5.0);
    r.fire_after = 1;  // A lapse is already past the grace period.
    r.resolve_after = 2;
    rules.push_back(r);
  }
  return rules;
}

}  // namespace dlte::spectrum
