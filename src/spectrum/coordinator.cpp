#include "spectrum/coordinator.h"

#include <algorithm>

#include "spectrum/fair_share.h"

namespace dlte::spectrum {

PeerCoordinator::PeerCoordinator(sim::Simulator& sim, net::Network& net,
                                 NodeId node, CoordinatorConfig config)
    : sim_(sim),
      net_(net),
      node_(node),
      config_(config),
      impair_rng_(sim::RngStream::derive(config.ap.value(), "x2-impair")) {
  net_.set_protocol_handler(node_, kX2Protocol, [this](net::Packet&& p) {
    on_packet(p);
  });
}

PeerCoordinator::~PeerCoordinator() {
  net_.set_protocol_handler(node_, kX2Protocol, nullptr);
}

void PeerCoordinator::set_metrics(obs::MetricsRegistry* registry,
                                  const std::string& prefix) {
  if (registry == nullptr) {
    m_messages_sent_ = nullptr;
    m_bytes_sent_ = nullptr;
    m_messages_received_ = nullptr;
    m_rounds_led_ = nullptr;
    m_shares_applied_ = nullptr;
    m_grant_churn_ = nullptr;
    m_peers_expired_ = nullptr;
    m_mode_rejects_ = nullptr;
    return;
  }
  m_messages_sent_ = &registry->counter(prefix + "x2.messages_sent");
  m_bytes_sent_ = &registry->counter(prefix + "x2.bytes_sent");
  m_messages_received_ = &registry->counter(prefix + "x2.messages_received");
  m_rounds_led_ = &registry->counter(prefix + "x2.rounds_led");
  m_shares_applied_ = &registry->counter(prefix + "x2.shares_applied");
  m_grant_churn_ = &registry->counter(prefix + "x2.grant_churn");
  m_peers_expired_ = &registry->counter(prefix + "x2.peers_expired");
  m_mode_rejects_ = &registry->counter(prefix + "spectrum.mode_rejects");
}

void PeerCoordinator::set_tracer(obs::SpanTracer* tracer,
                                 const std::string& prefix) {
  tracer_ = tracer;
  span_cat_ = prefix + "x2";
}

void PeerCoordinator::close_round_span(const char* result) {
  if (round_span_ == obs::kNoSpan) return;
  obs::span_annotate(tracer_, round_span_, "result", result);
  obs::span_end(tracer_, round_span_);
  if (tracer_ != nullptr) {
    tracer_->take(obs::span_key("x2_round", round_span_round_));
  }
  round_span_ = obs::kNoSpan;
  round_accepts_.clear();
  round_accepts_needed_ = 0;
}

void PeerCoordinator::add_peer(ApId ap, NodeId node) {
  if (ap == config_.ap) return;
  peers_[ap] = node;
  note_heard(ap);
}

void PeerCoordinator::note_heard(ApId ap) { last_heard_[ap] = sim_.now(); }

void PeerCoordinator::expire_dead_peers() {
  if (config_.peer_liveness_timeout.is_zero()) return;
  const TimePoint now = sim_.now();
  for (auto it = peers_.begin(); it != peers_.end();) {
    const auto heard = last_heard_.find(it->first);
    const TimePoint last =
        heard != last_heard_.end() ? heard->second : TimePoint{};
    if (now - last > config_.peer_liveness_timeout) {
      const ApId dead = it->first;
      latest_status_.erase(dead);
      last_heard_.erase(dead);
      it = peers_.erase(it);
      ++stats_.peers_expired;
      obs::inc(m_peers_expired_);
      // The next round recomputes shares over the survivors — the dead
      // peer's spectrum is reclaimed (and, should it return, its hello /
      // status re-establishes peering).
      if (peer_loss_observer_) peer_loss_observer_(dead);
    } else {
      ++it;
    }
  }
}

void PeerCoordinator::send_hello(const std::string& operator_contact) {
  lte::DlteHello hello{config_.ap, config_.mode, operator_contact};
  broadcast(lte::X2Message{hello});
}

bool PeerCoordinator::set_mode(lte::DlteMode mode) {
  if (lte::is_coexistence_mode(mode) && wifi_occupants_ == 0) {
    ++stats_.mode_rejects;
    obs::inc(m_mode_rejects_);
    return false;
  }
  config_.mode = mode;
  // Isolated APs reclaim the full band; so do coexistence-mode APs — on a
  // WiFi-shared channel the whole cell contends for the whole channel and
  // the on-air policy (LBT/duty-cycle), not a PRB split, bounds airtime.
  if (mode == lte::DlteMode::kIsolated || lte::is_coexistence_mode(mode)) {
    apply_share(1.0);
  }
  return true;
}

void PeerCoordinator::start() {
  if (started_) return;
  started_ = true;
  ticker_ = sim_.every_cancellable(config_.report_period, [this] {
    if (offline_) return;  // Crashed AP: no reports, no rounds.
    expire_dead_peers();
    report_status();
    maybe_lead_round();
  });
}

void PeerCoordinator::send_to(NodeId node, const lte::X2Message& message) {
  if (offline_) return;
  int copies = 1;
  if (impairment_.drop > 0.0 && impair_rng_.bernoulli(impairment_.drop)) {
    ++stats_.x2_drops_injected;
    return;
  }
  if (impairment_.duplicate > 0.0 &&
      impair_rng_.bernoulli(impairment_.duplicate)) {
    ++stats_.x2_dups_injected;
    copies = 2;
  }
  const int size = lte::x2_wire_size(message);
  for (int c = 0; c < copies; ++c) {
    net_.send(net::Packet{node_, node, size, kX2Protocol,
                          lte::encode_x2(message)});
    ++stats_.messages_sent;
    stats_.bytes_sent += static_cast<std::uint64_t>(size);
    obs::inc(m_messages_sent_);
    obs::inc(m_bytes_sent_, static_cast<std::uint64_t>(size));
  }
}

void PeerCoordinator::broadcast(const lte::X2Message& message) {
  for (const auto& [ap, node] : peers_) send_to(node, message);
}

void PeerCoordinator::report_status() {
  if (config_.mode == lte::DlteMode::kIsolated) return;
  lte::DltePeerStatus status;
  status.ap = config_.ap;
  status.mode = config_.mode;
  status.offered_load = offered_load_;
  status.prb_utilization = cell_ != nullptr ? cell_->prb_share() : 0.0;
  status.active_ues =
      cell_ != nullptr ? static_cast<std::uint32_t>(cell_->ue_ids().size())
                       : 0;
  // Record our own status for the leader computation.
  latest_status_[config_.ap] = status;
  broadcast(lte::X2Message{status});
}

bool PeerCoordinator::is_leader() const {
  // Lowest ApId in the domain leads the round. Deterministic and
  // leaderless in spirit: any member could compute the same shares.
  for (const auto& [ap, node] : peers_) {
    if (ap < config_.ap) return false;
  }
  return true;
}

void PeerCoordinator::maybe_lead_round() {
  if (config_.mode == lte::DlteMode::kIsolated) return;
  // Coexistence modes arbitrate airtime on the air, not in X2 rounds.
  if (lte::is_coexistence_mode(config_.mode)) return;
  if (!is_leader()) return;
  // Need fresh status from every peer before proposing.
  if (latest_status_.size() < peers_.size() + 1) return;

  std::vector<std::uint32_t> ids;
  std::vector<double> demands;
  bool all_cooperative = config_.mode == lte::DlteMode::kCooperative;
  for (const auto& [ap, status] : latest_status_) {
    ids.push_back(ap.value());
    demands.push_back(std::clamp(status.offered_load, 0.0, 1.0));
    if (status.mode != lte::DlteMode::kCooperative) all_cooperative = false;
  }

  // Cooperative mode fuses resources (demand-proportional); fair-share
  // mode guarantees the WiFi-like max-min equilibrium (§4.3).
  const auto shares = all_cooperative ? proportional_shares(demands)
                                      : max_min_fair_shares(demands);

  lte::DlteShareProposal proposal;
  proposal.round = ++round_;
  proposal.ap_ids = ids;
  proposal.shares = shares;
  ++stats_.rounds_led;
  obs::inc(m_rounds_led_);
  // A previous round still waiting for accepts is superseded.
  close_round_span("incomplete (superseded by next round)");
  round_span_ = obs::span_begin(tracer_, "x2_round", span_cat_, obs::kNoSpan);
  round_span_round_ = proposal.round;
  round_accepts_.clear();
  round_accepts_needed_ = peers_.size();
  obs::span_annotate(tracer_, round_span_, "round",
                     std::to_string(proposal.round));
  obs::span_annotate(tracer_, round_span_, "members",
                     std::to_string(ids.size()));
  if (tracer_ != nullptr) {
    tracer_->stash(obs::span_key("x2_round", proposal.round), round_span_);
  }
  {
    // Proposal packets (and our own share application) belong to the
    // round causally.
    obs::ScopedActivation act{tracer_, round_span_};
    broadcast(lte::X2Message{proposal});
    // Apply our own slice directly.
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (ids[i] == config_.ap.value()) apply_share(shares[i]);
    }
  }
  // A leader with no peers has nobody to wait for.
  if (round_accepts_needed_ == 0) close_round_span("complete");
}

void PeerCoordinator::apply_share(double share) {
  const double previous = current_share_;
  current_share_ = std::clamp(share, 0.0, 1.0);
  ++stats_.shares_applied;
  obs::inc(m_shares_applied_);
  if (current_share_ != previous) obs::inc(m_grant_churn_);
  if (cell_ != nullptr) cell_->set_prb_share(current_share_);
  if (share_observer_) share_observer_(current_share_);
}

void PeerCoordinator::on_packet(const net::Packet& packet) {
  if (offline_) return;  // Crashed AP: the X2 endpoint is dark.
  auto message = lte::decode_x2(packet.payload);
  if (!message) return;
  ++stats_.messages_received;
  obs::inc(m_messages_received_);

  if (const auto* hello = std::get_if<lte::DlteHello>(&*message)) {
    // A new AP announced itself; its reachable node is the packet source.
    add_peer(hello->ap, packet.src);
    return;
  }
  if (const auto* status = std::get_if<lte::DltePeerStatus>(&*message)) {
    // Status also (re)establishes peering for APs we had not met yet.
    latest_status_[status->ap] = *status;
    if (status->ap != config_.ap) add_peer(status->ap, packet.src);
    return;
  }
  if (const auto* proposal =
          std::get_if<lte::DlteShareProposal>(&*message)) {
    // A coexistence-mode AP does not take PRB splits from X2 rounds: its
    // airtime is whatever LBT/duty-cycle wins on the shared channel.
    if (lte::is_coexistence_mode(config_.mode)) return;
    for (std::size_t i = 0; i < proposal->ap_ids.size(); ++i) {
      if (proposal->ap_ids[i] == config_.ap.value() &&
          i < proposal->shares.size()) {
        if (tracer_ != nullptr) {
          // The leader's round span lives in the shared tracer's stash.
          obs::span_annotate(
              tracer_,
              tracer_->stashed(obs::span_key("x2_round", proposal->round)),
              "applied",
              "ap" + std::to_string(config_.ap.value()) +
                  " share=" + std::to_string(proposal->shares[i]));
        }
        apply_share(proposal->shares[i]);
        // Acknowledge to the proposer.
        lte::DlteShareAccept accept{proposal->round, config_.ap};
        send_to(packet.src, lte::X2Message{accept});
      }
    }
    return;
  }
  if (const auto* accept = std::get_if<lte::DlteShareAccept>(&*message)) {
    // Leader side: the round's span closes when every proposal recipient
    // has acknowledged. (Previously accepts were received and dropped —
    // the span gives them a job.)
    note_heard(accept->ap);
    if (accept->round == round_span_round_ && round_span_ != obs::kNoSpan &&
        round_accepts_.insert(accept->ap.value()).second) {
      obs::span_annotate(tracer_, round_span_, "accept",
                         "ap" + std::to_string(accept->ap.value()));
      if (round_accepts_.size() >= round_accepts_needed_) {
        close_round_span("complete");
      }
    }
    return;
  }
  // Handover family: hand to the registered sink (core::HandoverManager).
  if (handover_sink_ != nullptr &&
      (std::holds_alternative<lte::X2HandoverRequest>(*message) ||
       std::holds_alternative<lte::X2HandoverRequestAck>(*message) ||
       std::holds_alternative<lte::X2UeContextRelease>(*message))) {
    handover_sink_(*message, packet.src);
  }
}

bool PeerCoordinator::send_to_peer(ApId peer, const lte::X2Message& message) {
  const auto it = peers_.find(peer);
  if (it == peers_.end()) return false;
  send_to(it->second, message);
  return true;
}

std::optional<NodeId> PeerCoordinator::peer_node(ApId peer) const {
  const auto it = peers_.find(peer);
  if (it == peers_.end()) return std::nullopt;
  return it->second;
}

const lte::DltePeerStatus* PeerCoordinator::peer_status(ApId ap) const {
  const auto it = latest_status_.find(ap);
  return it == latest_status_.end() ? nullptr : &it->second;
}

}  // namespace dlte::spectrum
