// SpectrumChain: a minimal append-only blockchain backing the
// decentralized registry variant.
//
// The paper cites blockchain licensing (Kotobi & Bilén [27]) and the
// blockchain-backed distributed HSS (Jover & Lackey [25]) as ways to
// "remove all centralization from the licensing process." This is the
// data structure those schemes rest on: SHA-256-linked blocks sealed at a
// fixed interval, carrying grant and published-key records. There is no
// proof-of-work — inclusion latency (one block interval) and integrity
// (hash chaining) are the properties the registry experiments exercise.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/time.h"
#include "crypto/sha256.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace dlte::spectrum {

enum class ChainRecordKind : std::uint8_t {
  kGrant = 1,
  kSubscriberKey = 2,
  kRevocation = 3,
};

struct ChainRecord {
  ChainRecordKind kind{ChainRecordKind::kGrant};
  std::vector<std::uint8_t> payload;  // Encoded grant / key bundle.
};

struct Block {
  std::uint64_t height{0};
  crypto::Digest256 previous_hash{};
  std::vector<ChainRecord> records;
  crypto::Digest256 hash{};  // Over height ‖ previous ‖ records.
};

class SpectrumChain {
 public:
  SpectrumChain(sim::Simulator& sim, Duration block_interval);

  // Queue a record for the next block; the callback fires at inclusion
  // with the block height (this is the "commit" latency of the
  // blockchain registry design).
  using InclusionCallback = std::function<void(std::uint64_t height)>;
  void submit(ChainRecord record, InclusionCallback on_included = nullptr);

  // Start sealing blocks every interval (idempotent).
  void start();

  // Batched commit windows (DESIGN.md §16): cap how many queued records
  // one block may carry. Submissions beyond the cap stay pending for the
  // next interval, so commit throughput is records-per-block × blocks-
  // per-second and scales with the cap. Zero (the default) keeps the
  // historical behaviour: every pending record seals into one block.
  void set_max_records_per_block(std::size_t cap) { max_records_ = cap; }
  [[nodiscard]] std::size_t max_records_per_block() const {
    return max_records_;
  }

  // Health source: counter `<prefix>registry.blocks_sealed`, histogram
  // `<prefix>registry.commits_per_block` (records sealed per block —
  // the batch-efficiency signal), gauge `<prefix>registry.commit_backlog`
  // (records still pending after a seal). Null-safe.
  void set_metrics(obs::MetricsRegistry* metrics,
                   const std::string& prefix = "");

  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }
  [[nodiscard]] std::size_t pending_count() const { return pending_.size(); }
  [[nodiscard]] const Block& block(std::size_t index) const {
    return blocks_[index];
  }
  [[nodiscard]] Duration block_interval() const { return interval_; }

  // Full-chain integrity check: recomputes every hash and link. Any
  // mutation of a sealed record breaks it — this is what replaces trust
  // in a central registry operator.
  [[nodiscard]] bool verify() const;

  // Visit all committed records of one kind (oldest first).
  void for_each_record(
      ChainRecordKind kind,
      const std::function<void(const ChainRecord&)>& visit) const;

  // Test/attack hook: expose a mutable record so tamper-evidence can be
  // demonstrated.
  [[nodiscard]] Block& mutable_block(std::size_t index) {
    return blocks_[index];
  }

 private:
  void seal_block();
  [[nodiscard]] static crypto::Digest256 block_hash(const Block& b);

  sim::Simulator& sim_;
  Duration interval_;
  bool started_{false};
  std::size_t max_records_{0};  // 0 = unbounded block size.
  std::vector<Block> blocks_;
  std::vector<std::pair<ChainRecord, InclusionCallback>> pending_;

  obs::Counter* m_blocks_sealed_{nullptr};
  obs::Histogram* m_commits_per_block_{nullptr};
  obs::Gauge* m_commit_backlog_{nullptr};
};

}  // namespace dlte::spectrum
