#include "spectrum/chain.h"

#include <algorithm>

#include "common/bytes.h"

namespace dlte::spectrum {

SpectrumChain::SpectrumChain(sim::Simulator& sim, Duration block_interval)
    : sim_(sim), interval_(block_interval) {
  // Genesis block.
  Block genesis;
  genesis.height = 0;
  genesis.hash = block_hash(genesis);
  blocks_.push_back(std::move(genesis));
}

crypto::Digest256 SpectrumChain::block_hash(const Block& b) {
  ByteWriter w;
  w.u64(b.height);
  w.bytes(b.previous_hash);
  w.u32(static_cast<std::uint32_t>(b.records.size()));
  for (const auto& r : b.records) {
    w.u8(static_cast<std::uint8_t>(r.kind));
    w.u32(static_cast<std::uint32_t>(r.payload.size()));
    w.bytes(r.payload);
  }
  return crypto::sha256(w.data());
}

void SpectrumChain::submit(ChainRecord record, InclusionCallback on_included) {
  pending_.emplace_back(std::move(record), std::move(on_included));
}

void SpectrumChain::start() {
  if (started_) return;
  started_ = true;
  sim_.every(interval_, [this] { seal_block(); });
}

void SpectrumChain::seal_block() {
  if (pending_.empty()) return;  // No empty blocks.
  Block b;
  b.height = blocks_.back().height + 1;
  b.previous_hash = blocks_.back().hash;
  // FIFO batch window: oldest submissions commit first; anything past
  // the per-block cap waits for the next interval.
  const std::size_t take = max_records_ == 0
                               ? pending_.size()
                               : std::min(max_records_, pending_.size());
  std::vector<InclusionCallback> callbacks;
  callbacks.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    b.records.push_back(std::move(pending_[i].first));
    callbacks.push_back(std::move(pending_[i].second));
  }
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<std::ptrdiff_t>(take));
  b.hash = block_hash(b);
  blocks_.push_back(std::move(b));
  obs::inc(m_blocks_sealed_);
  obs::observe(m_commits_per_block_, static_cast<double>(take));
  obs::set(m_commit_backlog_, static_cast<double>(pending_.size()));
  const std::uint64_t height = blocks_.back().height;
  for (auto& cb : callbacks) {
    if (cb) cb(height);
  }
}

void SpectrumChain::set_metrics(obs::MetricsRegistry* metrics,
                                const std::string& prefix) {
  if (metrics == nullptr) {
    m_blocks_sealed_ = nullptr;
    m_commits_per_block_ = nullptr;
    m_commit_backlog_ = nullptr;
    return;
  }
  m_blocks_sealed_ = &metrics->counter(prefix + "registry.blocks_sealed");
  m_commits_per_block_ =
      &metrics->histogram(prefix + "registry.commits_per_block");
  m_commit_backlog_ = &metrics->gauge(prefix + "registry.commit_backlog");
}

bool SpectrumChain::verify() const {
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (block_hash(blocks_[i]) != blocks_[i].hash) return false;
    if (i > 0 && blocks_[i].previous_hash != blocks_[i - 1].hash) {
      return false;
    }
    if (blocks_[i].height != i) return false;
  }
  return true;
}

void SpectrumChain::for_each_record(
    ChainRecordKind kind,
    const std::function<void(const ChainRecord&)>& visit) const {
  for (const auto& b : blocks_) {
    for (const auto& r : b.records) {
      if (r.kind == kind) visit(r);
    }
  }
}

}  // namespace dlte::spectrum
