#include "spectrum/fair_share.h"

#include <algorithm>
#include <numeric>

namespace dlte::spectrum {

std::vector<double> max_min_fair_shares(std::span<const double> demands) {
  const std::size_t n = demands.size();
  std::vector<double> shares(n, 0.0);
  if (n == 0) return shares;

  // Water-filling: repeatedly satisfy every unsatisfied demand below the
  // equal split of the remaining capacity.
  std::vector<bool> satisfied(n, false);
  double capacity = 1.0;
  std::size_t remaining = n;
  for (;;) {
    const double level = capacity / static_cast<double>(remaining);
    bool progressed = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (satisfied[i]) continue;
      if (demands[i] <= level) {
        shares[i] = std::max(demands[i], 0.0);
        capacity -= shares[i];
        satisfied[i] = true;
        --remaining;
        progressed = true;
      }
    }
    if (remaining == 0) break;
    if (!progressed) {
      // Everyone left wants more than the level: equal split.
      const double each = capacity / static_cast<double>(remaining);
      for (std::size_t i = 0; i < n; ++i) {
        if (!satisfied[i]) shares[i] = each;
      }
      break;
    }
  }
  return shares;
}

std::vector<double> proportional_shares(std::span<const double> demands) {
  const std::size_t n = demands.size();
  std::vector<double> shares(n, 0.0);
  const double total = std::accumulate(demands.begin(), demands.end(), 0.0);
  if (total <= 0.0) return shares;
  const double scale = std::min(1.0, 1.0 / total);
  for (std::size_t i = 0; i < n; ++i) {
    shares[i] = std::max(demands[i], 0.0) * (total > 1.0 ? scale : 1.0);
    shares[i] = std::min(shares[i], std::max(demands[i], 0.0));
  }
  return shares;
}

}  // namespace dlte::spectrum
