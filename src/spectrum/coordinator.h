// PeerCoordinator: the dLTE X2-over-Internet agent, one per AP.
//
// §4.3's operational model made concrete: after the registry hands an AP
// the membership of its RF contention domain, the coordinators exchange
// extended-X2 messages over the backhaul Internet path (no carrier core
// in the loop — the Fig. 1 contrast). Each reporting period every member
// broadcasts a DltePeerStatus; the lowest ApId acts as round leader,
// computes the share vector (max-min fair, or demand-proportional when
// every member opted into cooperative mode), and broadcasts a
// DlteShareProposal, which members apply to their MAC's PRB quota and
// acknowledge. "Aside from selecting the mode, all optimization and day
// to day management is automated."
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "common/ids.h"
#include "lte/x2ap.h"
#include "mac/lte_cell_mac.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace dlte::spectrum {

// Network protocol tag for X2 traffic.
inline constexpr std::uint16_t kX2Protocol = 0x5832;  // "X2".

struct CoordinatorConfig {
  ApId ap;
  lte::DlteMode mode{lte::DlteMode::kFairShare};
  Duration report_period{Duration::seconds(1.0)};
};

struct CoordinatorStats {
  std::uint64_t messages_sent{0};
  std::uint64_t bytes_sent{0};
  std::uint64_t messages_received{0};
  std::uint64_t rounds_led{0};
  std::uint64_t shares_applied{0};
};

class PeerCoordinator {
 public:
  PeerCoordinator(sim::Simulator& sim, net::Network& net, NodeId node,
                  CoordinatorConfig config);
  // Unregisters the node's X2 handler: a torn-down AP must not leave a
  // dangling callback behind in the network.
  ~PeerCoordinator();
  PeerCoordinator(const PeerCoordinator&) = delete;
  PeerCoordinator& operator=(const PeerCoordinator&) = delete;

  // The cell whose PRB quota this coordinator manages (optional: C7
  // measures pure protocol overhead without a cell attached).
  void attach_cell(mac::LteCellMac* cell) { cell_ = cell; }

  void add_peer(ApId ap, NodeId node);
  // Announce ourselves to all known peers (the joining AP's side of
  // organic expansion); receivers add us to their peer set automatically.
  void send_hello(const std::string& operator_contact);
  void set_offered_load(double load) { offered_load_ = load; }
  void set_mode(lte::DlteMode mode);

  // Begin periodic status reporting + share rounds.
  void start();

  // Cooperative-mode handover transport: X2 handover messages ride the
  // same peer links. The owner (core::HandoverManager) registers a sink;
  // unhandled X2 kinds are silently dropped as before.
  using HandoverSink =
      std::function<void(const lte::X2Message&, NodeId from)>;
  void set_handover_sink(HandoverSink sink) {
    handover_sink_ = std::move(sink);
  }
  // Send an arbitrary X2 message to a peer AP (by id) or node.
  bool send_to_peer(ApId peer, const lte::X2Message& message);
  void send_to_node(NodeId node, const lte::X2Message& message) {
    send_to(node, message);
  }
  [[nodiscard]] std::optional<NodeId> peer_node(ApId peer) const;

  // Observe every applied share change (tracing/metrics hook).
  void set_share_observer(std::function<void(double)> observer) {
    share_observer_ = std::move(observer);
  }

  [[nodiscard]] double current_share() const { return current_share_; }
  [[nodiscard]] const CoordinatorStats& stats() const { return stats_; }
  [[nodiscard]] lte::DlteMode mode() const { return config_.mode; }
  [[nodiscard]] ApId ap() const { return config_.ap; }
  [[nodiscard]] std::size_t peer_count() const { return peers_.size(); }
  // Latest status heard from a peer (used by cooperative client
  // assignment in core/).
  [[nodiscard]] const lte::DltePeerStatus* peer_status(ApId ap) const;

 private:
  void on_packet(const net::Packet& packet);
  void send_to(NodeId node, const lte::X2Message& message);
  void broadcast(const lte::X2Message& message);
  void report_status();
  void maybe_lead_round();
  [[nodiscard]] bool is_leader() const;
  void apply_share(double share);

  sim::Simulator& sim_;
  net::Network& net_;
  NodeId node_;
  CoordinatorConfig config_;
  mac::LteCellMac* cell_{nullptr};
  // Demand defaults to "full": an AP that never reports its load must not
  // be allocated zero spectrum by its own coordinator.
  double offered_load_{1.0};
  double current_share_{1.0};
  std::uint32_t round_{0};
  bool started_{false};

  sim::Simulator::PeriodicHandle ticker_;
  std::map<ApId, NodeId> peers_;
  std::map<ApId, lte::DltePeerStatus> latest_status_;
  HandoverSink handover_sink_;
  std::function<void(double)> share_observer_;
  CoordinatorStats stats_;
};

}  // namespace dlte::spectrum
