// PeerCoordinator: the dLTE X2-over-Internet agent, one per AP.
//
// §4.3's operational model made concrete: after the registry hands an AP
// the membership of its RF contention domain, the coordinators exchange
// extended-X2 messages over the backhaul Internet path (no carrier core
// in the loop — the Fig. 1 contrast). Each reporting period every member
// broadcasts a DltePeerStatus; the lowest ApId acts as round leader,
// computes the share vector (max-min fair, or demand-proportional when
// every member opted into cooperative mode), and broadcasts a
// DlteShareProposal, which members apply to their MAC's PRB quota and
// acknowledge. "Aside from selecting the mode, all optimization and day
// to day management is automated."
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/ids.h"
#include "lte/x2ap.h"
#include "mac/lte_cell_mac.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace dlte::spectrum {

// Network protocol tag for X2 traffic.
inline constexpr std::uint16_t kX2Protocol = 0x5832;  // "X2".

struct CoordinatorConfig {
  ApId ap;
  lte::DlteMode mode{lte::DlteMode::kFairShare};
  Duration report_period{Duration::seconds(1.0)};
  // Declare a peer dead after silence for this long and recompute shares
  // without it (survivors reclaim its spectrum). Zero disables liveness
  // tracking (a silent peer holds its share forever — the pre-fault
  // behaviour).
  Duration peer_liveness_timeout{Duration::seconds(3.5)};
};

struct CoordinatorStats {
  std::uint64_t messages_sent{0};
  std::uint64_t bytes_sent{0};
  std::uint64_t messages_received{0};
  std::uint64_t rounds_led{0};
  std::uint64_t shares_applied{0};
  std::uint64_t peers_expired{0};       // Declared dead by liveness timeout.
  std::uint64_t x2_drops_injected{0};   // Lost to injected impairment.
  std::uint64_t x2_dups_injected{0};    // Duplicated by injected impairment.
  std::uint64_t mode_rejects{0};        // Refused coexistence-mode switches.
};

// Injected X2 impairment (src/fault): each outbound message is dropped
// with probability `drop` or sent twice with probability `duplicate`.
struct X2Impairment {
  double drop{0.0};
  double duplicate{0.0};
};

class PeerCoordinator {
 public:
  PeerCoordinator(sim::Simulator& sim, net::Network& net, NodeId node,
                  CoordinatorConfig config);
  // Unregisters the node's X2 handler: a torn-down AP must not leave a
  // dangling callback behind in the network.
  ~PeerCoordinator();
  PeerCoordinator(const PeerCoordinator&) = delete;
  PeerCoordinator& operator=(const PeerCoordinator&) = delete;

  // The cell whose PRB quota this coordinator manages (optional: C7
  // measures pure protocol overhead without a cell attached).
  void attach_cell(mac::LteCellMac* cell) { cell_ = cell; }

  void add_peer(ApId ap, NodeId node);
  // Announce ourselves to all known peers (the joining AP's side of
  // organic expansion); receivers add us to their peer set automatically.
  void send_hello(const std::string& operator_contact);
  void set_offered_load(double load) { offered_load_ = load; }

  // Switch coordination mode. Coexistence modes (kLbt, kDutyCycle) are
  // only legal on a band the registry reports as shared with live WiFi
  // occupants (set_wifi_occupants); switching blind would silently stop
  // X2 share rounds with nobody on the air to defer to. A refused switch
  // leaves the mode unchanged, bumps stats().mode_rejects, and counts on
  // the `<prefix>spectrum.mode_rejects` counter. Returns whether the
  // switch was applied.
  bool set_mode(lte::DlteMode mode);

  // WiFi occupancy of this AP's granted band, as learned from the
  // registry (Registry::wifi_occupants) or a site survey. Gates the
  // coexistence modes above.
  void set_wifi_occupants(std::size_t occupants) {
    wifi_occupants_ = occupants;
  }
  [[nodiscard]] std::size_t wifi_occupants() const { return wifi_occupants_; }

  // Begin periodic status reporting + share rounds.
  void start();

  // Cooperative-mode handover transport: X2 handover messages ride the
  // same peer links. The owner (core::HandoverManager) registers a sink;
  // unhandled X2 kinds are silently dropped as before.
  using HandoverSink =
      std::function<void(const lte::X2Message&, NodeId from)>;
  void set_handover_sink(HandoverSink sink) {
    handover_sink_ = std::move(sink);
  }
  // Send an arbitrary X2 message to a peer AP (by id) or node.
  bool send_to_peer(ApId peer, const lte::X2Message& message);
  void send_to_node(NodeId node, const lte::X2Message& message) {
    send_to(node, message);
  }
  [[nodiscard]] std::optional<NodeId> peer_node(ApId peer) const;

  // Observe every applied share change (tracing/metrics hook).
  void set_share_observer(std::function<void(double)> observer) {
    share_observer_ = std::move(observer);
  }
  // Observe peers declared dead by the liveness timeout.
  void set_peer_loss_observer(std::function<void(ApId)> observer) {
    peer_loss_observer_ = std::move(observer);
  }

  // --- Fault hooks (src/fault) -----------------------------------------
  // A crashed AP's coordinator goes silent: it neither sends nor receives
  // until brought back online. Peers notice via the liveness timeout.
  void set_offline(bool offline) { offline_ = offline; }
  [[nodiscard]] bool offline() const { return offline_; }
  // Drop/duplicate outbound X2 messages (coordination-plane loss).
  void set_impairment(X2Impairment impairment) { impairment_ = impairment; }

  [[nodiscard]] double current_share() const { return current_share_; }
  [[nodiscard]] const CoordinatorStats& stats() const { return stats_; }
  [[nodiscard]] lte::DlteMode mode() const { return config_.mode; }
  [[nodiscard]] ApId ap() const { return config_.ap; }
  [[nodiscard]] std::size_t peer_count() const { return peers_.size(); }
  // Latest status heard from a peer (used by cooperative client
  // assignment in core/).
  [[nodiscard]] const lte::DltePeerStatus* peer_status(ApId ap) const;

  // Export X2 coordination counters under `<prefix>x2.*`, including
  // grant churn (share changes that actually moved the PRB quota).
  void set_metrics(obs::MetricsRegistry* registry,
                   const std::string& prefix = "");

  // Causal tracing: when this coordinator leads a round it opens an
  // "x2_round" span (category `<prefix>x2`) covering proposal broadcast
  // through the last peer's DlteShareAccept; peers annotate the leader's
  // span via the shared tracer's stash under span_key("x2_round", round).
  void set_tracer(obs::SpanTracer* tracer, const std::string& prefix = "");

 private:
  void on_packet(const net::Packet& packet);
  void send_to(NodeId node, const lte::X2Message& message);
  void broadcast(const lte::X2Message& message);
  void report_status();
  void maybe_lead_round();
  void expire_dead_peers();
  void note_heard(ApId ap);
  [[nodiscard]] bool is_leader() const;
  void apply_share(double share);
  // Closes the led round's span (all accepts in, or superseded/offline).
  void close_round_span(const char* result);

  sim::Simulator& sim_;
  net::Network& net_;
  NodeId node_;
  CoordinatorConfig config_;
  mac::LteCellMac* cell_{nullptr};
  // Demand defaults to "full": an AP that never reports its load must not
  // be allocated zero spectrum by its own coordinator.
  double offered_load_{1.0};
  double current_share_{1.0};
  std::size_t wifi_occupants_{0};
  std::uint32_t round_{0};
  bool started_{false};

  sim::Simulator::PeriodicHandle ticker_;
  std::map<ApId, NodeId> peers_;
  std::map<ApId, lte::DltePeerStatus> latest_status_;
  std::map<ApId, TimePoint> last_heard_;
  HandoverSink handover_sink_;
  std::function<void(double)> share_observer_;
  std::function<void(ApId)> peer_loss_observer_;
  bool offline_{false};
  X2Impairment impairment_{};
  sim::RngStream impair_rng_;
  CoordinatorStats stats_;

  obs::SpanTracer* tracer_{nullptr};
  std::string span_cat_{"x2"};
  // Led-round span state: open until every proposal recipient accepted
  // (a set, so injected duplicate accepts cannot complete a round early).
  obs::SpanId round_span_{obs::kNoSpan};
  std::uint32_t round_span_round_{0};
  std::set<std::uint32_t> round_accepts_;
  std::size_t round_accepts_needed_{0};

  obs::Counter* m_messages_sent_{nullptr};
  obs::Counter* m_bytes_sent_{nullptr};
  obs::Counter* m_messages_received_{nullptr};
  obs::Counter* m_rounds_led_{nullptr};
  obs::Counter* m_shares_applied_{nullptr};
  obs::Counter* m_grant_churn_{nullptr};
  obs::Counter* m_peers_expired_{nullptr};
  obs::Counter* m_mode_rejects_{nullptr};
};

}  // namespace dlte::spectrum
