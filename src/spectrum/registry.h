// The open spectrum registry: licensing, peer discovery, key publication.
//
// §4.3: "a lightweight open public license database for peer discovery" —
// the registry ensures all transmitters in a band are known (killing the
// hidden-terminal problem at the planning level), records a contact for
// human recourse, and — in dLTE's open-identity flow — hosts published
// subscriber keys (§4.2). Three designs from the paper/related work are
// modelled, differing in query/commit latency and trust topology:
//
//   * Centralized SAS  — CBRS-style cloud service, fast, single operator.
//   * Federated        — DNS-like zone referral, one extra lookup hop.
//   * Blockchain       — no central trust; commits wait for a block.
//
// The registry holds state synchronously; latency is modelled at the
// async facade (request_grant / query_region) through the simulator.
#pragma once

#include <functional>
#include <map>
#include <queue>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/geo.h"
#include "common/ids.h"
#include "common/result.h"
#include "common/units.h"
#include "epc/hss.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "registry/cache.h"
#include "registry/spatial.h"
#include "sim/simulator.h"

namespace dlte::spectrum {

enum class RegistryKind { kCentralizedSas, kFederated, kBlockchain };

// Failure modes of the registry service itself (driven by src/fault).
// Each RegistryKind fails in its own characteristic way:
//   * kOffline — the whole service is unreachable (SAS cloud outage):
//     queries return nothing, grant requests and heartbeats fail.
//   * kCommitStall — reads still work but commits hang (a blockchain
//     registry whose chain has stopped producing blocks): grant requests
//     queue until the stall clears; queries and heartbeats are unaffected.
// A federated registry instead fails one *zone* at a time — see
// set_zone_offline()/zone_of().
enum class RegistryOutage { kNone, kOffline, kCommitStall };

// Typed heartbeat outcome: callers that react differently to "the
// registry was down" vs "the lease is gone" (the churn storm drops and
// re-applies only on kLapsed) branch on this, never on error-message
// text.
enum class HeartbeatOutcome { kRenewed, kUnreachable, kLapsed };

struct SpectrumGrant {
  GrantId id;
  ApId ap;
  Position location;
  Hertz center_frequency;
  Hertz bandwidth;
  PowerDbm max_eirp{PowerDbm{52.0}};
  // §4.3: "recourse for operators to resolve issues via such traditional
  // means as face to face discussion or email."
  std::string operator_contact;
  // §5: the Papua deployment runs under a permissive secondary-use
  // non-compete license.
  bool secondary_use{false};
  NodeId coordination_node;  // Where the AP's X2 agent is reachable.
  // SAS-style lease end; renewed by heartbeat. Zero ns = perpetual.
  TimePoint expires_at{};
  // Lease expired but still within the heartbeat grace period: the grant
  // remains visible (neighbours must still coordinate around it) but its
  // holder is expected to run at conservative power.
  bool degraded{false};
};

struct GrantRequest {
  ApId ap;
  Position location;
  Hertz center_frequency;
  Hertz bandwidth;
  PowerDbm max_eirp{PowerDbm{52.0}};
  std::string operator_contact;
  bool secondary_use{false};
  NodeId coordination_node;
};

struct RegistryLatency {
  Duration query{};
  Duration commit{};
};

// Characteristic service times per design (used by the facade and
// reported in the C6 registry sub-table).
[[nodiscard]] RegistryLatency registry_latency(RegistryKind kind);

// Predicted interference reach of a grant: the distance at which its
// signal falls to the -100 dBm coordination threshold under the rural
// model for its band. Grants whose reaches overlap are put in the same
// contention domain.
[[nodiscard]] double interference_range_m(const SpectrumGrant& grant);

class SpectrumChain;

class Registry {
 public:
  Registry(sim::Simulator& sim, RegistryKind kind);

  [[nodiscard]] RegistryKind kind() const { return kind_; }

  // Back a kBlockchain registry with a real chain: grants then commit by
  // block inclusion (latency = the chain's block interval) and every
  // grant/key leaves a tamper-evident record. Without a chain attached,
  // the blockchain variant falls back to the fixed latency model.
  void attach_chain(SpectrumChain* chain);
  [[nodiscard]] bool chain_backed() const { return chain_ != nullptr; }

  // --- Async facade (latency-modelled) ---------------------------------
  using GrantCallback = std::function<void(Result<SpectrumGrant>)>;
  using QueryCallback = std::function<void(std::vector<SpectrumGrant>)>;

  // Apply for a license. Open admission (§4.3): any conforming request is
  // granted; the only rejections are malformed requests (no contact — the
  // registry's recourse mechanism is mandatory).
  void request_grant(GrantRequest request, GrantCallback callback);

  // All grants whose interference reach touches the queried location.
  void query_region(Position location, QueryCallback callback);
  // Same, but with a requester identity for the hierarchical cache (the
  // federated design's per-requester local tier). With no cache attached
  // (or a non-federated registry) this is identical to query_region.
  void query_region_as(std::uint64_t requester, Position location,
                       QueryCallback callback);

  void revoke(GrantId id);

  // --- Lease lifecycle (CBRS-style heartbeats) --------------------------
  // Grants issued after this call carry a lease of `lifetime` and must be
  // renewed by heartbeat, or they lapse and vanish from queries — a dead
  // AP cannot haunt its neighbours' contention domains (§7's ecosystem-
  // health concern). Zero restores perpetual grants (the default).
  void set_grant_lifetime(Duration lifetime) { lifetime_ = lifetime; }
  [[nodiscard]] Duration grant_lifetime() const { return lifetime_; }
  [[nodiscard]] Status<> heartbeat(GrantId id);
  // Same renewal, but with the outcome as a typed value. heartbeat() is
  // a thin wrapper mapping this to a Status message.
  [[nodiscard]] HeartbeatOutcome heartbeat_outcome(GrantId id);
  // Grace period past lease expiry before a grant actually lapses. While
  // in grace the grant is listed as `degraded`; a heartbeat inside the
  // window fully renews it. This is what lets an AP survive a registry
  // outage shorter than the grace without losing its license.
  void set_heartbeat_grace(Duration grace) { grace_ = grace; }
  [[nodiscard]] Duration heartbeat_grace() const { return grace_; }
  // Drop lapsed grants now (also happens lazily inside queries).
  void prune_expired();
  [[nodiscard]] std::uint64_t grants_lapsed() const { return lapsed_; }

  // --- Outage injection (src/fault) ------------------------------------
  void set_outage(RegistryOutage outage);
  [[nodiscard]] RegistryOutage outage() const { return outage_; }
  // Federated zone failure: requests and queries whose location falls in
  // an offline zone fail; other zones keep working. Zones partition the
  // plane into a coarse grid (kZoneSizeM squares).
  void set_zone_offline(int zone, bool offline);
  [[nodiscard]] static int zone_of(Position location);
  // How long an unreachable registry takes to fail a request (client-side
  // request timeout).
  void set_failure_timeout(Duration timeout) { failure_timeout_ = timeout; }

  static constexpr double kZoneSizeM = 50'000.0;

  // --- Hierarchical cache (federated design, DESIGN.md §16) ------------
  // Attach a resolver hierarchy: federated query_region_as calls then
  // walk local → zone → root caches before the authoritative store, with
  // per-tier latency, and authoritative misses refill the tiers. The
  // cache observes staleness against per-zone membership versions that
  // this registry bumps on every grant/lapse/revoke.
  void attach_cache(registry::LeaseCache* cache) { cache_ = cache; }
  [[nodiscard]] registry::LeaseCache* cache() const { return cache_; }
  // Current membership version of the (exact, packed) zone holding
  // `location` — see registry::zone_key.
  [[nodiscard]] std::uint64_t zone_version(Position location) const;
  // Ids of all grants whose reach touches `zone`'s square, ascending —
  // the snapshot the cache serves for that zone.
  [[nodiscard]] registry::ZoneSnapshot zone_snapshot(std::int64_t zone) const;
  // Synchronous occupancy probe through the cache hierarchy (the churn
  // storm's query op): how many grants touch the zone of `location`,
  // served from whichever tier answers. A cache serve reports the
  // snapshot's membership (possibly stale — that is the point); an
  // authoritative serve counts live grants and refills the tiers, and a
  // shed serve counts live grants without refilling.
  struct ZoneOccupancy {
    registry::CacheTier tier{registry::CacheTier::kAuthoritative};
    bool stale{false};
    std::size_t grants{0};
  };
  [[nodiscard]] ZoneOccupancy zone_occupancy(std::uint64_t requester,
                                             Position location);

  // --- Unlicensed coexistence (DESIGN.md §12) --------------------------
  // Mark a band as unlicensed spectrum shared with WiFi: the registry
  // records how many WiFi BSSs are known to occupy the channel (site
  // survey or AFC-style database import). Grants on such a band carry no
  // exclusivity; coordinators consult wifi_occupants() before switching
  // into a coexistence access mode (PeerCoordinator::set_mode guard).
  void mark_band_shared(Hertz center_frequency, std::uint32_t wifi_occupants);
  [[nodiscard]] std::uint32_t wifi_occupants(Hertz center_frequency) const;

  // --- Synchronous accessors (no latency; used by tests/benches) -------
  [[nodiscard]] Result<SpectrumGrant> grant_now(GrantRequest request);
  [[nodiscard]] std::vector<SpectrumGrant> grants_near(
      Position location) const;
  // Count-only variant: same predicate as grants_near without
  // materializing (at 1M leases a dense region query can match tens of
  // thousands of grants; occupancy probes only want the number).
  [[nodiscard]] std::size_t count_grants_near(Position location) const;
  [[nodiscard]] std::vector<SpectrumGrant> contention_domain(
      const SpectrumGrant& grant) const;
  [[nodiscard]] std::size_t grant_count() const { return grants_.size(); }
  // Flat storage view (slot order is arbitrary: erase is swap-pop). The
  // C12 microbench scans this as the pre-index baseline.
  [[nodiscard]] const std::vector<SpectrumGrant>& grants() const {
    return grants_;
  }

  // Causal tracing: request_grant opens a "registry_grant" span that
  // covers request → callback (a commit-stalled request keeps its span
  // open across the whole stall), query_region a "registry_query" span,
  // heartbeat a zero-duration "registry_heartbeat" marker. Category is
  // `<prefix>registry`. Null-safe.
  void set_tracer(obs::SpanTracer* tracer, const std::string& prefix = "");

  // Health source (DESIGN.md §10): counters
  // `<prefix>registry.heartbeats_ok` / `.heartbeats_failed`,
  // `.grants_issued` / `.grant_failures`, `.grants_lapsed`, and gauges
  // `.outage_active` (0/1), `.stalled_commits`, `.active_grants`.
  // heartbeats_failed is the symptom SLO rules alert on during an
  // outage — the monitor watches what APs actually experience, not the
  // injector's intent. Null-safe.
  void set_metrics(obs::MetricsRegistry* metrics,
                   const std::string& prefix = "");

  // --- Open-identity key publication (§4.2) ----------------------------
  void publish_subscriber(const epc::PublishedKeys& keys);
  [[nodiscard]] Result<epc::PublishedKeys> lookup_subscriber(Imsi imsi) const;
  [[nodiscard]] const std::vector<epc::PublishedKeys>&
  published_subscribers() const {
    return published_;
  }
  [[nodiscard]] std::size_t published_subscriber_count() const {
    return published_.size();
  }

 private:
  [[nodiscard]] bool co_channel(const SpectrumGrant& a,
                                const SpectrumGrant& b) const;
  [[nodiscard]] bool reachable_for(Position location) const;
  // Grant machinery behind the traced facade; `span` survives the
  // commit-stall replay so the trace shows the stall as latency.
  void do_request_grant(GrantRequest request, GrantCallback callback,
                        obs::SpanId span);
  // interference_range_m memoized per (center frequency, EIRP): the
  // 60-step path-loss bisection is far too hot to run per grant per scan.
  [[nodiscard]] double cached_range_m(const SpectrumGrant& grant) const;
  // Remove slot `slot` from grants_ + every side index (swap-pop).
  void erase_slot(std::size_t slot);
  void bump_zone_version(Position location);
  // A grant past expires_at (but inside grace) is degraded; computed on
  // copy-out so the stored flag needs no O(n) refresh pass.
  [[nodiscard]] bool degraded_now(const SpectrumGrant& grant,
                                  TimePoint now) const {
    return grant.expires_at.ns() != 0 && grant.expires_at < now;
  }
  void serve_query(std::uint64_t requester, Position location,
                   QueryCallback callback, obs::SpanId span);

  sim::Simulator& sim_;
  RegistryKind kind_;
  SpectrumChain* chain_{nullptr};
  registry::LeaseCache* cache_{nullptr};
  Duration lifetime_{};  // Zero: perpetual grants.
  Duration grace_{};     // Zero: no grace — lapse exactly at expiry.
  std::vector<SpectrumGrant> grants_;
  // GrantId → slot in grants_; maintained by grant_now / erase_slot.
  std::unordered_map<std::uint64_t, std::size_t> slot_of_;
  // Zone-bucketed spatial index over the same grants (DESIGN.md §16).
  registry::SpatialIndex index_{kZoneSizeM};
  mutable std::map<std::pair<std::int64_t, std::int64_t>, double>
      range_cache_;  // (hz, milli-dBm) → interference reach.
  // Lazy min-heap of (lapse-due ns, grant id): heartbeat renewals only
  // move expires_at forward, so prune pops entries whose recorded due
  // has passed and re-queues any grant whose live due moved later —
  // mass expiry is O(k log n) instead of the old O(n²) erase loop.
  using ExpiryEntry = std::pair<std::int64_t, std::uint64_t>;
  std::priority_queue<ExpiryEntry, std::vector<ExpiryEntry>,
                      std::greater<ExpiryEntry>>
      expiry_;
  // Membership version per packed zone key (registry::zone_key); bumped
  // on grant/lapse/revoke so the cache can account staleness.
  std::unordered_map<std::int64_t, std::uint64_t> zone_versions_;
  // WiFi BSS count per shared band, keyed by center frequency in hertz.
  std::map<std::int64_t, std::uint32_t> shared_bands_;
  std::vector<epc::PublishedKeys> published_;
  std::unordered_map<std::uint64_t, std::size_t> imsi_slot_;
  std::uint64_t next_grant_{1};
  std::uint64_t lapsed_{0};

  obs::SpanTracer* tracer_{nullptr};
  std::string span_cat_{"registry"};

  // Remembered so attach_chain can wire the chain's batch metrics
  // whether set_metrics runs before or after it.
  obs::MetricsRegistry* metrics_{nullptr};
  std::string metrics_prefix_;

  obs::Counter* m_hb_ok_{nullptr};
  obs::Counter* m_hb_failed_{nullptr};
  obs::Counter* m_grants_issued_{nullptr};
  obs::Counter* m_grant_failures_{nullptr};
  obs::Counter* m_grants_lapsed_{nullptr};
  obs::Gauge* m_outage_active_{nullptr};
  obs::Gauge* m_stalled_commits_{nullptr};
  obs::Gauge* m_active_grants_{nullptr};

  RegistryOutage outage_{RegistryOutage::kNone};
  std::vector<int> offline_zones_;
  Duration failure_timeout_{Duration::seconds(2.0)};
  // Commits deferred by a kCommitStall outage, replayed on recovery.
  std::vector<std::function<void()>> stalled_commits_;
};

}  // namespace dlte::spectrum
