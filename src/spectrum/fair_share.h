// Fair time-frequency sharing: the allocation math of dLTE's default mode.
//
// §4.3: in fair-sharing mode APs "programatically coordinate the bare
// minimum of fair time-frequency sharing of the underlying RF resource …
// more efficiently achieving an equilibrium with similar fairness
// characteristics to what WiFi achieves today." The allocation is
// max-min fair (water-filling) over the APs' offered loads: lightly
// loaded APs get what they ask, the rest split the remainder equally —
// unlike CSMA, no airtime is burnt on collisions to find the split.
//
// Cooperative mode instead allocates proportionally to demand, modelling
// joint optimization that lets a busy AP borrow from an idle neighbor.
#pragma once

#include <span>
#include <vector>

namespace dlte::spectrum {

// Max-min fair split of one unit of spectrum across `demands` (each in
// [0, 1]). Returns one share per demand; sum(shares) ≤ 1, share_i ≤
// demand_i, and no share can grow without shrinking a smaller one.
[[nodiscard]] std::vector<double> max_min_fair_shares(
    std::span<const double> demands);

// Demand-proportional split (cooperative mode): share_i =
// demand_i / sum(demands), capped at demand_i, idle capacity unassigned.
[[nodiscard]] std::vector<double> proportional_shares(
    std::span<const double> demands);

}  // namespace dlte::spectrum
