// Default SLO rule set for the spectrum registry (DESIGN.md §10).
//
// The rules watch the *symptoms* the registry's clients experience —
// failed heartbeats, lapsed grants — not the fault injector's intent,
// so a real outage and an injected one look identical to the monitor.
#pragma once

#include <string>
#include <vector>

#include "obs/slo.h"

namespace dlte::spectrum {

// Rules over `<prefix>registry.*` metrics (see Registry::set_metrics),
// grouped under health scope `scope`:
//   * registry_outage  — heartbeat-failure rate must stay under
//     `max_heartbeat_failure_rate`/s over a 5 s window (fires within two
//     evaluations of an offline registry, resolves once failures drain
//     out of the window after heal).
//   * registry_grants_lapsing — lapse rate stays under the same bound:
//     leases only lapse when renewals stopped for longer than the grace.
std::vector<obs::SloRule> default_registry_slo_rules(
    const std::string& prefix = "", const std::string& scope = "registry",
    double max_heartbeat_failure_rate = 0.01);

}  // namespace dlte::spectrum
