#include "spectrum/registry.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/bytes.h"
#include "phy/propagation.h"
#include "spectrum/chain.h"

namespace dlte::spectrum {
namespace {
// Chain record payload for a grant: the fields an auditor needs.
std::vector<std::uint8_t> encode_grant_record(const GrantRequest& r) {
  ByteWriter w;
  w.u32(r.ap.value());
  w.f64(r.location.x_m);
  w.f64(r.location.y_m);
  w.f64(r.center_frequency.hz());
  w.f64(r.bandwidth.hz());
  w.f64(r.max_eirp.value());
  w.str(r.operator_contact);
  return w.take();
}

std::vector<std::uint8_t> encode_key_record(const epc::PublishedKeys& k) {
  ByteWriter w;
  w.u64(k.imsi.value());
  w.bytes(k.k);
  w.bytes(k.opc);
  return w.take();
}
}  // namespace
}  // namespace dlte::spectrum

namespace dlte::spectrum {

RegistryLatency registry_latency(RegistryKind kind) {
  switch (kind) {
    case RegistryKind::kCentralizedSas:
      // CBRS SAS-class cloud service.
      return {Duration::millis(50), Duration::millis(200)};
    case RegistryKind::kFederated:
      // DNS-like: one referral hop on top of the authoritative query.
      return {Duration::millis(120), Duration::millis(350)};
    case RegistryKind::kBlockchain:
      // Read from a local replica is cheap-ish; a commit waits for block
      // inclusion (Kotobi & Bilén-style chain, ~1 min block interval).
      return {Duration::millis(400), Duration::seconds(60.0)};
  }
  return {};
}

double interference_range_m(const SpectrumGrant& grant) {
  // Find where EIRP - pathloss = -100 dBm under the band's rural model.
  const auto model = phy::make_rural_model(grant.center_frequency);
  constexpr double kThresholdDbm = -100.0;
  double lo = 100.0, hi = 200'000.0;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    const phy::LinkGeometry geo{mid, 30.0, 1.5};
    const double rx =
        grant.max_eirp.value() -
        model->path_loss(grant.center_frequency, geo).value();
    if (rx > kThresholdDbm) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

Registry::Registry(sim::Simulator& sim, RegistryKind kind)
    : sim_(sim), kind_(kind) {}

void Registry::attach_chain(SpectrumChain* chain) {
  chain_ = chain;
  if (chain_ != nullptr) {
    chain_->set_metrics(metrics_, metrics_prefix_);
    chain_->start();
  }
}

bool Registry::co_channel(const SpectrumGrant& a,
                          const SpectrumGrant& b) const {
  const double half = (a.bandwidth.hz() + b.bandwidth.hz()) / 2.0;
  return std::abs(a.center_frequency.hz() - b.center_frequency.hz()) < half;
}

double Registry::cached_range_m(const SpectrumGrant& grant) const {
  // Sub-dBm EIRP differences don't matter for a reach bound; quantizing
  // to milli-dBm keys the memo exactly for the repeated (band, power)
  // pairs a deployment actually uses.
  const std::pair<std::int64_t, std::int64_t> key{
      static_cast<std::int64_t>(grant.center_frequency.hz()),
      static_cast<std::int64_t>(std::lround(grant.max_eirp.value() * 1000.0))};
  const auto it = range_cache_.find(key);
  if (it != range_cache_.end()) return it->second;
  const double range = interference_range_m(grant);
  range_cache_.emplace(key, range);
  return range;
}

void Registry::bump_zone_version(Position location) {
  ++zone_versions_[registry::zone_key(location, kZoneSizeM)];
}

std::uint64_t Registry::zone_version(Position location) const {
  const auto it =
      zone_versions_.find(registry::zone_key(location, kZoneSizeM));
  return it == zone_versions_.end() ? 0 : it->second;
}

Result<SpectrumGrant> Registry::grant_now(GrantRequest request) {
  if (request.operator_contact.empty()) {
    obs::inc(m_grant_failures_);
    return fail("grant requires an operator contact for recourse");
  }
  if (request.bandwidth.hz() <= 0.0) {
    obs::inc(m_grant_failures_);
    return fail("grant requires positive bandwidth");
  }
  SpectrumGrant g;
  g.id = GrantId{next_grant_++};
  g.ap = request.ap;
  g.location = request.location;
  g.center_frequency = request.center_frequency;
  g.bandwidth = request.bandwidth;
  g.max_eirp = request.max_eirp;
  g.operator_contact = request.operator_contact;
  g.secondary_use = request.secondary_use;
  g.coordination_node = request.coordination_node;
  if (!lifetime_.is_zero()) {
    g.expires_at = sim_.now() + lifetime_;
    expiry_.push({(g.expires_at + grace_).ns(), g.id.value()});
  }
  slot_of_[g.id.value()] = grants_.size();
  grants_.push_back(g);
  index_.insert(registry::SiteEntry{g.id.value(), g.location,
                                    cached_range_m(g),
                                    g.center_frequency.hz(),
                                    g.bandwidth.hz() / 2.0});
  bump_zone_version(g.location);
  obs::inc(m_grants_issued_);
  obs::set(m_active_grants_, static_cast<double>(grants_.size()));
  return g;
}

void Registry::erase_slot(std::size_t slot) {
  SpectrumGrant& g = grants_[slot];
  index_.erase(g.id.value(), g.location);
  bump_zone_version(g.location);
  slot_of_.erase(g.id.value());
  const std::size_t last = grants_.size() - 1;
  if (slot != last) {
    grants_[slot] = std::move(grants_[last]);
    slot_of_[grants_[slot].id.value()] = slot;
  }
  grants_.pop_back();
}

void Registry::set_tracer(obs::SpanTracer* tracer,
                          const std::string& prefix) {
  tracer_ = tracer;
  span_cat_ = prefix + "registry";
}

Status<> Registry::heartbeat(GrantId id) {
  switch (heartbeat_outcome(id)) {
    case HeartbeatOutcome::kRenewed:
      return {};
    case HeartbeatOutcome::kUnreachable:
      return fail("registry unreachable");
    case HeartbeatOutcome::kLapsed:
      break;
  }
  return fail("grant lapsed or unknown: re-apply");
}

HeartbeatOutcome Registry::heartbeat_outcome(GrantId id) {
  const HeartbeatOutcome outcome = [&] {
    if (outage_ == RegistryOutage::kOffline) {
      return HeartbeatOutcome::kUnreachable;
    }
    prune_expired();
    const auto it = slot_of_.find(id.value());
    if (it == slot_of_.end()) return HeartbeatOutcome::kLapsed;
    SpectrumGrant& g = grants_[it->second];
    // A federated registrar renews its own zone's leases: a heartbeat
    // into an offline zone fails like any other request there. The
    // lease itself keeps aging — if the zone comes back inside the
    // grace window, the next heartbeat fully renews it.
    if (!reachable_for(g.location)) return HeartbeatOutcome::kUnreachable;
    if (!lifetime_.is_zero()) g.expires_at = sim_.now() + lifetime_;
    g.degraded = false;
    return HeartbeatOutcome::kRenewed;
  }();
  obs::inc(outcome == HeartbeatOutcome::kRenewed ? m_hb_ok_ : m_hb_failed_);
  // Zero-duration marker: heartbeats are instantaneous in the model, but
  // their cadence and failures belong in the trace.
  const obs::SpanId span =
      obs::span_begin(tracer_, "registry_heartbeat", span_cat_);
  obs::span_annotate(tracer_, span, "grant", std::to_string(id.value()));
  obs::span_annotate(tracer_, span, "result",
                     outcome == HeartbeatOutcome::kRenewed ? "renewed"
                     : outcome == HeartbeatOutcome::kUnreachable
                         ? "registry unreachable"
                         : "grant lapsed or unknown: re-apply");
  obs::span_end(tracer_, span);
  return outcome;
}

void Registry::prune_expired() {
  // Leases expire in two steps: past `expires_at` the grant is merely
  // degraded (reported on copy-out, holder expected at conservative
  // power); past `expires_at + grace` it lapses for good. The lazy heap
  // makes mass expiry O(lapsed · log n): a popped entry whose recorded
  // due predates a heartbeat renewal is simply re-queued at the live due.
  const TimePoint now = sim_.now();
  std::uint64_t lapsed_now = 0;
  while (!expiry_.empty() && expiry_.top().first < now.ns()) {
    const ExpiryEntry entry = expiry_.top();
    expiry_.pop();
    const auto it = slot_of_.find(entry.second);
    if (it == slot_of_.end()) continue;  // Revoked since queued.
    const SpectrumGrant& g = grants_[it->second];
    if (g.expires_at.ns() == 0) continue;  // Became perpetual.
    const std::int64_t due = (g.expires_at + grace_).ns();
    if (due < now.ns()) {
      erase_slot(it->second);
      ++lapsed_now;
    } else {
      expiry_.push({due, entry.second});
    }
  }
  if (lapsed_now > 0) {
    lapsed_ += lapsed_now;
    obs::inc(m_grants_lapsed_, lapsed_now);
    obs::set(m_active_grants_, static_cast<double>(grants_.size()));
  }
}

int Registry::zone_of(Position location) {
  const int zx = static_cast<int>(std::floor(location.x_m / kZoneSizeM));
  const int zy = static_cast<int>(std::floor(location.y_m / kZoneSizeM));
  // Interleave into a single id; fine for the handful of zones a scenario
  // touches (collisions would only merge two zones' failure domains).
  return zx * 73'856'093 + zy * 19'349'663;
}

bool Registry::reachable_for(Position location) const {
  if (outage_ == RegistryOutage::kOffline) return false;
  if (kind_ == RegistryKind::kFederated &&
      std::find(offline_zones_.begin(), offline_zones_.end(),
                zone_of(location)) != offline_zones_.end()) {
    return false;
  }
  return true;
}

void Registry::set_zone_offline(int zone, bool offline) {
  const auto it =
      std::find(offline_zones_.begin(), offline_zones_.end(), zone);
  if (offline && it == offline_zones_.end()) {
    offline_zones_.push_back(zone);
  } else if (!offline && it != offline_zones_.end()) {
    offline_zones_.erase(it);
  }
}

void Registry::mark_band_shared(Hertz center_frequency,
                                std::uint32_t wifi_occupants) {
  shared_bands_[static_cast<std::int64_t>(center_frequency.hz())] =
      wifi_occupants;
}

std::uint32_t Registry::wifi_occupants(Hertz center_frequency) const {
  const auto it =
      shared_bands_.find(static_cast<std::int64_t>(center_frequency.hz()));
  return it == shared_bands_.end() ? 0 : it->second;
}

void Registry::set_outage(RegistryOutage outage) {
  const RegistryOutage previous = outage_;
  outage_ = outage;
  obs::set(m_outage_active_, outage == RegistryOutage::kNone ? 0.0 : 1.0);
  if (previous == RegistryOutage::kCommitStall &&
      outage != RegistryOutage::kCommitStall) {
    // The chain caught up / the service recovered: stalled commits land
    // now, in submission order. With a chain attached they queue into
    // the same open commit window, so a whole stalled batch commits at
    // the next block inclusion together.
    auto pending = std::move(stalled_commits_);
    stalled_commits_.clear();
    obs::set(m_stalled_commits_, 0.0);
    for (auto& commit : pending) commit();
  }
}

void Registry::request_grant(GrantRequest request, GrantCallback callback) {
  const obs::SpanId span =
      obs::span_begin(tracer_, "registry_grant", span_cat_);
  obs::span_annotate(tracer_, span, "ap", std::to_string(request.ap.value()));
  if (span != obs::kNoSpan) {
    // The span closes when the caller learns the outcome, so its duration
    // is the full request→callback latency (stalls and all).
    callback = [this, span,
                cb = std::move(callback)](Result<SpectrumGrant> result) {
      obs::span_annotate(tracer_, span, "result",
                         result ? "grant " + std::to_string(result->id.value())
                                : "failed: " + result.error());
      obs::span_end(tracer_, span);
      cb(std::move(result));
    };
  }
  do_request_grant(std::move(request), std::move(callback), span);
}

void Registry::do_request_grant(GrantRequest request, GrantCallback callback,
                                obs::SpanId span) {
  if (!reachable_for(request.location)) {
    obs::inc(m_grant_failures_);
    sim_.schedule(failure_timeout_, [callback = std::move(callback)] {
      callback(fail("registry unreachable"));
    });
    return;
  }
  if (outage_ == RegistryOutage::kCommitStall) {
    // Reads still work; the commit waits for the stall to clear, then
    // pays the normal commit latency on top. The span stays open across
    // the stall — the replay must not open a second one.
    obs::span_annotate(tracer_, span, "stalled",
                       "commit deferred: registry commit stall");
    stalled_commits_.push_back([this, span, request = std::move(request),
                                callback = std::move(callback)]() mutable {
      do_request_grant(std::move(request), std::move(callback), span);
    });
    obs::set(m_stalled_commits_, static_cast<double>(stalled_commits_.size()));
    return;
  }
  if (kind_ == RegistryKind::kBlockchain && chain_ != nullptr) {
    // Commit-by-inclusion: the grant becomes effective when the record is
    // sealed into a block.
    auto record_payload = encode_grant_record(request);
    chain_->submit(
        ChainRecord{ChainRecordKind::kGrant, std::move(record_payload)},
        [this, request = std::move(request),
         callback = std::move(callback)](std::uint64_t) mutable {
          callback(grant_now(std::move(request)));
        });
    return;
  }
  const auto latency = registry_latency(kind_);
  sim_.schedule(latency.commit,
                [this, request = std::move(request),
                 callback = std::move(callback)]() mutable {
                  callback(grant_now(std::move(request)));
                });
}

std::vector<SpectrumGrant> Registry::grants_near(Position location) const {
  const_cast<Registry*>(this)->prune_expired();
  const TimePoint now = sim_.now();
  std::vector<SpectrumGrant> out;
  index_.for_each_reaching(location, [&](const registry::SiteEntry& entry) {
    out.push_back(grants_[slot_of_.at(entry.id)]);
    out.back().degraded = degraded_now(out.back(), now);
  });
  // Zone visit order is an index detail; GrantId order is the canonical
  // result order (and matches the old scan's insertion order as long as
  // nothing was revoked).
  std::sort(out.begin(), out.end(),
            [](const SpectrumGrant& a, const SpectrumGrant& b) {
              return a.id.value() < b.id.value();
            });
  return out;
}

std::size_t Registry::count_grants_near(Position location) const {
  const_cast<Registry*>(this)->prune_expired();
  std::size_t count = 0;
  index_.for_each_reaching(location,
                           [&](const registry::SiteEntry&) { ++count; });
  return count;
}

registry::ZoneSnapshot Registry::zone_snapshot(std::int64_t zone) const {
  const_cast<Registry*>(this)->prune_expired();
  auto ids = std::make_shared<std::vector<std::uint64_t>>();
  index_.for_each_touching_zone(zone, [&](const registry::SiteEntry& entry) {
    ids->push_back(entry.id);
  });
  std::sort(ids->begin(), ids->end());
  return ids;
}

Registry::ZoneOccupancy Registry::zone_occupancy(std::uint64_t requester,
                                                 Position location) {
  prune_expired();
  const std::int64_t zone = registry::zone_key(location, kZoneSizeM);
  if (cache_ == nullptr || kind_ != RegistryKind::kFederated) {
    return ZoneOccupancy{registry::CacheTier::kAuthoritative, false,
                         zone_snapshot(zone)->size()};
  }
  const std::uint64_t version = zone_version(location);
  const registry::CacheLookup look =
      cache_->lookup(requester, zone, version, sim_.now());
  if (look.snapshot != nullptr) {
    return ZoneOccupancy{look.tier, look.stale, look.snapshot->size()};
  }
  const registry::ZoneSnapshot snap = zone_snapshot(zone);
  if (look.tier == registry::CacheTier::kAuthoritative) {
    // A shed lookup takes the slow path *without* refilling: the root
    // refused the work, it didn't serve it.
    cache_->fill(requester, zone, version, snap, sim_.now());
  }
  return ZoneOccupancy{look.tier, false, snap->size()};
}

void Registry::query_region(Position location, QueryCallback callback) {
  query_region_as(0, location, std::move(callback));
}

void Registry::query_region_as(std::uint64_t requester, Position location,
                               QueryCallback callback) {
  const obs::SpanId span =
      obs::span_begin(tracer_, "registry_query", span_cat_);
  if (span != obs::kNoSpan) {
    callback = [this, span, cb = std::move(callback)](
                   std::vector<SpectrumGrant> grants) {
      obs::span_annotate(tracer_, span, "grants",
                         std::to_string(grants.size()));
      obs::span_end(tracer_, span);
      cb(std::move(grants));
    };
  }
  if (!reachable_for(location)) {
    // The querier can't tell "no grants" from "registry down" — exactly
    // the blindness the fault model wants to expose.
    obs::span_annotate(tracer_, span, "unreachable",
                       "registry down: empty reply after timeout");
    sim_.schedule(failure_timeout_, [callback = std::move(callback)] {
      callback({});
    });
    return;
  }
  serve_query(requester, location, std::move(callback), span);
}

void Registry::serve_query(std::uint64_t requester, Position location,
                           QueryCallback callback, obs::SpanId span) {
  const auto latency = registry_latency(kind_);
  if (cache_ == nullptr || kind_ != RegistryKind::kFederated) {
    sim_.schedule(latency.query, [this, location,
                                  callback = std::move(callback)] {
      callback(grants_near(location));
    });
    return;
  }
  prune_expired();
  const std::int64_t zone = registry::zone_key(location, kZoneSizeM);
  const std::uint64_t version = zone_version(location);
  const registry::CacheLookup look =
      cache_->lookup(requester, zone, version, sim_.now());
  if (look.snapshot != nullptr) {
    obs::span_annotate(tracer_, span, "cache",
                       registry::cache_tier_name(look.tier));
    sim_.schedule(
        cache_->tier_latency(look.tier),
        [this, location, snapshot = look.snapshot,
         callback = std::move(callback)] {
          // Resolve the cached membership against live grants at serve
          // time; ids that lapsed meanwhile simply drop out. Prune
          // first — lazy expiry means a lapsed grant may still sit in
          // slot_of_ until something sweeps it.
          prune_expired();
          const TimePoint now = sim_.now();
          std::vector<SpectrumGrant> out;
          for (const std::uint64_t id : *snapshot) {
            const auto it = slot_of_.find(id);
            if (it == slot_of_.end()) continue;
            const SpectrumGrant& g = grants_[it->second];
            if (distance_m(g.location, location) > cached_range_m(g)) {
              continue;
            }
            out.push_back(g);
            out.back().degraded = degraded_now(g, now);
          }
          callback(std::move(out));
        });
    return;
  }
  obs::span_annotate(tracer_, span, "cache",
                     registry::cache_tier_name(look.tier));
  const bool refill = look.tier == registry::CacheTier::kAuthoritative;
  sim_.schedule(latency.query, [this, requester, zone, location, refill,
                                callback = std::move(callback)] {
    auto out = grants_near(location);
    if (refill && cache_ != nullptr) {
      cache_->fill(requester, zone, zone_version(location),
                   zone_snapshot(zone), sim_.now());
    }
    callback(std::move(out));
  });
}

void Registry::revoke(GrantId id) {
  const auto it = slot_of_.find(id.value());
  if (it == slot_of_.end()) return;
  erase_slot(it->second);
  obs::set(m_active_grants_, static_cast<double>(grants_.size()));
}

void Registry::set_metrics(obs::MetricsRegistry* metrics,
                           const std::string& prefix) {
  metrics_ = metrics;
  metrics_prefix_ = prefix;
  if (chain_ != nullptr) chain_->set_metrics(metrics, prefix);
  if (metrics == nullptr) {
    m_hb_ok_ = nullptr;
    m_hb_failed_ = nullptr;
    m_grants_issued_ = nullptr;
    m_grant_failures_ = nullptr;
    m_grants_lapsed_ = nullptr;
    m_outage_active_ = nullptr;
    m_stalled_commits_ = nullptr;
    m_active_grants_ = nullptr;
    return;
  }
  m_hb_ok_ = &metrics->counter(prefix + "registry.heartbeats_ok");
  m_hb_failed_ = &metrics->counter(prefix + "registry.heartbeats_failed");
  m_grants_issued_ = &metrics->counter(prefix + "registry.grants_issued");
  m_grant_failures_ = &metrics->counter(prefix + "registry.grant_failures");
  m_grants_lapsed_ = &metrics->counter(prefix + "registry.grants_lapsed");
  m_outage_active_ = &metrics->gauge(prefix + "registry.outage_active");
  m_stalled_commits_ = &metrics->gauge(prefix + "registry.stalled_commits");
  m_active_grants_ = &metrics->gauge(prefix + "registry.active_grants");
  m_outage_active_->set(outage_ == RegistryOutage::kNone ? 0.0 : 1.0);
  m_stalled_commits_->set(static_cast<double>(stalled_commits_.size()));
  m_active_grants_->set(static_cast<double>(grants_.size()));
}

std::vector<SpectrumGrant> Registry::contention_domain(
    const SpectrumGrant& grant) const {
  const_cast<Registry*>(this)->prune_expired();
  const TimePoint now = sim_.now();
  const double own_range = cached_range_m(grant);
  std::vector<SpectrumGrant> out;
  index_.for_each_contending(
      grant.location, grant.center_frequency.hz(), grant.bandwidth.hz() / 2.0,
      own_range, grant.id.value(), [&](const registry::SiteEntry& entry) {
        out.push_back(grants_[slot_of_.at(entry.id)]);
        out.back().degraded = degraded_now(out.back(), now);
      });
  std::sort(out.begin(), out.end(),
            [](const SpectrumGrant& a, const SpectrumGrant& b) {
              return a.id.value() < b.id.value();
            });
  return out;
}

void Registry::publish_subscriber(const epc::PublishedKeys& keys) {
  if (chain_ != nullptr) {
    chain_->submit(
        ChainRecord{ChainRecordKind::kSubscriberKey, encode_key_record(keys)});
  }
  const auto it = imsi_slot_.find(keys.imsi.value());
  if (it != imsi_slot_.end()) {
    published_[it->second] = keys;
    return;
  }
  imsi_slot_[keys.imsi.value()] = published_.size();
  published_.push_back(keys);
}

Result<epc::PublishedKeys> Registry::lookup_subscriber(Imsi imsi) const {
  const auto it = imsi_slot_.find(imsi.value());
  if (it == imsi_slot_.end()) return fail("subscriber not published");
  return published_[it->second];
}

}  // namespace dlte::spectrum
