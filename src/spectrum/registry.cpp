#include "spectrum/registry.h"

#include <algorithm>
#include <cmath>

#include "common/bytes.h"
#include "phy/propagation.h"
#include "spectrum/chain.h"

namespace dlte::spectrum {
namespace {
// Chain record payload for a grant: the fields an auditor needs.
std::vector<std::uint8_t> encode_grant_record(const GrantRequest& r) {
  ByteWriter w;
  w.u32(r.ap.value());
  w.f64(r.location.x_m);
  w.f64(r.location.y_m);
  w.f64(r.center_frequency.hz());
  w.f64(r.bandwidth.hz());
  w.f64(r.max_eirp.value());
  w.str(r.operator_contact);
  return w.take();
}

std::vector<std::uint8_t> encode_key_record(const epc::PublishedKeys& k) {
  ByteWriter w;
  w.u64(k.imsi.value());
  w.bytes(k.k);
  w.bytes(k.opc);
  return w.take();
}
}  // namespace
}  // namespace dlte::spectrum

namespace dlte::spectrum {

RegistryLatency registry_latency(RegistryKind kind) {
  switch (kind) {
    case RegistryKind::kCentralizedSas:
      // CBRS SAS-class cloud service.
      return {Duration::millis(50), Duration::millis(200)};
    case RegistryKind::kFederated:
      // DNS-like: one referral hop on top of the authoritative query.
      return {Duration::millis(120), Duration::millis(350)};
    case RegistryKind::kBlockchain:
      // Read from a local replica is cheap-ish; a commit waits for block
      // inclusion (Kotobi & Bilén-style chain, ~1 min block interval).
      return {Duration::millis(400), Duration::seconds(60.0)};
  }
  return {};
}

double interference_range_m(const SpectrumGrant& grant) {
  // Find where EIRP - pathloss = -100 dBm under the band's rural model.
  const auto model = phy::make_rural_model(grant.center_frequency);
  constexpr double kThresholdDbm = -100.0;
  double lo = 100.0, hi = 200'000.0;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    const phy::LinkGeometry geo{mid, 30.0, 1.5};
    const double rx =
        grant.max_eirp.value() -
        model->path_loss(grant.center_frequency, geo).value();
    if (rx > kThresholdDbm) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

Registry::Registry(sim::Simulator& sim, RegistryKind kind)
    : sim_(sim), kind_(kind) {}

void Registry::attach_chain(SpectrumChain* chain) {
  chain_ = chain;
  if (chain_ != nullptr) chain_->start();
}

bool Registry::co_channel(const SpectrumGrant& a,
                          const SpectrumGrant& b) const {
  const double half = (a.bandwidth.hz() + b.bandwidth.hz()) / 2.0;
  return std::abs(a.center_frequency.hz() - b.center_frequency.hz()) < half;
}

Result<SpectrumGrant> Registry::grant_now(GrantRequest request) {
  if (request.operator_contact.empty()) {
    obs::inc(m_grant_failures_);
    return fail("grant requires an operator contact for recourse");
  }
  if (request.bandwidth.hz() <= 0.0) {
    obs::inc(m_grant_failures_);
    return fail("grant requires positive bandwidth");
  }
  SpectrumGrant g;
  g.id = GrantId{next_grant_++};
  g.ap = request.ap;
  g.location = request.location;
  g.center_frequency = request.center_frequency;
  g.bandwidth = request.bandwidth;
  g.max_eirp = request.max_eirp;
  g.operator_contact = request.operator_contact;
  g.secondary_use = request.secondary_use;
  g.coordination_node = request.coordination_node;
  if (!lifetime_.is_zero()) g.expires_at = sim_.now() + lifetime_;
  grants_.push_back(g);
  obs::inc(m_grants_issued_);
  obs::set(m_active_grants_, static_cast<double>(grants_.size()));
  return g;
}

void Registry::set_tracer(obs::SpanTracer* tracer,
                          const std::string& prefix) {
  tracer_ = tracer;
  span_cat_ = prefix + "registry";
}

Status<> Registry::heartbeat(GrantId id) {
  const Status<> status = [&]() -> Status<> {
    if (outage_ == RegistryOutage::kOffline) {
      return fail("registry unreachable");
    }
    prune_expired();
    for (auto& g : grants_) {
      if (g.id == id) {
        if (!lifetime_.is_zero()) g.expires_at = sim_.now() + lifetime_;
        g.degraded = false;
        return {};
      }
    }
    return fail("grant lapsed or unknown: re-apply");
  }();
  obs::inc(status ? m_hb_ok_ : m_hb_failed_);
  // Zero-duration marker: heartbeats are instantaneous in the model, but
  // their cadence and failures belong in the trace.
  const obs::SpanId span =
      obs::span_begin(tracer_, "registry_heartbeat", span_cat_);
  obs::span_annotate(tracer_, span, "grant", std::to_string(id.value()));
  obs::span_annotate(tracer_, span, "result",
                     status ? "renewed" : status.error());
  obs::span_end(tracer_, span);
  return status;
}

void Registry::prune_expired() {
  const TimePoint now = sim_.now();
  // Leases expire in two steps: past `expires_at` the grant is merely
  // degraded (still listed, holder expected at conservative power); past
  // `expires_at + grace` it lapses for good.
  const auto first_dead = std::remove_if(
      grants_.begin(), grants_.end(), [&](const SpectrumGrant& g) {
        return g.expires_at.ns() != 0 && g.expires_at + grace_ < now;
      });
  const auto lapsed_now =
      static_cast<std::uint64_t>(grants_.end() - first_dead);
  lapsed_ += lapsed_now;
  obs::inc(m_grants_lapsed_, lapsed_now);
  grants_.erase(first_dead, grants_.end());
  if (lapsed_now > 0) {
    obs::set(m_active_grants_, static_cast<double>(grants_.size()));
  }
  for (auto& g : grants_) {
    if (g.expires_at.ns() != 0 && g.expires_at < now) g.degraded = true;
  }
}

int Registry::zone_of(Position location) {
  const int zx = static_cast<int>(std::floor(location.x_m / kZoneSizeM));
  const int zy = static_cast<int>(std::floor(location.y_m / kZoneSizeM));
  // Interleave into a single id; fine for the handful of zones a scenario
  // touches (collisions would only merge two zones' failure domains).
  return zx * 73'856'093 + zy * 19'349'663;
}

bool Registry::reachable_for(Position location) const {
  if (outage_ == RegistryOutage::kOffline) return false;
  if (kind_ == RegistryKind::kFederated &&
      std::find(offline_zones_.begin(), offline_zones_.end(),
                zone_of(location)) != offline_zones_.end()) {
    return false;
  }
  return true;
}

void Registry::set_zone_offline(int zone, bool offline) {
  const auto it =
      std::find(offline_zones_.begin(), offline_zones_.end(), zone);
  if (offline && it == offline_zones_.end()) {
    offline_zones_.push_back(zone);
  } else if (!offline && it != offline_zones_.end()) {
    offline_zones_.erase(it);
  }
}

void Registry::mark_band_shared(Hertz center_frequency,
                                std::uint32_t wifi_occupants) {
  shared_bands_[static_cast<std::int64_t>(center_frequency.hz())] =
      wifi_occupants;
}

std::uint32_t Registry::wifi_occupants(Hertz center_frequency) const {
  const auto it =
      shared_bands_.find(static_cast<std::int64_t>(center_frequency.hz()));
  return it == shared_bands_.end() ? 0 : it->second;
}

void Registry::set_outage(RegistryOutage outage) {
  const RegistryOutage previous = outage_;
  outage_ = outage;
  obs::set(m_outage_active_, outage == RegistryOutage::kNone ? 0.0 : 1.0);
  if (previous == RegistryOutage::kCommitStall &&
      outage != RegistryOutage::kCommitStall) {
    // The chain caught up / the service recovered: stalled commits land
    // now, in submission order.
    auto pending = std::move(stalled_commits_);
    stalled_commits_.clear();
    obs::set(m_stalled_commits_, 0.0);
    for (auto& commit : pending) commit();
  }
}

void Registry::request_grant(GrantRequest request, GrantCallback callback) {
  const obs::SpanId span =
      obs::span_begin(tracer_, "registry_grant", span_cat_);
  obs::span_annotate(tracer_, span, "ap", std::to_string(request.ap.value()));
  if (span != obs::kNoSpan) {
    // The span closes when the caller learns the outcome, so its duration
    // is the full request→callback latency (stalls and all).
    callback = [this, span,
                cb = std::move(callback)](Result<SpectrumGrant> result) {
      obs::span_annotate(tracer_, span, "result",
                         result ? "grant " + std::to_string(result->id.value())
                                : "failed: " + result.error());
      obs::span_end(tracer_, span);
      cb(std::move(result));
    };
  }
  do_request_grant(std::move(request), std::move(callback), span);
}

void Registry::do_request_grant(GrantRequest request, GrantCallback callback,
                                obs::SpanId span) {
  if (!reachable_for(request.location)) {
    obs::inc(m_grant_failures_);
    sim_.schedule(failure_timeout_, [callback = std::move(callback)] {
      callback(fail("registry unreachable"));
    });
    return;
  }
  if (outage_ == RegistryOutage::kCommitStall) {
    // Reads still work; the commit waits for the stall to clear, then
    // pays the normal commit latency on top. The span stays open across
    // the stall — the replay must not open a second one.
    obs::span_annotate(tracer_, span, "stalled",
                       "commit deferred: registry commit stall");
    stalled_commits_.push_back([this, span, request = std::move(request),
                                callback = std::move(callback)]() mutable {
      do_request_grant(std::move(request), std::move(callback), span);
    });
    obs::set(m_stalled_commits_, static_cast<double>(stalled_commits_.size()));
    return;
  }
  if (kind_ == RegistryKind::kBlockchain && chain_ != nullptr) {
    // Commit-by-inclusion: the grant becomes effective when the record is
    // sealed into a block.
    auto record_payload = encode_grant_record(request);
    chain_->submit(
        ChainRecord{ChainRecordKind::kGrant, std::move(record_payload)},
        [this, request = std::move(request),
         callback = std::move(callback)](std::uint64_t) mutable {
          callback(grant_now(std::move(request)));
        });
    return;
  }
  const auto latency = registry_latency(kind_);
  sim_.schedule(latency.commit,
                [this, request = std::move(request),
                 callback = std::move(callback)]() mutable {
                  callback(grant_now(std::move(request)));
                });
}

std::vector<SpectrumGrant> Registry::grants_near(Position location) const {
  const_cast<Registry*>(this)->prune_expired();
  std::vector<SpectrumGrant> out;
  for (const auto& g : grants_) {
    if (distance_m(g.location, location) <= interference_range_m(g)) {
      out.push_back(g);
    }
  }
  return out;
}

void Registry::query_region(Position location, QueryCallback callback) {
  const obs::SpanId span =
      obs::span_begin(tracer_, "registry_query", span_cat_);
  if (span != obs::kNoSpan) {
    callback = [this, span, cb = std::move(callback)](
                   std::vector<SpectrumGrant> grants) {
      obs::span_annotate(tracer_, span, "grants",
                         std::to_string(grants.size()));
      obs::span_end(tracer_, span);
      cb(std::move(grants));
    };
  }
  if (!reachable_for(location)) {
    // The querier can't tell "no grants" from "registry down" — exactly
    // the blindness the fault model wants to expose.
    obs::span_annotate(tracer_, span, "unreachable",
                       "registry down: empty reply after timeout");
    sim_.schedule(failure_timeout_, [callback = std::move(callback)] {
      callback({});
    });
    return;
  }
  const auto latency = registry_latency(kind_);
  sim_.schedule(latency.query, [this, location,
                                callback = std::move(callback)] {
    callback(grants_near(location));
  });
}

void Registry::revoke(GrantId id) {
  grants_.erase(std::remove_if(grants_.begin(), grants_.end(),
                               [&](const SpectrumGrant& g) {
                                 return g.id == id;
                               }),
                grants_.end());
  obs::set(m_active_grants_, static_cast<double>(grants_.size()));
}

void Registry::set_metrics(obs::MetricsRegistry* metrics,
                           const std::string& prefix) {
  if (metrics == nullptr) {
    m_hb_ok_ = nullptr;
    m_hb_failed_ = nullptr;
    m_grants_issued_ = nullptr;
    m_grant_failures_ = nullptr;
    m_grants_lapsed_ = nullptr;
    m_outage_active_ = nullptr;
    m_stalled_commits_ = nullptr;
    m_active_grants_ = nullptr;
    return;
  }
  m_hb_ok_ = &metrics->counter(prefix + "registry.heartbeats_ok");
  m_hb_failed_ = &metrics->counter(prefix + "registry.heartbeats_failed");
  m_grants_issued_ = &metrics->counter(prefix + "registry.grants_issued");
  m_grant_failures_ = &metrics->counter(prefix + "registry.grant_failures");
  m_grants_lapsed_ = &metrics->counter(prefix + "registry.grants_lapsed");
  m_outage_active_ = &metrics->gauge(prefix + "registry.outage_active");
  m_stalled_commits_ = &metrics->gauge(prefix + "registry.stalled_commits");
  m_active_grants_ = &metrics->gauge(prefix + "registry.active_grants");
  m_outage_active_->set(outage_ == RegistryOutage::kNone ? 0.0 : 1.0);
  m_stalled_commits_->set(static_cast<double>(stalled_commits_.size()));
  m_active_grants_->set(static_cast<double>(grants_.size()));
}

std::vector<SpectrumGrant> Registry::contention_domain(
    const SpectrumGrant& grant) const {
  const_cast<Registry*>(this)->prune_expired();
  std::vector<SpectrumGrant> out;
  const double own_range = interference_range_m(grant);
  for (const auto& g : grants_) {
    if (g.id == grant.id) continue;
    if (!co_channel(grant, g)) continue;
    const double reach = std::max(own_range, interference_range_m(g));
    if (distance_m(g.location, grant.location) <= reach) {
      out.push_back(g);
    }
  }
  return out;
}

void Registry::publish_subscriber(const epc::PublishedKeys& keys) {
  if (chain_ != nullptr) {
    chain_->submit(
        ChainRecord{ChainRecordKind::kSubscriberKey, encode_key_record(keys)});
  }
  for (auto& existing : published_) {
    if (existing.imsi == keys.imsi) {
      existing = keys;
      return;
    }
  }
  published_.push_back(keys);
}

Result<epc::PublishedKeys> Registry::lookup_subscriber(Imsi imsi) const {
  for (const auto& k : published_) {
    if (k.imsi == imsi) return k;
  }
  return fail("subscriber not published");
}

}  // namespace dlte::spectrum
