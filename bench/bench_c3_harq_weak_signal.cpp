// Experiment C3 — §3.2: "hybrid ARQ increases throughput under weak
// signal conditions."
//
// Fixed-MCS link at swept SNR; three retransmission disciplines:
//   * HARQ, Chase combining (LTE): failed attempts accumulate energy.
//   * Plain repetition (same budget, no combining).
//   * Single shot (ARQ would re-queue at a higher layer, paying RTTs).
// Also an ablation over the HARQ transmission budget (1/2/4).
#include <iostream>
#include <string>

#include "bench_harness.h"
#include "common/table.h"
#include "phy/harq.h"
#include "phy/lte_amc.h"

int main() {
  using namespace dlte;

  print_bench_header(std::cout, "C3", "paper §3.2, LTE Waveform",
                     "HARQ with soft combining holds goodput at SNRs where "
                     "single-shot transmission collapses");
  dlte::bench::Harness harness{"c3_harq_weak_signal"};

  constexpr int kCqi = 7;  // Fixed MCS: 10%-BLER point at 5.9 dB.
  constexpr int kTrials = 4000;
  const double tbs = phy::transport_block_bits(kCqi, 50);

  TextTable t{{"SNR", "scheme", "delivery", "avg tx", "eff. goodput"}};
  for (double snr_db = -2.0; snr_db <= 10.0; snr_db += 1.0) {
    struct Scheme {
      const char* name;
      const char* slug;
      phy::HarqConfig config;
    };
    const Scheme schemes[] = {
        {"HARQ chase x4", "harq_chase_x4", {4, true}},
        {"repetition x4", "repetition_x4", {4, false}},
        {"single shot", "single_shot", {1, true}},
    };
    for (const auto& s : schemes) {
      phy::HarqProcess h{s.config,
                         sim::RngStream::derive(77, s.name)};
      int delivered = 0;
      long long tx_total = 0;
      for (int i = 0; i < kTrials; ++i) {
        const auto out = h.transmit_block(kCqi, Decibels{snr_db});
        delivered += out.delivered ? 1 : 0;
        tx_total += out.transmissions;
      }
      harness.metrics().counter("c3.trials").inc(kTrials);
      const double rate = static_cast<double>(delivered) / kTrials;
      const double avg_tx = static_cast<double>(tx_total) / kTrials;
      // Effective goodput: delivered bits per transmission slot used.
      const double goodput_mbps =
          rate * tbs / avg_tx * 1000.0 / 1e6;  // 1 ms subframes.
      // Headline gauges at the cell-edge operating point (2 dB).
      if (snr_db == 2.0) {
        const std::string p = std::string{"c3."} + s.slug + ".";
        harness.gauge(p + "delivery_pct", rate * 100.0);
        harness.gauge(p + "eff_goodput_mbps", goodput_mbps);
      }
      t.row()
          .num(snr_db, 1, "dB")
          .add(s.name)
          .num(rate * 100.0, 1, "%")
          .num(avg_tx, 2)
          .num(goodput_mbps, 2, "Mb/s");
    }
  }
  t.print(std::cout);

  std::cout << "\nAblation: HARQ budget at the cell-edge operating point "
               "(SNR = 2 dB, CQI 7):\n";
  TextTable a{{"max transmissions", "delivery", "eff. goodput"}};
  for (int max_tx : {1, 2, 3, 4, 6}) {
    phy::HarqProcess h{phy::HarqConfig{max_tx, true},
                       sim::RngStream::derive(78, std::to_string(max_tx))};
    int delivered = 0;
    long long tx_total = 0;
    for (int i = 0; i < kTrials; ++i) {
      const auto out = h.transmit_block(kCqi, Decibels{2.0});
      delivered += out.delivered ? 1 : 0;
      tx_total += out.transmissions;
    }
    const double rate = static_cast<double>(delivered) / kTrials;
    const double avg_tx = static_cast<double>(tx_total) / kTrials;
    harness.metrics().counter("c3.trials").inc(kTrials);
    harness.gauge("c3.budget" + std::to_string(max_tx) + ".delivery_pct",
                  rate * 100.0);
    a.row()
        .integer(max_tx)
        .num(rate * 100.0, 1, "%")
        .num(rate * tbs / avg_tx * 1000.0 / 1e6, 2, "Mb/s");
  }
  a.print(std::cout);
  return harness.finish(0);
}
