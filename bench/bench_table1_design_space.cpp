// Experiment T1 — Table 1: the wireless design space.
//
//                     Open Core              Closed Core
//   Unlicensed Radio  Legacy WiFi / Mesh     Enterprise WiFi / Private LTE
//   Licensed Radio    dLTE                   Telecom LTE / 5G
//
// The paper's table is qualitative; here each quadrant is *instantiated*
// on the same town (4 APs, 12 clients, same geography as C6) and measured
// on the axes the argument turns on: spectral performance (aggregate,
// fairness), service latency to the Internet, attach/join behaviour, and
// openness (can an outsider's AP join and coordinate?).
#include <algorithm>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_harness.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/enodeb.h"
#include "core/radio_env.h"
#include "core/s1_fabric.h"
#include "epc/epc.h"
#include "mac/lte_cell_mac.h"
#include "mac/wifi_dcf.h"
#include "phy/wifi_phy.h"
#include "spectrum/fair_share.h"
#include "ue/nas_client.h"

namespace {
using namespace dlte;

constexpr int kAps = 4;
const double kApX[kAps] = {0.0, 1200.0, 2400.0, 3600.0};
const int kUesPerAp[kAps] = {6, 2, 1, 3};

struct QuadrantResult {
  double aggregate_mbps{0.0};
  double fairness{0.0};
  double net_latency_ms{0.0};   // Client edge to public Internet.
  double attach_ms{0.0};        // Association/attach procedure.
  const char* open{""};
  const char* coordination{""};
};

std::vector<std::pair<Position, int>> place_ues() {
  std::vector<std::pair<Position, int>> out;
  for (int a = 0; a < kAps; ++a) {
    for (int u = 0; u < kUesPerAp[a]; ++u) {
      const double off = (u % 2 == 0 ? 1.0 : -1.0) * (150.0 + 90.0 * u);
      out.emplace_back(Position{kApX[a] + off, 200.0}, a);
    }
  }
  return out;
}

// LTE-family throughput with a given coordination discipline.
void lte_throughput(bool coordinated, QuadrantResult& r) {
  core::RadioEnvironment env;
  auto profile = phy::DeviceProfiles::lte_enb_rural();
  profile.bandwidth = Hertz::mhz(20.0);
  for (int a = 0; a < kAps; ++a) {
    env.add_cell(core::CellSiteConfig{
        CellId{static_cast<std::uint32_t>(a + 1)}, Position{kApX[a], 0.0},
        profile});
    if (coordinated) {
      env.set_coordinated(CellId{static_cast<std::uint32_t>(a + 1)}, true);
    }
  }
  std::vector<double> demands;
  for (int a = 0; a < kAps; ++a) demands.push_back(kUesPerAp[a] / 6.0);
  const auto shares = coordinated
                          ? spectrum::max_min_fair_shares(demands)
                          : std::vector<double>(kAps, 1.0);

  std::vector<std::unique_ptr<mac::LteCellMac>> cells;
  for (int a = 0; a < kAps; ++a) {
    mac::CellMacConfig mc;
    mc.bandwidth = Hertz::mhz(20.0);
    mc.prb_share = shares[static_cast<std::size_t>(a)];
    mc.seed = static_cast<std::uint64_t>(a + 7);
    cells.push_back(std::make_unique<mac::LteCellMac>(mc));
  }
  const auto ues = place_ues();
  for (std::size_t i = 0; i < ues.size(); ++i) {
    const CellId cell{static_cast<std::uint32_t>(ues[i].second + 1)};
    const Position pos = ues[i].first;
    const core::RadioEnvironment* envp = &env;
    cells[static_cast<std::size_t>(ues[i].second)]->add_ue(
        UeId{static_cast<std::uint32_t>(i + 1)},
        [envp, cell, pos] { return envp->downlink_sinr(cell, pos); },
        mac::UeTrafficConfig{.full_buffer = true});
  }
  std::vector<double> per_ue;
  for (auto& c : cells) c->run(Duration::seconds(2.0));
  for (auto& c : cells) {
    for (UeId id : c->ue_ids()) {
      per_ue.push_back(c->stats(id).goodput(c->elapsed()).to_mbps());
    }
  }
  for (double x : per_ue) r.aggregate_mbps += x;
  r.fairness = jain_fairness(per_ue);
}

// WiFi-family throughput: contended (legacy) or channel-planned
// (enterprise controller assigns orthogonal channels).
void wifi_throughput(bool channel_planned, QuadrantResult& r) {
  const phy::LogDistanceModel model{2.6};
  auto ap_prof = phy::DeviceProfiles::wifi_ap_outdoor();
  ap_prof.antenna_height_m = 10.0;
  const auto cl_prof = phy::DeviceProfiles::wifi_client();
  const auto ues = place_ues();

  std::vector<double> per_ue;
  if (channel_planned) {
    // Orthogonal channels: each AP contends only with itself.
    for (int a = 0; a < kAps; ++a) {
      Quantiles snrs;
      for (const auto& [pos, home] : ues) {
        if (home != a) continue;
        snrs.add(phy::link_snr(ap_prof, cl_prof, model, Hertz::ghz(2.4),
                               distance_m(Position{kApX[a], 0.0}, pos))
                     .value());
      }
      const int ri =
          std::max(0, phy::select_wifi_rate(Decibels{snrs.median()}));
      mac::DcfSimulator dcf{static_cast<std::uint64_t>(a + 1)};
      const int s = dcf.add_station(mac::DcfStationConfig{.rate_index = ri});
      dcf.run(Duration::seconds(2.0));
      const double mbps = dcf.stats(s).goodput(dcf.elapsed()).to_mbps();
      for (int u = 0; u < kUesPerAp[a]; ++u) {
        per_ue.push_back(mbps / kUesPerAp[a]);
      }
    }
  } else {
    mac::DcfSimulator dcf{99};
    for (int a = 0; a < kAps; ++a) {
      Quantiles snrs;
      for (const auto& [pos, home] : ues) {
        if (home != a) continue;
        snrs.add(phy::link_snr(ap_prof, cl_prof, model, Hertz::ghz(2.4),
                               distance_m(Position{kApX[a], 0.0}, pos))
                     .value());
      }
      dcf.add_station(mac::DcfStationConfig{
          .rate_index =
              std::max(0, phy::select_wifi_rate(Decibels{snrs.median()}))});
    }
    for (int i = 0; i < kAps; ++i) {
      for (int j = i + 1; j < kAps; ++j) {
        const double rx =
            phy::received_power(ap_prof, ap_prof, model, Hertz::ghz(2.4),
                                std::abs(kApX[i] - kApX[j]))
                .value();
        dcf.set_sensing(i, j, rx > -82.0);
      }
    }
    dcf.run(Duration::seconds(2.0));
    for (int a = 0; a < kAps; ++a) {
      const double mbps = dcf.stats(a).goodput(dcf.elapsed()).to_mbps();
      for (int u = 0; u < kUesPerAp[a]; ++u) {
        per_ue.push_back(mbps / kUesPerAp[a]);
      }
    }
  }
  for (double x : per_ue) r.aggregate_mbps += x;
  r.fairness = jain_fairness(per_ue);
}

// Measured attach against a local vs remote core (LTE quadrants).
double lte_attach_ms(bool remote, obs::MetricsRegistry* reg = nullptr,
                     const std::string& prefix = "") {
  sim::Simulator sim;
  sim.set_metrics(reg, prefix);
  net::Network net{sim};
  net.set_metrics(reg, prefix);
  crypto::Block128 op{};
  op[0] = 0xcd;
  crypto::Key128 k{};
  k[0] = 0x46;
  epc::EpcCore core{sim,
                    epc::EpcConfig{.deployment =
                                       remote
                                           ? epc::CoreDeployment::kCentralized
                                           : epc::CoreDeployment::kLocalStub,
                                   .network_id = "n"},
                    sim::RngStream{5}};
  core.set_metrics(reg, prefix);
  core::S1Fabric fabric{sim, core.mme()};
  core::EnodeB enb{sim, fabric, core::EnbConfig{.cell = CellId{1}}};
  if (remote) {
    const NodeId e = net.add_node("enb");
    const NodeId c = net.add_node("core");
    net.add_link(e, c, net::LinkConfig{DataRate::mbps(100.0),
                                       Duration::millis(25)});
    fabric.register_enb_networked(net, CellId{1}, e, c,
                                  [&](const lte::S1apMessage& m) {
                                    enb.on_s1ap(m);
                                  });
  } else {
    fabric.register_enb_direct(CellId{1}, Duration::micros(50),
                               [&](const lte::S1apMessage& m) {
                                 enb.on_s1ap(m);
                               });
  }
  core.hss().provision(Imsi{7}, k, op);
  ue::SimProfile p{Imsi{7}, k, crypto::derive_opc(k, op), true, "t"};
  ue::NasClient client{ue::Usim{p}, "n"};
  core::AttachOutcome out;
  enb.attach_ue(client, [&](core::AttachOutcome o) { out = o; });
  sim.run_all();
  return out.elapsed.to_millis();
}

}  // namespace

int main() {
  print_bench_header(std::cout, "T1", "paper Table 1",
                     "dLTE occupies the unexplored quadrant: licensed-radio "
                     "performance with open-core growth");
  dlte::bench::Harness harness{"table1_design_space"};

  QuadrantResult legacy_wifi;
  wifi_throughput(false, legacy_wifi);
  harness.add_sim_seconds(2.0);  // One contended DCF run.
  legacy_wifi.net_latency_ms = 15.0;  // Local ISP breakout.
  legacy_wifi.attach_ms = 50.0;       // WiFi association + DHCP.
  legacy_wifi.open = "yes";
  legacy_wifi.coordination = "none (CSMA only)";

  QuadrantResult enterprise;
  wifi_throughput(true, enterprise);
  harness.add_sim_seconds(2.0 * kAps);  // One DCF run per channel.
  enterprise.net_latency_ms = 15.0 + 10.0;  // Controller/gateway hop.
  enterprise.attach_ms = 60.0;              // 802.1X to central AAA.
  enterprise.open = "no";
  enterprise.coordination = "central controller";

  QuadrantResult telecom;
  lte_throughput(true, telecom);
  harness.add_sim_seconds(2.0 * kAps);  // One cell MAC per AP.
  telecom.net_latency_ms = 15.0 + 2.0 * 25.0;  // Trombone via EPC site.
  telecom.attach_ms = lte_attach_ms(true, &harness.metrics(), "t1.telecom.");
  telecom.open = "no";
  telecom.coordination = "carrier-planned";

  QuadrantResult dlte;
  lte_throughput(true, dlte);
  harness.add_sim_seconds(2.0 * kAps);
  dlte.net_latency_ms = 15.0;  // Local breakout.
  dlte.attach_ms = lte_attach_ms(false, &harness.metrics(), "t1.dlte.");
  dlte.open = "yes";
  dlte.coordination = "registry + peer X2";

  const struct {
    const char* slug;
    const QuadrantResult* q;
  } quadrants[] = {{"legacy_wifi", &legacy_wifi},
                   {"enterprise", &enterprise},
                   {"telecom", &telecom},
                   {"dlte", &dlte}};
  for (const auto& [slug, q] : quadrants) {
    const std::string p = std::string{"t1."} + slug + ".";
    harness.gauge(p + "aggregate_mbps", q->aggregate_mbps);
    harness.gauge(p + "fairness", q->fairness);
    harness.gauge(p + "net_latency_ms", q->net_latency_ms);
    harness.gauge(p + "attach_ms", q->attach_ms);
  }

  TextTable t{{"quadrant", "radio", "core", "aggregate", "Jain",
               "net latency", "attach", "new AP may join?",
               "coordination"}};
  t.row()
      .add("Legacy WiFi")
      .add("unlicensed")
      .add("open")
      .num(legacy_wifi.aggregate_mbps, 1, "Mb/s")
      .num(legacy_wifi.fairness, 3)
      .num(legacy_wifi.net_latency_ms, 0, "ms")
      .num(legacy_wifi.attach_ms, 0, "ms")
      .add(legacy_wifi.open)
      .add(legacy_wifi.coordination);
  t.row()
      .add("Enterprise WiFi / Private LTE")
      .add("unlicensed")
      .add("closed")
      .num(enterprise.aggregate_mbps, 1, "Mb/s")
      .num(enterprise.fairness, 3)
      .num(enterprise.net_latency_ms, 0, "ms")
      .num(enterprise.attach_ms, 0, "ms")
      .add(enterprise.open)
      .add(enterprise.coordination);
  t.row()
      .add("Telecom LTE")
      .add("licensed")
      .add("closed")
      .num(telecom.aggregate_mbps, 1, "Mb/s")
      .num(telecom.fairness, 3)
      .num(telecom.net_latency_ms, 0, "ms")
      .num(telecom.attach_ms, 0, "ms")
      .add(telecom.open)
      .add(telecom.coordination);
  t.row()
      .add("dLTE")
      .add("licensed")
      .add("open")
      .num(dlte.aggregate_mbps, 1, "Mb/s")
      .num(dlte.fairness, 3)
      .num(dlte.net_latency_ms, 0, "ms")
      .num(dlte.attach_ms, 0, "ms")
      .add(dlte.open)
      .add(dlte.coordination);
  t.print(std::cout);

  std::cout << "\nShape check: dLTE matches telecom LTE's coordinated "
               "spectral performance while\nkeeping legacy WiFi's openness "
               "and local-breakout latency — the empty quadrant\nof Table 1 "
               "is reachable.\n";
  return harness.finish(0);
}
