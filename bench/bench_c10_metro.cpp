// Experiment C10 — metro-scale dLTE on the engine hot path.
//
// The paper's economic argument (§1, §5) is that dLTE APs deploy like
// WiFi: thousands of cheap cells per metro instead of hundreds of towers.
// This bench holds the simulator to that scale: ~10k APs serving ~1M UEs
// run to completion in seconds, because the hot path spends events only
// where structure changes — attach waves in cohort batches, bulk traffic
// as flow trains (O(rate changes), not O(packets)), and a calendar queue
// that schedules/pops in O(1). The sweep runs the same scenario at 1, 2,
// and 4 shards, verifies IN PROCESS that the merged metrics are
// byte-identical and the event totals equal, and records the engine
// throughput (events/sec) the CI perf gate compares against
// bench/baselines/BENCH_c10_metro.json. With --shards=N
// [--par-artifacts=PREFIX] it instead runs one configuration and dumps
// its artifacts — the par-determinism drive mode.
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_harness.h"
#include "common/table.h"
#include "obs/audit_export.h"
#include "obs/prof.h"
#include "obs/prof_export.h"
#include "par/metro.h"

namespace {
using namespace dlte;

struct C10Options {
  int aps{10000};
  int ues_per_ap{100};
  double horizon_s{8.0};
};

C10Options parse_options(int argc, char** argv) {
  C10Options opt;
  constexpr const char kAps[] = "--aps=";
  constexpr const char kUes[] = "--ues-per-ap=";
  constexpr const char kHorizon[] = "--horizon-s=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kAps, sizeof(kAps) - 1) == 0) {
      const long n = std::atol(argv[i] + sizeof(kAps) - 1);
      if (n > 0) opt.aps = static_cast<int>(n);
    } else if (std::strncmp(argv[i], kUes, sizeof(kUes) - 1) == 0) {
      const long n = std::atol(argv[i] + sizeof(kUes) - 1);
      if (n > 0) opt.ues_per_ap = static_cast<int>(n);
    } else if (std::strncmp(argv[i], kHorizon, sizeof(kHorizon) - 1) == 0) {
      const double s = std::atof(argv[i] + sizeof(kHorizon) - 1);
      if (s > 0.0) opt.horizon_s = s;
    }
  }
  return opt;
}

par::MetroConfig metro_config(const C10Options& opt, std::size_t shards,
                              std::size_t threads) {
  par::MetroConfig cfg;
  cfg.aps = opt.aps;
  cfg.ues_per_ap = opt.ues_per_ap;
  cfg.shards = shards;
  cfg.threads = threads;
  cfg.seed = 42;
  cfg.horizon = Duration::seconds(opt.horizon_s);
  // Always profile: the attribution counters are deterministic (the
  // in-process sweep byte-compares them across shard counts) and keeping
  // the hooks hot means the perf gate's throughput floor prices their
  // overhead on every CI run.
  cfg.profile = true;
  // Always audit for the same reason: the digest fold is on the execute
  // hot path, so the throughput floor prices it too. Engine sampling
  // rides alone (domain sampling stays off at 10k APs).
  cfg.audit = true;
  cfg.engine_sample_interval = Duration::millis(500);
  return cfg;
}

struct RunOutput {
  par::MetroResult result;
  std::string metrics;
  std::string series;
  // Deterministic event-attribution section (dlte-prof-v1), merged
  // across shards — byte-compared like the metrics snapshot.
  std::string prof;
  // Partition-invariant merged audit section (dlte-audit-v1).
  std::string audit;
  obs::ProfileDoc doc;
  obs::AuditDoc audit_doc;
  double wall_s{0.0};
};

RunOutput run_once(const C10Options& opt, std::size_t shards,
                   std::size_t threads, dlte::bench::Harness* harness) {
  par::MetroScenario metro{metro_config(opt, shards, threads)};
  if (harness != nullptr) {
    metro.runtime().set_metrics(
        &harness->metrics(), "c10.s" + std::to_string(shards) + ".");
  }
  const auto start = std::chrono::steady_clock::now();
  RunOutput out;
  out.result = metro.run();
  out.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count();
  out.metrics = metro.metrics_json();
  out.series = metro.series_json("c10_metro");
  metro.runtime().merged_profiler_into(out.doc.attribution);
  out.doc.shard_profile = metro.runtime().profile();
  out.prof = obs::ProfExporter::event_attribution_json(out.doc.attribution);
  out.audit_doc = metro.runtime().audit_doc();
  out.audit = obs::AuditExporter::merged_json(out.audit_doc);
  return out;
}

bool write_text(const std::string& path, const std::string& text) {
  std::ofstream f{path, std::ios::binary | std::ios::trunc};
  f << text;
  return static_cast<bool>(f);
}
}  // namespace

int main(int argc, char** argv) {
  dlte::bench::Harness harness{"c10_metro"};
  harness.parse_args(argc, argv);
  const C10Options opt = parse_options(argc, argv);

  // Gate mode: one configuration, artifacts to files, no sweep.
  if (!harness.par_artifacts().empty()) {
    const std::size_t shards = harness.shards() == 0 ? 1 : harness.shards();
    RunOutput out = run_once(opt, shards, harness.par_threads(), &harness);
    harness.add_sim_seconds(out.result.sim_seconds);
    harness.timing("run_s" + std::to_string(shards), out.wall_s);
    harness.throughput(out.result.events_executed, out.wall_s);
    const std::string& prefix = harness.par_artifacts();
    bool ok = write_text(prefix + ".metrics.json", out.metrics);
    ok = write_text(prefix + ".series.json", out.series) && ok;
    // The deterministic attribution section is a compared artifact; the
    // full doc (wall-clock shard profile included) goes through
    // --prof-out, which is excluded from byte comparison.
    ok = write_text(prefix + ".prof.json", out.prof + "\n") && ok;
    ok = write_text(prefix + ".audit.json",
                    obs::AuditExporter::to_json(out.audit_doc, "c10_metro") +
                        "\n") &&
         ok;
    harness.set_profile(std::move(out.doc));
    harness.set_audit(std::move(out.audit_doc));
    std::cout << "C10 gate mode: shards=" << shards
              << " ues=" << out.result.ues_attached
              << " events=" << out.result.events_executed
              << " artifacts=" << prefix << ".*\n";
    if (!ok) std::cerr << "c10: failed to write artifacts\n";
    return harness.finish(ok ? 0 : 1);
  }

  print_bench_header(std::cout, "C10", "paper §1/§5, metro scale",
                     "a metro of cheap dLTE cells is cheap to simulate "
                     "too: ~1M UEs across ~10k APs in seconds, because "
                     "events track structure, not packets");

  TextTable t{{"shards", "ues", "flows", "events", "Mev/s", "wall",
               "speedup", "identical"}};
  RunOutput base;
  bool ok = true;
  for (const std::size_t shards : {1u, 2u, 4u}) {
    RunOutput out = run_once(opt, shards, shards, &harness);
    harness.add_sim_seconds(out.result.sim_seconds);
    harness.timing("run_s" + std::to_string(shards), out.wall_s);
    harness.throughput(out.result.events_executed, out.wall_s);
    bool identical = true;
    if (shards == 1) {
      // Export the merged attribution once (1-shard run): prof.* counters
      // are deterministic, so they belong in the compared "metrics".
      out.doc.attribution.export_metrics(harness.metrics());
      base = out;
    } else {
      identical = out.metrics == base.metrics &&
                  out.result.events_executed == base.result.events_executed &&
                  out.prof == base.prof &&
                  out.audit == base.audit;
      ok = ok && identical;
      harness.timing("speedup_s" + std::to_string(shards),
                     base.wall_s / out.wall_s);
    }
    // Last doc wins: --prof-out carries the widest partition's shard
    // profile (the interesting load matrix) with identical attribution.
    harness.set_profile(std::move(out.doc));
    harness.set_audit(std::move(out.audit_doc));
    const std::string prefix = "c10.s" + std::to_string(shards) + ".";
    harness.counter(prefix + "ues_attached", out.result.ues_attached);
    harness.counter(prefix + "flows_completed", out.result.flows_completed);
    harness.counter(prefix + "reports_rx", out.result.reports_rx);
    harness.counter(prefix + "events", out.result.events_executed);
    harness.counter(prefix + "identical", identical ? 1 : 0);
    t.row()
        .integer(static_cast<int>(shards))
        .integer(static_cast<int>(out.result.ues_attached))
        .integer(static_cast<int>(out.result.flows_completed))
        .integer(static_cast<int>(out.result.events_executed))
        .num(out.result.events_executed / out.wall_s / 1e6, 2)
        .num(out.wall_s * 1000.0, 1, "ms")
        .num(shards == 1 ? 1.0 : base.wall_s / out.wall_s, 2, "x")
        .add(identical ? "yes" : "NO");
  }
  t.print(std::cout);

  // Deterministic per-UE delivery check: every attached UE pulled its
  // configured volume.
  const double bytes_per_ue =
      base.result.ues_attached == 0
          ? 0.0
          : static_cast<double>(base.result.bytes_delivered) /
                static_cast<double>(base.result.ues_attached);
  harness.gauge("c10.bytes_per_ue", bytes_per_ue);
  harness.gauge("c10.aps", static_cast<double>(opt.aps));

  std::cout << "\nEvery sharded run's merged metrics, merged "
               "event-attribution profiles, AND merged audit digests are "
               "byte-compared against the 1-shard run in-process; event "
               "totals are partition-invariant by construction.\n"
            << "bytes_per_ue=" << bytes_per_ue
            << " (config: " << opt.aps << " APs x " << opt.ues_per_ap
            << " UEs)\n";
  if (!ok) std::cerr << "c10: sharded runs diverged from the 1-shard run\n";
  return harness.finish(ok ? 0 : 1);
}
