// Experiment F2 — Figure 2 + §5: the Papua prototype deployment.
//
// "The deployment cost less than $8000 in materials, including two
// commercial eNodeBs (for two sectors), two 15 dBi antennas, an off the
// shelf computer for the EPC, and cabling … One site covers the entire
// town" — LTE band 5 (850 MHz), permissive secondary-use license.
//
// We dimension that site with the link-budget machinery: rate vs
// distance per direction, the coverage radius (uplink-limited), and the
// cost per covered km² against a WiFi-based alternative built from the
// same catalogue of models.
#include <cmath>
#include <iostream>

#include "bench_harness.h"
#include "common/table.h"
#include "mac/lte_cell_mac.h"
#include "phy/link_budget.h"
#include "phy/lte_amc.h"
#include "phy/wifi_phy.h"

namespace {
using namespace dlte;

// §5 bill of materials (USD).
constexpr double kDlteSiteCost = 8000.0;
// WiFi alternative per-site cost: outdoor AP + mounting + power + local
// backhaul provisioning (documented modelling assumption; see DESIGN.md).
constexpr double kWifiSiteCost = 1100.0;

struct Coverage {
  double dl_radius_m{0.0};
  double ul_radius_m{0.0};
  [[nodiscard]] double radius_m() const {
    return std::min(dl_radius_m, ul_radius_m);
  }
};

Coverage lte_coverage(double dl_floor_mbps, double ul_floor_mbps) {
  const auto enb = phy::DeviceProfiles::lte_enb_rural();
  const auto ue = phy::DeviceProfiles::lte_ue();
  const auto model = phy::make_rural_model(Hertz::mhz(850.0));
  Coverage c;
  for (double d = 100.0; d <= 60'000.0; d += 100.0) {
    const auto dl = phy::link_snr(enb, ue, *model, Hertz::mhz(850.0), d);
    const auto ul = phy::link_snr(ue, enb, *model, Hertz::mhz(850.0), d);
    if (phy::peak_rate(dl, Hertz::mhz(10.0)).to_mbps() >= dl_floor_mbps) {
      c.dl_radius_m = d;
    }
    if (phy::peak_rate(ul, Hertz::mhz(10.0)).to_mbps() >= ul_floor_mbps) {
      c.ul_radius_m = d;
    }
  }
  return c;
}

double wifi_radius(double floor_mbps) {
  const auto ap = phy::DeviceProfiles::wifi_ap_outdoor();
  const auto cl = phy::DeviceProfiles::wifi_client();
  const auto model = phy::make_rural_model(Hertz::ghz(2.4));
  double best = 0.0;
  for (double d = 50.0; d <= 5'000.0; d += 50.0) {
    if (phy::beyond_ack_range(d)) break;
    const auto snr = phy::link_snr(ap, cl, *model, Hertz::ghz(2.4), d);
    const int ri = phy::select_wifi_rate(snr);
    if (ri < 0) continue;
    if (phy::wifi_rate(ri).phy_rate.to_mbps() * 0.6 >= floor_mbps) best = d;
  }
  return best;
}

}  // namespace

int main() {
  print_bench_header(std::cout, "F2", "paper Fig. 2 + §5",
                     "one sub-$8000 band-5 site covers a town that would "
                     "take a fleet of WiFi APs");
  dlte::bench::Harness harness{"fig2_deployment"};

  // Rate-vs-distance profile of the site.
  const auto enb = phy::DeviceProfiles::lte_enb_rural();
  const auto ue = phy::DeviceProfiles::lte_ue();
  const auto model = phy::make_rural_model(Hertz::mhz(850.0));
  TextTable t{{"distance", "DL SNR", "DL rate", "UL SNR", "UL rate"}};
  for (double d : {500.0, 1000.0, 2000.0, 4000.0, 6000.0, 8000.0, 12000.0,
                   16000.0, 20000.0}) {
    const auto dl = phy::link_snr(enb, ue, *model, Hertz::mhz(850.0), d);
    const auto ul = phy::link_snr(ue, enb, *model, Hertz::mhz(850.0), d);
    t.row()
        .num(d / 1000.0, 1, "km")
        .num(dl.value(), 1, "dB")
        .num(phy::peak_rate(dl, Hertz::mhz(10.0)).to_mbps(), 2, "Mb/s")
        .num(ul.value(), 1, "dB")
        .num(phy::peak_rate(ul, Hertz::mhz(10.0)).to_mbps(), 2, "Mb/s");
  }
  t.print(std::cout);

  // Dimensioning at a broadband service floor (DL 2 / UL 0.5 Mb/s).
  const Coverage cov = lte_coverage(2.0, 0.5);
  const double r_km = cov.radius_m() / 1000.0;
  const double area_km2 = M_PI * r_km * r_km;

  const double wifi_r_km = wifi_radius(2.0) / 1000.0;
  const double wifi_area = M_PI * wifi_r_km * wifi_r_km;
  const double wifi_sites = std::ceil(area_km2 / wifi_area);

  harness.gauge("f2.dlte.radius_km", r_km);
  harness.gauge("f2.dlte.area_km2", area_km2);
  harness.gauge("f2.dlte.capex_per_km2", kDlteSiteCost / area_km2);
  harness.gauge("f2.wifi.radius_km", wifi_r_km);
  harness.gauge("f2.wifi.sites", wifi_sites);
  harness.gauge("f2.wifi.capex_per_km2",
                wifi_sites * kWifiSiteCost / area_km2);

  std::cout << "\nSite dimensioning (service floor: DL 2 Mb/s, UL 0.5 "
               "Mb/s):\n";
  TextTable s{{"deployment", "radius", "area", "sites", "capex",
               "capex per km^2"}};
  s.row()
      .add("dLTE band-5 site (2 sectors)")
      .num(r_km, 2, "km")
      .num(area_km2, 1, "km^2")
      .integer(1)
      .num(kDlteSiteCost, 0, "$")
      .num(kDlteSiteCost / area_km2, 0, "$/km^2");
  s.row()
      .add("WiFi 2.4 GHz mesh equivalent")
      .num(wifi_r_km, 2, "km")
      .num(area_km2, 1, "km^2")
      .integer(static_cast<long long>(wifi_sites))
      .num(wifi_sites * kWifiSiteCost, 0, "$")
      .num(wifi_sites * kWifiSiteCost / area_km2, 0, "$/km^2");
  s.print(std::cout);

  // What the town actually gets: shared cell capacity at a typical mix of
  // user distances (uniform disc out to the coverage edge).
  mac::LteCellMac cell{mac::CellMacConfig{}};
  for (std::uint32_t i = 1; i <= 20; ++i) {
    const double d = cov.radius_m() * std::sqrt(i / 20.0);
    const Decibels snr =
        phy::link_snr(enb, ue, *model, Hertz::mhz(850.0), d);
    cell.add_ue(UeId{i}, [snr] { return snr; },
                mac::UeTrafficConfig{.full_buffer = true});
  }
  cell.run(Duration::seconds(2.0));
  harness.add_sim_seconds(2.0);
  double total = 0.0;
  for (UeId id : cell.ue_ids()) {
    total += cell.stats(id).goodput(cell.elapsed()).to_mbps();
  }
  harness.gauge("f2.shared_capacity_mbps", total);
  std::cout << "\nShared downlink capacity with 20 active users spread over "
               "the disc: "
            << total << " Mb/s ("
            << total / 20.0 << " Mb/s each under full load)\n";

  std::cout << "\nShape check: one LTE site covers ~" << area_km2
            << " km^2 vs ~" << wifi_area
            << " km^2 per WiFi AP; even at a fraction of the per-site "
               "cost,\nthe WiFi build needs "
            << wifi_sites
            << " powered, backhauled sites to match the town footprint.\n";
  return harness.finish(0);
}
