// Experiment C5 — §4.2 "Service Mobility".
//
// A UE drives down a road through a string of APs while streaming to an
// OTT service. Compared end to end:
//   * dLTE + QUIC-like : new address per AP; 0-RTT-capable transport
//                        migrates the connection (client-managed).
//   * dLTE + TCP-like  : the address change kills the connection; the
//                        application reconnects (2 RTTs) and resumes.
//   * centralized LTE  : MME-anchored handover hides the move (short
//                        radio interruption, no address change) — but
//                        every packet tromboned through the EPC site.
// Swept: UE speed (dwell time per AP) and OTT placement (core vs edge).
// The paper predicts its own breakdown regime: dLTE degrades once dwell
// time approaches the RTT to in-use OTT services; MME anchoring is the
// smoothest but pays the Fig.-1 trombone on every packet.
#include <algorithm>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_harness.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/enodeb.h"
#include "core/handover.h"
#include "core/s1_fabric.h"
#include "epc/epc.h"
#include "epc/gtp_plane.h"
#include "transport/transport.h"
#include "ue/mobility.h"
#include "ue/nas_client.h"
#include "workload/ott_service.h"

namespace {
using namespace dlte;

constexpr int kAps = 8;
constexpr double kSpacingM = 800.0;
constexpr double kStreamRate = 1.5e6 / 8.0;  // 1.5 Mb/s in bytes/s.

crypto::Key128 key_for(std::uint64_t imsi) {
  crypto::Key128 k{};
  for (std::size_t i = 0; i < 16; ++i) {
    k[i] = static_cast<std::uint8_t>(imsi + i);
  }
  return k;
}

// Measure the real dLTE re-attach time once (local core stub, full
// RRC + EPS-AKA dialogue): this is the radio-side outage at every AP
// change in the dLTE rows.
Duration measure_dlte_attach() {
  sim::Simulator sim;
  crypto::Block128 op{};
  op[0] = 0xcd;
  epc::EpcCore core{sim,
                    epc::EpcConfig{.deployment =
                                       epc::CoreDeployment::kLocalStub,
                                   .network_id = "n"},
                    sim::RngStream{5}};
  core::S1Fabric fabric{sim, core.mme()};
  core::EnodeB enb{sim, fabric, core::EnbConfig{.cell = CellId{1}}};
  fabric.register_enb_direct(CellId{1}, Duration::micros(50),
                             [&](const lte::S1apMessage& m) {
                               enb.on_s1ap(m);
                             });
  core.hss().provision(Imsi{42}, key_for(42), op);
  ue::SimProfile p{Imsi{42}, key_for(42), crypto::derive_opc(key_for(42), op),
                   true, "t"};
  ue::NasClient client{ue::Usim{p}, "n"};
  core::AttachOutcome out;
  enb.attach_ue(client, [&](core::AttachOutcome o) { out = o; });
  sim.run_all();
  return out.elapsed;
}

enum class Arch { kDlteQuic, kDlteTcp, kDlteCoopHandover, kCentralized };

struct RunResult {
  double delivered_ratio{0.0};
  double mean_stall_ms{0.0};
  double worst_stall_ms{0.0};
  int transitions{0};
  double ott_rtt_ms{0.0};
  double dwell_s{0.0};
  double sim_s{0.0};
};

// `reg` may be null: the dense-deployment and OTT-placement sweeps run
// without metrics so the main table's counters stay cleanly scoped.
RunResult run_drive(Arch arch, double speed_mps, Duration ott_latency,
                    Duration attach_outage, double spacing_m = kSpacingM,
                    obs::MetricsRegistry* reg = nullptr,
                    const std::string& metrics_prefix = "") {
  sim::Simulator sim;
  sim.set_metrics(reg, metrics_prefix);
  net::Network net{sim};
  net.set_metrics(reg, metrics_prefix);

  const NodeId ue_node = net.add_node("ue");
  const NodeId internet = net.add_node("internet");
  const NodeId core_site = net.add_node("epc");
  const NodeId ott_node = net.add_node("ott");
  std::vector<NodeId> aps;

  const net::LinkConfig radio{DataRate::mbps(20.0), Duration::millis(10)};
  const net::LinkConfig isp{DataRate::mbps(100.0), Duration::millis(15)};
  for (int i = 0; i < kAps; ++i) {
    const NodeId ap = net.add_node("ap" + std::to_string(i));
    aps.push_back(ap);
    net.add_link(ue_node, ap, radio);
    net.set_link_enabled(ue_node, ap, i == 0);
    if (arch == Arch::kCentralized) {
      net.add_link(ap, core_site,
                   net::LinkConfig{DataRate::mbps(100.0),
                                   Duration::millis(25)});
    } else {
      net.add_link(ap, internet, isp);
    }
  }
  if (arch == Arch::kCentralized) {
    net.add_link(core_site, internet,
                 net::LinkConfig{DataRate::mbps(1000.0),
                                 Duration::millis(10)});
  }
  net.add_link(internet, ott_node,
               net::LinkConfig{DataRate::mbps(1000.0), ott_latency});

  transport::TransportHost ue_host{sim, net, ue_node};
  workload::OttService ott{sim, net, ott_node};

  transport::TransportConfig quic_cfg{};  // QUIC-like defaults.
  transport::TransportConfig tcp_cfg{.kind = transport::TransportKind::kTcpLike};

  // Application state: a stream of CBR data across possibly several
  // transport connections (TCP reconnects).
  struct App {
    transport::Connection* conn{nullptr};
    std::vector<transport::Connection*> all;
    double offered{0.0};
  } app;

  auto open_connection = [&](bool resumed) -> transport::Connection& {
    auto& c = ue_host.connect(
        ott.node(), arch == Arch::kDlteTcp ? tcp_cfg : quic_cfg, nullptr,
        resumed);
    app.all.push_back(&c);
    return c;
  };
  app.conn = &open_connection(false);

  // CBR ticker into whichever connection is current.
  const Duration tick = Duration::millis(20);
  sim.every(tick, [&] {
    const double bytes = kStreamRate * tick.to_seconds();
    app.offered += bytes;
    app.conn->send(bytes);
  });

  // Drive: AP transitions at crossing times. Simulate long enough to see
  // several transitions even at walking speed.
  const double dwell_s = spacing_m / speed_mps;
  const double total_s = std::min(dwell_s * (kAps - 1), 
                                  std::max(60.0, dwell_s * 3.2));
  std::vector<TimePoint> crossings;
  for (int k = 1; k < kAps; ++k) {
    const double t = dwell_s * k;
    if (t >= total_s) break;
    const TimePoint when = TimePoint::from_ns(0) + Duration::seconds(t);
    crossings.push_back(when);
    sim.schedule_at(when, [&, k] {
      net.set_link_enabled(ue_node, aps[static_cast<std::size_t>(k - 1)],
                           false);
      // Outage per architecture: X2-anchored handover (centralized),
      // cooperative X2 handoff between dLTE peers (RRC reconfiguration
      // only — see core/handover.h), or a full re-attach.
      Duration outage = attach_outage;
      if (arch == Arch::kCentralized) outage = Duration::millis(30);
      if (arch == Arch::kDlteCoopHandover) outage = Duration::millis(35);
      sim.schedule(outage, [&, k] {
        net.set_link_enabled(ue_node, aps[static_cast<std::size_t>(k)],
                             true);
        if (arch == Arch::kDlteQuic || arch == Arch::kDlteCoopHandover) {
          // Address changed: migrate in place (client-managed rebind).
          app.conn->rebind(ue_host);
        } else if (arch == Arch::kDlteTcp) {
          // Connection is dead; application opens a fresh one (session
          // resumption at the app layer) and continues the stream.
          app.conn->rebind(ue_host);  // Marks it broken.
          app.conn = &open_connection(false);
        }
        // Centralized: transport unaware; the anchor held the address.
      });
    });
  }

  sim.run_until(TimePoint::from_ns(0) + Duration::seconds(total_s));

  RunResult r;
  double delivered = 0.0;
  for (auto* c : app.all) delivered += ott.delivered_bytes(c->id());
  r.delivered_ratio = app.offered > 0 ? delivered / app.offered : 0.0;
  r.transitions = static_cast<int>(crossings.size());
  r.dwell_s = dwell_s;
  r.sim_s = total_s;

  // Interruption: longest delivery stall in a window around each crossing,
  // measured on whichever connection carried traffic then.
  RunningStats stalls;
  for (const TimePoint c : crossings) {
    Duration worst{};
    for (auto* conn : app.all) {
      const Duration s = ott.longest_stall(conn->id(), c - Duration::millis(50),
                                           c + Duration::seconds(2.0));
      // The active connection's stall is the smallest positive one that
      // still spans the crossing; idle connections report the whole
      // window. Take the minimum over connections that delivered at all.
      if (ott.delivered_bytes(conn->id()) > 0.0) {
        if (worst.is_zero() || s < worst) worst = s;
      }
    }
    stalls.add(worst.to_millis());
    r.worst_stall_ms = std::max(r.worst_stall_ms, worst.to_millis());
  }
  r.mean_stall_ms = stalls.count() > 0 ? stalls.mean() : 0.0;
  r.ott_rtt_ms =
      2.0 * net.path_latency(ue_node, ott_node, 200).to_millis();
  return r;
}

const char* arch_name(Arch a) {
  switch (a) {
    case Arch::kDlteQuic:
      return "dLTE + QUIC-like";
    case Arch::kDlteTcp:
      return "dLTE + TCP-like";
    case Arch::kDlteCoopHandover:
      return "dLTE coop handoff + QUIC";
    case Arch::kCentralized:
      return "centralized LTE";
  }
  return "?";
}

const char* arch_slug(Arch a) {
  switch (a) {
    case Arch::kDlteQuic:
      return "quic";
    case Arch::kDlteTcp:
      return "tcp";
    case Arch::kDlteCoopHandover:
      return "coop";
    case Arch::kCentralized:
      return "central";
  }
  return "unknown";
}

// "1.5 m/s" -> "1p5"; integral speeds print without the fraction.
std::string speed_slug(double v) {
  const int whole = static_cast<int>(v);
  const int tenth = static_cast<int>(v * 10.0) % 10;
  std::string s = std::to_string(whole);
  if (tenth != 0) s += "p" + std::to_string(tenth);
  return s;
}

// --trace-out mode: one end-to-end causally-traced scenario. Two
// cooperative APs come up against the registry, run X2 share rounds,
// attach a UE (full RRC + AKA + bearer setup), push GTP-U traffic
// through a centralized-style tunnel, and hand the UE over — so a
// single exported Chrome trace shows every procedure family, causally
// parented, on the simulated clock.
void run_traced_scenario(dlte::bench::Harness& harness) {
  obs::SpanTracer* tracer = harness.tracer();
  sim::Simulator sim;
  harness.set_trace_clock([&sim] { return sim.now(); });
  net::Network net{sim};
  net.set_tracer(tracer);
  core::RadioEnvironment radio;
  spectrum::Registry registry{sim, spectrum::RegistryKind::kCentralizedSas};
  registry.set_tracer(tracer);

  const NodeId internet = net.add_node("internet");
  std::vector<std::unique_ptr<core::DlteAccessPoint>> aps;
  std::vector<std::unique_ptr<core::HandoverManager>> managers;
  for (std::uint32_t id : {1u, 2u}) {
    const NodeId node = net.add_node("ap" + std::to_string(id));
    net.add_link(node, internet,
                 net::LinkConfig{DataRate::mbps(50.0), Duration::millis(15)});
    core::ApConfig cfg;
    cfg.id = ApId{id};
    cfg.cell = CellId{id};
    cfg.position = Position{(id - 1) * 5'000.0, 0.0};
    cfg.mode = lte::DlteMode::kCooperative;
    cfg.seed = id;
    aps.push_back(
        std::make_unique<core::DlteAccessPoint>(sim, net, node, radio, cfg));
    aps.back()->set_span_tracer(tracer, "ap" + std::to_string(id) + "/");
    managers.push_back(
        std::make_unique<core::HandoverManager>(sim, *aps.back()));
    managers.back()->set_tracer(tracer, "ap" + std::to_string(id) + "/");
  }
  for (auto& ap : aps) ap->bring_up(registry);
  sim.run_until(sim.now() + Duration::seconds(2.0));

  // Open-identity subscriber, then a full traced attach at AP 1.
  const Imsi imsi{900001};
  const crypto::Key128 k = key_for(imsi.value());
  crypto::Block128 op{};
  op[0] = 0xcd;
  registry.publish_subscriber(
      epc::PublishedKeys{imsi, k, crypto::derive_opc(k, op)});
  for (auto& ap : aps) ap->import_published_subscribers(registry);
  core::UeDevice ue{
      ue::SimProfile{imsi, k, crypto::derive_opc(k, op), true, "trace"},
      std::make_unique<ue::StaticMobility>(Position{2'500.0, 0.0})};
  aps[0]->attach(ue, mac::UeTrafficConfig{.full_buffer = true});
  sim.run_until(sim.now() + Duration::seconds(2.0));

  // GTP-U tunnel leg (the centralized comparison's user plane): uplink
  // spans close at the gateway, downlink spans at the eNodeB endpoint.
  const NodeId tun_enb = net.add_node("tunnel-enb");
  const NodeId pgw = net.add_node("pgw");
  net.add_link(tun_enb, pgw,
               net::LinkConfig{DataRate::mbps(100.0), Duration::millis(25)});
  net.add_link(pgw, internet,
               net::LinkConfig{DataRate::mbps(1000.0), Duration::millis(5)});
  epc::Gateway gateway{0x0A2E0000};
  epc::GatewayDataPlane gw_plane{net, pgw, gateway};
  epc::EnbDataPlane enb_plane{net, tun_enb, pgw};
  gw_plane.set_tracer(tracer, "core/");
  enb_plane.set_tracer(tracer, "core/");
  epc::BearerContext& bearer = gateway.create_session(imsi, BearerId{5});
  gateway.complete_session(imsi, Teid{5000 + bearer.uplink_teid.value()});
  const auto* ctx = gateway.find_by_imsi(imsi);
  gw_plane.bind_enb(ctx->downlink_teid, tun_enb);
  enb_plane.configure_bearer(ctx->ue_ip, ctx->uplink_teid);
  for (int i = 0; i < 3; ++i) {
    enb_plane.send_uplink(ctx->ue_ip, internet, 1200);
  }
  net.send(net::Packet{
      internet, pgw, 900, epc::kUserIpProtocol,
      epc::encode_inner(epc::InnerDatagram{ctx->ue_ip, internet, 900})});
  sim.run_until(sim.now() + Duration::seconds(1.0));

  // Cooperative handoff AP1 → AP2 (handover + admit + RRC spans).
  managers[0]->initiate(ue, ApId{2},
                        mac::UeTrafficConfig{.full_buffer = true}, nullptr);
  sim.run_until(sim.now() + Duration::seconds(2.0));

  harness.add_sim_seconds((sim.now() - TimePoint{}).to_seconds());
  harness.gauge("c5.trace.spans",
                static_cast<double>(tracer->spans().size()));
  std::cout << "\nTraced scenario: " << tracer->spans().size()
            << " spans recorded (" << tracer->open_count()
            << " still open at export)\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Duration attach = measure_dlte_attach();

  print_bench_header(std::cout, "C5", "paper §4.2, Service Mobility",
                     "endpoint transports make per-AP re-addressing viable "
                     "at rural speeds; dLTE degrades as dwell approaches "
                     "the OTT RTT; MME anchoring stays smooth but pays the "
                     "trombone");
  dlte::bench::Harness harness{"c5_mobility"};
  harness.parse_args(argc, argv);
  harness.gauge("c5.attach_ms", attach.to_millis());
  std::cout << "Measured dLTE re-attach (RRC + EPS-AKA on local stub): "
            << attach.to_millis() << " ms\n\n";

  TextTable t{{"speed", "dwell/AP", "arch", "delivered", "mean stall",
               "worst stall", "transitions"}};
  for (double v : {1.5, 5.0, 15.0, 30.0, 50.0}) {
    for (Arch a : {Arch::kDlteQuic, Arch::kDlteTcp, Arch::kDlteCoopHandover,
                   Arch::kCentralized}) {
      const std::string prefix =
          "c5.v" + speed_slug(v) + "." + arch_slug(a) + ".";
      const RunResult r = run_drive(a, v, Duration::millis(40), attach,
                                    kSpacingM, &harness.metrics(), prefix);
      harness.add_sim_seconds(r.sim_s);
      harness.gauge(prefix + "delivered_pct", r.delivered_ratio * 100.0);
      harness.gauge(prefix + "mean_stall_ms", r.mean_stall_ms);
      harness.gauge(prefix + "worst_stall_ms", r.worst_stall_ms);
      t.row()
          .num(v, 1, "m/s")
          .num(r.dwell_s, 1, "s")
          .add(arch_name(a))
          .num(r.delivered_ratio * 100.0, 1, "%")
          .num(r.mean_stall_ms, 0, "ms")
          .num(r.worst_stall_ms, 0, "ms")
          .integer(r.transitions);
    }
  }
  t.print(std::cout);

  // The paper's predicted breakdown: dense AP distributions + high speed
  // push dwell time toward the OTT RTT. 100 m spacing (urban pico string).
  std::cout << "\nDense deployment (100 m AP spacing): dwell time "
               "approaches service RTT — the\nregime §4.2 concedes to the "
               "centralized model:\n";
  TextTable d{{"speed", "dwell/AP", "arch", "delivered", "mean stall"}};
  for (double v : {10.0, 30.0, 60.0, 100.0}) {
    for (Arch a : {Arch::kDlteQuic, Arch::kDlteTcp, Arch::kDlteCoopHandover,
                   Arch::kCentralized}) {
      const RunResult r = run_drive(a, v, Duration::millis(40), attach,
                                    100.0);
      harness.add_sim_seconds(r.sim_s);
      harness.gauge("c5.dense.v" + speed_slug(v) + "." + arch_slug(a) +
                        ".delivered_pct",
                    r.delivered_ratio * 100.0);
      d.row()
          .num(v, 0, "m/s")
          .num(r.dwell_s, 2, "s")
          .add(arch_name(a))
          .num(r.delivered_ratio * 100.0, 1, "%")
          .num(r.mean_stall_ms, 0, "ms");
    }
  }
  d.print(std::cout);

  std::cout << "\nOTT placement ablation (dLTE + TCP-like @ 30 m/s, dense): "
               "the paper's proposed\nmitigation of moving services toward "
               "the edge — reconnect cost scales with RTT:\n";
  TextTable e{{"OTT placement", "UE-OTT RTT", "delivered", "mean stall"}};
  for (auto [name, lat] :
       {std::pair{"core cloud (40 ms)", Duration::millis(40)},
        std::pair{"regional (15 ms)", Duration::millis(15)},
        std::pair{"edge (3 ms)", Duration::millis(3)}}) {
    const RunResult r = run_drive(Arch::kDlteTcp, 30.0, lat, attach, 100.0);
    harness.add_sim_seconds(r.sim_s);
    e.row()
        .add(name)
        .num(r.ott_rtt_ms, 0, "ms")
        .num(r.delivered_ratio * 100.0, 1, "%")
        .num(r.mean_stall_ms, 0, "ms");
  }
  e.print(std::cout);

  std::cout << "\nShape check: at walking/village speeds all three are "
               "fine; QUIC-like migration keeps\nthe gap near one re-attach; "
               "TCP-like adds reconnect RTTs; centralized stays smooth\nat "
               "any speed (its cost is the F1 trombone, not shown here). "
               "Edge OTT shrinks the\nstall floor, as §4.2 suggests.\n";

  if (harness.tracing()) run_traced_scenario(harness);
  return harness.finish(0);
}
