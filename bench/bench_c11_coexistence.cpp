// Experiment C11 — unlicensed coexistence: dLTE and WiFi on one channel.
//
// The paper argues for a WiFi-like cellular network; C11 measures what
// happens when that network actually moves into WiFi's spectrum. A
// SharedChannel (src/coex) places WiFi DCF stations and dLTE transmitters
// on one 2.4 GHz channel with energy-derived carrier sensing, and sweeps
// the dLTE access behaviour:
//   * oblivious  — scheduled waveform, never listens (the LTE-U story);
//   * LBT        — LAA-style listen-before-talk with DCF backoff;
//   * duty-cycle — CSAT-style blind on/off split.
// across WiFi:dLTE density mixes. Headline numbers per cell: Jain
// fairness over per-transmitter airtime, per-waveform airtime shares,
// channel-access latency p50/p95 and goodput.
//
// Plus the hidden-terminal stress: two mutually-hidden WiFi BSSs with a
// dLTE AP between them — the geometry where "just listen" is weakest —
// showing LBT still leaves WiFi strictly more airtime than the oblivious
// waveform at equal density.
#include <iostream>
#include <string>
#include <vector>

#include "bench_harness.h"
#include "coex/shared_channel.h"
#include "common/stats.h"
#include "common/table.h"
#include "phy/wifi_phy.h"

namespace {
using namespace dlte;
using coex::LteCoexPolicy;
using coex::SharedChannel;
using coex::Waveform;

coex::TransmitterSite site(double ap_x, double client_x, double client_y) {
  coex::TransmitterSite s;
  s.tx_pos = Position{ap_x, 0.0};
  s.rx_pos = Position{client_x, client_y};
  s.tx_profile = phy::DeviceProfiles::wifi_ap_outdoor();
  s.rx_profile = phy::DeviceProfiles::wifi_client();
  return s;
}

struct CellResult {
  double fairness{0.0};
  double wifi_airtime{0.0};
  double dlte_airtime{0.0};
  double wifi_p50_ms{0.0};
  double wifi_p95_ms{0.0};
  double dlte_p50_ms{0.0};
  double dlte_p95_ms{0.0};
  double wifi_mbps{0.0};
  double dlte_mbps{0.0};
};

// One dense cell: `wifi` WiFi BSSs and `lte` dLTE APs interleaved 80 m
// apart, every transmitter within carrier-sense range of every other
// (single collision domain — contention, not hidden terminals).
CellResult run_cell(int wifi, int lte, LteCoexPolicy policy,
                    dlte::bench::Harness& harness,
                    const std::string& prefix) {
  SharedChannel ch{coex::SharedChannelConfig{}};
  std::vector<int> wifi_ids, lte_ids;
  const int total = wifi + lte;
  int placed_lte = 0;
  for (int i = 0; i < total; ++i) {
    const double x = 80.0 * i;
    // Interleave dLTE APs through the row of WiFi BSSs.
    const bool is_lte =
        placed_lte < lte &&
        (i + 1) * lte >= (placed_lte + 1) * total;
    if (is_lte) {
      coex::LteTransmitterConfig lc;
      lc.site = site(x, x + 30.0, 50.0);
      lc.policy = policy;
      lc.cca_dbm = -82.0;  // WiFi-class energy detect (see DESIGN.md §12).
      lte_ids.push_back(ch.add_lte_transmitter(lc));
      ++placed_lte;
    } else {
      coex::WifiStationConfig wc;
      wc.site = site(x, x + 30.0, 50.0);
      wifi_ids.push_back(ch.add_wifi_station(wc));
    }
  }
  ch.set_metrics(&harness.metrics(), prefix);
  ch.run(Duration::seconds(1.0));
  harness.add_sim_seconds(1.0);

  CellResult r;
  r.fairness = jain_fairness(ch.airtime_fractions());
  r.wifi_airtime = ch.airtime_share(Waveform::kWifi);
  r.dlte_airtime = ch.airtime_share(Waveform::kDlte);
  Quantiles wifi_ms, dlte_ms;
  for (int id : wifi_ids) {
    r.wifi_mbps += ch.stats(id).goodput(ch.elapsed()).to_mbps();
    wifi_ms.merge(ch.stats(id).access_latency_ms);
  }
  for (int id : lte_ids) {
    r.dlte_mbps += ch.stats(id).goodput(ch.elapsed()).to_mbps();
    dlte_ms.merge(ch.stats(id).access_latency_ms);
  }
  r.wifi_p50_ms = wifi_ms.median();
  r.wifi_p95_ms = wifi_ms.p95();
  r.dlte_p50_ms = dlte_ms.median();
  r.dlte_p95_ms = dlte_ms.p95();
  return r;
}

// Hidden-terminal stress: WiFi BSSs 1800 m apart (mutually below the
// -82 dBm CCA at the 2.6-exponent town profile), clients mid-field, and
// one dLTE AP at the midpoint that hears both sides.
CellResult run_hidden(LteCoexPolicy policy, dlte::bench::Harness& harness,
                      const std::string& prefix) {
  SharedChannel ch{coex::SharedChannelConfig{}};
  coex::WifiStationConfig wa;
  wa.site = site(0.0, 600.0, 0.0);
  coex::WifiStationConfig wb;
  wb.site = site(1800.0, 1200.0, 0.0);
  const int a = ch.add_wifi_station(wa);
  const int b = ch.add_wifi_station(wb);
  coex::LteTransmitterConfig lc;
  lc.site = site(900.0, 940.0, 0.0);
  lc.policy = policy;
  lc.cca_dbm = -82.0;
  const int l = ch.add_lte_transmitter(lc);
  ch.set_metrics(&harness.metrics(), prefix);
  ch.run(Duration::seconds(2.0));
  harness.add_sim_seconds(2.0);

  CellResult r;
  r.fairness = jain_fairness(ch.airtime_fractions());
  r.wifi_airtime = ch.airtime_share(Waveform::kWifi);
  r.dlte_airtime = ch.airtime_share(Waveform::kDlte);
  Quantiles wifi_ms;
  for (int id : {a, b}) {
    r.wifi_mbps += ch.stats(id).goodput(ch.elapsed()).to_mbps();
    wifi_ms.merge(ch.stats(id).access_latency_ms);
  }
  r.wifi_p50_ms = wifi_ms.median();
  r.wifi_p95_ms = wifi_ms.p95();
  r.dlte_p50_ms = ch.stats(l).access_latency_ms.median();
  r.dlte_p95_ms = ch.stats(l).access_latency_ms.p95();
  r.dlte_mbps = ch.stats(l).goodput(ch.elapsed()).to_mbps();
  return r;
}

void result_gauges(dlte::bench::Harness& harness, const std::string& slug,
                   const CellResult& r) {
  harness.gauge("c11." + slug + ".fairness", r.fairness);
  harness.gauge("c11." + slug + ".wifi_airtime", r.wifi_airtime);
  harness.gauge("c11." + slug + ".dlte_airtime", r.dlte_airtime);
  harness.gauge("c11." + slug + ".wifi_p50_ms", r.wifi_p50_ms);
  harness.gauge("c11." + slug + ".wifi_p95_ms", r.wifi_p95_ms);
  harness.gauge("c11." + slug + ".dlte_p50_ms", r.dlte_p50_ms);
  harness.gauge("c11." + slug + ".dlte_p95_ms", r.dlte_p95_ms);
  harness.gauge("c11." + slug + ".wifi_mbps", r.wifi_mbps);
  harness.gauge("c11." + slug + ".dlte_mbps", r.dlte_mbps);
}

void result_row(TextTable& t, const std::string& label,
                const CellResult& r) {
  t.row()
      .add(label)
      .num(r.fairness, 3)
      .num(r.wifi_airtime, 3)
      .num(r.dlte_airtime, 3)
      .num(r.wifi_p50_ms, 2, "ms")
      .num(r.wifi_p95_ms, 2, "ms")
      .num(r.dlte_p95_ms, 2, "ms")
      .num(r.wifi_mbps, 1, "Mb/s")
      .num(r.dlte_mbps, 1, "Mb/s");
}

constexpr const char* policy_slug(LteCoexPolicy p) {
  return p == LteCoexPolicy::kOblivious  ? "oblivious"
         : p == LteCoexPolicy::kLbt      ? "lbt"
                                         : "duty";
}

}  // namespace

int main() {
  print_bench_header(std::cout, "C11", "unlicensed coexistence",
                     "a WiFi-like cellular network must also be a tolerable "
                     "WiFi neighbour: LBT shares, duty-cycle splits, the "
                     "oblivious scheduled waveform starves the room");
  dlte::bench::Harness harness{"c11_coexistence"};

  struct Density {
    int wifi;
    int lte;
  };
  const Density densities[] = {{1, 1}, {3, 1}, {6, 2}};
  const LteCoexPolicy policies[] = {LteCoexPolicy::kOblivious,
                                    LteCoexPolicy::kLbt,
                                    LteCoexPolicy::kDutyCycle};

  for (const auto& d : densities) {
    std::cout << "\n" << d.wifi << " WiFi BSS(s) : " << d.lte
              << " dLTE AP(s), one collision domain, saturated downlink:\n";
    TextTable t{{"dLTE policy", "Jain", "WiFi air", "dLTE air", "WiFi p50",
                 "WiFi p95", "dLTE p95", "WiFi rate", "dLTE rate"}};
    for (const auto p : policies) {
      const std::string slug = "w" + std::to_string(d.wifi) + "l" +
                               std::to_string(d.lte) + "." + policy_slug(p);
      const CellResult r =
          run_cell(d.wifi, d.lte, p, harness, "c11." + slug + ".");
      result_gauges(harness, slug, r);
      result_row(t, coex::to_string(p), r);
    }
    t.print(std::cout);
  }

  std::cout << "\nHidden-terminal stress: two mutually-hidden WiFi BSSs "
               "1800 m apart, one dLTE AP\nat the midpoint hearing both "
               "(the geometry where listening is hardest):\n";
  TextTable stress{{"dLTE policy", "Jain", "WiFi air", "dLTE air",
                    "WiFi p50", "WiFi p95", "dLTE p95", "WiFi rate",
                    "dLTE rate"}};
  double wifi_air_oblivious = 0.0, wifi_air_lbt = 0.0;
  for (const auto p : policies) {
    const std::string slug = std::string{"hidden."} + policy_slug(p);
    const CellResult r = run_hidden(p, harness, "c11." + slug + ".");
    result_gauges(harness, slug, r);
    result_row(stress, coex::to_string(p), r);
    if (p == LteCoexPolicy::kOblivious) wifi_air_oblivious = r.wifi_airtime;
    if (p == LteCoexPolicy::kLbt) wifi_air_lbt = r.wifi_airtime;
  }
  stress.print(std::cout);

  const bool lbt_protects = wifi_air_lbt > wifi_air_oblivious;
  std::cout << "\nShape check: oblivious dLTE takes the whole channel "
               "(WiFi airtime -> 0, Jain -> 1/n);\nLBT restores WiFi "
               "airtime even against hidden terminals ("
            << (lbt_protects ? "holds" : "VIOLATED")
            << " here); duty-cycle\nsplits airtime blindly at its "
               "configured fraction, indifferent to WiFi load.\n";
  return harness.finish(lbt_protects ? 0 : 1);
}
