// Experiment C9 — sharded parallel simulation of the dLTE town.
//
// The paper's per-AP independence argument (§4.1) is also a systems
// property of the simulator: islands interact only over X2-over-Internet
// latencies, so the town partitions cleanly across cores. This bench
// (a) sweeps shard counts over the same scenario and verifies IN PROCESS
// that the merged metrics/series/OpenMetrics artifacts are byte-identical
// to the 1-shard run at every shard count, and (b) records the wall-time
// scaling in the (non-deterministic) "timings" section. With
// --shards=N [--par-threads=T] [--par-artifacts=PREFIX] it instead runs
// one configuration and dumps its artifacts to PREFIX.metrics.json /
// .series.json / .openmetrics.txt — the mode the CI par-determinism gate
// drives twice and byte-compares. The determinism audit plane is always
// on: the sweep additionally byte-compares the merged dlte-audit-v1
// section across shard counts, gate mode writes the full document to
// PREFIX.audit.json, and --audit-inject=<ms>:<shard> arms the deliberate
// exchange-reorder the CI localization self-test drives through
// tools/audit_diff.py.
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_harness.h"
#include "common/table.h"
#include "obs/audit_export.h"
#include "obs/prof.h"
#include "obs/prof_export.h"
#include "par/town.h"

namespace {
using namespace dlte;

par::TownConfig town_config(std::size_t shards, std::size_t threads) {
  par::TownConfig cfg;
  // Sized so one window carries real event work (hundreds of attach
  // dialogues + X2 rounds): barrier cost amortizes and multi-core hosts
  // see the parallel win; the determinism check is size-independent.
  cfg.aps = 64;
  cfg.ues_per_ap = 32;
  cfg.shards = shards;
  cfg.threads = threads;
  cfg.seed = 42;
  cfg.horizon = Duration::seconds(2.0);
  cfg.report_interval = Duration::millis(50);
  cfg.backbone_delay = Duration::millis(5);
  cfg.sample_interval = Duration::millis(500);
  // Always profile: attribution is deterministic and byte-compared in
  // the sweep; the wall-clock shard profile rides out via --prof-out.
  cfg.profile = true;
  // Always audit: the merged digest section is deterministic and
  // byte-compared in the sweep, like the attribution profile.
  cfg.audit = true;
  return cfg;
}

struct RunOutput {
  par::TownResult result;
  std::string metrics;
  std::string series;
  std::string openmetrics;
  // Deterministic event-attribution section, merged across shards.
  std::string prof;
  // Partition-invariant merged audit section (dlte-audit-v1).
  std::string audit;
  obs::ProfileDoc doc;
  obs::AuditDoc audit_doc;
  double wall_s{0.0};
};

RunOutput run_once(std::size_t shards, std::size_t threads,
                   dlte::bench::Harness* harness,
                   std::int64_t inject_ms = -1,
                   std::size_t inject_shard = 0) {
  par::ShardedTown town{town_config(shards, threads)};
  if (harness != nullptr) {
    town.runtime().set_metrics(
        &harness->metrics(), "c9.s" + std::to_string(shards) + ".");
  }
  if (inject_ms >= 0) {
    town.runtime().inject_exchange_reorder(
        TimePoint{} + Duration::millis(inject_ms), inject_shard);
  }
  const auto start = std::chrono::steady_clock::now();
  RunOutput out;
  out.result = town.run();
  out.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count();
  out.metrics = town.metrics_json();
  out.series = town.series_json("c9_sharded_town");
  out.openmetrics = town.openmetrics_text();
  town.runtime().merged_profiler_into(out.doc.attribution);
  out.doc.shard_profile = town.runtime().profile();
  out.prof = obs::ProfExporter::event_attribution_json(out.doc.attribution);
  out.audit_doc = town.runtime().audit_doc();
  out.audit = obs::AuditExporter::merged_json(out.audit_doc);
  return out;
}

// --audit-inject=<ms>:<shard> — arm the exchange-reorder test hook.
bool parse_audit_inject(int argc, char** argv, std::int64_t* ms,
                        std::size_t* shard) {
  constexpr const char kInject[] = "--audit-inject=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kInject, sizeof(kInject) - 1) != 0) continue;
    const char* spec = argv[i] + sizeof(kInject) - 1;
    char* colon = nullptr;
    *ms = std::strtoll(spec, &colon, 10);
    *shard = (colon != nullptr && *colon == ':')
                 ? static_cast<std::size_t>(std::atol(colon + 1))
                 : 0;
    return true;
  }
  return false;
}

bool write_text(const std::string& path, const std::string& text) {
  std::ofstream f{path, std::ios::binary | std::ios::trunc};
  f << text;
  return static_cast<bool>(f);
}
}  // namespace

int main(int argc, char** argv) {
  dlte::bench::Harness harness{"c9_sharded_town"};
  harness.parse_args(argc, argv);

  // Gate mode: one configuration, artifacts to files, no sweep.
  if (!harness.par_artifacts().empty()) {
    const std::size_t shards = harness.shards() == 0 ? 1 : harness.shards();
    std::int64_t inject_ms = -1;
    std::size_t inject_shard = 0;
    const bool injecting =
        parse_audit_inject(argc, argv, &inject_ms, &inject_shard);
    RunOutput out = run_once(shards, harness.par_threads(), &harness,
                             injecting ? inject_ms : -1, inject_shard);
    harness.add_sim_seconds(out.result.sim_seconds);
    harness.timing("run_s" + std::to_string(shards), out.wall_s);
    const std::string& prefix = harness.par_artifacts();
    bool ok = write_text(prefix + ".metrics.json", out.metrics);
    ok = write_text(prefix + ".series.json", out.series) && ok;
    ok = write_text(prefix + ".openmetrics.txt", out.openmetrics) && ok;
    ok = write_text(prefix + ".prof.json", out.prof + "\n") && ok;
    // Full document (merged + shards + ledger): same-config double runs
    // byte-compare it whole; cross-shard-count compares use
    // audit_diff.py --merged-only on it.
    ok = write_text(prefix + ".audit.json",
                    obs::AuditExporter::to_json(out.audit_doc,
                                                "c9_sharded_town") +
                        "\n") &&
         ok;
    harness.set_profile(std::move(out.doc));
    harness.set_audit(std::move(out.audit_doc));
    std::cout << "C9 gate mode: shards=" << shards
              << " attaches=" << out.result.attaches_completed
              << " x2_rx=" << out.result.x2_reports_rx
              << (injecting ? " AUDIT-INJECT armed" : "")
              << " artifacts=" << prefix << ".*\n";
    if (!ok) std::cerr << "c9: failed to write artifacts\n";
    return harness.finish(ok ? 0 : 1);
  }

  print_bench_header(std::cout, "C9", "paper §4.1, sharded runtime",
                     "the per-AP independence that scales dLTE cores also "
                     "shards the simulation; a parallel run is "
                     "byte-identical to the sequential one");

  TextTable t{{"shards", "threads", "windows", "x-shard msgs", "attaches",
               "wall", "speedup", "identical"}};
  RunOutput base;
  bool all_identical = true;
  for (const std::size_t shards : {1u, 2u, 4u}) {
    RunOutput out = run_once(shards, shards, &harness);
    harness.add_sim_seconds(out.result.sim_seconds);
    harness.timing("run_s" + std::to_string(shards), out.wall_s);
    bool identical = true;
    if (shards == 1) {
      out.doc.attribution.export_metrics(harness.metrics());
      base = out;
    } else {
      identical = out.metrics == base.metrics &&
                  out.series == base.series &&
                  out.openmetrics == base.openmetrics &&
                  out.prof == base.prof &&
                  out.audit == base.audit;
      all_identical = all_identical && identical;
      harness.timing("speedup_s" + std::to_string(shards),
                     base.wall_s / out.wall_s);
    }
    harness.set_profile(std::move(out.doc));
    harness.set_audit(std::move(out.audit_doc));
    const std::string prefix = "c9.s" + std::to_string(shards) + ".";
    harness.counter(prefix + "attaches",
                    out.result.attaches_completed);
    harness.counter(prefix + "x2_rx", out.result.x2_reports_rx);
    harness.counter(prefix + "identical", identical ? 1 : 0);
    t.row()
        .integer(static_cast<int>(shards))
        .integer(static_cast<int>(shards))
        .integer(static_cast<int>(out.result.windows))
        .integer(static_cast<int>(out.result.messages))
        .integer(static_cast<int>(out.result.attaches_completed))
        .num(out.wall_s * 1000.0, 1, "ms")
        .num(shards == 1 ? 1.0 : base.wall_s / out.wall_s, 2, "x")
        .add(identical ? "yes" : "NO");
  }
  t.print(std::cout);

  std::cout << "\nDeterminism: every sharded run's merged artifacts — "
               "metrics, series, OpenMetrics, the event-attribution "
               "profile, AND the merged audit digests — are byte-compared "
               "against the 1-shard run in-process.\n"
               "Speedup is wall-clock and machine-dependent (single-core "
               "hosts show ~1.0x; the scaling claim is checked on "
               "multi-core CI).\n";
  if (!all_identical) {
    std::cerr << "c9: sharded artifacts diverged from the 1-shard run\n";
  }
  return harness.finish(all_identical ? 0 : 1);
}
