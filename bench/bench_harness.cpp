#include "bench_harness.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "obs/audit_export.h"
#include "obs/json.h"
#include "obs/openmetrics.h"
#include "obs/prof_export.h"
#include "obs/series_export.h"
#include "obs/snapshot.h"
#include "obs/trace_export.h"

namespace dlte::bench {

std::string git_rev() {
  if (const char* rev = std::getenv("DLTE_GIT_REV")) return rev;
  if (const char* sha = std::getenv("GITHUB_SHA")) return sha;
  std::string out;
  if (FILE* pipe = popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buf[64];
    if (std::fgets(buf, sizeof(buf), pipe) != nullptr) out = buf;
    pclose(pipe);
  }
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out.empty() ? "unknown" : out;
}

Harness::Harness(std::string name)
    : name_(std::move(name)),
      wall_start_(std::chrono::steady_clock::now()) {}

void Harness::enable_tracing(std::string path) {
  trace_path_ = std::move(path);
  if (tracer_ == nullptr) {
    // No clock yet — the bench attaches its Simulator's via
    // set_trace_clock(). Latency rollups land in the shared registry.
    tracer_ = std::make_unique<obs::SpanTracer>();
    tracer_->set_metrics(&registry_);
  }
}

void Harness::enable_series(std::string path) {
  series_path_ = std::move(path);
  if (sampler_ == nullptr) {
    obs::SamplerConfig config;
    config.interval = series_interval_;
    sampler_ = std::make_unique<obs::TimeSeriesSampler>(registry_, config);
    monitor_ = std::make_unique<obs::SloMonitor>(registry_);
    // Alert state rolls back into the same registry, so the sampler
    // picks up slo.* and health.* series automatically.
    monitor_->set_metrics(&registry_);
    if (tracer_ != nullptr) monitor_->set_tracer(tracer_.get());
  }
}

void Harness::parse_args(int argc, char** argv) {
  constexpr const char kFlag[] = "--trace-out=";
  constexpr const char kSeries[] = "--series-out=";
  constexpr const char kInterval[] = "--series-interval-ms=";
  constexpr const char kOpenMetrics[] = "--openmetrics-out=";
  constexpr const char kShards[] = "--shards=";
  constexpr const char kParThreads[] = "--par-threads=";
  constexpr const char kParArtifacts[] = "--par-artifacts=";
  constexpr const char kProfOut[] = "--prof-out=";
  constexpr const char kProfTrace[] = "--prof-trace-out=";
  constexpr const char kProfFolded[] = "--prof-folded=";
  constexpr const char kAuditOut[] = "--audit-out=";
  // Interval first: enable_series latches it into the sampler.
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kInterval, sizeof(kInterval) - 1) == 0) {
      const double ms = std::atof(argv[i] + sizeof(kInterval) - 1);
      if (ms > 0.0) series_interval_ = Duration::seconds(ms / 1000.0);
    }
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      enable_tracing(argv[i] + sizeof(kFlag) - 1);
    } else if (std::strncmp(argv[i], kSeries, sizeof(kSeries) - 1) == 0) {
      enable_series(argv[i] + sizeof(kSeries) - 1);
    } else if (std::strncmp(argv[i], kOpenMetrics,
                            sizeof(kOpenMetrics) - 1) == 0) {
      openmetrics_path_ = argv[i] + sizeof(kOpenMetrics) - 1;
    } else if (std::strncmp(argv[i], kShards, sizeof(kShards) - 1) == 0) {
      const long n = std::atol(argv[i] + sizeof(kShards) - 1);
      if (n > 0) shards_ = static_cast<std::size_t>(n);
    } else if (std::strncmp(argv[i], kParThreads,
                            sizeof(kParThreads) - 1) == 0) {
      const long n = std::atol(argv[i] + sizeof(kParThreads) - 1);
      if (n >= 0) par_threads_ = static_cast<std::size_t>(n);
    } else if (std::strncmp(argv[i], kParArtifacts,
                            sizeof(kParArtifacts) - 1) == 0) {
      par_artifacts_ = argv[i] + sizeof(kParArtifacts) - 1;
    } else if (std::strncmp(argv[i], kProfOut, sizeof(kProfOut) - 1) == 0) {
      prof_path_ = argv[i] + sizeof(kProfOut) - 1;
    } else if (std::strncmp(argv[i], kProfTrace,
                            sizeof(kProfTrace) - 1) == 0) {
      prof_trace_path_ = argv[i] + sizeof(kProfTrace) - 1;
    } else if (std::strncmp(argv[i], kProfFolded,
                            sizeof(kProfFolded) - 1) == 0) {
      prof_folded_path_ = argv[i] + sizeof(kProfFolded) - 1;
    } else if (std::strncmp(argv[i], kAuditOut, sizeof(kAuditOut) - 1) == 0) {
      audit_path_ = argv[i] + sizeof(kAuditOut) - 1;
    }
  }
  if (tracer_ == nullptr) {
    if (const char* env = std::getenv("DLTE_TRACE_OUT")) {
      enable_tracing(env);
    }
  }
  if (sampler_ == nullptr) {
    if (const char* env = std::getenv("DLTE_SERIES_OUT")) {
      enable_series(env);
    }
  }
  if (openmetrics_path_.empty()) {
    if (const char* env = std::getenv("DLTE_OPENMETRICS_OUT")) {
      openmetrics_path_ = env;
    }
  }
  if (prof_path_.empty()) {
    if (const char* env = std::getenv("DLTE_PROF_OUT")) prof_path_ = env;
  }
  if (prof_trace_path_.empty()) {
    if (const char* env = std::getenv("DLTE_PROF_TRACE_OUT")) {
      prof_trace_path_ = env;
    }
  }
  if (prof_folded_path_.empty()) {
    if (const char* env = std::getenv("DLTE_PROF_FOLDED")) {
      prof_folded_path_ = env;
    }
  }
  if (audit_path_.empty()) {
    if (const char* env = std::getenv("DLTE_AUDIT_OUT")) audit_path_ = env;
  }
}

void Harness::set_profile(obs::ProfileDoc doc) {
  profile_ = std::make_unique<obs::ProfileDoc>(std::move(doc));
}

void Harness::set_audit(obs::AuditDoc doc) {
  audit_ = std::make_unique<obs::AuditDoc>(std::move(doc));
}

void Harness::set_trace_clock(obs::SpanTracer::NowFn now) {
  if (tracer_ != nullptr) tracer_->set_clock(std::move(now));
}

std::string Harness::to_json() const {
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start_)
          .count();
  obs::JsonWriter w;
  w.begin_object();
  w.key("bench").value(name_);
  w.key("git_rev").value(git_rev());
  w.key("sim_seconds").value(sim_seconds_);
  w.key("wall_seconds").value(wall_seconds);
  // Only when the bench recorded throughput: keeps the schema of benches
  // that never call throughput() unchanged.
  if (events_total_ > 0) w.key("events_total").value(events_total_);
  // Raw string splice: the snapshot serializes itself (already an
  // object, already sorted and byte-stable).
  w.key("metrics");
  std::string doc = w.str();
  doc += obs::MetricsSnapshot{registry_}.to_json();
  obs::JsonWriter t;
  t.begin_object();
  for (const auto& [name, seconds] : timings_) t.key(name).value(seconds);
  t.end_object();
  doc += ",\"timings\":";
  doc += t.str();
  doc += "}";
  return doc;
}

int Harness::finish(int exit_code) {
  if (tracer_ != nullptr && !trace_path_.empty()) {
    if (obs::ChromeTraceExporter::write_file(*tracer_, trace_path_)) {
      std::cout << "\n[trace json] " << trace_path_ << "\n";
    } else {
      std::cerr << "bench_harness: failed to write " << trace_path_ << "\n";
      if (exit_code == 0) exit_code = 1;
    }
  }
  if (sampler_ != nullptr && !series_path_.empty()) {
    if (obs::SeriesExporter::write_file(*sampler_, monitor_.get(), name_,
                                        series_path_)) {
      std::cout << "\n[series json] " << series_path_ << "\n";
    } else {
      std::cerr << "bench_harness: failed to write " << series_path_ << "\n";
      if (exit_code == 0) exit_code = 1;
    }
  }
  if (!openmetrics_path_.empty()) {
    if (obs::OpenMetricsExporter::write_file(registry_, openmetrics_path_)) {
      std::cout << "[openmetrics] " << openmetrics_path_ << "\n";
    } else {
      std::cerr << "bench_harness: failed to write " << openmetrics_path_
                << "\n";
      if (exit_code == 0) exit_code = 1;
    }
  }
  if (!prof_path_.empty() || !prof_trace_path_.empty()) {
    if (profile_ == nullptr) {
      std::cerr << "bench_harness: profiling output requested but the bench "
                   "never called set_profile()\n";
      if (exit_code == 0) exit_code = 1;
    } else {
      if (!prof_path_.empty()) {
        if (obs::ProfExporter::write_file(*profile_, name_, prof_path_)) {
          std::cout << "[prof json] " << prof_path_ << "\n";
        } else {
          std::cerr << "bench_harness: failed to write " << prof_path_
                    << "\n";
          if (exit_code == 0) exit_code = 1;
        }
      }
      if (!prof_trace_path_.empty()) {
        if (obs::ProfExporter::write_counter_trace(*profile_, name_,
                                                   prof_trace_path_)) {
          std::cout << "[prof trace] " << prof_trace_path_ << "\n";
        } else {
          std::cerr << "bench_harness: failed to write " << prof_trace_path_
                    << "\n";
          if (exit_code == 0) exit_code = 1;
        }
      }
    }
  }
  if (!audit_path_.empty()) {
    if (audit_ == nullptr) {
      std::cerr << "bench_harness: audit output requested but the bench "
                   "never called set_audit()\n";
      if (exit_code == 0) exit_code = 1;
    } else if (obs::AuditExporter::write_file(*audit_, name_, audit_path_)) {
      std::cout << "[audit json] " << audit_path_ << "\n";
    } else {
      std::cerr << "bench_harness: failed to write " << audit_path_ << "\n";
      if (exit_code == 0) exit_code = 1;
    }
  }
  if (!prof_folded_path_.empty()) {
    if (tracer_ == nullptr) {
      std::cerr << "bench_harness: --prof-folded needs --trace-out (no span "
                   "tracer active)\n";
      if (exit_code == 0) exit_code = 1;
    } else if (obs::ProfExporter::write_collapsed(*tracer_,
                                                  prof_folded_path_)) {
      std::cout << "[prof folded] " << prof_folded_path_ << "\n";
    } else {
      std::cerr << "bench_harness: failed to write " << prof_folded_path_
                << "\n";
      if (exit_code == 0) exit_code = 1;
    }
  }
  std::string dir = ".";
  if (const char* env = std::getenv("DLTE_BENCH_DIR")) dir = env;
  const std::string path = dir + "/BENCH_" + name_ + ".json";
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out << to_json() << "\n";
  if (!out) {
    std::cerr << "bench_harness: failed to write " << path << "\n";
    return exit_code == 0 ? 1 : exit_code;
  }
  std::cout << "\n[bench json] " << path << "\n";
  return exit_code;
}

}  // namespace dlte::bench
