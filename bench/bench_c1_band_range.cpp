// Experiment C1 — §3.2 "Spectrum Bands".
//
// Claim: LTE's sub-GHz bands (e.g. band 5, 850 MHz) cover rural distances
// that WiFi's 2.4/5 GHz ISM bands cannot, because of both propagation and
// the permitted transmit chain. We sweep a single downlink over distance
// for four radio configurations and report SNR, selected rate, and
// goodput. The WiFi rows also honour the stock ACK-timeout range ceiling.
#include <iostream>

#include "bench_harness.h"
#include "common/table.h"
#include "mac/lte_cell_mac.h"
#include "mac/wifi_dcf.h"
#include "phy/link_budget.h"
#include "phy/lte_amc.h"
#include "phy/wifi_phy.h"

namespace {

using namespace dlte;

struct RadioOption {
  const char* name;
  const char* slug;  // Metric-name segment for this radio.
  Hertz frequency;
  phy::RadioProfile ap;
  phy::RadioProfile client;
  bool is_lte;
};

// LTE downlink goodput via the cell MAC at the given SNR.
double lte_goodput_mbps(Decibels snr, Hertz bw) {
  mac::LteCellMac cell{mac::CellMacConfig{.bandwidth = bw}};
  cell.add_ue(UeId{1}, [snr] { return snr; },
              mac::UeTrafficConfig{.full_buffer = true});
  cell.run(Duration::seconds(1.0));
  return cell.stats(UeId{1}).goodput(cell.elapsed()).to_mbps();
}

// WiFi downlink goodput via DCF (single station, channel FER from SNR).
double wifi_goodput_mbps(Decibels snr, double distance_m) {
  if (phy::beyond_ack_range(distance_m)) return 0.0;
  const int rate = phy::select_wifi_rate(snr);
  if (rate < 0) return 0.0;
  mac::DcfSimulator dcf{42};
  const int s = dcf.add_station(mac::DcfStationConfig{
      .rate_index = rate,
      .channel_fer = phy::wifi_frame_error_rate(rate, snr)});
  dcf.run(Duration::seconds(1.0));
  return dcf.stats(s).goodput(dcf.elapsed()).to_mbps();
}

}  // namespace

int main() {
  using phy::DeviceProfiles;

  std::vector<RadioOption> options{
      {"LTE band 5 (850 MHz)", "lte850", Hertz::mhz(850.0),
       DeviceProfiles::lte_enb_rural(), DeviceProfiles::lte_ue(), true},
      {"LTE band 7 (2.6 GHz)", "lte2600", Hertz::mhz(2600.0),
       DeviceProfiles::lte_enb_rural(), DeviceProfiles::lte_ue(), true},
      {"WiFi 2.4 GHz ISM", "wifi24", Hertz::ghz(2.4),
       DeviceProfiles::wifi_ap_outdoor(), DeviceProfiles::wifi_client(),
       false},
      {"WiFi 5 GHz ISM (5.8 PtMP)", "wifi58", Hertz::ghz(5.8),
       DeviceProfiles::wifi_ap_outdoor(), DeviceProfiles::wifi_client(),
       false},
  };

  print_bench_header(std::cout, "C1", "paper §3.2, Spectrum Bands",
                     "sub-GHz LTE covers rural distances ISM WiFi cannot");
  dlte::bench::Harness harness{"c1_band_range"};

  TextTable t{{"radio", "distance", "DL SNR", "rate sel", "goodput"}};
  const std::vector<double> distances{250,   500,   1000,  2000, 5000,
                                      10000, 15000, 20000, 30000};
  for (const auto& opt : options) {
    const auto model = phy::make_rural_model(opt.frequency);
    for (double d : distances) {
      const Decibels snr = phy::link_snr(opt.ap, opt.client, *model,
                                         opt.frequency, d);
      double goodput = 0.0;
      std::string rate = "-";
      if (opt.is_lte) {
        if (phy::within_timing_advance(d)) {
          const int cqi = phy::select_cqi(snr);
          if (cqi > 0) {
            rate = "CQI " + std::to_string(cqi);
            goodput = lte_goodput_mbps(snr, opt.ap.bandwidth);
            harness.add_sim_seconds(1.0);
          }
        }
      } else {
        const int ri = phy::select_wifi_rate(snr);
        if (ri >= 0 && !phy::beyond_ack_range(d)) {
          rate = std::to_string(static_cast<int>(
                     phy::wifi_rate(ri).phy_rate.to_mbps())) +
                 " Mb/s PHY";
          harness.add_sim_seconds(1.0);
        } else if (ri >= 0) {
          rate = "ACK timeout";
        }
        goodput = wifi_goodput_mbps(snr, d);
      }
      t.row()
          .add(opt.name)
          .num(d / 1000.0, 1, "km")
          .num(snr.value(), 1, "dB")
          .add(rate)
          .num(goodput, 2, "Mb/s");
    }
  }
  t.print(std::cout);

  // Summary: max usable range (goodput > 1 Mb/s).
  TextTable s{{"radio", "range @ >1 Mb/s"}};
  for (const auto& opt : options) {
    const auto model = phy::make_rural_model(opt.frequency);
    double best = 0.0;
    for (double d = 50.0; d <= 60'000.0; d += 50.0) {
      const Decibels snr = phy::link_snr(opt.ap, opt.client, *model,
                                         opt.frequency, d);
      double g = 0.0;
      if (opt.is_lte) {
        if (phy::within_timing_advance(d) && phy::select_cqi(snr) > 0) {
          g = phy::peak_rate(snr, opt.ap.bandwidth).to_mbps();
        }
      } else if (!phy::beyond_ack_range(d)) {
        const int ri = phy::select_wifi_rate(snr);
        if (ri >= 0) g = phy::wifi_rate(ri).phy_rate.to_mbps() * 0.6;
      }
      if (g > 1.0) best = d;
    }
    harness.gauge(std::string{"c1."} + opt.slug + ".range_km", best / 1000.0);
    s.row().add(opt.name).num(best / 1000.0, 2, "km");
  }
  std::cout << "\nUsable range summary (shape check: LTE 850 MHz >> ISM "
               "WiFi):\n";
  s.print(std::cout);
  return harness.finish(0);
}
