// Experiment F1 — Figure 1: LTE vs dLTE architecture comparison.
//
// Three contrasts from the figure:
//   1. Data path: telecom LTE tunnels every user packet through the EPC
//      site (GTP overhead + trombone) before the Internet; dLTE breaks
//      out at the AP.
//   2. Control path: the attach dialogue runs against a core across the
//      backhaul vs a core on the AP itself.
//   3. Coordination path: AP↔AP exchanges go direct over the Internet in
//      dLTE, but are mediated by the carrier core in LTE.
// We build both topologies on the same substrate and sweep the backhaul
// RTT to the core site.
#include <iostream>
#include <string>

#include "bench_harness.h"
#include "common/table.h"
#include "core/enodeb.h"
#include "core/s1_fabric.h"
#include "epc/epc.h"
#include "lte/gtp.h"
#include "ue/nas_client.h"

namespace {
using namespace dlte;

crypto::Key128 key_for(std::uint64_t imsi) {
  crypto::Key128 k{};
  for (std::size_t i = 0; i < 16; ++i) {
    k[i] = static_cast<std::uint8_t>(imsi + i);
  }
  return k;
}

const crypto::Block128 kOp = [] {
  crypto::Block128 op{};
  op[0] = 0xcd;
  return op;
}();

// Measured attach latency through a given S1 pipe.
double attach_ms(bool networked, Duration backhaul_one_way,
                 obs::MetricsRegistry* reg = nullptr,
                 const std::string& prefix = "") {
  sim::Simulator sim;
  sim.set_metrics(reg, prefix);
  net::Network net{sim};
  net.set_metrics(reg, prefix);
  epc::EpcCore core{sim,
                    epc::EpcConfig{.deployment =
                                       networked
                                           ? epc::CoreDeployment::kCentralized
                                           : epc::CoreDeployment::kLocalStub,
                                   .network_id = "n"},
                    sim::RngStream{5}};
  core.set_metrics(reg, prefix);
  core::S1Fabric fabric{sim, core.mme()};
  core::EnodeB enb{sim, fabric, core::EnbConfig{.cell = CellId{1}}};
  if (networked) {
    const NodeId e = net.add_node("enb");
    const NodeId c = net.add_node("core");
    net.add_link(e, c, net::LinkConfig{DataRate::mbps(100.0),
                                       backhaul_one_way});
    fabric.register_enb_networked(net, CellId{1}, e, c,
                                  [&](const lte::S1apMessage& m) {
                                    enb.on_s1ap(m);
                                  });
  } else {
    fabric.register_enb_direct(CellId{1}, Duration::micros(50),
                               [&](const lte::S1apMessage& m) {
                                 enb.on_s1ap(m);
                               });
  }
  core.hss().provision(Imsi{42}, key_for(42), kOp);
  ue::SimProfile p{Imsi{42}, key_for(42), crypto::derive_opc(key_for(42), kOp),
                   true, "t"};
  ue::NasClient client{ue::Usim{p}, "n"};
  core::AttachOutcome out;
  enb.attach_ue(client, [&](core::AttachOutcome o) { out = o; });
  sim.run_all();
  return out.success ? out.elapsed.to_millis() : -1.0;
}

struct DataPath {
  double latency_ms;
  int hops;
  double stretch;
  int overhead_bytes;
};

// Build the user-plane topology and measure AP→server and AP↔AP paths.
void measure_paths(Duration core_one_way, DataPath& dlte, DataPath& telecom,
                   double& coord_direct_ms, double& coord_mediated_ms) {
  sim::Simulator sim;
  net::Network net{sim};
  const net::LinkConfig fast{DataRate::mbps(1000.0), Duration::millis(5)};

  const NodeId ap1 = net.add_node("ap1");
  const NodeId ap2 = net.add_node("ap2");
  const NodeId internet = net.add_node("internet");
  const NodeId core_site = net.add_node("epc-site");
  const NodeId server = net.add_node("server");

  // Both APs have local ISP uplinks; the EPC site hangs off the Internet
  // at the swept distance.
  net.add_link(ap1, internet, fast);
  net.add_link(ap2, internet, fast);
  net.add_link(internet, server, fast);
  net.add_link(core_site, internet,
               net::LinkConfig{DataRate::mbps(1000.0), core_one_way});

  constexpr int kPacket = 1200;

  // dLTE: breakout at the AP, straight to the server.
  dlte.latency_ms = net.path_latency(ap1, server, kPacket).to_millis();
  dlte.hops = net.hop_count(ap1, server);
  dlte.overhead_bytes = 0;  // Unencapsulated IP out of the AP.

  // Telecom: AP → EPC site (GTP-encapsulated) → Internet → server.
  const double leg1 =
      net.path_latency(ap1, core_site, kPacket + lte::kGtpTunnelOverheadBytes)
          .to_millis();
  const double leg2 =
      net.path_latency(core_site, server, kPacket).to_millis();
  telecom.latency_ms = leg1 + leg2;
  telecom.hops =
      net.hop_count(ap1, core_site) + net.hop_count(core_site, server);
  telecom.overhead_bytes = lte::kGtpTunnelOverheadBytes;

  const double direct = dlte.latency_ms;
  dlte.stretch = dlte.latency_ms / direct;
  telecom.stretch = telecom.latency_ms / direct;

  // Coordination RTTs.
  coord_direct_ms = 2.0 * net.path_latency(ap1, ap2, 200).to_millis();
  coord_mediated_ms = 2.0 * (net.path_latency(ap1, core_site, 200) +
                             net.path_latency(core_site, ap2, 200))
                                .to_millis();
}

}  // namespace

int main() {
  print_bench_header(
      std::cout, "F1", "paper Fig. 1 + §4.1/§4.2",
      "local breakout removes the EPC trombone from data, control and "
      "coordination paths");
  dlte::bench::Harness harness{"fig1_tunnel_vs_breakout"};

  TextTable t{{"backhaul to EPC", "arch", "AP-to-net latency", "hops",
               "stretch", "tunnel overhead", "attach", "AP-AP coord RTT"}};
  for (double one_way_ms : {10.0, 20.0, 40.0}) {
    const std::string bh =
        "f1.bh" + std::to_string(static_cast<int>(one_way_ms)) + "ms.";
    DataPath d{}, c{};
    double coord_direct = 0.0, coord_mediated = 0.0;
    measure_paths(Duration::millis(static_cast<std::int64_t>(one_way_ms)), d,
                  c, coord_direct, coord_mediated);
    const double dlte_attach =
        attach_ms(false, Duration{}, &harness.metrics(), bh + "dlte.");
    const double lte_attach = attach_ms(
        true, Duration::millis(static_cast<std::int64_t>(one_way_ms)),
        &harness.metrics(), bh + "lte.");
    harness.gauge(bh + "dlte.latency_ms", d.latency_ms);
    harness.gauge(bh + "dlte.attach_ms", dlte_attach);
    harness.gauge(bh + "dlte.coord_rtt_ms", coord_direct);
    harness.gauge(bh + "lte.latency_ms", c.latency_ms);
    harness.gauge(bh + "lte.stretch", c.stretch);
    harness.gauge(bh + "lte.attach_ms", lte_attach);
    harness.gauge(bh + "lte.coord_rtt_ms", coord_mediated);

    t.row()
        .num(one_way_ms, 0, "ms")
        .add("dLTE (breakout)")
        .num(d.latency_ms, 1, "ms")
        .integer(d.hops)
        .num(d.stretch, 2, "x")
        .integer(d.overhead_bytes)
        .num(dlte_attach, 0, "ms")
        .num(coord_direct, 1, "ms");
    t.row()
        .num(one_way_ms, 0, "ms")
        .add("LTE (EPC tunnel)")
        .num(c.latency_ms, 1, "ms")
        .integer(c.hops)
        .num(c.stretch, 2, "x")
        .integer(c.overhead_bytes)
        .num(lte_attach, 0, "ms")
        .num(coord_mediated, 1, "ms");
  }
  t.print(std::cout);

  std::cout << "\nShape check: dLTE latency/attach/coordination are flat in "
               "backhaul distance;\nthe EPC rows grow with it (the trombone) "
               "and carry 40 B/pkt of GTP overhead.\n";
  return harness.finish(0);
}
