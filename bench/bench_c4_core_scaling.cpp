// Experiment C4 — §4.1: "each stub can be independent of others, so the
// one stub per site model naturally scales as the total number of APs
// increases."
//
// An attach storm (20 UEs per AP, simultaneous) against:
//   * dLTE: one local core stub per AP — N independent signaling queues;
//   * centralized LTE: one shared MME (0.5 ms CPU per message) behind a
//     25 ms backhaul — one queue for the whole region.
// Reported per N: attach latency p50/p95, completed attach rate, and MME
// queueing delay. The centralized rows saturate; the stub rows are flat.
#include <algorithm>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_harness.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/enodeb.h"
#include "core/s1_fabric.h"
#include "epc/epc.h"
#include "ue/nas_client.h"

namespace {
using namespace dlte;

crypto::Key128 key_for(std::uint64_t imsi) {
  crypto::Key128 k{};
  for (std::size_t i = 0; i < 16; ++i) {
    k[i] = static_cast<std::uint8_t>(imsi * 3 + i);
  }
  return k;
}

const crypto::Block128 kOp = [] {
  crypto::Block128 op{};
  op[0] = 0xcd;
  return op;
}();

struct StormResult {
  Quantiles attach_ms;
  int completed{0};
  int failed{0};
  double elapsed_s{0.0};
  double mme_queue_p95_ms{0.0};
};

constexpr int kUesPerAp = 20;

// One centralized region: N eNodeBs, one MME across the backhaul.
StormResult centralized_storm(int n_aps, obs::MetricsRegistry* reg,
                              const std::string& prefix) {
  sim::Simulator sim;
  sim.set_metrics(reg, prefix);
  net::Network net{sim};
  net.set_metrics(reg, prefix);
  epc::EpcCore core{
      sim, epc::EpcConfig{.deployment = epc::CoreDeployment::kCentralized,
                          .network_id = "carrier"},
      sim::RngStream{17}};
  core.set_metrics(reg, prefix);
  core::S1Fabric fabric{sim, core.mme()};
  const NodeId core_node = net.add_node("epc");

  std::vector<std::unique_ptr<core::EnodeB>> enbs;
  for (int i = 0; i < n_aps; ++i) {
    const CellId cell{static_cast<std::uint32_t>(i + 1)};
    const NodeId enb_node = net.add_node("enb" + std::to_string(i));
    net.add_link(enb_node, core_node,
                 net::LinkConfig{DataRate::mbps(100.0), Duration::millis(25)});
    enbs.push_back(std::make_unique<core::EnodeB>(
        sim, fabric, core::EnbConfig{.cell = cell}));
    core::EnodeB* enb = enbs.back().get();
    fabric.register_enb_networked(net, cell, enb_node, core_node,
                                  [enb](const lte::S1apMessage& m) {
                                    enb->on_s1ap(m);
                                  });
  }

  StormResult result;
  std::vector<std::unique_ptr<ue::NasClient>> clients;
  std::uint64_t imsi = 1000;
  for (int a = 0; a < n_aps; ++a) {
    for (int u = 0; u < kUesPerAp; ++u) {
      ++imsi;
      core.hss().provision(Imsi{imsi}, key_for(imsi), kOp);
      ue::SimProfile p{Imsi{imsi}, key_for(imsi),
                       crypto::derive_opc(key_for(imsi), kOp), true, "t"};
      clients.push_back(
          std::make_unique<ue::NasClient>(ue::Usim{p}, "carrier"));
      enbs[static_cast<std::size_t>(a)]->attach_ue(
          *clients.back(), [&result](core::AttachOutcome o) {
            if (o.success) {
              ++result.completed;
              result.attach_ms.add(o.elapsed.to_millis());
            } else {
              ++result.failed;
            }
          });
    }
  }
  sim.run_all();
  result.elapsed_s = sim.now().to_seconds();
  result.mme_queue_p95_ms = core.mme().stats().queueing_delay_ms.p95();
  return result;
}

// N independent dLTE stubs, each with its own queue.
StormResult dlte_storm(int n_aps, obs::MetricsRegistry* reg,
                       const std::string& prefix) {
  sim::Simulator sim;
  sim.set_metrics(reg, prefix);
  StormResult result;
  struct Site {
    std::unique_ptr<epc::EpcCore> core;
    std::unique_ptr<core::S1Fabric> fabric;
    std::unique_ptr<core::EnodeB> enb;
  };
  std::vector<Site> sites;
  std::vector<std::unique_ptr<ue::NasClient>> clients;
  double worst_queue = 0.0;
  std::uint64_t imsi = 5000;
  for (int a = 0; a < n_aps; ++a) {
    Site s;
    s.core = std::make_unique<epc::EpcCore>(
        sim,
        epc::EpcConfig{.deployment = epc::CoreDeployment::kLocalStub,
                       .network_id = "dlte-ap-" + std::to_string(a)},
        sim::RngStream::derive(23, std::to_string(a)));
    // All stubs share the prefix: per-site counts aggregate into one set
    // of region-wide metrics, directly comparable to the centralized row.
    s.core->set_metrics(reg, prefix);
    s.fabric = std::make_unique<core::S1Fabric>(sim, s.core->mme());
    s.enb = std::make_unique<core::EnodeB>(
        sim, *s.fabric,
        core::EnbConfig{.cell = CellId{static_cast<std::uint32_t>(a + 1)}});
    core::EnodeB* enb = s.enb.get();
    s.fabric->register_enb_direct(
        CellId{static_cast<std::uint32_t>(a + 1)}, Duration::micros(50),
        [enb](const lte::S1apMessage& m) { enb->on_s1ap(m); });
    sites.push_back(std::move(s));
  }
  for (int a = 0; a < n_aps; ++a) {
    for (int u = 0; u < kUesPerAp; ++u) {
      ++imsi;
      sites[static_cast<std::size_t>(a)].core->hss().provision(
          Imsi{imsi}, key_for(imsi), kOp);
      ue::SimProfile p{Imsi{imsi}, key_for(imsi),
                       crypto::derive_opc(key_for(imsi), kOp), true, "t"};
      clients.push_back(std::make_unique<ue::NasClient>(
          ue::Usim{p}, "dlte-ap-" + std::to_string(a)));
      sites[static_cast<std::size_t>(a)].enb->attach_ue(
          *clients.back(), [&result](core::AttachOutcome o) {
            if (o.success) {
              ++result.completed;
              result.attach_ms.add(o.elapsed.to_millis());
            } else {
              ++result.failed;
            }
          });
    }
  }
  sim.run_all();
  result.elapsed_s = sim.now().to_seconds();
  for (auto& s : sites) {
    worst_queue =
        std::max(worst_queue, s.core->mme().stats().queueing_delay_ms.p95());
  }
  result.mme_queue_p95_ms = worst_queue;
  return result;
}

}  // namespace

int main() {
  print_bench_header(std::cout, "C4", "paper §4.1, Local Cores",
                     "per-AP core stubs scale linearly; a shared core "
                     "saturates under regional attach load");
  dlte::bench::Harness harness{"c4_core_scaling"};

  TextTable t{{"APs", "UEs", "arch", "attach p50", "attach p95",
               "core queue p95", "attach rate", "completed"}};
  for (int n : {1, 2, 4, 8, 16, 32, 64}) {
    for (bool central : {false, true}) {
      const std::string prefix = "c4.n" + std::to_string(n) +
                                 (central ? ".central." : ".dlte.");
      const StormResult r = central
                                ? centralized_storm(n, &harness.metrics(),
                                                    prefix)
                                : dlte_storm(n, &harness.metrics(), prefix);
      harness.add_sim_seconds(r.elapsed_s);
      harness.gauge(prefix + "attach_p50_ms", r.attach_ms.median());
      harness.gauge(prefix + "attach_p95_ms", r.attach_ms.p95());
      harness.gauge(prefix + "queue_p95_ms", r.mme_queue_p95_ms);
      harness.counter(prefix + "completed",
                      static_cast<std::uint64_t>(r.completed));
      const double rate =
          r.completed / std::max(r.attach_ms.quantile(1.0) / 1000.0, 1e-9);
      t.row()
          .integer(n)
          .integer(n * kUesPerAp)
          .add(central ? "centralized EPC" : "dLTE stubs")
          .num(r.attach_ms.median(), 0, "ms")
          .num(r.attach_ms.p95(), 0, "ms")
          .num(r.mme_queue_p95_ms, 1, "ms")
          .num(rate, 0, "att/s")
          .integer(r.completed);
    }
  }
  t.print(std::cout);

  std::cout << "\nShape check: dLTE p95 attach latency is flat in N (each "
               "stub serves only its own site);\ncentralized p95 grows with "
               "N as the shared MME queue builds.\n";
  return harness.finish(0);
}
