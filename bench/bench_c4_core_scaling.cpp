// Experiment C4 — §4.1: "each stub can be independent of others, so the
// one stub per site model naturally scales as the total number of APs
// increases."
//
// An attach storm (20 UEs per AP, simultaneous) against:
//   * dLTE: one local core stub per AP — N independent signaling queues;
//   * centralized LTE: one shared MME (0.5 ms CPU per message) behind a
//     25 ms backhaul — one queue for the whole region.
// Reported per N: attach latency p50/p95, completed attach rate, and MME
// queueing delay. The centralized rows saturate; the stub rows are flat.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_harness.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/enodeb.h"
#include "core/s1_fabric.h"
#include "epc/epc.h"
#include "par/partition.h"
#include "par/sharded_sim.h"
#include "ue/nas_client.h"

namespace {
using namespace dlte;

crypto::Key128 key_for(std::uint64_t imsi) {
  crypto::Key128 k{};
  for (std::size_t i = 0; i < 16; ++i) {
    k[i] = static_cast<std::uint8_t>(imsi * 3 + i);
  }
  return k;
}

const crypto::Block128 kOp = [] {
  crypto::Block128 op{};
  op[0] = 0xcd;
  return op;
}();

struct StormResult {
  Quantiles attach_ms;
  int completed{0};
  int failed{0};
  double elapsed_s{0.0};
  double mme_queue_p95_ms{0.0};
};

constexpr int kUesPerAp = 20;

// One centralized region: N eNodeBs, one MME across the backhaul.
StormResult centralized_storm(int n_aps, obs::MetricsRegistry* reg,
                              const std::string& prefix) {
  sim::Simulator sim;
  sim.set_metrics(reg, prefix);
  net::Network net{sim};
  net.set_metrics(reg, prefix);
  epc::EpcCore core{
      sim, epc::EpcConfig{.deployment = epc::CoreDeployment::kCentralized,
                          .network_id = "carrier"},
      sim::RngStream{17}};
  core.set_metrics(reg, prefix);
  core::S1Fabric fabric{sim, core.mme()};
  const NodeId core_node = net.add_node("epc");

  std::vector<std::unique_ptr<core::EnodeB>> enbs;
  for (int i = 0; i < n_aps; ++i) {
    const CellId cell{static_cast<std::uint32_t>(i + 1)};
    const NodeId enb_node = net.add_node("enb" + std::to_string(i));
    net.add_link(enb_node, core_node,
                 net::LinkConfig{DataRate::mbps(100.0), Duration::millis(25)});
    enbs.push_back(std::make_unique<core::EnodeB>(
        sim, fabric, core::EnbConfig{.cell = cell}));
    core::EnodeB* enb = enbs.back().get();
    fabric.register_enb_networked(net, cell, enb_node, core_node,
                                  [enb](const lte::S1apMessage& m) {
                                    enb->on_s1ap(m);
                                  });
  }

  StormResult result;
  std::vector<std::unique_ptr<ue::NasClient>> clients;
  std::uint64_t imsi = 1000;
  for (int a = 0; a < n_aps; ++a) {
    for (int u = 0; u < kUesPerAp; ++u) {
      ++imsi;
      core.hss().provision(Imsi{imsi}, key_for(imsi), kOp);
      ue::SimProfile p{Imsi{imsi}, key_for(imsi),
                       crypto::derive_opc(key_for(imsi), kOp), true, "t"};
      clients.push_back(
          std::make_unique<ue::NasClient>(ue::Usim{p}, "carrier"));
      enbs[static_cast<std::size_t>(a)]->attach_ue(
          *clients.back(), [&result](core::AttachOutcome o) {
            if (o.success) {
              ++result.completed;
              result.attach_ms.add(o.elapsed.to_millis());
            } else {
              ++result.failed;
            }
          });
    }
  }
  sim.run_all();
  result.elapsed_s = sim.now().to_seconds();
  result.mme_queue_p95_ms = core.mme().stats().queueing_delay_ms.p95();
  return result;
}

// N independent dLTE stubs, each with its own queue.
StormResult dlte_storm(int n_aps, obs::MetricsRegistry* reg,
                       const std::string& prefix) {
  sim::Simulator sim;
  sim.set_metrics(reg, prefix);
  StormResult result;
  struct Site {
    std::unique_ptr<epc::EpcCore> core;
    std::unique_ptr<core::S1Fabric> fabric;
    std::unique_ptr<core::EnodeB> enb;
  };
  std::vector<Site> sites;
  std::vector<std::unique_ptr<ue::NasClient>> clients;
  double worst_queue = 0.0;
  std::uint64_t imsi = 5000;
  for (int a = 0; a < n_aps; ++a) {
    Site s;
    s.core = std::make_unique<epc::EpcCore>(
        sim,
        epc::EpcConfig{.deployment = epc::CoreDeployment::kLocalStub,
                       .network_id = "dlte-ap-" + std::to_string(a)},
        sim::RngStream::derive(23, std::to_string(a)));
    // All stubs share the prefix: per-site counts aggregate into one set
    // of region-wide metrics, directly comparable to the centralized row.
    s.core->set_metrics(reg, prefix);
    s.fabric = std::make_unique<core::S1Fabric>(sim, s.core->mme());
    s.enb = std::make_unique<core::EnodeB>(
        sim, *s.fabric,
        core::EnbConfig{.cell = CellId{static_cast<std::uint32_t>(a + 1)}});
    core::EnodeB* enb = s.enb.get();
    s.fabric->register_enb_direct(
        CellId{static_cast<std::uint32_t>(a + 1)}, Duration::micros(50),
        [enb](const lte::S1apMessage& m) { enb->on_s1ap(m); });
    sites.push_back(std::move(s));
  }
  for (int a = 0; a < n_aps; ++a) {
    for (int u = 0; u < kUesPerAp; ++u) {
      ++imsi;
      sites[static_cast<std::size_t>(a)].core->hss().provision(
          Imsi{imsi}, key_for(imsi), kOp);
      ue::SimProfile p{Imsi{imsi}, key_for(imsi),
                       crypto::derive_opc(key_for(imsi), kOp), true, "t"};
      clients.push_back(std::make_unique<ue::NasClient>(
          ue::Usim{p}, "dlte-ap-" + std::to_string(a)));
      sites[static_cast<std::size_t>(a)].enb->attach_ue(
          *clients.back(), [&result](core::AttachOutcome o) {
            if (o.success) {
              ++result.completed;
              result.attach_ms.add(o.elapsed.to_millis());
            } else {
              ++result.failed;
            }
          });
    }
  }
  sim.run_all();
  result.elapsed_s = sim.now().to_seconds();
  for (auto& s : sites) {
    worst_queue =
        std::max(worst_queue, s.core->mme().stats().queueing_delay_ms.p95());
  }
  result.mme_queue_p95_ms = worst_queue;
  return result;
}

// The same N-stub storm hosted on the sharded runtime (src/par/): sites
// block-partitioned across shards, each shard advanced by its own
// worker thread. The stubs never talk to each other, so this isolates
// the runtime's own cost/scaling on the exact workload of the dLTE rows
// above — and the per-site event sequences must come out identical at
// every shard count (checked by the caller).
StormResult sharded_storm(int n_aps, std::size_t shards,
                          obs::MetricsRegistry* reg,
                          const std::string& prefix) {
  par::ShardedSimulator rt{par::ShardedConfig{
      .shards = shards, .threads = shards,
      .lookahead = Duration::millis(10)}};
  rt.set_metrics(reg, prefix);
  struct Site {
    std::unique_ptr<epc::EpcCore> core;
    std::unique_ptr<core::S1Fabric> fabric;
    std::unique_ptr<core::EnodeB> enb;
    // Touched only by the owning shard's worker during the run.
    std::vector<double> attach_samples;
    int completed{0};
    int failed{0};
  };
  std::vector<std::unique_ptr<Site>> sites;
  std::vector<std::unique_ptr<ue::NasClient>> clients;
  std::uint64_t imsi = 9000;
  for (int a = 0; a < n_aps; ++a) {
    const std::size_t shard =
        par::shard_of_block(static_cast<std::size_t>(a),
                            static_cast<std::size_t>(n_aps), shards);
    sim::Simulator& sim = rt.shard_sim(shard);
    auto s = std::make_unique<Site>();
    s->core = std::make_unique<epc::EpcCore>(
        sim,
        epc::EpcConfig{.deployment = epc::CoreDeployment::kLocalStub,
                       .network_id = "dlte-ap-" + std::to_string(a)},
        sim::RngStream::derive(23, std::to_string(a)));
    s->core->set_metrics(&rt.shard_registry(shard), prefix);
    s->fabric = std::make_unique<core::S1Fabric>(sim, s->core->mme());
    s->enb = std::make_unique<core::EnodeB>(
        sim, *s->fabric,
        core::EnbConfig{.cell = CellId{static_cast<std::uint32_t>(a + 1)}});
    core::EnodeB* enb = s->enb.get();
    s->fabric->register_enb_direct(
        CellId{static_cast<std::uint32_t>(a + 1)}, Duration::micros(50),
        [enb](const lte::S1apMessage& m) { enb->on_s1ap(m); });
    Site* site = s.get();
    for (int u = 0; u < kUesPerAp; ++u) {
      ++imsi;
      s->core->hss().provision(Imsi{imsi}, key_for(imsi), kOp);
      ue::SimProfile p{Imsi{imsi}, key_for(imsi),
                       crypto::derive_opc(key_for(imsi), kOp), true, "t"};
      clients.push_back(std::make_unique<ue::NasClient>(
          ue::Usim{p}, "dlte-ap-" + std::to_string(a)));
      s->enb->attach_ue(*clients.back(), [site](core::AttachOutcome o) {
        if (o.success) {
          ++site->completed;
          site->attach_samples.push_back(o.elapsed.to_millis());
        } else {
          ++site->failed;
        }
      });
    }
    sites.push_back(std::move(s));
  }
  rt.run_until(TimePoint{} + Duration::seconds(5.0));
  rt.merged_metrics_into(*reg);
  StormResult result;
  double worst_queue = 0.0;
  for (auto& s : sites) {
    result.completed += s->completed;
    result.failed += s->failed;
    for (const double ms : s->attach_samples) result.attach_ms.add(ms);
    worst_queue =
        std::max(worst_queue, s->core->mme().stats().queueing_delay_ms.p95());
  }
  result.mme_queue_p95_ms = worst_queue;
  // Attaches all start at t=0, so the slowest one marks completion.
  result.elapsed_s =
      result.completed > 0 ? result.attach_ms.quantile(1.0) / 1000.0 : 0.0;
  return result;
}

}  // namespace

int main() {
  print_bench_header(std::cout, "C4", "paper §4.1, Local Cores",
                     "per-AP core stubs scale linearly; a shared core "
                     "saturates under regional attach load");
  dlte::bench::Harness harness{"c4_core_scaling"};

  TextTable t{{"APs", "UEs", "arch", "attach p50", "attach p95",
               "core queue p95", "attach rate", "completed"}};
  for (int n : {1, 2, 4, 8, 16, 32, 64}) {
    for (bool central : {false, true}) {
      const std::string prefix = "c4.n" + std::to_string(n) +
                                 (central ? ".central." : ".dlte.");
      const StormResult r = central
                                ? centralized_storm(n, &harness.metrics(),
                                                    prefix)
                                : dlte_storm(n, &harness.metrics(), prefix);
      harness.add_sim_seconds(r.elapsed_s);
      harness.gauge(prefix + "attach_p50_ms", r.attach_ms.median());
      harness.gauge(prefix + "attach_p95_ms", r.attach_ms.p95());
      harness.gauge(prefix + "queue_p95_ms", r.mme_queue_p95_ms);
      harness.counter(prefix + "completed",
                      static_cast<std::uint64_t>(r.completed));
      const double rate =
          r.completed / std::max(r.attach_ms.quantile(1.0) / 1000.0, 1e-9);
      t.row()
          .integer(n)
          .integer(n * kUesPerAp)
          .add(central ? "centralized EPC" : "dLTE stubs")
          .num(r.attach_ms.median(), 0, "ms")
          .num(r.attach_ms.p95(), 0, "ms")
          .num(r.mme_queue_p95_ms, 1, "ms")
          .num(rate, 0, "att/s")
          .integer(r.completed);
    }
  }
  t.print(std::cout);

  std::cout << "\nShape check: dLTE p95 attach latency is flat in N (each "
               "stub serves only its own site);\ncentralized p95 grows with "
               "N as the shared MME queue builds.\n";

  // The sharded runtime hosting the 64-AP storm: same scenario, sites
  // block-partitioned across worker-driven shards. Latencies must be
  // bit-identical to the 1-shard hosting at every shard count.
  std::cout << "\nSharded runtime (src/par/), 64-AP dLTE storm:\n";
  TextTable t2{{"shards", "threads", "attach p50", "attach p95", "completed",
                "wall", "speedup", "identical"}};
  constexpr int kParAps = 64;
  StormResult par_base;
  double base_wall = 0.0;
  bool par_identical = true;
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    const std::string prefix = "c4.par.s" + std::to_string(shards) + ".";
    const auto start = std::chrono::steady_clock::now();
    const StormResult r =
        sharded_storm(kParAps, shards, &harness.metrics(), prefix);
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    harness.add_sim_seconds(r.elapsed_s);
    harness.gauge(prefix + "attach_p50_ms", r.attach_ms.median());
    harness.gauge(prefix + "attach_p95_ms", r.attach_ms.p95());
    harness.counter(prefix + "completed",
                    static_cast<std::uint64_t>(r.completed));
    harness.timing("par_run_s" + std::to_string(shards), wall);
    bool identical = true;
    if (shards == 1) {
      par_base = r;
      base_wall = wall;
    } else {
      identical = r.completed == par_base.completed &&
                  r.failed == par_base.failed &&
                  r.attach_ms.median() == par_base.attach_ms.median() &&
                  r.attach_ms.p95() == par_base.attach_ms.p95() &&
                  r.attach_ms.quantile(1.0) ==
                      par_base.attach_ms.quantile(1.0);
      par_identical = par_identical && identical;
      harness.timing("par_speedup_s" + std::to_string(shards),
                     base_wall / wall);
    }
    harness.counter(prefix + "identical", identical ? 1 : 0);
    t2.row()
        .integer(static_cast<int>(shards))
        .integer(static_cast<int>(shards))
        .num(r.attach_ms.median(), 0, "ms")
        .num(r.attach_ms.p95(), 0, "ms")
        .integer(r.completed)
        .num(wall * 1000.0, 1, "ms")
        .num(shards == 1 ? 1.0 : base_wall / wall, 2, "x")
        .add(identical ? "yes" : "NO");
  }
  t2.print(std::cout);
  std::cout << "\nSharded rows reproduce the 64-AP 'dLTE stubs' latencies at "
               "every shard count\n(speedup is wall-clock and "
               "machine-dependent; single-core hosts show ~1.0x).\n";
  if (!par_identical) {
    std::cerr << "c4: sharded storm diverged from the 1-shard hosting\n";
  }
  return harness.finish(par_identical ? 0 : 1);
}
