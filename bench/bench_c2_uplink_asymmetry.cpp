// Experiment C2 — §3.2 "LTE Waveform", uplink asymmetry.
//
// Claim: "LTE's SC-FDMA uplink modulation allows higher power
// transmission and greater range from mobile devices." The handset's PA
// can run near saturation on a single-carrier uplink, while an OFDM WiFi
// client must back off for PAPR. We sweep uplink distance and report the
// SNR at the basestation, the usable rate, and the distance where each
// uplink dies — with an ablation row that gives the WiFi client its PAPR
// backoff back, isolating the waveform effect from the band effect.
#include <iostream>
#include <string>

#include "bench_harness.h"
#include "common/table.h"
#include "mac/lte_cell_mac.h"
#include "phy/link_budget.h"
#include "phy/lte_amc.h"
#include "phy/wifi_phy.h"

namespace {
using namespace dlte;

double lte_ul_goodput_mbps(Decibels snr) {
  mac::LteCellMac cell{mac::CellMacConfig{}};
  cell.add_ue(UeId{1}, [snr] { return snr; },
              mac::UeTrafficConfig{.full_buffer = true});
  cell.run(Duration::seconds(1.0));
  return cell.stats(UeId{1}).goodput(cell.elapsed()).to_mbps();
}

double wifi_ul_rate_mbps(Decibels snr, double distance_m) {
  if (phy::beyond_ack_range(distance_m)) return 0.0;
  const int ri = phy::select_wifi_rate(snr);
  if (ri < 0) return 0.0;
  // Single uplink station: PHY rate scaled by MAC efficiency and FER.
  const double fer = phy::wifi_frame_error_rate(ri, snr);
  return phy::wifi_rate(ri).phy_rate.to_mbps() * 0.65 * (1.0 - fer);
}
}  // namespace

int main() {
  using phy::DeviceProfiles;

  print_bench_header(
      std::cout, "C2", "paper §3.2, LTE Waveform",
      "SC-FDMA power headroom extends usable uplink range vs OFDM WiFi");
  dlte::bench::Harness harness{"c2_uplink_asymmetry"};

  struct Row {
    const char* name;
    const char* slug;  // Metric-name segment for this uplink.
    Hertz freq;
    phy::RadioProfile client;
    phy::RadioProfile ap;
    bool is_lte;
  };

  auto wifi_no_backoff = DeviceProfiles::wifi_client();
  wifi_no_backoff.tx_power = PowerDbm{18.0};  // Ablation: no PAPR backoff.

  std::vector<Row> rows{
      {"LTE UE @850 (SC-FDMA, 23 dBm)", "lte850", Hertz::mhz(850.0),
       DeviceProfiles::lte_ue(), DeviceProfiles::lte_enb_rural(), true},
      {"WiFi client @2.4 (OFDM, 15 dBm eff)", "wifi24", Hertz::ghz(2.4),
       DeviceProfiles::wifi_client(), DeviceProfiles::wifi_ap_outdoor(),
       false},
      {"WiFi client @2.4 (no-backoff ablation)", "wifi24_nobackoff",
       Hertz::ghz(2.4), wifi_no_backoff, DeviceProfiles::wifi_ap_outdoor(),
       false},
  };

  TextTable t{{"uplink", "distance", "UL SNR @BS", "goodput"}};
  for (const auto& r : rows) {
    const auto model = phy::make_rural_model(r.freq);
    for (double d : {250.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0,
                     15000.0}) {
      const Decibels snr =
          phy::link_snr(r.client, r.ap, *model, r.freq, d);
      const bool lte_run = r.is_lte && phy::within_timing_advance(d);
      if (lte_run) harness.add_sim_seconds(1.0);
      const double g = r.is_lte
                           ? (lte_run ? lte_ul_goodput_mbps(snr) : 0.0)
                           : wifi_ul_rate_mbps(snr, d);
      t.row()
          .add(r.name)
          .num(d / 1000.0, 1, "km")
          .num(snr.value(), 1, "dB")
          .num(g, 2, "Mb/s");
    }
  }
  t.print(std::cout);

  TextTable s{{"uplink", "usable range (>0.5 Mb/s)"}};
  for (const auto& r : rows) {
    const auto model = phy::make_rural_model(r.freq);
    double best = 0.0;
    for (double d = 100.0; d <= 40'000.0; d += 100.0) {
      const Decibels snr =
          phy::link_snr(r.client, r.ap, *model, r.freq, d);
      double g = 0.0;
      if (r.is_lte) {
        if (phy::within_timing_advance(d) && phy::select_cqi(snr) > 0) {
          g = phy::peak_rate(snr, Hertz::mhz(10.0)).to_mbps();
        }
      } else {
        g = wifi_ul_rate_mbps(snr, d);
      }
      if (g > 0.5) best = d;
    }
    harness.gauge(std::string{"c2."} + r.slug + ".range_km", best / 1000.0);
    s.row().add(r.name).num(best / 1000.0, 2, "km");
  }
  std::cout << "\nUplink range summary:\n";
  s.print(std::cout);
  return harness.finish(0);
}
