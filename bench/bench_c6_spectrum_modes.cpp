// Experiment C6 — §4.3: registry-coordinated sharing vs WiFi contention.
//
// Four APs in a line with a skewed client population (6/2/1/3 UEs) on one
// co-channel allocation. Compared:
//   * WiFi DCF       — CSMA/CA with physics-derived sensing/interference
//                      relations (the far AP pair is mutually hidden);
//   * dLTE isolated  — LTE waveform but no coordination: co-channel
//                      interference limits the cell edge;
//   * dLTE fair-share— live PeerCoordinators converge to max-min shares,
//                      orthogonal spectrum (no co-channel interference);
//   * dLTE cooperative— demand-proportional shares plus best-AP client
//                      assignment (resource fusion).
// Plus the registry sub-table: time for a *new* AP to join and reach its
// first coordinated share under the three registry designs.
#include <algorithm>
#include <iostream>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "bench_harness.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/radio_env.h"
#include "mac/lte_cell_mac.h"
#include "mac/wifi_dcf.h"
#include "phy/wifi_phy.h"
#include "spectrum/coordinator.h"
#include "spectrum/fair_share.h"
#include "spectrum/registry.h"

namespace {
using namespace dlte;

constexpr int kAps = 4;
const double kApX[kAps] = {0.0, 1200.0, 2400.0, 3600.0};
const int kUesPerAp[kAps] = {6, 2, 1, 3};

struct UePlace {
  Position pos;
  int home;
};

std::vector<UePlace> place_ues() {
  std::vector<UePlace> out;
  for (int a = 0; a < kAps; ++a) {
    for (int u = 0; u < kUesPerAp[a]; ++u) {
      // Spread clients to ±600 m of their AP, alternating sides.
      const double off = (u % 2 == 0 ? 1.0 : -1.0) * (150.0 + 90.0 * u);
      out.push_back(UePlace{Position{kApX[a] + off, 200.0}, a});
    }
  }
  return out;
}

struct ModeResult {
  double aggregate_mbps{0.0};
  double fairness{0.0};
  double min_ue_mbps{1e9};
  std::string note;
};

// ---- LTE modes (isolated / fair-share / cooperative) -------------------

ModeResult run_lte(lte::DlteMode mode,
                   mac::SchedulerPolicy policy =
                       mac::SchedulerPolicy::kProportionalFair) {
  core::RadioEnvironment env;
  // Same 20 MHz of spectrum as the WiFi channel, for a like-for-like
  // comparison of the coordination discipline rather than the allocation.
  auto lte_profile = phy::DeviceProfiles::lte_enb_rural();
  lte_profile.bandwidth = Hertz::mhz(20.0);
  for (int a = 0; a < kAps; ++a) {
    env.add_cell(core::CellSiteConfig{
        CellId{static_cast<std::uint32_t>(a + 1)}, Position{kApX[a], 0.0},
        lte_profile});
    if (mode != lte::DlteMode::kIsolated) {
      env.set_coordinated(CellId{static_cast<std::uint32_t>(a + 1)}, true);
    }
  }
  const auto ues = place_ues();

  // Demands proportional to client population.
  std::vector<double> demands;
  const double max_ues =
      *std::max_element(std::begin(kUesPerAp), std::end(kUesPerAp));
  for (int a = 0; a < kAps; ++a) demands.push_back(kUesPerAp[a] / max_ues);

  std::vector<double> shares(kAps, 1.0);
  if (mode == lte::DlteMode::kFairShare) {
    shares = spectrum::max_min_fair_shares(demands);
  } else if (mode == lte::DlteMode::kCooperative) {
    shares = spectrum::proportional_shares(demands);
  }

  // Client → cell assignment: cooperative mode may move a client to the
  // strongest AP; otherwise clients stay with their home AP.
  std::vector<int> serving(ues.size());
  for (std::size_t i = 0; i < ues.size(); ++i) {
    serving[i] = ues[i].home;
    if (mode == lte::DlteMode::kCooperative) {
      const auto best = env.best_cell(ues[i].pos);
      if (best) serving[i] = static_cast<int>(best->value()) - 1;
    }
  }

  // Build one MAC per cell and run.
  std::vector<std::unique_ptr<mac::LteCellMac>> cells;
  for (int a = 0; a < kAps; ++a) {
    mac::CellMacConfig mc;
    mc.bandwidth = Hertz::mhz(20.0);
    mc.policy = policy;
    mc.prb_share = shares[static_cast<std::size_t>(a)];
    mc.seed = static_cast<std::uint64_t>(a + 1);
    cells.push_back(std::make_unique<mac::LteCellMac>(mc));
  }
  for (std::size_t i = 0; i < ues.size(); ++i) {
    const int cell_index = serving[i];
    const CellId cell{static_cast<std::uint32_t>(cell_index + 1)};
    const Position pos = ues[i].pos;
    const core::RadioEnvironment* envp = &env;
    cells[static_cast<std::size_t>(cell_index)]->add_ue(
        UeId{static_cast<std::uint32_t>(i + 1)},
        [envp, cell, pos] { return envp->downlink_sinr(cell, pos); },
        mac::UeTrafficConfig{.full_buffer = true});
  }
  for (auto& c : cells) c->run(Duration::seconds(2.0));

  ModeResult r;
  std::vector<double> per_ue;
  for (int a = 0; a < kAps; ++a) {
    for (UeId id : cells[static_cast<std::size_t>(a)]->ue_ids()) {
      const double mbps = cells[static_cast<std::size_t>(a)]
                              ->stats(id)
                              .goodput(cells[static_cast<std::size_t>(a)]
                                           ->elapsed())
                              .to_mbps();
      per_ue.push_back(mbps);
      r.aggregate_mbps += mbps;
      r.min_ue_mbps = std::min(r.min_ue_mbps, mbps);
    }
  }
  r.fairness = jain_fairness(per_ue);
  return r;
}

// ---- WiFi DCF baseline --------------------------------------------------

ModeResult run_wifi() {
  const auto ues = place_ues();
  // WiFi APs sit on rooftops (~10 m) in town clutter, not on 30 m masts
  // in the open: a log-distance clutter exponent governs both AP-AP
  // carrier sensing and AP-client links. This is what makes distant AP
  // pairs mutually hidden while their transmissions still collide at
  // clients in between.
  const phy::LogDistanceModel model{2.6};
  auto ap_prof = phy::DeviceProfiles::wifi_ap_outdoor();
  ap_prof.antenna_height_m = 10.0;
  const auto cl_prof = phy::DeviceProfiles::wifi_client();

  // Per-AP operating rate from its median client SNR.
  std::vector<int> rate(kAps);
  std::vector<Position> median_ue(kAps);
  for (int a = 0; a < kAps; ++a) {
    Quantiles snrs;
    for (const auto& u : ues) {
      if (u.home != a) continue;
      snrs.add(phy::link_snr(ap_prof, cl_prof, model, Hertz::ghz(2.4),
                             distance_m(Position{kApX[a], 0.0}, u.pos))
                   .value());
    }
    rate[a] = std::max(0, phy::select_wifi_rate(Decibels{snrs.median()}));
    median_ue[a] = Position{kApX[a], 200.0};
  }

  mac::DcfSimulator dcf{99};
  for (int a = 0; a < kAps; ++a) {
    dcf.add_station(mac::DcfStationConfig{.rate_index = rate[a]});
  }
  // Physics-derived relations.
  constexpr double kCsThresholdDbm = -82.0;
  constexpr double kInterferenceDbm = -88.0;
  int hidden_pairs = 0;
  for (int i = 0; i < kAps; ++i) {
    for (int j = 0; j < kAps; ++j) {
      if (i == j) continue;
      const double ap_ap =
          phy::received_power(ap_prof, ap_prof, model, Hertz::ghz(2.4),
                              std::abs(kApX[i] - kApX[j]))
              .value();
      const bool senses = ap_ap > kCsThresholdDbm;
      if (i < j) {
        dcf.set_sensing(i, j, senses);
        if (!senses) ++hidden_pairs;
      }
      const double at_victim =
          phy::received_power(ap_prof, cl_prof, model, Hertz::ghz(2.4),
                              distance_m(Position{kApX[i], 0.0},
                                         median_ue[static_cast<std::size_t>(
                                             j)]))
              .value();
      dcf.set_interference(i, j, at_victim > kInterferenceDbm);
    }
  }
  dcf.run(Duration::seconds(2.0));

  ModeResult r;
  std::vector<double> per_ue;
  std::int64_t collisions = 0;
  for (int a = 0; a < kAps; ++a) {
    const double ap_mbps = dcf.stats(a).goodput(dcf.elapsed()).to_mbps();
    collisions += dcf.stats(a).collisions;
    for (int u = 0; u < kUesPerAp[a]; ++u) {
      const double share = ap_mbps / kUesPerAp[a];
      per_ue.push_back(share);
      r.aggregate_mbps += share;
      r.min_ue_mbps = std::min(r.min_ue_mbps, share);
    }
  }
  r.fairness = jain_fairness(per_ue);
  r.note = std::to_string(hidden_pairs) + " hidden pair(s), " +
           std::to_string(collisions) + " collisions";
  return r;
}

// ---- Fractional frequency reuse (ablation) ------------------------------
//
// The isolated row shows reuse-1's high aggregate but starved edge; the
// coordinated rows show the reverse. FFR is the standard compromise the
// cooperative mode could negotiate: cell-center clients share a reuse-1
// band (beta of the spectrum, with interference), cell-edge clients get
// orthogonal slices of the rest.
ModeResult run_ffr(double beta) {
  core::RadioEnvironment reuse_env;   // Nobody coordinated: interference.
  core::RadioEnvironment clean_env;   // Everyone coordinated: orthogonal.
  auto lte_profile = phy::DeviceProfiles::lte_enb_rural();
  lte_profile.bandwidth = Hertz::mhz(20.0);
  for (int a = 0; a < kAps; ++a) {
    const CellId cell{static_cast<std::uint32_t>(a + 1)};
    reuse_env.add_cell(core::CellSiteConfig{cell, Position{kApX[a], 0.0},
                                            lte_profile});
    clean_env.add_cell(core::CellSiteConfig{cell, Position{kApX[a], 0.0},
                                            lte_profile});
    clean_env.set_coordinated(cell, true);
  }
  const auto ues = place_ues();
  constexpr double kEdgeSinrDb = 9.0;  // Below this under reuse-1: edge.

  // Two MACs per cell: the reuse-1 center subband and this cell's
  // orthogonal edge slice.
  std::vector<std::unique_ptr<mac::LteCellMac>> center, edge;
  for (int a = 0; a < kAps; ++a) {
    mac::CellMacConfig cc;
    cc.bandwidth = Hertz::mhz(20.0);
    cc.prb_share = beta;
    cc.seed = static_cast<std::uint64_t>(a + 31);
    center.push_back(std::make_unique<mac::LteCellMac>(cc));
    mac::CellMacConfig ec;
    ec.bandwidth = Hertz::mhz(20.0);
    ec.prb_share = (1.0 - beta) / kAps;
    ec.seed = static_cast<std::uint64_t>(a + 61);
    edge.push_back(std::make_unique<mac::LteCellMac>(ec));
  }
  for (std::size_t i = 0; i < ues.size(); ++i) {
    const int a = ues[i].home;
    const CellId cell{static_cast<std::uint32_t>(a + 1)};
    const Position pos = ues[i].pos;
    const bool is_edge =
        reuse_env.downlink_sinr(cell, pos).value() < kEdgeSinrDb;
    const core::RadioEnvironment* envp = is_edge ? &clean_env : &reuse_env;
    auto& macs = is_edge ? edge : center;
    macs[static_cast<std::size_t>(a)]->add_ue(
        UeId{static_cast<std::uint32_t>(i + 1)},
        [envp, cell, pos] { return envp->downlink_sinr(cell, pos); },
        mac::UeTrafficConfig{.full_buffer = true});
  }
  ModeResult r;
  std::vector<double> per_ue;
  for (auto* group : {&center, &edge}) {
    for (auto& c : *group) {
      c->run(Duration::seconds(2.0));
      for (UeId id : c->ue_ids()) {
        const double mbps =
            c->stats(id).goodput(c->elapsed()).to_mbps();
        per_ue.push_back(mbps);
        r.aggregate_mbps += mbps;
        r.min_ue_mbps = std::min(r.min_ue_mbps, mbps);
      }
    }
  }
  r.fairness = jain_fairness(per_ue);
  r.note = "beta=" + std::to_string(beta).substr(0, 4);
  return r;
}

}  // namespace

int main() {
  print_bench_header(std::cout, "C6", "paper §4.3, Out-of-Band Coordination",
                     "registry + X2 coordination beats CSMA contention; "
                     "cooperation beats plain fair sharing under skewed "
                     "load");
  dlte::bench::Harness harness{"c6_spectrum_modes"};
  auto mode_gauges = [&harness](const std::string& slug,
                                const ModeResult& r) {
    harness.gauge("c6." + slug + ".aggregate_mbps", r.aggregate_mbps);
    harness.gauge("c6." + slug + ".fairness", r.fairness);
    harness.gauge("c6." + slug + ".worst_ue_mbps", r.min_ue_mbps);
  };

  TextTable t{{"scheme", "aggregate", "Jain fairness", "worst UE", "notes"}};
  {
    const ModeResult w = run_wifi();
    harness.add_sim_seconds(2.0);
    mode_gauges("wifi", w);
    t.row()
        .add("WiFi DCF (CSMA/CA)")
        .num(w.aggregate_mbps, 2, "Mb/s")
        .num(w.fairness, 3)
        .num(w.min_ue_mbps, 2, "Mb/s")
        .add(w.note);
  }
  struct Mode {
    const char* name;
    const char* slug;
    lte::DlteMode mode;
  };
  for (const auto& m :
       {Mode{"dLTE isolated (no coord)", "isolated", lte::DlteMode::kIsolated},
        Mode{"dLTE fair-share", "fair_share", lte::DlteMode::kFairShare},
        Mode{"dLTE cooperative", "cooperative",
             lte::DlteMode::kCooperative}}) {
    const ModeResult r = run_lte(m.mode);
    harness.add_sim_seconds(2.0 * kAps);
    mode_gauges(m.slug, r);
    t.row()
        .add(m.name)
        .num(r.aggregate_mbps, 2, "Mb/s")
        .num(r.fairness, 3)
        .num(r.min_ue_mbps, 2, "Mb/s")
        .add(m.mode == lte::DlteMode::kIsolated ? "co-channel interference"
                                                : "orthogonal shares");
  }
  t.print(std::cout);

  // FFR ablation: reuse-1 center + orthogonal edge slices.
  std::cout << "\nFractional frequency reuse (a coordination agreement the "
               "cooperative mode could\nnegotiate): reuse-1 for the cell "
               "center, orthogonal slices for the edge:\n";
  TextTable ffr{{"scheme", "aggregate", "Jain fairness", "worst UE",
                 "notes"}};
  for (double beta : {0.3, 0.5, 0.7}) {
    const ModeResult r = run_ffr(beta);
    harness.add_sim_seconds(2.0 * 2 * kAps);  // Center + edge MAC per cell.
    mode_gauges("ffr.b" + std::to_string(static_cast<int>(beta * 100.0)), r);
    ffr.row()
        .add("dLTE FFR")
        .num(r.aggregate_mbps, 2, "Mb/s")
        .num(r.fairness, 3)
        .num(r.min_ue_mbps, 2, "Mb/s")
        .add(r.note);
  }
  ffr.print(std::cout);

  // Scheduler ablation (DESIGN.md §5): within cooperative mode, the
  // per-cell scheduling policy trades peak for tail exactly as textbook.
  std::cout << "\nScheduler ablation (cooperative mode):\n";
  TextTable sched{{"scheduler", "aggregate", "Jain fairness", "worst UE"}};
  for (auto [name, pol] :
       {std::pair{"proportional fair", mac::SchedulerPolicy::kProportionalFair},
        std::pair{"round robin", mac::SchedulerPolicy::kRoundRobin},
        std::pair{"max C/I", mac::SchedulerPolicy::kMaxCi}}) {
    const ModeResult r = run_lte(lte::DlteMode::kCooperative, pol);
    harness.add_sim_seconds(2.0 * kAps);
    const char* slug = pol == mac::SchedulerPolicy::kProportionalFair ? "pf"
                       : pol == mac::SchedulerPolicy::kRoundRobin     ? "rr"
                                                                      : "maxci";
    mode_gauges(std::string{"sched."} + slug, r);
    sched.row()
        .add(name)
        .num(r.aggregate_mbps, 2, "Mb/s")
        .num(r.fairness, 3)
        .num(r.min_ue_mbps, 2, "Mb/s");
  }
  sched.print(std::cout);

  // Registry design ablation: join-to-coordinated latency.
  std::cout << "\nRegistry designs — time for a joining AP to acquire a "
               "grant, discover peers and receive its first share:\n";
  TextTable reg{{"registry", "grant commit", "domain query",
                 "join-to-coordinated (1 s reports)"}};
  for (auto kind : {spectrum::RegistryKind::kCentralizedSas,
                    spectrum::RegistryKind::kFederated,
                    spectrum::RegistryKind::kBlockchain}) {
    const auto lat = spectrum::registry_latency(kind);
    const char* name =
        kind == spectrum::RegistryKind::kCentralizedSas ? "centralized SAS"
        : kind == spectrum::RegistryKind::kFederated    ? "federated (DNS-like)"
                                                        : "blockchain";
    const char* slug =
        kind == spectrum::RegistryKind::kCentralizedSas ? "sas"
        : kind == spectrum::RegistryKind::kFederated    ? "federated"
                                                        : "blockchain";
    // Join path: commit + query + one report round (status out, proposal
    // back) over a 30 ms backhaul RTT.
    const double join_s = lat.commit.to_seconds() + lat.query.to_seconds() +
                          1.0 + 0.06;
    harness.gauge(std::string{"c6.registry."} + slug + ".join_s", join_s);
    reg.row()
        .add(name)
        .num(lat.commit.to_seconds(), 2, "s")
        .num(lat.query.to_seconds(), 2, "s")
        .num(join_s, 2, "s");
  }
  reg.print(std::cout);

  std::cout << "\nShape check: all dLTE modes beat DCF's contention-limited "
               "aggregate. Uncoordinated\nco-channel reuse posts a high "
               "aggregate from near-in clients but starves the cell edge\n"
               "(worst UE, fairness); fair sharing restores a WiFi-like "
               "equilibrium, and cooperative\nmode adds demand-proportional "
               "fusion + best-AP steering (best worst-UE service).\n";
  return harness.finish(0);
}
