// Experiment C12 — the registry at planet scale (DESIGN.md §16).
//
// The paper's registry (§4.3) is "a lightweight open public license
// database" — lightweight must survive success. This bench holds the
// three registry pillars to millions of leases:
//
//   A. Spatial index: region queries against 1M grants through the
//      zone-bucketed index vs the seed's linear scan — the ≥10x gate.
//   B. Batched commits: the blockchain design's commit throughput as the
//      per-block record cap grows 1 → 64 at a fixed block interval — the
//      ≥4x gate, with registry.commits_per_block in the compared metrics.
//   C. Churn storm: RegistryPlaneScenario — ~1M leases kept alive by
//      heartbeat batches across the par runtime while one zone's
//      registrar dies for longer than the heartbeat grace. The sweep
//      runs 1/2/4 shards and byte-compares merged metrics, series
//      (with the churn SLO alert timeline), openmetrics, and the audit
//      merged section IN PROCESS. With --shards=N
//      [--par-artifacts=PREFIX] it runs one configuration and dumps the
//      artifacts — the par-determinism / health-gate drive mode.
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_harness.h"
#include "common/table.h"
#include "obs/audit_export.h"
#include "par/registry_plane.h"
#include "spectrum/chain.h"
#include "spectrum/registry.h"

namespace {
using namespace dlte;

struct C12Options {
  // Section A: grant population for the region-query microbench.
  int spatial_grants{1'000'000};
  int spatial_probes{64};
  int linear_probes{8};  // The linear scan is ~100x slower; probe less.
  // Section B: offered commits per cap at a 1 s block interval.
  int batch_offered{2'000};
  double batch_horizon_s{40.0};
  // Section C: blocks × leases_per_block total leases.
  int blocks{1'024};
  int leases_per_block{1'024};
  double horizon_s{75.0};
};

C12Options parse_options(int argc, char** argv) {
  C12Options opt;
  const std::map<std::string, int*> int_flags{
      {"--spatial-grants=", &opt.spatial_grants},
      {"--batch-offered=", &opt.batch_offered},
      {"--blocks=", &opt.blocks},
      {"--leases-per-block=", &opt.leases_per_block},
  };
  constexpr const char kHorizon[] = "--horizon-s=";
  for (int i = 1; i < argc; ++i) {
    for (const auto& [prefix, dst] : int_flags) {
      if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
        const long n = std::atol(argv[i] + prefix.size());
        if (n > 0) *dst = static_cast<int>(n);
      }
    }
    if (std::strncmp(argv[i], kHorizon, sizeof(kHorizon) - 1) == 0) {
      const double s = std::atof(argv[i] + sizeof(kHorizon) - 1);
      if (s > 0.0) opt.horizon_s = s;
    }
  }
  return opt;
}

double wall_seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// ---- Section A: spatial index vs linear scan --------------------------

struct SpatialResult {
  std::uint64_t grants{0};
  std::uint64_t matches{0};
  bool identical{true};
  double indexed_us_per_query{0.0};
  double linear_us_per_query{0.0};
};

SpatialResult run_spatial(const C12Options& opt) {
  sim::Simulator sim;
  spectrum::Registry reg{sim, spectrum::RegistryKind::kCentralizedSas};
  // Spread grants evenly over a 16×16 grid of 50 km zones (an 800 km
  // square — a metro region per zone) on 15 CBRS-style channels.
  // Deterministic placement, no RNG.
  const int n = opt.spatial_grants;
  const double extent_m = 16.0 * spectrum::Registry::kZoneSizeM;
  const int grid =
      static_cast<int>(std::sqrt(static_cast<double>(n))) + 1;
  for (int i = 0; i < n; ++i) {
    spectrum::GrantRequest req;
    req.ap = ApId{static_cast<std::uint32_t>(i + 1)};
    req.location = Position{(i % grid + 0.5) * (extent_m / grid),
                            (i / grid + 0.5) * (extent_m / grid)};
    req.center_frequency = Hertz::mhz(3550.0 + 10.0 * (i % 15));
    req.bandwidth = Hertz::mhz(10.0);
    req.operator_contact = "c12@bench";
    auto g = reg.grant_now(req);
    if (!g.ok()) std::abort();
  }

  // Bench-local seed baseline: the O(n) scan grants_near used to be,
  // with the per-band interference range precomputed exactly as the
  // registry memoizes it.
  std::map<std::int64_t, double> range_by_band;
  const auto& all = reg.grants();
  for (const auto& g : all) {
    const auto key = static_cast<std::int64_t>(g.center_frequency.hz());
    if (range_by_band.find(key) == range_by_band.end()) {
      range_by_band[key] = spectrum::interference_range_m(g);
    }
  }
  const auto linear_count = [&](Position p) {
    std::uint64_t count = 0;
    for (const auto& g : all) {
      const double r =
          range_by_band[static_cast<std::int64_t>(g.center_frequency.hz())];
      const double dx = g.location.x_m - p.x_m;
      const double dy = g.location.y_m - p.y_m;
      if (dx * dx + dy * dy <= r * r) ++count;
    }
    return count;
  };
  const auto probe = [&](int i) {
    return Position{(i * 37 % 100 + 0.5) * (extent_m / 100.0),
                    (i * 59 % 100 + 0.5) * (extent_m / 100.0)};
  };

  SpatialResult out;
  out.grants = static_cast<std::uint64_t>(n);
  // Correctness first: index and scan agree probe by probe.
  for (int i = 0; i < opt.linear_probes; ++i) {
    const Position p = probe(i);
    const std::uint64_t indexed = reg.count_grants_near(p);
    const std::uint64_t linear = linear_count(p);
    out.matches += indexed;
    if (indexed != linear) out.identical = false;
  }
  // Then the clocks.
  auto start = std::chrono::steady_clock::now();
  std::uint64_t sink = 0;
  for (int i = 0; i < opt.spatial_probes; ++i) {
    sink += reg.count_grants_near(probe(i));
  }
  out.indexed_us_per_query =
      wall_seconds_since(start) * 1e6 / opt.spatial_probes;
  start = std::chrono::steady_clock::now();
  for (int i = 0; i < opt.linear_probes; ++i) sink += linear_count(probe(i));
  out.linear_us_per_query =
      wall_seconds_since(start) * 1e6 / opt.linear_probes;
  if (sink == 0) std::abort();  // Keep the loops honest.
  return out;
}

// ---- Section B: batched commit scaling --------------------------------

std::uint64_t run_batch(const C12Options& opt, std::size_t cap,
                        obs::MetricsRegistry* metrics,
                        const std::string& prefix) {
  sim::Simulator sim;
  spectrum::SpectrumChain chain{sim, Duration::seconds(1.0)};
  chain.set_max_records_per_block(cap);
  spectrum::Registry reg{sim, spectrum::RegistryKind::kBlockchain};
  // attach_chain starts the chain and re-points its metrics at the
  // registry's (none here) — attach first, then claim the metrics.
  reg.attach_chain(&chain);
  if (metrics != nullptr) chain.set_metrics(metrics, prefix);
  std::uint64_t committed = 0;
  for (int i = 0; i < opt.batch_offered; ++i) {
    spectrum::GrantRequest req;
    req.ap = ApId{static_cast<std::uint32_t>(i + 1)};
    req.location = Position{(i % 64) * 2'000.0, (i / 64) * 2'000.0};
    req.center_frequency = Hertz::mhz(3550.0 + 10.0 * (i % 15));
    req.bandwidth = Hertz::mhz(10.0);
    req.operator_contact = "c12@bench";
    reg.request_grant(req, [&committed](Result<spectrum::SpectrumGrant> r) {
      if (r.ok()) ++committed;
    });
  }
  sim.run_until(sim.now() + Duration::seconds(opt.batch_horizon_s));
  return committed;
}

// ---- Section C: churn storm on the par runtime ------------------------

par::RegistryPlaneConfig storm_config(const C12Options& opt,
                                      std::size_t shards,
                                      std::size_t threads) {
  par::RegistryPlaneConfig cfg;
  cfg.blocks = opt.blocks;
  cfg.leases_per_block = opt.leases_per_block;
  cfg.zones_x = 8;
  cfg.zones_y = 8;
  cfg.shards = shards;
  cfg.threads = threads;
  cfg.horizon = Duration::seconds(opt.horizon_s);
  cfg.audit = true;
  return cfg;
}

struct StormOutput {
  par::RegistryPlaneResult result;
  std::string metrics;
  std::string series;
  std::string openmetrics;
  std::string audit_merged;
  obs::AuditDoc audit_doc;
  double wall_s{0.0};
};

StormOutput run_storm(const C12Options& opt, std::size_t shards,
                      std::size_t threads, dlte::bench::Harness* harness) {
  par::RegistryPlaneScenario plane{storm_config(opt, shards, threads)};
  if (harness != nullptr) {
    plane.runtime().set_metrics(
        &harness->metrics(), "c12.s" + std::to_string(shards) + ".");
  }
  const auto start = std::chrono::steady_clock::now();
  StormOutput out;
  out.result = plane.run();
  out.wall_s = wall_seconds_since(start);
  out.metrics = plane.metrics_json();
  out.series = plane.series_json("c12_registry_scale");
  out.openmetrics = plane.openmetrics_text();
  out.audit_doc = plane.runtime().audit_doc();
  out.audit_merged = obs::AuditExporter::merged_json(out.audit_doc);
  return out;
}

bool write_text(const std::string& path, const std::string& text) {
  std::ofstream f{path, std::ios::binary | std::ios::trunc};
  f << text;
  return static_cast<bool>(f);
}

void record_storm(dlte::bench::Harness& harness, const std::string& prefix,
                  const par::RegistryPlaneResult& r) {
  harness.counter(prefix + "grants_issued", r.grants_issued);
  harness.counter(prefix + "grant_failures", r.grant_failures);
  harness.counter(prefix + "heartbeats_ok", r.heartbeats_ok);
  harness.counter(prefix + "heartbeats_failed", r.heartbeats_failed);
  harness.counter(prefix + "grants_lapsed", r.grants_lapsed);
  harness.counter(prefix + "regrant_batches", r.regrant_batches);
  harness.counter(prefix + "queries_answered", r.queries_answered);
  harness.counter(prefix + "cache_hits", r.cache_hits);
  harness.counter(prefix + "cache_misses", r.cache_misses);
  harness.counter(prefix + "cache_stale_serves", r.cache_stale_serves);
  harness.counter(prefix + "cache_root_sheds", r.cache_root_sheds);
  harness.counter(prefix + "leases_held", r.leases_held);
  harness.counter(prefix + "alert_fired", r.outage_alert_fired ? 1 : 0);
  harness.counter(prefix + "alert_resolved", r.outage_alert_resolved ? 1 : 0);
  const double lookups = static_cast<double>(r.cache_hits + r.cache_misses +
                                             r.cache_root_sheds);
  harness.gauge(prefix + "cache_hit_ratio",
                lookups == 0.0 ? 0.0 : r.cache_hits / lookups);
}
}  // namespace

int main(int argc, char** argv) {
  dlte::bench::Harness harness{"c12_registry_scale"};
  harness.parse_args(argc, argv);
  const C12Options opt = parse_options(argc, argv);

  // Gate mode: one churn-storm configuration, artifacts to files.
  if (!harness.par_artifacts().empty()) {
    const std::size_t shards = harness.shards() == 0 ? 1 : harness.shards();
    StormOutput out = run_storm(opt, shards, harness.par_threads(), &harness);
    harness.add_sim_seconds(out.result.sim_seconds);
    harness.timing("storm_s" + std::to_string(shards), out.wall_s);
    harness.throughput(out.result.events_executed, out.wall_s);
    record_storm(harness, "c12.storm.", out.result);
    const std::string& prefix = harness.par_artifacts();
    bool ok = write_text(prefix + ".metrics.json", out.metrics);
    ok = write_text(prefix + ".series.json", out.series) && ok;
    ok = write_text(prefix + ".openmetrics.txt", out.openmetrics) && ok;
    ok = write_text(prefix + ".audit.json",
                    obs::AuditExporter::to_json(out.audit_doc,
                                                "c12_registry_scale") +
                        "\n") &&
         ok;
    harness.set_audit(std::move(out.audit_doc));
    std::cout << "C12 gate mode: shards=" << shards
              << " leases=" << out.result.leases_held
              << " lapsed=" << out.result.grants_lapsed
              << " alert=" << (out.result.outage_alert_fired ? "fired" : "NO")
              << "/" << (out.result.outage_alert_resolved ? "resolved" : "NO")
              << " artifacts=" << prefix << ".*\n";
    if (!ok) std::cerr << "c12: failed to write artifacts\n";
    return harness.finish(ok ? 0 : 1);
  }

  print_bench_header(std::cout, "C12", "paper §4.3, registry scale",
                     "a lightweight open license database must stay "
                     "lightweight at millions of leases: indexed region "
                     "queries, batched chain commits, and a zone-outage "
                     "churn storm that the whole observability stack "
                     "rides through deterministically");

  bool ok = true;

  // ---- A: region queries at 1M grants -------------------------------
  const SpatialResult spatial = run_spatial(opt);
  const double speedup =
      spatial.indexed_us_per_query == 0.0
          ? 0.0
          : spatial.linear_us_per_query / spatial.indexed_us_per_query;
  harness.counter("c12.spatial.grants", spatial.grants);
  harness.counter("c12.spatial.matches", spatial.matches);
  harness.counter("c12.spatial.identical", spatial.identical ? 1 : 0);
  harness.timing("spatial_indexed_us_per_query",
                 spatial.indexed_us_per_query * 1e-6);
  harness.timing("spatial_linear_us_per_query",
                 spatial.linear_us_per_query * 1e-6);
  harness.timing("spatial_speedup", speedup);
  {
    TextTable t{{"grants", "indexed", "linear scan", "speedup", "agree"}};
    t.row()
        .integer(static_cast<long long>(spatial.grants))
        .num(spatial.indexed_us_per_query, 1, "us/q")
        .num(spatial.linear_us_per_query, 1, "us/q")
        .num(speedup, 1, "x")
        .add(spatial.identical ? "yes" : "NO");
    t.print(std::cout);
  }
  ok = ok && spatial.identical && speedup >= 10.0;
  if (speedup < 10.0) {
    std::cerr << "c12: spatial speedup " << speedup << "x < 10x gate\n";
  }

  // ---- B: batched commit scaling ------------------------------------
  std::cout << "\n";
  std::uint64_t committed_cap1 = 0;
  std::uint64_t committed_cap64 = 0;
  {
    TextTable t{{"records/block", "committed", "commit rate"}};
    for (const std::size_t cap : {1u, 4u, 16u, 64u}) {
      const std::string prefix = "c12.batch.cap" + std::to_string(cap) + ".";
      const std::uint64_t committed =
          run_batch(opt, cap, &harness.metrics(), prefix);
      harness.counter(prefix + "committed", committed);
      if (cap == 1) committed_cap1 = committed;
      if (cap == 64) committed_cap64 = committed;
      t.row()
          .integer(static_cast<long long>(cap))
          .integer(static_cast<long long>(committed))
          .num(committed / opt.batch_horizon_s, 1, "/s");
    }
    t.print(std::cout);
  }
  ok = ok && committed_cap64 >= 4 * committed_cap1 && committed_cap1 > 0;
  if (committed_cap64 < 4 * committed_cap1) {
    std::cerr << "c12: batch=64 commit throughput < 4x batch=1 gate\n";
  }

  // ---- C: churn storm across 1/2/4 shards ----------------------------
  std::cout << "\n";
  TextTable t{{"shards", "leases", "lapsed", "regrants", "hit%", "events",
               "wall", "identical"}};
  StormOutput base;
  for (const std::size_t shards : {1u, 2u, 4u}) {
    StormOutput out = run_storm(opt, shards, shards, &harness);
    harness.add_sim_seconds(out.result.sim_seconds);
    harness.timing("storm_s" + std::to_string(shards), out.wall_s);
    harness.throughput(out.result.events_executed, out.wall_s);
    bool identical = true;
    if (shards == 1) {
      base = out;
      record_storm(harness, "c12.storm.", out.result);
    } else {
      identical = out.metrics == base.metrics && out.series == base.series &&
                  out.openmetrics == base.openmetrics &&
                  out.audit_merged == base.audit_merged;
      ok = ok && identical;
    }
    harness.counter("c12.s" + std::to_string(shards) + ".identical",
                    identical ? 1 : 0);
    const auto& r = out.result;
    const double lookups = static_cast<double>(r.cache_hits + r.cache_misses +
                                               r.cache_root_sheds);
    t.row()
        .integer(static_cast<long long>(shards))
        .integer(static_cast<long long>(r.leases_held))
        .integer(static_cast<long long>(r.grants_lapsed))
        .integer(static_cast<long long>(r.regrant_batches))
        .num(lookups == 0.0 ? 0.0 : 100.0 * r.cache_hits / lookups, 1)
        .integer(static_cast<long long>(r.events_executed))
        .num(out.wall_s, 2, "s")
        .add(identical ? "yes" : "NO");
    if (shards == 4) harness.set_audit(std::move(out.audit_doc));
  }
  t.print(std::cout);

  // The storm must complete its arc: every lease lapses zone-wide is
  // too strong (only the storm zone suffers), but the totals must show
  // a real outage and a full recovery, with the SLO timeline attached.
  const auto& r = base.result;
  const std::uint64_t quota =
      static_cast<std::uint64_t>(opt.blocks) *
      static_cast<std::uint64_t>(opt.leases_per_block);
  ok = ok && r.leases_held == quota && r.grants_lapsed > 0 &&
       r.regrant_batches > 0 && r.outage_alert_fired &&
       r.outage_alert_resolved && r.cache_hits > 0;
  std::cout << "\nleases=" << r.leases_held << "/" << quota
            << " lapsed=" << r.grants_lapsed << " regrant_batches="
            << r.regrant_batches << " cache hits=" << r.cache_hits
            << " misses=" << r.cache_misses << " stale=" <<
      r.cache_stale_serves
            << " sheds=" << r.cache_root_sheds
            << " alert=" << (r.outage_alert_fired ? "fired" : "NO") << "/"
            << (r.outage_alert_resolved ? "resolved" : "NO") << "\n"
            << "Merged metrics, series (with the churn SLO timeline), "
               "openmetrics, and the audit merged section are byte-compared "
               "across 1/2/4 shards in-process.\n";
  if (!ok) std::cerr << "c12: a gate failed (see above)\n";
  return harness.finish(ok ? 0 : 1);
}
