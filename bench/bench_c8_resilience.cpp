// Experiment C8 — §4.1/§6: "the failure of one AP's core affects only
// that AP" — resilience under core failure.
//
// A two-AP town with 12 UEs camped on AP 1. At t=30 s a fault plan
// crashes AP 1's local core for 30 s (volatile MME/S-GW state lost, cell
// off the air). Under dLTE the UEs' failover agents re-attach to AP 2
// within seconds and service continues; the report shows the measured
// MTTR and an eventual attach rate of 1. The centralized foil runs the
// same town where both cells hang off ONE shared core: the same fault
// takes the whole region dark — zero UEs in service mid-outage.
//
// The run is fully deterministic: the same seed yields byte-identical
// ResilienceReports, which this binary verifies by running the dLTE
// scenario twice.
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_harness.h"
#include "common/table.h"
#include "fault/failover.h"
#include "fault/fault.h"
#include "fault/health.h"
#include "fault/resilience.h"
#include "sim/telemetry.h"
#include "sim/trace.h"
#include "spectrum/health.h"
#include "ue/mobility.h"

namespace {
using namespace dlte;

constexpr int kUes = 12;
constexpr double kHorizonS = 90.0;
constexpr double kCrashAtS = 30.0;
constexpr double kCrashDurationS = 30.0;
constexpr double kMidOutageProbeS = 45.0;
// A registry outage well before the crash: heartbeats fail for 8 s, the
// APs ride it out in degraded-power mode (grace 12 s > outage), and the
// registry_outage SLO alert fires and resolves on the health timeline.
constexpr double kRegistryOutageAtS = 10.0;
constexpr double kRegistryOutageDurationS = 8.0;
constexpr double kLeaseLifetimeS = 6.0;  // Heartbeats every 2 s.
constexpr double kLeaseGraceS = 12.0;

struct RunResult {
  fault::ResilienceReport report;
  std::string report_text;
  int in_service_mid_outage{0};
  std::uint64_t faults_injected{0};
};

// One town, two cells 4 km apart, every UE parked near AP 1. With
// `shared_core` the fault plan models a centralized deployment: both
// cells depend on the same core site, so the crash takes both down.
// `reg` may be null (the determinism replay runs without metrics so the
// main run's counters are not double-counted). With `sampler`/`monitor`
// a TelemetryDriver ticks the §10 telemetry plane on this run's clock —
// ticks only read metrics, so the replay (which runs without them) must
// still reproduce the report byte for byte.
RunResult run_town(std::uint64_t seed, bool shared_core,
                   obs::MetricsRegistry* reg = nullptr,
                   const std::string& metrics_prefix = "",
                   obs::TimeSeriesSampler* sampler = nullptr,
                   obs::SloMonitor* monitor = nullptr) {
  sim::Simulator sim;
  sim.set_metrics(reg, metrics_prefix);
  net::Network net{sim};
  net.set_metrics(reg, metrics_prefix);
  net.set_impairment_seed(seed);
  core::RadioEnvironment radio;
  spectrum::Registry registry{sim, spectrum::RegistryKind::kCentralizedSas};
  registry.set_metrics(reg, metrics_prefix);
  // CBRS-style leases: a dead AP's grant lapses instead of haunting the
  // contention domain, and heartbeat failures give the SLO monitor a
  // client-side symptom of registry outages.
  registry.set_grant_lifetime(Duration::seconds(kLeaseLifetimeS));
  registry.set_heartbeat_grace(Duration::seconds(kLeaseGraceS));
  sim::TraceLog trace{sim};
  trace.set_metrics(reg, metrics_prefix);
  sim::TelemetryDriver telemetry{sim, sampler, monitor};
  telemetry.set_trace(&trace);
  if (sampler != nullptr || monitor != nullptr) telemetry.start();
  const NodeId internet = net.add_node("internet");

  std::vector<std::unique_ptr<core::DlteAccessPoint>> aps;
  for (std::uint32_t id = 1; id <= 2; ++id) {
    const NodeId node = net.add_node("ap" + std::to_string(id));
    net.add_link(node, internet,
                 net::LinkConfig{DataRate::mbps(50.0), Duration::millis(15)});
    core::ApConfig cfg;
    cfg.id = ApId{id};
    cfg.cell = CellId{id};
    cfg.position = Position{(id - 1) * 4'000.0, 0.0};
    cfg.seed = seed + id;
    aps.push_back(
        std::make_unique<core::DlteAccessPoint>(sim, net, node, radio, cfg));
    aps.back()->bring_up(registry);
    // Both APs aggregate into one set of town-wide EPC/X2 counters.
    aps.back()->core().set_metrics(reg, metrics_prefix);
    aps.back()->coordinator().set_metrics(reg, metrics_prefix);
    // Per-box health gauges (ap<id>.up / lease state) stay separate.
    aps.back()->set_metrics(reg, metrics_prefix);
  }
  sim.run_until(TimePoint{} + Duration::seconds(2.0));

  crypto::Block128 op{};
  op[0] = 0xcd;
  std::vector<std::unique_ptr<core::UeDevice>> ues;
  for (std::uint64_t u = 0; u < kUes; ++u) {
    crypto::Key128 k{};
    for (std::size_t i = 0; i < 16; ++i) {
      k[i] = static_cast<std::uint8_t>(u * 7 + i);
    }
    const Imsi imsi{730010000000000ULL + u};
    const auto opc = crypto::derive_opc(k, op);
    registry.publish_subscriber(epc::PublishedKeys{imsi, k, opc});
    ues.push_back(std::make_unique<core::UeDevice>(
        ue::SimProfile{imsi, k, opc, true, "town"},
        std::make_unique<ue::StaticMobility>(
            Position{400.0 + 90.0 * static_cast<double>(u), 0.0})));
  }
  for (auto& ap : aps) ap->import_published_subscribers(registry);

  fault::ResilienceTracker tracker{sim};
  tracker.set_metrics(reg, metrics_prefix);
  fault::UeFailoverAgent agent{sim, radio, &tracker};
  for (auto& ap : aps) agent.add_ap(ap.get());
  for (auto& ue : ues) agent.manage(*ue, mac::UeTrafficConfig{});
  agent.start();

  fault::FaultInjector injector{sim};
  injector.set_metrics(reg, metrics_prefix);
  for (auto& ap : aps) injector.register_ap(ap.get());
  injector.set_network(&net);
  injector.set_registry(&registry);
  injector.set_trace(&trace);

  fault::FaultPlan plan;
  // Registry outage first (both architectures — A/B stays fair): shorter
  // than the heartbeat grace, so the APs degrade power but keep serving.
  fault::FaultSpec outage;
  outage.kind = fault::FaultKind::kRegistryOutage;
  outage.at = TimePoint{} + Duration::seconds(kRegistryOutageAtS);
  outage.duration = Duration::seconds(kRegistryOutageDurationS);
  outage.outage = spectrum::RegistryOutage::kOffline;
  plan.add(outage);
  fault::FaultSpec crash;
  crash.kind = fault::FaultKind::kApCrash;
  crash.at = TimePoint{} + Duration::seconds(kCrashAtS);
  crash.duration = Duration::seconds(kCrashDurationS);
  crash.ap = ApId{1};
  plan.add(crash);
  if (shared_core) {
    // Centralized: AP 2's cell has no core of its own — the same site
    // failure takes it dark for the same window.
    fault::FaultSpec twin = crash;
    twin.ap = ApId{2};
    plan.add(twin);
  }
  injector.arm(plan);

  RunResult result;
  sim.schedule_at(TimePoint{} + Duration::seconds(kMidOutageProbeS), [&] {
    for (auto& ue : ues) {
      if (ue->attached() && tracker.in_service(ue->imsi())) {
        ++result.in_service_mid_outage;
      }
    }
  });

  const TimePoint horizon = TimePoint{} + Duration::seconds(kHorizonS);
  sim.run_until(horizon);

  result.report = tracker.report(horizon);
  result.report.fault_events = trace.count(sim::TraceCategory::kFault);
  result.report_text = result.report.to_string();
  result.faults_injected = injector.stats().injected;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  print_bench_header(
      std::cout, "C8", "paper §4.1/§6, Local Cores",
      "an AP core failure is contained: UEs fail over to a neighbor in "
      "seconds, while a centralized core is a region-wide single point of "
      "failure");
  dlte::bench::Harness harness{"c8_resilience"};
  harness.parse_args(argc, argv);
  if (harness.slo() != nullptr) {
    // SLO coverage for the metered dLTE run: registry symptoms, service
    // (client-side) health, and one up/down rule per box.
    harness.slo()->add_rules(
        spectrum::default_registry_slo_rules("c8.dlte.", "registry"));
    harness.slo()->add_rules(fault::default_resilience_slo_rules(
        kUes, "c8.dlte.", "service"));
    for (int ap = 1; ap <= 2; ++ap) {
      obs::SloRule up;
      up.name = "ap" + std::to_string(ap) + "_down";
      up.scope = "ap" + std::to_string(ap);
      up.metric = "c8.dlte.ap" + std::to_string(ap) + ".up";
      up.predicate = obs::SloPredicate::kGaugeAtLeast;
      up.threshold = 1.0;
      harness.slo()->add_rule(up);
    }
  }

  const std::uint64_t seed = 2018;
  const RunResult dlte =
      run_town(seed, /*shared_core=*/false, &harness.metrics(), "c8.dlte.",
               harness.sampler(), harness.slo());
  const RunResult central =
      run_town(seed, /*shared_core=*/true, &harness.metrics(), "c8.central.");
  harness.add_sim_seconds(2 * kHorizonS);
  harness.gauge("c8.dlte.availability", dlte.report.availability);
  harness.gauge("c8.dlte.mttr_s", dlte.report.mttr_s);
  harness.gauge("c8.dlte.reattach_p95_s", dlte.report.reattach_p95_s);
  harness.gauge("c8.dlte.eventual_attach_rate",
                dlte.report.eventual_attach_rate);
  harness.gauge("c8.dlte.in_service_mid_outage", dlte.in_service_mid_outage);
  harness.gauge("c8.central.availability", central.report.availability);
  harness.gauge("c8.central.in_service_mid_outage",
                central.in_service_mid_outage);

  TextTable t{{"architecture", "ues", "avail", "mttr", "reattach-p95",
               "eventual-attach", "in-service@t=45s"}};
  t.row()
      .add("dLTE (per-AP core)")
      .integer(static_cast<long long>(dlte.report.ues))
      .num(dlte.report.availability, 3)
      .num(dlte.report.mttr_s, 2, " s")
      .num(dlte.report.reattach_p95_s, 2, " s")
      .num(dlte.report.eventual_attach_rate * 100.0, 1, " %")
      .integer(dlte.in_service_mid_outage);
  t.row()
      .add("centralized core")
      .integer(static_cast<long long>(central.report.ues))
      .num(central.report.availability, 3)
      .num(central.report.mttr_s, 2, " s")
      .num(central.report.reattach_p95_s, 2, " s")
      .num(central.report.eventual_attach_rate * 100.0, 1, " %")
      .integer(central.in_service_mid_outage);
  t.print(std::cout);

  std::cout << "\ndLTE resilience report:\n" << dlte.report_text;

  // Determinism gate: the same seed must reproduce the report byte for
  // byte (the property the fault subsystem is built around).
  const RunResult replay = run_town(seed, /*shared_core=*/false);
  const bool deterministic = replay.report_text == dlte.report_text;
  std::cout << "\nsame-seed replay byte-identical: "
            << (deterministic ? "yes" : "NO — DETERMINISM BROKEN") << "\n";

  const bool contained = dlte.in_service_mid_outage > 0 &&
                         central.in_service_mid_outage == 0 &&
                         dlte.report.eventual_attach_rate >= 0.99;
  std::cout << "shape check: "
            << (contained && deterministic
                    ? "PASS — failure contained to one AP, neighbor absorbed "
                      "the re-attach storm"
                    : "FAIL — expected dLTE to keep serving mid-outage and "
                      "the centralized town to go dark")
            << "\n";
  return harness.finish(contained && deterministic ? 0 : 1);
}
