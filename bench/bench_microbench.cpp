// Microbenchmarks (google-benchmark): throughput of the primitives the
// simulation rests on. Not a paper experiment — a performance-regression
// harness for the library itself (a local core stub is supposed to run
// on an "off the shelf computer", §5, so the protocol work must be
// cheap).
#include <benchmark/benchmark.h>

#include "bench_harness.h"
#include "crypto/milenage.h"
#include "crypto/sha256.h"
#include "lte/nas.h"
#include "lte/x2ap.h"
#include "mac/lte_scheduler.h"
#include "mac/wifi_dcf.h"
#include "phy/propagation.h"
#include "sim/simulator.h"

namespace {
using namespace dlte;

void BM_Aes128Encrypt(benchmark::State& state) {
  crypto::Key128 key{};
  key[0] = 0x2b;
  crypto::Aes128 aes{key};
  crypto::Block128 block{};
  for (auto _ : state) {
    block = aes.encrypt(block);
    benchmark::DoNotOptimize(block);
  }
  state.SetBytesProcessed(state.iterations() * 16);
}
BENCHMARK(BM_Aes128Encrypt);

void BM_MilenageAuthVector(benchmark::State& state) {
  crypto::Key128 k{};
  k[0] = 0x46;
  crypto::Block128 opc{};
  opc[0] = 0xcd;
  crypto::Milenage m{k, opc};
  crypto::Rand128 rand{};
  crypto::Sqn48 sqn{};
  crypto::Amf16 amf{0x80, 0x00};
  for (auto _ : state) {
    auto f1 = m.f1(rand, sqn, amf);
    auto f25 = m.f2_f5(rand);
    auto ck = m.f3(rand);
    auto ik = m.f4(rand);
    benchmark::DoNotOptimize(f1);
    benchmark::DoNotOptimize(f25);
    benchmark::DoNotOptimize(ck);
    benchmark::DoNotOptimize(ik);
    rand[0] = static_cast<std::uint8_t>(rand[0] + 1);
  }
}
BENCHMARK(BM_MilenageAuthVector);

void BM_Sha256_1KiB(benchmark::State& state) {
  std::vector<std::uint8_t> data(1024, 0xab);
  for (auto _ : state) {
    auto d = crypto::sha256(data);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_NasRoundTrip(benchmark::State& state) {
  const lte::NasMessage msg{lte::AttachAccept{Tmsi{7}, 0x0a2d0001,
                                              BearerId{5}}};
  for (auto _ : state) {
    auto bytes = lte::encode_nas(msg);
    auto back = lte::decode_nas(bytes);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_NasRoundTrip);

void BM_X2ShareProposalRoundTrip(benchmark::State& state) {
  lte::DlteShareProposal p;
  p.round = 1;
  for (std::uint32_t i = 0; i < 16; ++i) {
    p.ap_ids.push_back(i);
    p.shares.push_back(1.0 / 16);
  }
  const lte::X2Message msg{p};
  for (auto _ : state) {
    auto bytes = lte::encode_x2(msg);
    auto back = lte::decode_x2(bytes);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_X2ShareProposalRoundTrip);

void BM_HataPathLoss(benchmark::State& state) {
  phy::OkumuraHataModel model{phy::Environment::kOpenRural};
  double d = 1000.0;
  for (auto _ : state) {
    auto loss = model.path_loss(Hertz::mhz(850.0),
                                phy::LinkGeometry{d, 30.0, 1.5});
    benchmark::DoNotOptimize(loss);
    d = d < 20'000.0 ? d + 1.0 : 1000.0;
  }
}
BENCHMARK(BM_HataPathLoss);

void BM_PfScheduler32Ues(benchmark::State& state) {
  mac::ProportionalFairScheduler sched;
  std::vector<mac::SchedUe> ues;
  for (std::uint32_t i = 0; i < 32; ++i) {
    ues.push_back(mac::SchedUe{UeId{i}, static_cast<int>(1 + i % 15), 1e6,
                               1e5 + i});
  }
  for (auto _ : state) {
    auto grants = sched.schedule(ues, 100);
    benchmark::DoNotOptimize(grants);
  }
}
BENCHMARK(BM_PfScheduler32Ues);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int count = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule(Duration::micros(i), [&count] { ++count; });
    }
    sim.run_all();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorEventThroughput);

void BM_DcfSimulatedSecond(benchmark::State& state) {
  for (auto _ : state) {
    mac::DcfSimulator dcf{1};
    dcf.add_station(mac::DcfStationConfig{});
    dcf.add_station(mac::DcfStationConfig{});
    dcf.run(Duration::millis(100));
    benchmark::DoNotOptimize(dcf.stats(0).delivered_frames);
  }
}
BENCHMARK(BM_DcfSimulatedSecond);

// Console output as usual, plus each benchmark's per-iteration real
// time captured into the harness. Times land under "timings" (wall
// clock, non-deterministic); only the run count goes into "metrics".
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CapturingReporter(dlte::bench::Harness& harness)
      : harness_(harness) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      const double per_iter =
          run.iterations > 0
              ? run.real_accumulated_time /
                    static_cast<double>(run.iterations)
              : 0.0;
      harness_.timing(run.benchmark_name(), per_iter);
      harness_.metrics().counter("micro.benchmarks_run").inc();
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

 private:
  dlte::bench::Harness& harness_;
};

}  // namespace

int main(int argc, char** argv) {
  dlte::bench::Harness harness{"microbench"};
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CapturingReporter reporter{harness};
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return harness.finish(0);
}
