// Microbenchmarks (google-benchmark): throughput of the primitives the
// simulation rests on. Not a paper experiment — a performance-regression
// harness for the library itself (a local core stub is supposed to run
// on an "off the shelf computer", §5, so the protocol work must be
// cheap).
#include <benchmark/benchmark.h>

#include <map>
#include <string>

#include "bench_harness.h"
#include "crypto/milenage.h"
#include "crypto/sha256.h"
#include "lte/nas.h"
#include "lte/x2ap.h"
#include "mac/lte_scheduler.h"
#include "mac/wifi_dcf.h"
#include "phy/propagation.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace {
using namespace dlte;

void BM_Aes128Encrypt(benchmark::State& state) {
  crypto::Key128 key{};
  key[0] = 0x2b;
  crypto::Aes128 aes{key};
  crypto::Block128 block{};
  for (auto _ : state) {
    block = aes.encrypt(block);
    benchmark::DoNotOptimize(block);
  }
  state.SetBytesProcessed(state.iterations() * 16);
}
BENCHMARK(BM_Aes128Encrypt);

void BM_MilenageAuthVector(benchmark::State& state) {
  crypto::Key128 k{};
  k[0] = 0x46;
  crypto::Block128 opc{};
  opc[0] = 0xcd;
  crypto::Milenage m{k, opc};
  crypto::Rand128 rand{};
  crypto::Sqn48 sqn{};
  crypto::Amf16 amf{0x80, 0x00};
  for (auto _ : state) {
    auto f1 = m.f1(rand, sqn, amf);
    auto f25 = m.f2_f5(rand);
    auto ck = m.f3(rand);
    auto ik = m.f4(rand);
    benchmark::DoNotOptimize(f1);
    benchmark::DoNotOptimize(f25);
    benchmark::DoNotOptimize(ck);
    benchmark::DoNotOptimize(ik);
    rand[0] = static_cast<std::uint8_t>(rand[0] + 1);
  }
}
BENCHMARK(BM_MilenageAuthVector);

void BM_Sha256_1KiB(benchmark::State& state) {
  std::vector<std::uint8_t> data(1024, 0xab);
  for (auto _ : state) {
    auto d = crypto::sha256(data);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_NasRoundTrip(benchmark::State& state) {
  const lte::NasMessage msg{lte::AttachAccept{Tmsi{7}, 0x0a2d0001,
                                              BearerId{5}}};
  for (auto _ : state) {
    auto bytes = lte::encode_nas(msg);
    auto back = lte::decode_nas(bytes);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_NasRoundTrip);

void BM_X2ShareProposalRoundTrip(benchmark::State& state) {
  lte::DlteShareProposal p;
  p.round = 1;
  for (std::uint32_t i = 0; i < 16; ++i) {
    p.ap_ids.push_back(i);
    p.shares.push_back(1.0 / 16);
  }
  const lte::X2Message msg{p};
  for (auto _ : state) {
    auto bytes = lte::encode_x2(msg);
    auto back = lte::decode_x2(bytes);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_X2ShareProposalRoundTrip);

void BM_HataPathLoss(benchmark::State& state) {
  phy::OkumuraHataModel model{phy::Environment::kOpenRural};
  double d = 1000.0;
  for (auto _ : state) {
    auto loss = model.path_loss(Hertz::mhz(850.0),
                                phy::LinkGeometry{d, 30.0, 1.5});
    benchmark::DoNotOptimize(loss);
    d = d < 20'000.0 ? d + 1.0 : 1000.0;
  }
}
BENCHMARK(BM_HataPathLoss);

void BM_PfScheduler32Ues(benchmark::State& state) {
  mac::ProportionalFairScheduler sched;
  std::vector<mac::SchedUe> ues;
  for (std::uint32_t i = 0; i < 32; ++i) {
    ues.push_back(mac::SchedUe{UeId{i}, static_cast<int>(1 + i % 15), 1e6,
                               1e5 + i});
  }
  for (auto _ : state) {
    auto grants = sched.schedule(ues, 100);
    benchmark::DoNotOptimize(grants);
  }
}
BENCHMARK(BM_PfScheduler32Ues);

// Hold model (Brown): steady queue population, each step pops the
// minimum and pushes a successor a random increment later — the steady
// state of a large simulation. The pending-set size matches what a
// metro-scale run (bench_c10_metro: ~10k APs) keeps in flight; the
// heap's O(log n) hurts most right there. Run over both queue
// implementations; the recorded "event_queue_speedup" timing is
// calendar-vs-heap on exactly this loop (the DESIGN.md §13 claim).
template <typename Queue>
void queue_hold(benchmark::State& state) {
  constexpr std::size_t kPending = 1 << 17;
  Queue queue;
  std::uint64_t seq = 0;
  std::uint64_t lcg = 0x9e3779b97f4a7c15ull;
  const auto next_gap = [&lcg] {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::int64_t>((lcg >> 40) % 1'000'000);  // <1 ms
  };
  std::int64_t now = 0;
  for (std::size_t i = 0; i < kPending; ++i) {
    queue.push(
        sim::QueuedEvent{TimePoint::from_ns(now + next_gap()), seq++, {}});
  }
  for (auto _ : state) {
    sim::QueuedEvent event = queue.pop();
    now = event.when.ns();
    event.when = TimePoint::from_ns(now + next_gap());
    event.seq = seq++;
    queue.push(std::move(event));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_EventQueueHeapHold(benchmark::State& state) {
  queue_hold<sim::BinaryHeapQueue>(state);
}
BENCHMARK(BM_EventQueueHeapHold);

void BM_EventQueueCalendarHold(benchmark::State& state) {
  queue_hold<sim::CalendarQueue>(state);
}
BENCHMARK(BM_EventQueueCalendarHold);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int count = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule(Duration::micros(i), [&count] { ++count; });
    }
    sim.run_all();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorEventThroughput);

void BM_DcfSimulatedSecond(benchmark::State& state) {
  for (auto _ : state) {
    mac::DcfSimulator dcf{1};
    dcf.add_station(mac::DcfStationConfig{});
    dcf.add_station(mac::DcfStationConfig{});
    dcf.run(Duration::millis(100));
    benchmark::DoNotOptimize(dcf.stats(0).delivered_frames);
  }
}
BENCHMARK(BM_DcfSimulatedSecond);

// Console output as usual, plus each benchmark's per-iteration real
// time captured into the harness. Times land under "timings" (wall
// clock, non-deterministic); only the run count goes into "metrics".
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  CapturingReporter(dlte::bench::Harness& harness,
                    std::map<std::string, double>& per_iter_s)
      : harness_(harness), per_iter_s_(per_iter_s) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      const double per_iter =
          run.iterations > 0
              ? run.real_accumulated_time /
                    static_cast<double>(run.iterations)
              : 0.0;
      harness_.timing(run.benchmark_name(), per_iter);
      per_iter_s_[run.benchmark_name()] = per_iter;
      harness_.metrics().counter("micro.benchmarks_run").inc();
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

 private:
  dlte::bench::Harness& harness_;
  std::map<std::string, double>& per_iter_s_;
};

}  // namespace

int main(int argc, char** argv) {
  dlte::bench::Harness harness{"microbench"};
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  std::map<std::string, double> per_iter_s;
  CapturingReporter reporter{harness, per_iter_s};
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  // Calendar-vs-heap win on the hold loop (>1 = calendar faster).
  const double heap = per_iter_s["BM_EventQueueHeapHold"];
  const double calendar = per_iter_s["BM_EventQueueCalendarHold"];
  if (heap > 0.0 && calendar > 0.0) {
    harness.timing("event_queue_speedup", heap / calendar);
  }
  return harness.finish(0);
}
