// Shared bench harness: every bench binary owns one Harness, routes its
// scenario metrics into harness.metrics(), and ends with
// `return harness.finish(exit_code);` — which writes BENCH_<name>.json
// next to the human-readable tables the bench already prints.
//
// Schema (DESIGN.md §8):
//   {
//     "bench": "<name>",
//     "git_rev": "<sha or 'unknown'>",
//     "sim_seconds": <total simulated seconds driven>,
//     "wall_seconds": <process wall time>,
//     "metrics": { counters/gauges/histograms from the registry },
//     "timings": { "<label>": <wall seconds>, ... }
//   }
//
// Determinism contract: everything under "metrics" derives from
// simulated time and seeded draws, so two same-seed runs produce a
// byte-identical "metrics" object (CI checks this). "wall_seconds" and
// "timings" are wall-clock and vary run to run — they are what the CI
// perf-regression gate compares against bench/baselines/.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/series.h"
#include "obs/slo.h"
#include "obs/span.h"

namespace dlte::bench {

// Best-effort git revision: $DLTE_GIT_REV, else $GITHUB_SHA, else
// `git rev-parse HEAD`, else "unknown".
[[nodiscard]] std::string git_rev();

class Harness {
 public:
  explicit Harness(std::string name);

  // The registry scenario components attach to via set_metrics().
  [[nodiscard]] obs::MetricsRegistry& metrics() { return registry_; }

  // Opt-in causal tracing: `--trace-out=<file>` on the command line (or
  // $DLTE_TRACE_OUT) creates a SpanTracer whose latency rollups land in
  // metrics() as `span.*` histograms; finish() writes the Chrome
  // trace-event JSON to the given path. Unknown flags are ignored, so a
  // bench just forwards its argc/argv.
  void parse_args(int argc, char** argv);
  void enable_tracing(std::string path);
  [[nodiscard]] bool tracing() const { return tracer_ != nullptr; }
  // nullptr unless tracing was enabled — scenario components take it via
  // their null-safe set_tracer().
  [[nodiscard]] obs::SpanTracer* tracer() { return tracer_.get(); }
  // Attach the simulated clock once the scenario's Simulator exists
  // (e.g. `[&sim] { return sim.now(); }`). No-op when not tracing.
  void set_trace_clock(obs::SpanTracer::NowFn now);

  // Opt-in time-series telemetry: `--series-out=<file>` (or
  // $DLTE_SERIES_OUT) creates a TimeSeriesSampler + SloMonitor over
  // metrics(); finish() writes the dlte-series-v1 JSON there.
  // `--series-interval-ms=<n>` tunes the sampling cadence (default
  // 500 ms of simulated time). `--openmetrics-out=<file>` (or
  // $DLTE_OPENMETRICS_OUT) additionally writes the final registry state
  // as OpenMetrics text. The harness stays sim-free: the scenario
  // constructs a sim::TelemetryDriver next to its Simulator and points
  // it at sampler()/slo().
  void enable_series(std::string path);
  [[nodiscard]] bool series_enabled() const { return sampler_ != nullptr; }
  // nullptr unless series output was enabled.
  [[nodiscard]] obs::TimeSeriesSampler* sampler() { return sampler_.get(); }
  [[nodiscard]] obs::SloMonitor* slo() { return monitor_.get(); }

  // Parallel-runtime knobs for sharded benches: `--shards=<n>` and
  // `--par-threads=<n>` (0 = one worker per shard) select the partition,
  // `--par-artifacts=<prefix>` asks the bench to dump its merged
  // artifacts to <prefix>.metrics.json / .series.json / .openmetrics.txt
  // — what the CI par-determinism gate byte-compares across shard
  // counts. parse_args() fills these; sharded benches read them.
  [[nodiscard]] std::size_t shards() const { return shards_; }
  [[nodiscard]] std::size_t par_threads() const { return par_threads_; }
  [[nodiscard]] const std::string& par_artifacts() const {
    return par_artifacts_;
  }

  // Self-profiling plane: `--prof-out=<file>` (or $DLTE_PROF_OUT) asks
  // the bench to produce a dlte-prof-v1 document; the bench builds a
  // ProfileDoc (merged event attribution + wall-clock shard profile) and
  // hands it over via set_profile(); finish() writes it. Optional
  // companions: `--prof-trace-out=` ($DLTE_PROF_TRACE_OUT) for Perfetto
  // counter tracks and `--prof-folded=` ($DLTE_PROF_FOLDED) for
  // flamegraph-folded text from the span tracer (requires --trace-out).
  [[nodiscard]] bool profiling_requested() const {
    return !prof_path_.empty() || !prof_trace_path_.empty();
  }
  [[nodiscard]] const std::string& prof_path() const { return prof_path_; }
  void set_profile(obs::ProfileDoc doc);
  [[nodiscard]] bool has_profile() const { return profile_ != nullptr; }
  [[nodiscard]] const obs::ProfileDoc* profile() const {
    return profile_.get();
  }

  // Determinism audit plane: `--audit-out=<file>` (or $DLTE_AUDIT_OUT)
  // asks the bench for a dlte-audit-v1 document; the bench hands its
  // runtime's AuditDoc over via set_audit(); finish() writes it.
  [[nodiscard]] bool audit_requested() const { return !audit_path_.empty(); }
  [[nodiscard]] const std::string& audit_path() const { return audit_path_; }
  void set_audit(obs::AuditDoc doc);
  [[nodiscard]] bool has_audit() const { return audit_ != nullptr; }
  [[nodiscard]] const obs::AuditDoc* audit() const { return audit_.get(); }

  // Total simulated time this bench drove (summed across scenarios).
  void add_sim_seconds(double seconds) { sim_seconds_ += seconds; }

  // Record engine throughput: `events` dispatched over `wall_seconds` of
  // measured run time (summable across scenarios). The event count is
  // deterministic (partition-invariant for sharded runs) and lands as the
  // top-level "events_total"; the derived rate is wall-clock and lands in
  // timings as "events_per_sec" — the number the CI throughput gate
  // compares against bench/baselines/.
  void throughput(std::uint64_t events, double wall_seconds) {
    events_total_ += events;
    events_wall_s_ += wall_seconds;
    if (events_wall_s_ > 0.0) {
      timings_["events_per_sec"] =
          static_cast<double>(events_total_) / events_wall_s_;
    }
  }
  [[nodiscard]] std::uint64_t events_total() const { return events_total_; }

  // Record a named wall-clock timing (a non-deterministic section, e.g.
  // one microbenchmark's per-iteration time). Kept outside "metrics" so
  // the determinism check stays byte-exact.
  void timing(const std::string& name, double seconds) {
    timings_[name] = seconds;
  }

  // Conveniences for result-shaped values a bench wants in the JSON.
  void gauge(const std::string& name, double value) {
    registry_.gauge(name).set(value);
  }
  void counter(const std::string& name, std::uint64_t value) {
    registry_.counter(name).inc(value);
  }

  // Serialize and write BENCH_<name>.json into $DLTE_BENCH_DIR (or the
  // working directory), then pass `exit_code` through — benches end with
  // `return harness.finish(code);`. Returns 1 if the write failed and
  // `exit_code` was 0.
  [[nodiscard]] int finish(int exit_code = 0);

  // The full JSON document (what finish() writes). Exposed for tests.
  [[nodiscard]] std::string to_json() const;

 private:
  std::string name_;
  obs::MetricsRegistry registry_;
  std::unique_ptr<obs::SpanTracer> tracer_;
  std::string trace_path_;
  std::unique_ptr<obs::TimeSeriesSampler> sampler_;
  std::unique_ptr<obs::SloMonitor> monitor_;
  std::string series_path_;
  std::string openmetrics_path_;
  std::size_t shards_{0};
  std::size_t par_threads_{0};
  std::string par_artifacts_;
  std::string prof_path_;
  std::string prof_trace_path_;
  std::string prof_folded_path_;
  std::string audit_path_;
  std::unique_ptr<obs::ProfileDoc> profile_;
  std::unique_ptr<obs::AuditDoc> audit_;
  Duration series_interval_{Duration::millis(500)};
  double sim_seconds_{0.0};
  std::uint64_t events_total_{0};
  double events_wall_s_{0.0};
  std::map<std::string, double> timings_;
  std::chrono::steady_clock::time_point wall_start_;
};

}  // namespace dlte::bench
