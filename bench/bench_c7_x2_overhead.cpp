// Experiment C7 — §4.3 [28]: "The X2 interface is relatively low
// bandwidth, but when backhaul constrained the level of coordination can
// be minimized."
//
// Live PeerCoordinators exchange extended-X2 over a shared Internet hop.
// We sweep contention-domain size and reporting period and report per-AP
// signaling load, then show the convergence cost of slowing the reports
// (the backhaul-constrained trade the paper describes).
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_harness.h"
#include "common/table.h"
#include "spectrum/coordinator.h"

namespace {
using namespace dlte;

struct Domain {
  sim::Simulator sim;
  net::Network net{sim};
  NodeId internet = net.add_node("internet");
  std::vector<std::unique_ptr<spectrum::PeerCoordinator>> coords;

  Domain(int n, Duration period, obs::MetricsRegistry* reg = nullptr,
         const std::string& prefix = "") {
    sim.set_metrics(reg, prefix);
    net.set_metrics(reg, prefix);
    std::vector<NodeId> nodes;
    for (int i = 0; i < n; ++i) {
      const NodeId node = net.add_node("ap" + std::to_string(i));
      net.add_link(node, internet,
                   net::LinkConfig{DataRate::mbps(10.0),
                                   Duration::millis(15)});
      nodes.push_back(node);
      coords.push_back(std::make_unique<spectrum::PeerCoordinator>(
          sim, net, node,
          spectrum::CoordinatorConfig{
              ApId{static_cast<std::uint32_t>(i + 1)},
              lte::DlteMode::kFairShare, period}));
    }
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i != j) {
          coords[static_cast<std::size_t>(i)]->add_peer(
              ApId{static_cast<std::uint32_t>(j + 1)},
              nodes[static_cast<std::size_t>(j)]);
        }
      }
    }
    for (auto& c : coords) {
      // All APs in the domain aggregate into one prefixed counter set.
      c->set_metrics(reg, prefix);
      c->set_offered_load(1.0);
      c->start();
    }
  }

  void run_for(double s) { sim.run_until(sim.now() + Duration::seconds(s)); }
};

}  // namespace

int main() {
  print_bench_header(std::cout, "C7", "paper §4.3 / La Roche & Widjaja [28]",
                     "X2 coordination load is kbit/s-scale and tunable "
                     "against backhaul constraints");
  dlte::bench::Harness harness{"c7_x2_overhead"};

  TextTable t{{"domain size", "report period", "per-AP X2 load",
               "per-AP msg rate", "domain total"}};
  const double window_s = 30.0;
  for (int n : {2, 4, 8, 16}) {
    for (double period_s : {0.2, 1.0, 5.0}) {
      const std::string prefix =
          "c7.n" + std::to_string(n) + ".p" +
          std::to_string(static_cast<int>(period_s * 1000.0)) + "ms.";
      Domain d{n, Duration::seconds(period_s), &harness.metrics(), prefix};
      d.run_for(window_s);
      harness.add_sim_seconds(window_s);
      double total_kbps = 0.0;
      for (auto& c : d.coords) {
        total_kbps += c->stats().bytes_sent * 8.0 / window_s / 1000.0;
      }
      const auto& leader = d.coords[0]->stats();
      harness.gauge(prefix + "perap_kbps",
                    leader.bytes_sent * 8.0 / window_s / 1000.0);
      harness.gauge(prefix + "perap_msg_rate",
                    leader.messages_sent / window_s);
      harness.gauge(prefix + "domain_kbps", total_kbps);
      t.row()
          .integer(n)
          .num(period_s, 1, "s")
          .num(leader.bytes_sent * 8.0 / window_s / 1000.0, 2, "kbit/s")
          .num(leader.messages_sent / window_s, 1, "msg/s")
          .num(total_kbps, 1, "kbit/s");
    }
  }
  t.print(std::cout);

  // Convergence cost of minimizing coordination: after a demand change,
  // how long until shares settle?
  std::cout << "\nConvergence after a demand step (AP1 load 0.2 → 1.0, "
               "4-AP domain):\n";
  TextTable c{{"report period", "reconvergence time"}};
  for (double period_s : {0.2, 1.0, 5.0}) {
    Domain d{4, Duration::seconds(period_s)};
    for (auto& coord : d.coords) coord->set_offered_load(1.0);
    d.coords[0]->set_offered_load(0.2);
    d.run_for(4.0 * period_s + 1.0);  // Settle initial shares.
    d.coords[0]->set_offered_load(1.0);
    const TimePoint changed = d.sim.now();
    // Poll until AP1's share reaches the new fair value (0.25).
    double converged_s = -1.0;
    for (int step = 0; step < 4000; ++step) {
      d.run_for(0.05);
      if (std::abs(d.coords[0]->current_share() - 0.25) < 1e-6) {
        converged_s = (d.sim.now() - changed).to_seconds();
        break;
      }
    }
    harness.add_sim_seconds(d.sim.now().to_seconds());
    harness.gauge("c7.conv.p" +
                      std::to_string(static_cast<int>(period_s * 1000.0)) +
                      "ms.reconvergence_s",
                  converged_s);
    c.row().num(period_s, 1, "s").num(converged_s, 2, "s");
  }
  c.print(std::cout);

  std::cout << "\nShape check: load scales with domain size and report "
               "frequency but stays far below\nany broadband backhaul; "
               "slower reporting trades convergence time, not correctness.\n";
  return harness.finish(0);
}
